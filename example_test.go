package biscatter_test

import (
	"fmt"

	"biscatter"
)

// ExampleNetwork_Exchange shows one integrated ISAC round: downlink payload,
// localization and uplink bits in a single frame.
func ExampleNetwork_Exchange() {
	net, err := biscatter.NewNetwork(biscatter.Config{
		Nodes: []biscatter.NodeConfig{{ID: 1, Range: 2.6}},
		Seed:  42,
	})
	if err != nil {
		panic(err)
	}
	res, err := net.Exchange([]byte("hi"), map[int][]bool{0: {true, false}})
	if err != nil {
		panic(err)
	}
	n := res.Nodes[0]
	fmt.Printf("downlink: %s\n", n.DownlinkPayload)
	fmt.Printf("range error below 5 cm: %v\n", n.Detection.Range > 2.55 && n.Detection.Range < 2.65)
	fmt.Printf("uplink: %v\n", n.UplinkBits)
	// Output:
	// downlink: hi
	// range error below 5 cm: true
	// uplink: [true false]
}

// ExampleNetwork_Localize shows sensing-only operation with a fixed chirp
// slope.
func ExampleNetwork_Localize() {
	net, err := biscatter.NewNetwork(biscatter.Config{
		Nodes: []biscatter.NodeConfig{{ID: 1, Range: 4.0}},
		Seed:  7,
	})
	if err != nil {
		panic(err)
	}
	dets, err := net.Localize(nil, 64)
	if err != nil {
		panic(err)
	}
	fmt.Printf("within 5 cm of 4.0 m: %v\n", dets[0].Range > 3.95 && dets[0].Range < 4.05)
	// Output:
	// within 5 cm of 4.0 m: true
}

// ExampleDefaultPowerModel reproduces the §4.1 headline figures.
func ExampleDefaultPowerModel() {
	p := biscatter.DefaultPowerModel()
	fmt.Printf("continuous: %.0f mW\n", p.Continuous()*1e3)
	fmt.Printf("custom IC: %.0f mW\n", p.CustomIC()*1e3)
	// Output:
	// continuous: 48 mW
	// custom IC: 4 mW
}

// ExampleDefaultLink shows the calibrated distance→SNR mapping behind the
// BER-vs-distance experiments.
func ExampleDefaultLink() {
	l := biscatter.DefaultLink()
	fmt.Printf("downlink SNR at 7 m: %.0f dB\n", l.DownlinkSNRdB(7))
	// Output:
	// downlink SNR at 7 m: 16 dB
}
