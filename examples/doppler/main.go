// Doppler: the radar's motion sensing alongside tag operations. A cart
// carrying a reflector rolls away from the radar while a static BiScatter
// tag keeps its uplink beacon running; the radar measures the cart's
// velocity from the slow-time Doppler of a sensing frame and still
// localizes the tag.
//
//	go run ./examples/doppler
package main

import (
	"fmt"
	"log"

	"biscatter"
	"biscatter/internal/channel"
	"biscatter/internal/radar"
)

func main() {
	net, err := biscatter.NewNetwork(biscatter.Config{
		Nodes:   []biscatter.NodeConfig{{ID: 1, Range: 2.6}},
		Clutter: nil, // scene built by hand below
		Seed:    21,
	})
	if err != nil {
		log.Fatal(err)
	}

	const cartRange = 4.5
	const cartSpeed = 2.0 // m/s, receding
	frame, err := net.BuildSensingFrame(128)
	if err != nil {
		log.Fatal(err)
	}
	states, err := net.Nodes()[0].Tag.UplinkStates(nil, net.Config().Period, len(frame.Chirps))
	if err != nil {
		log.Fatal(err)
	}
	scene := radar.Scene{
		Clutter: []channel.Reflector{
			{Range: cartRange, RCSdBsm: 5, Velocity: cartSpeed}, // the cart
			{Range: 7.0, RCSdBsm: 0},                            // back wall
		},
		Tags: []radar.TagEcho{{
			Range:    2.6,
			States:   states,
			PowerDBm: net.Link().UplinkRxPowerDBm(2.6),
		}},
	}
	capt := net.Radar().Observe(frame, scene)
	cm, grid := net.Radar().CorrectedMatrix(capt)

	// Doppler on the strongest scatterer (the cart).
	bin := radar.StrongestBin(cm)
	v, err := net.Radar().EstimateVelocity(cm, bin, net.Config().Period)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cart: range %.2f m, velocity %.2f m/s (truth %.1f, span ±%.0f m/s)\n",
		grid[bin], v, cartSpeed, net.Radar().MaxUnambiguousVelocity(net.Config().Period))

	// The tag is still there, localized by its modulation signature.
	matrix := radar.SubtractBackgroundMag(radar.MagnitudeMatrix(cm))
	det, err := net.Radar().DetectTag(matrix, grid, net.Nodes()[0].Uplink.F0, net.Config().Period)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tag:  range %.3f m (error %.1f cm) while the scene moves\n",
		det.Range, (det.Range-2.6)*100)
}
