// Netlink: the radar access point and the tag as two independent endpoints
// exchanging the netio wire protocol over loopback UDP — the same protocol
// the biscatter-radar and biscatter-tag commands speak, here run in two
// goroutines so the example is self-contained.
//
//	go run ./examples/netlink
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"biscatter"
	"biscatter/internal/netio"
	"biscatter/internal/radar"
)

const tagRange = 2.6

func main() {
	tagConn, err := netio.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer tagConn.Close()
	radarConn, err := netio.Listen("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer radarConn.Close()

	done := make(chan struct{})
	go tagProcess(tagConn, done)

	if err := radarProcess(radarConn, tagConn.Addr()); err != nil {
		log.Fatal(err)
	}
	<-done
}

// tagProcess is the backscatter node endpoint.
func tagProcess(conn *netio.Node, done chan<- struct{}) {
	defer close(done)
	netw, err := biscatter.NewNetwork(biscatter.Config{
		Nodes: []biscatter.NodeConfig{{ID: 1, Range: tagRange}},
		Seed:  5,
	})
	if err != nil {
		log.Fatal(err)
	}
	node := netw.Nodes()[0]
	msg, from, err := conn.Recv(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fd := msg.(*netio.FrameDescriptor)
	frame, err := netw.Builder().Build(fd.Durations)
	if err != nil {
		log.Fatal(err)
	}
	payload, _, derr := node.Tag.ReceiveDownlink(frame, fd.DownlinkSNRdB, netw.Packet())
	report := &netio.TagReport{Sequence: fd.Sequence, TagID: 1, Status: netio.StatusOK, Payload: payload}
	if derr != nil {
		report.Status = netio.StatusBadCRC
	}
	if err := conn.Send(from, report); err != nil {
		log.Fatal(err)
	}
	plan := &netio.ModulationPlan{
		Sequence: fd.Sequence, TagID: 1,
		F0: node.Uplink.F0, F1: node.Uplink.F1,
		ChirpsPerBit: uint16(node.Uplink.ChirpsPerBit),
	}
	plan.SetBits([]bool{true, false, true, true})
	if err := conn.Send(from, plan); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tag: decoded %q over UDP-announced frame, replied with modulation plan\n", payload)
}

// radarProcess is the access-point endpoint.
func radarProcess(conn *netio.Node, tagAddr *net.UDPAddr) error {
	netw, err := biscatter.NewNetwork(biscatter.Config{
		Nodes: []biscatter.NodeConfig{{ID: 1, Range: tagRange}},
		Seed:  5,
	})
	if err != nil {
		return err
	}
	cfg := netw.Config()
	frame, err := netw.BuildDownlinkFrame([]byte("over the wire"), 4*cfg.ChirpsPerBit)
	if err != nil {
		return err
	}
	durs := make([]float64, len(frame.Chirps))
	for i, c := range frame.Chirps {
		durs[i] = c.Params.Duration
	}
	err = conn.Send(tagAddr, &netio.FrameDescriptor{
		Sequence:       1,
		StartFrequency: cfg.Preset.Chirp.StartFrequency,
		Bandwidth:      cfg.Preset.Chirp.Bandwidth,
		SampleRate:     cfg.Preset.Chirp.SampleRate,
		Period:         cfg.Period,
		DownlinkSNRdB:  netw.Link().DownlinkSNRdB(tagRange),
		Durations:      durs,
	})
	if err != nil {
		return err
	}
	var plan *netio.ModulationPlan
	var report *netio.TagReport
	for plan == nil || report == nil {
		msg, _, err := conn.Recv(5 * time.Second)
		if err != nil {
			return err
		}
		switch m := msg.(type) {
		case *netio.ModulationPlan:
			plan = m
		case *netio.TagReport:
			report = m
		}
	}
	fmt.Printf("radar: tag report %v (payload %q)\n", report.Status, report.Payload)

	// Observe the backscatter the plan describes and decode it.
	node := netw.Nodes()[0]
	states, err := node.Tag.UplinkStates(plan.GetBits(), cfg.Period, len(frame.Chirps))
	if err != nil {
		return err
	}
	scene := radar.Scene{
		Clutter: cfg.Clutter,
		Tags: []radar.TagEcho{{
			Range:    tagRange,
			States:   states,
			PowerDBm: netw.Link().UplinkRxPowerDBm(tagRange),
		}},
	}
	capt := netw.Radar().Observe(frame, scene)
	cm, grid := netw.Radar().CorrectedMatrix(capt)
	matrix := radar.SubtractBackgroundMag(radar.MagnitudeMatrix(cm))
	det, err := netw.Radar().DetectTag(matrix, grid, plan.F0, cfg.Period)
	if err != nil {
		return err
	}
	bits, err := netw.Radar().DecodeUplinkFSK(matrix, det.Bin, radar.UplinkFSKConfig{
		F0: plan.F0, F1: plan.F1, ChirpsPerBit: int(plan.ChirpsPerBit), Period: cfg.Period,
	})
	if err != nil {
		return err
	}
	if len(bits) > int(plan.BitCount) {
		bits = bits[:plan.BitCount]
	}
	fmt.Printf("radar: tag at %.3f m (error %.1f cm), uplink bits %v\n",
		det.Range, (det.Range-tagRange)*100, bits)
	return nil
}
