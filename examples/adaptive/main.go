// Adaptive: downlink-driven link adaptation — the "write access" use case
// (§1: "adapting the tag modulation scheme or data rate to link
// conditions"). The radar measures the tag's uplink signature SNR and, when
// the link is strong, commands the tag over the downlink to switch to a
// faster uplink (fewer chirps per bit); when the link is weak it commands a
// more robust setting. Only a two-way system can do this: uplink-only tags
// are read-only and unconfigurable after deployment.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"biscatter"
)

// rateForSNR is the adaptation policy: stronger links afford shorter bit
// windows (higher uplink rate).
func rateForSNR(snrDB float64) int {
	switch {
	case snrDB > 40:
		return 8 // chirps per bit → 1.04 kbit/s at a 120 µs period
	case snrDB > 25:
		return 16
	default:
		return 32
	}
}

func main() {
	for _, dist := range []float64{1.2, 3.6, 6.8} {
		// Round 1: probe the link at the robust default.
		net, err := biscatter.NewNetwork(biscatter.Config{
			Nodes: []biscatter.NodeConfig{{ID: 1, Range: dist}},
			Seed:  11,
		})
		if err != nil {
			log.Fatal(err)
		}
		probe, err := net.Exchange([]byte("PROBE"), map[int][]bool{0: {true, false}})
		if err != nil {
			log.Fatal(err)
		}
		n := probe.Nodes[0]
		if n.DetectionErr != nil {
			fmt.Printf("tag at %.1f m: not detected, keeping defaults\n", dist)
			continue
		}
		chirpsPerBit := rateForSNR(n.Detection.SNRdB)
		period := net.Config().Period
		fmt.Printf("tag at %.1f m: signature SNR %.1f dB → command %d chirps/bit (%.2f kbit/s uplink)\n",
			dist, n.Detection.SNRdB, chirpsPerBit, 1/(float64(chirpsPerBit)*period)/1e3)

		// Round 2: rebuild the link at the commanded rate (in a deployment
		// the command rides the downlink payload; here we re-instantiate
		// the network with the tag's new configuration) and verify the
		// faster uplink still decodes.
		net2, err := biscatter.NewNetwork(biscatter.Config{
			Nodes:        []biscatter.NodeConfig{{ID: 1, Range: dist}},
			ChirpsPerBit: chirpsPerBit,
			Seed:         12,
		})
		if err != nil {
			log.Fatal(err)
		}
		payload := fmt.Sprintf("RATE=%d", chirpsPerBit)
		bits := []bool{true, true, false, true, false, false, true, true}
		res, err := net2.Exchange([]byte(payload), map[int][]bool{0: bits})
		if err != nil {
			log.Fatal(err)
		}
		n2 := res.Nodes[0]
		ok := n2.UplinkErr == nil && len(n2.UplinkBits) == len(bits)
		if ok {
			for i := range bits {
				if n2.UplinkBits[i] != bits[i] {
					ok = false
				}
			}
		}
		fmt.Printf("  after adaptation: downlink %q, uplink clean=%v\n\n", n2.DownlinkPayload, ok)
	}
}
