// Warehouse: the paper's motivating scenario (§1, Fig. 1) — a radar-equipped
// drone in a warehouse uses its FMCW radar for sensing while simultaneously
// taking inventory of passive asset tags and broadcasting commands to them.
//
// Three tags with unique modulation frequencies are deployed among shelving
// clutter. Each round the drone broadcasts an inventory request, localizes
// every tag by its backscatter signature, and collects each tag's status
// bits — without ever interrupting the radar's sensing chirps.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"

	"biscatter"
	"biscatter/internal/channel"
)

func main() {
	// Shelving and walls: a multipath-rich indoor scene.
	shelves := []channel.Reflector{
		{Range: 1.5, RCSdBsm: -4},
		{Range: 3.2, RCSdBsm: 1},
		{Range: 4.8, RCSdBsm: -6},
		{Range: 6.5, RCSdBsm: 0},
	}
	net, err := biscatter.NewNetwork(biscatter.Config{
		Nodes: []biscatter.NodeConfig{
			{ID: 1, Range: 2.1}, // pallet A
			{ID: 2, Range: 4.0}, // pallet B
			{ID: 3, Range: 5.7}, // pallet C
		},
		Clutter: shelves,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("warehouse inventory round: broadcasting status request to 3 tags")
	// Per-tag status words (e.g. battery/sensor flags).
	status := map[int][]bool{
		0: {true, true, false, false},
		1: {false, true, true, false},
		2: {true, false, false, true},
	}
	res, err := net.Exchange([]byte("INVENTORY?"), status)
	if err != nil {
		log.Fatal(err)
	}
	truth := []float64{2.1, 4.0, 5.7}
	for i, node := range res.Nodes {
		fmt.Printf("\ntag %d (true range %.1f m):\n", i+1, truth[i])
		if node.DownlinkErr != nil {
			fmt.Printf("  downlink: FAILED (%v)\n", node.DownlinkErr)
		} else {
			fmt.Printf("  downlink: received %q\n", node.DownlinkPayload)
		}
		if node.DetectionErr != nil {
			fmt.Printf("  localization: FAILED (%v)\n", node.DetectionErr)
			continue
		}
		fmt.Printf("  localization: %.3f m (error %.1f cm, SNR %.1f dB)\n",
			node.Detection.Range, (node.Detection.Range-truth[i])*100, node.Detection.SNRdB)
		fmt.Printf("  uplink status: %v (sent %v)\n", node.UplinkBits, status[i])
	}
	fmt.Println("\nsensing ran on every chirp — communication cost zero radar frames")

	// The drone's obstacle map, produced by the same radar frames.
	targets, err := net.MapEnvironment(32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nradar environment map (CFAR detections):")
	for _, tgt := range targets {
		fmt.Printf("  object at %.2f m (%.0f dBm)\n", tgt.Range, tgt.PowerDBm)
	}
}
