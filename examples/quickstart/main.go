// Quickstart: one radar, one tag, one integrated exchange.
//
// The radar sends a downlink payload encoded in chirp slopes (CSSK) while
// sensing; the tag decodes it with its delay-line circuit and answers over
// its Van Atta retro-reflection; the radar localizes the tag and reads the
// uplink bits — all in a single frame.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"biscatter"
)

func main() {
	// Functional options compose with (or replace) the Config struct; the
	// exchange engine spreads its pipeline across the worker pool and is
	// bit-reproducible at any width.
	net, err := biscatter.NewNetwork(biscatter.Config{},
		biscatter.WithNodes(biscatter.NodeConfig{ID: 1, Range: 2.6}),
		biscatter.WithSeed(42),
		biscatter.WithWorkers(0), // 0 = all cores
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("radar: %s, downlink %g kbit/s, tag at 2.6 m (SNR %.1f dB)\n",
		net.Config().Preset.Name,
		net.DownlinkDataRate()/1e3,
		net.Link().DownlinkSNRdB(2.6))

	downlink := []byte("set-rate:5")
	uplink := []bool{true, false, true, true, false, false, true, false}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := net.ExchangeContext(ctx, downlink, map[int][]bool{0: uplink})
	if err != nil {
		log.Fatal(err)
	}
	node := res.Nodes[0]
	if node.DownlinkErr != nil {
		log.Fatalf("downlink failed: %v", node.DownlinkErr)
	}
	fmt.Printf("tag decoded downlink: %q\n", node.DownlinkPayload)
	if node.DetectionErr != nil {
		log.Fatalf("tag not found: %v", node.DetectionErr)
	}
	fmt.Printf("radar localized tag at %.3f m (error %.1f cm, signature SNR %.1f dB)\n",
		node.Detection.Range, (node.Detection.Range-2.6)*100, node.Detection.SNRdB)
	fmt.Printf("radar decoded uplink:  %v\n", node.UplinkBits)
	fmt.Printf("tag sent:              %v\n", uplink)
}
