package biscatter

import (
	"bytes"
	"math"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	net, err := NewNetwork(Config{
		Nodes: []NodeConfig{{ID: 1, Range: 2.6}},
		Seed:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("public api")
	up := []bool{true, false, true, true}
	res, err := net.Exchange(payload, map[int][]bool{0: up})
	if err != nil {
		t.Fatal(err)
	}
	nr := res.Nodes[0]
	if nr.DownlinkErr != nil || !bytes.Equal(nr.DownlinkPayload, payload) {
		t.Fatalf("downlink: %v %q", nr.DownlinkErr, nr.DownlinkPayload)
	}
	if nr.DetectionErr != nil || math.Abs(nr.Detection.Range-2.6) > 0.06 {
		t.Fatalf("localization: %v %.3f m", nr.DetectionErr, nr.Detection.Range)
	}
	for i, b := range up {
		if nr.UplinkBits[i] != b {
			t.Fatalf("uplink bit %d wrong", i)
		}
	}
}

func TestFacadePresetsAndModels(t *testing.T) {
	if Radar9GHz().Chirp.Bandwidth != 1e9 {
		t.Error("9 GHz preset bandwidth")
	}
	if Radar24GHz().Chirp.Bandwidth != 250e6 {
		t.Error("24 GHz preset bandwidth")
	}
	if snr := DefaultLink().DownlinkSNRdB(7); snr < 12 || snr > 20 {
		t.Errorf("link calibration drifted: %v dB at 7 m", snr)
	}
	if p := DefaultPowerModel().Continuous(); math.Abs(p-48e-3) > 1e-3 {
		t.Errorf("power model drifted: %v W", p)
	}
}

func TestFacadeHelpers(t *testing.T) {
	a := RandomPayload(1, 4)
	b := RandomPayload(1, 4)
	if !bytes.Equal(a, b) {
		t.Error("RandomPayload not deterministic")
	}
	errs, total := CountBitErrors([]byte{0xF0}, []byte{0x0F})
	if errs != 8 || total != 8 {
		t.Errorf("CountBitErrors: %d/%d", errs, total)
	}
}

// TestFacadeFleet drives the fleet surface end to end through the public
// API: shared Option plumbing, concurrent-safe handles, schedule helpers
// and the fleet sentinels.
func TestFacadeFleet(t *testing.T) {
	m := NewMetrics()
	fleet := NewFleet(FleetConfig{Engines: 2, Metrics: m}, WithWorkers(1))
	defer fleet.Close()

	fn, err := fleet.AddNetwork(Config{
		Nodes: []NodeConfig{{ID: 1, Range: 2.6}},
		Seed:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("fleet api")
	res, err := fn.Exchange(payload, map[int][]bool{0: {true, false}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[0].DownlinkErr != nil || !bytes.Equal(res.Nodes[0].DownlinkPayload, payload) {
		t.Fatalf("fleet downlink: %v %q", res.Nodes[0].DownlinkErr, res.Nodes[0].DownlinkPayload)
	}
	if got := m.Counter("fleet.requests").Value(); got != 1 {
		t.Fatalf("fleet.requests = %d, want 1", got)
	}

	sched, err := NewFrameSchedule(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Frames() != 2 {
		t.Fatalf("4 tags at capacity 2 should need 2 frames, got %d", sched.Frames())
	}
	if _, err := ScheduleFor(6, 120e-6, 64); err != nil {
		t.Fatalf("ScheduleFor: %v", err)
	}
	if ErrNodeInactive == nil || ErrFleetClosed == nil {
		t.Fatal("fleet sentinels must be exported")
	}
}
