package biscatter

// One benchmark per paper table/figure (see DESIGN.md §4 for the index).
// Each bench regenerates its artifact at reduced statistical scale and
// reports the headline metric via b.ReportMetric, so `go test -bench=.`
// doubles as a quick reproduction run. Use cmd/biscatter-sim for full-scale
// regeneration.

import (
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"biscatter/internal/channel"
	"biscatter/internal/core"
	"biscatter/internal/delayline"
	"biscatter/internal/eval"
	"biscatter/internal/radar"
	"biscatter/internal/tag"
)

// benchOpts keeps per-iteration cost low; benches measure shape, not
// publication statistics.
var benchOpts = eval.Options{Frames: 10, Trials: 3, Seed: 1}

func runExperiment(b *testing.B, id string) *eval.Result {
	b.Helper()
	run, ok := eval.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var res *eval.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// cell parses a numeric table cell ("<1.0e-3" floors count as their bound).
func cell(b *testing.B, res *eval.Result, table, row, col int) float64 {
	b.Helper()
	c := strings.TrimPrefix(res.Tables[table].Rows[row][col], "<")
	c = strings.Fields(c)[0]
	v, err := strconv.ParseFloat(c, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", c, err)
	}
	return v
}

func BenchmarkFig5BeatFrequency(b *testing.B) {
	res := runExperiment(b, "fig5")
	// Report the worst per-point deviation from Eq. 11 (percent).
	worst := 0.0
	for r := range res.Tables[0].Rows {
		worst = math.Max(worst, math.Abs(cell(b, res, 0, r, 4)))
	}
	b.ReportMetric(worst, "max-eq11-error-%")
}

func BenchmarkFig6WindowAlignment(b *testing.B) {
	res := runExperiment(b, "fig6")
	b.ReportMetric(cell(b, res, 0, 2, 2), "aligned-window-error-kHz")
	b.ReportMetric(cell(b, res, 0, 1, 2), "misaligned-window-error-kHz")
}

func BenchmarkFig7IFCorrection(b *testing.B) {
	res := runExperiment(b, "fig7")
	lo, hi := math.Inf(1), math.Inf(-1)
	for r := range res.Tables[0].Rows {
		v := cell(b, res, 0, r, 4)
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	b.ReportMetric((hi-lo)*100, "corrected-spread-cm")
}

func BenchmarkFig10n11DelayLine(b *testing.B) {
	res := runExperiment(b, "fig10_11")
	mid := len(res.Tables[0].Rows) / 2
	b.ReportMetric(cell(b, res, 0, mid, 3), "delta-T-ns")
	b.ReportMetric(cell(b, res, 0, mid, 1), "S11-dB")
}

func BenchmarkTable1Capabilities(b *testing.B) {
	res := runExperiment(b, "tab1")
	full := 0.0
	for _, row := range res.Tables[0].Rows {
		all := true
		for _, c := range row[1:6] {
			if c != "yes" {
				all = false
			}
		}
		if all {
			full++
		}
	}
	b.ReportMetric(full, "systems-with-all-capabilities")
}

func BenchmarkPowerBudget(b *testing.B) {
	runExperiment(b, "power")
	p := tag.DefaultPowerModel()
	b.ReportMetric(p.Continuous()*1e3, "continuous-mW")
	b.ReportMetric(p.CustomIC()*1e3, "custom-ic-mW")
}

func BenchmarkDataRate(b *testing.B) {
	runExperiment(b, "rate")
	b.ReportMetric(10.0/100e-6/1e3, "10bit-100us-kbps")
}

func BenchmarkFig12BERvsSymbolSize(b *testing.B) {
	res := runExperiment(b, "fig12")
	// 5 bits at 1 GHz is the paper's headline (<1e-3).
	b.ReportMetric(cell(b, res, 0, 4, 3), "ber-5bit-1GHz")
	b.ReportMetric(cell(b, res, 0, 4, 1), "ber-5bit-250MHz")
}

func BenchmarkFig13BERvsDistance(b *testing.B) {
	res := runExperiment(b, "fig13")
	// 5-bit column at 7 m.
	b.ReportMetric(cell(b, res, 0, 7, 3), "ber-5bit-7m")
	b.ReportMetric(cell(b, res, 0, 7, 1), "snr-7m-dB")
}

func BenchmarkFig14BERvsDeltaL(b *testing.B) {
	res := runExperiment(b, "fig14")
	// At 16 dB: 18-inch vs 45-inch lines.
	b.ReportMetric(cell(b, res, 0, 2, 1), "ber-18in-16dB")
	b.ReportMetric(cell(b, res, 0, 2, 3), "ber-45in-16dB")
}

func BenchmarkFig15UplinkSNR(b *testing.B) {
	res := runExperiment(b, "fig15")
	b.ReportMetric(cell(b, res, 0, 0, 3), "signature-snr-0.5m-dB")
	b.ReportMetric(cell(b, res, 0, 6, 3), "signature-snr-7m-dB")
}

func BenchmarkFig16Localization(b *testing.B) {
	res := runExperiment(b, "fig16")
	var sSum, cSum float64
	n := float64(len(res.Tables[0].Rows))
	for r := range res.Tables[0].Rows {
		sSum += cell(b, res, 0, r, 1)
		cSum += cell(b, res, 0, r, 2)
	}
	b.ReportMetric(sSum/n, "sensing-only-mean-cm")
	b.ReportMetric(cSum/n, "integrated-comm-mean-cm")
}

func BenchmarkFig17CrossBand(b *testing.B) {
	res := runExperiment(b, "fig17")
	b.ReportMetric(cell(b, res, 0, 1, 1), "ber-9GHz-20dB")
	b.ReportMetric(cell(b, res, 0, 1, 2), "ber-24GHz-20dB")
}

func BenchmarkExtensions(b *testing.B) {
	res := runExperiment(b, "ext")
	// MSCK's 4×8 configuration vs CSSK's 41.7 kbit/s baseline.
	b.ReportMetric(cell(b, res, 0, 2, 2), "msck-4x8-kbps")
	b.ReportMetric(cell(b, res, 0, 0, 2), "cssk-5bit-kbps")
}

// Ablation benches: the design choices DESIGN.md §6 calls out.

func BenchmarkAblationGoertzelVsFFT(b *testing.B) {
	var gRate, fRate float64
	for i := 0; i < b.N; i++ {
		g, err := eval.DownlinkBER(eval.DownlinkSetup{SymbolBits: 5, Method: tag.MethodGoertzel}, 16, 10, 8)
		if err != nil {
			b.Fatal(err)
		}
		f, err := eval.DownlinkBER(eval.DownlinkSetup{SymbolBits: 5, Method: tag.MethodFFT}, 16, 10, 8)
		if err != nil {
			b.Fatal(err)
		}
		gRate, fRate = g.FloorRate(), f.FloorRate()
	}
	b.ReportMetric(gRate, "goertzel-ber")
	b.ReportMetric(fRate, "fft-ber")
}

func BenchmarkAblationRetroReflector(b *testing.B) {
	link := channel.DefaultLink()
	flat := link
	flat.TagRetroGainDBi = 0
	var diff float64
	for i := 0; i < b.N; i++ {
		diff = link.UplinkRxPowerDBm(5) - flat.UplinkRxPowerDBm(5)
	}
	b.ReportMetric(diff, "retro-gain-dB")
}

func BenchmarkAblationBackgroundSubtraction(b *testing.B) {
	var withSNR, withoutRange float64
	for i := 0; i < b.N; i++ {
		n, err := core.NewNetwork(core.Config{
			Nodes: []core.NodeConfig{{ID: 1, Range: 3.7}},
			Seed:  9,
		})
		if err != nil {
			b.Fatal(err)
		}
		frame, err := n.BuildSensingFrame(64)
		if err != nil {
			b.Fatal(err)
		}
		states, err := n.Nodes()[0].Tag.UplinkStates(nil, n.Config().Period, 64)
		if err != nil {
			b.Fatal(err)
		}
		scene := radar.Scene{
			Clutter: channel.OfficeClutter(),
			Tags: []radar.TagEcho{{
				Range: 3.7, States: states,
				PowerDBm: n.Link().UplinkRxPowerDBm(3.7),
			}},
		}
		capt := n.Radar().Observe(frame, scene)
		cm, grid := n.Radar().CorrectedMatrix(capt)
		f0 := n.Nodes()[0].Uplink.F0
		det, err := n.Radar().DetectTag(radar.SubtractBackgroundMag(radar.MagnitudeMatrix(cm)), grid, f0, n.Config().Period)
		if err != nil {
			b.Fatal(err)
		}
		withSNR = det.SNRdB
		if det2, err := n.Radar().DetectTag(radar.MagnitudeMatrix(cm), grid, f0, n.Config().Period); err == nil {
			withoutRange = det2.Range
		}
	}
	b.ReportMetric(withSNR, "with-subtraction-snr-dB")
	b.ReportMetric(withoutRange, "without-subtraction-locked-range-m")
}

func BenchmarkAblationSyncTolerance(b *testing.B) {
	// How much of the header can be missed before the packet is lost: wake
	// the tag progressively later into the preamble.
	pair, err := delayline.NewCoaxPair(45*delayline.MetersPerInch, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	_ = pair
	var maxSkip float64
	for i := 0; i < b.N; i++ {
		n, err := core.NewNetwork(core.Config{
			Nodes: []core.NodeConfig{{ID: 1, Range: 2.6}},
			Seed:  10,
		})
		if err != nil {
			b.Fatal(err)
		}
		payload := []byte{0xA5, 0x5A}
		frame, err := n.BuildDownlinkFrame(payload, 0)
		if err != nil {
			b.Fatal(err)
		}
		node := n.Nodes()[0]
		snr := n.Link().DownlinkSNRdB(2.6)
		maxSkip = 0
		for skip := 0.0; skip < 5; skip += 0.5 {
			x := node.Tag.FrontEnd.Capture(frame, snr, skip*n.Config().Period, 0)
			got, _, err := node.Tag.Decoder.DecodePacket(x, n.Packet())
			if err != nil || string(got) != string(payload) {
				break
			}
			maxSkip = skip
		}
	}
	b.ReportMetric(maxSkip, "max-header-chirps-skippable")
}

// Micro-benchmarks of the hot paths behind the experiments.

func BenchmarkEndToEndExchange(b *testing.B) {
	n, err := core.NewNetwork(core.Config{
		Nodes: []core.NodeConfig{{ID: 1, Range: 2.6}},
		Seed:  11,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte("benchmark")
	up := map[int][]bool{0: {true, false, true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Exchange(payload, up); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExchange measures the parallel exchange engine on a four-node
// deployment at several worker-pool widths. Results are byte-identical
// across widths; only wall-clock changes. scripts/bench_exchange.sh records
// the sub-benchmark timings (and the host's core count, which bounds the
// attainable speedup) into BENCH_exchange.json.
func BenchmarkExchange(b *testing.B) {
	payload := []byte("fleet payload")
	up := map[int][]bool{
		0: {true, false, true, true},
		1: {false, true, false, false},
		2: {true, true, false, true},
		3: {false, false, true, true},
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			n, err := core.NewNetwork(core.Config{
				Nodes: []core.NodeConfig{
					{ID: 1, Range: 1.5},
					{ID: 2, Range: 2.6},
					{ID: 3, Range: 3.8},
					{ID: 4, Range: 5.1},
				},
				// 64 chirps/bit keeps four auto-assigned FSK pairs inside
				// the slow-time band.
				ChirpsPerBit: 64,
				Seed:         14,
			}, core.WithWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			// One warm-up exchange so the scratch arenas reach their
			// high-water marks outside the timed region; the timed loop
			// then measures steady state, which is what the alloc pins
			// and BENCH_exchange.json schema 3 record.
			if _, err := n.Exchange(payload, up); err != nil {
				b.Fatal(err)
			}
			var before runtime.MemStats
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := n.Exchange(payload, up); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(after.PauseTotalNs-before.PauseTotalNs)/float64(b.N), "gc-pause-ns/op")
		})
	}
}

// BenchmarkFleet measures the serving layer at increasing tenancy: N
// networks resident on a GOMAXPROCS-engine fleet, each driven by its own
// submitting goroutine. Reported metrics are aggregate exchanges/sec and
// the p99 submit-to-done latency from the fleet.latency.seconds histogram;
// scripts/bench_fleet.sh records them into BENCH_fleet.json.
func BenchmarkFleet(b *testing.B) {
	payload := []byte("fleet payload")
	up := map[int][]bool{0: {true, false}, 1: {false, true}}
	for _, networks := range []int{1, 4, 16} {
		b.Run("networks="+strconv.Itoa(networks), func(b *testing.B) {
			m := NewMetrics()
			// Workers=1 per network: fleet tenancy is the parallelism axis
			// under measurement, not the per-exchange fan-out.
			fleet := NewFleet(FleetConfig{Metrics: m}, WithWorkers(1))
			defer fleet.Close()
			handles := make([]*FleetNetwork, networks)
			for i := range handles {
				fn, err := fleet.AddNetwork(Config{
					Nodes: []NodeConfig{
						{ID: 1, Range: 1.5 + 0.2*float64(i%4), ModulationF0: 1000, ModulationF1: 1600},
						{ID: 2, Range: 3.0 + 0.3*float64(i%3), ModulationF0: 2200, ModulationF1: 2800},
					},
					ChirpsPerBit: 16,
					Seed:         20 + int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				// Warm-up reaches each engine-resident scratch high-water
				// mark outside the timed region.
				if _, err := fn.Exchange(payload, up); err != nil {
					b.Fatal(err)
				}
				handles[i] = fn
			}
			var next atomic.Int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for _, fn := range handles {
				wg.Add(1)
				go func(fn *FleetNetwork) {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if _, err := fn.Exchange(payload, up); err != nil {
							b.Error(err)
							return
						}
					}
				}(fn)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "exchanges/sec")
			lat := m.Snapshot().Histograms["fleet.latency.seconds"]
			b.ReportMetric(lat.P99*1e3, "p99-latency-ms")
		})
	}
}

func BenchmarkTagDecodeFrame(b *testing.B) {
	n, err := core.NewNetwork(core.Config{
		Nodes: []core.NodeConfig{{ID: 1, Range: 2.6}},
		Seed:  12,
	})
	if err != nil {
		b.Fatal(err)
	}
	frame, err := n.BuildDownlinkFrame([]byte("decode cost"), 0)
	if err != nil {
		b.Fatal(err)
	}
	node := n.Nodes()[0]
	x := node.Tag.FrontEnd.CaptureFrame(frame, 25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := node.Tag.Decoder.DecodeFrame(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRadarProcessFrame(b *testing.B) {
	n, err := core.NewNetwork(core.Config{
		Nodes: []core.NodeConfig{{ID: 1, Range: 2.6}},
		Seed:  13,
	})
	if err != nil {
		b.Fatal(err)
	}
	frame, err := n.BuildSensingFrame(64)
	if err != nil {
		b.Fatal(err)
	}
	states, err := n.Nodes()[0].Tag.UplinkStates(nil, n.Config().Period, 64)
	if err != nil {
		b.Fatal(err)
	}
	scene := radar.Scene{
		Clutter: channel.OfficeClutter(),
		Tags: []radar.TagEcho{{
			Range: 2.6, States: states,
			PowerDBm: n.Link().UplinkRxPowerDBm(2.6),
		}},
	}
	capt := n.Radar().Observe(frame, scene)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm, grid := n.Radar().CorrectedMatrix(capt)
		matrix := radar.SubtractBackgroundMag(radar.MagnitudeMatrix(cm))
		if _, err := n.Radar().DetectTag(matrix, grid, n.Nodes()[0].Uplink.F0, n.Config().Period); err != nil {
			b.Fatal(err)
		}
	}
}
