// Package baseline implements the comparison systems of Table 1 —
// Millimetro, mmTag and MilBack — to the level needed to reproduce the
// paper's qualitative capability matrix and the quantitative costs the
// paper argues about: MilBack's handshake overhead and its loss of sensing
// duty cycle from time-slicing two independent waveforms.
//
// Each baseline reuses the same substrates (radar, channel, tag hardware
// models) so that differences in the comparison reflect protocol design, not
// simulation artifacts.
package baseline

import (
	"fmt"
	"math"

	"biscatter/internal/channel"
	"biscatter/internal/dsp"
)

// Capabilities is one row of Table 1.
type Capabilities struct {
	// Name identifies the system.
	Name string
	// Uplink: tag → radar data.
	Uplink bool
	// Downlink: radar → tag data.
	Downlink bool
	// Localization: the radar can localize the tag.
	Localization bool
	// IntegratedISAC: sensing and two-way communication run simultaneously
	// on one waveform, transparent to each other.
	IntegratedISAC bool
	// CommodityRadar: works with off-the-shelf FMCW radars.
	CommodityRadar bool
}

// System is a comparable radar-backscatter system.
type System interface {
	// Capabilities returns the system's Table-1 row.
	Capabilities() Capabilities
	// SensingDutyCycle returns the fraction of air time available to radar
	// sensing while communication is active (1.0 = fully integrated).
	SensingDutyCycle() float64
	// SetupFrames returns how many radar frames must be spent before the
	// first data bit can flow (handshaking/alignment overhead).
	SetupFrames() int
}

// Millimetro models the localization-only retro-reflective tag system
// (Soltanaghaei et al., MobiCom'21): tags are read-only fiducial markers
// identified and localized by their fixed modulation frequency.
type Millimetro struct{}

// Capabilities implements System.
func (Millimetro) Capabilities() Capabilities {
	return Capabilities{
		Name:           "Millimetro",
		Uplink:         false,
		Downlink:       false,
		Localization:   true,
		IntegratedISAC: false,
		CommodityRadar: true,
	}
}

// SensingDutyCycle implements System: there is no communication, so sensing
// always runs.
func (Millimetro) SensingDutyCycle() float64 { return 1.0 }

// SetupFrames implements System.
func (Millimetro) SetupFrames() int { return 0 }

// MmTag models the uplink-only mmWave backscatter network (Mazaheri et al.,
// SIGCOMM'21): tags modulate reflections to carry data to the radar, but the
// radar has no write access and the design does not target localization.
type MmTag struct{}

// Capabilities implements System.
func (MmTag) Capabilities() Capabilities {
	return Capabilities{
		Name:           "mmTag",
		Uplink:         true,
		Downlink:       false,
		Localization:   false,
		IntegratedISAC: false,
		CommodityRadar: true,
	}
}

// SensingDutyCycle implements System: mmTag repurposes the radar waveform as
// a carrier; the radar is not simultaneously used for sensing.
func (MmTag) SensingDutyCycle() float64 { return 0 }

// SetupFrames implements System.
func (MmTag) SetupFrames() int { return 0 }

// MilBack models the two-way mmWave backscatter system of Lu et al.
// (SIGCOMM'23): a custom access point alternates between a two-tone downlink
// waveform and triangular FMCW sensing, and must first scan the tag's
// frequency-scanning antenna (FSA) to estimate its orientation before any
// communication.
type MilBack struct {
	// ScanSteps is the number of FSA beam positions probed during the
	// orientation handshake (one frame per step).
	ScanSteps int
	// CommFraction is the fraction of air time given to the two-tone
	// communication waveform; the remainder carries FMCW sensing.
	CommFraction float64
}

// NewMilBack returns a MilBack model with the default handshake and
// time-division settings (a 16-position scan, even comm/sensing split).
func NewMilBack() MilBack {
	return MilBack{ScanSteps: 16, CommFraction: 0.5}
}

// Capabilities implements System.
func (MilBack) Capabilities() Capabilities {
	return Capabilities{
		Name:           "MilBack",
		Uplink:         true,
		Downlink:       true,
		Localization:   true,
		IntegratedISAC: false, // two independent waveforms, time-sliced
		CommodityRadar: false, // custom-built access point
	}
}

// SensingDutyCycle implements System: while the two-tone downlink is on air
// the radar cannot chirp, so sensing only runs in the FMCW slices.
func (m MilBack) SensingDutyCycle() float64 {
	return 1 - m.CommFraction
}

// SetupFrames implements System: one frame per FSA scan position before the
// link is usable.
func (m MilBack) SetupFrames() int { return m.ScanSteps }

// BiScatter is this paper's system, for the comparison table. The live
// implementation is internal/core; this type only carries the Table-1 row.
type BiScatter struct{}

// Capabilities implements System.
func (BiScatter) Capabilities() Capabilities {
	return Capabilities{
		Name:           "BiScatter",
		Uplink:         true,
		Downlink:       true,
		Localization:   true,
		IntegratedISAC: true,
		CommodityRadar: true,
	}
}

// SensingDutyCycle implements System: CSSK rides on the sensing chirps, so
// the radar senses during every chirp.
func (BiScatter) SensingDutyCycle() float64 { return 1.0 }

// SetupFrames implements System: the packet preamble is part of the normal
// frame; no dedicated handshake frames are needed.
func (BiScatter) SetupFrames() int { return 0 }

// Table1 returns all four systems in the paper's row order.
func Table1() []System {
	return []System{Millimetro{}, MmTag{}, NewMilBack(), BiScatter{}}
}

// TwoToneDownlink models MilBack's downlink primitive on the shared channel
// substrate: the access point transmits two tones spaced Δf apart; the tag's
// envelope detector produces a beat at Δf, and symbols are distinct tone
// spacings. This exists to compare downlink robustness per unit bandwidth
// against CSSK, using the same envelope-detector noise model.
type TwoToneDownlink struct {
	// Spacings are the symbol beat frequencies in Hz.
	Spacings []float64
	// SymbolDuration is the dwell time per symbol in seconds.
	SymbolDuration float64
	// SampleRate is the tag ADC rate in Hz.
	SampleRate float64
}

// NewTwoToneDownlink builds a two-tone downlink with nSymbols spacings
// between lo and hi Hz.
func NewTwoToneDownlink(nSymbols int, lo, hi, symbolDuration, sampleRate float64) (*TwoToneDownlink, error) {
	if nSymbols < 2 {
		return nil, fmt.Errorf("baseline: need at least 2 symbols, got %d", nSymbols)
	}
	if lo <= 0 || hi <= lo || hi >= sampleRate/2 {
		return nil, fmt.Errorf("baseline: invalid spacing range (%v, %v) at fs=%v", lo, hi, sampleRate)
	}
	if symbolDuration <= 0 {
		return nil, fmt.Errorf("baseline: symbol duration %v must be positive", symbolDuration)
	}
	sp := make([]float64, nSymbols)
	for i := range sp {
		sp[i] = lo + (hi-lo)*float64(i)/float64(nSymbols-1)
	}
	return &TwoToneDownlink{Spacings: sp, SymbolDuration: symbolDuration, SampleRate: sampleRate}, nil
}

// SimulateSymbol synthesizes the tag's envelope output for symbol idx at the
// given SNR and decodes it, returning the decoded symbol index.
func (t *TwoToneDownlink) SimulateSymbol(idx int, snrDB float64, noise *channel.Noise) (int, error) {
	if idx < 0 || idx >= len(t.Spacings) {
		return 0, fmt.Errorf("baseline: symbol %d out of range", idx)
	}
	n := int(t.SymbolDuration * t.SampleRate)
	if n < 8 {
		return 0, fmt.Errorf("baseline: symbol too short (%d samples)", n)
	}
	x := make([]float64, n)
	beat := t.Spacings[idx]
	phase := noise.Rand().Float64() * 2 * math.Pi
	for i := range x {
		x[i] = math.Cos(2*math.Pi*beat*float64(i)/t.SampleRate + phase)
	}
	noise.AddReal(x, channel.SigmaForSNR(1, snrDB))
	best, bestP := 0, -1.0
	for j, f := range t.Spacings {
		if p := dsp.RealToneEnergy(x, f, t.SampleRate); p > bestP {
			bestP, best = p, j
		}
	}
	return best, nil
}

// SymbolErrorRate measures the two-tone downlink's symbol error rate over
// trials random symbols at the given SNR.
func (t *TwoToneDownlink) SymbolErrorRate(snrDB float64, trials int, seed int64) float64 {
	noise := channel.NewNoise(seed)
	errs := 0
	for k := 0; k < trials; k++ {
		idx := noise.Rand().Intn(len(t.Spacings))
		got, err := t.SimulateSymbol(idx, snrDB, noise)
		if err != nil || got != idx {
			errs++
		}
	}
	return float64(errs) / float64(trials)
}
