package baseline

import (
	"testing"

	"biscatter/internal/channel"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("table should have 4 systems, got %d", len(rows))
	}
	want := []Capabilities{
		{Name: "Millimetro", Uplink: false, Downlink: false, Localization: true, IntegratedISAC: false, CommodityRadar: true},
		{Name: "mmTag", Uplink: true, Downlink: false, Localization: false, IntegratedISAC: false, CommodityRadar: true},
		{Name: "MilBack", Uplink: true, Downlink: true, Localization: true, IntegratedISAC: false, CommodityRadar: false},
		{Name: "BiScatter", Uplink: true, Downlink: true, Localization: true, IntegratedISAC: true, CommodityRadar: true},
	}
	for i, sys := range rows {
		if got := sys.Capabilities(); got != want[i] {
			t.Errorf("row %d: got %+v, want %+v", i, got, want[i])
		}
	}
}

func TestOnlyBiScatterHasAllCapabilities(t *testing.T) {
	full := 0
	for _, sys := range Table1() {
		c := sys.Capabilities()
		if c.Uplink && c.Downlink && c.Localization && c.IntegratedISAC && c.CommodityRadar {
			full++
			if c.Name != "BiScatter" {
				t.Errorf("%s should not have every capability", c.Name)
			}
		}
	}
	if full != 1 {
		t.Fatalf("%d systems have all capabilities, want exactly 1", full)
	}
}

func TestSensingDutyCycle(t *testing.T) {
	if (BiScatter{}).SensingDutyCycle() != 1 {
		t.Error("BiScatter should sense continuously")
	}
	mb := NewMilBack()
	if dc := mb.SensingDutyCycle(); dc >= 1 || dc <= 0 {
		t.Errorf("MilBack duty cycle %v should be strictly between 0 and 1", dc)
	}
	if (Millimetro{}).SensingDutyCycle() != 1 {
		t.Error("Millimetro senses continuously")
	}
}

func TestSetupFramesOnlyMilBack(t *testing.T) {
	for _, sys := range Table1() {
		c := sys.Capabilities()
		if c.Name == "MilBack" {
			if sys.SetupFrames() <= 0 {
				t.Error("MilBack needs a handshake")
			}
		} else if sys.SetupFrames() != 0 {
			t.Errorf("%s should not need setup frames", c.Name)
		}
	}
}

func TestTwoToneDownlinkValidation(t *testing.T) {
	if _, err := NewTwoToneDownlink(1, 10e3, 100e3, 100e-6, 1e6); err == nil {
		t.Error("1 symbol should fail")
	}
	if _, err := NewTwoToneDownlink(4, 0, 100e3, 100e-6, 1e6); err == nil {
		t.Error("zero lo should fail")
	}
	if _, err := NewTwoToneDownlink(4, 10e3, 600e3, 100e-6, 1e6); err == nil {
		t.Error("hi above Nyquist should fail")
	}
	if _, err := NewTwoToneDownlink(4, 10e3, 100e3, 0, 1e6); err == nil {
		t.Error("zero duration should fail")
	}
	tt, err := NewTwoToneDownlink(4, 10e3, 100e3, 100e-6, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tt.SimulateSymbol(9, 30, channel.NewNoise(1)); err == nil {
		t.Error("out-of-range symbol should fail")
	}
}

func TestTwoToneDownlinkCleanChannel(t *testing.T) {
	tt, err := NewTwoToneDownlink(8, 10e3, 120e3, 100e-6, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	noise := channel.NewNoise(2)
	for idx := 0; idx < 8; idx++ {
		got, err := tt.SimulateSymbol(idx, 40, noise)
		if err != nil {
			t.Fatal(err)
		}
		if got != idx {
			t.Fatalf("symbol %d decoded as %d at 40 dB", idx, got)
		}
	}
}

func TestTwoToneDownlinkSERDegradesWithNoise(t *testing.T) {
	tt, err := NewTwoToneDownlink(16, 10e3, 120e3, 100e-6, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	high := tt.SymbolErrorRate(30, 200, 3)
	// The 100 µs matched filter adds ~17 dB of integration gain, so the SNR
	// must go well below zero before symbol decisions start failing.
	low := tt.SymbolErrorRate(-18, 200, 3)
	if high > 0.02 {
		t.Fatalf("SER at 30 dB = %v, should be near zero", high)
	}
	if low < 5*high+0.05 {
		t.Fatalf("SER should degrade at low SNR: high=%v low=%v", high, low)
	}
}
