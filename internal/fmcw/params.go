// Package fmcw models Frequency Modulated Continuous Wave radar waveforms:
// chirp parameters, the range equations used throughout the BiScatter paper
// (Eqs. 3–5), frame schedules with per-chirp slopes and inter-chirp delays,
// and a phase-accurate baseband chirp synthesizer used to validate the
// analytic models.
//
// Convention: a chirp sweeps Bandwidth hertz in Duration seconds, so the
// chirp slope is α = B/T (Hz/s) and the instantaneous frequency is
// f(t) = f0 + α·t. The transmitted phase is φ(t) = 2π(f0·t + α·t²/2).
package fmcw

import (
	"fmt"
	"math"
	"time"
)

// SpeedOfLight is the propagation speed used for all range math (m/s).
const SpeedOfLight = 299792458.0

// ChirpParams describes a single FMCW chirp.
type ChirpParams struct {
	// StartFrequency is the sweep start frequency f0 in Hz (e.g. 9 GHz).
	StartFrequency float64
	// Bandwidth is the swept bandwidth B in Hz. BiScatter keeps this fixed
	// across symbols to preserve range resolution (§3.1).
	Bandwidth float64
	// Duration is the chirp duration T_chirp in seconds. CSSK varies this
	// (and hence the slope) to encode downlink symbols.
	Duration float64
	// SampleRate is the radar IF sampling rate fs in Hz.
	SampleRate float64
}

// Validate checks that the parameters describe a physical chirp.
func (p ChirpParams) Validate() error {
	switch {
	case p.StartFrequency < 0:
		return fmt.Errorf("fmcw: start frequency %v Hz must be non-negative", p.StartFrequency)
	case p.Bandwidth <= 0:
		return fmt.Errorf("fmcw: bandwidth %v Hz must be positive", p.Bandwidth)
	case p.Duration <= 0:
		return fmt.Errorf("fmcw: duration %v s must be positive", p.Duration)
	case p.SampleRate <= 0:
		return fmt.Errorf("fmcw: sample rate %v Hz must be positive", p.SampleRate)
	}
	return nil
}

// Slope returns the chirp slope α = B/T_chirp in Hz/s.
func (p ChirpParams) Slope() float64 {
	return p.Bandwidth / p.Duration
}

// CenterFrequency returns f0 + B/2 in Hz, used for wavelength-dependent link
// budget terms.
func (p ChirpParams) CenterFrequency() float64 {
	return p.StartFrequency + p.Bandwidth/2
}

// Wavelength returns the wavelength at the chirp center frequency in meters.
func (p ChirpParams) Wavelength() float64 {
	return SpeedOfLight / p.CenterFrequency()
}

// IFFrequency returns the dechirped beat frequency for a reflector at
// distance r meters (Eq. 3): f_IF = 2·α·r/c.
func (p ChirpParams) IFFrequency(r float64) float64 {
	return 2 * p.Slope() * r / SpeedOfLight
}

// RangeFromIF inverts Eq. 3: the reflector distance for a measured beat
// frequency fIF.
func (p ChirpParams) RangeFromIF(fIF float64) float64 {
	return fIF * SpeedOfLight / (2 * p.Slope())
}

// MaxRange returns the maximum unambiguous range (Eq. 4):
// R_max = fs·c·T_chirp / (2B). It shrinks as the chirp gets steeper, which is
// exactly the ambiguity CSSK introduces and the IF correction removes.
func (p ChirpParams) MaxRange() float64 {
	return p.SampleRate * SpeedOfLight * p.Duration / (2 * p.Bandwidth)
}

// RangeResolution returns the range resolution (Eq. 5): R_res = c/(2B).
// It depends only on bandwidth, which is why CSSK fixes B.
func (p ChirpParams) RangeResolution() float64 {
	return SpeedOfLight / (2 * p.Bandwidth)
}

// SamplesPerChirp returns the number of IF samples captured during one chirp.
func (p ChirpParams) SamplesPerChirp() int {
	return int(math.Round(p.SampleRate * p.Duration))
}

// WithDuration returns a copy of p with the duration (and hence slope)
// changed. This is the CSSK symbol operation.
func (p ChirpParams) WithDuration(d float64) ChirpParams {
	p.Duration = d
	return p
}

// String implements fmt.Stringer.
func (p ChirpParams) String() string {
	return fmt.Sprintf("fmcw.Chirp{f0=%.3f GHz B=%.0f MHz T=%.1f µs fs=%.1f MHz}",
		p.StartFrequency/1e9, p.Bandwidth/1e6, p.Duration*1e6, p.SampleRate/1e6)
}

// DurationAsTime returns the chirp duration as a time.Duration, for
// scheduling in the networked demo.
func (p ChirpParams) DurationAsTime() time.Duration {
	return time.Duration(p.Duration * float64(time.Second))
}
