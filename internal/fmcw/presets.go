package fmcw

// Radar presets matching the two platforms the paper evaluates (§4).

// Preset bundles a radar front-end configuration.
type Preset struct {
	// Name identifies the platform.
	Name string
	// Chirp is the base chirp configuration; Duration holds the default
	// (sensing-mode) chirp duration and is overridden per CSSK symbol.
	Chirp ChirpParams
	// TxPowerDBm is the transmit power in dBm.
	TxPowerDBm float64
	// AntennaGainDBi is the radar antenna gain in dBi.
	AntennaGainDBi float64
	// NoiseFigureDB is the receiver noise figure in dB.
	NoiseFigureDB float64
	// DefaultPeriod is the chirp period T_period used by the evaluation
	// (120 µs in §5).
	DefaultPeriod float64
}

// Radar9GHz models the sub-10 GHz platform: a TI LMX2492EVM chirp generator
// with a ZX80-05113LN+ amplifier — 9 GHz start frequency, up to 1 GHz of
// configurable bandwidth, 7 dBm output.
func Radar9GHz() Preset {
	return Preset{
		Name: "9GHz-LMX2492",
		Chirp: ChirpParams{
			StartFrequency: 9e9,
			Bandwidth:      1e9,
			Duration:       60e-6,
			SampleRate:     4e6,
		},
		TxPowerDBm:     7,
		AntennaGainDBi: 12,
		NoiseFigureDB:  10,
		DefaultPeriod:  120e-6,
	}
}

// Radar24GHz models the Analog Devices TinyRad: 24 GHz carrier, 250 MHz of
// bandwidth (limited by the ISM band), 8 dBm output.
func Radar24GHz() Preset {
	return Preset{
		Name: "24GHz-TinyRad",
		Chirp: ChirpParams{
			StartFrequency: 24e9,
			Bandwidth:      250e6,
			Duration:       60e-6,
			SampleRate:     4e6,
		},
		TxPowerDBm:     8,
		AntennaGainDBi: 13, // higher-gain patch array practical at 24 GHz
		NoiseFigureDB:  12,
		DefaultPeriod:  120e-6,
	}
}

// WithBandwidth returns a copy of the preset with the chirp bandwidth
// changed — used by the Fig. 12 bandwidth sweep and the Fig. 17 fair
// comparison (both radars at 250 MHz).
func (p Preset) WithBandwidth(b float64) Preset {
	p.Chirp.Bandwidth = b
	return p
}
