package fmcw

import (
	"fmt"
	"math"
)

// MaxDutyCycle is the largest fraction of the chirp period a chirp may
// occupy. Commercial radars need a minimum inter-chirp delay to reset the
// synthesizer and run the down-chirp (§3.1 cites TI's application note), so
// BiScatter assumes T_chirp ≤ 0.8·T_period.
const MaxDutyCycle = 0.8

// Chirp is one scheduled chirp inside a frame: its waveform parameters plus
// the inter-chirp delay that pads it to the fixed chirp period.
type Chirp struct {
	Params ChirpParams
	// InterChirpDelay is the idle time after the sweep, in seconds, so that
	// Params.Duration + InterChirpDelay == the frame's chirp period.
	InterChirpDelay float64
	// Index is the chirp's position within its frame.
	Index int
}

// Period returns the total chirp period T_period = T_chirp + T_interC.
func (c Chirp) Period() float64 {
	return c.Params.Duration + c.InterChirpDelay
}

// Frame is a sequence of chirps with a common period and bandwidth but
// (potentially) varying slopes — the unit of BiScatter's ISAC protocol.
type Frame struct {
	Chirps []Chirp
	// Period is the fixed chirp period T_period in seconds shared by every
	// chirp in the frame; it defines the downlink symbol time.
	Period float64
}

// Duration returns the total frame duration in seconds.
func (f *Frame) Duration() float64 {
	return float64(len(f.Chirps)) * f.Period
}

// Slopes returns the per-chirp slopes in Hz/s.
func (f *Frame) Slopes() []float64 {
	out := make([]float64, len(f.Chirps))
	for i, c := range f.Chirps {
		out[i] = c.Params.Slope()
	}
	return out
}

// FrameBuilder assembles frames with a fixed chirp period from a base chirp
// configuration, enforcing the commercial-radar duty-cycle constraint.
type FrameBuilder struct {
	base   ChirpParams // duration field ignored; per-chirp durations supplied
	period float64
}

// NewFrameBuilder creates a builder for frames with chirp period T_period
// seconds. The base parameters supply f0, bandwidth and sample rate.
func NewFrameBuilder(base ChirpParams, period float64) (*FrameBuilder, error) {
	probe := base
	if probe.Duration == 0 {
		probe.Duration = period * MaxDutyCycle
	}
	if err := probe.Validate(); err != nil {
		return nil, err
	}
	if period <= 0 {
		return nil, fmt.Errorf("fmcw: chirp period %v s must be positive", period)
	}
	return &FrameBuilder{base: base, period: period}, nil
}

// Period returns the builder's chirp period.
func (b *FrameBuilder) Period() float64 { return b.period }

// MaxChirpDuration returns the longest chirp duration the period admits.
func (b *FrameBuilder) MaxChirpDuration() float64 { return b.period * MaxDutyCycle }

// Build creates a frame from the per-chirp durations (seconds). Every
// duration must be positive and at most MaxChirpDuration.
func (b *FrameBuilder) Build(durations []float64) (*Frame, error) {
	if len(durations) == 0 {
		return nil, fmt.Errorf("fmcw: frame needs at least one chirp")
	}
	f := &Frame{Period: b.period, Chirps: make([]Chirp, len(durations))}
	maxT := b.MaxChirpDuration()
	for i, d := range durations {
		if d <= 0 {
			return nil, fmt.Errorf("fmcw: chirp %d duration %v s must be positive", i, d)
		}
		if d > maxT+1e-15 {
			return nil, fmt.Errorf("fmcw: chirp %d duration %v s exceeds %.0f%% of period %v s",
				i, d, MaxDutyCycle*100, b.period)
		}
		p := b.base
		p.Duration = d
		f.Chirps[i] = Chirp{
			Params:          p,
			InterChirpDelay: b.period - d,
			Index:           i,
		}
	}
	return f, nil
}

// BuildUniform creates a frame of n identical chirps of the given duration —
// the sensing-only mode with a fixed slope.
func (b *FrameBuilder) BuildUniform(n int, duration float64) (*Frame, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fmcw: frame needs at least one chirp, got %d", n)
	}
	durs := make([]float64, n)
	for i := range durs {
		durs[i] = duration
	}
	return b.Build(durs)
}

// DurationQuantum is the granularity at which commercial chirp generators can
// program chirp durations (seconds). We use 0.1 µs, consistent with the
// timer resolution of TI/ADI synthesizers.
const DurationQuantum = 100e-9

// QuantizeDuration rounds a chirp duration to the synthesizer quantum.
func QuantizeDuration(d float64) float64 {
	return math.Round(d/DurationQuantum) * DurationQuantum
}
