package fmcw

import (
	"fmt"
	"math"
)

// Waveform synthesis. These helpers produce phase-accurate baseband chirp
// samples. They exist mainly to validate the analytic shortcuts used by the
// tag and radar models (which never need full-rate waveforms), and to power
// the wired "chirp generator" experiment of Fig. 5.

// SynthesizeChirp returns complex baseband samples of one chirp:
// exp(j·2π(f0·t + α·t²/2)) sampled at p.SampleRate for p.Duration seconds.
// StartFrequency here is interpreted as a baseband offset (use 0 for a pure
// baseband sweep); pass the absolute f0 only for the small wired experiments
// where p.SampleRate is set high enough to satisfy Nyquist.
func SynthesizeChirp(p ChirpParams) ([]complex128, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.SamplesPerChirp()
	if n <= 0 {
		return nil, fmt.Errorf("fmcw: chirp too short for sample rate: %v", p)
	}
	alpha := p.Slope()
	out := make([]complex128, n)
	for i := range out {
		t := float64(i) / p.SampleRate
		ph := 2 * math.Pi * (p.StartFrequency*t + alpha*t*t/2)
		out[i] = complex(math.Cos(ph), math.Sin(ph))
	}
	return out, nil
}

// SynthesizeRealChirp returns real-valued chirp samples cos(φ(t)), as
// produced by a real (non-IQ) chirp generator.
func SynthesizeRealChirp(p ChirpParams) ([]float64, error) {
	c, err := SynthesizeChirp(p)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(c))
	for i, v := range c {
		out[i] = real(v)
	}
	return out, nil
}

// DelaySamples returns a copy of x delayed by the given time, realized as an
// integer sample shift with zero fill; the fractional remainder is returned
// so callers can account for it. Used by the wired delay-line experiment.
func DelaySamples(x []complex128, delay, fs float64) (shifted []complex128, fracRemainder float64) {
	if delay < 0 {
		panic("fmcw: DelaySamples requires non-negative delay")
	}
	n := int(delay * fs)
	fracRemainder = delay - float64(n)/fs
	shifted = make([]complex128, len(x))
	copy(shifted[n:], x[:max(0, len(x)-n)])
	return shifted, fracRemainder
}

// MixToIF multiplies the transmitted chirp with the conjugate of the received
// signal — the radar's dechirp operation — returning the IF samples.
func MixToIF(tx, rx []complex128) []complex128 {
	n := min(len(tx), len(rx))
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		r := rx[i]
		out[i] = tx[i] * complex(real(r), -imag(r))
	}
	return out
}

// EnvelopeDetect models an ideal square-law envelope detector followed by
// DC removal: it returns |x[i]|² with the mean subtracted, which keeps the
// low-frequency beat while discarding the carrier, matching the
// splitter+detector equivalence to a mixer derived in §3.2.1 (Eq. 9).
func EnvelopeDetect(x []complex128) []float64 {
	out := make([]float64, len(x))
	var mean float64
	for i, v := range x {
		p := real(v)*real(v) + imag(v)*imag(v)
		out[i] = p
		mean += p
	}
	if len(out) > 0 {
		mean /= float64(len(out))
		for i := range out {
			out[i] -= mean
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
