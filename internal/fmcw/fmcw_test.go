package fmcw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"biscatter/internal/dsp"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func baseChirp() ChirpParams {
	return ChirpParams{
		StartFrequency: 9e9,
		Bandwidth:      1e9,
		Duration:       100e-6,
		SampleRate:     4e6,
	}
}

func TestChirpParamsValidate(t *testing.T) {
	good := baseChirp()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	baseband := ChirpParams{Bandwidth: 1e9, Duration: 1e-4, SampleRate: 1e6}
	if err := baseband.Validate(); err != nil {
		t.Errorf("baseband chirp (f0=0) should be valid: %v", err)
	}
	bad := []ChirpParams{
		{StartFrequency: 9e9, Duration: 1e-4, SampleRate: 1e6},                  // B missing
		{StartFrequency: 9e9, Bandwidth: 1e9, SampleRate: 1e6},                  // T missing
		{StartFrequency: 9e9, Bandwidth: 1e9, Duration: 1e-4},                   // fs missing
		{StartFrequency: -9e9, Bandwidth: 1e9, Duration: 1e-4, SampleRate: 1e6}, // negative
		{StartFrequency: 9e9, Bandwidth: 1e9, Duration: -1e-4, SampleRate: 1e6}, // negative
		{StartFrequency: 9e9, Bandwidth: -1e9, Duration: 1e-4, SampleRate: 1e6}, // negative
		{StartFrequency: 9e9, Bandwidth: 1e9, Duration: 1e-4, SampleRate: -1},   // negative
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

func TestSlopeEquation(t *testing.T) {
	p := baseChirp()
	want := 1e9 / 100e-6
	if got := p.Slope(); !approxEq(got, want, 1) {
		t.Fatalf("slope %v, want %v", got, want)
	}
}

func TestIFFrequencyEquation3(t *testing.T) {
	p := baseChirp()
	r := 5.0
	want := 2 * p.Slope() * r / SpeedOfLight
	if got := p.IFFrequency(r); !approxEq(got, want, 1e-9) {
		t.Fatalf("fIF %v, want %v", got, want)
	}
}

func TestRangeFromIFInvertsIFFrequency(t *testing.T) {
	f := func(rRaw uint16, durSel uint8) bool {
		r := 0.5 + float64(rRaw%700)/100 // 0.5..7.5 m
		p := baseChirp().WithDuration(20e-6 + float64(durSel%10)*20e-6)
		return approxEq(p.RangeFromIF(p.IFFrequency(r)), r, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxRangeEquation4(t *testing.T) {
	p := baseChirp()
	want := p.SampleRate * SpeedOfLight * p.Duration / (2 * p.Bandwidth)
	if got := p.MaxRange(); !approxEq(got, want, 1e-9) {
		t.Fatalf("Rmax %v, want %v", got, want)
	}
	// Steeper chirps (shorter duration) shrink the unambiguous range.
	steep := p.WithDuration(p.Duration / 2)
	if steep.MaxRange() >= p.MaxRange() {
		t.Fatal("Rmax should shrink for steeper chirps")
	}
}

func TestRangeResolutionEquation5(t *testing.T) {
	p := baseChirp()
	if got := p.RangeResolution(); !approxEq(got, SpeedOfLight/2e9, 1e-9) {
		t.Fatalf("Rres %v", got)
	}
	// Resolution is independent of chirp duration — the motivation for CSSK
	// keeping bandwidth fixed.
	if p.WithDuration(33e-6).RangeResolution() != p.RangeResolution() {
		t.Fatal("range resolution must not depend on duration")
	}
}

func TestCenterFrequencyAndWavelength(t *testing.T) {
	p := baseChirp()
	if got := p.CenterFrequency(); !approxEq(got, 9.5e9, 1) {
		t.Fatalf("center frequency %v", got)
	}
	if got := p.Wavelength(); !approxEq(got, SpeedOfLight/9.5e9, 1e-12) {
		t.Fatalf("wavelength %v", got)
	}
}

func TestSamplesPerChirp(t *testing.T) {
	p := baseChirp()
	if got := p.SamplesPerChirp(); got != 400 {
		t.Fatalf("samples per chirp %d, want 400", got)
	}
}

func TestFrameBuilderValidation(t *testing.T) {
	if _, err := NewFrameBuilder(baseChirp(), 0); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := NewFrameBuilder(ChirpParams{}, 120e-6); err == nil {
		t.Error("invalid base chirp should fail")
	}
}

func TestFrameBuilderDutyCycleEnforced(t *testing.T) {
	b, err := NewFrameBuilder(baseChirp(), 120e-6)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build([]float64{100e-6}); err == nil {
		t.Fatal("chirp exceeding 80% duty cycle should be rejected")
	}
	if _, err := b.Build([]float64{96e-6}); err != nil {
		t.Fatalf("chirp at duty-cycle limit rejected: %v", err)
	}
	if _, err := b.Build([]float64{-1}); err == nil {
		t.Fatal("negative duration should be rejected")
	}
	if _, err := b.Build(nil); err == nil {
		t.Fatal("empty frame should be rejected")
	}
}

func TestFramePeriodInvariant(t *testing.T) {
	b, _ := NewFrameBuilder(baseChirp(), 120e-6)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		durs := make([]float64, 1+rng.Intn(64))
		for i := range durs {
			durs[i] = 20e-6 + rng.Float64()*(b.MaxChirpDuration()-20e-6)
		}
		frame, err := b.Build(durs)
		if err != nil {
			return false
		}
		for _, c := range frame.Chirps {
			if !approxEq(c.Period(), 120e-6, 1e-12) {
				return false
			}
		}
		return approxEq(frame.Duration(), float64(len(durs))*120e-6, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildUniform(t *testing.T) {
	b, _ := NewFrameBuilder(baseChirp(), 120e-6)
	frame, err := b.BuildUniform(16, 60e-6)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame.Chirps) != 16 {
		t.Fatalf("chirp count %d", len(frame.Chirps))
	}
	slopes := frame.Slopes()
	for _, s := range slopes {
		if !approxEq(s, 1e9/60e-6, 1) {
			t.Fatalf("slope %v", s)
		}
	}
	if _, err := b.BuildUniform(0, 60e-6); err == nil {
		t.Fatal("zero chirps should fail")
	}
}

func TestChirpIndices(t *testing.T) {
	b, _ := NewFrameBuilder(baseChirp(), 120e-6)
	frame, _ := b.BuildUniform(5, 60e-6)
	for i, c := range frame.Chirps {
		if c.Index != i {
			t.Fatalf("chirp %d has index %d", i, c.Index)
		}
	}
}

func TestQuantizeDuration(t *testing.T) {
	if got := QuantizeDuration(33.333e-6); !approxEq(got, 33.3e-6, 1e-12) {
		t.Fatalf("quantized %v", got)
	}
	if got := QuantizeDuration(33.36e-6); !approxEq(got, 33.4e-6, 1e-12) {
		t.Fatalf("quantized %v", got)
	}
}

func TestSynthesizeChirpInstantaneousFrequency(t *testing.T) {
	// Use a baseband sweep (f0 small) with a generous sample rate so the
	// phase derivative is measurable.
	p := ChirpParams{StartFrequency: 1e3, Bandwidth: 100e3, Duration: 10e-3, SampleRate: 1e6}
	x, err := SynthesizeChirp(p)
	if err != nil {
		t.Fatal(err)
	}
	// Estimate instantaneous frequency from phase differences at 25% and 75%
	// through the sweep; it must match f0 + α·t.
	instFreq := func(i int) float64 {
		ph0 := math.Atan2(imag(x[i]), real(x[i]))
		ph1 := math.Atan2(imag(x[i+1]), real(x[i+1]))
		d := ph1 - ph0
		for d < -math.Pi {
			d += 2 * math.Pi
		}
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		return d * p.SampleRate / (2 * math.Pi)
	}
	for _, frac := range []float64{0.25, 0.75} {
		i := int(frac * float64(len(x)-2))
		tsec := float64(i) / p.SampleRate
		want := p.StartFrequency + p.Slope()*tsec
		if got := instFreq(i); !approxEq(got, want, 100) {
			t.Fatalf("at %.0f%%: instantaneous freq %v, want %v", frac*100, got, want)
		}
	}
}

func TestSynthesizeChirpRejectsInvalid(t *testing.T) {
	if _, err := SynthesizeChirp(ChirpParams{}); err == nil {
		t.Fatal("invalid params should fail")
	}
}

func TestSynthesizeRealChirpIsRealPart(t *testing.T) {
	p := ChirpParams{StartFrequency: 1e3, Bandwidth: 10e3, Duration: 1e-3, SampleRate: 1e6}
	c, _ := SynthesizeChirp(p)
	r, err := SynthesizeRealChirp(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r {
		if r[i] != real(c[i]) {
			t.Fatalf("sample %d mismatch", i)
		}
	}
}

func TestDelayedMixProducesExpectedBeat(t *testing.T) {
	// End-to-end waveform validation of the delay-line principle (Eq. 9):
	// delay a chirp by ΔT, mix with the undelayed copy, and verify the beat
	// frequency α·ΔT appears.
	p := ChirpParams{StartFrequency: 0, Bandwidth: 200e3, Duration: 20e-3, SampleRate: 2e6}
	x, err := SynthesizeChirp(p)
	if err != nil {
		t.Fatal(err)
	}
	const deltaT = 500e-6
	delayed, _ := DelaySamples(x, deltaT, p.SampleRate)
	ifSig := MixToIF(x, delayed)
	// Skip the leading transient where the delayed copy is zero.
	skip := int(deltaT*p.SampleRate) + 1
	spec := dsp.Magnitudes(dsp.FFT(ifSig[skip:]))
	n := len(spec)
	idx, _ := dsp.MaxIndexRange(spec, 1, n/2)
	gotBeat := dsp.BinFrequency(idx, n, p.SampleRate)
	wantBeat := p.Slope() * deltaT
	binWidth := p.SampleRate / float64(n)
	if math.Abs(gotBeat-wantBeat) > 2*binWidth {
		t.Fatalf("beat %v Hz, want %v Hz (bin width %v)", gotBeat, wantBeat, binWidth)
	}
}

func TestEnvelopeDetectRemovesDC(t *testing.T) {
	x := []complex128{1, 1i, -1, -1i}
	env := EnvelopeDetect(x)
	var sum float64
	for _, v := range env {
		sum += v
	}
	if !approxEq(sum, 0, 1e-12) {
		t.Fatalf("DC not removed: sum %v", sum)
	}
	if len(EnvelopeDetect(nil)) != 0 {
		t.Fatal("empty input should give empty output")
	}
}

func TestDelaySamplesNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DelaySamples(make([]complex128, 4), -1, 1e6)
}

func TestPresets(t *testing.T) {
	for _, p := range []Preset{Radar9GHz(), Radar24GHz()} {
		if err := p.Chirp.Validate(); err != nil {
			t.Errorf("%s: invalid chirp: %v", p.Name, err)
		}
		if p.DefaultPeriod <= 0 || p.TxPowerDBm == 0 {
			t.Errorf("%s: incomplete preset %+v", p.Name, p)
		}
	}
	if Radar9GHz().Chirp.Bandwidth != 1e9 {
		t.Error("9 GHz preset should have 1 GHz bandwidth")
	}
	if Radar24GHz().Chirp.Bandwidth != 250e6 {
		t.Error("24 GHz preset should have 250 MHz bandwidth")
	}
	narrow := Radar9GHz().WithBandwidth(250e6)
	if narrow.Chirp.Bandwidth != 250e6 {
		t.Error("WithBandwidth did not apply")
	}
}
