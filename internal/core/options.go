package core

import (
	"biscatter/internal/channel"
	"biscatter/internal/fault"
	"biscatter/internal/fec"
	"biscatter/internal/fmcw"
	"biscatter/internal/mac"
	"biscatter/internal/telemetry"
)

// Option is a functional option for NewNetwork. Options run after the
// Config struct is copied and before defaults are applied, so they compose
// with the struct path: a zero Config plus options is equivalent to filling
// the corresponding fields, and an option overrides the field it names.
type Option func(*Config)

// WithWorkers sizes the worker pool that the exchange engine fans its
// per-chirp, per-node and per-bin work across. Non-positive (the default)
// selects GOMAXPROCS. Results are byte-identical for any worker count.
func WithWorkers(n int) Option {
	return func(c *Config) { c.Workers = n }
}

// WithPreset selects the radar platform preset.
func WithPreset(p fmcw.Preset) Option {
	return func(c *Config) { c.Preset = p }
}

// WithClutter replaces the static environment. An explicit empty (but
// non-nil) slice selects a clutter-free scene; nil keeps the office
// default.
func WithClutter(clutter []channel.Reflector) Option {
	return func(c *Config) { c.Clutter = clutter }
}

// WithSeed roots every stochastic component of the network.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithNodes places the backscatter nodes, replacing any nodes already in
// the Config.
func WithNodes(nodes ...NodeConfig) Option {
	return func(c *Config) { c.Nodes = nodes }
}

// WithFaults applies an impairment profile to the whole network: burst
// in-band interference, chirp dropouts, moving clutter, and per-tag
// front-end degradations (oscillator drift, ADC saturation, desync). Nil —
// or a profile with every impairment disabled — leaves all exchange results
// and telemetry byte-identical to a fault-free network; see the fault
// package for the determinism contract.
func WithFaults(p *fault.Profile) Option {
	return func(c *Config) { c.Faults = p }
}

// WithFEC selects the downlink forward-error-correction layer. The zero
// config (fec.SchemeNone) keeps on-air frames byte-identical to a build
// without FEC.
func WithFEC(fc fec.Config) Option {
	return func(c *Config) { c.FEC = fc }
}

// WithPreamble sizes the downlink preamble: header chirps (period
// estimation) and sync chirps (payload start marker). Longer preambles
// survive jammed chirps at the cost of airtime. Zero keeps the default
// (8 header, 2 sync).
func WithPreamble(headerChirps, syncChirps int) Option {
	return func(c *Config) {
		c.HeaderChirps = headerChirps
		c.SyncChirps = syncChirps
	}
}

// WithLinkMode applies a link controller operating mode to the
// configuration — symbol width, FEC, and preamble in one step. It is how
// the controller rebuilds a network at a new degradation level, exported so
// experiments can pin a fixed mode.
func WithLinkMode(m LinkMode) Option {
	return func(c *Config) { m.apply(c) }
}

// WithMetrics attaches a telemetry registry: per-stage latency histograms,
// per-node outcome counters, BER tallies, detection gauges and worker-pool
// statistics, readable at any time via Network.Metrics(). A registry may be
// shared across networks to aggregate. Nil disables collection (the
// default); telemetry never influences exchange results.
func WithMetrics(m *telemetry.Metrics) Option {
	return func(c *Config) { c.Metrics = m }
}

// WithTelemetry attaches a structured event recorder (exchange begin/end,
// per-node decode / detection / demod outcomes) and ensures a metrics
// registry exists — the one-call way to turn the full observability surface
// on. A nil recorder still enables metrics.
func WithTelemetry(rec telemetry.Recorder) Option {
	return func(c *Config) {
		c.Recorder = rec
		if c.Metrics == nil {
			c.Metrics = telemetry.New()
		}
	}
}

// WithTracer attaches an exchange tracer: every Exchange round produces a
// causal span tree (frame build, per-node downlink decodes, radar observe
// and IF correction, detection, per-node uplink demods) under a
// deterministic ExchangeID, collected into t and exportable as JSONL or
// Chrome trace_event. Nil keeps tracing off — the default, and free.
func WithTracer(t *telemetry.Tracer) Option {
	return func(c *Config) { c.Tracer = t }
}

// WithFlightRecorder attaches a flight recorder: the last N exchange traces
// stay resident in a lock-free ring and dump automatically when an exchange
// fails or a link controller's circuit breaker opens.
func WithFlightRecorder(f *telemetry.FlightRecorder) Option {
	return func(c *Config) { c.Flight = f }
}

// WithNetworkID sets the network identity stamped into exchange IDs, traces
// and events. The Fleet applies its dense id automatically.
func WithNetworkID(id int) Option {
	return func(c *Config) { c.NetworkID = id }
}

// WithSchedule attaches a multi-tag frame schedule: auto-assigned FSK pairs
// are allocated per schedule slot (so tags in different frame groups reuse
// tones and the deployment can exceed the tone grid), and ExchangeScheduled
// serves every group over one cycle. The schedule must cover exactly the
// configured node count.
func WithSchedule(s *mac.FrameSchedule) Option {
	return func(c *Config) { c.Schedule = s }
}

// exchangeOptions collects the per-round knobs of one Exchange call.
type exchangeOptions struct {
	minChirps int
	// active lists the node indices that modulate this round; nil selects
	// every node.
	active []int
}

// ExchangeOption customizes a single Exchange/ExchangeContext round
// without touching the network configuration.
type ExchangeOption func(*exchangeOptions)

// WithMinChirps pads the downlink frame with header-slope chirps until it
// spans at least n chirps, on top of what the payload and the uplink bit
// windows already require. Longer frames buy slow-time integration gain
// for localization at the cost of airtime.
func WithMinChirps(n int) ExchangeOption {
	return func(o *exchangeOptions) {
		if n > o.minChirps {
			o.minChirps = n
		}
	}
}

// WithActiveNodes restricts one exchange round to the listed node indices:
// only they decode the downlink, modulate the uplink and are searched for.
// The other nodes hold a static switch state (their NodeResult carries
// ErrNodeInactive) — the per-frame picture of a mac.FrameSchedule group,
// exposed for callers that run their own scheduling. The slice is retained
// for the duration of the round; out-of-range indices are ignored.
func WithActiveNodes(idx ...int) ExchangeOption {
	return func(o *exchangeOptions) { o.active = idx }
}
