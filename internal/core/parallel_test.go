package core

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"biscatter/internal/channel"
	"biscatter/internal/fmcw"
)

// threeNodeConfig is a multi-node deployment that exercises every parallel
// stage: per-node downlink decodes, per-chirp synthesis, per-(node,tone)
// signature scans and per-node uplink demodulation. ChirpsPerBit 64 keeps
// the auto-assigned FSK tones of all three nodes inside the slow-time band.
func threeNodeConfig(workers int) Config {
	return Config{
		Nodes: []NodeConfig{
			{ID: 1, Range: 1.5},
			{ID: 2, Range: 2.6},
			{ID: 3, Range: 3.8},
		},
		ChirpsPerBit: 64,
		Seed:         7,
		Workers:      workers,
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestExchangeWorkerCountInvariance is the equivalence contract of the
// parallel engine: the same seeded configuration must produce a
// byte-identical ExchangeResult whether the pipeline runs serially or fans
// out across many workers.
func TestExchangeWorkerCountInvariance(t *testing.T) {
	payload := RandomPayload(3, 6)
	uplink := map[int][]bool{
		0: {true, false, true, true},
		1: {false, false, true, false},
		2: {true, true, false, true},
	}
	run := func(workers int) *ExchangeResult {
		n, err := NewNetwork(threeNodeConfig(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res, err := n.Exchange(payload, uplink)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := run(1)
	wide := run(8)

	if !reflect.DeepEqual(serial.Frame, wide.Frame) {
		t.Fatal("frames differ between worker counts")
	}
	if len(serial.Nodes) != len(wide.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(serial.Nodes), len(wide.Nodes))
	}
	for i := range serial.Nodes {
		s, w := serial.Nodes[i], wide.Nodes[i]
		if !bytes.Equal(s.DownlinkPayload, w.DownlinkPayload) {
			t.Errorf("node %d: downlink payloads differ: %x vs %x", i, s.DownlinkPayload, w.DownlinkPayload)
		}
		if errString(s.DownlinkErr) != errString(w.DownlinkErr) {
			t.Errorf("node %d: downlink errors differ: %v vs %v", i, s.DownlinkErr, w.DownlinkErr)
		}
		if !reflect.DeepEqual(s.DownlinkDiag, w.DownlinkDiag) {
			t.Errorf("node %d: diagnostics differ", i)
		}
		if s.Detection != w.Detection {
			t.Errorf("node %d: detections differ: %+v vs %+v", i, s.Detection, w.Detection)
		}
		if errString(s.DetectionErr) != errString(w.DetectionErr) {
			t.Errorf("node %d: detection errors differ: %v vs %v", i, s.DetectionErr, w.DetectionErr)
		}
		if !reflect.DeepEqual(s.UplinkBits, w.UplinkBits) {
			t.Errorf("node %d: uplink bits differ: %v vs %v", i, s.UplinkBits, w.UplinkBits)
		}
		if errString(s.UplinkErr) != errString(w.UplinkErr) {
			t.Errorf("node %d: uplink errors differ: %v vs %v", i, s.UplinkErr, w.UplinkErr)
		}
		if s.UplinkDiag != w.UplinkDiag {
			t.Errorf("node %d: uplink diagnostics differ: %+v vs %+v", i, s.UplinkDiag, w.UplinkDiag)
		}
	}
}

func TestExchangeContextPreCancelled(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2.6, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := n.ExchangeContext(ctx, []byte("x"), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatal("cancelled exchange must not return a result")
	}
}

func TestExchangeContextCancelMidRound(t *testing.T) {
	n, err := NewNetwork(threeNodeConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	// No uplink bits: the frame stays at packet length, so every pipeline
	// unit (one downlink decode, one chirp, one signature scan) is small and
	// the per-index ctx checks get frequent chances to fire.
	_, err = n.ExchangeContext(ctx, RandomPayload(1, 4), nil)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	// "Promptly" = well before a full round would finish: ctx is checked
	// between stages and per index inside each fan-out. The bound is loose
	// enough for -race on a single-core machine.
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

func TestLocalizeAndMapContextPreCancelled(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2.6, 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.LocalizeContext(ctx, nil, 64); !errors.Is(err, context.Canceled) {
		t.Fatalf("LocalizeContext: want context.Canceled, got %v", err)
	}
	if _, err := n.MapEnvironmentContext(ctx, 64); !errors.Is(err, context.Canceled) {
		t.Fatalf("MapEnvironmentContext: want context.Canceled, got %v", err)
	}
}

func TestNewNetworkSentinelErrors(t *testing.T) {
	if _, err := NewNetwork(Config{}); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("want ErrNoNodes, got %v", err)
	}
	// Four nodes at the default ChirpsPerBit push the highest auto-assigned
	// f1 past chirpRate/2.
	_, err := NewNetwork(Config{Nodes: []NodeConfig{
		{ID: 1, Range: 1}, {ID: 2, Range: 2}, {ID: 3, Range: 3}, {ID: 4, Range: 4},
	}})
	if !errors.Is(err, ErrToneBandExceeded) {
		t.Fatalf("want ErrToneBandExceeded, got %v", err)
	}
}

func TestFunctionalOptionsOverrideConfig(t *testing.T) {
	n, err := NewNetwork(Config{Seed: 99},
		WithNodes(NodeConfig{ID: 5, Range: 4.2}),
		WithPreset(fmcw.Radar24GHz()),
		WithClutter([]channel.Reflector{}),
		WithSeed(3),
		WithWorkers(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := n.Config()
	if cfg.Preset.Name != fmcw.Radar24GHz().Name {
		t.Fatalf("preset option not applied: %q", cfg.Preset.Name)
	}
	if len(cfg.Nodes) != 1 || cfg.Nodes[0].ID != 5 {
		t.Fatalf("nodes option not applied: %+v", cfg.Nodes)
	}
	if cfg.Clutter == nil || len(cfg.Clutter) != 0 {
		t.Fatalf("explicit empty clutter must survive defaulting: %+v", cfg.Clutter)
	}
	if cfg.Seed != 3 || cfg.Workers != 2 {
		t.Fatalf("seed/workers options not applied: seed=%d workers=%d", cfg.Seed, cfg.Workers)
	}
}

func TestWithMinChirpsPadsFrame(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2.6, 1))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := n.Exchange([]byte("p"), nil)
	if err != nil {
		t.Fatal(err)
	}
	want := len(plain.Frame.Chirps) + 40
	padded, err := n.Exchange([]byte("p"), nil, WithMinChirps(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(padded.Frame.Chirps) < want {
		t.Fatalf("frame has %d chirps, want at least %d", len(padded.Frame.Chirps), want)
	}
}
