package core

import (
	"runtime"
	"testing"
)

// allocTestNetwork builds a small workers=1 network for allocation pins:
// AllocsPerRun forces GOMAXPROCS=1, so the serial path is the one measured,
// and the short two-node frame keeps each exchange fast enough to repeat.
func allocTestNetwork(t testing.TB) (*Network, []byte, map[int][]bool) {
	t.Helper()
	n, err := NewNetwork(Config{
		Nodes: []NodeConfig{
			{ID: 1, Range: 2.0, ModulationF0: 1000, ModulationF1: 1600},
			{ID: 2, Range: 3.5, ModulationF0: 2200, ModulationF1: 2800},
		},
		Seed:         99,
		ChirpsPerBit: 16,
		Workers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0xA5}
	uplink := map[int][]bool{0: {true, false}, 1: {false, true}}
	return n, payload, uplink
}

// TestExchangeSteadyStateAllocs pins the tentpole: after warm-up, a full
// exchange round must run in a bounded (small) number of heap allocations.
// The scratch-arena memory model keeps the per-chirp and per-bin hot loops
// allocation-free; what remains is the per-exchange result assembly (frame,
// ExchangeResult, decoded payloads/bits) plus a handful of boxed values.
// The pre-arena pipeline spent ~11.5k allocations per exchange on the bench
// workload; the pin below is the regression tripwire for the ≥10× floor.
func TestExchangeSteadyStateAllocs(t *testing.T) {
	n, payload, uplink := allocTestNetwork(t)
	for i := 0; i < 3; i++ {
		if _, err := n.Exchange(payload, uplink); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := n.Exchange(payload, uplink); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state Exchange: %.0f allocs/op", allocs)
	// Measured ~45 allocs/op on this workload; the pin leaves headroom for
	// runtime variation while staying two orders of magnitude under the
	// pre-arena count.
	const pin = 120
	if allocs > pin {
		t.Fatalf("steady-state Exchange allocated %.0f times, pin is %d", allocs, pin)
	}
}

// TestExchangeScratchFootprintStabilizes is the byte-level leak test: over
// 100 steady-state exchanges the total heap bytes allocated per round must
// stay flat and small — the arenas and scratch buffers reach their
// high-water marks during warm-up and are reused verbatim afterwards.
func TestExchangeScratchFootprintStabilizes(t *testing.T) {
	n, payload, uplink := allocTestNetwork(t)
	for i := 0; i < 5; i++ {
		if _, err := n.Exchange(payload, uplink); err != nil {
			t.Fatal(err)
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 100
	for i := 0; i < rounds; i++ {
		if _, err := n.Exchange(payload, uplink); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	perRound := (after.TotalAlloc - before.TotalAlloc) / rounds
	t.Logf("steady-state Exchange: %d B/op", perRound)
	// The pre-arena pipeline allocated tens of MB per exchange; measured
	// steady state is ~11 KB per round (results + residual boxing), so any
	// scratch leak blows through this bound quickly.
	if perRound > 128<<10 {
		t.Fatalf("steady-state Exchange allocates %d B per round; scratch is leaking", perRound)
	}
}
