package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
)

// Tolerance-mode golden comparison. The default mode is byte-exact — the
// strongest regression gate the suite has, and the one every bit-preserving
// refactor must keep. Some fast-path rewrites are float-breaking by
// construction (FFT-order changes); their vectors declare "ulp:N" or
// "rel:eps", which relaxes the comparison ONLY for *_hex float leaves. The
// document structure, every integer, every string, and every error message
// still compare exactly, so a tolerance never lets a behavioral change hide
// behind a numeric one.

// toleranceMode is a parsed golden-vector comparison policy.
type toleranceMode struct {
	kind string // "exact", "ulp", or "rel"
	ulps uint64
	eps  float64
}

func (m toleranceMode) String() string {
	switch m.kind {
	case "ulp":
		return fmt.Sprintf("ulp:%d", m.ulps)
	case "rel":
		return fmt.Sprintf("rel:%g", m.eps)
	default:
		return "exact"
	}
}

// parseTolerance parses "", "exact", "ulp:N", or "rel:eps".
func parseTolerance(spec string) (toleranceMode, error) {
	if spec == "" || spec == "exact" {
		return toleranceMode{kind: "exact"}, nil
	}
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return toleranceMode{}, fmt.Errorf("tolerance %q: want exact, ulp:N, or rel:eps", spec)
	}
	switch kind {
	case "ulp":
		n, err := strconv.ParseUint(arg, 10, 64)
		if err != nil {
			return toleranceMode{}, fmt.Errorf("tolerance %q: bad ulp count: %v", spec, err)
		}
		return toleranceMode{kind: "ulp", ulps: n}, nil
	case "rel":
		eps, err := strconv.ParseFloat(arg, 64)
		if err != nil || !(eps >= 0) || math.IsInf(eps, 0) {
			return toleranceMode{}, fmt.Errorf("tolerance %q: bad relative epsilon", spec)
		}
		return toleranceMode{kind: "rel", eps: eps}, nil
	default:
		return toleranceMode{}, fmt.Errorf("tolerance %q: unknown mode %q", spec, kind)
	}
}

// orderedBits maps float64 onto uint64 so that the integer distance between
// two mapped values is their distance in representable floats (the ulp
// distance), with -0 and +0 adjacent.
func orderedBits(f float64) uint64 {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | 1<<63
}

func ulpDiff(a, b float64) uint64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		if math.IsNaN(a) && math.IsNaN(b) {
			return 0
		}
		return math.MaxUint64
	}
	oa, ob := orderedBits(a), orderedBits(b)
	if oa > ob {
		return oa - ob
	}
	return ob - oa
}

// floatsWithin applies the mode's numeric bound.
func (m toleranceMode) floatsWithin(a, b float64) bool {
	switch m.kind {
	case "ulp":
		return ulpDiff(a, b) <= m.ulps
	case "rel":
		if math.Float64bits(a) == math.Float64bits(b) {
			return true
		}
		return math.Abs(a-b) <= m.eps*math.Max(math.Abs(a), math.Abs(b))
	default:
		return math.Float64bits(a) == math.Float64bits(b)
	}
}

// hexFloatValue parses a hexadecimal float literal as written by hexFloat.
// Plain hex byte strings (payload_hex) lack the 0x prefix and do not
// qualify — they always compare exactly.
func hexFloatValue(s string) (float64, bool) {
	if !strings.HasPrefix(s, "0x") && !strings.HasPrefix(s, "-0x") {
		return 0, false
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// compareGolden compares a regenerated golden document against the stored
// one under the given tolerance mode. Exact mode is pure byte equality. In
// a tolerance mode both sides must be valid JSON with identical structure;
// only leaves under keys ending in "_hex" that parse as hex float literals
// may differ, and only within the numeric bound.
func compareGolden(got, want []byte, mode toleranceMode) error {
	if mode.kind == "exact" {
		if !bytes.Equal(got, want) {
			return fmt.Errorf("documents differ byte-wise (exact mode)")
		}
		return nil
	}
	var g, w any
	if err := json.Unmarshal(got, &g); err != nil {
		return fmt.Errorf("regenerated document is not valid JSON: %v", err)
	}
	if err := json.Unmarshal(want, &w); err != nil {
		return fmt.Errorf("stored golden vector is corrupt (invalid JSON): %v", err)
	}
	return compareJSON("$", "", g, w, mode)
}

func compareJSON(path, key string, got, want any, mode toleranceMode) error {
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok {
			return fmt.Errorf("%s: got %T, want object", path, got)
		}
		if len(g) != len(w) {
			return fmt.Errorf("%s: got %d keys, want %d", path, len(g), len(w))
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				return fmt.Errorf("%s: missing key %q", path, k)
			}
			if err := compareJSON(path+"."+k, k, gv, wv, mode); err != nil {
				return err
			}
		}
		return nil
	case []any:
		g, ok := got.([]any)
		if !ok {
			return fmt.Errorf("%s: got %T, want array", path, got)
		}
		if len(g) != len(w) {
			return fmt.Errorf("%s: got %d elements, want %d", path, len(g), len(w))
		}
		for i := range w {
			if err := compareJSON(fmt.Sprintf("%s[%d]", path, i), key, g[i], w[i], mode); err != nil {
				return err
			}
		}
		return nil
	case string:
		g, ok := got.(string)
		if !ok {
			return fmt.Errorf("%s: got %T, want string", path, got)
		}
		if strings.HasSuffix(key, "_hex") {
			gv, gok := hexFloatValue(g)
			wv, wok := hexFloatValue(w)
			if gok && wok {
				if !mode.floatsWithin(gv, wv) {
					return fmt.Errorf("%s: %s vs %s exceeds %s", path, g, w, mode)
				}
				return nil
			}
		}
		if g != w {
			return fmt.Errorf("%s: %q != %q (non-float field, exact even in tolerance mode)", path, g, w)
		}
		return nil
	default:
		// Numbers, booleans, null: tolerance applies only to *_hex strings,
		// so these compare exactly.
		if got != want {
			return fmt.Errorf("%s: %v != %v", path, got, want)
		}
		return nil
	}
}

func TestParseTolerance(t *testing.T) {
	for _, spec := range []string{"", "exact", "ulp:0", "ulp:3", "rel:1e-9", "rel:0"} {
		if _, err := parseTolerance(spec); err != nil {
			t.Errorf("parseTolerance(%q): %v", spec, err)
		}
	}
	for _, spec := range []string{"ulp", "ulp:-1", "ulp:x", "rel:", "rel:inf", "rel:-1e-9", "abs:1", "1e-9"} {
		if _, err := parseTolerance(spec); err == nil {
			t.Errorf("parseTolerance(%q) accepted an invalid spec", spec)
		}
	}
}

func TestUlpDiff(t *testing.T) {
	cases := []struct {
		a, b float64
		want uint64
	}{
		{1, 1, 0},
		{1, math.Nextafter(1, 2), 1},
		{1, math.Nextafter(math.Nextafter(1, 2), 2), 2},
		{0, math.Copysign(0, -1), 1},
		{5e-324, -5e-324, 3}, // min denormal → +0 → −0 → −min denormal
	}
	for _, c := range cases {
		if got := ulpDiff(c.a, c.b); got != c.want {
			t.Errorf("ulpDiff(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if ulpDiff(math.NaN(), 1) != math.MaxUint64 {
		t.Error("NaN vs number should be maximally distant")
	}
	if ulpDiff(math.NaN(), math.NaN()) != 0 {
		t.Error("NaN vs NaN should compare equal (stable serialization)")
	}
}

// mustMode is a test helper for a pre-validated tolerance spec.
func mustMode(t *testing.T, spec string) toleranceMode {
	t.Helper()
	m, err := parseTolerance(spec)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCompareGoldenToleranceModes drives the comparator over a synthetic
// vector: drifted floats pass within their bound and fail beyond it, and
// every non-float difference — integers, strings, structure, keys — fails
// even in the loosest tolerance mode. This is the corrupted-vector
// rejection contract: a tolerance never masks a behavioral change.
func TestCompareGoldenToleranceModes(t *testing.T) {
	doc := func(v float64, bin int, payload string) []byte {
		out, err := json.Marshal(map[string]any{
			"preset":      "synthetic",
			"value_hex":   strconv.FormatFloat(v, 'x', -1, 64),
			"bin":         bin,
			"payload_hex": payload,
			"peaks": []map[string]any{
				{"power_hex": strconv.FormatFloat(2*v, 'x', -1, 64)},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := doc(1.5, 7, "a5a5")
	oneUlp := doc(math.Nextafter(1.5, 2), 7, "a5a5")
	farFloat := doc(1.5*(1+1e-6), 7, "a5a5")

	if err := compareGolden(base, base, mustMode(t, "exact")); err != nil {
		t.Errorf("identical docs failed exact mode: %v", err)
	}
	if err := compareGolden(oneUlp, base, mustMode(t, "exact")); err == nil {
		t.Error("1-ulp drift passed exact mode")
	}
	if err := compareGolden(oneUlp, base, mustMode(t, "ulp:2")); err != nil {
		t.Errorf("1-ulp drift failed ulp:2: %v", err)
	}
	if err := compareGolden(oneUlp, base, mustMode(t, "ulp:0")); err == nil {
		t.Error("1-ulp drift passed ulp:0")
	}
	if err := compareGolden(farFloat, base, mustMode(t, "rel:1e-5")); err != nil {
		t.Errorf("1e-6 relative drift failed rel:1e-5: %v", err)
	}
	if err := compareGolden(farFloat, base, mustMode(t, "rel:1e-9")); err == nil {
		t.Error("1e-6 relative drift passed rel:1e-9")
	}

	// Non-float corruption must fail in every mode, however loose.
	loose := mustMode(t, "rel:1")
	if err := compareGolden(doc(1.5, 8, "a5a5"), base, loose); err == nil {
		t.Error("integer change passed tolerance mode")
	}
	if err := compareGolden(doc(1.5, 7, "a5a6"), base, loose); err == nil {
		t.Error("payload hex-string change passed tolerance mode (payloads are not floats)")
	}

	// Structural corruption: missing key, extra key, wrong types, bad JSON.
	var m map[string]any
	if err := json.Unmarshal(base, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "bin")
	missing, _ := json.Marshal(m)
	if err := compareGolden(missing, base, loose); err == nil {
		t.Error("missing key passed tolerance mode")
	}
	m["bin"] = 7
	m["extra"] = 1
	extra, _ := json.Marshal(m)
	if err := compareGolden(extra, base, loose); err == nil {
		t.Error("extra key passed tolerance mode")
	}
	if err := compareGolden([]byte(`{"value_hex": 1.5}`), base, loose); err == nil {
		t.Error("type change passed tolerance mode")
	}
	if err := compareGolden(base[:len(base)-3], base, loose); err == nil {
		t.Error("truncated regenerated doc passed tolerance mode")
	}
	if err := compareGolden(base, base[:len(base)-3], loose); err == nil {
		t.Error("corrupted stored vector was not rejected")
	}
}
