package core

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"biscatter/internal/fec"
)

// ErrNodeQuarantined means the link controller's circuit breaker has the
// node open: the radar spends no airtime on it until the next half-open
// probe slot.
var ErrNodeQuarantined = errors.New("core: node quarantined by circuit breaker")

// LinkMode is one rung of the controller's degradation ladder: a coherent
// set of physical-layer knobs — symbol width (fewer bits = wider slope
// spacing), FEC scheme, preamble length, and acknowledgment redundancy —
// that trade data rate for robustness together.
type LinkMode struct {
	// Name labels the mode in telemetry and reports.
	Name string
	// SymbolBits is the CSSK symbol width; zero keeps the base config's.
	SymbolBits int
	// FEC is the downlink coding layer for this mode.
	FEC fec.Config
	// HeaderChirps/SyncChirps size the downlink preamble; zero keeps the
	// base config's.
	HeaderChirps int
	SyncChirps   int
	// AckBits is the ARQ acknowledgment redundancy while in this mode;
	// zero keeps the delivery options' value.
	AckBits int
}

// apply overlays the mode's non-zero knobs on a network configuration.
func (m LinkMode) apply(c *Config) {
	if m.SymbolBits != 0 {
		c.SymbolBits = m.SymbolBits
	}
	c.FEC = m.FEC
	if m.HeaderChirps != 0 {
		c.HeaderChirps = m.HeaderChirps
	}
	if m.SyncChirps != 0 {
		c.SyncChirps = m.SyncChirps
	}
}

// DefaultModeLadder is the calibrated degradation sequence. Each rung gives
// up data rate for a different robustness mechanism, in the order the
// fault scenarios show them paying off: coding first (cheap, fixes
// scattered errors), then wider slope spacing + interleaved coding (jam
// bursts), then repetition + the longest preamble (survival mode: the
// preamble itself must outlive the bursts).
func DefaultModeLadder() []LinkMode {
	return []LinkMode{
		{Name: "nominal", SymbolBits: 5, AckBits: 3},
		{Name: "coded", SymbolBits: 5, AckBits: 3,
			FEC: fec.Config{Scheme: fec.SchemeHamming74, InterleaveDepth: 14}},
		{Name: "robust", SymbolBits: 4, AckBits: 5, HeaderChirps: 12, SyncChirps: 3,
			FEC: fec.Config{Scheme: fec.SchemeHamming74, InterleaveDepth: 28}},
		{Name: "survival", SymbolBits: 3, AckBits: 7, HeaderChirps: 16, SyncChirps: 4,
			FEC: fec.Config{Scheme: fec.SchemeRepetition, Repeat: 3, InterleaveDepth: 56}},
	}
}

// BreakerState is a node's circuit-breaker position.
type BreakerState int

const (
	// BreakerClosed: the node is healthy; deliveries flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the node is quarantined; deliveries fail fast with
	// ErrNodeQuarantined until the next probe slot.
	BreakerOpen
	// BreakerHalfOpen: the next delivery is a single-attempt probe; success
	// closes the breaker, failure reopens it.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// ControllerConfig parameterizes the link controller.
type ControllerConfig struct {
	// Network is the base network configuration; the active mode overlays
	// its symbol-width / FEC / preamble knobs.
	Network Config
	// Ladder is the degradation sequence, mildest first; defaults to
	// DefaultModeLadder.
	Ladder []LinkMode
	// DegradeAfter is how many consecutive failed deliveries trigger a step
	// down the ladder; default 1 (a delivery already retries internally, so
	// one exhausted ARQ sequence is strong evidence).
	DegradeAfter int
	// RecoverAfter is how many consecutive clean deliveries — first
	// attempt, no FEC corrections — trigger a step back up; default 8.
	// Recovery is deliberately slower than degradation.
	RecoverAfter int
	// BreakerThreshold is how many consecutive failed deliveries to one
	// node while already at the deepest mode open its breaker; default 3.
	BreakerThreshold int
	// ProbeInterval is how many quarantined delivery slots a node sits out
	// before the breaker goes half-open and risks one probe; default 4.
	ProbeInterval int
	// Deliver is the base ARQ configuration; the active mode's AckBits
	// overrides the redundancy.
	Deliver DeliverOptions
}

func (c ControllerConfig) withDefaults() ControllerConfig {
	if c.Ladder == nil {
		c.Ladder = DefaultModeLadder()
	}
	if c.DegradeAfter == 0 {
		c.DegradeAfter = 1
	}
	if c.RecoverAfter == 0 {
		c.RecoverAfter = 8
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 4
	}
	return c
}

// breaker tracks one node's quarantine state.
type breaker struct {
	state     BreakerState
	fails     int // consecutive failed deliveries at the deepest mode
	idleSlots int // delivery slots sat out while open
}

// LinkController closes the loop over the fault layer: it watches the
// worker-invariant per-delivery diagnostics (downlink decode outcomes and
// FEC correction counts from DownlinkDiag, acknowledgment readability from
// the uplink path) and moves the network along the mode ladder — degrading
// after failed deliveries, recovering after sustained clean ones — and
// finally quarantines a persistently failing node behind a per-node circuit
// breaker with half-open probes.
//
// Every decision input is byte-identical at any worker count, so the
// controller's trajectory is too. Telemetry (mode transitions, breaker
// events, the current level gauge) is written through the network's metrics
// registry but never feeds back into decisions.
type LinkController struct {
	cfg      ControllerConfig
	opts     []Option
	net      *Network
	level    int
	okStreak int // consecutive clean deliveries across the link
	failRun  int // consecutive failed deliveries across the link
	breakers []breaker
}

// NewLinkController builds the controller and its initial network at the
// top (fastest) mode. Extra options pass through to every network rebuild,
// before the mode overlay — the mode always wins on the knobs it names.
func NewLinkController(cfg ControllerConfig, opts ...Option) (*LinkController, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Ladder) == 0 {
		return nil, fmt.Errorf("core: controller ladder must have at least one mode")
	}
	lc := &LinkController{cfg: cfg, opts: opts}
	if err := lc.rebuild(); err != nil {
		return nil, err
	}
	lc.breakers = make([]breaker, len(lc.net.nodes))
	return lc, nil
}

// rebuild constructs the network for the current level. The metrics
// registry, recorder, seed and workers all live in the base config, so they
// carry across rebuilds (counters keep accumulating in the shared registry).
func (lc *LinkController) rebuild() error {
	mode := lc.cfg.Ladder[lc.level]
	opts := make([]Option, 0, len(lc.opts)+1)
	opts = append(opts, lc.opts...)
	opts = append(opts, WithLinkMode(mode))
	net, err := NewNetwork(lc.cfg.Network, opts...)
	if err != nil {
		return fmt.Errorf("core: rebuilding at mode %q: %w", mode.Name, err)
	}
	// Carry the exchange sequence across the rebuild so exchange IDs stay
	// unique over the controller's lifetime (the tracer, flight recorder
	// and recorder also ride along, via the base config).
	if lc.net != nil {
		net.seq = lc.net.seq
	}
	lc.net = net
	if m := net.cfg.Metrics; m != nil {
		m.Gauge("core.recovery.level").Set(float64(lc.level))
	}
	return nil
}

// Network returns the controller's current network (replaced on every mode
// transition — do not cache across deliveries).
func (lc *LinkController) Network() *Network { return lc.net }

// Level returns the current ladder index (0 = fastest mode).
func (lc *LinkController) Level() int { return lc.level }

// Mode returns the active mode.
func (lc *LinkController) Mode() LinkMode { return lc.cfg.Ladder[lc.level] }

// NodeState returns a node's circuit-breaker position.
func (lc *LinkController) NodeState(nodeIdx int) BreakerState {
	if nodeIdx < 0 || nodeIdx >= len(lc.breakers) {
		return BreakerClosed
	}
	return lc.breakers[nodeIdx].state
}

// deliverOptions is the ARQ configuration for the current mode.
func (lc *LinkController) deliverOptions() DeliverOptions {
	o := lc.cfg.Deliver
	if ab := lc.Mode().AckBits; ab != 0 {
		o.AckBits = ab
	}
	return o
}

// counter bumps a recovery counter when metrics are attached.
func (lc *LinkController) counter(name string) {
	if m := lc.net.cfg.Metrics; m != nil {
		m.Counter(name).Inc()
	}
}

// Deliver runs one reliable delivery through the adaptive machinery:
// breaker gate, mode-configured ARQ, then the degradation/recovery update.
// A quarantined node fails fast with ErrNodeQuarantined and consumes no
// airtime; every ProbeInterval-th quarantined slot instead risks a
// single-attempt half-open probe.
func (lc *LinkController) Deliver(ctx context.Context, nodeIdx int, payload []byte) (DeliveryReport, error) {
	if nodeIdx < 0 || nodeIdx >= len(lc.breakers) {
		return DeliveryReport{}, fmt.Errorf("core: node index %d out of range", nodeIdx)
	}
	br := &lc.breakers[nodeIdx]
	opts := lc.deliverOptions()
	probing := false
	switch br.state {
	case BreakerOpen:
		br.idleSlots++
		if br.idleSlots < lc.cfg.ProbeInterval {
			return DeliveryReport{}, ErrNodeQuarantined
		}
		br.state = BreakerHalfOpen
		br.idleSlots = 0
		lc.counter("core.recovery.breaker.probe")
		fallthrough
	case BreakerHalfOpen:
		probing = true
		opts.MaxAttempts = 1 // a probe risks one attempt, not a full ARQ run
	}

	rep, err := lc.net.DeliverReliableContext(ctx, nodeIdx, payload, opts)
	if err != nil {
		return rep, err
	}

	if probing {
		if rep.Delivered {
			br.state = BreakerClosed
			br.fails = 0
			lc.counter("core.recovery.breaker.close")
		} else {
			br.state = BreakerOpen
			lc.counter("core.recovery.breaker.reopen")
			lc.net.flight.Trip("breaker reopen: node " + strconv.Itoa(nodeIdx))
		}
		return rep, nil
	}
	lc.observe(nodeIdx, rep)
	return rep, nil
}

// observe updates the controller state from one delivery's diagnostics.
func (lc *LinkController) observe(nodeIdx int, rep DeliveryReport) {
	br := &lc.breakers[nodeIdx]
	atBottom := lc.level == len(lc.cfg.Ladder)-1
	if rep.Delivered {
		br.fails = 0
		lc.failRun = 0
		// Only a clean delivery — first attempt, zero repaired bits —
		// argues the channel could afford a faster mode. A delivery that
		// needed retries or FEC corrections is the link telling us the
		// current mode is earning its keep.
		clean := rep.Attempts == 1 && len(rep.AttemptLog) > 0 &&
			rep.AttemptLog[0].FECCorrectedBits == 0
		if clean {
			lc.okStreak++
			if lc.okStreak >= lc.cfg.RecoverAfter && lc.level > 0 {
				lc.level--
				lc.okStreak = 0
				lc.counter("core.recovery.recover")
				if err := lc.rebuild(); err != nil {
					// The previous mode built fine; stepping back cannot
					// fail. Keep the old network if it somehow does.
					lc.level++
				}
			}
		} else {
			lc.okStreak = 0
		}
		return
	}
	// Failed delivery: degrade, and track per-node persistence.
	lc.okStreak = 0
	lc.failRun++
	if !atBottom && lc.failRun >= lc.cfg.DegradeAfter {
		lc.level++
		lc.failRun = 0
		lc.counter("core.recovery.degrade")
		if err := lc.rebuild(); err != nil {
			lc.level--
		}
		return
	}
	if atBottom {
		br.fails++
		if br.fails >= lc.cfg.BreakerThreshold {
			br.state = BreakerOpen
			br.idleSlots = 0
			lc.counter("core.recovery.breaker.open")
			// Quarantining a node is exactly the moment the recent exchange
			// history matters: dump the flight recorder's black box.
			lc.net.flight.Trip("breaker open: node " + strconv.Itoa(nodeIdx))
		}
	}
}
