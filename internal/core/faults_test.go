package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"biscatter/internal/channel"
	"biscatter/internal/fault"
	"biscatter/internal/telemetry"
)

// faultTestConfig is a small two-node deployment that keeps the robustness
// conformance runs fast while still exercising every parallel stage.
func faultTestConfig(workers int, p *fault.Profile) Config {
	return Config{
		Nodes: []NodeConfig{
			{ID: 1, Range: 1.8},
			{ID: 2, Range: 3.1},
		},
		ChirpsPerBit: 32,
		Seed:         21,
		Workers:      workers,
		Faults:       p,
	}
}

func faultTestUplink() map[int][]bool {
	return map[int][]bool{
		0: {true, false},
		1: {false, true},
	}
}

// requireSameExchange compares two ExchangeResults field by field; label
// names the pair in failures.
func requireSameExchange(t *testing.T, label string, a, b *ExchangeResult) {
	t.Helper()
	if !reflect.DeepEqual(a.Frame, b.Frame) {
		t.Errorf("%s: frames differ", label)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("%s: node counts differ: %d vs %d", label, len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		x, y := a.Nodes[i], b.Nodes[i]
		if !bytes.Equal(x.DownlinkPayload, y.DownlinkPayload) {
			t.Errorf("%s: node %d: downlink payloads differ: %x vs %x", label, i, x.DownlinkPayload, y.DownlinkPayload)
		}
		if errString(x.DownlinkErr) != errString(y.DownlinkErr) {
			t.Errorf("%s: node %d: downlink errors differ: %v vs %v", label, i, x.DownlinkErr, y.DownlinkErr)
		}
		if !reflect.DeepEqual(x.DownlinkDiag, y.DownlinkDiag) {
			t.Errorf("%s: node %d: downlink diagnostics differ", label, i)
		}
		if x.Detection != y.Detection {
			t.Errorf("%s: node %d: detections differ: %+v vs %+v", label, i, x.Detection, y.Detection)
		}
		if errString(x.DetectionErr) != errString(y.DetectionErr) {
			t.Errorf("%s: node %d: detection errors differ: %v vs %v", label, i, x.DetectionErr, y.DetectionErr)
		}
		if !reflect.DeepEqual(x.UplinkBits, y.UplinkBits) {
			t.Errorf("%s: node %d: uplink bits differ: %v vs %v", label, i, x.UplinkBits, y.UplinkBits)
		}
		if errString(x.UplinkErr) != errString(y.UplinkErr) {
			t.Errorf("%s: node %d: uplink errors differ: %v vs %v", label, i, x.UplinkErr, y.UplinkErr)
		}
		if !reflect.DeepEqual(x.UplinkDiag, y.UplinkDiag) {
			t.Errorf("%s: node %d: uplink diagnostics differ", label, i)
		}
	}
}

// TestFaultNeutrality is the all-faults-off conformance check: a nil
// profile, an empty profile, and a profile whose every impairment is
// configured at zero intensity must all yield results — and telemetry
// counter snapshots — byte-identical to each other.
func TestFaultNeutrality(t *testing.T) {
	payload := RandomPayload(4, 6)
	uplink := faultTestUplink()
	run := func(p *fault.Profile) (*ExchangeResult, map[string]int64) {
		m := telemetry.New()
		cfg := faultTestConfig(0, p)
		cfg.Metrics = m
		n, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Exchange(payload, uplink)
		if err != nil {
			t.Fatal(err)
		}
		return res, m.Snapshot().Counters
	}
	base, baseCounters := run(nil)
	for _, tc := range []struct {
		name string
		p    *fault.Profile
	}{
		{"empty profile", &fault.Profile{}},
		{"zero-intensity profile", &fault.Profile{
			Name:         "zero",
			Interference: &fault.Interference{TagPowerDBm: -40, RadarPowerDBm: -70, DutyCycle: 0},
			Dropout:      &fault.Dropout{Rate: 0},
			Tag: &fault.TagFaults{
				Drift:      &fault.OscillatorDrift{},
				Saturation: &fault.Saturation{},
				Desync:     &fault.Desync{},
			},
		}},
	} {
		res, counters := run(tc.p)
		requireSameExchange(t, tc.name, base, res)
		if !reflect.DeepEqual(baseCounters, counters) {
			t.Errorf("%s: telemetry counters differ from fault-free run:\nbase: %v\ngot:  %v",
				tc.name, baseCounters, counters)
		}
		for name := range counters {
			if strings.HasPrefix(name, "fault.") {
				t.Errorf("%s: fault counter %q registered on a neutral profile", tc.name, name)
			}
		}
	}
}

// faultProfiles returns the impairment profiles the worker-invariance
// conformance sweep runs under — each one exercises a different injector
// path through the parallel pipeline.
func faultProfiles() map[string]*fault.Profile {
	return map[string]*fault.Profile{
		"jammed": {
			Name:         "jammed",
			Seed:         101,
			Interference: &fault.Interference{TagPowerDBm: -45, RadarPowerDBm: -75, DutyCycle: 0.5},
		},
		"dropout": {
			Name:    "dropout",
			Seed:    102,
			Dropout: &fault.Dropout{Rate: 0.2},
		},
		"clipped-dropout": {
			Name:    "clipped-dropout",
			Seed:    103,
			Dropout: &fault.Dropout{Rate: 0.3, ClipFraction: 0.4},
		},
		"mobile": {
			Name: "mobile",
			Seed: 104,
			Clutter: []channel.Reflector{
				{Range: 2.4, RCSdBsm: -2, Velocity: 1.1},
				{Range: 5.0, RCSdBsm: 1, Velocity: -0.7},
			},
		},
		"degraded-tag": {
			Name: "degraded-tag",
			Seed: 105,
			Tag: &fault.TagFaults{
				Drift:      &fault.OscillatorDrift{Offset: 0.002, Jitter: 0.001},
				Saturation: &fault.Saturation{ClipLevel: 1.2, Bits: 8},
				Desync:     &fault.Desync{MaxOffset: 0.4},
			},
		},
		"everything": {
			Name:         "everything",
			Seed:         106,
			Interference: &fault.Interference{TagPowerDBm: -45, RadarPowerDBm: -75, DutyCycle: 0.3},
			Dropout:      &fault.Dropout{Rate: 0.1},
			Clutter:      []channel.Reflector{{Range: 3.3, RCSdBsm: 0, Velocity: 0.9}},
			Tag: &fault.TagFaults{
				Drift:      &fault.OscillatorDrift{Offset: 0.001},
				Saturation: &fault.Saturation{ClipLevel: 1.5},
				Desync:     &fault.Desync{MaxOffset: 0.2},
			},
		},
	}
}

// TestFaultWorkerInvariance extends the determinism contract to the
// impairment layer: under every fault profile the exchange result must be
// byte-identical at any worker count, because injection decisions are pure
// functions of (seed, stream, chirp index), never of scheduling.
func TestFaultWorkerInvariance(t *testing.T) {
	payload := RandomPayload(4, 6)
	uplink := faultTestUplink()
	for name, p := range faultProfiles() {
		t.Run(name, func(t *testing.T) {
			run := func(workers int) *ExchangeResult {
				n, err := NewNetwork(faultTestConfig(workers, p))
				if err != nil {
					t.Fatal(err)
				}
				res, err := n.Exchange(payload, uplink)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			base := run(1)
			requireSameExchange(t, name, base, run(4))
			requireSameExchange(t, name, base, run(8))
		})
	}
}

// TestFaultTelemetryCounters checks the fault.injected.* observability
// surface: an active profile lights up exactly the counters of its enabled
// impairments, with plausible magnitudes.
func TestFaultTelemetryCounters(t *testing.T) {
	m := telemetry.New()
	p := &fault.Profile{
		Seed:         55,
		Interference: &fault.Interference{TagPowerDBm: -45, RadarPowerDBm: -75, DutyCycle: 0.5},
		Dropout:      &fault.Dropout{Rate: 0.25},
		Tag: &fault.TagFaults{
			Drift:      &fault.OscillatorDrift{Offset: 0.001, Jitter: 0.0005},
			Saturation: &fault.Saturation{ClipLevel: 0.8},
			Desync:     &fault.Desync{MaxOffset: 0.3},
		},
	}
	cfg := faultTestConfig(0, p)
	cfg.Metrics = m
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Exchange(RandomPayload(4, 6), faultTestUplink()); err != nil {
		t.Fatal(err)
	}
	counters := m.Snapshot().Counters
	for _, name := range []string{
		fault.CounterTagJammed,
		fault.CounterTagDropped,
		fault.CounterTagDrift,
		fault.CounterTagDesync,
		fault.CounterRadarJammed,
		fault.CounterRadarDropped,
	} {
		if counters[name] <= 0 {
			t.Errorf("counter %s = %d, want positive", name, counters[name])
		}
	}
	// Both nodes saw the same frame, so tag-side jam/drop totals are twice
	// the radar-side ones.
	if counters[fault.CounterTagJammed] != 2*counters[fault.CounterRadarJammed] {
		t.Errorf("tag jammed %d != 2× radar jammed %d",
			counters[fault.CounterTagJammed], counters[fault.CounterRadarJammed])
	}
	if counters[fault.CounterTagDropped] != 2*counters[fault.CounterRadarDropped] {
		t.Errorf("tag dropped %d != 2× radar dropped %d",
			counters[fault.CounterTagDropped], counters[fault.CounterRadarDropped])
	}
	if counters[fault.CounterTagDesync] != 2 {
		t.Errorf("desync frames = %d, want 2 (one capture per node)", counters[fault.CounterTagDesync])
	}
}
