package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestDeliverReliableValidation(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2.6, 50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.DeliverReliable(5, []byte{1}, 3); err == nil {
		t.Error("out-of-range node should fail")
	}
	if _, err := n.DeliverReliable(0, []byte{1}, 0); err == nil {
		t.Error("zero attempts should fail")
	}
}

func TestDeliverReliableFirstTryAtShortRange(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2.6, 51))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.DeliverReliable(0, []byte("config v2"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered {
		t.Fatal("short-range delivery should succeed")
	}
	if rep.Attempts != 1 {
		t.Fatalf("expected first-try delivery, used %d attempts", rep.Attempts)
	}
}

func TestDeliverReliableRetransmitsAtMarginalRange(t *testing.T) {
	// Near the edge of the downlink range single packets fail regularly;
	// the ARQ loop must convert most of those losses into deliveries. This
	// is §1's retransmission argument made concrete.
	delivered, totalAttempts, trials := 0, 0, 5
	for trial := 0; trial < trials; trial++ {
		n, err := NewNetwork(oneNodeConfig(11, 52+int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := n.DeliverReliable(0, RandomPayload(int64(trial), 10), 6)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Delivered {
			delivered++
			totalAttempts += rep.Attempts
		}
	}
	if delivered < trials-1 {
		t.Fatalf("ARQ delivered only %d/%d at marginal range", delivered, trials)
	}
	if totalAttempts <= delivered {
		t.Fatalf("expected some retransmissions at 11 m (SNR ≈12 dB), got %d attempts for %d deliveries",
			totalAttempts, delivered)
	}
}

func TestDeliverOptionsValidation(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2.6, 50))
	if err != nil {
		t.Fatal(err)
	}
	bad := []DeliverOptions{
		{MaxAttempts: -1},
		{AckBits: 2},             // even vote has ties
		{AckBits: -3},            // negative redundancy
		{BackoffFactor: 0.5},     // shrinking backoff
		{JitterFraction: 1.5},    // jitter beyond nominal
		{JitterFraction: -0.125}, // negative jitter
	}
	for i, o := range bad {
		if _, err := n.DeliverReliableContext(context.Background(), 0, []byte{1}, o); err == nil {
			t.Errorf("options %d should be rejected: %+v", i, o)
		}
	}
}

// TestDeliverExhaustionWithPersistentAckLoss is the regression test for the
// old hard-coded 3-bit vote and its inconsistent final attempt: a node far
// out of range never produces a readable acknowledgment, so the engine must
// exhaust maxAttempts, count every attempt's lost ACK — including the final
// one — and log every attempt with the same fields.
func TestDeliverExhaustionWithPersistentAckLoss(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(40, 54))
	if err != nil {
		t.Fatal(err)
	}
	const attempts = 3
	rep, err := n.DeliverReliableContext(context.Background(), 0, []byte("void"), DeliverOptions{
		MaxAttempts: attempts,
		AckBits:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered {
		t.Fatal("delivery at 40 m should fail")
	}
	if rep.Attempts != attempts {
		t.Fatalf("used %d attempts, want %d", rep.Attempts, attempts)
	}
	if len(rep.AttemptLog) != attempts {
		t.Fatalf("logged %d attempts, want %d", len(rep.AttemptLog), attempts)
	}
	if rep.AckErrors != attempts {
		t.Fatalf("counted %d ACK errors, want one per attempt (%d) — the final attempt must count too",
			rep.AckErrors, attempts)
	}
	if rep.Exchanges != 2*attempts {
		t.Fatalf("consumed %d exchanges, want %d", rep.Exchanges, 2*attempts)
	}
	for i, ar := range rep.AttemptLog {
		if ar.Attempt != i+1 {
			t.Fatalf("log entry %d has attempt number %d", i, ar.Attempt)
		}
		if ar.AckReadable {
			t.Fatalf("attempt %d claims a readable ACK at 40 m", ar.Attempt)
		}
	}
	if last := rep.AttemptLog[attempts-1]; last.Backoff != 0 {
		t.Fatalf("final attempt scheduled a %v backoff with nothing left to wait for", last.Backoff)
	}
	if rep.TotalBackoff == 0 {
		t.Fatal("failed intermediate attempts must schedule backoff")
	}
}

func TestDeliverBackoffDeterministicAndExponential(t *testing.T) {
	run := func() DeliveryReport {
		n, err := NewNetwork(oneNodeConfig(40, 55))
		if err != nil {
			t.Fatal(err)
		}
		var slept []time.Duration
		rep, err := n.DeliverReliableContext(context.Background(), 0, []byte("x"), DeliverOptions{
			MaxAttempts: 3,
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
		})
		if err != nil {
			t.Fatal(err)
		}
		want := []time.Duration{rep.AttemptLog[0].Backoff, rep.AttemptLog[1].Backoff}
		if !reflect.DeepEqual(slept, want) {
			t.Fatalf("slept %v, report says %v", slept, want)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different reports:\n%+v\n%+v", a, b)
	}
	// Exponential growth must dominate the ±25% jitter: attempt 2's backoff
	// doubles attempt 1's nominal, so even worst-case jitter keeps it larger.
	if b1, b2 := a.AttemptLog[0].Backoff, a.AttemptLog[1].Backoff; b2 <= b1 {
		t.Fatalf("backoff did not grow: %v then %v", b1, b2)
	}
}

func TestDeliverContextCancellation(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2.6, 56))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.DeliverReliableContext(ctx, 0, []byte{1}, DeliverOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled delivery returned %v", err)
	}
}

func TestDeliverConfigurableAckRedundancy(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2.6, 57))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.DeliverReliableContext(context.Background(), 0, []byte("five votes"), DeliverOptions{
		MaxAttempts: 2,
		AckBits:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered {
		t.Fatal("short-range delivery with 5-bit ACK should succeed")
	}
	last := rep.AttemptLog[len(rep.AttemptLog)-1]
	if !last.AckReadable || last.AckVotes < 3 {
		t.Fatalf("expected a majority of 5 votes, got readable=%v votes=%d", last.AckReadable, last.AckVotes)
	}
}

func TestDeliverReliableGivesUp(t *testing.T) {
	// Far beyond range the loop must exhaust its attempts and report
	// failure rather than spin.
	n, err := NewNetwork(oneNodeConfig(40, 53))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.DeliverReliable(0, []byte("unreachable"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered {
		t.Fatal("delivery at 40 m should fail")
	}
	if rep.Attempts != 2 {
		t.Fatalf("should use every attempt, used %d", rep.Attempts)
	}
}
