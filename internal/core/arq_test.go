package core

import (
	"testing"
)

func TestDeliverReliableValidation(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2.6, 50))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.DeliverReliable(5, []byte{1}, 3); err == nil {
		t.Error("out-of-range node should fail")
	}
	if _, err := n.DeliverReliable(0, []byte{1}, 0); err == nil {
		t.Error("zero attempts should fail")
	}
}

func TestDeliverReliableFirstTryAtShortRange(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2.6, 51))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.DeliverReliable(0, []byte("config v2"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Delivered {
		t.Fatal("short-range delivery should succeed")
	}
	if rep.Attempts != 1 {
		t.Fatalf("expected first-try delivery, used %d attempts", rep.Attempts)
	}
}

func TestDeliverReliableRetransmitsAtMarginalRange(t *testing.T) {
	// Near the edge of the downlink range single packets fail regularly;
	// the ARQ loop must convert most of those losses into deliveries. This
	// is §1's retransmission argument made concrete.
	delivered, totalAttempts, trials := 0, 0, 5
	for trial := 0; trial < trials; trial++ {
		n, err := NewNetwork(oneNodeConfig(11, 52+int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := n.DeliverReliable(0, RandomPayload(int64(trial), 10), 6)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Delivered {
			delivered++
			totalAttempts += rep.Attempts
		}
	}
	if delivered < trials-1 {
		t.Fatalf("ARQ delivered only %d/%d at marginal range", delivered, trials)
	}
	if totalAttempts <= delivered {
		t.Fatalf("expected some retransmissions at 11 m (SNR ≈12 dB), got %d attempts for %d deliveries",
			totalAttempts, delivered)
	}
}

func TestDeliverReliableGivesUp(t *testing.T) {
	// Far beyond range the loop must exhaust its attempts and report
	// failure rather than spin.
	n, err := NewNetwork(oneNodeConfig(40, 53))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := n.DeliverReliable(0, []byte("unreachable"), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered {
		t.Fatal("delivery at 40 m should fail")
	}
	if rep.Attempts != 2 {
		t.Fatalf("should use every attempt, used %d", rep.Attempts)
	}
}
