package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"biscatter/internal/mac"
	"biscatter/internal/netio"
)

// GatewayMember is one network served by a GatewayMux: an ExchangeRecorder
// (the conformance anchor — every round lands in its record for replay)
// and, optionally, the network's Fleet handle. With a Handle set the
// member's rounds run on its fleet engine — serialized with the network's
// other requests under the fleet's reject-or-wait backpressure — and
// different members run concurrently; without one the mux drives the
// recorder inline on the gateway goroutine.
type GatewayMember struct {
	// Recorder wraps the member's network and captures every round.
	Recorder *ExchangeRecorder
	// Handle, when set, must wrap the same network as Recorder.
	Handle *FleetNetwork
}

// muxTarget locates one tag: which member network, which node index.
type muxTarget struct {
	net  int
	node int
}

// muxNet is one member's resolved serving state.
type muxNet struct {
	rec       *ExchangeRecorder
	handle    *FleetNetwork
	sched     *mac.FrameSchedule
	nodes     int
	groupBase int // first global frame-group id owned by this network
	groups    int // frame groups this network contributes
}

// GatewayMux multiplexes one netio.Gateway across N member networks: tags
// are routed to their network by NodeConfig.ID (globally unique across
// members), each round's submissions are partitioned per network, and every
// involved network runs its own (scheduled, when configured) exchange —
// concurrently when Fleet handles are attached. Frame groups are numbered
// globally across members, so GroupOf plugs straight into
// netio.GatewayConfig.GroupOf and the per-group round barrier paces each
// network's cycle independently.
//
// The gateway (not the tags) owns the physics, so a distributed run
// computes the exact pipeline the in-process oracle does — each member's
// captured trace.ExchangeRecord replays byte-for-byte via ReplayRecord,
// scheduled cycles included.
type GatewayMux struct {
	payload func(round uint64) []byte
	nets    []muxNet
	targets map[uint8]muxTarget
	groups  int
}

// NewGatewayMux builds a mux serving the member networks. Tag IDs must be
// unique across every member; each member needs a recorder on a fresh
// network, and a member's Handle (when set) must wrap the recorder's
// network.
func NewGatewayMux(payload func(round uint64) []byte, members ...GatewayMember) (*GatewayMux, error) {
	if payload == nil {
		return nil, fmt.Errorf("core: gateway mux needs a payload source")
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("core: gateway mux needs at least one member network")
	}
	m := &GatewayMux{payload: payload, targets: make(map[uint8]muxTarget)}
	for ni, mem := range members {
		if mem.Recorder == nil {
			return nil, fmt.Errorf("core: gateway mux member %d needs a recorder", ni)
		}
		netw := mem.Recorder.Network()
		if mem.Handle != nil && mem.Handle.Network() != netw {
			return nil, fmt.Errorf("core: gateway mux member %d: handle wraps a different network than its recorder", ni)
		}
		cfg := netw.Config()
		for idx, nc := range cfg.Nodes {
			if prev, dup := m.targets[nc.ID]; dup {
				return nil, fmt.Errorf("core: duplicate tag ID %d (networks %d and %d)", nc.ID, prev.net, ni)
			}
			m.targets[nc.ID] = muxTarget{net: ni, node: idx}
		}
		mn := muxNet{
			rec:       mem.Recorder,
			handle:    mem.Handle,
			sched:     netw.Schedule(),
			nodes:     len(cfg.Nodes),
			groupBase: m.groups,
			groups:    1,
		}
		if mn.sched != nil {
			mn.groups = mn.sched.Frames()
		}
		m.groups += mn.groups
		m.nets = append(m.nets, mn)
	}
	return m, nil
}

// Sessions returns the total tag population across members — the natural
// netio.GatewayConfig.MaxSessions for a mux-backed gateway.
func (m *GatewayMux) Sessions() int { return len(m.targets) }

// Groups returns the number of global frame groups across members.
func (m *GatewayMux) Groups() int { return m.groups }

// GroupOf maps a tag ID onto its global frame group (unique across member
// networks), for netio.GatewayConfig.GroupOf. Unknown tags return -1.
func (m *GatewayMux) GroupOf(tagID uint8) int {
	t, ok := m.targets[tagID]
	if !ok {
		return -1
	}
	mn := m.nets[t.net]
	if mn.sched == nil {
		return mn.groupBase
	}
	g := mn.sched.GroupOf(t.node)
	if g < 0 {
		return -1
	}
	return mn.groupBase + g
}

// ExchangeFunc returns the netio.ExchangeFunc driving the mux: it
// partitions each round's submissions per member network, runs the involved
// members (concurrently when backed by fleet handles), and digests per-node
// results into wire outcomes. When a single member is involved and its
// exchange fails, the error is returned round-level (every submitter gets
// RoundError); with several members involved, one member's failure becomes
// per-tag error outcomes so a healthy network's tags still get results.
func (m *GatewayMux) ExchangeFunc() netio.ExchangeFunc {
	return func(round uint64, uplinkBits map[uint8][]bool) (map[uint8]netio.Outcome, error) {
		outcomes := make(map[uint8]netio.Outcome, len(uplinkBits))
		perNet := make([]map[int][]bool, len(m.nets))
		involved := 0
		for tagID, b := range uplinkBits {
			t, ok := m.targets[tagID]
			if !ok {
				outcomes[tagID] = netio.Outcome{Err: fmt.Sprintf("core: unknown tag %d", tagID)}
				continue
			}
			if perNet[t.net] == nil {
				perNet[t.net] = make(map[int][]bool)
				involved++
			}
			perNet[t.net][t.node] = b
		}
		if involved == 0 {
			return outcomes, nil
		}
		payload := m.payload(round)

		nodeResults := make([][]NodeResult, len(m.nets))
		errs := make([]error, len(m.nets))
		var wg sync.WaitGroup
		for ni := range m.nets {
			if perNet[ni] == nil {
				continue
			}
			if m.nets[ni].handle != nil {
				wg.Add(1)
				go func(ni int) {
					defer wg.Done()
					nodeResults[ni], errs[ni] = m.runMember(ni, payload, perNet[ni])
				}(ni)
			} else {
				nodeResults[ni], errs[ni] = m.runMember(ni, payload, perNet[ni])
			}
		}
		wg.Wait()

		for ni := range m.nets {
			if perNet[ni] == nil {
				continue
			}
			if err := errs[ni]; err != nil {
				if involved == 1 {
					return nil, err
				}
				for tagID, t := range m.targets {
					if t.net != ni {
						continue
					}
					if _, submitted := perNet[ni][t.node]; submitted {
						outcomes[tagID] = netio.Outcome{Err: fmt.Sprintf("core: network %d: %v", ni, err)}
					}
				}
				continue
			}
			for tagID, t := range m.targets {
				if t.net != ni {
					continue
				}
				if _, submitted := perNet[ni][t.node]; submitted {
					outcomes[tagID] = digestOutcome(nodeResults[ni][t.node])
				}
			}
		}
		return outcomes, nil
	}
}

// runMember runs one member's round: the submitted subset of its nodes,
// through the recorder, scheduled when the network has a frame schedule,
// and on the member's fleet engine when it has a handle.
func (m *GatewayMux) runMember(ni int, payload []byte, bits map[int][]bool) ([]NodeResult, error) {
	mn := m.nets[ni]
	active := make([]int, 0, len(bits))
	for idx := range bits {
		active = append(active, idx)
	}
	sort.Ints(active)
	var opts []ExchangeOption
	if len(active) < mn.nodes {
		// A strict subset submitted: restrict the round so the record's
		// active set mirrors the session state (a full house runs the
		// default all-active round, byte-identical to the oracle's). On a
		// scheduled network the subset intersects each frame group and
		// unattended groups are skipped.
		opts = append(opts, WithActiveNodes(active...))
	}
	exec := func() ([]NodeResult, error) {
		if mn.sched != nil {
			res, err := mn.rec.ExchangeScheduled(payload, bits, opts...)
			if err != nil {
				return nil, err
			}
			return res.Nodes, nil
		}
		res, err := mn.rec.Exchange(payload, bits, opts...)
		if err != nil {
			return nil, err
		}
		return res.Nodes, nil
	}
	if mn.handle == nil {
		return exec()
	}
	var nodes []NodeResult
	err := mn.handle.Do(context.Background(), func(context.Context, *Network) error {
		var rerr error
		nodes, rerr = exec()
		return rerr
	})
	if err != nil {
		return nil, err
	}
	return nodes, nil
}

// NewGatewayHandler bridges a netio.Gateway to the core exchange pipeline:
// the returned netio.ExchangeFunc runs each submitted round on the
// recorder's network and digests per-node results into wire outcomes. It is
// the single-network form of GatewayMux — see there for the serving
// semantics, and NewGatewayMux for multiplexing several networks (with
// Fleet backing) behind one gateway.
//
// Tags are mapped to nodes by NodeConfig.ID. payload supplies the round's
// downlink payload (so the record's inputs stay deterministic per round
// index regardless of network timing). When only a subset of tags submits
// a round, the round runs with WithActiveNodes over that subset — the rest
// of the fleet keeps exchanging while quarantined or evicted tags sit out,
// and the record captures the active set so replay reproduces it.
func NewGatewayHandler(rec *ExchangeRecorder, payload func(round uint64) []byte) (netio.ExchangeFunc, error) {
	if rec == nil {
		return nil, fmt.Errorf("core: gateway handler needs a recorder")
	}
	if payload == nil {
		return nil, fmt.Errorf("core: gateway handler needs a payload source")
	}
	mux, err := NewGatewayMux(payload, GatewayMember{Recorder: rec})
	if err != nil {
		return nil, err
	}
	return mux.ExchangeFunc(), nil
}

// digestOutcome converts a NodeResult into its wire digest — the same
// fields (and the same deep copies) as the replay layer's
// outcomesFromNodes.
func digestOutcome(nr NodeResult) netio.Outcome {
	o := netio.Outcome{
		DownlinkPayload: append([]byte(nil), nr.DownlinkPayload...),
		DetectionRange:  nr.Detection.Range,
		DetectionBin:    int32(nr.Detection.Bin),
		DetectionSNRdB:  nr.Detection.SNRdB,
		UplinkBits:      append([]bool(nil), nr.UplinkBits...),
	}
	if nr.DownlinkErr != nil {
		o.DownlinkErr = nr.DownlinkErr.Error()
	}
	if nr.DetectionErr != nil {
		o.DetectionErr = nr.DetectionErr.Error()
	}
	if nr.UplinkErr != nil {
		o.UplinkErr = nr.UplinkErr.Error()
	}
	return o
}
