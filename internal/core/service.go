package core

import (
	"fmt"
	"sort"

	"biscatter/internal/netio"
)

// NewGatewayHandler bridges a netio.Gateway to the core exchange pipeline:
// the returned netio.ExchangeFunc runs each submitted round on the
// recorder's network and digests per-node results into wire outcomes. The
// gateway (not the tags) owns the physics, so a distributed run computes
// the exact pipeline the in-process oracle does — which is what lets the
// chaos conformance suite replay the captured trace.ExchangeRecord
// byte-for-byte against it.
//
// Tags are mapped to nodes by NodeConfig.ID. payload supplies the round's
// downlink payload (so the record's inputs stay deterministic per round
// index regardless of network timing). When only a subset of tags submits
// a round, the round runs with WithActiveNodes over that subset — the rest
// of the fleet keeps exchanging while quarantined or evicted tags sit out,
// and the record captures the active set so replay reproduces it.
func NewGatewayHandler(rec *ExchangeRecorder, payload func(round uint64) []byte) (netio.ExchangeFunc, error) {
	if rec == nil {
		return nil, fmt.Errorf("core: gateway handler needs a recorder")
	}
	if payload == nil {
		return nil, fmt.Errorf("core: gateway handler needs a payload source")
	}
	cfg := rec.Network().Config()
	nodeByTag := make(map[uint8]int, len(cfg.Nodes))
	for i, nc := range cfg.Nodes {
		if _, dup := nodeByTag[nc.ID]; dup {
			return nil, fmt.Errorf("core: duplicate node ID %d", nc.ID)
		}
		nodeByTag[nc.ID] = i
	}
	return func(round uint64, uplinkBits map[uint8][]bool) (map[uint8]netio.Outcome, error) {
		bits := make(map[int][]bool, len(uplinkBits))
		active := make([]int, 0, len(uplinkBits))
		outcomes := make(map[uint8]netio.Outcome, len(uplinkBits))
		for tagID, b := range uplinkBits {
			idx, ok := nodeByTag[tagID]
			if !ok {
				outcomes[tagID] = netio.Outcome{Err: fmt.Sprintf("core: unknown tag %d", tagID)}
				continue
			}
			bits[idx] = b
			active = append(active, idx)
		}
		if len(active) == 0 {
			return outcomes, nil
		}
		sort.Ints(active)
		var opts []ExchangeOption
		if len(active) < len(cfg.Nodes) {
			// A strict subset submitted: restrict the round so the record's
			// active set mirrors the session state. A full house runs with
			// the default all-active round, byte-identical to the oracle's.
			opts = append(opts, WithActiveNodes(active...))
		}
		res, err := rec.Exchange(payload(round), bits, opts...)
		if err != nil {
			return nil, err
		}
		for tagID, idx := range nodeByTag {
			if _, submitted := bits[idx]; !submitted {
				continue
			}
			outcomes[tagID] = digestOutcome(res.Nodes[idx])
		}
		return outcomes, nil
	}, nil
}

// digestOutcome converts a NodeResult into its wire digest — the same
// fields (and the same deep copies) as the replay layer's
// outcomesFromNodes.
func digestOutcome(nr NodeResult) netio.Outcome {
	o := netio.Outcome{
		DownlinkPayload: append([]byte(nil), nr.DownlinkPayload...),
		DetectionRange:  nr.Detection.Range,
		DetectionBin:    int32(nr.Detection.Bin),
		DetectionSNRdB:  nr.Detection.SNRdB,
		UplinkBits:      append([]bool(nil), nr.UplinkBits...),
	}
	if nr.DownlinkErr != nil {
		o.DownlinkErr = nr.DownlinkErr.Error()
	}
	if nr.DetectionErr != nil {
		o.DetectionErr = nr.DetectionErr.Error()
	}
	if nr.UplinkErr != nil {
		o.UplinkErr = nr.UplinkErr.Error()
	}
	return o
}
