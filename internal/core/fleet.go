package core

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"biscatter/internal/fmcw"
	"biscatter/internal/radar"
	"biscatter/internal/telemetry"
)

// FleetConfig assembles a Fleet. The zero value selects the calibrated
// defaults; network-level configuration is NOT here — it arrives through
// the same Config + functional Option set NewNetwork takes, as fleet-wide
// defaults on NewFleet and per-network settings on AddNetwork.
type FleetConfig struct {
	// Engines is the number of exchange engines — the fleet's concurrency
	// width. Each engine is one goroutine that drives its resident
	// networks serially, honoring the single-threaded Network contract.
	// Non-positive selects GOMAXPROCS.
	Engines int
	// QueueDepth bounds each engine's request queue. A submit against a
	// full queue waits until a slot frees or the caller's context expires
	// (reject-or-wait backpressure via context deadlines); default 16.
	QueueDepth int
	// Metrics receives the fleet's aggregate telemetry (queue-wait and
	// latency histograms, busy-engine gauge, per-network counters) and is
	// shared with every network the fleet builds, so per-stage pipeline
	// metrics aggregate fleet-wide. Nil disables collection.
	Metrics *telemetry.Metrics
	// Recorder receives the structured pipeline events of every network
	// the fleet builds; nil disables them.
	Recorder telemetry.Recorder
	// Tracer collects exchange span trees from every network the fleet
	// builds (trace Network fields carry the fleet-assigned ids, so the
	// shared stream stays attributable); nil disables tracing.
	Tracer *telemetry.Tracer
	// Flight is the shared flight recorder of every network the fleet
	// builds; nil disables it.
	Flight *telemetry.FlightRecorder
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Engines <= 0 {
		c.Engines = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	return c
}

// fleetReq is one unit of engine work: a closure run on the owning engine's
// goroutine. done is closed after run returns; the submitter blocks on it,
// which is the happens-before edge that hands the results back.
type fleetReq struct {
	ctx  context.Context
	run  func(ctx context.Context)
	done chan struct{}
	enq  time.Time
}

// engine is one serially-driven exchange lane: a goroutine plus the bounded
// queue feeding it. Networks are pinned to engines, so every network's
// requests execute in submission order on a single goroutine — the fleet's
// way of honoring the Network single-threaded contract while many networks
// make progress concurrently.
type engine struct {
	id    int
	queue chan *fleetReq
}

// fleetTel holds the fleet's pre-resolved telemetry handles; the zero value
// is the disabled state (all methods no-op).
type fleetTel struct {
	m         *telemetry.Metrics
	queueWait *telemetry.Histogram // fleet.queue_wait.seconds: enqueue → claim
	service   *telemetry.Histogram // fleet.service.seconds: time inside run
	latency   *telemetry.Histogram // fleet.latency.seconds: submit → done
	busy      *telemetry.Gauge     // fleet.busy_engines
	engines   *telemetry.Gauge     // fleet.engines (static width)
	networks  *telemetry.Gauge     // fleet.networks (resident count)
	requests  *telemetry.Counter   // fleet.requests (completed submissions)
	rejected  *telemetry.Counter   // fleet.rejected (backpressure/deadline)
}

func newFleetTel(m *telemetry.Metrics) fleetTel {
	if m == nil {
		return fleetTel{}
	}
	return fleetTel{
		m:         m,
		queueWait: m.Histogram("fleet.queue_wait.seconds"),
		service:   m.Histogram("fleet.service.seconds"),
		latency:   m.Histogram("fleet.latency.seconds"),
		busy:      m.Gauge("fleet.busy_engines"),
		engines:   m.Gauge("fleet.engines"),
		networks:  m.Gauge("fleet.networks"),
		requests:  m.Counter("fleet.requests"),
		rejected:  m.Counter("fleet.rejected"),
	}
}

func (t fleetTel) enabled() bool { return t.m != nil }

// Fleet is the serving layer over a pool of exchange engines: it hosts many
// independent Networks in one process and schedules their Exchange /
// Localize / MapEnvironment calls across N engines with per-network
// isolation, bounded queues and aggregate telemetry.
//
// # Concurrency contract
//
// A Fleet is safe for concurrent use by any number of goroutines — that is
// its purpose. Each resident network is pinned to one engine and driven
// serially in submission order, so per-network results are byte-identical
// to the same call sequence on a standalone Network with the same seed.
// Results still follow the Network ownership contract, scoped per network:
// slice-typed outputs are valid until the next call on the same
// FleetNetwork. Calls on different FleetNetworks never invalidate each
// other.
//
// Backpressure: every engine queue is bounded (FleetConfig.QueueDepth).
// When a network's engine queue is full, submission blocks until a slot
// frees or ctx is done — so callers choose reject-or-wait by deadline:
// a context without a deadline waits, one with a deadline rejects with
// ctx.Err() when it expires. Rejections count into fleet.rejected.
type Fleet struct {
	cfg      FleetConfig
	defaults []Option
	engines  []*engine
	tel      fleetTel

	// mu serializes submissions against Close: submitters hold it (read
	// side) for the enqueue only — never while waiting for the result — so
	// Close can take the write side once every in-flight enqueue resolved,
	// mark the fleet closed and close the queues without racing a send.
	mu       sync.RWMutex
	closed   bool
	networks int

	wg sync.WaitGroup
}

// NewFleet builds a fleet of exchange engines. defaults are NewNetwork
// options applied to every network the fleet builds, before the options
// given to AddNetwork — the same functional Option set NewNetwork accepts,
// so fleet-wide policy (WithPreset, WithWorkers, WithFaults, ...) and
// per-network overrides share one plumbing.
func NewFleet(cfg FleetConfig, defaults ...Option) *Fleet {
	cfg = cfg.withDefaults()
	f := &Fleet{
		cfg:      cfg,
		defaults: defaults,
		tel:      newFleetTel(cfg.Metrics),
	}
	f.tel.engines.Set(float64(cfg.Engines))
	for i := 0; i < cfg.Engines; i++ {
		e := &engine{id: i, queue: make(chan *fleetReq, cfg.QueueDepth)}
		f.engines = append(f.engines, e)
		f.wg.Add(1)
		go f.engineLoop(e)
	}
	return f
}

// engineLoop drains one engine's queue until Close closes it. Each request
// runs to completion before the next is claimed; the busy gauge counts
// engines currently inside a request.
func (f *Fleet) engineLoop(e *engine) {
	defer f.wg.Done()
	for req := range e.queue {
		if f.tel.enabled() {
			f.tel.queueWait.Observe(time.Since(req.enq).Seconds())
		}
		f.tel.busy.Add(1)
		sp := f.tel.service.Span()
		req.run(req.ctx)
		sp.End()
		f.tel.busy.Add(-1)
		close(req.done)
	}
}

// do schedules run on the engine and waits for it to finish. The enqueue
// respects the bounded queue: a full queue blocks until a slot frees or ctx
// is done. Once enqueued, the request always runs (run sees ctx and returns
// promptly when it is already cancelled), so results never race a
// mid-flight abandonment.
func (f *Fleet) do(ctx context.Context, e *engine, run func(ctx context.Context)) error {
	if err := ctx.Err(); err != nil {
		f.tel.rejected.Inc()
		return err
	}
	req := &fleetReq{ctx: ctx, run: run, done: make(chan struct{})}
	if f.tel.enabled() {
		req.enq = time.Now()
	}
	f.mu.RLock()
	if f.closed {
		f.mu.RUnlock()
		return ErrFleetClosed
	}
	select {
	case e.queue <- req:
		f.mu.RUnlock()
	case <-ctx.Done():
		f.mu.RUnlock()
		f.tel.rejected.Inc()
		return ctx.Err()
	}
	<-req.done
	if f.tel.enabled() {
		f.tel.latency.Observe(time.Since(req.enq).Seconds())
	}
	f.tel.requests.Inc()
	return nil
}

// AddNetwork builds a network from the configuration, the fleet defaults
// and the per-network options (fleet defaults run first, so per-network
// options override them), and pins it to an engine round-robin. The fleet's
// metrics registry and recorder are attached ahead of the option list, so
// an explicit WithMetrics/WithTelemetry still wins.
func (f *Fleet) AddNetwork(cfg Config, opts ...Option) (*FleetNetwork, error) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, ErrFleetClosed
	}
	id := f.networks
	f.networks++
	f.mu.Unlock()

	all := make([]Option, 0, len(f.defaults)+len(opts)+5)
	if f.cfg.Metrics != nil {
		all = append(all, WithMetrics(f.cfg.Metrics))
	}
	if f.cfg.Recorder != nil {
		all = append(all, WithTelemetry(f.cfg.Recorder))
	}
	if f.cfg.Tracer != nil {
		all = append(all, WithTracer(f.cfg.Tracer))
	}
	if f.cfg.Flight != nil {
		all = append(all, WithFlightRecorder(f.cfg.Flight))
	}
	all = append(all, f.defaults...)
	all = append(all, opts...)
	// The fleet-assigned dense id always wins: it is what keys the shared
	// tracer's and recorder's streams.
	all = append(all, WithNetworkID(id))
	net, err := NewNetwork(cfg, all...)
	if err != nil {
		return nil, fmt.Errorf("core: fleet network %d: %w", id, err)
	}
	fn := &FleetNetwork{
		fleet: f,
		eng:   f.engines[id%len(f.engines)],
		net:   net,
		id:    id,
	}
	if f.tel.enabled() {
		f.tel.networks.Add(1)
		p := "fleet.network." + strconv.Itoa(id)
		fn.requests = f.tel.m.Counter(p + ".requests")
		fn.errors = f.tel.m.Counter(p + ".errors")
	}
	return fn, nil
}

// Engines returns the fleet's concurrency width.
func (f *Fleet) Engines() int { return len(f.engines) }

// Networks returns the number of resident networks.
func (f *Fleet) Networks() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.networks
}

// Metrics returns a point-in-time snapshot of the fleet's telemetry
// registry: fleet.* scheduling metrics plus the aggregated per-stage
// pipeline metrics of every resident network. Empty when the fleet was
// built without a registry.
func (f *Fleet) Metrics() telemetry.Snapshot { return f.tel.m.Snapshot() }

// Close drains and stops the fleet: queued requests run to completion, new
// submissions fail with ErrFleetClosed, and Close returns once every engine
// goroutine has exited. Closing an already-closed fleet is a no-op.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	for _, e := range f.engines {
		close(e.queue)
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// FleetNetwork is one resident network of a Fleet: a handle whose methods
// mirror Network's pipeline entry points but execute on the network's
// engine, serialized with the network's other requests. The handle is safe
// for concurrent use; concurrent calls on the same handle are run one at a
// time in queue order (results follow the per-network ownership contract —
// valid until the handle's next call).
type FleetNetwork struct {
	fleet *Fleet
	eng   *engine
	net   *Network
	id    int

	requests *telemetry.Counter // fleet.network.<id>.requests
	errors   *telemetry.Counter // fleet.network.<id>.errors
}

// ID returns the network's fleet-assigned identifier (dense, in AddNetwork
// order); telemetry counters are published under fleet.network.<id>.
func (fn *FleetNetwork) ID() int { return fn.id }

// Engine returns the index of the engine this network is pinned to.
func (fn *FleetNetwork) Engine() int { return fn.eng.id }

// Network returns the underlying network for configuration inspection
// (Config, Alphabet, DownlinkDataRate, ...). Do NOT call pipeline methods
// (Exchange, Localize, ...) on it directly while the fleet serves it — that
// would race the engine; go through the FleetNetwork methods instead.
func (fn *FleetNetwork) Network() *Network { return fn.net }

// Do runs f on the network's engine, serialized with the network's other
// requests — the escape hatch for recorder-bound drivers (a GatewayMux
// running an ExchangeRecorder against the resident network) that need
// engine affinity for a call pattern the method wrappers don't cover. f
// receives the resident network; everything it produces follows the
// per-network ownership contract (valid until the handle's next request).
// The returned error is f's own unless scheduling failed (context done,
// fleet closed).
func (fn *FleetNetwork) Do(ctx context.Context, f func(ctx context.Context, n *Network) error) error {
	var rerr error
	if err := fn.fleet.do(ctx, fn.eng, func(ctx context.Context) {
		rerr = f(ctx, fn.net)
	}); err != nil {
		fn.outcome(err)
		return err
	}
	fn.outcome(rerr)
	return rerr
}

// outcome tallies one request's per-network counters.
func (fn *FleetNetwork) outcome(err error) {
	fn.requests.Inc()
	if err != nil {
		fn.errors.Inc()
	}
}

// ExchangeContext schedules one integrated ISAC round on the network's
// engine and returns its result; see Network.ExchangeContext for the round
// semantics. Submission blocks while the engine queue is full (backpressure
// — bound it with a context deadline); ctx also cancels the round itself
// cooperatively once it runs.
func (fn *FleetNetwork) ExchangeContext(ctx context.Context, payload []byte, uplinkBits map[int][]bool, opts ...ExchangeOption) (*ExchangeResult, error) {
	var (
		res  *ExchangeResult
		rerr error
	)
	if err := fn.fleet.do(ctx, fn.eng, func(ctx context.Context) {
		res, rerr = fn.net.ExchangeContext(ctx, payload, uplinkBits, opts...)
	}); err != nil {
		fn.outcome(err)
		return nil, err
	}
	fn.outcome(rerr)
	return res, rerr
}

// Exchange is ExchangeContext with a background context: it waits for a
// queue slot indefinitely.
func (fn *FleetNetwork) Exchange(payload []byte, uplinkBits map[int][]bool, opts ...ExchangeOption) (*ExchangeResult, error) {
	return fn.ExchangeContext(context.Background(), payload, uplinkBits, opts...)
}

// ExchangeScheduledContext schedules one full frame-schedule cycle (every
// node served once) as a single engine request, so the cycle's rounds are
// never interleaved with other requests on this network; see
// Network.ExchangeScheduledContext.
func (fn *FleetNetwork) ExchangeScheduledContext(ctx context.Context, payload []byte, uplinkBits map[int][]bool, opts ...ExchangeOption) (*ScheduledResult, error) {
	var (
		res  *ScheduledResult
		rerr error
	)
	if err := fn.fleet.do(ctx, fn.eng, func(ctx context.Context) {
		res, rerr = fn.net.ExchangeScheduledContext(ctx, payload, uplinkBits, opts...)
	}); err != nil {
		fn.outcome(err)
		return nil, err
	}
	fn.outcome(rerr)
	return res, rerr
}

// ExchangeScheduled is ExchangeScheduledContext with a background context.
func (fn *FleetNetwork) ExchangeScheduled(payload []byte, uplinkBits map[int][]bool, opts ...ExchangeOption) (*ScheduledResult, error) {
	return fn.ExchangeScheduledContext(context.Background(), payload, uplinkBits, opts...)
}

// LocalizeContext schedules a sensing round on the network's engine; see
// Network.LocalizeContext.
func (fn *FleetNetwork) LocalizeContext(ctx context.Context, frame *fmcw.Frame, chirps int) ([]radar.Detection, error) {
	var (
		dets []radar.Detection
		rerr error
	)
	if err := fn.fleet.do(ctx, fn.eng, func(ctx context.Context) {
		dets, rerr = fn.net.LocalizeContext(ctx, frame, chirps)
	}); err != nil {
		fn.outcome(err)
		return nil, err
	}
	fn.outcome(rerr)
	return dets, rerr
}

// Localize is LocalizeContext with a background context.
func (fn *FleetNetwork) Localize(frame *fmcw.Frame, chirps int) ([]radar.Detection, error) {
	return fn.LocalizeContext(context.Background(), frame, chirps)
}

// MapEnvironmentContext schedules an environment-mapping round on the
// network's engine; see Network.MapEnvironmentContext.
func (fn *FleetNetwork) MapEnvironmentContext(ctx context.Context, chirps int) ([]radar.MapTarget, error) {
	var (
		targets []radar.MapTarget
		rerr    error
	)
	if err := fn.fleet.do(ctx, fn.eng, func(ctx context.Context) {
		targets, rerr = fn.net.MapEnvironmentContext(ctx, chirps)
	}); err != nil {
		fn.outcome(err)
		return nil, err
	}
	fn.outcome(rerr)
	return targets, rerr
}

// MapEnvironment is MapEnvironmentContext with a background context.
func (fn *FleetNetwork) MapEnvironment(chirps int) ([]radar.MapTarget, error) {
	return fn.MapEnvironmentContext(context.Background(), chirps)
}
