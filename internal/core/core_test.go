package core

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"biscatter/internal/fmcw"
)

func oneNodeConfig(rangeM float64, seed int64) Config {
	return Config{
		Nodes: []NodeConfig{{ID: 1, Range: rangeM}},
		Seed:  seed,
	}
}

func TestNewNetworkDefaults(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := n.Config()
	if cfg.Preset.Name != "9GHz-LMX2492" {
		t.Fatalf("default preset %q", cfg.Preset.Name)
	}
	if cfg.SymbolBits != 5 || cfg.Period != 120e-6 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if n.Alphabet().DataSymbolCount() != 32 {
		t.Fatal("alphabet should have 32 data symbols")
	}
	if len(n.Nodes()) != 1 {
		t.Fatal("one node expected")
	}
	if n.DownlinkDataRate() <= 0 {
		t.Fatal("data rate must be positive")
	}
}

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(Config{}); err == nil {
		t.Error("no nodes should fail")
	}
	if _, err := NewNetwork(oneNodeConfig(-1, 1)); err == nil {
		t.Error("negative range should fail")
	}
	bad := oneNodeConfig(3, 1)
	bad.SymbolBits = 14 // cannot fit at default ΔL
	if _, err := NewNetwork(bad); err == nil {
		t.Error("oversized symbol should fail")
	}
}

func TestLinkFromPreset(t *testing.T) {
	p := fmcw.Radar24GHz()
	l := LinkFromPreset(p)
	if l.Frequency != p.Chirp.CenterFrequency() {
		t.Fatal("frequency not propagated")
	}
	if l.TxPowerDBm != 8 {
		t.Fatal("tx power not propagated")
	}
}

func TestBuildDownlinkFramePadding(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{1, 2}
	frame, err := n.BuildDownlinkFrame(payload, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame.Chirps) != 100 {
		t.Fatalf("frame has %d chirps, want 100 (padded)", len(frame.Chirps))
	}
	// Padding chirps carry the header slope.
	hdr := n.Alphabet().Header().Duration
	last := frame.Chirps[len(frame.Chirps)-1].Params.Duration
	if math.Abs(last-hdr) > 1e-12 {
		t.Fatal("padding should use the header slope")
	}
}

func TestExchangeFullRound(t *testing.T) {
	// 2.6 m keeps the tag more than a resolution cell away from the office
	// clutter at 1.8 m and 3.2 m; a tag overlapping a strong static
	// reflector is biased by physics, not by a bug.
	n, err := NewNetwork(oneNodeConfig(2.6, 3))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("cfg:rate=2")
	upBits := []bool{true, false, true, true, false, true, false, false}
	res, err := n.Exchange(payload, map[int][]bool{0: upBits})
	if err != nil {
		t.Fatal(err)
	}
	nr := res.Nodes[0]
	if nr.DownlinkErr != nil {
		t.Fatalf("downlink: %v", nr.DownlinkErr)
	}
	if !bytes.Equal(nr.DownlinkPayload, payload) {
		t.Fatalf("downlink payload %q, want %q", nr.DownlinkPayload, payload)
	}
	if nr.DetectionErr != nil {
		t.Fatalf("detection: %v", nr.DetectionErr)
	}
	if math.Abs(nr.Detection.Range-2.6) > 0.06 {
		t.Fatalf("localization error %.1f cm", math.Abs(nr.Detection.Range-2.6)*100)
	}
	if nr.UplinkErr != nil {
		t.Fatalf("uplink: %v", nr.UplinkErr)
	}
	if len(nr.UplinkBits) != len(upBits) {
		t.Fatalf("uplink bits %d, want %d", len(nr.UplinkBits), len(upBits))
	}
	for i := range upBits {
		if nr.UplinkBits[i] != upBits[i] {
			t.Fatalf("uplink bit %d wrong", i)
		}
	}
}

func TestExchangeMultiNode(t *testing.T) {
	cfg := Config{
		Nodes: []NodeConfig{
			{ID: 1, Range: 2.4},
			{ID: 2, Range: 5.2},
		},
		Seed: 4,
	}
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0xAB}
	bits0 := []bool{true, false, true}
	bits1 := []bool{false, true, true}
	res, err := n.Exchange(payload, map[int][]bool{0: bits0, 1: bits1})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range [][]bool{bits0, bits1} {
		nr := res.Nodes[i]
		if nr.DownlinkErr != nil || !bytes.Equal(nr.DownlinkPayload, payload) {
			t.Fatalf("node %d downlink: %v %q", i, nr.DownlinkErr, nr.DownlinkPayload)
		}
		if nr.DetectionErr != nil {
			t.Fatalf("node %d detection: %v", i, nr.DetectionErr)
		}
		wantRange := cfg.Nodes[i].Range
		if math.Abs(nr.Detection.Range-wantRange) > 0.08 {
			t.Fatalf("node %d localized at %v m, want %v", i, nr.Detection.Range, wantRange)
		}
		for k := range want {
			if nr.UplinkBits[k] != want[k] {
				t.Fatalf("node %d uplink bit %d wrong", i, k)
			}
		}
	}
}

func TestExchangeNoUplinkBitsStillLocalizes(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2.5, 5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Exchange([]byte{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes[0].DetectionErr != nil {
		t.Fatalf("detection without uplink data: %v", res.Nodes[0].DetectionErr)
	}
	if res.Nodes[0].UplinkBits != nil {
		t.Fatal("no uplink bits requested, none should be decoded")
	}
}

func TestLocalizeSensingOnlyMode(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(4.2, 6))
	if err != nil {
		t.Fatal(err)
	}
	dets, err := n.Localize(nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dets[0].Range-4.2) > 0.05 {
		t.Fatalf("sensing-only localization %v m, want 4.2", dets[0].Range)
	}
}

func TestLocalizeWithCSSKFrameMatchesSensingOnly(t *testing.T) {
	// Fig. 16's claim: downlink communication does not degrade localization.
	n, err := NewNetwork(oneNodeConfig(3.3, 7))
	if err != nil {
		t.Fatal(err)
	}
	sensing, err := n.Localize(nil, 64)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := n.BuildDownlinkFrame(RandomPayload(9, 20), 64)
	if err != nil {
		t.Fatal(err)
	}
	comm, err := n.Localize(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	eS := math.Abs(sensing[0].Range - 3.3)
	eC := math.Abs(comm[0].Range - 3.3)
	if eS > 0.05 || eC > 0.05 {
		t.Fatalf("localization errors: sensing %.1f cm, comm %.1f cm", eS*100, eC*100)
	}
}

func TestExchangeAtLongRangeDegrades(t *testing.T) {
	// At 20 m the downlink SNR (≈7 dB) is far below the 7 m operating
	// point; most packets must fail. A single packet can still survive by
	// luck, so this is a statistical check over several exchanges.
	failures := 0
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		n, err := NewNetwork(oneNodeConfig(20, 8+int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		payload := RandomPayload(int64(trial), 8)
		res, err := n.Exchange(payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Nodes[0].DownlinkErr != nil || !bytes.Equal(res.Nodes[0].DownlinkPayload, payload) {
			failures++
		}
	}
	if failures < trials/2 {
		t.Fatalf("only %d/%d packets failed at 20 m; the link should be mostly broken", failures, trials)
	}
}

func TestMapEnvironmentFindsClutter(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2.6, 15))
	if err != nil {
		t.Fatal(err)
	}
	targets, err := n.MapEnvironment(32)
	if err != nil {
		t.Fatal(err)
	}
	// The office clutter reflectors must appear in the map.
	found := 0
	for _, c := range n.Config().Clutter {
		for _, tgt := range targets {
			if math.Abs(tgt.Range-c.Range) < 0.12 {
				found++
				break
			}
		}
	}
	if found < len(n.Config().Clutter)-1 {
		t.Fatalf("mapped %d of %d clutter objects: %+v", found, len(n.Config().Clutter), targets)
	}
}

func TestRandomPayloadDeterministic(t *testing.T) {
	a := RandomPayload(5, 16)
	b := RandomPayload(5, 16)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must give same payload")
	}
	c := RandomPayload(6, 16)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
}

func TestCountBitErrors(t *testing.T) {
	errs, total := CountBitErrors([]byte{0xFF}, []byte{0x0F})
	if errs != 4 || total != 8 {
		t.Fatalf("errs=%d total=%d", errs, total)
	}
	errs, total = CountBitErrors([]byte{0xAA, 0x55}, []byte{0xAA})
	if errs != 8 || total != 16 {
		t.Fatalf("missing byte: errs=%d total=%d", errs, total)
	}
	errs, total = CountBitErrors([]byte{0xAA}, []byte{0xAA, 0xFF})
	if errs != 8 || total != 16 {
		t.Fatalf("extra trailing byte: errs=%d total=%d", errs, total)
	}
	errs, total = CountBitErrors(nil, []byte{0x01})
	if errs != 8 || total != 8 {
		t.Fatalf("all-spurious decode: errs=%d total=%d", errs, total)
	}
	errs, _ = CountBitErrors(nil, nil)
	if errs != 0 {
		t.Fatal("empty comparison should have no errors")
	}
}

func TestCountBitErrorsProperty(t *testing.T) {
	f := func(a []byte) bool {
		errs, total := CountBitErrors(a, a)
		return errs == 0 && total == len(a)*8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolsForMatchesPacket(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(3, 10))
	if err != nil {
		t.Fatal(err)
	}
	syms, err := n.SymbolsFor([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) != n.Packet().PacketChirps(3) {
		t.Fatalf("symbol count %d", len(syms))
	}
}
