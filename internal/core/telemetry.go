package core

import (
	"strconv"
	"time"

	"biscatter/internal/telemetry"
)

// Telemetry stage names for the exchange engine. Each stage records its
// per-unit durations into the histogram "<stage>.seconds": per round for
// exchange / frame build / the joint detect search, per node for downlink
// decode and uplink demod. See DESIGN.md "Telemetry".
const (
	StageExchange       = "core.exchange"
	StageFrameBuild     = "core.frame_build"
	StageDownlinkDecode = "core.downlink_decode"
	StageDetect         = "core.detect"
	StageUplinkDemod    = "core.uplink_demod"
)

// coreTel holds the network's pre-resolved telemetry handles. The zero
// value (all nil) is the disabled state: every handle method is a nil-safe
// no-op, so the exchange hot path carries no conditionals beyond the ones
// guarding real extra work (BER tallies, the Doppler introspection pass).
type coreTel struct {
	m *telemetry.Metrics

	exchange   *telemetry.Histogram
	frameBuild *telemetry.Histogram
	downlink   *telemetry.Histogram
	detect     *telemetry.Histogram
	demod      *telemetry.Histogram

	exchOK, exchErr *telemetry.Counter

	// Aggregate outcome counters across nodes.
	dlOK, dlErr   *telemetry.Counter
	detOK, detErr *telemetry.Counter
	upOK, upErr   *telemetry.Counter

	// Link-quality tallies; bits count every attempt, so a failed decode
	// scores its payload fully as errors (effective BER, erasures
	// included).
	dlBitErrs, dlBits *telemetry.Counter
	upBitErrs, upBits *telemetry.Counter

	detSNR, detPSL *telemetry.Gauge

	nodes []nodeTel
}

// nodeTel is one node's outcome counters ("core.node.<i>.<stage>.<verdict>").
type nodeTel struct {
	dlOK, dlErr   *telemetry.Counter
	detOK, detErr *telemetry.Counter
	upOK, upErr   *telemetry.Counter
}

// enabled reports whether metric collection is on.
func (t coreTel) enabled() bool { return t.m != nil }

// node returns node i's counters; out of range (or disabled) yields inert
// nil handles.
func (t coreTel) node(i int) nodeTel {
	if i < len(t.nodes) {
		return t.nodes[i]
	}
	return nodeTel{}
}

// newCoreTel resolves the exchange engine's metric handles for nNodes
// nodes; a nil registry yields the inert zero value.
func newCoreTel(m *telemetry.Metrics, nNodes int) coreTel {
	if m == nil {
		return coreTel{}
	}
	t := coreTel{
		m:          m,
		exchange:   m.Histogram(StageExchange + ".seconds"),
		frameBuild: m.Histogram(StageFrameBuild + ".seconds"),
		downlink:   m.Histogram(StageDownlinkDecode + ".seconds"),
		detect:     m.Histogram(StageDetect + ".seconds"),
		demod:      m.Histogram(StageUplinkDemod + ".seconds"),
		exchOK:     m.Counter("core.exchange.ok"),
		exchErr:    m.Counter("core.exchange.err"),
		dlOK:       m.Counter("core.downlink.ok"),
		dlErr:      m.Counter("core.downlink.err"),
		detOK:      m.Counter("core.detect.ok"),
		detErr:     m.Counter("core.detect.err"),
		upOK:       m.Counter("core.uplink.ok"),
		upErr:      m.Counter("core.uplink.err"),
		dlBitErrs:  m.Counter("core.downlink.bit_errors"),
		dlBits:     m.Counter("core.downlink.bits"),
		upBitErrs:  m.Counter("core.uplink.bit_errors"),
		upBits:     m.Counter("core.uplink.bits"),
		detSNR:     m.Gauge("radar.detection.snr_db"),
		detPSL:     m.Gauge("radar.detection.psl_db"),
	}
	for i := 0; i < nNodes; i++ {
		p := "core.node." + strconv.Itoa(i)
		t.nodes = append(t.nodes, nodeTel{
			dlOK:   m.Counter(p + ".downlink.ok"),
			dlErr:  m.Counter(p + ".downlink.err"),
			detOK:  m.Counter(p + ".detect.ok"),
			detErr: m.Counter(p + ".detect.err"),
			upOK:   m.Counter(p + ".uplink.ok"),
			upErr:  m.Counter(p + ".uplink.err"),
		})
	}
	return t
}

// outcome bumps ok on nil err and errC otherwise.
func outcome(err error, ok, errC *telemetry.Counter) {
	if err != nil {
		errC.Inc()
		return
	}
	ok.Inc()
}

// event emits a structured event to the configured recorder; a nil recorder
// drops it before any allocation at the call sites that guard on rec. Every
// event carries the current round's deterministic ExchangeID and the
// network identity, so events from concurrent Fleet networks stay
// attributable after they interleave into one stream.
func (n *Network) event(name string, node int, fields map[string]any) {
	if n.rec == nil {
		return
	}
	n.rec.Record(telemetry.Event{
		Time:     time.Now(),
		Name:     name,
		Node:     node,
		Exchange: n.exchID,
		Network:  n.cfg.NetworkID,
		Fields:   fields,
	})
}

// Metrics returns a point-in-time snapshot of the network's telemetry
// registry: per-stage latency histograms with p50/p95/p99, per-node outcome
// counters, BER tallies, detection gauges and worker-pool statistics. The
// snapshot is empty when telemetry is disabled. Counter values are
// deterministic for a given workload at any worker count; timings and live
// pool gauges are not.
func (n *Network) Metrics() telemetry.Snapshot { return n.tel.m.Snapshot() }

// observeDoppler runs the radar's range-Doppler stage over the corrected
// matrix for introspection: the exchange decode path does not consume the
// map (slow-time demodulation is tone-matched instead), but the Doppler-FFT
// span and the peak gauges let operators watch slow-time behavior live —
// the observability needed before adaptive (B-ISAC-style) operation can
// react to it. Runs only when telemetry is enabled and never feeds back
// into results, so decode outputs are identical either way.
func (n *Network) observeDoppler(cm [][]complex128) {
	rd := n.radar.RangeDoppler(cm)
	peakPower, peakDoppler, peakRange := 0.0, 0, 0
	// Row 0 is the slow-time DC carrying static clutter; the modulating
	// nodes live in the non-zero Doppler rows.
	for d := 1; d < len(rd); d++ {
		for b, v := range rd[d] {
			if v > peakPower {
				peakPower, peakDoppler, peakRange = v, d, b
			}
		}
	}
	n.tel.m.Gauge("radar.doppler.peak_power").Set(peakPower)
	n.tel.m.Gauge("radar.doppler.peak_doppler_bin").Set(float64(peakDoppler))
	n.tel.m.Gauge("radar.doppler.peak_range_bin").Set(float64(peakRange))
}
