package core

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"biscatter/internal/telemetry"
)

// fourNodeConfig mirrors the BenchmarkExchange node layout so the telemetry
// tests (and the bench script's -metrics-out dump) describe the same
// workload the benchmark times. Only the seed differs: the benchmark's seed
// gives the farthest node a noise draw that fails its downlink CRC, and
// these tests need every stage of every node to succeed.
func fourNodeConfig(workers int) Config {
	return Config{
		Nodes: []NodeConfig{
			{ID: 1, Range: 1.5},
			{ID: 2, Range: 2.6},
			{ID: 3, Range: 3.8},
			{ID: 4, Range: 5.1},
		},
		ChirpsPerBit: 64,
		Seed:         15,
		Workers:      workers,
	}
}

func fourNodeUplink() map[int][]bool {
	return map[int][]bool{
		0: {true, false, true, true},
		1: {false, true, false, false},
		2: {true, true, false, true},
		3: {false, false, true, true},
	}
}

// TestExchangeTelemetryStages is the acceptance check of the telemetry
// subsystem: one full exchange with telemetry attached must light up every
// pipeline stage span and every per-node outcome counter. When
// BISCATTER_METRICS_OUT is set the final snapshot is written there —
// scripts/bench_exchange.sh uses that to embed a per-stage breakdown in its
// report.
func TestExchangeTelemetryStages(t *testing.T) {
	rec := &telemetry.SliceRecorder{}
	m := telemetry.New()
	n, err := NewNetwork(fourNodeConfig(0), WithMetrics(m), WithTelemetry(rec))
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Exchange(RandomPayload(5, 8), fourNodeUplink())
	if err != nil {
		t.Fatal(err)
	}
	for i, nr := range res.Nodes {
		if nr.DownlinkErr != nil || nr.DetectionErr != nil || nr.UplinkErr != nil {
			t.Fatalf("node %d: exchange not clean: dl=%v det=%v up=%v",
				i, nr.DownlinkErr, nr.DetectionErr, nr.UplinkErr)
		}
		if nr.UplinkDiag.PeakPower <= 0 || nr.UplinkDiag.PeakToSidelobeDB == 0 {
			t.Errorf("node %d: UplinkDiag not populated: %+v", i, nr.UplinkDiag)
		}
	}
	snap := n.Metrics()

	stages := []string{
		StageExchange, StageFrameBuild, StageDownlinkDecode, StageDetect, StageUplinkDemod,
		"radar.synthesis", "radar.range_fft", "radar.if_correction",
		"radar.doppler_fft", "radar.matched_filter",
	}
	for _, st := range stages {
		h, ok := snap.Histograms[st+".seconds"]
		if !ok || h.Count == 0 {
			t.Errorf("stage %s: no span samples recorded (%+v)", st, h)
		}
	}
	for i := range res.Nodes {
		for _, c := range []string{"downlink.ok", "detect.ok", "uplink.ok"} {
			name := "core.node." + strconv.Itoa(i) + "." + c
			if snap.Counters[name] == 0 {
				t.Errorf("counter %s: want non-zero", name)
			}
		}
	}
	for _, c := range []string{
		"core.exchange.ok", "core.downlink.ok", "core.detect.ok", "core.uplink.ok",
		"core.downlink.bits", "core.uplink.bits",
		"parallel.tasks_queued", "parallel.tasks_completed",
	} {
		if snap.Counters[c] == 0 {
			t.Errorf("counter %s: want non-zero", c)
		}
	}
	for _, g := range []string{
		"radar.detection.snr_db", "radar.detection.psl_db", "radar.doppler.peak_power",
	} {
		if snap.Gauges[g] == 0 {
			t.Errorf("gauge %s: want non-zero", g)
		}
	}
	// A clean exchange has no downlink bit errors and no uplink bit errors.
	if snap.Counters["core.downlink.bit_errors"] != 0 {
		t.Errorf("downlink bit errors on a clean exchange: %d", snap.Counters["core.downlink.bit_errors"])
	}
	if snap.Counters["core.uplink.bit_errors"] != 0 {
		t.Errorf("uplink bit errors on a clean exchange: %d", snap.Counters["core.uplink.bit_errors"])
	}

	byName := rec.CountByName()
	for _, e := range []string{"exchange.begin", "exchange.end", "node.downlink", "node.detect", "node.uplink"} {
		if byName[e] == 0 {
			t.Errorf("event %s: none recorded", e)
		}
	}
	if byName["node.downlink"] != len(res.Nodes) {
		t.Errorf("node.downlink events = %d, want %d", byName["node.downlink"], len(res.Nodes))
	}

	if path := os.Getenv("BISCATTER_METRICS_OUT"); path != "" {
		if err := telemetry.WriteSnapshotFile(path, snap); err != nil {
			t.Fatalf("BISCATTER_METRICS_OUT: %v", err)
		}
	}
}

// TestExchangeTelemetryDeterminism extends the worker-count invariance
// contract to telemetry: counter values, histogram sample counts, gauges
// outside the live "parallel." pool group, and the event multiset must all
// depend only on the work done, never on how many workers did it. Timings
// (histogram sums and quantiles) are exempt.
func TestExchangeTelemetryDeterminism(t *testing.T) {
	payload := RandomPayload(5, 8)
	run := func(workers int) (telemetry.Snapshot, map[string]int) {
		rec := &telemetry.SliceRecorder{}
		n, err := NewNetwork(fourNodeConfig(workers), WithTelemetry(rec))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for round := 0; round < 3; round++ {
			if _, err := n.Exchange(payload, fourNodeUplink()); err != nil {
				t.Fatalf("workers=%d round=%d: %v", workers, round, err)
			}
		}
		return n.Metrics(), rec.CountByName()
	}
	serialSnap, serialEvents := run(1)
	wideSnap, wideEvents := run(8)

	for name, v := range serialSnap.Counters {
		if w := wideSnap.Counters[name]; w != v {
			t.Errorf("counter %s: serial=%d wide=%d", name, v, w)
		}
	}
	if len(serialSnap.Counters) != len(wideSnap.Counters) {
		t.Errorf("counter sets differ: %d vs %d", len(serialSnap.Counters), len(wideSnap.Counters))
	}
	for name, h := range serialSnap.Histograms {
		if w := wideSnap.Histograms[name]; w.Count != h.Count {
			t.Errorf("histogram %s: sample count serial=%d wide=%d", name, h.Count, w.Count)
		}
	}
	for name, v := range serialSnap.Gauges {
		if strings.HasPrefix(name, "parallel.") {
			continue // live pool state, legitimately worker-dependent
		}
		if w := wideSnap.Gauges[name]; w != v {
			t.Errorf("gauge %s: serial=%v wide=%v", name, v, w)
		}
	}
	for name, c := range serialEvents {
		if w := wideEvents[name]; w != c {
			t.Errorf("event %s: serial=%d wide=%d", name, c, w)
		}
	}
	if len(serialEvents) != len(wideEvents) {
		t.Errorf("event name sets differ: %v vs %v", serialEvents, wideEvents)
	}
}

// TestExchangeWithoutTelemetryYieldsEmptySnapshot pins the disabled
// default: no registry, no data, and Metrics() is still safe to call.
func TestExchangeWithoutTelemetryYieldsEmptySnapshot(t *testing.T) {
	n, err := NewNetwork(oneNodeConfig(2.6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Exchange([]byte("q"), nil); err != nil {
		t.Fatal(err)
	}
	snap := n.Metrics()
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("disabled telemetry must yield an empty snapshot: %+v", snap)
	}
}
