package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"biscatter/internal/mac"
)

// fourNodeScheduledConfig is a deployment twice the size of its frame
// capacity: nodes 0/2 share schedule slot 0 and nodes 1/3 share slot 1, so
// the auto-assigned FSK pairs are reused across the two frame groups.
func fourNodeScheduledConfig(t *testing.T) Config {
	t.Helper()
	sched, err := mac.NewFrameSchedule(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Nodes: []NodeConfig{
			{ID: 1, Range: 1.5},
			{ID: 2, Range: 2.4},
			{ID: 3, Range: 3.2},
			{ID: 4, Range: 4.1},
		},
		ChirpsPerBit: 64,
		Seed:         11,
		Workers:      1,
		Schedule:     sched,
	}
}

func TestScheduleNodeCountMismatch(t *testing.T) {
	cfg := fourNodeScheduledConfig(t)
	cfg.Nodes = cfg.Nodes[:3]
	if _, err := NewNetwork(cfg); err == nil {
		t.Fatal("schedule covering 4 tags must reject a 3-node config")
	}
}

func TestScheduleSharesTonesAcrossGroups(t *testing.T) {
	n, err := NewNetwork(fourNodeScheduledConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	nodes := n.Nodes()
	if nodes[0].Uplink.F0 != nodes[2].Uplink.F0 || nodes[1].Uplink.F1 != nodes[3].Uplink.F1 {
		t.Fatalf("slot-sharing nodes should reuse FSK pairs: %+v / %+v vs %+v / %+v",
			nodes[0].Uplink, nodes[1].Uplink, nodes[2].Uplink, nodes[3].Uplink)
	}
	if nodes[0].Uplink.F0 == nodes[1].Uplink.F0 {
		t.Fatal("different slots must get distinct FSK pairs")
	}
}

// TestWithActiveNodesAllMatchesDefault pins that an explicit all-active
// list is byte-identical to the default (no option) round — the active-set
// machinery must be a no-op when every node participates.
func TestWithActiveNodesAllMatchesDefault(t *testing.T) {
	payload := RandomPayload(5, 4)
	uplink := map[int][]bool{0: {true, false}, 1: {false, true}, 2: {true, true}}
	run := func(opts ...ExchangeOption) *ExchangeResult {
		n, err := NewNetwork(threeNodeConfig(1))
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Exchange(payload, uplink, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run()
	listed := run(WithActiveNodes(0, 1, 2))
	if !reflect.DeepEqual(plain, listed) {
		t.Fatal("explicit all-active round differs from default round")
	}
}

func TestWithActiveNodesSubset(t *testing.T) {
	n, err := NewNetwork(threeNodeConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	payload := RandomPayload(6, 4)
	uplink := map[int][]bool{0: {true, false, true}, 1: {true, true}, 2: {false, true, false}}
	res, err := n.Exchange(payload, uplink, WithActiveNodes(0, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2} {
		nr := res.Nodes[i]
		if nr.DownlinkErr != nil || !bytes.Equal(nr.DownlinkPayload, payload) {
			t.Errorf("active node %d: downlink err=%v payload=%x", i, nr.DownlinkErr, nr.DownlinkPayload)
		}
		if nr.UplinkErr != nil || !reflect.DeepEqual(nr.UplinkBits, uplink[i]) {
			t.Errorf("active node %d: uplink err=%v bits=%v", i, nr.UplinkErr, nr.UplinkBits)
		}
	}
	inactive := res.Nodes[1]
	if !errors.Is(inactive.DownlinkErr, ErrNodeInactive) {
		t.Errorf("inactive node downlink err = %v, want ErrNodeInactive", inactive.DownlinkErr)
	}
	if !errors.Is(inactive.DetectionErr, ErrNodeInactive) {
		t.Errorf("inactive node detection err = %v, want ErrNodeInactive", inactive.DetectionErr)
	}
	if inactive.UplinkBits != nil || inactive.UplinkErr != nil {
		t.Errorf("inactive node demodulated: bits=%v err=%v", inactive.UplinkBits, inactive.UplinkErr)
	}
	// The restricted round must not leak into the next default round.
	res2, err := n.Exchange(payload, uplink)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res2.Nodes {
		if res2.Nodes[i].DownlinkErr != nil {
			t.Errorf("node %d still inactive after unrestricted round: %v", i, res2.Nodes[i].DownlinkErr)
		}
	}
}

// TestExchangeScheduledNoSchedule pins the degenerate cycle: on a network
// without a frame schedule, ExchangeScheduled is exactly one all-active
// Exchange round.
func TestExchangeScheduledNoSchedule(t *testing.T) {
	payload := RandomPayload(7, 5)
	uplink := map[int][]bool{0: {true}, 1: {false, true}, 2: {true, true, false}}
	na, err := NewNetwork(threeNodeConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	nb, err := NewNetwork(threeNodeConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := na.Exchange(payload, uplink)
	if err != nil {
		t.Fatal(err)
	}
	cycle, err := nb.ExchangeScheduled(payload, uplink)
	if err != nil {
		t.Fatal(err)
	}
	if len(cycle.Rounds) != 1 {
		t.Fatalf("unscheduled cycle ran %d rounds, want 1", len(cycle.Rounds))
	}
	if !reflect.DeepEqual(plain, cycle.Rounds[0]) {
		t.Fatal("unscheduled cycle round differs from a plain Exchange")
	}
}

// TestExchangeScheduledCycle runs one full cycle on the 4-node / capacity-2
// deployment: every node must be served exactly once, tone-sharing nodes in
// alternating frame groups, and the shared FSK pairs must decode correctly
// because the scheduled-out tag of each pair holds a static switch state.
func TestExchangeScheduledCycle(t *testing.T) {
	n, err := NewNetwork(fourNodeScheduledConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	payload := RandomPayload(8, 4)
	uplink := map[int][]bool{
		0: {true, false, true},
		1: {false, true},
		2: {true, true, false},
		3: {false, false, true},
	}
	cycle, err := n.ExchangeScheduled(payload, uplink)
	if err != nil {
		t.Fatal(err)
	}
	sched := n.Schedule()
	if len(cycle.Rounds) != sched.Frames() {
		t.Fatalf("cycle ran %d rounds, want %d", len(cycle.Rounds), sched.Frames())
	}
	for g, round := range cycle.Rounds {
		for i := range round.Nodes {
			inRound := sched.GroupOf(i) == g
			gotInactive := errors.Is(round.Nodes[i].DownlinkErr, ErrNodeInactive)
			if inRound == gotInactive {
				t.Errorf("round %d node %d: in-group=%v but inactive=%v", g, i, inRound, gotInactive)
			}
		}
	}
	for i, nr := range cycle.Nodes {
		if nr.DownlinkErr != nil || !bytes.Equal(nr.DownlinkPayload, payload) {
			t.Errorf("node %d: merged downlink err=%v payload=%x", i, nr.DownlinkErr, nr.DownlinkPayload)
		}
		if nr.DetectionErr != nil {
			t.Errorf("node %d: merged detection err=%v", i, nr.DetectionErr)
		}
		if nr.UplinkErr != nil || !reflect.DeepEqual(nr.UplinkBits, uplink[i]) {
			t.Errorf("node %d: merged uplink err=%v bits=%v want %v", i, nr.UplinkErr, nr.UplinkBits, uplink[i])
		}
	}
}

// TestLocalizeScheduled pins sensing on a scheduled network: beacons run one
// frame group at a time, and the merged detections place every node.
func TestLocalizeScheduled(t *testing.T) {
	cfg := fourNodeScheduledConfig(t)
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dets, err := n.Localize(nil, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != len(cfg.Nodes) {
		t.Fatalf("got %d detections, want %d", len(dets), len(cfg.Nodes))
	}
	for i, d := range dets {
		if diff := d.Range - cfg.Nodes[i].Range; diff > 0.5 || diff < -0.5 {
			t.Errorf("node %d localized at %.2f m, true range %.2f m", i, d.Range, cfg.Nodes[i].Range)
		}
	}
}
