package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"biscatter/internal/telemetry"
)

// fleetNodeConfig builds a small per-network deployment whose seed varies by
// network index, so fleet determinism is checked against distinct RNG
// streams, not one shared one.
func fleetNodeConfig(id int) Config {
	return Config{
		Nodes: []NodeConfig{
			{ID: 1, Range: 1.5 + 0.2*float64(id%4), ModulationF0: 1000, ModulationF1: 1600},
			{ID: 2, Range: 3.0 + 0.3*float64(id%3), ModulationF0: 2200, ModulationF1: 2800},
		},
		ChirpsPerBit: 16,
		Seed:         1000 + int64(id),
		Workers:      1,
	}
}

// compareNodeResults fails the test when two exchange results differ in any
// observable field.
func compareNodeResults(t *testing.T, label string, a, b *ExchangeResult) {
	t.Helper()
	if !reflect.DeepEqual(a.Frame, b.Frame) {
		t.Errorf("%s: frames differ", label)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("%s: node counts differ: %d vs %d", label, len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		x, y := a.Nodes[i], b.Nodes[i]
		if !bytes.Equal(x.DownlinkPayload, y.DownlinkPayload) ||
			errString(x.DownlinkErr) != errString(y.DownlinkErr) ||
			!reflect.DeepEqual(x.DownlinkDiag, y.DownlinkDiag) ||
			x.Detection != y.Detection ||
			errString(x.DetectionErr) != errString(y.DetectionErr) ||
			!reflect.DeepEqual(x.UplinkBits, y.UplinkBits) ||
			errString(x.UplinkErr) != errString(y.UplinkErr) ||
			x.UplinkDiag != y.UplinkDiag {
			t.Errorf("%s: node %d results differ:\n%+v\nvs\n%+v", label, i, x, y)
		}
	}
}

// TestFleetMatchesSerialNetwork is the fleet determinism pin: 8 networks on
// a 2-engine fleet, driven concurrently, must produce exchange sequences
// byte-identical to standalone Networks advanced with the same seeds and the
// same call order. Run under -race this is also the fleet's data-race test.
func TestFleetMatchesSerialNetwork(t *testing.T) {
	const (
		networks = 8
		rounds   = 4
	)
	f := NewFleet(FleetConfig{Engines: 2, QueueDepth: 4})
	defer f.Close()

	var wg sync.WaitGroup
	for id := 0; id < networks; id++ {
		cfg := fleetNodeConfig(id)
		fn, err := f.AddNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := NewNetwork(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				payload := RandomPayload(int64(id*100+r), 3)
				uplink := map[int][]bool{0: {r%2 == 0, true}, 1: {false, r%2 == 1}}
				got, err := fn.Exchange(payload, uplink)
				if err != nil {
					t.Errorf("net %d round %d: fleet: %v", id, r, err)
					return
				}
				want, err := serial.Exchange(payload, uplink)
				if err != nil {
					t.Errorf("net %d round %d: serial: %v", id, r, err)
					return
				}
				compareNodeResults(t, fmt.Sprintf("net %d round %d", id, r), want, got)
			}
		}(id)
	}
	wg.Wait()
	if got := f.Networks(); got != networks {
		t.Fatalf("fleet reports %d networks, want %d", got, networks)
	}
}

// TestFleetSharedHandleSerializes hammers one FleetNetwork from many
// goroutines: calls must serialize on the network's engine without races or
// errors (run under -race).
func TestFleetSharedHandleSerializes(t *testing.T) {
	f := NewFleet(FleetConfig{Engines: 2, QueueDepth: 2})
	defer f.Close()
	fn, err := f.AddNetwork(fleetNodeConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0x5A}
	uplink := map[int][]bool{0: {true}, 1: {false}}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				if _, err := fn.Exchange(payload, uplink); err != nil {
					t.Errorf("shared-handle exchange: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestFleetBackpressureDeadline wedges a 1-engine fleet (one request running,
// queue full behind it) and checks that a deadline-bounded submission is
// rejected with the context error while an unbounded one waits it out.
func TestFleetBackpressureDeadline(t *testing.T) {
	m := telemetry.New()
	f := NewFleet(FleetConfig{Engines: 1, QueueDepth: 1, Metrics: m})
	defer f.Close()
	fn, err := f.AddNetwork(fleetNodeConfig(0))
	if err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	block := func(context.Context) { <-gate }
	running := &fleetReq{ctx: context.Background(), run: block, done: make(chan struct{})}
	queued := &fleetReq{ctx: context.Background(), run: func(context.Context) {}, done: make(chan struct{})}
	f.engines[0].queue <- running // engine claims this and blocks on gate
	f.engines[0].queue <- queued  // fills the depth-1 queue

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := fn.ExchangeContext(ctx, []byte{1}, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wedged fleet submission returned %v, want DeadlineExceeded", err)
	}
	if got := m.Counter("fleet.rejected").Value(); got != 1 {
		t.Fatalf("fleet.rejected = %d, want 1", got)
	}

	// An unbounded submission waits for the wedge to clear and then runs.
	res := make(chan error, 1)
	go func() {
		_, err := fn.Exchange([]byte{2}, nil)
		res <- err
	}()
	select {
	case err := <-res:
		t.Fatalf("submission completed against a wedged engine: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	close(gate)
	if err := <-res; err != nil {
		t.Fatalf("post-wedge exchange failed: %v", err)
	}
	<-running.done
	<-queued.done
}

// TestFleetPreCancelledContext pins the deterministic reject: a context that
// is already done never enqueues.
func TestFleetPreCancelledContext(t *testing.T) {
	f := NewFleet(FleetConfig{Engines: 1})
	defer f.Close()
	fn, err := f.AddNetwork(fleetNodeConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fn.ExchangeContext(ctx, []byte{1}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled submission returned %v, want Canceled", err)
	}
}

// TestFleetClose pins the shutdown contract: Close drains, further use fails
// with ErrFleetClosed, and a second Close is a no-op.
func TestFleetClose(t *testing.T) {
	f := NewFleet(FleetConfig{Engines: 2})
	fn, err := f.AddNetwork(fleetNodeConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fn.Exchange([]byte{0xA5}, map[int][]bool{0: {true}}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	f.Close() // idempotent
	if _, err := fn.Exchange([]byte{1}, nil); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("post-close exchange returned %v, want ErrFleetClosed", err)
	}
	if _, err := f.AddNetwork(fleetNodeConfig(1)); !errors.Is(err, ErrFleetClosed) {
		t.Fatalf("post-close AddNetwork returned %v, want ErrFleetClosed", err)
	}
}

// TestFleetOptionPlumbing pins the unified option surface: fleet-wide
// defaults are NewNetwork options, per-network options override them, and
// the fleet registry/recorder reach every network.
func TestFleetOptionPlumbing(t *testing.T) {
	m := telemetry.New()
	f := NewFleet(FleetConfig{Engines: 1, Metrics: m}, WithWorkers(1), WithSeed(42))
	defer f.Close()

	inherits, err := f.AddNetwork(Config{Nodes: []NodeConfig{{ID: 1, Range: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if cfg := inherits.Network().Config(); cfg.Seed != 42 || cfg.Workers != 1 {
		t.Fatalf("fleet defaults not applied: seed=%d workers=%d", cfg.Seed, cfg.Workers)
	}
	if inherits.Network().Config().Metrics != m {
		t.Fatal("fleet metrics registry not attached to network")
	}
	overrides, err := f.AddNetwork(Config{Nodes: []NodeConfig{{ID: 1, Range: 2}}}, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if cfg := overrides.Network().Config(); cfg.Seed != 7 {
		t.Fatalf("per-network option should override fleet default: seed=%d", cfg.Seed)
	}
	if inherits.ID() == overrides.ID() {
		t.Fatal("fleet assigned duplicate network IDs")
	}
}

// TestFleetTelemetry exercises the aggregate metric surface after a burst of
// requests across two networks.
func TestFleetTelemetry(t *testing.T) {
	m := telemetry.New()
	f := NewFleet(FleetConfig{Engines: 2, Metrics: m})
	defer f.Close()
	a, err := f.AddNetwork(fleetNodeConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.AddNetwork(fleetNodeConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0xC3}
	uplink := map[int][]bool{0: {true}, 1: {false}}
	const each = 3
	for r := 0; r < each; r++ {
		if _, err := a.Exchange(payload, uplink); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Exchange(payload, uplink); err != nil {
			t.Fatal(err)
		}
	}
	snap := f.Metrics()
	if got := snap.Counters["fleet.requests"]; got != 2*each {
		t.Errorf("fleet.requests = %d, want %d", got, 2*each)
	}
	for _, name := range []string{"fleet.network.0.requests", "fleet.network.1.requests"} {
		if got := snap.Counters[name]; got != each {
			t.Errorf("%s = %d, want %d", name, got, each)
		}
	}
	if got := snap.Gauges["fleet.engines"]; got != 2 {
		t.Errorf("fleet.engines = %v, want 2", got)
	}
	if got := snap.Gauges["fleet.networks"]; got != 2 {
		t.Errorf("fleet.networks = %v, want 2", got)
	}
	for _, name := range []string{"fleet.queue_wait.seconds", "fleet.service.seconds", "fleet.latency.seconds"} {
		if h, ok := snap.Histograms[name]; !ok || h.Count != 2*each {
			t.Errorf("%s count = %+v, want %d samples", name, h, 2*each)
		}
	}
	// The shared registry must also carry the per-stage pipeline metrics of
	// the resident networks.
	if snap.Counters["core.downlink.ok"] == 0 {
		t.Error("network pipeline metrics missing from fleet registry")
	}
}

// TestFleetLocalizeAndMap smoke-tests the sensing entry points through the
// fleet path.
func TestFleetLocalizeAndMap(t *testing.T) {
	f := NewFleet(FleetConfig{Engines: 1})
	defer f.Close()
	fn, err := f.AddNetwork(fleetNodeConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	dets, err := fn.Localize(nil, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 2 {
		t.Fatalf("got %d detections, want 2", len(dets))
	}
	if _, err := fn.MapEnvironment(128); err != nil {
		t.Fatal(err)
	}
}

// TestFleetSteadyStateAllocsPerEngine pins the serving overhead: an exchange
// through the fleet path must stay within a small constant number of
// allocations over the bare Network pin (request/done-channel/closure, plus
// result assembly) — the engine itself adds no per-request garbage.
func TestFleetSteadyStateAllocsPerEngine(t *testing.T) {
	f := NewFleet(FleetConfig{Engines: 1, Metrics: telemetry.New()})
	defer f.Close()
	fn, err := f.AddNetwork(Config{
		Nodes: []NodeConfig{
			{ID: 1, Range: 2.0, ModulationF0: 1000, ModulationF1: 1600},
			{ID: 2, Range: 3.5, ModulationF0: 2200, ModulationF1: 2800},
		},
		Seed:         99,
		ChirpsPerBit: 16,
		Workers:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0xA5}
	uplink := map[int][]bool{0: {true, false}, 1: {false, true}}
	for i := 0; i < 3; i++ {
		if _, err := fn.Exchange(payload, uplink); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := fn.Exchange(payload, uplink); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("steady-state fleet Exchange: %.0f allocs/op", allocs)
	// The bare-Network pin is 120 (alloc_test.go); the fleet path may add
	// only the fixed request envelope on top.
	const pin = 140
	if allocs > pin {
		t.Fatalf("steady-state fleet Exchange allocated %.0f times, pin is %d", allocs, pin)
	}
}
