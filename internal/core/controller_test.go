package core

import (
	"context"
	"errors"
	"testing"

	"biscatter/internal/fec"
)

// testLadder is a short two-rung ladder so controller tests stay fast.
func testLadder() []LinkMode {
	return []LinkMode{
		{Name: "nominal", SymbolBits: 5, AckBits: 3},
		{Name: "coded", SymbolBits: 5, AckBits: 3,
			FEC: fec.Config{Scheme: fec.SchemeHamming74, InterleaveDepth: 14}},
	}
}

func TestDefaultModeLadderBuilds(t *testing.T) {
	// Every rung of the shipped ladder must produce a buildable network.
	for _, m := range DefaultModeLadder() {
		cfg := oneNodeConfig(2.6, 7)
		n, err := NewNetwork(cfg, WithLinkMode(m))
		if err != nil {
			t.Fatalf("mode %q: %v", m.Name, err)
		}
		if got := n.Config().SymbolBits; got != m.SymbolBits {
			t.Fatalf("mode %q: symbol bits %d, want %d", m.Name, got, m.SymbolBits)
		}
		if n.Packet().FEC != m.FEC {
			t.Fatalf("mode %q: FEC config not applied", m.Name)
		}
	}
}

func TestControllerStaysNominalOnCleanLink(t *testing.T) {
	lc, err := NewLinkController(ControllerConfig{
		Network: oneNodeConfig(2.6, 60),
		Ladder:  testLadder(),
		Deliver: DeliverOptions{MaxAttempts: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rep, err := lc.Deliver(context.Background(), 0, []byte("steady"))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Delivered {
			t.Fatalf("delivery %d failed on a clean short link", i)
		}
	}
	if lc.Level() != 0 {
		t.Fatalf("controller degraded to level %d on a clean link", lc.Level())
	}
	if lc.NodeState(0) != BreakerClosed {
		t.Fatalf("breaker %v on a clean link", lc.NodeState(0))
	}
}

func TestControllerDegradesAndQuarantines(t *testing.T) {
	// A node far beyond range fails every delivery: the controller must
	// walk down the ladder, then open the node's breaker, fail fast while
	// quarantined, and spend exactly one probe attempt per probe slot.
	lc, err := NewLinkController(ControllerConfig{
		Network:          oneNodeConfig(40, 61),
		Ladder:           testLadder(),
		DegradeAfter:     1,
		BreakerThreshold: 2,
		ProbeInterval:    2,
		Deliver:          DeliverOptions{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	payload := []byte("unreachable")

	// Failure 1: degrade from nominal to the bottom rung.
	if rep, err := lc.Deliver(ctx, 0, payload); err != nil || rep.Delivered {
		t.Fatalf("delivery at 40 m: delivered=%v err=%v", rep.Delivered, err)
	}
	if lc.Level() != 1 {
		t.Fatalf("level %d after first failure, want 1", lc.Level())
	}
	// Failures 2, 3 at the bottom: breaker opens at the threshold.
	for i := 0; i < 2; i++ {
		if _, err := lc.Deliver(ctx, 0, payload); err != nil {
			t.Fatal(err)
		}
	}
	if lc.NodeState(0) != BreakerOpen {
		t.Fatalf("breaker %v after persistent failure, want open", lc.NodeState(0))
	}
	// Quarantined slot: fails fast, no airtime.
	rep, err := lc.Deliver(ctx, 0, payload)
	if !errors.Is(err, ErrNodeQuarantined) {
		t.Fatalf("quarantined delivery returned %v", err)
	}
	if rep.Exchanges != 0 {
		t.Fatalf("quarantined delivery consumed %d exchanges", rep.Exchanges)
	}
	// Next slot is the half-open probe: one attempt, then reopen.
	rep, err = lc.Deliver(ctx, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attempts != 1 {
		t.Fatalf("probe used %d attempts, want exactly 1", rep.Attempts)
	}
	if lc.NodeState(0) != BreakerOpen {
		t.Fatalf("breaker %v after failed probe, want reopened", lc.NodeState(0))
	}
}

func TestControllerRecoversAfterCleanStreak(t *testing.T) {
	// Two nodes: one in easy range, one unreachable. A failure to the far
	// node degrades the link; a streak of clean deliveries to the near one
	// must climb back up.
	lc, err := NewLinkController(ControllerConfig{
		Network: Config{
			Nodes: []NodeConfig{{ID: 1, Range: 2.6}, {ID: 2, Range: 40}},
			Seed:  62,
		},
		Ladder:       testLadder(),
		DegradeAfter: 1,
		RecoverAfter: 2,
		Deliver:      DeliverOptions{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := lc.Deliver(ctx, 1, []byte("lost")); err != nil {
		t.Fatal(err)
	}
	if lc.Level() != 1 {
		t.Fatalf("level %d after far-node failure, want 1", lc.Level())
	}
	for i := 0; i < 2; i++ {
		rep, err := lc.Deliver(ctx, 0, []byte("probe"))
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Delivered {
			t.Fatalf("near-node delivery %d failed at level %d", i, lc.Level())
		}
	}
	if lc.Level() != 0 {
		t.Fatalf("level %d after clean streak, want recovered to 0", lc.Level())
	}
}

func TestControllerWorkerInvariance(t *testing.T) {
	// The controller's trajectory — levels, delivery outcomes, attempt
	// counts, breaker states — must be byte-identical at any worker count.
	type step struct {
		Level     int
		Delivered bool
		Attempts  int
		Breaker   BreakerState
	}
	run := func(workers int) []step {
		lc, err := NewLinkController(ControllerConfig{
			Network: Config{
				Nodes:   []NodeConfig{{ID: 1, Range: 2.6}, {ID: 2, Range: 40}},
				Seed:    63,
				Workers: workers,
			},
			Ladder:           testLadder(),
			DegradeAfter:     1,
			BreakerThreshold: 2,
			ProbeInterval:    2,
			Deliver:          DeliverOptions{MaxAttempts: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		var steps []step
		for i := 0; i < 5; i++ {
			node := i % 2
			rep, err := lc.Deliver(context.Background(), node, []byte("trace"))
			if err != nil && !errors.Is(err, ErrNodeQuarantined) {
				t.Fatal(err)
			}
			steps = append(steps, step{lc.Level(), rep.Delivered, rep.Attempts, lc.NodeState(node)})
		}
		return steps
	}
	one := run(1)
	four := run(4)
	for i := range one {
		if one[i] != four[i] {
			t.Fatalf("step %d diverged across workers: %+v vs %+v", i, one[i], four[i])
		}
	}
}
