package core

import (
	"strings"
	"testing"

	"biscatter/internal/fault"
	"biscatter/internal/fmcw"
	"biscatter/internal/mac"
	"biscatter/internal/telemetry"
	"biscatter/internal/trace"
)

// recordNetwork builds a small deployment, records nRounds exchanges, and
// returns the record after a disk round trip — replay must work from the
// serialized artifact, not the in-memory one.
func recordRounds(t *testing.T, cfg Config, nRounds int) *trace.ExchangeRecord {
	t.Helper()
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewExchangeRecorder(net)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nRounds; i++ {
		payload := RandomPayload(int64(i+1), 4)
		bits := map[int][]bool{0: {true, false, true, i%2 == 0}}
		if len(cfg.Nodes) > 1 {
			bits[1] = []bool{i%2 == 1, true}
		}
		if _, err := rec.Exchange(payload, bits); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	path := t.TempDir() + "/rec.bsctrace"
	if err := trace.SaveExchange(path, rec.Record()); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.LoadExchange(path)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

func replayMustMatch(t *testing.T, rec *trace.ExchangeRecord, opts ...Option) {
	t.Helper()
	report, err := ReplayRecord(rec, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if report.Rounds != len(rec.Rounds) {
		t.Fatalf("replayed %d rounds, want %d", report.Rounds, len(rec.Rounds))
	}
	if !report.OK() {
		for _, m := range report.Mismatches {
			t.Errorf("mismatch: %s", m)
		}
		t.Fatal("replay diverged from record")
	}
}

func TestReplayByteEqualAcrossPresets(t *testing.T) {
	for _, tc := range []struct {
		name   string
		preset fmcw.Preset
	}{
		{"9GHz", fmcw.Radar9GHz()},
		{"24GHz", fmcw.Radar24GHz()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := recordRounds(t, Config{
				Preset: tc.preset,
				Nodes:  []NodeConfig{{ID: 1, Range: 2.5}, {ID: 2, Range: 4}},
				Seed:   41,
			}, 2)
			replayMustMatch(t, rec)
		})
	}
}

func TestReplayByteEqualFaulted(t *testing.T) {
	rec := recordRounds(t, Config{
		Nodes: []NodeConfig{{ID: 1, Range: 2.5}, {ID: 2, Range: 5}},
		Seed:  99,
		Faults: &fault.Profile{
			Name:         "replay-jam",
			Interference: &fault.Interference{TagPowerDBm: -38, RadarPowerDBm: -55, DutyCycle: 0.3},
			Dropout:      &fault.Dropout{Rate: 0.05},
		},
	}, 3)
	if rec.Spec.Faults == nil {
		t.Fatal("fault profile lost in serialization")
	}
	replayMustMatch(t, rec)
}

func TestReplayByteEqualAtDifferentWorkerCount(t *testing.T) {
	rec := recordRounds(t, Config{
		Nodes:   []NodeConfig{{ID: 1, Range: 2.5}, {ID: 2, Range: 4}},
		Seed:    7,
		Workers: 1,
	}, 2)
	// Worker count is outside the determinism contract; replay wider.
	replayMustMatch(t, rec, WithWorkers(4))
}

func TestReplayByteEqualScheduled(t *testing.T) {
	sched, err := mac.NewFrameSchedule(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Nodes: []NodeConfig{
			{ID: 1, Range: 2}, {ID: 2, Range: 3}, {ID: 3, Range: 4}, {ID: 4, Range: 5},
		},
		Schedule: sched,
		Seed:     17,
	}
	net, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewExchangeRecorder(net)
	if err != nil {
		t.Fatal(err)
	}
	bits := map[int][]bool{0: {true}, 2: {false, true}}
	if _, err := rec.ExchangeScheduled([]byte{0x5A}, bits); err != nil {
		t.Fatal(err)
	}
	if got := rec.Record().Spec.ScheduleCapacity; got != 2 {
		t.Fatalf("recorded schedule capacity %d, want 2", got)
	}
	replayMustMatch(t, rec.Record())
}

func TestRecorderRequiresFreshNetwork(t *testing.T) {
	net, err := NewNetwork(Config{Nodes: []NodeConfig{{ID: 1, Range: 2.5}}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Exchange([]byte{1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := NewExchangeRecorder(net); err == nil {
		t.Fatal("recorder accepted a network with exchanges already run")
	}
}

func TestReplayDetectsTamperedRecord(t *testing.T) {
	rec := recordRounds(t, Config{
		Nodes: []NodeConfig{{ID: 1, Range: 2.5}},
		Seed:  5,
	}, 1)
	rec.Rounds[0].Outcomes[0].DownlinkPayload[0] ^= 0xFF
	report, err := ReplayRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("replay failed to flag a tampered outcome")
	}
	if !strings.Contains(report.Mismatches[0].Field, "downlink_payload") {
		t.Fatalf("mismatch field = %q", report.Mismatches[0].Field)
	}
}

func TestExchangeTraceTree(t *testing.T) {
	tracer := telemetry.NewTracer()
	net, err := NewNetwork(Config{
		Nodes: []NodeConfig{{ID: 1, Range: 2.5}, {ID: 2, Range: 4}},
		Seed:  11,
	}, WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Exchange([]byte{0x42}, map[int][]bool{0: {true, false}}); err != nil {
		t.Fatal(err)
	}
	traces := tracer.Traces()
	if len(traces) != 1 {
		t.Fatalf("collected %d traces, want 1", len(traces))
	}
	tr := traces[0]
	wantID := telemetry.NewExchangeID(11, 0, 0).String()
	if tr.ID != wantID || tr.Seq != 0 || tr.Network != 0 {
		t.Fatalf("trace identity = (%s, net %d, seq %d), want (%s, 0, 0)", tr.ID, tr.Network, tr.Seq, wantID)
	}
	counts := map[string]int{}
	tr.Root.Walk(func(s *telemetry.SpanNode) { counts[s.Name]++ })
	for name, want := range map[string]int{
		"exchange":            1,
		"frame.build":         1,
		"downlink":            1,
		"node.downlink":       2,
		"tag.capture":         2,
		"tag.decode":          2,
		"scene.build":         1,
		"radar.observe":       1,
		"radar.if_correction": 1,
		"detect":              1,
		"uplink":              1,
		"node.uplink":         1,
	} {
		if counts[name] != want {
			t.Errorf("span %q count = %d, want %d (all: %v)", name, counts[name], want, counts)
		}
	}
	if counts["parallel.for"] == 0 {
		t.Error("no parallel.for spans recorded")
	}
	// Spans must close: every non-root span has a non-negative duration and
	// the root spans the round.
	tr.Root.Walk(func(s *telemetry.SpanNode) {
		if s.DurNS < 0 {
			t.Errorf("span %q has negative duration %d", s.Name, s.DurNS)
		}
	})
	if tr.Root.DurNS <= 0 {
		t.Error("root span never ended")
	}
}

func TestExchangeTraceDeterministicIDs(t *testing.T) {
	run := func() []string {
		tracer := telemetry.NewTracer()
		net, err := NewNetwork(Config{
			Nodes: []NodeConfig{{ID: 1, Range: 2.5}},
			Seed:  23,
		}, WithTracer(tracer))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := net.Exchange([]byte{byte(i)}, nil); err != nil {
				t.Fatal(err)
			}
		}
		ids := []string{}
		for _, tr := range tracer.Traces() {
			ids = append(ids, tr.ID)
		}
		return ids
	}
	a, b := run(), run()
	if len(a) != 3 {
		t.Fatalf("got %d IDs, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run IDs diverge at %d: %s vs %s", i, a[i], b[i])
		}
		if i > 0 && a[i] == a[i-1] {
			t.Fatalf("consecutive exchanges share ID %s", a[i])
		}
	}
}

func TestEventExchangeTagging(t *testing.T) {
	sink := &telemetry.SliceRecorder{}
	net, err := NewNetwork(Config{
		Nodes:     []NodeConfig{{ID: 1, Range: 2.5}},
		Seed:      31,
		NetworkID: 7,
	}, WithTelemetry(sink))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Exchange([]byte{0x01}, map[int][]bool{0: {true}}); err != nil {
		t.Fatal(err)
	}
	events := sink.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	wantID := telemetry.NewExchangeID(31, 7, 0).String()
	for _, e := range events {
		if e.Exchange != wantID {
			t.Fatalf("event %q exchange = %q, want %q", e.Name, e.Exchange, wantID)
		}
		if e.Network != 7 {
			t.Fatalf("event %q network = %d, want 7", e.Name, e.Network)
		}
	}
}

func TestFlightRecorderCapturesExchanges(t *testing.T) {
	flight := telemetry.NewFlightRecorder(4)
	net, err := NewNetwork(Config{
		Nodes: []NodeConfig{{ID: 1, Range: 2.5}},
		Seed:  13,
	}, WithFlightRecorder(flight))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := net.Exchange([]byte{byte(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if flight.Recorded() != 6 {
		t.Fatalf("flight recorded %d exchanges, want 6", flight.Recorded())
	}
	snap := flight.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("flight ring holds %d, want 4", len(snap))
	}
	if snap[len(snap)-1].Seq != 5 {
		t.Fatalf("newest resident trace seq = %d, want 5", snap[len(snap)-1].Seq)
	}
}

func TestFleetPropagatesTracing(t *testing.T) {
	tracer := telemetry.NewTracer()
	fleet := NewFleet(FleetConfig{Engines: 2, Tracer: tracer})
	defer fleet.Close()
	var handles []*FleetNetwork
	for i := 0; i < 2; i++ {
		fn, err := fleet.AddNetwork(Config{
			Nodes: []NodeConfig{{ID: uint8(i + 1), Range: 2.5}},
			Seed:  50,
		})
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, fn)
	}
	for _, fn := range handles {
		if _, err := fn.Exchange([]byte{0x7}, nil); err != nil {
			t.Fatal(err)
		}
	}
	traces := tracer.Traces()
	if len(traces) != 2 {
		t.Fatalf("collected %d traces, want 2", len(traces))
	}
	nets := map[int]bool{}
	ids := map[string]bool{}
	for _, tr := range traces {
		nets[tr.Network] = true
		ids[tr.ID] = true
	}
	if !nets[0] || !nets[1] {
		t.Fatalf("trace networks = %v, want {0,1}", nets)
	}
	if len(ids) != 2 {
		t.Fatal("same-seed fleet networks share an exchange ID; NetworkID not mixed in")
	}
}
