package core

import (
	"testing"

	"biscatter/internal/netio"
)

func serviceRecorder(t *testing.T) *ExchangeRecorder {
	t.Helper()
	n, err := NewNetwork(Config{
		Nodes: []NodeConfig{
			{ID: 1, Range: 2.0, ModulationF0: 1000, ModulationF1: 1600},
			{ID: 2, Range: 3.5, ModulationF0: 2200, ModulationF1: 2800},
		},
		Seed:         99,
		ChirpsPerBit: 16,
	}, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewExchangeRecorder(n)
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func servicePayload(round uint64) []byte { return RandomPayload(int64(round), 2) }

// TestGatewayHandlerDigestsOutcomes pins that the handler's wire outcomes
// are the same digest the replay layer captures: for a full-fleet round,
// each tag's Outcome equals the recorded NodeOutcome field for field.
func TestGatewayHandlerDigestsOutcomes(t *testing.T) {
	rec := serviceRecorder(t)
	fn, err := NewGatewayHandler(rec, servicePayload)
	if err != nil {
		t.Fatal(err)
	}
	out, err := fn(0, map[uint8][]bool{
		1: {true, false, true},
		2: {false, true, false},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(out))
	}
	record := rec.Record()
	if len(record.Rounds) != 1 {
		t.Fatalf("recorded %d rounds, want 1", len(record.Rounds))
	}
	if record.Rounds[0].Input.Active != nil {
		t.Fatalf("full-fleet round recorded active set %v, want nil", record.Rounds[0].Input.Active)
	}
	for idx, tag := range []uint8{1, 2} {
		ro := record.Rounds[0].Outcomes[idx]
		want := netio.Outcome{
			DownlinkPayload: ro.DownlinkPayload,
			DownlinkErr:     ro.DownlinkErr,
			DetectionRange:  ro.DetectionRange,
			DetectionBin:    int32(ro.DetectionBin),
			DetectionSNRdB:  ro.DetectionSNRdB,
			DetectionErr:    ro.DetectionErr,
			UplinkBits:      ro.UplinkBits,
			UplinkErr:       ro.UplinkErr,
		}
		if !out[tag].Equal(want) {
			t.Fatalf("tag %d outcome diverged from record:\n got %+v\nwant %+v", tag, out[tag], want)
		}
	}
}

// TestGatewayHandlerSubsetRestrictsRound pins that a partial submission runs
// the round with WithActiveNodes over exactly the submitting subset, and
// only submitters get outcomes.
func TestGatewayHandlerSubsetRestrictsRound(t *testing.T) {
	rec := serviceRecorder(t)
	fn, err := NewGatewayHandler(rec, servicePayload)
	if err != nil {
		t.Fatal(err)
	}
	out, err := fn(0, map[uint8][]bool{2: {true, false}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("got outcomes for %d tags, want 1", len(out))
	}
	if _, ok := out[2]; !ok {
		t.Fatal("submitting tag 2 got no outcome")
	}
	active := rec.Record().Rounds[0].Input.Active
	if len(active) != 1 || active[0] != 1 {
		t.Fatalf("recorded active set %v, want [1]", active)
	}
}

// TestGatewayHandlerUnknownTag pins that a tag with no node mapping gets an
// error outcome without poisoning the round for mapped tags.
func TestGatewayHandlerUnknownTag(t *testing.T) {
	rec := serviceRecorder(t)
	fn, err := NewGatewayHandler(rec, servicePayload)
	if err != nil {
		t.Fatal(err)
	}
	out, err := fn(0, map[uint8][]bool{
		1:  {true, true},
		77: {false, false},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out[77].Err == "" {
		t.Fatal("unknown tag should carry an error outcome")
	}
	if out[1].Err != "" {
		t.Fatalf("mapped tag poisoned by unknown peer: %q", out[1].Err)
	}
	// Only the mapped tag ran.
	active := rec.Record().Rounds[0].Input.Active
	if len(active) != 1 || active[0] != 0 {
		t.Fatalf("recorded active set %v, want [0]", active)
	}
}

// TestGatewayHandlerRejectsBadSetup pins constructor validation.
func TestGatewayHandlerRejectsBadSetup(t *testing.T) {
	if _, err := NewGatewayHandler(nil, servicePayload); err == nil {
		t.Fatal("nil recorder accepted")
	}
	rec := serviceRecorder(t)
	if _, err := NewGatewayHandler(rec, nil); err == nil {
		t.Fatal("nil payload source accepted")
	}
}
