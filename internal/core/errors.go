package core

import "errors"

// Sentinel errors of the network facade. Failures that used to surface as
// ad-hoc fmt.Errorf strings now wrap one of these, so callers can branch
// with errors.Is instead of string matching.
var (
	// ErrNoNodes means the configuration places no backscatter nodes; a
	// network needs at least one.
	ErrNoNodes = errors.New("core: at least one node is required")

	// ErrToneBandExceeded means a node's uplink modulation tones fall at or
	// above the slow-time Nyquist band (half the chirp rate), so the radar
	// could not separate them. Use fewer nodes, a larger ChirpsPerBit, or
	// explicit ModulationF0/F1 assignments.
	ErrToneBandExceeded = errors.New("core: uplink tones exceed the slow-time band")
)
