package core

import "errors"

// Sentinel errors of the network facade. Failures that used to surface as
// ad-hoc fmt.Errorf strings now wrap one of these, so callers can branch
// with errors.Is instead of string matching.
var (
	// ErrNoNodes means the configuration places no backscatter nodes; a
	// network needs at least one.
	ErrNoNodes = errors.New("core: at least one node is required")

	// ErrToneBandExceeded means a node's uplink modulation tones fall at or
	// above the slow-time Nyquist band (half the chirp rate), so the radar
	// could not separate them. Use fewer nodes, a larger ChirpsPerBit,
	// explicit ModulationF0/F1 assignments, or a mac.FrameSchedule
	// (WithSchedule) that time-division-multiplexes tags across frames.
	ErrToneBandExceeded = errors.New("core: uplink tones exceed the slow-time band")

	// ErrNodeInactive is carried in a NodeResult for nodes scheduled out of
	// the current exchange round (WithActiveNodes, or a frame-schedule group
	// the node is not part of): the node's switch held a static state, so
	// there is nothing to decode, detect or demodulate.
	ErrNodeInactive = errors.New("core: node inactive this round")

	// ErrFleetClosed is returned by Fleet methods after Close: the engines
	// have drained their queues and exited, so no further work is accepted.
	ErrFleetClosed = errors.New("core: fleet is closed")
)
