// Package core assembles the full BiScatter system: a radar access point
// that encodes downlink packets into CSSK frames while sensing, one or more
// backscatter nodes that decode the downlink and modulate the uplink, and
// the channel that binds them. It is the integration layer the public
// biscatter package re-exports and the experiment harness drives.
package core

import (
	"fmt"

	"biscatter/internal/channel"
	"biscatter/internal/cssk"
	"biscatter/internal/delayline"
	"biscatter/internal/fault"
	"biscatter/internal/fec"
	"biscatter/internal/fmcw"
	"biscatter/internal/mac"
	"biscatter/internal/packet"
	"biscatter/internal/parallel"
	"biscatter/internal/radar"
	"biscatter/internal/tag"
	"biscatter/internal/telemetry"
)

// LinkFromPreset derives a link budget from a radar preset, keeping the
// calibrated default losses.
func LinkFromPreset(p fmcw.Preset) channel.Link {
	l := channel.DefaultLink()
	l.TxPowerDBm = p.TxPowerDBm
	l.RadarGainDBi = p.AntennaGainDBi
	l.Frequency = p.Chirp.CenterFrequency()
	l.RadarNoiseFigureDB = p.NoiseFigureDB
	l.IFBandwidth = p.Chirp.SampleRate
	return l
}

// NodeConfig places one backscatter node in the network.
type NodeConfig struct {
	// ID is the node identifier carried in downlink addressing.
	ID uint8
	// Range is the node's distance from the radar in meters.
	Range float64
	// ModulationF0 is the node's uplink tone for 0-bits (and its
	// localization signature); each node needs a unique value. Zero
	// auto-assigns.
	ModulationF0 float64
	// ModulationF1 is the uplink tone for 1-bits (FSK). Zero auto-assigns.
	ModulationF1 float64
}

// Config assembles a Network.
type Config struct {
	// Preset selects the radar platform; defaults to the 9 GHz prototype.
	Preset fmcw.Preset
	// Period is the chirp period; defaults to the preset's.
	Period float64
	// SymbolBits is the CSSK symbol size; default 5 (the paper's headline
	// operating point). Fewer bits use fewer slopes over the same duration
	// range, widening the alphabet spacing — the first lever the link
	// controller pulls when degrading.
	SymbolBits int
	// HeaderChirps is the downlink preamble header length in chirps;
	// default 8. Longer headers make period estimation survive jammed
	// chirps at the cost of airtime.
	HeaderChirps int
	// SyncChirps is the downlink sync field length in chirps; default 2.
	SyncChirps int
	// FEC selects the downlink forward-error-correction layer. The zero
	// value disables coding and keeps the on-air frames byte-identical to a
	// pre-FEC build.
	FEC fec.Config
	// MinChirpDuration defaults to 20 µs, the commercial-radar floor.
	MinChirpDuration float64
	// DeltaL is the tag delay-line length difference in meters; defaults to
	// the paper's 45-inch coax pair.
	DeltaL float64
	// MinBeatSpacing is the tag's Δf_int; default 500 Hz.
	MinBeatSpacing float64
	// ChirpsPerBit is the uplink bit length in chirps; default 32.
	ChirpsPerBit int
	// Nodes places the backscatter nodes; at least one is required.
	Nodes []NodeConfig
	// Schedule time-division-multiplexes the nodes across frames when the
	// deployment exceeds the slow-time tone capacity: auto-assigned FSK
	// pairs are allocated per schedule slot (tags in different frame groups
	// reuse tones), and ExchangeScheduled serves every group over one
	// schedule cycle. Nil — the default — keeps every node concurrent in
	// every frame, which requires the deployment to fit the tone grid.
	Schedule *mac.FrameSchedule
	// Clutter is the static environment; defaults to the office scene.
	Clutter []channel.Reflector
	// Faults is the impairment profile applied to the whole network —
	// interference, chirp dropouts, moving clutter, per-tag front-end
	// degradations. Nil (or a profile with every impairment disabled)
	// leaves all results byte-identical to a fault-free network.
	Faults *fault.Profile
	// Seed seeds all stochastic components.
	Seed int64
	// TagSampleRate is the tag ADC rate; default 1 MHz.
	TagSampleRate float64
	// DecoderMethod selects the tag's spectral estimator.
	DecoderMethod tag.Method
	// Workers sizes the worker pool the exchange engine fans per-chirp,
	// per-node and per-bin work across; non-positive selects GOMAXPROCS.
	// Results are byte-identical for any worker count.
	Workers int
	// Metrics receives the network's pipeline telemetry (per-stage latency
	// histograms, per-node outcome counters, BER tallies, detection gauges,
	// worker-pool statistics). Nil disables collection at near-zero cost.
	// A registry may be shared across networks (eval sweeps aggregate this
	// way). Telemetry never influences exchange results.
	Metrics *telemetry.Metrics
	// Recorder receives structured pipeline events (exchange begin/end,
	// per-node decode / detection / demod outcomes); nil disables them.
	Recorder telemetry.Recorder
	// Tracer collects one causal span tree per exchange — the full pipeline
	// breakdown (frame build, per-node downlink decodes, radar observe and
	// IF correction, detection, per-node uplink demods) under a
	// deterministic exchange identity. Nil disables tracing entirely: the
	// hot path then never wraps the context or builds spans, so the
	// zero-allocation exchange contract holds. A tracer may be shared
	// across networks (a Fleet shares one).
	Tracer *telemetry.Tracer
	// Flight keeps the last N exchange traces in a bounded ring and dumps
	// them when tripped — on exchange errors and when a link controller's
	// circuit breaker opens. Nil disables it.
	Flight *telemetry.FlightRecorder
	// NetworkID identifies this network in exchange IDs, traces and
	// events. A Fleet assigns its dense network id; standalone networks
	// default to 0.
	NetworkID int
}

func (c Config) withDefaults() Config {
	if c.Preset.Name == "" {
		c.Preset = fmcw.Radar9GHz()
	}
	if c.Period == 0 {
		c.Period = c.Preset.DefaultPeriod
	}
	if c.SymbolBits == 0 {
		c.SymbolBits = 5
	}
	if c.HeaderChirps == 0 {
		c.HeaderChirps = 8
	}
	if c.SyncChirps == 0 {
		c.SyncChirps = 2
	}
	if c.MinChirpDuration == 0 {
		c.MinChirpDuration = 20e-6
	}
	if c.DeltaL == 0 {
		c.DeltaL = 45 * delayline.MetersPerInch
	}
	if c.MinBeatSpacing == 0 {
		c.MinBeatSpacing = 500
	}
	if c.ChirpsPerBit == 0 {
		c.ChirpsPerBit = 32
	}
	if c.Clutter == nil {
		c.Clutter = channel.OfficeClutter()
	}
	if c.TagSampleRate == 0 {
		c.TagSampleRate = 1e6
	}
	return c
}

// Node is a deployed backscatter node.
type Node struct {
	// Tag is the node's hardware model.
	Tag *tag.Tag
	// Range is the distance from the radar.
	Range float64
	// Uplink is the node's slow-time modulation plan as known to the radar.
	Uplink radar.UplinkFSKConfig
}

// Network is a BiScatter deployment: one radar access point and its nodes.
//
// # Concurrency contract
//
// A Network is a single-threaded exchange engine: it reuses internal
// scratch buffers across calls (its radar reuses frame-shaped buffers and
// each tag's decoder reuses capture-shaped buffers), so no two methods may
// run concurrently on the same Network, and slice-typed outputs are valid
// only until the next call on the same Network — callers that keep results
// across exchanges must copy them. Separate Networks share nothing mutable
// and may run fully in parallel; a Fleet packages that pattern as a server
// (many networks scheduled across a pool of serially-driven engines).
type Network struct {
	cfg      Config
	link     channel.Link
	alphabet *cssk.Alphabet
	pkt      packet.Config
	builder  *fmcw.FrameBuilder
	radar    *radar.Radar
	nodes    []*Node
	pair     delayline.Pair
	pool     *parallel.Pool
	tel      coreTel
	rec      telemetry.Recorder
	tracer   *telemetry.Tracer
	flight   *telemetry.FlightRecorder
	radarInj *fault.RadarInjector
	scr      exchangeScratch

	// seq numbers this network's exchanges from 0; together with the seed
	// and NetworkID it derives each round's deterministic ExchangeID. It
	// always advances (one integer add), so identities stay aligned whether
	// or not tracing is on.
	seq uint64
	// exchID is the current round's ExchangeID in hex, "" outside a round
	// or when no sink wants it; event() stamps it onto every event.
	exchID string
}

// exchangeScratch is the per-exchange buffer set the pipeline reuses: the
// scene's tag echoes and switch states, the magnitude matrix and background
// row, the joint detector's tone/combined profiles, bin ownership, median
// sort scratch, and the per-node detection outputs.
type exchangeScratch struct {
	tags   []radar.TagEcho
	states [][]bool
	mag    [][]float64
	bg     []float64
	tones  [][]float64
	profs  [][]float64
	owner  []int
	med    []float64
	// toneFreqs/toneIdx/sigRows back the batched signature scan: the active
	// tone frequencies, their slots in tones, and the radar's profile rows.
	toneFreqs []float64
	toneIdx   []int
	sigRows   [][]float64
	dets      []radar.Detection
	diags     []radar.DetectionDiag
	errs      []error
	// active[i] reports whether node i modulates in the current round;
	// inactive nodes hold a static switch state and are skipped by the
	// decode/detect stages. Set by setActive before every round.
	active []bool
	// group and roundBits are the scheduled-exchange loop's reusable
	// per-round group list and uplink-bit subset.
	group     []int
	roundBits map[int][]bool
}

// growRows extends a row set to at least n entries (appending nil rows)
// without shrinking, so row backing buffers survive across exchanges.
func growRows[T any](rows [][]T, n int) [][]T {
	for len(rows) < n {
		rows = append(rows, nil)
	}
	return rows
}

// NewNetwork builds a network from the configuration, then applies the
// functional options in order (so an option overrides the Config field it
// names). At least one node is required; everything else has calibrated
// defaults.
func NewNetwork(cfg Config, opts ...Option) (*Network, error) {
	for _, opt := range opts {
		opt(&cfg)
	}
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, ErrNoNodes
	}
	if s := cfg.Schedule; s != nil && s.NTags() != len(cfg.Nodes) {
		return nil, fmt.Errorf("core: schedule covers %d tags but the network has %d nodes", s.NTags(), len(cfg.Nodes))
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, err
	}
	link := LinkFromPreset(cfg.Preset)

	pair, err := delayline.NewCoaxPair(cfg.DeltaL, 0.7)
	if err != nil {
		return nil, err
	}
	fc := cfg.Preset.Chirp.CenterFrequency()
	cal := delayline.FromPair(pair, fc)
	alphabet, err := cssk.NewAlphabet(cssk.Config{
		Bandwidth:        cfg.Preset.Chirp.Bandwidth,
		Period:           cfg.Period,
		MinChirpDuration: cfg.MinChirpDuration,
		DeltaT:           cal.EffectiveDeltaT,
		MinBeatSpacing:   cfg.MinBeatSpacing,
		SymbolBits:       cfg.SymbolBits,
	})
	if err != nil {
		return nil, err
	}
	pkt := packet.Config{Alphabet: alphabet, HeaderLen: cfg.HeaderChirps, SyncLen: cfg.SyncChirps, FEC: cfg.FEC}
	if err := pkt.Validate(); err != nil {
		return nil, err
	}
	builder, err := fmcw.NewFrameBuilder(cfg.Preset.Chirp, cfg.Period)
	if err != nil {
		return nil, err
	}
	rd, err := radar.New(radar.Config{
		Chirp:   cfg.Preset.Chirp,
		Link:    link,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
		Metrics: cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}

	n := &Network{
		cfg:      cfg,
		link:     link,
		alphabet: alphabet,
		pkt:      pkt,
		builder:  builder,
		radar:    rd,
		pair:     pair,
		pool:     parallel.New(cfg.Workers).Instrument(cfg.Metrics),
		tel:      newCoreTel(cfg.Metrics, len(cfg.Nodes)),
		rec:      cfg.Recorder,
		tracer:   cfg.Tracer,
		flight:   cfg.Flight,
		radarInj: fault.NewRadarInjector(cfg.Faults, cfg.Seed, cfg.Metrics),
	}
	chirpRate := 1 / cfg.Period
	for i, nc := range cfg.Nodes {
		if nc.Range <= 0 {
			return nil, fmt.Errorf("core: node %d range %v m must be positive", i, nc.Range)
		}
		f0, f1 := nc.ModulationF0, nc.ModulationF1
		// Auto-assigned tones sit on a grid whose step tracks the uplink
		// bit rate: a bit window of ChirpsPerBit chirps resolves slow-time
		// tones no finer than chirpRate/ChirpsPerBit, so both the FSK pair
		// spacing and the inter-node spacing must exceed that. Under a
		// frame schedule the grid index is the node's slot within its
		// frame group, so tags that never modulate in the same frame reuse
		// the same FSK pair and the deployment can exceed the grid.
		bitRate := chirpRate / float64(cfg.ChirpsPerBit)
		step := 2 * bitRate
		if min := 0.02 * chirpRate; step < min {
			step = min
		}
		base := 0.15 * chirpRate
		slot := i
		if cfg.Schedule != nil {
			slot = cfg.Schedule.SlotOf(i)
		}
		if f0 == 0 {
			f0 = base + float64(2*slot)*step
		}
		if f1 == 0 {
			f1 = f0 + step
		}
		if f1 >= chirpRate/2 {
			return nil, fmt.Errorf("%w: node %d (f1=%.0f Hz ≥ %.0f Hz)", ErrToneBandExceeded, i, f1, chirpRate/2)
		}
		mod, err := tag.NewModulator(tag.SchemeFSK, f0, f1, cfg.Period, cfg.ChirpsPerBit)
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", i, err)
		}
		tg, err := tag.New(tag.Config{
			Pair:            pair,
			Alphabet:        alphabet,
			SampleRate:      cfg.TagSampleRate,
			CenterFrequency: fc,
			Modulator:       mod,
			Seed:            cfg.Seed + int64(i) + 1,
			ID:              nc.ID,
			Method:          cfg.DecoderMethod,
		})
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", i, err)
		}
		// Per-node impairment injector. The jammer-to-signal ratio at this
		// tag's detector input scales the injected tone against the node's
		// own downlink signal, so nearer nodes see proportionally weaker
		// relative interference.
		jsr := 0.0
		if f := cfg.Faults; f != nil && f.Interference != nil {
			jsr = link.DownlinkJSRdB(nc.Range, f.Interference.TagPowerDBm)
		}
		tg.FrontEnd.Faults = fault.NewTagInjector(cfg.Faults, i, cfg.Seed, jsr, cfg.Metrics)
		n.nodes = append(n.nodes, &Node{
			Tag:   tg,
			Range: nc.Range,
			Uplink: radar.UplinkFSKConfig{
				F0: f0, F1: f1,
				ChirpsPerBit: cfg.ChirpsPerBit,
				Period:       cfg.Period,
			},
		})
	}
	return n, nil
}

// Alphabet returns the network's CSSK constellation.
func (n *Network) Alphabet() *cssk.Alphabet { return n.alphabet }

// Packet returns the downlink framing configuration.
func (n *Network) Packet() packet.Config { return n.pkt }

// Link returns the network's link budget.
func (n *Network) Link() channel.Link { return n.link }

// Radar returns the access point's receive processor.
func (n *Network) Radar() *radar.Radar { return n.radar }

// Builder returns the frame builder.
func (n *Network) Builder() *fmcw.FrameBuilder { return n.builder }

// Nodes returns the deployed nodes.
func (n *Network) Nodes() []*Node { return n.nodes }

// Pair returns the tag delay-line pair.
func (n *Network) Pair() delayline.Pair { return n.pair }

// Config returns the network configuration with defaults applied.
func (n *Network) Config() Config { return n.cfg }

// Schedule returns the network's multi-tag frame schedule (nil when every
// node is concurrent in every frame).
func (n *Network) Schedule() *mac.FrameSchedule { return n.cfg.Schedule }

// DownlinkDataRate returns the CSSK downlink data rate in bit/s (Eq. 14).
func (n *Network) DownlinkDataRate() float64 {
	return n.alphabet.Config().DataRate()
}
