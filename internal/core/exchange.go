package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"biscatter/internal/channel"
	"biscatter/internal/cssk"
	"biscatter/internal/dsp"
	"biscatter/internal/fmcw"
	"biscatter/internal/radar"
	"biscatter/internal/tag"
	"biscatter/internal/telemetry"
)

// NodeResult is the outcome of one exchange for one node.
type NodeResult struct {
	// DownlinkPayload is what the node decoded from the radar's packet
	// (nil when DownlinkErr is set).
	DownlinkPayload []byte
	// DownlinkErr reports a downlink decoding failure.
	DownlinkErr error
	// DownlinkDiag carries the tag decoder's pipeline diagnostics.
	DownlinkDiag tag.Diagnostics
	// Detection is the radar's localization of this node.
	Detection radar.Detection
	// DetectionErr reports a failed tag search.
	DetectionErr error
	// UplinkBits is what the radar decoded from this node's backscatter.
	UplinkBits []bool
	// UplinkErr reports an uplink demodulation failure.
	UplinkErr error
	// UplinkDiag carries the radar-side detection quality for this node —
	// the uplink mirror of DownlinkDiag. It is populated whether or not the
	// detection succeeded (on failure it describes the best candidate bin),
	// so experiments can see how far below threshold a miss was.
	UplinkDiag radar.DetectionDiag
}

// ExchangeResult is the outcome of one full ISAC round.
type ExchangeResult struct {
	// Frame is the transmitted CSSK frame.
	Frame *fmcw.Frame
	// Nodes holds one result per network node, in network order.
	Nodes []NodeResult
}

// BuildDownlinkFrame encodes a payload into a CSSK frame, padding with
// header-slope chirps so the frame spans at least minChirps (uplink bit
// windows may need more chirps than the packet itself).
func (n *Network) BuildDownlinkFrame(payload []byte, minChirps int) (*fmcw.Frame, error) {
	syms, err := n.pkt.Encode(payload)
	if err != nil {
		return nil, err
	}
	durs := make([]float64, 0, len(syms))
	for _, s := range syms {
		durs = append(durs, s.Duration)
	}
	for len(durs) < minChirps {
		durs = append(durs, n.alphabet.Header().Duration)
	}
	return n.builder.Build(durs)
}

// BuildSensingFrame builds a fixed-slope frame (sensing-only mode).
func (n *Network) BuildSensingFrame(chirps int) (*fmcw.Frame, error) {
	return n.builder.BuildUniform(chirps, n.cfg.Preset.Chirp.Duration)
}

// setActive fills the round's active-node scratch: nil selects every node,
// otherwise only the listed indices modulate (out-of-range entries are
// ignored). Returns the filled slice.
func (n *Network) setActive(list []int) []bool {
	act := dsp.Resize(n.scr.active, len(n.nodes))
	n.scr.active = act
	if list == nil {
		for i := range act {
			act[i] = true
		}
		return act
	}
	clear(act)
	for _, i := range list {
		if i >= 0 && i < len(act) {
			act[i] = true
		}
	}
	return act
}

// buildScene assembles the radar scene for a frame: the configured clutter
// plus every node's per-chirp switch states. uplinkBits maps node index →
// bits; active nodes without an entry modulate their localization beacon,
// while inactive nodes (scr.active[i] false) hold a static switch state —
// they stay physically present as constant echoes that background
// subtraction removes, exactly like clutter.
func (n *Network) buildScene(frame *fmcw.Frame, uplinkBits map[int][]bool) (radar.Scene, error) {
	scene := radar.Scene{Clutter: n.cfg.Clutter, Faults: n.radarInj}
	if f := n.cfg.Faults; f != nil && len(f.Clutter) > 0 {
		// Fault-profile clutter (typically moving reflectors) rides on top of
		// the static environment; copy so the config slices stay untouched.
		merged := make([]channel.Reflector, 0, len(n.cfg.Clutter)+len(f.Clutter))
		merged = append(merged, n.cfg.Clutter...)
		merged = append(merged, f.Clutter...)
		scene.Clutter = merged
	}
	n.scr.states = growRows(n.scr.states, len(n.nodes))
	tags := n.scr.tags[:0]
	for i, node := range n.nodes {
		var states []bool
		if len(n.scr.active) == len(n.nodes) && !n.scr.active[i] {
			states = dsp.Resize(n.scr.states[i], len(frame.Chirps))
			clear(states)
		} else {
			var serr error
			states, serr = node.Tag.UplinkStatesInto(n.scr.states[i], uplinkBits[i], n.cfg.Period, len(frame.Chirps))
			if serr != nil {
				return radar.Scene{}, fmt.Errorf("core: node %d uplink states: %w", i, serr)
			}
		}
		n.scr.states[i] = states
		tags = append(tags, radar.TagEcho{
			Range:    node.Range,
			States:   states,
			PowerDBm: n.link.UplinkRxPowerDBm(node.Range),
		})
	}
	n.scr.tags = tags
	scene.Tags = tags
	return scene, nil
}

// Exchange runs one integrated round: the radar transmits the downlink
// packet as a CSSK frame; every node receives it through its own link SNR
// and decodes it; every node simultaneously modulates its uplink bits onto
// the retro-reflection; the radar observes the composite scene, localizes
// each node by its modulation signature and demodulates its bits.
//
// uplinkBits maps node index → bits; nodes without an entry modulate a
// constant-zero pattern (pure localization beacon).
func (n *Network) Exchange(payload []byte, uplinkBits map[int][]bool, opts ...ExchangeOption) (*ExchangeResult, error) {
	return n.ExchangeContext(context.Background(), payload, uplinkBits, opts...)
}

// ExchangeContext is Exchange with cooperative cancellation: ctx is
// checked between every pipeline stage and inside each stage's parallel
// fan-out, so a cancelled exchange returns ctx.Err() promptly instead of
// finishing the round. The parallel stages — per-node downlink decoding,
// per-chirp scene synthesis and IF correction, per-bin signature scans and
// per-node uplink demodulation — all write results by index, and every
// node owns its seeded RNG, so the result is byte-identical for any worker
// count (see Config.Workers / WithWorkers).
func (n *Network) ExchangeContext(ctx context.Context, payload []byte, uplinkBits map[int][]bool, opts ...ExchangeOption) (res *ExchangeResult, err error) {
	// The sequence counter always advances so exchange identities stay
	// aligned whether or not any identity consumer is attached; the ID
	// itself (and the context wrap) is built only when one is, keeping the
	// disabled path allocation-free.
	seq := n.seq
	n.seq++
	var root *telemetry.SpanNode
	var tr *telemetry.Trace
	if n.tracer != nil || n.flight != nil || n.rec != nil {
		id := telemetry.NewExchangeID(n.cfg.Seed, n.cfg.NetworkID, seq)
		if n.rec != nil {
			n.exchID = id.String()
		}
		if n.tracer != nil || n.flight != nil {
			tr = telemetry.BeginTrace(id, n.cfg.NetworkID, seq, "exchange")
			root = tr.Root
			ctx = telemetry.ContextWithSpan(telemetry.ContextWithExchangeID(ctx, id), root)
		}
	}
	xsp := n.tel.exchange.Span()
	defer func() {
		xsp.End()
		outcome(err, n.tel.exchOK, n.tel.exchErr)
		if n.rec != nil {
			n.event("exchange.end", -1, map[string]any{"ok": err == nil})
			n.exchID = ""
		}
		if tr != nil {
			root.Fail(err)
			root.SetAttr("nodes", len(n.nodes))
			root.End()
			n.tracer.Collect(tr)
			n.flight.Add(tr)
			if err != nil {
				n.flight.Trip("exchange error: " + err.Error())
			}
		}
	}()
	if n.rec != nil {
		n.event("exchange.begin", -1, map[string]any{
			"payload_bytes": len(payload), "nodes": len(n.nodes),
		})
	}
	var eo exchangeOptions
	for _, opt := range opts {
		opt(&eo)
	}
	active := n.setActive(eo.active)
	// Size the frame for the packet, the longest active uplink message, and
	// any explicitly requested padding; bits for inactive nodes are ignored
	// (their switches hold a static state this round).
	minChirps := eo.minChirps
	for i, bits := range uplinkBits {
		if i < 0 || i >= len(active) || !active[i] {
			continue
		}
		if c := len(bits) * n.cfg.ChirpsPerBit; c > minChirps {
			minChirps = c
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fsp := n.tel.frameBuild.Span()
	fspan := root.Child("frame.build", -1)
	frame, err := n.BuildDownlinkFrame(payload, minChirps)
	fspan.End()
	fsp.End()
	if err != nil {
		return nil, err
	}
	res = &ExchangeResult{Frame: frame, Nodes: make([]NodeResult, len(n.nodes))}

	// Downlink: each node captures the frame at its own SNR. The decodes
	// are independent (each tag owns its front-end noise source), so they
	// fan out across the pool. The telemetry handles are atomic, so the
	// counter totals are deterministic for any worker count.
	dlStage := root.Child("downlink", -1)
	if err := n.pool.ForContext(ctx, len(n.nodes), func(i int) error {
		if !active[i] {
			// A scheduled-out tag sleeps through the frame (the §4.1 power
			// story): no decode, no telemetry, no events.
			res.Nodes[i].DownlinkErr = ErrNodeInactive
			return nil
		}
		node := n.nodes[i]
		snr := n.link.DownlinkSNRdB(node.Range)
		dlsp := n.tel.downlink.Span()
		nspan := dlStage.Child("node.downlink", i)
		dctx := ctx
		if nspan != nil {
			dctx = telemetry.ContextWithSpan(ctx, nspan)
		}
		pl, diag, derr := node.Tag.ReceiveDownlinkContext(dctx, frame, snr, n.pkt)
		nspan.Fail(derr)
		nspan.End()
		dlsp.End()
		res.Nodes[i].DownlinkPayload = pl
		res.Nodes[i].DownlinkErr = derr
		res.Nodes[i].DownlinkDiag = diag
		nt := n.tel.node(i)
		outcome(derr, n.tel.dlOK, n.tel.dlErr)
		outcome(derr, nt.dlOK, nt.dlErr)
		if n.tel.enabled() {
			e, t := CountBitErrors(payload, pl)
			n.tel.dlBitErrs.Add(int64(e))
			n.tel.dlBits.Add(int64(t))
		}
		if n.rec != nil {
			n.event("node.downlink", i, map[string]any{"ok": derr == nil, "snr_db": snr})
		}
		return nil
	}); err != nil {
		dlStage.End()
		return nil, err
	}
	dlStage.End()

	// Uplink: build the radar scene with every node's switch states.
	sspan := root.Child("scene.build", -1)
	scene, err := n.buildScene(frame, uplinkBits)
	sspan.End()
	if err != nil {
		return nil, err
	}
	capt, err := n.radar.ObserveContext(ctx, frame, scene)
	if err != nil {
		return nil, err
	}
	cm, grid, err := n.radar.CorrectedMatrixContext(ctx, capt)
	if err != nil {
		return nil, err
	}
	n.scr.mag = radar.MagnitudeMatrixInto(n.scr.mag, cm)
	matrix, bg := radar.SubtractBackgroundMagInto(n.scr.mag, n.scr.bg)
	n.scr.bg = bg
	if n.tel.enabled() {
		// Introspection only: the exchange decode path never consumes the
		// range-Doppler map, so this runs solely to light up the Doppler
		// stage span and peak gauges. Decode results are identical either
		// way.
		n.observeDoppler(cm)
	}

	dtsp := n.tel.detect.Span()
	dspan := root.Child("detect", -1)
	dets, diags, derrs, err := n.detectNodes(ctx, matrix, grid)
	dspan.End()
	dtsp.End()
	if err != nil {
		return nil, err
	}
	if n.tel.enabled() {
		// Gauges are last-write-wins; set them in node order here rather
		// than inside the parallel loop so the surviving value is
		// deterministic at any worker count.
		for j := range dets {
			if derrs[j] == nil {
				n.tel.detSNR.Set(dets[j].SNRdB)
				n.tel.detPSL.Set(diags[j].PeakToSidelobeDB)
			}
		}
	}
	// Demodulate every detected node's uplink; the matrix is read-only
	// here and each node writes its own result slot.
	upStage := root.Child("uplink", -1)
	defer upStage.End()
	if err := n.pool.ForContext(ctx, len(n.nodes), func(i int) error {
		node := n.nodes[i]
		res.Nodes[i].Detection = dets[i]
		res.Nodes[i].DetectionErr = derrs[i]
		res.Nodes[i].UplinkDiag = diags[i]
		if !active[i] {
			return nil
		}
		nt := n.tel.node(i)
		outcome(derrs[i], n.tel.detOK, n.tel.detErr)
		outcome(derrs[i], nt.detOK, nt.detErr)
		if n.rec != nil {
			n.event("node.detect", i, map[string]any{
				"ok": derrs[i] == nil, "bin": diags[i].PeakBin, "psl_db": diags[i].PeakToSidelobeDB,
			})
		}
		if derrs[i] != nil {
			if bits, ok := uplinkBits[i]; ok && len(bits) > 0 && n.tel.enabled() {
				// A missed detection loses the whole uplink message:
				// score every pending bit as an error.
				n.tel.upBitErrs.Add(int64(len(bits)))
				n.tel.upBits.Add(int64(len(bits)))
			}
			return nil
		}
		if bits, ok := uplinkBits[i]; ok && len(bits) > 0 {
			usp := n.tel.demod.Span()
			uspan := upStage.Child("node.uplink", i)
			got, uerr := n.radar.DecodeUplinkFSK(matrix, dets[i].Bin, node.Uplink)
			uspan.Fail(uerr)
			uspan.SetAttr("bits", len(bits))
			uspan.End()
			usp.End()
			if uerr == nil && len(got) > len(bits) {
				got = got[:len(bits)]
			}
			res.Nodes[i].UplinkBits = got
			res.Nodes[i].UplinkErr = uerr
			outcome(uerr, n.tel.upOK, n.tel.upErr)
			outcome(uerr, nt.upOK, nt.upErr)
			if n.tel.enabled() {
				n.tel.upBitErrs.Add(int64(countBitMismatches(bits, got)))
				n.tel.upBits.Add(int64(len(bits)))
			}
			if n.rec != nil {
				n.event("node.uplink", i, map[string]any{"ok": uerr == nil, "bits": len(bits)})
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// countBitMismatches scores a decoded uplink bit vector against the sent
// ground truth: a mismatch, or a sent bit missing from got, is one error.
func countBitMismatches(sent, got []bool) int {
	errs := 0
	for i, b := range sent {
		if i >= len(got) || got[i] != b {
			errs++
		}
	}
	return errs
}

// detectNodes locates every node jointly. A single-node search per tone is
// not enough in multi-tag deployments: a strong nearby node's modulation
// harmonics and bit-pattern sidebands can out-power a weak distant node's
// fundamental at the strong node's own range bin (the backscatter near-far
// problem, §6). The joint rule assigns each range bin to the node whose
// combined F0+F1 signature is strongest there — at a node's true bin its own
// fundamentals always dominate another node's spectral splatter — and then
// each node peaks only over the bins it owns.
//
// Each tone scan is bin-parallel inside the radar, so the outer loop over
// tones runs serially: nesting a second fan-out around it would contend for
// the radar pool's worker-local scratch arenas without adding parallelism.
// A cancelled ctx aborts between scans and returns ctx.Err().
//
// The returned slices are network-owned scratch, valid until the next
// detectNodes call; callers that keep them across exchanges must copy. The
// diagnostics are populated for every active node — on a failed detection
// they describe the best candidate bin, so callers can see how far below
// threshold the miss was. Nodes outside the round's active set are not
// searched; their errs entry is ErrNodeInactive.
func (n *Network) detectNodes(ctx context.Context, matrix [][]float64, grid []float64) ([]radar.Detection, []radar.DetectionDiag, []error, error) {
	nn := len(n.nodes)
	dets := dsp.Resize(n.scr.dets, nn)
	diags := dsp.Resize(n.scr.diags, nn)
	errs := dsp.Resize(n.scr.errs, nn)
	clear(dets)
	clear(diags)
	clear(errs)
	n.scr.dets, n.scr.diags, n.scr.errs = dets, diags, errs
	if nn == 0 {
		return dets, diags, errs, nil
	}
	// Only the round's active nodes are searched: a scheduled-out node's
	// switch holds a static state, so its tones carry nothing — and under a
	// frame schedule it may share its FSK pair with an active node, whose
	// bins it must not contest.
	active := n.scr.active
	if len(active) != nn {
		active = n.setActive(nil)
	}
	nActive := 0
	for j := 0; j < nn; j++ {
		if active[j] {
			nActive++
		} else {
			errs[j] = ErrNodeInactive
		}
	}
	if nActive == 0 {
		return dets, diags, errs, nil
	}
	// tones[2j] and tones[2j+1] are node j's F0 and F1 profiles. All active
	// tones are scanned in one batched matrix traversal: the per-bin
	// slow-time column is gathered once and every tone's Goertzel runs over
	// it (bit-identical to one SignatureProfileInto per tone, which
	// re-traversed the whole matrix 2·nodes times). The batch is bin-
	// parallel inside the radar; cancellation is checked once up front.
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, err
	}
	n.scr.tones = growRows(n.scr.tones, 2*nn)
	tones := n.scr.tones[:2*nn]
	freqs := n.scr.toneFreqs[:0]
	idx := n.scr.toneIdx[:0]
	for k := 0; k < 2*nn; k++ {
		if !active[k/2] {
			continue
		}
		node := n.nodes[k/2]
		f := node.Uplink.F0
		if k%2 == 1 {
			f = node.Uplink.F1
		}
		freqs = append(freqs, f)
		idx = append(idx, k)
	}
	n.scr.toneFreqs, n.scr.toneIdx = freqs, idx
	n.scr.sigRows = n.radar.SignatureProfilesInto(n.scr.sigRows, matrix, freqs, n.cfg.Period)
	for j, k := range idx {
		tones[k] = n.scr.sigRows[j]
	}
	n.scr.profs = growRows(n.scr.profs, nn)
	profs := n.scr.profs[:nn]
	nBins := 0
	for j := range profs {
		if !active[j] {
			continue
		}
		p0, p1 := tones[2*j], tones[2*j+1]
		s := dsp.Resize(profs[j], len(p0))
		for b := range s {
			s[b] = p0[b] + p1[b]
		}
		profs[j] = s
		nBins = len(s)
	}
	owner := dsp.Resize(n.scr.owner, nBins)
	n.scr.owner = owner
	for b := 0; b < nBins; b++ {
		best := -1
		for j := 0; j < nn; j++ {
			if !active[j] {
				continue
			}
			if best < 0 || profs[j][b] > profs[best][b] {
				best = j
			}
		}
		owner[b] = best
	}
	binWidth := grid[1] - grid[0]
	for j := range n.nodes {
		if !active[j] {
			continue
		}
		prof := profs[j]
		med, ms := dsp.MedianWith(n.scr.med, prof)
		n.scr.med = ms
		bestBin, bestVal := -1, 0.0
		for b := 0; b < nBins; b++ {
			if owner[b] == j && prof[b] > bestVal {
				bestBin, bestVal = b, prof[b]
			}
		}
		candBin := bestBin
		if candBin < 0 {
			candBin, _ = dsp.MaxIndex(prof)
		}
		diags[j] = radar.SignatureDiagWithMedian(prof, candBin, med)
		if bestBin < 0 || med <= 0 || bestVal < radar.DetectionThreshold*med {
			errs[j] = radar.ErrTagNotFound
			continue
		}
		delta := 0.0
		if bestBin > 0 && bestBin < nBins-1 {
			var amps [3]float64
			amps[0] = math.Sqrt(prof[bestBin-1])
			amps[1] = math.Sqrt(prof[bestBin])
			amps[2] = math.Sqrt(prof[bestBin+1])
			d, _ := dsp.ParabolicPeak(amps[:], 1)
			delta = d
		}
		dets[j] = radar.Detection{
			Range: grid[bestBin] + delta*binWidth,
			Bin:   bestBin,
			SNRdB: 10 * math.Log10(bestVal/med),
		}
	}
	return dets, diags, errs, nil
}

// ScheduledResult is the outcome of one full frame-schedule cycle: every
// node served exactly once across the cycle's rounds.
type ScheduledResult struct {
	// Rounds holds one ExchangeResult per served frame group, in group
	// order. In each round only that group's nodes are active; the rest
	// carry ErrNodeInactive. Under WithActiveNodes, groups with no active
	// member are skipped and contribute no round.
	Rounds []*ExchangeResult
	// Nodes holds the merged per-node results: node i's entry comes from
	// the round in which its group was active.
	Nodes []NodeResult
}

// ExchangeScheduled runs one full schedule cycle; see
// ExchangeScheduledContext.
func (n *Network) ExchangeScheduled(payload []byte, uplinkBits map[int][]bool, opts ...ExchangeOption) (*ScheduledResult, error) {
	return n.ExchangeScheduledContext(context.Background(), payload, uplinkBits, opts...)
}

// ExchangeScheduledContext serves every node over one frame-schedule cycle:
// one exchange round per frame group, with only that group's tags
// modulating (the others hold static switch states, so shared FSK pairs
// never collide). The payload is retransmitted in every round — each tag
// decodes it during its own group's frame — and uplinkBits maps node index
// → bits exactly as in Exchange, split across rounds by group membership.
// WithActiveNodes restricts the cycle to a subset of nodes: each group is
// intersected with the set and empty groups are skipped (a distributed
// gateway serving a partially-attended round pays only for the frames that
// carry traffic). On a network without a schedule the cycle is a single
// all-active round.
//
// The merged Nodes view aliases the per-round results, which follow the
// Network ownership contract: valid until the next call on this Network.
func (n *Network) ExchangeScheduledContext(ctx context.Context, payload []byte, uplinkBits map[int][]bool, opts ...ExchangeOption) (*ScheduledResult, error) {
	sched := n.cfg.Schedule
	if sched == nil {
		res, err := n.ExchangeContext(ctx, payload, uplinkBits, opts...)
		if err != nil {
			return nil, err
		}
		return &ScheduledResult{Rounds: []*ExchangeResult{res}, Nodes: res.Nodes}, nil
	}
	out := &ScheduledResult{
		Rounds: make([]*ExchangeResult, 0, sched.Frames()),
		Nodes:  make([]NodeResult, len(n.nodes)),
	}
	// A caller-supplied active subset (WithActiveNodes) intersects each
	// frame group: only the named nodes modulate, and a group with no
	// active member sits the cycle out entirely — no frame is spent on it,
	// and no sequence number is consumed, so a partially-attended cycle
	// replays deterministically from its recorded active set.
	var eo exchangeOptions
	for _, opt := range opts {
		opt(&eo)
	}
	var activeSet map[int]bool
	if eo.active != nil {
		activeSet = make(map[int]bool, len(eo.active))
		for _, i := range eo.active {
			activeSet[i] = true
		}
	}
	if n.scr.roundBits == nil {
		n.scr.roundBits = make(map[int][]bool)
	}
	for g := 0; g < sched.Frames(); g++ {
		grp := sched.AppendGroup(n.scr.group[:0], g)
		n.scr.group = grp
		if activeSet != nil {
			k := 0
			for _, i := range grp {
				if activeSet[i] {
					grp[k] = i
					k++
				}
			}
			grp = grp[:k]
			if len(grp) == 0 {
				continue
			}
		}
		clear(n.scr.roundBits)
		for _, i := range grp {
			if bits, ok := uplinkBits[i]; ok {
				n.scr.roundBits[i] = bits
			}
		}
		ropts := make([]ExchangeOption, 0, len(opts)+1)
		ropts = append(ropts, opts...)
		ropts = append(ropts, WithActiveNodes(grp...))
		res, err := n.ExchangeContext(ctx, payload, n.scr.roundBits, ropts...)
		if err != nil {
			return nil, fmt.Errorf("core: schedule group %d: %w", g, err)
		}
		out.Rounds = append(out.Rounds, res)
		for _, i := range grp {
			out.Nodes[i] = res.Nodes[i]
		}
	}
	return out, nil
}

// Localize runs a sensing round (with the given frame, or a fixed-slope
// sensing frame when frame is nil) and returns per-node detections. Nodes
// modulate their localization beacons (constant zero bits → F0 tone). On a
// scheduled network the beacons run one frame group at a time (shared FSK
// pairs must not beacon simultaneously), reusing the frame across groups.
func (n *Network) Localize(frame *fmcw.Frame, chirps int) ([]radar.Detection, error) {
	return n.LocalizeContext(context.Background(), frame, chirps)
}

// LocalizeContext is Localize with cooperative cancellation between and
// inside the pipeline stages.
func (n *Network) LocalizeContext(ctx context.Context, frame *fmcw.Frame, chirps int) ([]radar.Detection, error) {
	var err error
	if frame == nil {
		frame, err = n.BuildSensingFrame(chirps)
		if err != nil {
			return nil, err
		}
	}
	sched := n.cfg.Schedule
	groups := 1
	if sched != nil {
		groups = sched.Frames()
	}
	out := make([]radar.Detection, len(n.nodes))
	for g := 0; g < groups; g++ {
		if sched == nil {
			n.setActive(nil)
		} else {
			grp := sched.AppendGroup(n.scr.group[:0], g)
			n.scr.group = grp
			n.setActive(grp)
		}
		scene, err := n.buildScene(frame, nil)
		if err != nil {
			return nil, err
		}
		capt, err := n.radar.ObserveContext(ctx, frame, scene)
		if err != nil {
			return nil, err
		}
		cm, grid, err := n.radar.CorrectedMatrixContext(ctx, capt)
		if err != nil {
			return nil, err
		}
		n.scr.mag = radar.MagnitudeMatrixInto(n.scr.mag, cm)
		matrix, bg := radar.SubtractBackgroundMagInto(n.scr.mag, n.scr.bg)
		n.scr.bg = bg
		dets, _, derrs, err := n.detectNodes(ctx, matrix, grid)
		if err != nil {
			return nil, err
		}
		for i, derr := range derrs {
			if errors.Is(derr, ErrNodeInactive) {
				continue
			}
			if derr != nil {
				return nil, fmt.Errorf("core: node %d: %w", i, derr)
			}
			out[i] = dets[i]
		}
	}
	return out, nil
}

// MapEnvironment runs a sensing frame and returns the radar's static-object
// map (CFAR detections over the averaged corrected range profile) — the
// primary sensing output that keeps running during communication.
func (n *Network) MapEnvironment(chirps int) ([]radar.MapTarget, error) {
	return n.MapEnvironmentContext(context.Background(), chirps)
}

// MapEnvironmentContext is MapEnvironment with cooperative cancellation
// between and inside the pipeline stages.
func (n *Network) MapEnvironmentContext(ctx context.Context, chirps int) ([]radar.MapTarget, error) {
	frame, err := n.BuildSensingFrame(chirps)
	if err != nil {
		return nil, err
	}
	n.setActive(nil)
	scene, err := n.buildScene(frame, nil)
	if err != nil {
		return nil, err
	}
	capt, err := n.radar.ObserveContext(ctx, frame, scene)
	if err != nil {
		return nil, err
	}
	cm, grid, err := n.radar.CorrectedMatrixContext(ctx, capt)
	if err != nil {
		return nil, err
	}
	return n.radar.EnvironmentMap(radar.MagnitudeMatrix(cm), grid)
}

// RandomPayload generates a deterministic pseudo-random payload of n bytes
// for BER experiments, seeded per call.
func RandomPayload(seed int64, n int) []byte {
	out := make([]byte, n)
	s := uint64(seed)*2654435761 + 1
	for i := range out {
		// xorshift64
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = byte(s)
	}
	return out
}

// CountBitErrors compares two payloads bit by bit, returning the number of
// differing bits over the total. The length policy is asymmetric in what
// the two arguments mean but symmetric in cost: total spans
// max(len(sent), len(got)) bytes, bytes missing from got count all eight
// bits as errors (data the receiver lost), and extra trailing bytes in got
// also count all eight bits as errors (spurious data the receiver would
// act on). A decode that returns more bytes than were sent is therefore no
// longer scored as error-free.
func CountBitErrors(sent, got []byte) (errs, total int) {
	n := len(sent)
	if len(got) > n {
		n = len(got)
	}
	total = n * 8
	for i := 0; i < n; i++ {
		switch {
		case i >= len(got) || i >= len(sent):
			errs += 8
		default:
			errs += popcount8(sent[i] ^ got[i])
		}
	}
	return errs, total
}

func popcount8(b byte) int {
	n := 0
	for b != 0 {
		b &= b - 1
		n++
	}
	return n
}

// SymbolsFor exposes the encoded chirp schedule for a payload, useful for
// experiments that need ground-truth symbols.
func (n *Network) SymbolsFor(payload []byte) ([]cssk.Symbol, error) {
	return n.pkt.Encode(payload)
}
