package core

import (
	"fmt"
	"math"
	"sort"

	"biscatter/internal/cssk"
	"biscatter/internal/dsp"
	"biscatter/internal/fmcw"
	"biscatter/internal/radar"
	"biscatter/internal/tag"
)

// NodeResult is the outcome of one exchange for one node.
type NodeResult struct {
	// DownlinkPayload is what the node decoded from the radar's packet
	// (nil when DownlinkErr is set).
	DownlinkPayload []byte
	// DownlinkErr reports a downlink decoding failure.
	DownlinkErr error
	// DownlinkDiag carries the tag decoder's pipeline diagnostics.
	DownlinkDiag tag.Diagnostics
	// Detection is the radar's localization of this node.
	Detection radar.Detection
	// DetectionErr reports a failed tag search.
	DetectionErr error
	// UplinkBits is what the radar decoded from this node's backscatter.
	UplinkBits []bool
	// UplinkErr reports an uplink demodulation failure.
	UplinkErr error
}

// ExchangeResult is the outcome of one full ISAC round.
type ExchangeResult struct {
	// Frame is the transmitted CSSK frame.
	Frame *fmcw.Frame
	// Nodes holds one result per network node, in network order.
	Nodes []NodeResult
}

// BuildDownlinkFrame encodes a payload into a CSSK frame, padding with
// header-slope chirps so the frame spans at least minChirps (uplink bit
// windows may need more chirps than the packet itself).
func (n *Network) BuildDownlinkFrame(payload []byte, minChirps int) (*fmcw.Frame, error) {
	syms, err := n.pkt.Encode(payload)
	if err != nil {
		return nil, err
	}
	durs := make([]float64, 0, len(syms))
	for _, s := range syms {
		durs = append(durs, s.Duration)
	}
	for len(durs) < minChirps {
		durs = append(durs, n.alphabet.Header().Duration)
	}
	return n.builder.Build(durs)
}

// BuildSensingFrame builds a fixed-slope frame (sensing-only mode).
func (n *Network) BuildSensingFrame(chirps int) (*fmcw.Frame, error) {
	return n.builder.BuildUniform(chirps, n.cfg.Preset.Chirp.Duration)
}

// Exchange runs one integrated round: the radar transmits the downlink
// packet as a CSSK frame; every node receives it through its own link SNR
// and decodes it; every node simultaneously modulates its uplink bits onto
// the retro-reflection; the radar observes the composite scene, localizes
// each node by its modulation signature and demodulates its bits.
//
// uplinkBits maps node index → bits; nodes without an entry modulate a
// constant-zero pattern (pure localization beacon).
func (n *Network) Exchange(payload []byte, uplinkBits map[int][]bool) (*ExchangeResult, error) {
	// Size the frame for both the packet and the longest uplink message.
	minChirps := 0
	for _, bits := range uplinkBits {
		if c := len(bits) * n.cfg.ChirpsPerBit; c > minChirps {
			minChirps = c
		}
	}
	frame, err := n.BuildDownlinkFrame(payload, minChirps)
	if err != nil {
		return nil, err
	}
	res := &ExchangeResult{Frame: frame, Nodes: make([]NodeResult, len(n.nodes))}

	// Downlink: each node captures the frame at its own SNR.
	for i, node := range n.nodes {
		snr := n.link.DownlinkSNRdB(node.Range)
		pl, diag, derr := node.Tag.ReceiveDownlink(frame, snr, n.pkt)
		res.Nodes[i].DownlinkPayload = pl
		res.Nodes[i].DownlinkErr = derr
		res.Nodes[i].DownlinkDiag = diag
	}

	// Uplink: build the radar scene with every node's switch states.
	scene := radar.Scene{Clutter: n.cfg.Clutter}
	for i, node := range n.nodes {
		bits := uplinkBits[i]
		states, serr := node.Tag.UplinkStates(bits, n.cfg.Period, len(frame.Chirps))
		if serr != nil {
			return nil, fmt.Errorf("core: node %d uplink states: %w", i, serr)
		}
		scene.Tags = append(scene.Tags, radar.TagEcho{
			Range:    node.Range,
			States:   states,
			PowerDBm: n.link.UplinkRxPowerDBm(node.Range),
		})
	}
	capt := n.radar.Observe(frame, scene)
	cm, grid := n.radar.CorrectedMatrix(capt)
	matrix := radar.SubtractBackgroundMag(radar.MagnitudeMatrix(cm))

	dets, derrs := n.detectNodes(matrix, grid)
	for i, node := range n.nodes {
		res.Nodes[i].Detection = dets[i]
		res.Nodes[i].DetectionErr = derrs[i]
		if derrs[i] != nil {
			continue
		}
		if bits, ok := uplinkBits[i]; ok && len(bits) > 0 {
			got, uerr := n.radar.DecodeUplinkFSK(matrix, dets[i].Bin, node.Uplink)
			if uerr == nil && len(got) > len(bits) {
				got = got[:len(bits)]
			}
			res.Nodes[i].UplinkBits = got
			res.Nodes[i].UplinkErr = uerr
		}
	}
	return res, nil
}

// detectNodes locates every node jointly. A single-node search per tone is
// not enough in multi-tag deployments: a strong nearby node's modulation
// harmonics and bit-pattern sidebands can out-power a weak distant node's
// fundamental at the strong node's own range bin (the backscatter near-far
// problem, §6). The joint rule assigns each range bin to the node whose
// combined F0+F1 signature is strongest there — at a node's true bin its own
// fundamentals always dominate another node's spectral splatter — and then
// each node peaks only over the bins it owns.
func (n *Network) detectNodes(matrix [][]float64, grid []float64) ([]radar.Detection, []error) {
	nn := len(n.nodes)
	dets := make([]radar.Detection, nn)
	errs := make([]error, nn)
	if nn == 0 {
		return dets, errs
	}
	profs := make([][]float64, nn)
	for j, node := range n.nodes {
		p0 := n.radar.SignatureProfile(matrix, node.Uplink.F0, n.cfg.Period)
		p1 := n.radar.SignatureProfile(matrix, node.Uplink.F1, n.cfg.Period)
		s := make([]float64, len(p0))
		for b := range s {
			s[b] = p0[b] + p1[b]
		}
		profs[j] = s
	}
	nBins := len(profs[0])
	owner := make([]int, nBins)
	for b := 0; b < nBins; b++ {
		best := 0
		for j := 1; j < nn; j++ {
			if profs[j][b] > profs[best][b] {
				best = j
			}
		}
		owner[b] = best
	}
	binWidth := grid[1] - grid[0]
	for j := range n.nodes {
		prof := profs[j]
		med := medianOf(prof)
		bestBin, bestVal := -1, 0.0
		for b := 0; b < nBins; b++ {
			if owner[b] == j && prof[b] > bestVal {
				bestBin, bestVal = b, prof[b]
			}
		}
		if bestBin < 0 || med <= 0 || bestVal < radar.DetectionThreshold*med {
			errs[j] = radar.ErrTagNotFound
			continue
		}
		delta := 0.0
		if bestBin > 0 && bestBin < nBins-1 {
			amps := []float64{
				math.Sqrt(prof[bestBin-1]),
				math.Sqrt(prof[bestBin]),
				math.Sqrt(prof[bestBin+1]),
			}
			d, _ := dsp.ParabolicPeak(amps, 1)
			delta = d
		}
		dets[j] = radar.Detection{
			Range: grid[bestBin] + delta*binWidth,
			Bin:   bestBin,
			SNRdB: 10 * math.Log10(bestVal/med),
		}
	}
	return dets, errs
}

// medianOf returns the median of x without modifying it.
func medianOf(x []float64) float64 {
	cp := append([]float64(nil), x...)
	sort.Float64s(cp)
	if len(cp) == 0 {
		return 0
	}
	return cp[len(cp)/2]
}

// Localize runs a sensing round (with the given frame, or a fixed-slope
// sensing frame when frame is nil) and returns per-node detections. Nodes
// modulate their localization beacons (constant zero bits → F0 tone).
func (n *Network) Localize(frame *fmcw.Frame, chirps int) ([]radar.Detection, error) {
	var err error
	if frame == nil {
		frame, err = n.BuildSensingFrame(chirps)
		if err != nil {
			return nil, err
		}
	}
	scene := radar.Scene{Clutter: n.cfg.Clutter}
	for _, node := range n.nodes {
		states, serr := node.Tag.UplinkStates(nil, n.cfg.Period, len(frame.Chirps))
		if serr != nil {
			return nil, serr
		}
		scene.Tags = append(scene.Tags, radar.TagEcho{
			Range:    node.Range,
			States:   states,
			PowerDBm: n.link.UplinkRxPowerDBm(node.Range),
		})
	}
	capt := n.radar.Observe(frame, scene)
	cm, grid := n.radar.CorrectedMatrix(capt)
	matrix := radar.SubtractBackgroundMag(radar.MagnitudeMatrix(cm))
	dets, errs := n.detectNodes(matrix, grid)
	for i, derr := range errs {
		if derr != nil {
			return nil, fmt.Errorf("core: node %d: %w", i, derr)
		}
	}
	return dets, nil
}

// MapEnvironment runs a sensing frame and returns the radar's static-object
// map (CFAR detections over the averaged corrected range profile) — the
// primary sensing output that keeps running during communication.
func (n *Network) MapEnvironment(chirps int) ([]radar.MapTarget, error) {
	frame, err := n.BuildSensingFrame(chirps)
	if err != nil {
		return nil, err
	}
	scene := radar.Scene{Clutter: n.cfg.Clutter}
	for _, node := range n.nodes {
		states, serr := node.Tag.UplinkStates(nil, n.cfg.Period, len(frame.Chirps))
		if serr != nil {
			return nil, serr
		}
		scene.Tags = append(scene.Tags, radar.TagEcho{
			Range:    node.Range,
			States:   states,
			PowerDBm: n.link.UplinkRxPowerDBm(node.Range),
		})
	}
	capt := n.radar.Observe(frame, scene)
	cm, grid := n.radar.CorrectedMatrix(capt)
	return n.radar.EnvironmentMap(radar.MagnitudeMatrix(cm), grid)
}

// RandomPayload generates a deterministic pseudo-random payload of n bytes
// for BER experiments, seeded per call.
func RandomPayload(seed int64, n int) []byte {
	out := make([]byte, n)
	s := uint64(seed)*2654435761 + 1
	for i := range out {
		// xorshift64
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = byte(s)
	}
	return out
}

// CountBitErrors compares two payloads bit by bit, returning the number of
// differing bits over the total. Length mismatches count the missing bytes
// as fully erroneous.
func CountBitErrors(sent, got []byte) (errs, total int) {
	total = len(sent) * 8
	for i := range sent {
		if i >= len(got) {
			errs += 8
			continue
		}
		errs += popcount8(sent[i] ^ got[i])
	}
	return errs, total
}

func popcount8(b byte) int {
	n := 0
	for b != 0 {
		b &= b - 1
		n++
	}
	return n
}

// SymbolsFor exposes the encoded chirp schedule for a payload, useful for
// experiments that need ground-truth symbols.
func (n *Network) SymbolsFor(payload []byte) ([]cssk.Symbol, error) {
	return n.pkt.Encode(payload)
}
