package core

import (
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"biscatter/internal/fmcw"
	"biscatter/internal/radar"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden vector files under testdata/golden")

// hexFloat renders a float64 exactly (hexadecimal mantissa/exponent form),
// so golden comparisons are byte-exact with no decimal rounding ambiguity.
func hexFloat(v float64) string {
	return strconv.FormatFloat(v, 'x', -1, 64)
}

func bitString(bits []bool) string {
	out := make([]byte, len(bits))
	for i, b := range bits {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// goldenNode is one node's slice of a golden exchange record.
type goldenNode struct {
	PayloadHex   string `json:"payload_hex"`
	DownlinkErr  string `json:"downlink_err,omitempty"`
	UplinkBits   string `json:"uplink_bits"`
	UplinkErr    string `json:"uplink_err,omitempty"`
	DetectionBin int    `json:"detection_bin"`
	DetRangeHex  string `json:"detection_range_hex"`
	DetSNRHex    string `json:"detection_snr_db_hex"`
	DetectionErr string `json:"detection_err,omitempty"`
}

// goldenPeak is one range-Doppler peak (sensing-mode frame, background
// subtracted), power in exact hex-float form.
type goldenPeak struct {
	Doppler  int    `json:"doppler"`
	Bin      int    `json:"bin"`
	PowerHex string `json:"power_hex"`
}

// goldenDoc is the serialized known-good output of one preset's fixed
// exchange + sensing round.
type goldenDoc struct {
	Preset     string       `json:"preset"`
	Seed       int64        `json:"seed"`
	SymbolBits int          `json:"symbol_bits"`
	SentHex    string       `json:"sent_hex"`
	Nodes      []goldenNode `json:"nodes"`
	Peaks      []goldenPeak `json:"peaks"`
}

// goldenCase pins one fmcw preset to a fixed workload. The 24 GHz platform
// has only 250 MHz of bandwidth, so it runs the Fig. 17 3-bit constellation;
// the 9 GHz platform runs the paper's headline 5-bit operating point.
//
// tolerance selects the comparison mode for the case's vector file:
// "" (exact, the default) requires byte equality; "ulp:N" and "rel:eps"
// allow *_hex float fields to drift within the stated bound while every
// other field — and the document structure itself — stays exact. A case may
// only carry a tolerance when a property test pins the equivalence of the
// transform that makes its floats drift (see testdata/golden/README note on
// 9ghz_diag.json).
type goldenCase struct {
	file       string
	preset     fmcw.Preset
	symbolBits int
	nodes      []NodeConfig
	seed       int64
	tolerance  string
	diag       bool // serialize decoder diagnostics instead of decode outputs
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			file:       "9ghz.json",
			preset:     fmcw.Radar9GHz(),
			symbolBits: 5,
			nodes:      []NodeConfig{{ID: 1, Range: 1.8}, {ID: 2, Range: 3.4}},
			seed:       42,
		},
		{
			file:       "24ghz.json",
			preset:     fmcw.Radar24GHz(),
			symbolBits: 3,
			nodes:      []NodeConfig{{ID: 1, Range: 1.5}, {ID: 2, Range: 2.9}},
			seed:       42,
		},
		{
			// Decoder diagnostics under the rel tolerance: PeriodSamples
			// flows through the FFT autocorrelation, whose only difference
			// from the direct sum is transform rounding (~1e-13 relative —
			// TestFFTAutocorrMatchesDirect in internal/dsp pins it). 1e-9
			// gives three decades of headroom while still catching any
			// structural change to the period search. ChirpStart and the
			// symbol count stay integer-exact even in this mode.
			file:       "9ghz_diag.json",
			preset:     fmcw.Radar9GHz(),
			symbolBits: 5,
			nodes:      []NodeConfig{{ID: 1, Range: 1.8}, {ID: 2, Range: 3.4}},
			seed:       42,
			tolerance:  "rel:1e-9",
			diag:       true,
		},
	}
}

// goldenRun executes the fixed workload for one case and serializes every
// decode-relevant output.
func goldenRun(t *testing.T, gc goldenCase) []byte {
	t.Helper()
	n, err := NewNetwork(Config{
		Preset:     gc.preset,
		SymbolBits: gc.symbolBits,
		Nodes:      gc.nodes,
		Seed:       gc.seed,
		Workers:    1,
	})
	if err != nil {
		t.Fatalf("%s: NewNetwork: %v", gc.preset.Name, err)
	}
	payload := RandomPayload(gc.seed, 8)
	uplink := map[int][]bool{
		0: {true, false, true, true},
		1: {false, true, true, false},
	}
	res, err := n.Exchange(payload, uplink)
	if err != nil {
		t.Fatalf("%s: Exchange: %v", gc.preset.Name, err)
	}
	doc := goldenDoc{
		Preset:     gc.preset.Name,
		Seed:       gc.seed,
		SymbolBits: gc.symbolBits,
		SentHex:    hex.EncodeToString(payload),
	}
	for _, nr := range res.Nodes {
		doc.Nodes = append(doc.Nodes, goldenNode{
			PayloadHex:   hex.EncodeToString(nr.DownlinkPayload),
			DownlinkErr:  errString(nr.DownlinkErr),
			UplinkBits:   bitString(nr.UplinkBits),
			UplinkErr:    errString(nr.UplinkErr),
			DetectionBin: nr.Detection.Bin,
			DetRangeHex:  hexFloat(nr.Detection.Range),
			DetSNRHex:    hexFloat(nr.Detection.SNRdB),
			DetectionErr: errString(nr.DetectionErr),
		})
	}
	doc.Peaks = goldenPeaks(t, n)

	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// goldenDiagNode is one node's decoder-pipeline diagnostics.
type goldenDiagNode struct {
	PeriodSamplesHex string `json:"period_samples_hex"`
	ChirpStart       int    `json:"chirp_start"`
	Symbols          int    `json:"symbols"`
}

// goldenDiagDoc pins the tag decoder's intermediate estimates — the values
// the rel-tolerance mode exists for, since the period estimate rides on the
// FFT autocorrelation.
type goldenDiagDoc struct {
	Preset     string           `json:"preset"`
	Seed       int64            `json:"seed"`
	SymbolBits int              `json:"symbol_bits"`
	Nodes      []goldenDiagNode `json:"nodes"`
}

// goldenDiagRun executes the same fixed workload as goldenRun but
// serializes the per-node decoder diagnostics instead of the decode outputs.
func goldenDiagRun(t *testing.T, gc goldenCase) []byte {
	t.Helper()
	n, err := NewNetwork(Config{
		Preset:     gc.preset,
		SymbolBits: gc.symbolBits,
		Nodes:      gc.nodes,
		Seed:       gc.seed,
		Workers:    1,
	})
	if err != nil {
		t.Fatalf("%s: NewNetwork: %v", gc.preset.Name, err)
	}
	payload := RandomPayload(gc.seed, 8)
	uplink := map[int][]bool{
		0: {true, false, true, true},
		1: {false, true, true, false},
	}
	res, err := n.Exchange(payload, uplink)
	if err != nil {
		t.Fatalf("%s: Exchange: %v", gc.preset.Name, err)
	}
	doc := goldenDiagDoc{Preset: gc.preset.Name, Seed: gc.seed, SymbolBits: gc.symbolBits}
	for _, nr := range res.Nodes {
		doc.Nodes = append(doc.Nodes, goldenDiagNode{
			PeriodSamplesHex: hexFloat(nr.DownlinkDiag.PeriodSamples),
			ChirpStart:       nr.DownlinkDiag.ChirpStart,
			Symbols:          nr.DownlinkDiag.Symbols,
		})
	}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// goldenPeaks runs a sensing-mode frame through the full radar pipeline
// (observe → IF correction → background subtraction → range-Doppler) and
// returns the strongest 8 cells. Order is by descending power with a
// (doppler, bin) tie-break, so the list is fully deterministic.
func goldenPeaks(t *testing.T, n *Network) []goldenPeak {
	t.Helper()
	frame, err := n.BuildSensingFrame(32)
	if err != nil {
		t.Fatal(err)
	}
	scene, err := n.buildScene(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	capt := n.Radar().Observe(frame, scene)
	cm, _ := n.Radar().CorrectedMatrix(capt)
	rd := n.Radar().RangeDoppler(radar.SubtractBackground(cm))
	var peaks []goldenPeak
	for d := range rd {
		for b := range rd[d] {
			peaks = append(peaks, goldenPeak{Doppler: d, Bin: b, PowerHex: hexFloat(rd[d][b])})
		}
		// Keep the candidate pool bounded: per Doppler row only the top 8
		// bins can survive the global top-8 cut.
		sort.Slice(peaks, func(i, j int) bool { return goldenPeakLess(rd, peaks[i], peaks[j]) })
		if len(peaks) > 8 {
			peaks = peaks[:8]
		}
	}
	return peaks
}

func goldenPeakLess(rd [][]float64, a, b goldenPeak) bool {
	pa, pb := rd[a.Doppler][a.Bin], rd[b.Doppler][b.Bin]
	if pa != pb {
		return pa > pb
	}
	if a.Doppler != b.Doppler {
		return a.Doppler < b.Doppler
	}
	return a.Bin < b.Bin
}

// TestGoldenVectors pins the full decode + sensing output of each fmcw
// preset — byte-exactly by default, or under the case's declared tolerance
// mode for vectors downstream of provably-equivalent float-breaking
// transforms. Run with -update to regenerate after an intentional
// signal-path change; any unintentional diff is a regression.
func TestGoldenVectors(t *testing.T) {
	for _, gc := range goldenCases() {
		name := gc.preset.Name
		if gc.diag {
			name += "/diag"
		}
		t.Run(name, func(t *testing.T) {
			var got []byte
			if gc.diag {
				got = goldenDiagRun(t, gc)
			} else {
				got = goldenRun(t, gc)
			}
			path := filepath.Join("testdata", "golden", gc.file)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file %s (run go test -run TestGoldenVectors -update ./internal/core): %v", path, err)
			}
			mode, err := parseTolerance(gc.tolerance)
			if err != nil {
				t.Fatalf("golden case %s: %v", gc.file, err)
			}
			if err := compareGolden(got, want, mode); err != nil {
				t.Errorf("golden mismatch for %s (%s): %v\n got: %s\nwant: %s", path, mode, err, got, want)
			}
		})
	}
}
