package core

import (
	"fmt"

	"biscatter/internal/channel"
	"biscatter/internal/mac"
	"biscatter/internal/tag"
	"biscatter/internal/telemetry"
	"biscatter/internal/trace"
)

// ExchangeRecorder captures a network's exchanges into a replayable
// trace.ExchangeRecord: the full resolved configuration once, then every
// round's inputs and outcomes. Attach it to a fresh network — the record's
// determinism contract assumes the exchange sequence starts at 0 — and
// drive exchanges through the recorder's methods instead of the network's.
//
// Like the Network it wraps, a recorder is single-threaded.
type ExchangeRecorder struct {
	net *Network
	rec trace.ExchangeRecord
}

// NewExchangeRecorder wraps n for recording. The network must not have run
// any exchanges yet (its sequence counter must be at 0), so replay — which
// always starts a fresh network — reproduces the same exchange IDs.
func NewExchangeRecorder(n *Network) (*ExchangeRecorder, error) {
	if n.seq != 0 {
		return nil, fmt.Errorf("core: recorder needs a fresh network (seq=%d)", n.seq)
	}
	return &ExchangeRecorder{net: n, rec: trace.ExchangeRecord{Spec: specFromConfig(n.cfg)}}, nil
}

// specFromConfig flattens a resolved (post-defaults) Config into the
// record's spec.
func specFromConfig(cfg Config) trace.ExchangeSpec {
	spec := trace.ExchangeSpec{
		Preset:           cfg.Preset,
		Period:           cfg.Period,
		SymbolBits:       cfg.SymbolBits,
		HeaderChirps:     cfg.HeaderChirps,
		SyncChirps:       cfg.SyncChirps,
		FEC:              cfg.FEC,
		MinChirpDuration: cfg.MinChirpDuration,
		DeltaL:           cfg.DeltaL,
		MinBeatSpacing:   cfg.MinBeatSpacing,
		ChirpsPerBit:     cfg.ChirpsPerBit,
		Clutter:          append([]channel.Reflector(nil), cfg.Clutter...),
		Faults:           cfg.Faults,
		Seed:             cfg.Seed,
		TagSampleRate:    cfg.TagSampleRate,
		DecoderMethod:    int(cfg.DecoderMethod),
		NetworkID:        cfg.NetworkID,
	}
	for _, nc := range cfg.Nodes {
		spec.Nodes = append(spec.Nodes, trace.NodeSpec{
			ID: nc.ID, Range: nc.Range,
			ModulationF0: nc.ModulationF0, ModulationF1: nc.ModulationF1,
		})
	}
	if cfg.Schedule != nil {
		spec.ScheduleCapacity = cfg.Schedule.Capacity()
	}
	return spec
}

// configFromSpec is specFromConfig's inverse: the replay network's Config.
// Recorded specs hold resolved values, so the only default the rebuild must
// suppress is the nil-clutter office fallback (gob decodes an empty clutter
// slice back to nil).
func configFromSpec(spec trace.ExchangeSpec) (Config, error) {
	cfg := Config{
		Preset:           spec.Preset,
		Period:           spec.Period,
		SymbolBits:       spec.SymbolBits,
		HeaderChirps:     spec.HeaderChirps,
		SyncChirps:       spec.SyncChirps,
		FEC:              spec.FEC,
		MinChirpDuration: spec.MinChirpDuration,
		DeltaL:           spec.DeltaL,
		MinBeatSpacing:   spec.MinBeatSpacing,
		ChirpsPerBit:     spec.ChirpsPerBit,
		Clutter:          spec.Clutter,
		Faults:           spec.Faults,
		Seed:             spec.Seed,
		TagSampleRate:    spec.TagSampleRate,
		DecoderMethod:    tag.Method(spec.DecoderMethod),
		NetworkID:        spec.NetworkID,
	}
	if cfg.Clutter == nil {
		cfg.Clutter = []channel.Reflector{}
	}
	for _, ns := range spec.Nodes {
		cfg.Nodes = append(cfg.Nodes, NodeConfig{
			ID: ns.ID, Range: ns.Range,
			ModulationF0: ns.ModulationF0, ModulationF1: ns.ModulationF1,
		})
	}
	if spec.ScheduleCapacity > 0 {
		sched, err := mac.NewFrameSchedule(len(spec.Nodes), spec.ScheduleCapacity)
		if err != nil {
			return Config{}, fmt.Errorf("core: replay schedule: %w", err)
		}
		cfg.Schedule = sched
	}
	return cfg, nil
}

// Network returns the wrapped network.
func (r *ExchangeRecorder) Network() *Network { return r.net }

// Record returns the accumulated record. The returned pointer aliases the
// recorder's state; Save it (trace.SaveExchange) before recording more.
func (r *ExchangeRecorder) Record() *trace.ExchangeRecord { return &r.rec }

// SetMeta attaches one free-form annotation to the record.
func (r *ExchangeRecorder) SetMeta(key, value string) {
	if r.rec.Meta == nil {
		r.rec.Meta = map[string]string{}
	}
	r.rec.Meta[key] = value
}

// captureInput deep-copies one round's inputs (callers may reuse payload
// and bit buffers between rounds).
func captureInput(payload []byte, uplinkBits map[int][]bool, eo exchangeOptions, scheduled bool) trace.RoundInput {
	in := trace.RoundInput{
		Payload:   append([]byte(nil), payload...),
		MinChirps: eo.minChirps,
		Scheduled: scheduled,
	}
	if eo.active != nil {
		in.Active = append([]int(nil), eo.active...)
	}
	if uplinkBits != nil {
		in.UplinkBits = make(map[int][]bool, len(uplinkBits))
		for i, bits := range uplinkBits {
			in.UplinkBits[i] = append([]bool(nil), bits...)
		}
	}
	return in
}

// outcomesFromNodes digests per-node results for replay comparison.
func outcomesFromNodes(nodes []NodeResult) []trace.NodeOutcome {
	out := make([]trace.NodeOutcome, len(nodes))
	for i, nr := range nodes {
		o := trace.NodeOutcome{
			DownlinkPayload: append([]byte(nil), nr.DownlinkPayload...),
			DetectionRange:  nr.Detection.Range,
			DetectionBin:    nr.Detection.Bin,
			DetectionSNRdB:  nr.Detection.SNRdB,
			UplinkBits:      append([]bool(nil), nr.UplinkBits...),
		}
		if nr.DownlinkErr != nil {
			o.DownlinkErr = nr.DownlinkErr.Error()
		}
		if nr.DetectionErr != nil {
			o.DetectionErr = nr.DetectionErr.Error()
		}
		if nr.UplinkErr != nil {
			o.UplinkErr = nr.UplinkErr.Error()
		}
		out[i] = o
	}
	return out
}

// record appends one finished round.
func (r *ExchangeRecorder) record(in trace.RoundInput, seq uint64, nodes []NodeResult, err error) {
	round := trace.RoundRecord{
		Seq:        seq,
		ExchangeID: telemetry.NewExchangeID(r.net.cfg.Seed, r.net.cfg.NetworkID, seq).String(),
		Input:      in,
	}
	if err != nil {
		round.Err = err.Error()
	} else {
		round.Outcomes = outcomesFromNodes(nodes)
	}
	r.rec.Rounds = append(r.rec.Rounds, round)
}

// Exchange runs one recorded round on the wrapped network.
func (r *ExchangeRecorder) Exchange(payload []byte, uplinkBits map[int][]bool, opts ...ExchangeOption) (*ExchangeResult, error) {
	var eo exchangeOptions
	for _, opt := range opts {
		opt(&eo)
	}
	in := captureInput(payload, uplinkBits, eo, false)
	seq := r.net.seq
	res, err := r.net.Exchange(payload, uplinkBits, opts...)
	var nodes []NodeResult
	if res != nil {
		nodes = res.Nodes
	}
	r.record(in, seq, nodes, err)
	return res, err
}

// ExchangeScheduled runs one recorded schedule cycle on the wrapped
// network. The cycle consumes one exchange sequence number per frame group;
// the round record carries the first.
func (r *ExchangeRecorder) ExchangeScheduled(payload []byte, uplinkBits map[int][]bool, opts ...ExchangeOption) (*ScheduledResult, error) {
	var eo exchangeOptions
	for _, opt := range opts {
		opt(&eo)
	}
	in := captureInput(payload, uplinkBits, eo, true)
	seq := r.net.seq
	res, err := r.net.ExchangeScheduled(payload, uplinkBits, opts...)
	var nodes []NodeResult
	if res != nil {
		nodes = res.Nodes
	}
	r.record(in, seq, nodes, err)
	return res, err
}

// ReplayMismatch pins one divergence between the record and the replay.
type ReplayMismatch struct {
	// Round indexes into the record's Rounds.
	Round int
	// Field names what diverged ("exchange_id", "err", "node 2 uplink_bits").
	Field string
	// Want and Got render the recorded and replayed values.
	Want, Got string
}

func (m ReplayMismatch) String() string {
	return fmt.Sprintf("round %d %s: recorded %s, replay %s", m.Round, m.Field, m.Want, m.Got)
}

// ReplayReport is the outcome of replaying a record against a fresh
// network.
type ReplayReport struct {
	// Rounds is how many rounds were replayed.
	Rounds int
	// Mismatches lists every divergence; empty means the replay reproduced
	// the record byte-for-byte.
	Mismatches []ReplayMismatch
}

// OK reports whether the replay reproduced every round exactly.
func (r *ReplayReport) OK() bool { return len(r.Mismatches) == 0 }

// ReplayRecord rebuilds the recorded network from the record's spec, re-runs
// every recorded round, and compares outcomes byte-for-byte — exchange IDs,
// decoded payloads and bits, detection coordinates, error messages. opts are
// extra NewNetwork options for the replay run (attach a tracer, metrics, a
// different worker count — anything outside the determinism contract).
func ReplayRecord(rec *trace.ExchangeRecord, opts ...Option) (*ReplayReport, error) {
	cfg, err := configFromSpec(rec.Spec)
	if err != nil {
		return nil, err
	}
	net, err := NewNetwork(cfg, opts...)
	if err != nil {
		return nil, fmt.Errorf("core: replay network: %w", err)
	}
	report := &ReplayReport{}
	for ri, round := range rec.Rounds {
		report.Rounds++
		gotID := telemetry.NewExchangeID(net.cfg.Seed, net.cfg.NetworkID, net.seq).String()
		if gotID != round.ExchangeID {
			report.add(ri, "exchange_id", round.ExchangeID, gotID)
		}
		ropts := make([]ExchangeOption, 0, 2)
		if round.Input.MinChirps > 0 {
			ropts = append(ropts, WithMinChirps(round.Input.MinChirps))
		}
		if round.Input.Active != nil {
			ropts = append(ropts, WithActiveNodes(round.Input.Active...))
		}
		var nodes []NodeResult
		var rerr error
		if round.Input.Scheduled {
			var res *ScheduledResult
			res, rerr = net.ExchangeScheduled(round.Input.Payload, round.Input.UplinkBits, ropts...)
			if res != nil {
				nodes = res.Nodes
			}
		} else {
			var res *ExchangeResult
			res, rerr = net.Exchange(round.Input.Payload, round.Input.UplinkBits, ropts...)
			if res != nil {
				nodes = res.Nodes
			}
		}
		gotErr := ""
		if rerr != nil {
			gotErr = rerr.Error()
		}
		if gotErr != round.Err {
			report.add(ri, "err", quoteOr(round.Err), quoteOr(gotErr))
			continue
		}
		if rerr != nil {
			continue // both failed identically; no outcomes to compare
		}
		got := outcomesFromNodes(nodes)
		if len(got) != len(round.Outcomes) {
			report.add(ri, "node count", fmt.Sprint(len(round.Outcomes)), fmt.Sprint(len(got)))
			continue
		}
		for i := range got {
			compareOutcome(report, ri, i, round.Outcomes[i], got[i])
		}
	}
	return report, nil
}

func (r *ReplayReport) add(round int, field, want, got string) {
	r.Mismatches = append(r.Mismatches, ReplayMismatch{Round: round, Field: field, Want: want, Got: got})
}

func quoteOr(s string) string {
	if s == "" {
		return "<nil>"
	}
	return fmt.Sprintf("%q", s)
}

// compareOutcome pins every field of one node's recorded vs replayed
// digest. Floats compare bit-exact: the pipeline is deterministic, so any
// drift is a real divergence.
func compareOutcome(r *ReplayReport, round, node int, want, got trace.NodeOutcome) {
	pre := fmt.Sprintf("node %d ", node)
	if string(want.DownlinkPayload) != string(got.DownlinkPayload) {
		r.add(round, pre+"downlink_payload", fmt.Sprintf("%x", want.DownlinkPayload), fmt.Sprintf("%x", got.DownlinkPayload))
	}
	if want.DownlinkErr != got.DownlinkErr {
		r.add(round, pre+"downlink_err", quoteOr(want.DownlinkErr), quoteOr(got.DownlinkErr))
	}
	if want.DetectionRange != got.DetectionRange || want.DetectionBin != got.DetectionBin || want.DetectionSNRdB != got.DetectionSNRdB {
		r.add(round, pre+"detection",
			fmt.Sprintf("(%v m, bin %d, %v dB)", want.DetectionRange, want.DetectionBin, want.DetectionSNRdB),
			fmt.Sprintf("(%v m, bin %d, %v dB)", got.DetectionRange, got.DetectionBin, got.DetectionSNRdB))
	}
	if want.DetectionErr != got.DetectionErr {
		r.add(round, pre+"detection_err", quoteOr(want.DetectionErr), quoteOr(got.DetectionErr))
	}
	if !equalBits(want.UplinkBits, got.UplinkBits) {
		r.add(round, pre+"uplink_bits", fmt.Sprint(want.UplinkBits), fmt.Sprint(got.UplinkBits))
	}
	if want.UplinkErr != got.UplinkErr {
		r.add(round, pre+"uplink_err", quoteOr(want.UplinkErr), quoteOr(got.UplinkErr))
	}
}

func equalBits(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
