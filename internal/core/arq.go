package core

import (
	"bytes"
	"fmt"
)

// DeliveryReport summarizes a reliable-downlink delivery attempt sequence.
type DeliveryReport struct {
	// Attempts is the number of downlink transmissions used.
	Attempts int
	// Delivered reports whether the node acknowledged a clean decode.
	Delivered bool
	// AckErrors counts acknowledgment frames the radar failed to read.
	AckErrors int
}

// DeliverReliable implements the on-demand retransmission loop that §1
// motivates as a key benefit of downlink capability: without write access a
// tag can never request a retransmission, so every lost packet is lost
// forever. Each attempt is two frames: the payload frame, then an
// acknowledgment frame on which the node modulates a single uplink bit
// (1 = clean decode). The radar retransmits until the ACK arrives or
// maxAttempts is exhausted.
func (n *Network) DeliverReliable(nodeIdx int, payload []byte, maxAttempts int) (DeliveryReport, error) {
	if nodeIdx < 0 || nodeIdx >= len(n.nodes) {
		return DeliveryReport{}, fmt.Errorf("core: node index %d out of range", nodeIdx)
	}
	if maxAttempts < 1 {
		return DeliveryReport{}, fmt.Errorf("core: maxAttempts %d must be positive", maxAttempts)
	}
	var rep DeliveryReport
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		rep.Attempts = attempt
		// Payload frame: downlink only.
		res, err := n.Exchange(payload, nil)
		if err != nil {
			return rep, err
		}
		nr := res.Nodes[nodeIdx]
		decoded := nr.DownlinkErr == nil && bytes.Equal(nr.DownlinkPayload, payload)

		// Acknowledgment frame: the node repeats its verdict across three
		// uplink bits; the radar majority-votes them. The ack frame carries
		// a minimal beacon payload so the radar keeps sensing.
		ackBits := []bool{decoded, decoded, decoded}
		ackRes, err := n.Exchange(nil, map[int][]bool{nodeIdx: ackBits})
		if err != nil {
			return rep, err
		}
		ar := ackRes.Nodes[nodeIdx]
		if ar.DetectionErr != nil || ar.UplinkErr != nil || len(ar.UplinkBits) < len(ackBits) {
			rep.AckErrors++
			continue // radar cannot read the verdict; retransmit
		}
		votes := 0
		for _, b := range ar.UplinkBits[:len(ackBits)] {
			if b {
				votes++
			}
		}
		if votes >= 2 {
			rep.Delivered = true
			return rep, nil
		}
	}
	return rep, nil
}
