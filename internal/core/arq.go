package core

import (
	"bytes"
	"context"
	"fmt"
	"time"
)

// DeliverOptions parameterizes the reliable-delivery ARQ engine. The zero
// value selects the calibrated defaults.
type DeliverOptions struct {
	// MaxAttempts bounds the number of downlink transmissions; default 4.
	MaxAttempts int
	// AckBits is the acknowledgment redundancy: the node repeats its
	// verdict across this many uplink bits and the radar majority-votes
	// them. Must be odd so the vote has no ties; default 3.
	AckBits int
	// InitialBackoff is the delay before the second attempt; default 2 ms
	// (a handful of frame durations). Subsequent attempts scale it by
	// BackoffFactor.
	InitialBackoff time.Duration
	// BackoffFactor is the exponential backoff multiplier; default 2.
	BackoffFactor float64
	// JitterFraction spreads each backoff uniformly over
	// [1-j, 1+j) × nominal so synchronized retransmissions from multiple
	// radars decorrelate. The jitter sequence is drawn from the network
	// seed, so it is deterministic per (seed, node, attempt). Default 0.25;
	// must stay in [0, 1).
	JitterFraction float64
	// Sleep, when non-nil, is called with each backoff delay. The default
	// (nil) only records the delays in the report — simulation time is
	// free, and experiments must stay deterministic and fast. Pass
	// time.Sleep for wall-clock pacing on real hardware.
	Sleep func(time.Duration)
}

func (o DeliverOptions) withDefaults() DeliverOptions {
	if o.MaxAttempts == 0 {
		o.MaxAttempts = 4
	}
	if o.AckBits == 0 {
		o.AckBits = 3
	}
	if o.InitialBackoff == 0 {
		o.InitialBackoff = 2 * time.Millisecond
	}
	if o.BackoffFactor == 0 {
		o.BackoffFactor = 2
	}
	if o.JitterFraction == 0 {
		o.JitterFraction = 0.25
	}
	return o
}

func (o DeliverOptions) validate() error {
	switch {
	case o.MaxAttempts < 1:
		return fmt.Errorf("core: maxAttempts %d must be positive", o.MaxAttempts)
	case o.AckBits < 1 || o.AckBits%2 == 0:
		return fmt.Errorf("core: ack redundancy %d must be an odd positive bit count", o.AckBits)
	case o.BackoffFactor < 1:
		return fmt.Errorf("core: backoff factor %v must be at least 1", o.BackoffFactor)
	case o.JitterFraction < 0 || o.JitterFraction >= 1:
		return fmt.Errorf("core: jitter fraction %v must be in [0, 1)", o.JitterFraction)
	}
	return nil
}

// AttemptReport is the diagnostic record of one ARQ attempt: what the node
// decoded, what the acknowledgment said, and how long the engine backed off
// before the next try. The final attempt is recorded with the same fields
// as every other one, so a failed delivery still tells the whole story.
type AttemptReport struct {
	// Attempt is the 1-based attempt number.
	Attempt int
	// Decoded reports whether the node decoded the payload cleanly.
	Decoded bool
	// DownlinkErr is the node's decode failure, if any.
	DownlinkErr error
	// FECCorrectedBits is how many channel errors the FEC layer repaired
	// in this attempt's downlink — nonzero corrections on a delivered
	// packet mean the link is degrading before it fails.
	FECCorrectedBits int
	// AckReadable reports whether the radar could read the node's
	// acknowledgment at all (detection + demodulation succeeded).
	AckReadable bool
	// AckVotes is the number of positive votes among the AckBits
	// acknowledgment bits (meaningful only when AckReadable).
	AckVotes int
	// Backoff is the delay scheduled after this attempt (zero for the
	// final one — there is nothing to wait for).
	Backoff time.Duration
}

// DeliveryReport summarizes a reliable-downlink delivery attempt sequence.
type DeliveryReport struct {
	// Attempts is the number of downlink transmissions used.
	Attempts int
	// Delivered reports whether the node acknowledged a clean decode.
	Delivered bool
	// AckErrors counts acknowledgment frames the radar failed to read,
	// including one on the final attempt — an exhausted delivery whose
	// last ACK was lost is scored the same as any other lost ACK.
	AckErrors int
	// Exchanges is the total number of frame slots consumed (payload +
	// acknowledgment frames), the airtime denominator for goodput.
	Exchanges int
	// TotalBackoff is the summed backoff the engine scheduled (and slept,
	// when DeliverOptions.Sleep is set).
	TotalBackoff time.Duration
	// AttemptLog records per-attempt diagnostics, one entry per attempt.
	AttemptLog []AttemptReport
}

// DeliverReliable implements the on-demand retransmission loop that §1
// motivates as a key benefit of downlink capability: without write access a
// tag can never request a retransmission, so every lost packet is lost
// forever. Each attempt is two frames: the payload frame, then an
// acknowledgment frame on which the node modulates its verdict with
// configurable redundancy. It is DeliverReliableContext with a background
// context and default options (except the attempt bound).
//
// Deprecated: use DeliverReliableContext with DeliverOptions, which carries
// the full retry policy (attempt budget, ACK redundancy, backoff schedule)
// and honors cancellation between frames.
func (n *Network) DeliverReliable(nodeIdx int, payload []byte, maxAttempts int) (DeliveryReport, error) {
	if maxAttempts < 1 {
		return DeliveryReport{}, fmt.Errorf("core: maxAttempts %d must be positive", maxAttempts)
	}
	return n.DeliverReliableContext(context.Background(), nodeIdx, payload, DeliverOptions{MaxAttempts: maxAttempts})
}

// DeliverReliableContext runs the context-aware ARQ engine. Each attempt is
// two frames — payload downlink, then an acknowledgment frame on which the
// node repeats its verdict across opts.AckBits uplink bits for the radar to
// majority-vote. Failed attempts back off exponentially with deterministic
// seeded jitter before retrying; the delays are recorded in the report and,
// when opts.Sleep is set, actually slept. ctx is checked between frames and
// propagated into every exchange, so cancellation (or a deadline) aborts
// mid-sequence with the report accumulated so far.
func (n *Network) DeliverReliableContext(ctx context.Context, nodeIdx int, payload []byte, opts DeliverOptions) (DeliveryReport, error) {
	if nodeIdx < 0 || nodeIdx >= len(n.nodes) {
		return DeliveryReport{}, fmt.Errorf("core: node index %d out of range", nodeIdx)
	}
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return DeliveryReport{}, err
	}
	var rep DeliveryReport
	backoff := float64(opts.InitialBackoff)
	for attempt := 1; attempt <= opts.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		rep.Attempts = attempt
		ar := AttemptReport{Attempt: attempt}

		// Payload frame: downlink only.
		res, err := n.ExchangeContext(ctx, payload, nil)
		if err != nil {
			rep.AttemptLog = append(rep.AttemptLog, ar)
			return rep, err
		}
		rep.Exchanges++
		nr := res.Nodes[nodeIdx]
		ar.Decoded = nr.DownlinkErr == nil && bytes.Equal(nr.DownlinkPayload, payload)
		ar.DownlinkErr = nr.DownlinkErr
		ar.FECCorrectedBits = nr.DownlinkDiag.FECCorrectedBits

		// Acknowledgment frame: the node repeats its verdict across
		// opts.AckBits uplink bits. The ack frame carries a minimal beacon
		// payload so the radar keeps sensing.
		ackBits := make([]bool, opts.AckBits)
		for i := range ackBits {
			ackBits[i] = ar.Decoded
		}
		ackRes, err := n.ExchangeContext(ctx, nil, map[int][]bool{nodeIdx: ackBits})
		if err != nil {
			rep.AttemptLog = append(rep.AttemptLog, ar)
			return rep, err
		}
		rep.Exchanges++
		ack := ackRes.Nodes[nodeIdx]
		ar.AckReadable = ack.DetectionErr == nil && ack.UplinkErr == nil && len(ack.UplinkBits) >= len(ackBits)
		if ar.AckReadable {
			for _, b := range ack.UplinkBits[:len(ackBits)] {
				if b {
					ar.AckVotes++
				}
			}
		} else {
			rep.AckErrors++
		}
		delivered := ar.AckReadable && 2*ar.AckVotes > opts.AckBits

		if !delivered && attempt < opts.MaxAttempts {
			d := n.jitteredBackoff(backoff, nodeIdx, attempt, opts.JitterFraction)
			ar.Backoff = d
			rep.TotalBackoff += d
			backoff *= opts.BackoffFactor
			if opts.Sleep != nil {
				opts.Sleep(d)
			}
		}
		rep.AttemptLog = append(rep.AttemptLog, ar)
		if delivered {
			rep.Delivered = true
			return rep, nil
		}
	}
	return rep, nil
}

// jitteredBackoff spreads a nominal backoff over [1-j, 1+j) with a
// deterministic fraction drawn from (network seed, node, attempt) — the
// same exchange sequence always schedules the same delays, at any worker
// count.
func (n *Network) jitteredBackoff(nominal float64, nodeIdx, attempt int, jitter float64) time.Duration {
	if jitter == 0 {
		return time.Duration(nominal)
	}
	h := splitmix(uint64(n.cfg.Seed)<<20 ^ uint64(nodeIdx)<<10 ^ uint64(attempt))
	frac := float64(h>>11) / float64(1<<53) // uniform in [0, 1)
	scale := 1 - jitter + 2*jitter*frac
	return time.Duration(nominal * scale)
}

// splitmix is the splitmix64 finalizer: a stateless avalanche hash good
// enough to decorrelate backoff jitter across nodes and attempts.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
