package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBRoundTrip(t *testing.T) {
	for _, r := range []float64{0.001, 0.5, 1, 2, 1000} {
		if got := FromDB(DB(r)); !approxEq(got, r, 1e-9*r) {
			t.Fatalf("ratio %v round-trips to %v", r, got)
		}
	}
	if !math.IsInf(DB(0), -1) || !math.IsInf(DB(-1), -1) {
		t.Fatal("non-positive ratios should give -Inf")
	}
}

func TestAmplitudeDBRoundTrip(t *testing.T) {
	for _, r := range []float64{0.01, 1, 7} {
		if got := AmplitudeFromDB(AmplitudeDB(r)); !approxEq(got, r, 1e-9*r) {
			t.Fatalf("amplitude %v round-trips to %v", r, got)
		}
	}
	if !math.IsInf(AmplitudeDB(0), -1) {
		t.Fatal("zero amplitude should give -Inf")
	}
}

func TestDBmConversions(t *testing.T) {
	if got := DBmToWatts(0); !approxEq(got, 1e-3, 1e-12) {
		t.Fatalf("0 dBm = %v W, want 1 mW", got)
	}
	if got := DBmToWatts(30); !approxEq(got, 1, 1e-9) {
		t.Fatalf("30 dBm = %v W, want 1 W", got)
	}
	if got := WattsToDBm(1e-3); !approxEq(got, 0, 1e-9) {
		t.Fatalf("1 mW = %v dBm, want 0", got)
	}
	if !math.IsInf(WattsToDBm(0), -1) {
		t.Fatal("0 W should give -Inf dBm")
	}
}

func TestDBmRoundTripProperty(t *testing.T) {
	f := func(raw int16) bool {
		dbm := float64(raw%600)/10 - 30 // -30..+30 dBm
		back := WattsToDBm(DBmToWatts(dbm))
		return approxEq(back, dbm, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(99, 0, 10) != 10 {
		t.Fatal("Clamp misbehaves")
	}
}
