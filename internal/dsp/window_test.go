package dsp

import (
	"math"
	"testing"
)

func TestWindowKinds(t *testing.T) {
	for _, kind := range []WindowKind{WindowRect, WindowHann, WindowHamming, WindowBlackman} {
		w := Window(kind, 64)
		if len(w) != 64 {
			t.Fatalf("%v: wrong length %d", kind, len(w))
		}
		for i, v := range w {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("%v: coefficient %d = %v outside [0,1]", kind, i, v)
			}
		}
	}
}

func TestWindowStringNames(t *testing.T) {
	names := map[WindowKind]string{
		WindowRect: "rect", WindowHann: "hann",
		WindowHamming: "hamming", WindowBlackman: "blackman",
		WindowKind(99): "WindowKind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(k), got, want)
		}
	}
}

func TestWindowRectIsUnity(t *testing.T) {
	for _, v := range Window(WindowRect, 16) {
		if v != 1 {
			t.Fatalf("rect window should be all ones, got %v", v)
		}
	}
}

func TestWindowHannEndpoints(t *testing.T) {
	w := Window(WindowHann, 128)
	if !approxEq(w[0], 0, 1e-12) {
		t.Fatalf("periodic Hann should start at 0, got %v", w[0])
	}
	if !approxEq(w[64], 1, 1e-12) {
		t.Fatalf("periodic Hann midpoint should be 1, got %v", w[64])
	}
}

func TestWindowPanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("n=0", func() { Window(WindowHann, 0) })
	mustPanic("bad kind", func() { Window(WindowKind(42), 8) })
}

func TestApplyWindow(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	w := []float64{0.5, 0.5, 0.5, 0.5}
	got := ApplyWindow(x, w)
	want := []float64{0.5, 1, 1.5, 2}
	for i := range want {
		if !approxEq(got[i], want[i], 1e-12) {
			t.Fatalf("index %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestApplyWindowComplex(t *testing.T) {
	x := []complex128{1 + 1i, 2}
	w := []float64{2, 0.5}
	got := ApplyWindowComplex(x, w)
	if got[0] != 2+2i || got[1] != 1 {
		t.Fatalf("unexpected result %v", got)
	}
}

func TestApplyWindowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ApplyWindow(make([]float64, 3), make([]float64, 4))
}

func TestCoherentGain(t *testing.T) {
	if g := CoherentGain(Window(WindowRect, 10)); !approxEq(g, 1, 1e-12) {
		t.Fatalf("rect coherent gain = %v, want 1", g)
	}
	if g := CoherentGain(Window(WindowHann, 4096)); !approxEq(g, 0.5, 1e-3) {
		t.Fatalf("Hann coherent gain = %v, want ≈0.5", g)
	}
}

func TestNoiseBandwidth(t *testing.T) {
	if nb := NoiseBandwidth(Window(WindowRect, 64)); !approxEq(nb, 1, 1e-12) {
		t.Fatalf("rect ENBW = %v, want 1", nb)
	}
	if nb := NoiseBandwidth(Window(WindowHann, 4096)); !approxEq(nb, 1.5, 1e-2) {
		t.Fatalf("Hann ENBW = %v, want ≈1.5", nb)
	}
	if nb := NoiseBandwidth([]float64{0, 0}); !math.IsInf(nb, 1) {
		t.Fatalf("zero window ENBW should be +Inf, got %v", nb)
	}
}

func TestHannReducesSpectralLeakage(t *testing.T) {
	// A tone between bins leaks badly with a rect window; Hann should
	// concentrate more of the energy near the true bin.
	const n = 256
	const fs = 25600.0
	freq := 10.5 * fs / n // halfway between bins 10 and 11
	x := realTone(n, freq, fs, 1, 0)
	rectSpec := Magnitudes(FFTReal(append([]float64(nil), x...)))
	hann := ApplyWindow(append([]float64(nil), x...), Window(WindowHann, n))
	hannSpec := Magnitudes(FFTReal(hann))
	// Compare energy far from the tone (bins 30..n/2) relative to the peak.
	leak := func(spec []float64) float64 {
		peak := spec[10]
		if spec[11] > peak {
			peak = spec[11]
		}
		var far float64
		for k := 30; k < n/2; k++ {
			far += spec[k]
		}
		return far / peak
	}
	if leak(hannSpec) >= leak(rectSpec) {
		t.Fatalf("Hann leakage %v should beat rect %v", leak(hannSpec), leak(rectSpec))
	}
}
