package dsp

// Arena is a size-bucketed scratch allocator for the hot signal path. A
// checkout (Complex/Float) hands out a zeroed slice backed by a reusable
// buffer; Reset reclaims every slice checked out since the previous Reset.
// After a few iterations of a steady-state workload the arena stops touching
// the heap entirely: every checkout is served from a free bucket.
//
// Buckets are keyed by the power-of-two capacity that covers the request, so
// a workload that mixes a few recurring sizes (per-chirp sample counts, the
// range-FFT length, slow-time column heights) reuses a small, stable set of
// buffers rather than one per distinct length.
//
// Ownership rules (DESIGN.md "Memory model"): the holder of an Arena owns
// every slice it checks out until it calls Reset; after Reset those slices
// must not be touched. An Arena is NOT safe for concurrent use — concurrent
// hot loops get one arena per worker (see parallel.Pool.ForArena), each
// reset by the pool after every loop index.
type Arena struct {
	cx       bucket[complex128]
	fl       bucket[float64]
	resident int // bytes of backing arrays ever allocated by this arena
}

// NewArena returns an empty arena. The zero value is also ready to use.
func NewArena() *Arena { return &Arena{} }

// bucket holds the free and checked-out slices of one element type. Free
// slices are grouped by capacity (always a power of two); checked-out slices
// are remembered at full capacity so Reset can rebucket them.
type bucket[T any] struct {
	free map[int][][]T
	out  [][]T
}

// take returns a slice of length n (capacity NextPowerOfTwo(n)) from the
// free buckets, allocating a fresh buffer only when the bucket is empty.
func (b *bucket[T]) take(n int) (s []T, fresh bool) {
	k := NextPowerOfTwo(n)
	if lst := b.free[k]; len(lst) > 0 {
		s = lst[len(lst)-1]
		b.free[k] = lst[:len(lst)-1]
	} else {
		s = make([]T, k)
		fresh = true
	}
	b.out = append(b.out, s)
	return s[:n], fresh
}

// reset moves every checked-out slice back to its capacity bucket.
func (b *bucket[T]) reset() {
	if len(b.out) == 0 {
		return
	}
	if b.free == nil {
		b.free = make(map[int][][]T)
	}
	for _, s := range b.out {
		b.free[cap(s)] = append(b.free[cap(s)], s)
	}
	b.out = b.out[:0]
}

// Complex checks out a zeroed []complex128 of length n, valid until the next
// Reset. n <= 0 returns nil.
func (a *Arena) Complex(n int) []complex128 {
	if n <= 0 {
		return nil
	}
	s, fresh := a.cx.take(n)
	if fresh {
		a.resident += cap(s) * 16
	}
	clear(s)
	return s
}

// Float checks out a zeroed []float64 of length n, valid until the next
// Reset. n <= 0 returns nil.
func (a *Arena) Float(n int) []float64 {
	if n <= 0 {
		return nil
	}
	s, fresh := a.fl.take(n)
	if fresh {
		a.resident += cap(s) * 8
	}
	clear(s)
	return s
}

// Reset reclaims every slice checked out since the previous Reset. The
// caller must not touch those slices afterwards.
func (a *Arena) Reset() {
	a.cx.reset()
	a.fl.reset()
}

// HighWaterBytes reports the total bytes of backing arrays this arena has
// allocated. Buffers are never freed, so this is both the footprint and the
// high-water mark; on a steady-state workload it stabilizes after the first
// few iterations — a growing value is a leak (checkouts that outpace Resets
// or an unbounded spread of request sizes).
func (a *Arena) HighWaterBytes() int { return a.resident }

// Resize returns a slice of length n, reusing s's backing array when its
// capacity suffices and allocating (with power-of-two capacity, so repeated
// small growth settles quickly) otherwise. The contents are unspecified:
// callers must overwrite or clear every element they read. It is the
// grow-in-place primitive behind the persistent per-object scratch buffers
// (radar rows, decoder envelopes, exchange tables).
func Resize[T any](s []T, n int) []T {
	if n <= cap(s) {
		return s[:n]
	}
	return make([]T, n, NextPowerOfTwo(n))
}
