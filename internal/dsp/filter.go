package dsp

import (
	"fmt"
	"math"
)

// FIRFilter is a direct-form finite impulse response filter. The zero value
// is not usable; build one with NewLowPassFIR or from explicit taps.
type FIRFilter struct {
	taps  []float64
	state []float64
	pos   int
}

// NewFIRFilter builds a filter from explicit taps.
func NewFIRFilter(taps []float64) (*FIRFilter, error) {
	if len(taps) == 0 {
		return nil, fmt.Errorf("dsp: FIR filter needs at least one tap")
	}
	return &FIRFilter{
		taps:  append([]float64(nil), taps...),
		state: make([]float64, len(taps)),
	}, nil
}

// NewLowPassFIR designs a windowed-sinc low-pass FIR filter with the given
// cutoff frequency (Hz), sample rate fs (Hz) and tap count (odd counts give
// linear phase with an integer group delay). A Hamming window controls
// sidelobes. This models the envelope detector's internal low-pass filter.
func NewLowPassFIR(cutoff, fs float64, ntaps int) (*FIRFilter, error) {
	if ntaps <= 0 {
		return nil, fmt.Errorf("dsp: low-pass FIR needs ntaps > 0, got %d", ntaps)
	}
	if cutoff <= 0 || cutoff >= fs/2 {
		return nil, fmt.Errorf("dsp: low-pass cutoff %v Hz outside (0, fs/2=%v)", cutoff, fs/2)
	}
	taps := make([]float64, ntaps)
	fc := cutoff / fs
	mid := float64(ntaps-1) / 2
	var sum float64
	for i := range taps {
		x := float64(i) - mid
		var s float64
		if x == 0 {
			s = 2 * fc
		} else {
			s = math.Sin(2*math.Pi*fc*x) / (math.Pi * x)
		}
		// Hamming window.
		wnd := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(ntaps-1))
		if ntaps == 1 {
			wnd = 1
		}
		taps[i] = s * wnd
		sum += taps[i]
	}
	// Normalize to unity DC gain.
	for i := range taps {
		taps[i] /= sum
	}
	return NewFIRFilter(taps)
}

// Taps returns a copy of the filter taps.
func (f *FIRFilter) Taps() []float64 { return append([]float64(nil), f.taps...) }

// GroupDelay returns the filter's group delay in samples ((ntaps-1)/2 for the
// linear-phase designs produced here).
func (f *FIRFilter) GroupDelay() float64 { return float64(len(f.taps)-1) / 2 }

// Reset clears the filter state.
func (f *FIRFilter) Reset() {
	for i := range f.state {
		f.state[i] = 0
	}
	f.pos = 0
}

// Process filters one sample.
func (f *FIRFilter) Process(v float64) float64 {
	f.state[f.pos] = v
	var acc float64
	idx := f.pos
	for _, t := range f.taps {
		acc += t * f.state[idx]
		idx--
		if idx < 0 {
			idx = len(f.state) - 1
		}
	}
	f.pos++
	if f.pos == len(f.state) {
		f.pos = 0
	}
	return acc
}

// ProcessBlock filters a block of samples, returning a new slice. The filter
// state persists across calls, so a long signal may be fed in chunks.
func (f *FIRFilter) ProcessBlock(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = f.Process(v)
	}
	return out
}

// MovingAverage smooths x with a centered moving average of the given odd
// width, reflecting at the edges. width <= 1 returns a copy.
func MovingAverage(x []float64, width int) []float64 {
	return MovingAverageInto(nil, x, width)
}

// MovingAverageInto is MovingAverage writing into dst, which is grown as
// needed (pass the returned slice back in to reuse it). dst must not alias
// x: the smoothing reads x while writing dst.
func MovingAverageInto(dst, x []float64, width int) []float64 {
	out := Resize(dst, len(x))
	if width <= 1 || len(x) == 0 {
		copy(out, x)
		return out
	}
	half := width / 2
	for i := range x {
		var sum float64
		var n int
		for j := i - half; j <= i+half; j++ {
			k := j
			if k < 0 {
				k = -k
			}
			if k >= len(x) {
				k = 2*len(x) - 2 - k
			}
			if k < 0 || k >= len(x) {
				continue
			}
			sum += x[k]
			n++
		}
		out[i] = sum / float64(n)
	}
	return out
}

// RemoveDC subtracts the mean of x in place and returns x.
func RemoveDC(x []float64) []float64 {
	if len(x) == 0 {
		return x
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for i := range x {
		x[i] -= mean
	}
	return x
}

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	return sum / float64(len(x))
}

// Variance returns the population variance of x.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var acc float64
	for _, v := range x {
		d := v - m
		acc += d * d
	}
	return acc / float64(len(x))
}

// RMS returns the root-mean-square value of x.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var acc float64
	for _, v := range x {
		acc += v * v
	}
	return math.Sqrt(acc / float64(len(x)))
}
