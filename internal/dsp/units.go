package dsp

import "math"

// DB converts a power ratio to decibels. Non-positive ratios return -Inf.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// AmplitudeDB converts an amplitude ratio to decibels (20·log10).
func AmplitudeDB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(ratio)
}

// AmplitudeFromDB converts decibels to an amplitude ratio.
func AmplitudeFromDB(db float64) float64 {
	return math.Pow(10, db/20)
}

// DBmToWatts converts a power level in dBm to watts.
func DBmToWatts(dbm float64) float64 {
	return math.Pow(10, (dbm-30)/10)
}

// WattsToDBm converts a power level in watts to dBm. Non-positive powers
// return -Inf.
func WattsToDBm(w float64) float64 {
	if w <= 0 {
		return math.Inf(-1)
	}
	return 10*math.Log10(w) + 30
}

// Clamp restricts v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
