package dsp

// FFTAutocorr computes biased autocorrelations through the Wiener–Khinchin
// theorem: pad, forward real FFT, per-bin power, inverse real FFT. The
// direct O(n·maxLag) loop in AutocorrelationInto is a single serial
// accumulator chain — for the tag decoder's period search (n ≈ 30k samples,
// maxLag ≈ 1000) it is FP-latency-bound and an order of magnitude slower
// than the O(n log n) transform pair.
//
// The result differs from the direct sum only by FFT rounding (relative
// error ~1e-13 at these sizes); TestFFTAutocorrMatchesDirect pins the
// equivalence, and the decoder outputs that depend on it are golden-gated
// under the rel tolerance mode.
//
// The zero value is ready to use. An FFTAutocorr owns growable scratch, so
// it follows the usual single-threaded ownership contract: one instance per
// goroutine.
type FFTAutocorr struct {
	buf  []float64
	spec []complex128
}

// Into computes r[l] = Σ x[i]·x[i+l] / len(x) for l in [0, maxLag] into dst
// (grown as needed and returned), like AutocorrelationInto. The transform is
// padded to the next power of two at or above len(x)+maxLag+1, so the
// circular correlation of the padded signal equals the linear one on every
// requested lag.
func (a *FFTAutocorr) Into(dst, x []float64, maxLag int) []float64 {
	if maxLag >= len(x) {
		maxLag = len(x) - 1
	}
	if maxLag < 0 {
		return nil
	}
	n := len(x)
	m := NextPowerOfTwo(n + maxLag + 1)
	plan, err := RealPlanFor(m)
	if err != nil {
		panic(err) // unreachable: m is a power of two
	}
	a.buf = Resize(a.buf, m)
	copy(a.buf, x)
	clear(a.buf[n:])
	a.spec = Resize(a.spec, plan.SpectrumLen())
	plan.ForwardInto(a.spec, a.buf)
	for i, c := range a.spec {
		a.spec[i] = complex(real(c)*real(c)+imag(c)*imag(c), 0)
	}
	plan.InverseInto(a.buf, a.spec)
	r := Resize(dst, maxLag+1)
	inv := 1 / float64(n)
	for l := 0; l <= maxLag; l++ {
		r[l] = a.buf[l] * inv
	}
	return r
}
