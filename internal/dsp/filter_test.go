package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFIRFilterValidation(t *testing.T) {
	if _, err := NewFIRFilter(nil); err == nil {
		t.Fatal("empty taps should fail")
	}
}

func TestNewLowPassFIRValidation(t *testing.T) {
	if _, err := NewLowPassFIR(0, 1e6, 31); err == nil {
		t.Error("zero cutoff should fail")
	}
	if _, err := NewLowPassFIR(600e3, 1e6, 31); err == nil {
		t.Error("cutoff above Nyquist should fail")
	}
	if _, err := NewLowPassFIR(100e3, 1e6, 0); err == nil {
		t.Error("zero taps should fail")
	}
}

func TestLowPassFIRUnityDCGain(t *testing.T) {
	f, err := NewLowPassFIR(100e3, 1e6, 63)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, tap := range f.Taps() {
		sum += tap
	}
	if !approxEq(sum, 1, 1e-9) {
		t.Fatalf("DC gain %v, want 1", sum)
	}
}

func TestLowPassFIRPassesLowBlocksHigh(t *testing.T) {
	const fs = 1e6
	f, err := NewLowPassFIR(150e3, fs, 101)
	if err != nil {
		t.Fatal(err)
	}
	low := realTone(4000, 50e3, fs, 1, 0)
	high := realTone(4000, 400e3, fs, 1, 0)
	outLow := f.ProcessBlock(low)[200:]
	f.Reset()
	outHigh := f.ProcessBlock(high)[200:]
	if RMS(outLow) < 0.6 {
		t.Fatalf("passband tone attenuated too much: RMS %v", RMS(outLow))
	}
	if RMS(outHigh) > 0.05 {
		t.Fatalf("stopband tone leaked: RMS %v", RMS(outHigh))
	}
}

func TestFIRFilterStatePersistsAcrossBlocks(t *testing.T) {
	f1, _ := NewLowPassFIR(100e3, 1e6, 31)
	f2, _ := NewLowPassFIR(100e3, 1e6, 31)
	rng := rand.New(rand.NewSource(11))
	sig := make([]float64, 1000)
	for i := range sig {
		sig[i] = rng.NormFloat64()
	}
	whole := f1.ProcessBlock(sig)
	part := append(f2.ProcessBlock(sig[:500]), f2.ProcessBlock(sig[500:])...)
	for i := range whole {
		if !approxEq(whole[i], part[i], 1e-12) {
			t.Fatalf("sample %d differs: %v vs %v", i, whole[i], part[i])
		}
	}
}

func TestFIRFilterReset(t *testing.T) {
	f, _ := NewLowPassFIR(100e3, 1e6, 31)
	f.Process(123)
	f.Reset()
	// After reset, impulse response must match a fresh filter.
	g, _ := NewLowPassFIR(100e3, 1e6, 31)
	for i := 0; i < 40; i++ {
		in := 0.0
		if i == 0 {
			in = 1
		}
		if a, b := f.Process(in), g.Process(in); !approxEq(a, b, 1e-15) {
			t.Fatalf("impulse response differs at %d: %v vs %v", i, a, b)
		}
	}
}

func TestFIRGroupDelay(t *testing.T) {
	f, _ := NewLowPassFIR(100e3, 1e6, 41)
	if gd := f.GroupDelay(); !approxEq(gd, 20, 1e-12) {
		t.Fatalf("group delay %v, want 20", gd)
	}
}

func TestMovingAverageSmoothing(t *testing.T) {
	x := []float64{0, 0, 10, 0, 0}
	out := MovingAverage(x, 3)
	if !approxEq(out[2], 10.0/3, 1e-12) {
		t.Fatalf("center sample %v, want %v", out[2], 10.0/3)
	}
	if !approxEq(out[1], 10.0/3, 1e-12) {
		t.Fatalf("neighbor sample %v, want %v", out[1], 10.0/3)
	}
}

func TestMovingAverageWidthOneCopies(t *testing.T) {
	x := []float64{1, 2, 3}
	out := MovingAverage(x, 1)
	for i := range x {
		if out[i] != x[i] {
			t.Fatalf("width-1 moving average should copy input")
		}
	}
	out[0] = 99
	if x[0] == 99 {
		t.Fatal("output aliases input")
	}
}

func TestMovingAveragePreservesMeanProperty(t *testing.T) {
	f := func(seed int64, width uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 200)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		w := 1 + 2*(int(width)%5) // odd widths 1..9
		out := MovingAverage(x, w)
		// Reflection padding keeps the mean approximately unchanged.
		return math.Abs(Mean(out)-Mean(x)) < 0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveDC(t *testing.T) {
	x := []float64{5, 6, 7}
	RemoveDC(x)
	if !approxEq(Mean(x), 0, 1e-12) {
		t.Fatalf("mean after RemoveDC = %v", Mean(x))
	}
}

func TestStats(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || RMS(nil) != 0 {
		t.Fatal("empty-input stats should be 0")
	}
	x := []float64{1, 2, 3, 4}
	if !approxEq(Mean(x), 2.5, 1e-12) {
		t.Fatalf("mean %v", Mean(x))
	}
	if !approxEq(Variance(x), 1.25, 1e-12) {
		t.Fatalf("variance %v", Variance(x))
	}
	if !approxEq(RMS(x), math.Sqrt(7.5), 1e-12) {
		t.Fatalf("rms %v", RMS(x))
	}
}
