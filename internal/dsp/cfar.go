package dsp

import "fmt"

// CFAR implements cell-averaging constant-false-alarm-rate detection, the
// standard radar detector for picking targets out of a range profile whose
// noise/clutter floor varies with range. For each cell, the threshold is the
// mean of the training cells (excluding a guard band around the cell under
// test) scaled by the CFAR factor.
type CFAR struct {
	// Train is the number of training cells on each side.
	Train int
	// Guard is the number of guard cells on each side.
	Guard int
	// Factor scales the noise estimate into a threshold (linear power
	// ratio; ~10–15 gives low false-alarm rates for exponential noise).
	Factor float64
}

// NewCFAR builds a detector.
func NewCFAR(train, guard int, factor float64) (*CFAR, error) {
	if train < 1 {
		return nil, fmt.Errorf("dsp: CFAR needs at least 1 training cell, got %d", train)
	}
	if guard < 0 {
		return nil, fmt.Errorf("dsp: CFAR guard cells %d must be non-negative", guard)
	}
	if factor <= 1 {
		return nil, fmt.Errorf("dsp: CFAR factor %v must exceed 1", factor)
	}
	return &CFAR{Train: train, Guard: guard, Factor: factor}, nil
}

// Detect returns the indices of cells in the power profile x that exceed
// their locally estimated threshold and are local maxima, in ascending
// index order.
func (c *CFAR) Detect(x []float64) []int {
	var out []int
	n := len(x)
	for i := 0; i < n; i++ {
		var sum float64
		var cnt int
		lo := i - c.Guard - c.Train
		hi := i + c.Guard + c.Train
		for j := lo; j <= hi; j++ {
			if j < 0 || j >= n {
				continue
			}
			if j >= i-c.Guard && j <= i+c.Guard {
				continue // guard band including the cell under test
			}
			sum += x[j]
			cnt++
		}
		if cnt == 0 {
			continue
		}
		thr := c.Factor * sum / float64(cnt)
		if x[i] <= thr {
			continue
		}
		// Local-maximum condition suppresses shoulder detections.
		if i > 0 && x[i-1] > x[i] {
			continue
		}
		if i < n-1 && x[i+1] > x[i] {
			continue
		}
		out = append(out, i)
	}
	return out
}
