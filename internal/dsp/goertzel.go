package dsp

import (
	"fmt"
	"math"
)

// Goertzel evaluates the DFT of x at a single normalized frequency
// freq/fs ∈ [0, 0.5] and returns the complex bin value, matching
// DFT(x)[k] for k = freq·len(x)/fs when that is an integer.
//
// The Goertzel algorithm is the low-power point-by-point DFT evaluator the
// paper proposes for the tag MCU (§3.2.2): the tag only cares about a handful
// of candidate beat frequencies, so evaluating those bins directly is much
// cheaper than a full FFT.
func Goertzel(x []float64, freq, fs float64) complex128 {
	return GoertzelWith(x, NewGoertzelCoeff(freq, fs))
}

// GoertzelCoeff holds the per-frequency constants of the Goertzel
// recurrence — the recurrence coefficient and the finalization cos/sin —
// so scans that evaluate the same tone over many windows (the radar's
// per-range-bin signature sweep, the FSK bit demodulator) hoist the trig
// out of their inner loops. GoertzelWith(x, NewGoertzelCoeff(f, fs)) is
// bit-identical to Goertzel(x, f, fs): same constants, same recurrence.
type GoertzelCoeff struct {
	coeff, cw, sw float64
}

// NewGoertzelCoeff precomputes the Goertzel constants for one normalized
// frequency freq/fs.
func NewGoertzelCoeff(freq, fs float64) GoertzelCoeff {
	w := 2 * math.Pi * freq / fs
	cw := math.Cos(w)
	return GoertzelCoeff{coeff: 2 * cw, cw: cw, sw: math.Sin(w)}
}

// GoertzelWith evaluates the single-bin DFT with precomputed constants; see
// Goertzel.
func GoertzelWith(x []float64, c GoertzelCoeff) complex128 {
	if len(x) == 0 {
		return 0
	}
	var s0, s1, s2 float64
	for _, v := range x {
		s0 = v + c.coeff*s1 - s2
		s2 = s1
		s1 = s0
	}
	// Standard non-integer-k finalization.
	return complex(s1*c.cw-s2, s1*c.sw)
}

// GoertzelPowerWith returns |GoertzelWith(x, c)|².
func GoertzelPowerWith(x []float64, c GoertzelCoeff) float64 {
	z := GoertzelWith(x, c)
	return real(z)*real(z) + imag(z)*imag(z)
}

// GoertzelPower returns |Goertzel(x, freq, fs)|².
func GoertzelPower(x []float64, freq, fs float64) float64 {
	c := Goertzel(x, freq, fs)
	return real(c)*real(c) + imag(c)*imag(c)
}

// GoertzelBank evaluates the signal power at a fixed set of candidate
// frequencies. It mirrors the tag decoder's working set: one frequency per
// CSSK symbol. A bank is safe for concurrent use.
type GoertzelBank struct {
	freqs []float64
	fs    float64
}

// NewGoertzelBank builds a bank for the given candidate frequencies (Hz) at
// sample rate fs. Frequencies must lie in (0, fs/2) to be unambiguous.
func NewGoertzelBank(freqs []float64, fs float64) (*GoertzelBank, error) {
	if fs <= 0 {
		return nil, fmt.Errorf("dsp: GoertzelBank sample rate %v must be positive", fs)
	}
	if len(freqs) == 0 {
		return nil, fmt.Errorf("dsp: GoertzelBank needs at least one frequency")
	}
	for _, f := range freqs {
		if f <= 0 || f >= fs/2 {
			return nil, fmt.Errorf("dsp: GoertzelBank frequency %v Hz outside (0, fs/2=%v)", f, fs/2)
		}
	}
	b := &GoertzelBank{freqs: append([]float64(nil), freqs...), fs: fs}
	return b, nil
}

// Frequencies returns the bank's candidate frequencies.
func (b *GoertzelBank) Frequencies() []float64 {
	return append([]float64(nil), b.freqs...)
}

// Powers evaluates |X(f)|² for every candidate frequency over the window x.
func (b *GoertzelBank) Powers(x []float64) []float64 {
	out := make([]float64, len(b.freqs))
	b.PowersInto(out, x)
	return out
}

// PowersInto writes per-frequency powers into dst, which must have
// len(dst) == number of bank frequencies.
func (b *GoertzelBank) PowersInto(dst []float64, x []float64) {
	if len(dst) != len(b.freqs) {
		panic("dsp: GoertzelBank PowersInto length mismatch")
	}
	for i, f := range b.freqs {
		dst[i] = GoertzelPower(x, f, b.fs)
	}
}

// Strongest returns the index of the candidate frequency with the highest
// power over x, together with that power and the runner-up power (useful as
// a decision-confidence margin).
func (b *GoertzelBank) Strongest(x []float64) (idx int, power, runnerUp float64) {
	best, second := math.Inf(-1), math.Inf(-1)
	bestIdx := 0
	for i, f := range b.freqs {
		p := GoertzelPower(x, f, b.fs)
		switch {
		case p > best:
			second = best
			best = p
			bestIdx = i
		case p > second:
			second = p
		}
	}
	return bestIdx, best, second
}

// SlidingDFT maintains a single-bin DFT over a sliding window using the
// sliding Goertzel recurrence (Chicharo & Kilani 1996, cited by the paper).
// Push adds a sample and evicts the oldest once the window is full.
type SlidingDFT struct {
	window []float64
	head   int
	filled int
	freq   float64
	fs     float64
}

// NewSlidingDFT creates a sliding single-bin DFT of the given window size.
func NewSlidingDFT(windowSize int, freq, fs float64) (*SlidingDFT, error) {
	if windowSize <= 0 {
		return nil, fmt.Errorf("dsp: SlidingDFT window size %d must be positive", windowSize)
	}
	if fs <= 0 {
		return nil, fmt.Errorf("dsp: SlidingDFT sample rate %v must be positive", fs)
	}
	return &SlidingDFT{window: make([]float64, windowSize), freq: freq, fs: fs}, nil
}

// Push adds one sample to the window.
func (s *SlidingDFT) Push(v float64) {
	s.window[s.head] = v
	s.head = (s.head + 1) % len(s.window)
	if s.filled < len(s.window) {
		s.filled++
	}
}

// Full reports whether the window has seen at least windowSize samples.
func (s *SlidingDFT) Full() bool { return s.filled == len(s.window) }

// Power evaluates the bin power over the current window contents in their
// arrival order. For simplicity and robustness this re-evaluates Goertzel
// over the window; the window sizes used by the tag (≤ a few thousand
// samples) keep this cheap while avoiding the numeric drift of the pure
// recursive update.
func (s *SlidingDFT) Power() float64 {
	n := s.filled
	buf := make([]float64, n)
	start := s.head - s.filled
	if start < 0 {
		start += len(s.window)
	}
	for i := 0; i < n; i++ {
		buf[i] = s.window[(start+i)%len(s.window)]
	}
	return GoertzelPower(buf, s.freq, s.fs)
}
