package dsp

import (
	"fmt"
	"math"
	"sync"
)

// RealFFTPlan transforms real-valued signals of a fixed power-of-two size n
// through a complex FFT of size n/2: the even/odd samples are packed into
// the real/imaginary lanes of one half-size complex signal, transformed, and
// untwiddled into the packed half-spectrum H[0..n/2]. For a real input the
// upper half of the full spectrum is the conjugate mirror of the lower half,
// so the half-spectrum carries everything at roughly half the flops and half
// the memory traffic of FFTReal — exactly the asymmetry the radar IF chain
// and the tag's real ADC captures leave on the table with a complex FFT.
//
// A plan is immutable after construction and safe for concurrent use; the
// transform scratch lives in the caller's dst buffer.
type RealFFTPlan struct {
	n    int
	half *FFTPlan     // complex plan of size n/2
	tw   []complex128 // exp(-2πi k/n) for k in [0, n/4]
}

// NewRealFFTPlan builds a plan for real transforms of size n (a power of
// two, at least 2).
func NewRealFFTPlan(n int) (*RealFFTPlan, error) {
	if !IsPowerOfTwo(n) || n < 2 {
		return nil, fmt.Errorf("dsp: real FFT size %d is not a power of two >= 2", n)
	}
	half, err := NewFFTPlan(n / 2)
	if err != nil {
		return nil, err
	}
	p := &RealFFTPlan{n: n, half: half}
	p.tw = make([]complex128, n/4+1)
	for k := range p.tw {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.tw[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	return p, nil
}

// Size returns the real transform size n.
func (p *RealFFTPlan) Size() int { return p.n }

// SpectrumLen returns the packed half-spectrum length n/2 + 1.
func (p *RealFFTPlan) SpectrumLen() int { return p.n/2 + 1 }

// realPlanCache mirrors planCache for real transforms: one immutable plan
// per size, shared across workers.
var realPlanCache sync.Map // int → *RealFFTPlan

// RealPlanFor returns the cached real-FFT plan for size n (a power of two),
// building and caching it on first use.
func RealPlanFor(n int) (*RealFFTPlan, error) {
	if p, ok := realPlanCache.Load(n); ok {
		return p.(*RealFFTPlan), nil
	}
	p, err := NewRealFFTPlan(n)
	if err != nil {
		return nil, err
	}
	actual, _ := realPlanCache.LoadOrStore(n, p)
	return actual.(*RealFFTPlan), nil
}

// ForwardInto computes the packed half-spectrum of the real signal src into
// dst: dst[k] equals FFT(src)[k] for k in [0, n/2]; bins above n/2 are the
// conjugate mirror and are not stored. len(src) must be the plan size and
// len(dst) must be SpectrumLen(). dst doubles as the working buffer, so no
// other scratch is needed; src is not modified.
func (p *RealFFTPlan) ForwardInto(dst []complex128, src []float64) {
	m := p.n / 2
	if len(src) != p.n || len(dst) != m+1 {
		panic(fmt.Sprintf("dsp: real FFT size mismatch: plan %d, src %d, dst %d", p.n, len(src), len(dst)))
	}
	// Pack adjacent sample pairs into one half-size complex signal.
	z := dst[:m]
	for j := 0; j < m; j++ {
		z[j] = complex(src[2*j], src[2*j+1])
	}
	p.half.execute(z, false)
	// Untwiddle: with Z = FFT(z), the even/odd sub-spectra are
	//   Xe[k] = (Z[k] + conj(Z[m−k]))/2,  Xo[k] = −i·(Z[k] − conj(Z[m−k]))/2
	// and H[k] = Xe[k] + e^{−2πik/n}·Xo[k]. Indices k and m−k exchange
	// conjugate roles, so the loop rewrites both ends of dst in place.
	z0 := z[0]
	dst[0] = complex(real(z0)+imag(z0), 0)
	dst[m] = complex(real(z0)-imag(z0), 0)
	for k := 1; 2*k <= m; k++ {
		zk, zj := dst[k], dst[m-k]
		xe := complex(0.5*(real(zk)+real(zj)), 0.5*(imag(zk)-imag(zj)))
		xo := complex(0.5*(imag(zk)+imag(zj)), 0.5*(real(zj)-real(zk)))
		t := p.tw[k] * xo
		hk := xe + t
		hj := complex(real(xe)-real(t), -(imag(xe) - imag(t)))
		dst[k] = hk
		if m-k != k {
			dst[m-k] = hj
		}
	}
}

// InverseInto reconstructs the real signal (with 1/n normalization) from a
// packed half-spectrum: dst[i] = IFFT(H_full)[i] where H_full mirrors src
// conjugate-symmetrically. len(dst) must be the plan size and len(src) must
// be SpectrumLen(). src is consumed as the working buffer — its contents
// are overwritten — so round trips need no extra scratch.
func (p *RealFFTPlan) InverseInto(dst []float64, src []complex128) {
	m := p.n / 2
	if len(dst) != p.n || len(src) != m+1 {
		panic(fmt.Sprintf("dsp: real FFT size mismatch: plan %d, dst %d, src %d", p.n, len(dst), len(src)))
	}
	// Retwiddle the half-spectrum back into the packed complex signal:
	// Z[k] = Xe[k] + i·Xo[k] with Xe[k] = (H[k] + conj(H[m−k]))/2 and
	// Xo[k] = e^{+2πik/n}·(H[k] − conj(H[m−k]))/2.
	h0, hm := src[0], src[m]
	src[0] = complex(0.5*(real(h0)+real(hm)), 0.5*(real(h0)-real(hm)))
	for k := 1; 2*k <= m; k++ {
		hk, hj := src[k], src[m-k]
		xe := complex(0.5*(real(hk)+real(hj)), 0.5*(imag(hk)-imag(hj)))
		d := complex(0.5*(real(hk)-real(hj)), 0.5*(imag(hk)+imag(hj)))
		w := p.tw[k] // conj(e^{+2πik/n}) — conjugate once below
		xo := complex(real(w)*real(d)+imag(w)*imag(d), real(w)*imag(d)-imag(w)*real(d))
		src[k] = complex(real(xe)-imag(xo), imag(xe)+real(xo))
		if m-k != k {
			src[m-k] = complex(real(xe)+imag(xo), -imag(xe)+real(xo))
		}
	}
	z := src[:m]
	p.half.execute(z, true)
	scale := 1 / float64(m)
	for j := 0; j < m; j++ {
		dst[2*j] = real(z[j]) * scale
		dst[2*j+1] = imag(z[j]) * scale
	}
}
