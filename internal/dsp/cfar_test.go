package dsp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCFARValidation(t *testing.T) {
	if _, err := NewCFAR(0, 2, 10); err == nil {
		t.Error("zero training cells should fail")
	}
	if _, err := NewCFAR(8, -1, 10); err == nil {
		t.Error("negative guard should fail")
	}
	if _, err := NewCFAR(8, 2, 1); err == nil {
		t.Error("factor <= 1 should fail")
	}
}

func TestCFARDetectsTargetsAboveFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 256)
	for i := range x {
		e := rng.NormFloat64()
		x[i] = e * e // exponential-ish noise floor
	}
	targets := []int{40, 120, 200}
	for _, b := range targets {
		x[b] = 200
		x[b-1], x[b+1] = 60, 60 // shoulders
	}
	cfar, err := NewCFAR(12, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := cfar.Detect(x)
	if len(got) != len(targets) {
		t.Fatalf("detected %v, want %v", got, targets)
	}
	for i, b := range targets {
		if got[i] != b {
			t.Fatalf("detected %v, want %v", got, targets)
		}
	}
}

func TestCFARAdaptsToVaryingFloor(t *testing.T) {
	// A target that would clear a global threshold is rejected when the
	// local floor is high — the point of CFAR.
	x := make([]float64, 200)
	for i := range x {
		if i < 100 {
			x[i] = 1 // quiet region
		} else {
			x[i] = 50 // hot clutter region
		}
	}
	x[50] = 30  // strong relative to quiet floor
	x[150] = 80 // only 1.6x the hot floor
	cfar, _ := NewCFAR(10, 2, 5)
	got := cfar.Detect(x)
	found := map[int]bool{}
	for _, b := range got {
		found[b] = true
	}
	if !found[50] {
		t.Fatalf("target at 50 missed: %v", got)
	}
	if found[150] {
		t.Fatalf("sub-threshold target at 150 should be rejected: %v", got)
	}
}

func TestCFARFalseAlarmRateLow(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 512)
		for i := range x {
			e := rng.NormFloat64()
			x[i] = e * e
		}
		cfar, _ := NewCFAR(16, 2, 14)
		// Pure noise: expect at most a couple of false alarms.
		return len(cfar.Detect(x)) <= 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCFAREmptyAndTinyInput(t *testing.T) {
	cfar, _ := NewCFAR(4, 1, 10)
	if got := cfar.Detect(nil); got != nil {
		t.Fatal("nil input should detect nothing")
	}
	if got := cfar.Detect([]float64{5}); len(got) != 0 {
		t.Fatalf("single cell has no training data: %v", got)
	}
}
