package dsp

import (
	"fmt"
	"math"
	"sort"
)

// LinearInterp evaluates the piecewise-linear interpolant through the sample
// points (xs[i], ys[i]) at query point x. xs must be strictly increasing.
// Queries outside [xs[0], xs[len-1]] are clamped to the end values, which is
// the behaviour wanted when rescaling range profiles (Fig. 7): bins beyond
// a shorter chirp's maximum range saturate rather than extrapolate.
func LinearInterp(xs, ys []float64, x float64) float64 {
	if len(xs) != len(ys) {
		panic("dsp: LinearInterp length mismatch")
	}
	if len(xs) == 0 {
		panic("dsp: LinearInterp requires at least one point")
	}
	if x <= xs[0] {
		return ys[0]
	}
	n := len(xs)
	if x >= xs[n-1] {
		return ys[n-1]
	}
	// Find the first index with xs[i] > x.
	i := sort.SearchFloat64s(xs, x)
	if i == 0 {
		return ys[0]
	}
	x0, x1 := xs[i-1], xs[i]
	y0, y1 := ys[i-1], ys[i]
	if x1 == x0 {
		return y0
	}
	t := (x - x0) / (x1 - x0)
	return y0 + t*(y1-y0)
}

// ResampleLinear resamples the uniformly spaced signal ys (samples at
// srcX[i] = srcStart + i·srcStep) onto the query grid dstX using pairwise
// linear interpolation, writing the result into a new slice.
func ResampleLinear(ys []float64, srcStart, srcStep float64, dstX []float64) []float64 {
	return ResampleLinearInto(make([]float64, len(dstX)), ys, srcStart, srcStep, dstX)
}

// ResampleLinearInto is ResampleLinear writing into dst, which must have
// length len(dstX) and must not alias ys. It returns dst.
func ResampleLinearInto(dst, ys []float64, srcStart, srcStep float64, dstX []float64) []float64 {
	if srcStep <= 0 {
		panic(fmt.Sprintf("dsp: ResampleLinear requires srcStep > 0, got %v", srcStep))
	}
	if len(dst) != len(dstX) {
		panic("dsp: ResampleLinearInto length mismatch")
	}
	out := dst
	n := len(ys)
	if n == 0 {
		clear(out)
		return out
	}
	for i, x := range dstX {
		pos := (x - srcStart) / srcStep
		switch {
		case pos <= 0:
			out[i] = ys[0]
		case pos >= float64(n-1):
			out[i] = ys[n-1]
		default:
			j := int(pos)
			t := pos - float64(j)
			out[i] = ys[j] + t*(ys[j+1]-ys[j])
		}
	}
	return out
}

// ResampleCubic resamples the uniformly spaced signal ys (samples at
// srcX[i] = srcStart + i·srcStep) onto the query grid dstX using Catmull-Rom
// cubic interpolation, clamping at the edges. Compared to linear
// interpolation the reconstruction error on smooth spectra drops from
// O(Δ²) to O(Δ⁴) — which matters when resampled strong-clutter profiles are
// subtracted across chirps and the residue must stay below a weak tag echo.
func ResampleCubic(ys []float64, srcStart, srcStep float64, dstX []float64) []float64 {
	return ResampleCubicInto(make([]float64, len(dstX)), ys, srcStart, srcStep, dstX)
}

// ResampleCubicInto is ResampleCubic writing into dst, which must have
// length len(dstX) and must not alias ys. It returns dst. This is the
// per-chirp IF-correction primitive, so the hot path feeds it worker-arena
// scratch instead of allocating two NFFT-sized vectors per chirp.
func ResampleCubicInto(dst, ys []float64, srcStart, srcStep float64, dstX []float64) []float64 {
	if srcStep <= 0 {
		panic(fmt.Sprintf("dsp: ResampleCubic requires srcStep > 0, got %v", srcStep))
	}
	if len(dst) != len(dstX) {
		panic("dsp: ResampleCubicInto length mismatch")
	}
	out := dst
	n := len(ys)
	if n == 0 {
		clear(out)
		return out
	}
	at := func(i int) float64 {
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return ys[i]
	}
	for i, x := range dstX {
		pos := (x - srcStart) / srcStep
		switch {
		case pos <= 0:
			out[i] = ys[0]
		case pos >= float64(n-1):
			out[i] = ys[n-1]
		default:
			j := int(pos)
			t := pos - float64(j)
			p0, p1, p2, p3 := at(j-1), at(j), at(j+1), at(j+2)
			out[i] = p1 + 0.5*t*(p2-p0+t*(2*p0-5*p1+4*p2-p3+t*(3*(p1-p2)+p3-p0)))
		}
	}
	return out
}

// ParabolicPeak refines a discrete spectrum peak at index k using the
// three-point parabolic (quadratic) interpolation over mags[k-1..k+1].
// It returns the sub-bin offset δ ∈ [-0.5, 0.5] and the interpolated peak
// magnitude. Border peaks return δ=0. This is what turns FFT-bin range
// resolution into the paper's centimeter-level localization.
func ParabolicPeak(mags []float64, k int) (delta, peak float64) {
	if k <= 0 || k >= len(mags)-1 {
		if k < 0 || k >= len(mags) {
			panic(fmt.Sprintf("dsp: ParabolicPeak index %d out of range [0,%d)", k, len(mags)))
		}
		return 0, mags[k]
	}
	a, b, c := mags[k-1], mags[k], mags[k+1]
	den := a - 2*b + c
	if den == 0 {
		return 0, b
	}
	delta = 0.5 * (a - c) / den
	if delta > 0.5 {
		delta = 0.5
	} else if delta < -0.5 {
		delta = -0.5
	}
	peak = b - 0.25*(a-c)*delta
	return delta, peak
}

// MaxIndex returns the index of the largest element of x (first occurrence)
// and its value. It panics on empty input.
func MaxIndex(x []float64) (int, float64) {
	if len(x) == 0 {
		panic("dsp: MaxIndex on empty slice")
	}
	idx, best := 0, x[0]
	for i, v := range x[1:] {
		if v > best {
			best = v
			idx = i + 1
		}
	}
	return idx, best
}

// MaxIndexRange returns the index of the largest element within x[lo:hi]
// (half-open) and its value, in coordinates of x. It panics if the range is
// empty or out of bounds.
func MaxIndexRange(x []float64, lo, hi int) (int, float64) {
	if lo < 0 || hi > len(x) || lo >= hi {
		panic(fmt.Sprintf("dsp: MaxIndexRange [%d,%d) invalid for length %d", lo, hi, len(x)))
	}
	idx, best := lo, x[lo]
	for i := lo + 1; i < hi; i++ {
		if x[i] > best {
			best = x[i]
			idx = i
		}
	}
	return idx, best
}

// Peak describes a local maximum found by FindPeaks.
type Peak struct {
	Index int     // sample index of the maximum
	Value float64 // value at the maximum
}

// FindPeaks returns all strict local maxima of x whose value is at least
// threshold, in descending value order.
func FindPeaks(x []float64, threshold float64) []Peak {
	var peaks []Peak
	for i := 1; i < len(x)-1; i++ {
		if x[i] >= threshold && x[i] > x[i-1] && x[i] >= x[i+1] {
			peaks = append(peaks, Peak{Index: i, Value: x[i]})
		}
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].Value > peaks[j].Value })
	return peaks
}

// Autocorrelation returns the biased autocorrelation of x for lags
// 0..maxLag inclusive: r[l] = Σ x[i]·x[i+l] / n.
func Autocorrelation(x []float64, maxLag int) []float64 {
	return AutocorrelationInto(nil, x, maxLag)
}

// AutocorrelationInto is Autocorrelation writing into dst, which is grown as
// needed (pass the returned slice back in to reuse it). dst must not alias
// x.
func AutocorrelationInto(dst, x []float64, maxLag int) []float64 {
	if maxLag >= len(x) {
		maxLag = len(x) - 1
	}
	if maxLag < 0 {
		return nil
	}
	n := float64(len(x))
	r := Resize(dst, maxLag+1)
	for lag := 0; lag <= maxLag; lag++ {
		var acc float64
		for i := 0; i+lag < len(x); i++ {
			acc += x[i] * x[i+lag]
		}
		r[lag] = acc / n
	}
	return r
}

// DominantPeriod estimates the period (in samples) of a periodic signal by
// locating the highest autocorrelation peak at a lag in [minLag, maxLag].
// It refines the integer lag with parabolic interpolation and returns the
// fractional period. Returns 0 if no peak exists in the range.
func DominantPeriod(x []float64, minLag, maxLag int) float64 {
	if minLag < 1 {
		minLag = 1
	}
	r := Autocorrelation(x, maxLag+1)
	if len(r) <= minLag+1 {
		return 0
	}
	hi := maxLag
	if hi > len(r)-2 {
		hi = len(r) - 2
	}
	bestLag, bestVal := 0, math.Inf(-1)
	for lag := minLag; lag <= hi; lag++ {
		if r[lag] > r[lag-1] && r[lag] >= r[lag+1] && r[lag] > bestVal {
			bestLag, bestVal = lag, r[lag]
		}
	}
	if bestLag == 0 {
		return 0
	}
	delta, _ := ParabolicPeak(r, bestLag)
	return float64(bestLag) + delta
}
