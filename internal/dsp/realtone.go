package dsp

import "math"

// RealToneEnergy returns the energy of the least-squares projection of x
// onto the two-dimensional subspace spanned by cos(2πft) and sin(2πft) at
// sample rate fs — the exact matched-filter statistic for a real sinusoid
// of unknown amplitude and phase.
//
// For short windows (a few cycles), the plain periodogram |Σx·e^(-jωn)|² is
// biased by the tone's negative-frequency image; solving the 2×2 normal
// equations accounts for the non-orthogonality of cos and sin and removes
// that bias. This matters for the tag decoder, where a 20 µs chirp holds
// only ~5 beat cycles and adjacent CSSK symbols sit a fraction of a Fourier
// bin apart.
func RealToneEnergy(x []float64, freq, fs float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	w := 2 * math.Pi * freq / fs
	sinW, cosW := math.Sin(w), math.Cos(w)
	// Iterate the angle with a rotation recurrence: one sin/cos call total.
	c, s := 1.0, 0.0 // cos(0), sin(0)
	var xc, xs, ccc, css, ccs float64
	for _, v := range x {
		xc += v * c
		xs += v * s
		ccc += c * c
		css += s * s
		ccs += c * s
		c, s = c*cosW-s*sinW, s*cosW+c*sinW
	}
	det := ccc*css - ccs*ccs
	if math.Abs(det) < 1e-12 {
		// Degenerate basis (freq ≈ 0 or fs/2): fall back to the 1-D cos
		// projection.
		if ccc <= 0 {
			return 0
		}
		return xc * xc / ccc
	}
	a := (css*xc - ccs*xs) / det
	b := (ccc*xs - ccs*xc) / det
	return a*xc + b*xs
}
