package dsp

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzSignal deals raw fuzz bytes out as float64 samples. Lengths are
// arbitrary — zero, odd, one off a power of two — and values include NaN,
// infinities, denormals, and saturated magnitudes.
func fuzzSignal(data []byte) []float64 {
	x := make([]float64, len(data)/8)
	for i := range x {
		x[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return x
}

func seedBytes(x []float64) []byte {
	out := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func finiteBounded(x []float64, bound float64) (float64, bool) {
	maxAbs := 0.0
	for _, v := range x {
		if !(math.Abs(v) <= bound) { // catches NaN too
			return 0, false
		}
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	return maxAbs, true
}

// FuzzRealFFT feeds arbitrary signals — any length, any float64 bit
// pattern — through the real-FFT fast path. The transform must never panic;
// for finite, magnitude-bounded inputs the Forward→Inverse round trip must
// reproduce the (padded) signal and the half-spectrum must agree with the
// full complex FFT.
func FuzzRealFFT(f *testing.F) {
	f.Add([]byte{})                                           // zero length
	f.Add(seedBytes([]float64{1}))                            // length 1
	f.Add(seedBytes(make([]float64, 7)))                      // pow2 − 1
	f.Add(seedBytes([]float64{1, -2, 3, -4, 5, -6, 7, -8}))   // exact pow2
	f.Add(seedBytes(make([]float64, 9)))                      // pow2 + 1
	f.Add(seedBytes([]float64{5e-324, -5e-324, 1e-310, 0}))   // denormals
	f.Add(seedBytes([]float64{1e308, -1e308, 1e300, -1e300})) // saturated
	f.Add(seedBytes([]float64{math.Inf(1), math.NaN(), math.Inf(-1)}))
	odd := make([]float64, 33) // odd-ish length above one radix-2 stage
	for i := range odd {
		odd[i] = math.Sin(float64(i))
	}
	f.Add(seedBytes(odd))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			data = data[:1<<16]
		}
		x := fuzzSignal(data)
		if len(x) == 0 {
			return
		}
		n := max(NextPowerOfTwo(len(x)), 2)
		plan, err := RealPlanFor(n)
		if err != nil {
			t.Fatalf("RealPlanFor(%d): %v", n, err)
		}
		padded := make([]float64, n)
		copy(padded, x)
		spec := make([]complex128, plan.SpectrumLen())
		plan.ForwardInto(spec, padded) // must not panic for any values

		maxAbs, ok := finiteBounded(x, 1e150)
		if !ok {
			return // NaN/Inf/overflow-prone input: no-panic is the contract
		}
		// Half-spectrum vs full complex FFT. The 1e-300 floor absorbs the
		// fixed-quantum rounding of subnormal inputs, where relative
		// tolerances are meaningless.
		full := FFTReal(padded)
		scale := float64(n) * maxAbs // ≥ max spectrum magnitude
		for k := 0; k <= n/2; k++ {
			if d := math.Hypot(real(spec[k]-full[k]), imag(spec[k]-full[k])); d > 1e-10*scale+1e-300 {
				t.Fatalf("n=%d bin %d: rFFT %v, FFT %v", n, k, spec[k], full[k])
			}
		}
		// Round trip.
		back := make([]float64, n)
		plan.InverseInto(back, spec)
		for i := range padded {
			if math.Abs(back[i]-padded[i]) > 1e-10*maxAbs+1e-300 {
				t.Fatalf("n=%d sample %d: round trip %v, want %v", n, i, back[i], padded[i])
			}
		}
	})
}

// FuzzGoertzelBin drives the single-bin demodulator with arbitrary signals
// and an arbitrary bin index. It must never panic; for finite bounded
// inputs at integer bins it must agree with the FFT bin power, and the
// hoisted-coefficient form must be bit-identical to the plain call.
func FuzzGoertzelBin(f *testing.F) {
	f.Add(uint16(0), []byte{})
	f.Add(uint16(1), seedBytes([]float64{1}))
	f.Add(uint16(3), seedBytes(make([]float64, 7)))
	f.Add(uint16(2), seedBytes([]float64{1, -1, 1, -1, 1, -1, 1, -1}))
	f.Add(uint16(5), seedBytes(make([]float64, 9)))
	f.Add(uint16(1), seedBytes([]float64{5e-324, 1e-310, -5e-324, 0}))
	f.Add(uint16(7), seedBytes([]float64{1e154, -1e154, 1e150}))
	f.Add(uint16(9), seedBytes([]float64{math.NaN(), math.Inf(1)}))

	f.Fuzz(func(t *testing.T, bin uint16, data []byte) {
		if len(data) > 1<<14 {
			data = data[:1<<14]
		}
		x := fuzzSignal(data)
		const fs = 4e6
		n := max(NextPowerOfTwo(max(len(x), 1)), 2)
		k := int(bin) % (n/2 + 1)
		freq := float64(k) * fs / float64(n)

		c := NewGoertzelCoeff(freq, fs)
		a := Goertzel(x, freq, fs) // must not panic for any values
		b := GoertzelWith(x, c)
		if math.Float64bits(real(a)) != math.Float64bits(real(b)) ||
			math.Float64bits(imag(a)) != math.Float64bits(imag(b)) {
			t.Fatalf("Goertzel %v != GoertzelWith %v", a, b)
		}

		maxAbs, ok := finiteBounded(x, 1e100)
		if !ok || len(x) == 0 || k == 0 {
			return
		}
		padded := make([]float64, n)
		copy(padded, x)
		spec := FFTReal(padded)
		want := real(spec[k])*real(spec[k]) + imag(spec[k])*imag(spec[k])
		got := GoertzelPower(padded, freq, fs)
		// The recurrence's intermediates can resonate up to ~n·maxAbs, so the
		// power comparison is smoke-level: it still catches wrong-bin and
		// wrong-finalization bugs, which shift power by O(1) fractions.
		lim := float64(n) * maxAbs
		if tol := 1e-9 * lim * lim; math.Abs(got-want) > tol {
			t.Fatalf("n=%d k=%d: Goertzel power %v, FFT bin power %v (tol %g)", n, k, got, want, tol)
		}
	})
}
