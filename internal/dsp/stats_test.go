package dsp

import "testing"

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{7}, 7},
		{[]float64{3, 1}, 3}, // upper median of an even count
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 2, 1, 3}, 3},
		{[]float64{-1, -5, -3}, -3},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{9, 1, 5, 3}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 || in[3] != 3 {
		t.Fatalf("Median mutated its input: %v", in)
	}
}

func TestPlanForCachesBySize(t *testing.T) {
	p1, err := PlanFor(256)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanFor(256)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("PlanFor returned distinct plans for the same size")
	}
	if _, err := PlanFor(100); err == nil {
		t.Fatal("PlanFor accepted a non-power-of-two size")
	}
}
