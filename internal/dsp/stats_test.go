package dsp

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{}, 0},
		{[]float64{7}, 7},
		{[]float64{3, 1}, 3}, // upper median of an even count
		{[]float64{5, 1, 3}, 3},
		{[]float64{4, 2, 1, 3}, 3},
		{[]float64{-1, -5, -3}, -3},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{9, 1, 5, 3}
	Median(in)
	if in[0] != 9 || in[1] != 1 || in[2] != 5 || in[3] != 3 {
		t.Fatalf("Median mutated its input: %v", in)
	}
}

// naiveMedian is the always-sort reference the pre-sorted fast path must
// match bit for bit.
func naiveMedian(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := append([]float64(nil), x...)
	slices.Sort(s)
	return s[len(s)/2]
}

// TestMedianSortedFastPathIdentical proves the pre-sorted short-circuit in
// MedianWith and the MedianSorted helper return exactly the median the full
// copy+sort produces — over random, ascending, descending, constant, and
// duplicate-heavy inputs.
func TestMedianSortedFastPathIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var scratch []float64
	check := func(label string, x []float64) {
		t.Helper()
		want := naiveMedian(x)
		var got float64
		got, scratch = MedianWith(scratch, x)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("%s: MedianWith %v, naive %v (input %v)", label, got, want, x)
		}
		if m := Median(x); math.Float64bits(m) != math.Float64bits(want) {
			t.Fatalf("%s: Median %v, naive %v", label, m, want)
		}
		if slices.IsSorted(x) {
			if m := MedianSorted(x); math.Float64bits(m) != math.Float64bits(want) {
				t.Fatalf("%s: MedianSorted %v, naive %v", label, m, want)
			}
		}
	}
	check("empty", nil)
	check("single", []float64{3.5})
	check("constant", []float64{2, 2, 2, 2, 2})
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Round(rng.NormFloat64() * 4) // duplicates are likely
		}
		check("random", x)
		slices.Sort(x)
		check("ascending", x) // exercises the fast path
		slices.Reverse(x)
		check("descending", x)
	}
}

// TestMedianWithSortedLeavesScratchAlone pins the fast path's contract:
// an already-sorted input returns without touching (or growing) scratch.
func TestMedianWithSortedLeavesScratchAlone(t *testing.T) {
	scratch := []float64{99, 98}
	m, out := MedianWith(scratch, []float64{1, 2, 3, 4, 5})
	if m != 3 {
		t.Fatalf("median = %v, want 3", m)
	}
	if len(out) != 2 || out[0] != 99 || out[1] != 98 {
		t.Fatalf("scratch modified on the sorted fast path: %v", out)
	}
}

func TestPlanForCachesBySize(t *testing.T) {
	p1, err := PlanFor(256)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanFor(256)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("PlanFor returned distinct plans for the same size")
	}
	if _, err := PlanFor(100); err == nil {
		t.Fatal("PlanFor accepted a non-power-of-two size")
	}
}
