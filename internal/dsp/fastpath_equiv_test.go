package dsp

import (
	"math"
	"math/rand"
	"testing"

	"biscatter/internal/cssk"
	"biscatter/internal/delayline"
	"biscatter/internal/fmcw"
)

// These tests are the oracle harness for the single-core fast path: every
// restructured kernel (real FFT, hoisted Goertzel, FFT autocorrelation,
// tone-table matched filter) is pinned against the straightforward
// implementation it replaced. Bit-exact kernels compare with Float64bits;
// float-breaking ones (FFT-order changes) compare under an explicit relative
// tolerance, mirroring the golden vectors' tolerance modes.

// relTol is the bound for transform-order-only differences. The FFT pair and
// the direct sum agree to ~1e-13 at the sizes the decoder uses; 1e-10 leaves
// headroom for adversarial inputs without masking real bugs.
const relTol = 1e-10

func randSignal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func maxAbsComplex(x []complex128) float64 {
	m := 0.0
	for _, c := range x {
		if a := math.Hypot(real(c), imag(c)); a > m {
			m = a
		}
	}
	return m
}

// TestRealFFTMatchesComplexFFT pins RealFFTPlan.ForwardInto against the
// complex FFTPlan on the same input: the packed half-spectrum must equal
// bins [0, n/2] of the full transform up to FFT rounding.
func TestRealFFTMatchesComplexFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 16, 32, 128, 512, 2048} {
		x := randSignal(rng, n)
		plan, err := RealPlanFor(n)
		if err != nil {
			t.Fatal(err)
		}
		half := make([]complex128, plan.SpectrumLen())
		plan.ForwardInto(half, x)

		full := FFTReal(x)
		scale := maxAbsComplex(full)
		for k := 0; k <= n/2; k++ {
			if d := math.Hypot(real(half[k]-full[k]), imag(half[k]-full[k])); d > relTol*scale {
				t.Errorf("n=%d bin %d: rFFT %v, FFT %v (|Δ|=%g)", n, k, half[k], full[k], d)
			}
		}
	}
}

// TestRealFFTMatchesDFTOracle checks the real transform against the O(n²)
// direct DFT on small sizes, independent of the FFT implementation both
// plans share.
func TestRealFFTMatchesDFTOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 4, 8, 16, 32} {
		x := randSignal(rng, n)
		cx := make([]complex128, n)
		for i, v := range x {
			cx[i] = complex(v, 0)
		}
		want := DFT(cx)
		plan, err := RealPlanFor(n)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, plan.SpectrumLen())
		plan.ForwardInto(got, x)
		scale := maxAbsComplex(want)
		for k := 0; k <= n/2; k++ {
			if d := math.Hypot(real(got[k]-want[k]), imag(got[k]-want[k])); d > relTol*scale {
				t.Errorf("n=%d bin %d: rFFT %v, DFT %v", n, k, got[k], want[k])
			}
		}
	}
}

// TestRealFFTRoundTrip drives ForwardInto → InverseInto and requires the
// original signal back, including for denormal and saturated samples.
func TestRealFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 4, 16, 256, 1024} {
		x := randSignal(rng, n)
		// Exercise extreme magnitudes the fuzz corpus cares about.
		x[0] = 5e-324
		if n >= 4 {
			x[3] = 1e300
		}
		plan, err := RealPlanFor(n)
		if err != nil {
			t.Fatal(err)
		}
		spec := make([]complex128, plan.SpectrumLen())
		plan.ForwardInto(spec, x)
		back := make([]float64, n)
		plan.InverseInto(back, spec)
		scale := 0.0
		for _, v := range x {
			if a := math.Abs(v); a > scale {
				scale = a
			}
		}
		for i := range x {
			if math.Abs(back[i]-x[i]) > relTol*scale {
				t.Errorf("n=%d sample %d: round trip %v, want %v", n, i, back[i], x[i])
			}
		}
	}
}

// TestRealFFTPlanValidation rejects sizes that are not powers of two ≥ 2.
func TestRealFFTPlanValidation(t *testing.T) {
	for _, n := range []int{-4, 0, 1, 3, 6, 12, 100} {
		if _, err := NewRealFFTPlan(n); err == nil {
			t.Errorf("NewRealFFTPlan(%d) accepted a bad size", n)
		}
	}
}

// TestGoertzelMatchesFFTBinPower pins the tag's few-bin demodulator against
// the full transform: at integer bin frequencies k·fs/n the Goertzel power
// must equal |FFT(x)[k]|². This is the equivalence that justifies replacing
// per-window FFTs with per-candidate Goertzel sweeps on the hot path.
func TestGoertzelMatchesFFTBinPower(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const fs = 4e6
	for _, n := range []int{16, 64, 256, 1024} {
		x := randSignal(rng, n)
		spec := FFTReal(x)
		power := 0.0
		for _, c := range spec {
			if p := real(c)*real(c) + imag(c)*imag(c); p > power {
				power = p
			}
		}
		for _, k := range []int{1, 2, n / 4, n/2 - 1} {
			freq := float64(k) * fs / float64(n)
			got := GoertzelPower(x, freq, fs)
			want := real(spec[k])*real(spec[k]) + imag(spec[k])*imag(spec[k])
			// The Goertzel recurrence is less numerically tame than the FFT;
			// scale the tolerance with n.
			tol := 1e-9 * float64(n) * power
			if math.Abs(got-want) > tol {
				t.Errorf("n=%d k=%d: Goertzel power %v, FFT bin power %v", n, k, got, want)
			}
		}
	}
}

// TestGoertzelWithMatchesGoertzel proves the coefficient hoist is a pure
// refactor: GoertzelWith on precomputed constants is bit-identical to the
// original per-call form, which is itself now defined through it.
func TestGoertzelWithMatchesGoertzel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const fs = 4e6
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		x := randSignal(rng, n)
		freq := rng.Float64() * fs / 2
		c := NewGoertzelCoeff(freq, fs)
		a := Goertzel(x, freq, fs)
		b := GoertzelWith(x, c)
		if math.Float64bits(real(a)) != math.Float64bits(real(b)) ||
			math.Float64bits(imag(a)) != math.Float64bits(imag(b)) {
			t.Fatalf("trial %d: Goertzel %v, GoertzelWith %v", trial, a, b)
		}
		p := GoertzelPowerWith(x, c)
		q := real(b)*real(b) + imag(b)*imag(b)
		if math.Float64bits(p) != math.Float64bits(q) {
			t.Fatalf("trial %d: GoertzelPowerWith %v, |z|² %v", trial, p, q)
		}
	}
}

// TestFFTAutocorrMatchesDirect pins the Wiener–Khinchin autocorrelation
// against the direct O(n·maxLag) sum it replaced, including odd and
// power-of-two±1 lengths and the maxLag clamping edge cases.
func TestFFTAutocorrMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var ac FFTAutocorr
	cases := []struct{ n, maxLag int }{
		{1, 0}, {2, 1}, {3, 5}, {7, 3}, {17, 16},
		{255, 40}, {256, 40}, {257, 40},
		{1000, 999}, {30000, 1000},
	}
	for _, c := range cases {
		x := randSignal(rng, c.n)
		want := AutocorrelationInto(nil, x, c.maxLag)
		got := ac.Into(nil, x, c.maxLag)
		if len(got) != len(want) {
			t.Fatalf("n=%d maxLag=%d: %d lags, want %d", c.n, c.maxLag, len(got), len(want))
		}
		scale := math.Abs(want[0]) // lag 0 is the signal power, the natural scale
		if scale == 0 {
			scale = 1
		}
		for l := range want {
			if math.Abs(got[l]-want[l]) > relTol*scale {
				t.Errorf("n=%d lag %d: FFT %v, direct %v", c.n, l, got[l], want[l])
			}
		}
	}
	if r := ac.Into(nil, nil, 5); r != nil {
		t.Errorf("empty input: got %v, want nil", r)
	}
}

// presetAlphabets constructs the CSSK constellations the integration stack
// builds for each radar platform preset, at the symbol widths the golden
// exchanges use.
func presetAlphabets(t *testing.T) map[string]*cssk.Alphabet {
	t.Helper()
	out := make(map[string]*cssk.Alphabet)
	for _, p := range []fmcw.Preset{fmcw.Radar9GHz(), fmcw.Radar24GHz()} {
		pair, err := delayline.NewCoaxPair(45*delayline.MetersPerInch, 0.7)
		if err != nil {
			t.Fatal(err)
		}
		cal := delayline.FromPair(pair, p.Chirp.CenterFrequency())
		for _, bits := range []int{3, 5} {
			a, err := cssk.NewAlphabet(cssk.Config{
				Bandwidth:        p.Chirp.Bandwidth,
				Period:           p.DefaultPeriod,
				MinChirpDuration: 20e-6,
				DeltaT:           cal.EffectiveDeltaT,
				MinBeatSpacing:   500,
				SymbolBits:       bits,
			})
			if err != nil {
				t.Fatalf("%s %d bits: %v", p.Name, bits, err)
			}
			out[p.Name+"/"+string(rune('0'+bits))+"bit"] = a
		}
	}
	return out
}

// TestToneTableMatchesRealToneEnergy pins the cached matched filter against
// the original per-call evaluation, bit for bit, for every beat frequency of
// every preset alphabet plus the decoder's fine-scan grid around each
// symbol. This is the equivalence contract the ToneTable doc comment cites.
func TestToneTableMatchesRealToneEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const fs = 1e6
	x := randSignal(rng, 512)
	for name, a := range presetAlphabets(t) {
		spacing := a.MinSpacing()
		for _, beat := range a.Beats() {
			for f := beat - 1.5*spacing; f <= beat+1.5*spacing; f += spacing / 10 {
				if f <= 0 || f >= fs/2 {
					continue
				}
				tab := NewToneTable(f, fs, 0)
				for _, n := range []int{0, 1, 5, 64, 512} {
					got := tab.EnergyAt(x[:n])
					want := RealToneEnergy(x[:n], f, fs)
					if math.Float64bits(got) != math.Float64bits(want) {
						t.Fatalf("%s f=%v n=%d: ToneTable %v, RealToneEnergy %v", name, f, n, got, want)
					}
				}
			}
		}
	}
}

// TestToneTableGrowthOrderIndependent proves a table's values do not depend
// on the sequence of Grow calls that produced them: growing in small steps
// yields the same energies as one fresh table at the final size.
func TestToneTableGrowthOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const fs = 1e6
	const freq = 31250.5
	x := randSignal(rng, 300)
	grown := NewToneTable(freq, fs, 0)
	for _, n := range []int{3, 10, 17, 100, 300} {
		grown.Grow(n)
	}
	fresh := NewToneTable(freq, fs, 300)
	for _, n := range []int{1, 3, 10, 17, 99, 100, 300} {
		a := grown.EnergyAt(x[:n])
		b := fresh.EnergyAt(x[:n])
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("n=%d: grown-in-steps %v, fresh %v", n, a, b)
		}
	}
	if grown.Freq() != freq || grown.Cap() != 300 {
		t.Fatalf("table metadata: freq %v cap %d", grown.Freq(), grown.Cap())
	}
}
