package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearInterpExactAtKnots(t *testing.T) {
	xs := []float64{0, 1, 2, 4}
	ys := []float64{10, 20, 15, 5}
	for i := range xs {
		if got := LinearInterp(xs, ys, xs[i]); !approxEq(got, ys[i], 1e-12) {
			t.Fatalf("knot %d: got %v want %v", i, got, ys[i])
		}
	}
}

func TestLinearInterpMidpointsAndClamping(t *testing.T) {
	xs := []float64{0, 2}
	ys := []float64{0, 10}
	if got := LinearInterp(xs, ys, 1); !approxEq(got, 5, 1e-12) {
		t.Fatalf("midpoint got %v", got)
	}
	if got := LinearInterp(xs, ys, -5); got != 0 {
		t.Fatalf("left clamp got %v", got)
	}
	if got := LinearInterp(xs, ys, 99); got != 10 {
		t.Fatalf("right clamp got %v", got)
	}
}

func TestLinearInterpBetweenBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x := 0.0
		for i := range xs {
			x += 0.1 + rng.Float64()
			xs[i] = x
			ys[i] = rng.NormFloat64()
		}
		q := xs[0] + rng.Float64()*(xs[n-1]-xs[0])
		v := LinearInterp(xs, ys, q)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, y := range ys {
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResampleLinearIdentity(t *testing.T) {
	ys := []float64{1, 3, 2, 5}
	dst := []float64{0, 1, 2, 3}
	out := ResampleLinear(ys, 0, 1, dst)
	for i := range ys {
		if !approxEq(out[i], ys[i], 1e-12) {
			t.Fatalf("identity resample differs at %d: %v vs %v", i, out[i], ys[i])
		}
	}
}

func TestResampleLinearHalfStep(t *testing.T) {
	ys := []float64{0, 10}
	out := ResampleLinear(ys, 0, 1, []float64{0.5})
	if !approxEq(out[0], 5, 1e-12) {
		t.Fatalf("half-step got %v", out[0])
	}
}

func TestResampleLinearClamps(t *testing.T) {
	ys := []float64{2, 4}
	out := ResampleLinear(ys, 10, 1, []float64{0, 100})
	if out[0] != 2 || out[1] != 4 {
		t.Fatalf("clamping failed: %v", out)
	}
}

func TestParabolicPeakRecoversSubBinOffset(t *testing.T) {
	// Sample a parabola y = 1 - (x-x0)² at integer points; the interpolator
	// must recover x0 exactly.
	for _, x0 := range []float64{5.0, 5.2, 4.7, 5.49} {
		mags := make([]float64, 11)
		for i := range mags {
			d := float64(i) - x0
			mags[i] = 1 - d*d
		}
		k, _ := MaxIndex(mags)
		delta, peak := ParabolicPeak(mags, k)
		if !approxEq(float64(k)+delta, x0, 1e-9) {
			t.Fatalf("x0=%v: recovered %v", x0, float64(k)+delta)
		}
		if peak < mags[k] {
			t.Fatalf("x0=%v: interpolated peak %v below bin value %v", x0, peak, mags[k])
		}
	}
}

func TestParabolicPeakAtBorders(t *testing.T) {
	mags := []float64{3, 2, 1}
	if d, p := ParabolicPeak(mags, 0); d != 0 || p != 3 {
		t.Fatalf("border peak: d=%v p=%v", d, p)
	}
}

func TestParabolicPeakOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ParabolicPeak([]float64{1, 2, 3}, 5)
}

func TestMaxIndexRange(t *testing.T) {
	x := []float64{9, 1, 5, 7, 2}
	idx, v := MaxIndexRange(x, 1, 4)
	if idx != 3 || v != 7 {
		t.Fatalf("got idx=%d v=%v", idx, v)
	}
}

func TestFindPeaksOrdering(t *testing.T) {
	x := []float64{0, 3, 0, 9, 0, 5, 0}
	peaks := FindPeaks(x, 1)
	if len(peaks) != 3 {
		t.Fatalf("found %d peaks, want 3", len(peaks))
	}
	if peaks[0].Index != 3 || peaks[1].Index != 5 || peaks[2].Index != 1 {
		t.Fatalf("wrong ordering: %+v", peaks)
	}
}

func TestFindPeaksThreshold(t *testing.T) {
	x := []float64{0, 3, 0, 9, 0}
	peaks := FindPeaks(x, 5)
	if len(peaks) != 1 || peaks[0].Index != 3 {
		t.Fatalf("threshold filter failed: %+v", peaks)
	}
}

func TestAutocorrelationZeroLagIsEnergy(t *testing.T) {
	x := []float64{1, -2, 3}
	r := Autocorrelation(x, 2)
	if !approxEq(r[0], (1+4+9)/3.0, 1e-12) {
		t.Fatalf("r[0]=%v", r[0])
	}
}

func TestDominantPeriodFindsSquareWavePeriod(t *testing.T) {
	// 1 kHz square wave sampled at 100 kHz → period 100 samples.
	const fs = 100e3
	const period = 100
	x := make([]float64, 4000)
	for i := range x {
		if (i/(period/2))%2 == 0 {
			x[i] = 1
		} else {
			x[i] = -1
		}
	}
	got := DominantPeriod(x, 10, 500)
	if math.Abs(got-period) > 1 {
		t.Fatalf("estimated period %v, want %v", got, period)
	}
}

func TestDominantPeriodNoisyToneProperty(t *testing.T) {
	f := func(seed int64, sel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		period := 40 + 10*int(sel%8) // 40..110 samples
		x := make([]float64, 3000)
		for i := range x {
			x[i] = math.Sin(2*math.Pi*float64(i)/float64(period)) + 0.2*rng.NormFloat64()
		}
		got := DominantPeriod(x, 20, 200)
		return math.Abs(got-float64(period)) < 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDominantPeriodNoPeriodicity(t *testing.T) {
	x := make([]float64, 100)
	x[0] = 1 // single impulse: autocorrelation has no interior peak
	if got := DominantPeriod(x, 1, 50); got != 0 {
		t.Fatalf("expected 0 for aperiodic input, got %v", got)
	}
}
