package dsp

import (
	"fmt"
	"math"
)

// WindowKind selects a tapering window used before spectral analysis.
type WindowKind int

// Supported window kinds.
const (
	WindowRect WindowKind = iota
	WindowHann
	WindowHamming
	WindowBlackman
)

// String implements fmt.Stringer.
func (w WindowKind) String() string {
	switch w {
	case WindowRect:
		return "rect"
	case WindowHann:
		return "hann"
	case WindowHamming:
		return "hamming"
	case WindowBlackman:
		return "blackman"
	default:
		return fmt.Sprintf("WindowKind(%d)", int(w))
	}
}

// Window returns the n window coefficients for the given kind using the
// periodic (DFT-even) convention.
func Window(kind WindowKind, n int) []float64 {
	if n <= 0 {
		panic("dsp: Window requires n > 0")
	}
	return WindowInto(make([]float64, n), kind)
}

// WindowInto fills dst with the len(dst) window coefficients for the given
// kind (periodic convention) and returns dst — the allocation-free variant
// of Window for hot loops that hold their own scratch.
func WindowInto(dst []float64, kind WindowKind) []float64 {
	n := len(dst)
	if n <= 0 {
		panic("dsp: WindowInto requires len(dst) > 0")
	}
	w := dst
	switch kind {
	case WindowRect:
		for i := range w {
			w[i] = 1
		}
	case WindowHann:
		for i := range w {
			w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n)))
		}
	case WindowHamming:
		for i := range w {
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n))
		}
	case WindowBlackman:
		for i := range w {
			x := 2 * math.Pi * float64(i) / float64(n)
			w[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
		}
	default:
		panic(fmt.Sprintf("dsp: unknown window kind %v", kind))
	}
	return w
}

// ApplyWindow multiplies x element-wise by the window coefficients in place
// and returns x. len(w) must equal len(x).
func ApplyWindow(x, w []float64) []float64 {
	if len(x) != len(w) {
		panic("dsp: ApplyWindow length mismatch")
	}
	for i := range x {
		x[i] *= w[i]
	}
	return x
}

// ApplyWindowComplex multiplies x element-wise by the real window w in place
// and returns x.
func ApplyWindowComplex(x []complex128, w []float64) []complex128 {
	if len(x) != len(w) {
		panic("dsp: ApplyWindowComplex length mismatch")
	}
	for i := range x {
		x[i] *= complex(w[i], 0)
	}
	return x
}

// CoherentGain returns the normalized DC gain of the window (sum/n), used to
// correct amplitude estimates taken from windowed spectra.
func CoherentGain(w []float64) float64 {
	var sum float64
	for _, v := range w {
		sum += v
	}
	return sum / float64(len(w))
}

// NoiseBandwidth returns the equivalent noise bandwidth of the window in
// bins: n·Σw²/(Σw)².
func NoiseBandwidth(w []float64) float64 {
	var sum, sumSq float64
	for _, v := range w {
		sum += v
		sumSq += v * v
	}
	if sum == 0 {
		return math.Inf(1)
	}
	return float64(len(w)) * sumSq / (sum * sum)
}
