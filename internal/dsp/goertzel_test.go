package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func realTone(n int, freq, fs, amp, phase float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = amp * math.Cos(2*math.Pi*freq*float64(i)/fs+phase)
	}
	return x
}

func TestGoertzelMatchesDFTBin(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n = 128
	const fs = 1000.0
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	cx := make([]complex128, n)
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	spec := DFT(cx)
	for _, k := range []int{1, 5, 17, 40, 63} {
		freq := float64(k) * fs / n
		got := Goertzel(x, freq, fs)
		// Goertzel's phase reference differs from the DFT by a rotation of
		// exp(2πik(n-1)/n)·... — compare magnitudes, which is what every
		// consumer in this codebase uses.
		if !approxEq(cmplxAbs(got), cmplxAbs(spec[k]), 1e-6*float64(n)) {
			t.Fatalf("bin %d: Goertzel |%v| vs DFT |%v|", k, cmplxAbs(got), cmplxAbs(spec[k]))
		}
	}
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

func TestGoertzelPowerPeaksAtToneFrequency(t *testing.T) {
	const n = 500
	const fs = 1e6
	const tone = 50e3
	x := realTone(n, tone, fs, 1, 0.3)
	pAt := GoertzelPower(x, tone, fs)
	pOff := GoertzelPower(x, tone+40e3, fs)
	if pAt < 100*pOff {
		t.Fatalf("tone power %v not dominant over off-tone %v", pAt, pOff)
	}
}

func TestGoertzelEmptyInput(t *testing.T) {
	if Goertzel(nil, 100, 1000) != 0 {
		t.Fatal("empty input should yield 0")
	}
}

func TestGoertzelBankValidation(t *testing.T) {
	if _, err := NewGoertzelBank(nil, 1e6); err == nil {
		t.Error("empty frequency list should fail")
	}
	if _, err := NewGoertzelBank([]float64{1e3}, -1); err == nil {
		t.Error("negative fs should fail")
	}
	if _, err := NewGoertzelBank([]float64{600e3}, 1e6); err == nil {
		t.Error("frequency above Nyquist should fail")
	}
	if _, err := NewGoertzelBank([]float64{0}, 1e6); err == nil {
		t.Error("zero frequency should fail")
	}
}

func TestGoertzelBankStrongestSelectsTone(t *testing.T) {
	const fs = 1e6
	freqs := []float64{11e3, 30e3, 55e3, 80e3, 110e3}
	bank, err := NewGoertzelBank(freqs, fs)
	if err != nil {
		t.Fatal(err)
	}
	for want, f := range freqs {
		x := realTone(1000, f, fs, 1, 0)
		got, power, runnerUp := bank.Strongest(x)
		if got != want {
			t.Fatalf("tone %v Hz decoded as index %d, want %d", f, got, want)
		}
		if power <= runnerUp {
			t.Fatalf("tone %v Hz: power %v not above runner-up %v", f, power, runnerUp)
		}
	}
}

func TestGoertzelBankStrongestProperty(t *testing.T) {
	const fs = 1e6
	freqs := []float64{20e3, 45e3, 70e3, 95e3, 120e3, 145e3}
	bank, err := NewGoertzelBank(freqs, fs)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, sel uint8, noiseScale uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		want := int(sel) % len(freqs)
		sigma := 0.2 * float64(noiseScale%4) / 4 // up to mild noise
		x := realTone(2000, freqs[want], fs, 1, rng.Float64()*2*math.Pi)
		for i := range x {
			x[i] += sigma * rng.NormFloat64()
		}
		got, _, _ := bank.Strongest(x)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGoertzelBankPowersInto(t *testing.T) {
	bank, err := NewGoertzelBank([]float64{10e3, 20e3}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	x := realTone(512, 10e3, 1e6, 1, 0)
	dst := make([]float64, 2)
	bank.PowersInto(dst, x)
	if dst[0] <= dst[1] {
		t.Fatalf("expected first frequency to dominate: %v", dst)
	}
	alloc := bank.Powers(x)
	for i := range alloc {
		if !approxEq(alloc[i], dst[i], 1e-9) {
			t.Fatalf("Powers and PowersInto disagree at %d: %v vs %v", i, alloc[i], dst[i])
		}
	}
}

func TestGoertzelBankFrequenciesCopies(t *testing.T) {
	orig := []float64{10e3, 20e3}
	bank, err := NewGoertzelBank(orig, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	fs := bank.Frequencies()
	fs[0] = 999
	if got := bank.Frequencies()[0]; got != 10e3 {
		t.Fatalf("bank state mutated through returned slice: %v", got)
	}
}

func TestSlidingDFTValidation(t *testing.T) {
	if _, err := NewSlidingDFT(0, 1e3, 1e6); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := NewSlidingDFT(8, 1e3, 0); err == nil {
		t.Error("zero fs should fail")
	}
}

func TestSlidingDFTTracksTone(t *testing.T) {
	const fs = 1e6
	const f1, f2 = 30e3, 90e3
	sd, err := NewSlidingDFT(400, f1, fs)
	if err != nil {
		t.Fatal(err)
	}
	// Feed f1 tone: power should be high once full.
	for i, v := range realTone(400, f1, fs, 1, 0) {
		sd.Push(v)
		if i < 399 && sd.Full() {
			t.Fatal("window reported full too early")
		}
	}
	if !sd.Full() {
		t.Fatal("window should be full")
	}
	pOn := sd.Power()
	// Slide in an f2 tone: power at f1 should collapse.
	for _, v := range realTone(400, f2, fs, 1, 0) {
		sd.Push(v)
	}
	pOff := sd.Power()
	if pOn < 50*pOff {
		t.Fatalf("sliding window did not track tone change: on=%v off=%v", pOn, pOff)
	}
}

func BenchmarkGoertzel1000(b *testing.B) {
	x := realTone(1000, 50e3, 1e6, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GoertzelPower(x, 50e3, 1e6)
	}
}

func BenchmarkGoertzelBank32Symbols(b *testing.B) {
	freqs := make([]float64, 32)
	for i := range freqs {
		freqs[i] = 11e3 + float64(i)*3e3
	}
	bank, _ := NewGoertzelBank(freqs, 1e6)
	x := realTone(1000, freqs[13], 1e6, 1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bank.Strongest(x)
	}
}
