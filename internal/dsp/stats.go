package dsp

import "slices"

// Median returns the upper median of x (element n/2 of the sorted order)
// without modifying x, and 0 for an empty slice. Both the radar's matched-
// filter detector and the network core's joint multi-node search use it as
// the noise-floor estimate of a signature profile.
func Median(x []float64) float64 {
	m, _ := MedianWith(nil, x)
	return m
}

// MedianWith is Median with caller-provided sort scratch so hot loops skip
// the per-call copy: scratch is grown as needed and returned for reuse. x
// itself is never modified.
func MedianWith(scratch, x []float64) (float64, []float64) {
	if len(x) == 0 {
		return 0, scratch
	}
	scratch = Resize(scratch, len(x))
	copy(scratch, x)
	slices.Sort(scratch)
	return scratch[len(scratch)/2], scratch
}
