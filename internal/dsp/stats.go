package dsp

import "slices"

// Median returns the upper median of x (element n/2 of the sorted order)
// without modifying x, and 0 for an empty slice. Both the radar's matched-
// filter detector and the network core's joint multi-node search use it as
// the noise-floor estimate of a signature profile.
func Median(x []float64) float64 {
	m, _ := MedianWith(nil, x)
	return m
}

// MedianSorted returns the upper median of an already-ascending slice —
// x[len(x)/2] — and 0 for an empty slice. It is the O(1) tail of the median
// pipeline, split out for callers that keep profiles sorted themselves.
func MedianSorted(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return x[len(x)/2]
}

// MedianWith is Median with caller-provided sort scratch so hot loops skip
// the per-call copy: scratch is grown as needed and returned for reuse. x
// itself is never modified.
//
// Already-sorted inputs short-circuit: the O(n) order check is far cheaper
// than the copy + O(n log n) sort it skips, and sorted profiles are common
// on the detection paths (cumulative scans, pre-ranked candidate lists).
// The fast path reads the same sorted order the sort would produce, so the
// returned median is identical either way; scratch is left untouched.
func MedianWith(scratch, x []float64) (float64, []float64) {
	if len(x) == 0 {
		return 0, scratch
	}
	if slices.IsSorted(x) {
		return MedianSorted(x), scratch
	}
	scratch = Resize(scratch, len(x))
	copy(scratch, x)
	slices.Sort(scratch)
	return scratch[len(scratch)/2], scratch
}
