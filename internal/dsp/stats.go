package dsp

import "sort"

// Median returns the upper median of x (element n/2 of the sorted order)
// without modifying x, and 0 for an empty slice. Both the radar's matched-
// filter detector and the network core's joint multi-node search use it as
// the noise-floor estimate of a signature profile.
func Median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	cp := append([]float64(nil), x...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}
