package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func complexApproxEq(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func randomComplexSignal(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestIsPowerOfTwo(t *testing.T) {
	cases := map[int]bool{
		-4: false, 0: false, 1: true, 2: true, 3: false,
		4: true, 1024: true, 1023: false, 1 << 20: true,
	}
	for n, want := range cases {
		if got := IsPowerOfTwo(n); got != want {
			t.Errorf("IsPowerOfTwo(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestNextPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 17: 32, 1024: 1024, 1025: 2048}
	for n, want := range cases {
		if got := NextPowerOfTwo(n); got != want {
			t.Errorf("NextPowerOfTwo(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestNextPowerOfTwoPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	NextPowerOfTwo(0)
}

func TestNewFFTPlanRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, -8, 3, 6, 100} {
		if _, err := NewFFTPlan(n); err == nil {
			t.Errorf("NewFFTPlan(%d): expected error", n)
		}
	}
}

func TestFFTMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randomComplexSignal(rng, n)
		got := FFT(x)
		want := DFT(x)
		for k := range want {
			if !complexApproxEq(got[k], want[k], 1e-8*float64(n)) {
				t.Fatalf("n=%d bin %d: FFT=%v DFT=%v", n, k, got[k], want[k])
			}
		}
	}
}

func TestFFTInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 16, 128, 1024} {
		x := randomComplexSignal(rng, n)
		y := IFFT(FFT(x))
		for i := range x {
			if !complexApproxEq(x[i], y[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d sample %d: got %v want %v", n, i, y[i], x[i])
			}
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64, sizeSel uint8) bool {
		n := 1 << (1 + sizeSel%9) // 2..512
		local := rand.New(rand.NewSource(seed))
		x := randomComplexSignal(local, n)
		y := IFFT(FFT(x))
		for i := range x {
			if !complexApproxEq(x[i], y[i], 1e-8*float64(n)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 64
		a := randomComplexSignal(rng, n)
		b := randomComplexSignal(rng, n)
		alpha := complex(rng.NormFloat64(), rng.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + alpha*b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for k := range fs {
			if !complexApproxEq(fs[k], fa[k]+alpha*fb[k], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 512
	x := randomComplexSignal(rng, n)
	var timeEnergy float64
	for _, v := range x {
		timeEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	var freqEnergy float64
	for _, v := range FFT(x) {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= n
	if !approxEq(timeEnergy, freqEnergy, 1e-6*timeEnergy) {
		t.Fatalf("Parseval violated: time %v freq %v", timeEnergy, freqEnergy)
	}
}

func TestFFTPureTonePeak(t *testing.T) {
	const n = 1024
	const fs = 1e6
	const bin = 100
	freq := float64(bin) * fs / n
	x := make([]complex128, n)
	for i := range x {
		ph := 2 * math.Pi * freq * float64(i) / fs
		x[i] = complex(math.Cos(ph), math.Sin(ph))
	}
	mags := Magnitudes(FFT(x))
	idx, _ := MaxIndex(mags)
	if idx != bin {
		t.Fatalf("tone at bin %d detected at %d", bin, idx)
	}
}

func TestFFTRealOfRealSignalHermitian(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 256
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	spec := FFTReal(x)
	for k := 1; k < n/2; k++ {
		conj := complex(real(spec[n-k]), -imag(spec[n-k]))
		if !complexApproxEq(spec[k], conj, 1e-8) {
			t.Fatalf("bin %d not Hermitian-symmetric: %v vs %v", k, spec[k], conj)
		}
	}
}

func TestForwardIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 64
	plan, err := NewFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	x := randomComplexSignal(rng, n)
	want := plan.Forward(x)
	// In-place transform must give the same result.
	buf := append([]complex128(nil), x...)
	plan.ForwardInto(buf, buf)
	for i := range want {
		if !complexApproxEq(buf[i], want[i], 1e-9) {
			t.Fatalf("in-place bin %d: %v vs %v", i, buf[i], want[i])
		}
	}
}

func TestForwardIntoSizeMismatchPanics(t *testing.T) {
	plan, _ := NewFFTPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	plan.ForwardInto(make([]complex128, 8), make([]complex128, 4))
}

func TestBinFrequencyRoundTrip(t *testing.T) {
	const n = 256
	const fs = 48000.0
	for bin := 0; bin < n; bin++ {
		f := BinFrequency(bin, n, fs)
		back := FrequencyBin(f, n, fs)
		if back != bin {
			t.Fatalf("bin %d -> %v Hz -> bin %d", bin, f, back)
		}
	}
}

func TestBinFrequencyNegativeHalf(t *testing.T) {
	const n = 8
	const fs = 800.0
	if f := BinFrequency(7, n, fs); !approxEq(f, -100, 1e-9) {
		t.Fatalf("bin 7 of 8 at fs=800 should be -100 Hz, got %v", f)
	}
	if f := BinFrequency(1, n, fs); !approxEq(f, 100, 1e-9) {
		t.Fatalf("bin 1 of 8 at fs=800 should be 100 Hz, got %v", f)
	}
}

func TestMagnitudesInto(t *testing.T) {
	spec := []complex128{3 + 4i, 0, -5i}
	dst := make([]float64, 3)
	MagnitudesInto(dst, spec)
	want := []float64{5, 0, 5}
	for i := range want {
		if !approxEq(dst[i], want[i], 1e-12) {
			t.Fatalf("bin %d: got %v want %v", i, dst[i], want[i])
		}
	}
}

func TestPowerSpectrum(t *testing.T) {
	spec := []complex128{3 + 4i, 1i}
	ps := PowerSpectrum(spec)
	if !approxEq(ps[0], 25, 1e-12) || !approxEq(ps[1], 1, 1e-12) {
		t.Fatalf("unexpected power spectrum %v", ps)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randomComplexSignal(rng, 1024)
	plan, _ := NewFFTPlan(1024)
	dst := make([]complex128, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.ForwardInto(dst, x)
	}
}

func BenchmarkFFT8192(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randomComplexSignal(rng, 8192)
	plan, _ := NewFFTPlan(8192)
	dst := make([]complex128, 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.ForwardInto(dst, x)
	}
}
