package dsp

import "math"

// ToneTable precomputes everything data-independent in RealToneEnergy for a
// fixed (freq, fs): the cos/sin basis samples and the running Gram sums of
// the 2×2 normal equations. The tag decoder evaluates the same matched
// filters — one per CSSK constellation point plus a fine-scan grid around
// the winner — against every chirp slot of every frame, so the basis
// recurrence and the Gram accumulation were being recomputed thousands of
// times per exchange for inputs that never change.
//
// EnergyAt is bit-identical to RealToneEnergy on the same window: the basis
// samples come from the identical rotation recurrence, the Gram prefix sums
// accumulate in the identical order, and the data projections run over the
// identical sequence — only the data-independent work moved out of the call.
// TestToneTableMatchesRealToneEnergy pins this across every preset alphabet.
//
// A table grows lazily to the longest window it has seen and is otherwise
// immutable; like the decoder that owns it, it is single-threaded.
type ToneTable struct {
	freq, fs float64
	c, s     []float64 // basis samples c[i] = cos(ω·i), s[i] = sin(ω·i)
	// Prefix Gram sums: ccc[k] = Σ_{i<k} c[i]², css/ccs likewise, each
	// accumulated left to right exactly as RealToneEnergy's loop does.
	ccc, css, ccs []float64
}

// NewToneTable builds a table for the tone at freq Hz sampled at fs,
// precomputed for windows up to n samples (it grows on demand beyond that).
func NewToneTable(freq, fs float64, n int) *ToneTable {
	t := &ToneTable{freq: freq, fs: fs}
	t.Grow(n)
	return t
}

// Freq returns the tone frequency in Hz.
func (t *ToneTable) Freq() float64 { return t.freq }

// Cap returns the longest window the table currently covers.
func (t *ToneTable) Cap() int { return len(t.c) }

// Grow extends the table to cover windows of n samples. The recurrence
// restarts from sample zero so the basis values are independent of the
// growth history — any growth schedule yields the same table.
func (t *ToneTable) Grow(n int) {
	if n <= len(t.c) {
		return
	}
	w := 2 * math.Pi * t.freq / t.fs
	sinW, cosW := math.Sin(w), math.Cos(w)
	t.c = Resize(t.c, n)
	t.s = Resize(t.s, n)
	t.ccc = Resize(t.ccc, n+1)
	t.css = Resize(t.css, n+1)
	t.ccs = Resize(t.ccs, n+1)
	c, s := 1.0, 0.0
	var ccc, css, ccs float64
	t.ccc[0], t.css[0], t.ccs[0] = 0, 0, 0
	for i := 0; i < n; i++ {
		t.c[i], t.s[i] = c, s
		ccc += c * c
		css += s * s
		ccs += c * s
		t.ccc[i+1], t.css[i+1], t.ccs[i+1] = ccc, css, ccs
		c, s = c*cosW-s*sinW, s*cosW+c*sinW
	}
}

// EnergyAt returns RealToneEnergy(x, t.Freq(), fs) — same value, bit for
// bit — using the precomputed basis.
func (t *ToneTable) EnergyAt(x []float64) float64 {
	n := len(x)
	if n == 0 {
		return 0
	}
	t.Grow(n)
	var xc, xs float64
	cb, sb := t.c[:n], t.s[:n]
	for i, v := range x {
		xc += v * cb[i]
		xs += v * sb[i]
	}
	ccc, css, ccs := t.ccc[n], t.css[n], t.ccs[n]
	det := ccc*css - ccs*ccs
	if math.Abs(det) < 1e-12 {
		if ccc <= 0 {
			return 0
		}
		return xc * xc / ccc
	}
	a := (css*xc - ccs*xs) / det
	b := (ccc*xs - ccs*xc) / det
	return a*xc + b*xs
}
