// Package dsp provides the digital signal processing substrate used by the
// BiScatter simulator: FFTs, the Goertzel algorithm, window functions,
// filters, interpolation, autocorrelation and peak search.
//
// Everything is implemented on plain []complex128 / []float64 slices with no
// external dependencies. Functions that allocate have Into-variants that
// reuse caller-provided buffers so hot loops (per-chirp processing) can run
// without garbage.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// IsPowerOfTwo reports whether n is a positive power of two.
func IsPowerOfTwo(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// NextPowerOfTwo returns the smallest power of two >= n. It panics for n <= 0
// or when the result would overflow an int.
func NextPowerOfTwo(n int) int {
	if n <= 0 {
		panic("dsp: NextPowerOfTwo requires n > 0")
	}
	if IsPowerOfTwo(n) {
		return n
	}
	p := 1 << bits.Len(uint(n))
	if p <= 0 {
		panic("dsp: NextPowerOfTwo overflow")
	}
	return p
}

// FFTPlan caches twiddle factors and the bit-reversal permutation for a fixed
// power-of-two transform size. A plan is safe for concurrent use because
// Execute never mutates plan state.
type FFTPlan struct {
	n       int
	twiddle []complex128 // exp(-2πi k/n) for k in [0, n/2)
	rev     []int
}

// NewFFTPlan builds a plan for transforms of size n (a power of two).
func NewFFTPlan(n int) (*FFTPlan, error) {
	if !IsPowerOfTwo(n) {
		return nil, fmt.Errorf("dsp: FFT size %d is not a power of two", n)
	}
	p := &FFTPlan{n: n}
	p.twiddle = make([]complex128, n/2)
	for k := range p.twiddle {
		ang := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	p.rev = make([]int, n)
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		shift = 64
	}
	for i := range p.rev {
		p.rev[i] = int(bits.Reverse64(uint64(i)) >> shift)
	}
	return p, nil
}

// Size returns the transform size of the plan.
func (p *FFTPlan) Size() int { return p.n }

// planCache holds one FFTPlan per transform size. CSSK frames mix chirp
// durations, so the tag decoder and the slow-time processors request many
// different (but recurring) power-of-two sizes per frame; caching the
// twiddle tables and bit-reversal permutations removes that recomputation
// from the per-chirp hot path. Plans are immutable after construction, so
// a cached plan is safe to share across worker goroutines.
var planCache sync.Map // int → *FFTPlan

// PlanFor returns the cached plan for transforms of size n (a power of
// two), building and caching it on first use.
func PlanFor(n int) (*FFTPlan, error) {
	if p, ok := planCache.Load(n); ok {
		return p.(*FFTPlan), nil
	}
	p, err := NewFFTPlan(n)
	if err != nil {
		return nil, err
	}
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*FFTPlan), nil
}

// Forward computes the forward DFT of src into a newly allocated slice.
// len(src) must equal the plan size.
//
// Test/oracle use only: every production caller goes through ForwardInto
// with caller-owned scratch so the per-chirp hot loops stay allocation-free.
// Keep this wrapper for tests and one-off tooling.
func (p *FFTPlan) Forward(src []complex128) []complex128 {
	dst := make([]complex128, p.n)
	p.ForwardInto(dst, src)
	return dst
}

// ForwardInto computes the forward DFT of src into dst. dst and src must both
// have the plan size; they may alias.
func (p *FFTPlan) ForwardInto(dst, src []complex128) {
	if len(src) != p.n || len(dst) != p.n {
		panic(fmt.Sprintf("dsp: FFT size mismatch: plan %d, src %d, dst %d", p.n, len(src), len(dst)))
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	p.execute(dst, false)
}

// Inverse computes the inverse DFT (with 1/n normalization) of src into a new
// slice.
//
// Test/oracle use only, like Forward: production code uses InverseInto with
// its own scratch.
func (p *FFTPlan) Inverse(src []complex128) []complex128 {
	dst := make([]complex128, p.n)
	p.InverseInto(dst, src)
	return dst
}

// InverseInto computes the inverse DFT (with 1/n normalization) of src into
// dst. dst and src may alias.
func (p *FFTPlan) InverseInto(dst, src []complex128) {
	if len(src) != p.n || len(dst) != p.n {
		panic(fmt.Sprintf("dsp: FFT size mismatch: plan %d, src %d, dst %d", p.n, len(src), len(dst)))
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	p.execute(dst, true)
	scale := complex(1/float64(p.n), 0)
	for i := range dst {
		dst[i] *= scale
	}
}

// execute runs the in-place iterative radix-2 Cooley-Tukey transform.
func (p *FFTPlan) execute(a []complex128, inverse bool) {
	n := p.n
	// Bit-reversal permutation.
	for i, j := range p.rev {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				t := w * a[k+half]
				a[k+half] = a[k] - t
				a[k] = a[k] + t
				tw += step
			}
		}
	}
}

// FFT computes the forward DFT of src, zero-padding to the next power of two
// when necessary. The returned slice length is NextPowerOfTwo(len(src)).
func FFT(src []complex128) []complex128 {
	n := NextPowerOfTwo(len(src))
	plan, err := PlanFor(n)
	if err != nil {
		panic(err) // unreachable: n is a power of two
	}
	buf := make([]complex128, n)
	copy(buf, src)
	plan.execute(buf, false)
	return buf
}

// IFFT computes the normalized inverse DFT of src. len(src) must be a power
// of two.
func IFFT(src []complex128) []complex128 {
	plan, err := PlanFor(len(src))
	if err != nil {
		panic(err)
	}
	dst := make([]complex128, len(src))
	plan.InverseInto(dst, src)
	return dst
}

// FFTReal transforms a real-valued signal, zero-padding to the next power of
// two, and returns the full complex spectrum.
func FFTReal(src []float64) []complex128 {
	buf := make([]complex128, NextPowerOfTwo(len(src)))
	for i, v := range src {
		buf[i] = complex(v, 0)
	}
	plan, err := PlanFor(len(buf))
	if err != nil {
		panic(err)
	}
	plan.execute(buf, false)
	return buf
}

// DFT computes the discrete Fourier transform by direct O(n²) evaluation.
// It exists as a correctness oracle for FFT tests and for tiny non-power-of-
// two sizes; do not use it in hot paths.
func DFT(src []complex128) []complex128 {
	n := len(src)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			acc += src[t] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = acc
	}
	return out
}

// Magnitudes returns |spec[i]| for every bin.
func Magnitudes(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, c := range spec {
		out[i] = math.Hypot(real(c), imag(c))
	}
	return out
}

// MagnitudesInto writes |spec[i]| into dst, which must have the same length.
func MagnitudesInto(dst []float64, spec []complex128) {
	if len(dst) != len(spec) {
		panic("dsp: MagnitudesInto length mismatch")
	}
	for i, c := range spec {
		dst[i] = math.Hypot(real(c), imag(c))
	}
}

// PowerSpectrum returns |spec[i]|² for every bin.
func PowerSpectrum(spec []complex128) []float64 {
	out := make([]float64, len(spec))
	for i, c := range spec {
		out[i] = real(c)*real(c) + imag(c)*imag(c)
	}
	return out
}

// BinFrequency converts an FFT bin index to the frequency in Hz for a
// transform of size n over samples taken at rate fs. Bins above n/2 map to
// negative frequencies.
func BinFrequency(bin, n int, fs float64) float64 {
	if bin > n/2 {
		bin -= n
	}
	return float64(bin) * fs / float64(n)
}

// FrequencyBin converts a frequency in Hz to the nearest FFT bin index for a
// transform of size n at sample rate fs. Negative frequencies wrap to the
// upper half.
func FrequencyBin(freq float64, n int, fs float64) int {
	bin := int(math.Round(freq * float64(n) / fs))
	bin %= n
	if bin < 0 {
		bin += n
	}
	return bin
}
