package dsp

import (
	"sync"
	"testing"
)

func TestArenaCheckoutLengthsAndZeroing(t *testing.T) {
	a := NewArena()
	c := a.Complex(100)
	if len(c) != 100 || cap(c) != 128 {
		t.Fatalf("Complex(100): len=%d cap=%d, want 100/128", len(c), cap(c))
	}
	f := a.Float(7)
	if len(f) != 7 || cap(f) != 8 {
		t.Fatalf("Float(7): len=%d cap=%d, want 7/8", len(f), cap(f))
	}
	for i := range c {
		if c[i] != 0 {
			t.Fatalf("Complex checkout not zeroed at %d", i)
		}
	}
	if a.Complex(0) != nil || a.Float(-3) != nil {
		t.Fatalf("non-positive checkout should return nil")
	}
}

// TestArenaReuseReturnsZeroedMemory is the satellite-task pin: after dirtying
// a checkout and resetting, a second checkout of the same size must return
// the same backing array (reuse) with every element zeroed.
func TestArenaReuseReturnsZeroedMemory(t *testing.T) {
	a := NewArena()
	c1 := a.Complex(64)
	for i := range c1 {
		c1[i] = complex(float64(i), 1)
	}
	f1 := a.Float(48)
	for i := range f1 {
		f1[i] = float64(i) + 0.5
	}
	a.Reset()
	c2 := a.Complex(64)
	f2 := a.Float(48)
	if &c1[0] != &c2[0] {
		t.Fatalf("Complex(64) after Reset did not reuse the buffer")
	}
	if &f1[0] != &f2[0] {
		t.Fatalf("Float(48) after Reset did not reuse the buffer")
	}
	for i := range c2 {
		if c2[i] != 0 {
			t.Fatalf("reused Complex checkout not zeroed at %d: %v", i, c2[i])
		}
	}
	for i := range f2 {
		if f2[i] != 0 {
			t.Fatalf("reused Float checkout not zeroed at %d: %v", i, f2[i])
		}
	}
	// A smaller request must be served from the same power-of-two bucket.
	a.Reset()
	c3 := a.Complex(40)
	if &c3[0] != &c1[0] {
		t.Fatalf("Complex(40) should reuse the 64-capacity bucket")
	}
}

func TestArenaSteadyStateAllocFree(t *testing.T) {
	a := NewArena()
	// Warm the buckets, including the lazy free-map allocations.
	for i := 0; i < 3; i++ {
		a.Complex(1024)
		a.Float(512)
		a.Float(64)
		a.Reset()
	}
	allocs := testing.AllocsPerRun(100, func() {
		c := a.Complex(1024)
		f := a.Float(512)
		g := a.Float(64)
		c[0] = 1
		f[0] = 1
		g[0] = 1
		a.Reset()
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena cycle allocated %v times per run, want 0", allocs)
	}
}

func TestArenaHighWaterStabilizes(t *testing.T) {
	a := NewArena()
	var after1 int
	for iter := 0; iter < 100; iter++ {
		// A workload shaped like the per-chirp pipeline: one FFT buffer, two
		// component vectors, two resampled vectors, a few slow-time columns.
		a.Complex(4096)
		a.Float(4096)
		a.Float(4096)
		a.Float(512)
		a.Float(512)
		for b := 0; b < 8; b++ {
			a.Float(64)
		}
		a.Reset()
		if iter == 0 {
			after1 = a.HighWaterBytes()
		}
	}
	if a.HighWaterBytes() != after1 {
		t.Fatalf("high-water mark grew across iterations: %d after 1, %d after 100",
			after1, a.HighWaterBytes())
	}
	if after1 == 0 {
		t.Fatalf("high-water mark should be nonzero after checkouts")
	}
}

// TestArenaConcurrentArenas exercises the worker-local usage pattern under
// -race: many goroutines, each with its own arena, checking out and resetting
// concurrently. Arenas are not shared, so this must be race-free.
func TestArenaConcurrentArenas(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			a := NewArena()
			for i := 0; i < 200; i++ {
				n := 16 << (uint(seed+i) % 5)
				c := a.Complex(n)
				f := a.Float(n / 2)
				for j := range c {
					c[j] = complex(float64(j), 0)
				}
				for j := range f {
					f[j] = float64(j)
				}
				a.Reset()
			}
		}(g)
	}
	wg.Wait()
}

func TestResize(t *testing.T) {
	s := Resize[float64](nil, 10)
	if len(s) != 10 || cap(s) != 16 {
		t.Fatalf("Resize(nil, 10): len=%d cap=%d, want 10/16", len(s), cap(s))
	}
	s[3] = 42
	grown := Resize(s, 12)
	if len(grown) != 12 || &grown[0] != &s[0] {
		t.Fatalf("Resize within capacity must reuse the backing array")
	}
	shrunk := Resize(grown, 4)
	if len(shrunk) != 4 || &shrunk[0] != &s[0] {
		t.Fatalf("Resize shrink must reuse the backing array")
	}
	big := Resize(shrunk, 100)
	if len(big) != 100 || cap(big) != 128 {
		t.Fatalf("Resize growth: len=%d cap=%d, want 100/128", len(big), cap(big))
	}
	empty := Resize(big, 0)
	if len(empty) != 0 {
		t.Fatalf("Resize to 0 should have length 0")
	}
}
