package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	if f.Depth() != 4 {
		t.Fatalf("Depth = %d, want 4", f.Depth())
	}
	for i := 0; i < 10; i++ {
		f.Add(BeginTrace(NewExchangeID(0, 0, uint64(i)), 0, uint64(i), "root"))
	}
	if f.Recorded() != 10 {
		t.Fatalf("Recorded = %d, want 10", f.Recorded())
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	// Oldest-first: the surviving window is seqs 6..9.
	for i, tr := range snap {
		if want := uint64(6 + i); tr.Seq != want {
			t.Fatalf("snap[%d].Seq = %d, want %d", i, tr.Seq, want)
		}
	}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Add(BeginTrace(NewExchangeID(0, 0, 0), 0, 0, "root"))
	f.Add(BeginTrace(NewExchangeID(0, 0, 1), 0, 1, "root"))
	snap := f.Snapshot()
	if len(snap) != 2 || snap[0].Seq != 0 || snap[1].Seq != 1 {
		t.Fatalf("partial ring snapshot wrong: %d traces", len(snap))
	}
}

func TestFlightRecorderNil(t *testing.T) {
	var f *FlightRecorder
	f.Add(BeginTrace(NewExchangeID(0, 0, 0), 0, 0, "root"))
	if f.Depth() != 0 || f.Recorded() != 0 || f.Trips() != 0 || f.Snapshot() != nil {
		t.Fatal("nil flight recorder is not inert")
	}
	f.OnTrip(func(string, []*Trace) { t.Fatal("hook on nil recorder fired") })
	if f.Trip("x") != 0 {
		t.Fatal("Trip on nil recorder returned traces")
	}
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traces": []`) {
		t.Fatalf("nil dump missing empty traces array: %s", buf.String())
	}
}

func TestFlightRecorderTripHook(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Add(BeginTrace(NewExchangeID(0, 0, 0), 0, 0, "root"))
	var gotReason string
	var gotN int
	f.OnTrip(func(reason string, traces []*Trace) { gotReason, gotN = reason, len(traces) })
	if n := f.Trip("breaker-open"); n != 1 {
		t.Fatalf("Trip returned %d, want 1", n)
	}
	if gotReason != "breaker-open" || gotN != 1 {
		t.Fatalf("hook saw (%q, %d), want (breaker-open, 1)", gotReason, gotN)
	}
	if f.Trips() != 1 {
		t.Fatalf("Trips = %d, want 1", f.Trips())
	}
}

func TestFlightRecorderDumpToFileOnTrip(t *testing.T) {
	f := NewFlightRecorder(4)
	f.Add(BeginTrace(NewExchangeID(1, 0, 0), 0, 0, "root"))
	path := t.TempDir() + "/flight.json"
	f.DumpToFileOnTrip(path)
	f.Trip("exchange-error")
	var dump struct {
		Trips      int64  `json:"trips"`
		LastReason string `json:"last_reason"`
		Traces     []json.RawMessage
	}
	if err := json.Unmarshal([]byte(readFile(t, path)), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Trips != 1 || dump.LastReason != "exchange-error" || len(dump.Traces) != 1 {
		t.Fatalf("dump = %+v", dump)
	}
}

// TestFlightRecorderConcurrent exercises Add racing Snapshot/WriteJSON/Trip —
// the scenario the lock-free ring exists for. Run under -race.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(8)
	const writers, perWriter = 4, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				f.Add(BeginTrace(NewExchangeID(int64(w), 0, uint64(i)), 0, uint64(i), "root"))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		_ = f.Snapshot()
		_ = f.WriteJSON(io.Discard)
		f.Trip("concurrent")
	}
	wg.Wait()
	if f.Recorded() != writers*perWriter || f.Trips() != 50 {
		t.Fatalf("recorded=%d trips=%d", f.Recorded(), f.Trips())
	}
}

func TestWriteOpenMetrics(t *testing.T) {
	m := New()
	m.Counter("core.exchange.count").Add(7)
	m.Gauge("fleet.queue.depth").Set(3.5)
	h := m.Histogram("core.stage.exchange.seconds")
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE core_exchange_count counter\n",
		"core_exchange_count_total 7\n",
		"# TYPE fleet_queue_depth gauge\n",
		"fleet_queue_depth 3.5\n",
		"# TYPE core_stage_exchange_seconds summary\n",
		`core_stage_exchange_seconds{quantile="0.5",window="3"} 2` + "\n",
		"core_stage_exchange_seconds_sum 6\n",
		"core_stage_exchange_seconds_count 3\n",
		"# EOF\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("OpenMetrics output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatal("OpenMetrics output does not end with # EOF")
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"core.exchange.count": "core_exchange_count",
		"9lives":              "_9lives",
		"a-b c":               "a_b_c",
		"ok_name:sub":         "ok_name:sub",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Fatalf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestJSONLRecorderDropCounting(t *testing.T) {
	m := New()
	var buf bytes.Buffer
	r := NewJSONLRecorder(&buf).Instrument(m)
	r.Record(Event{Name: "ok", Node: -1})
	// NaN is not encodable as JSON — the event must drop, audibly.
	r.Record(Event{Name: "bad", Node: -1, Fields: map[string]any{"v": math.NaN()}})
	r.Record(Event{Name: "ok2", Node: -1})
	if r.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", r.Dropped())
	}
	if got := m.Snapshot().Counters["telemetry.recorder.dropped"]; got != 1 {
		t.Fatalf("drop counter = %d, want 1", got)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 2 {
		t.Fatalf("wrote %d lines, want 2 (dropped event must not emit)", lines)
	}
}

func TestDebugHandlerEndpoints(t *testing.T) {
	m := New()
	m.Counter("core.exchange.count").Inc()
	tracer := NewTracer()
	tracer.Collect(fixedTrace())
	flight := NewFlightRecorder(4)
	flight.Add(fixedTrace())
	srv := httptest.NewServer(DebugHandler(DebugConfig{Metrics: m, Tracer: tracer, Flight: flight}))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	if out := get("/metrics"); !strings.Contains(out, "core_exchange_count_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"core.exchange.count"`) {
		t.Fatalf("/metrics.json missing counter:\n%s", out)
	}
	if out := get("/debug/trace"); !strings.Contains(out, `"traceEvents"`) {
		t.Fatalf("/debug/trace not Chrome format:\n%s", out)
	}
	if out := get("/debug/trace?format=jsonl"); !strings.HasPrefix(out, `{"exchange_id"`) {
		t.Fatalf("/debug/trace?format=jsonl not JSONL:\n%s", out)
	}
	if out := get("/debug/flight"); !strings.Contains(out, `"recorded": 1`) {
		t.Fatalf("/debug/flight missing ring metadata:\n%s", out)
	}
}
