package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteOpenMetrics renders a snapshot in the OpenMetrics text format —
// the Prometheus-scrapeable sibling of the JSON snapshot, served on the
// debug mux at /metrics. Counters export as "<name>_total", gauges as
// plain samples, and histograms as summaries (quantile series plus _sum
// and _count).
//
// The quantile series carry the ring-buffer caveat of HistogramStats: they
// describe the most recent histWindow (512) observations, not the
// histogram's lifetime, while _sum and _count do span the lifetime. The
// "window" label on each quantile sample makes that machine-visible.
//
// Metric names are sanitized to the OpenMetrics charset (dots and dashes
// become underscores) and emitted in sorted order, so two equal snapshots
// render byte-identically.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := sanitizeMetricName(k)
		fmt.Fprintf(bw, "# TYPE %s counter\n", n)
		fmt.Fprintf(bw, "%s_total %d\n", n, s.Counters[k])
	}

	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := sanitizeMetricName(k)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", n)
		fmt.Fprintf(bw, "%s %g\n", n, s.Gauges[k])
	}

	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := sanitizeMetricName(k)
		h := s.Histograms[k]
		window := h.Count
		if window > histWindow {
			window = histWindow
		}
		fmt.Fprintf(bw, "# TYPE %s summary\n", n)
		for _, q := range [...]struct {
			q string
			v float64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			fmt.Fprintf(bw, "%s{quantile=\"%s\",window=\"%d\"} %g\n", n, q.q, window, q.v)
		}
		fmt.Fprintf(bw, "%s_sum %g\n", n, h.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", n, h.Count)
	}

	fmt.Fprint(bw, "# EOF\n")
	return bw.Flush()
}

// sanitizeMetricName maps a dotted registry name onto the OpenMetrics
// charset [a-zA-Z0-9_:], prefixing a leading digit with an underscore.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
