package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ExchangeID is the deterministic identity of one pipeline round. It is
// derived from the network's seed, the network's fleet-assigned identifier
// and a per-network exchange sequence counter — never from the wall clock —
// so the same run produces the same IDs every time, replay reproduces the
// IDs of the recorded run, and concurrent Fleet exchanges stay attributable
// when their telemetry interleaves into one stream.
type ExchangeID uint64

// NewExchangeID mixes (seed, network, seq) through splitmix64 so nearby
// sequences land far apart in ID space (IDs double as correlation keys in
// log search, where visual distinctness matters).
func NewExchangeID(seed int64, network int, seq uint64) ExchangeID {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(network)<<48 ^ seq
	// splitmix64 finalizer
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return ExchangeID(x ^ (x >> 31))
}

// String renders the ID as 16 hex digits, the form used in Event.Exchange
// and trace files.
func (id ExchangeID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// SpanNode is one node of an exchange's causal span tree: a named stage (or
// per-node unit of a stage) with its offset and duration relative to the
// trace start, an optional error verdict, free-form attributes, and child
// spans. The zero Node field -1 marks spans that are not node-scoped.
//
// Concurrency: Child may be called on the same parent from parallel
// pipeline workers (appends are mutex-guarded); everything else on a
// SpanNode — End, Fail, SetAttr — must be called only by the goroutine that
// owns the span, exactly once, before the trace is collected. A collected
// trace is immutable and safe to read from any goroutine.
//
// All methods are nil-receiver-safe no-ops (Child returns nil), so
// instrumented code threads spans unconditionally and pays one nil check
// when tracing is disabled.
type SpanNode struct {
	Name     string         `json:"name"`
	Node     int            `json:"node"`
	StartNS  int64          `json:"start_ns"`
	DurNS    int64          `json:"dur_ns"`
	Err      string         `json:"err,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanNode    `json:"children,omitempty"`

	mu sync.Mutex
	tr *Trace
}

// Trace is one exchange's complete span tree plus its identity: the
// flight-recorder entry, the JSONL line, and the Chrome trace_event unit.
type Trace struct {
	ID      string    `json:"exchange_id"`
	Network int       `json:"network"`
	Seq     uint64    `json:"seq"`
	Start   time.Time `json:"start"`
	Root    *SpanNode `json:"root"`
}

// BeginTrace starts a trace whose root span opens now.
func BeginTrace(id ExchangeID, network int, seq uint64, rootName string) *Trace {
	tr := &Trace{ID: id.String(), Network: network, Seq: seq, Start: time.Now()}
	tr.Root = &SpanNode{Name: rootName, Node: -1, tr: tr}
	return tr
}

// Child opens a child span under s, stamped with the current trace-relative
// offset. node is the network node index the span concerns, or -1. Returns
// nil (the inert span) on a nil receiver.
func (s *SpanNode) Child(name string, node int) *SpanNode {
	if s == nil {
		return nil
	}
	c := &SpanNode{Name: name, Node: node, tr: s.tr, StartNS: int64(time.Since(s.tr.Start))}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, recording its duration. No-op on a nil receiver.
func (s *SpanNode) End() {
	if s == nil {
		return
	}
	s.DurNS = int64(time.Since(s.tr.Start)) - s.StartNS
}

// Fail records a non-nil error on the span. No-op on nil receiver or error.
func (s *SpanNode) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.Err = err.Error()
}

// SetAttr attaches one free-form attribute (exported to Chrome trace args).
// No-op on a nil receiver.
func (s *SpanNode) SetAttr(key string, v any) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = map[string]any{}
	}
	s.Attrs[key] = v
}

// Walk visits the span and every descendant depth-first. No-op on nil.
func (s *SpanNode) Walk(fn func(*SpanNode)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}

// Context propagation. The active span and exchange ID travel through the
// pipeline inside the context, so lower layers (radar, tag, parallel)
// attach their sub-stage spans without the core threading tracer handles
// through every signature. When tracing is disabled the context is never
// wrapped and the lookups below return their zero values after one cheap,
// allocation-free Value call.
type (
	spanCtxKey struct{}
	exchCtxKey struct{}
)

// ContextWithSpan returns ctx carrying s as the active trace span.
func ContextWithSpan(ctx context.Context, s *SpanNode) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the active trace span, or nil when tracing is
// disabled (every SpanNode method no-ops on nil).
func SpanFromContext(ctx context.Context) *SpanNode {
	s, _ := ctx.Value(spanCtxKey{}).(*SpanNode)
	return s
}

// ContextWithExchangeID returns ctx carrying the exchange identity.
func ContextWithExchangeID(ctx context.Context, id ExchangeID) context.Context {
	return context.WithValue(ctx, exchCtxKey{}, id)
}

// ExchangeIDFromContext returns the exchange identity in ctx, if any.
func ExchangeIDFromContext(ctx context.Context) (ExchangeID, bool) {
	id, ok := ctx.Value(exchCtxKey{}).(ExchangeID)
	return id, ok
}

// Tracer collects completed exchange traces, bounded in memory: beyond the
// limit the oldest traces are evicted (and counted in Dropped). A nil
// *Tracer is the disabled tracer; Collect on it is a no-op.
//
// Collect is safe for concurrent use (Fleet engines collect into one
// shared tracer); a collected trace must no longer be mutated.
type Tracer struct {
	mu      sync.Mutex
	traces  []*Trace
	limit   int
	dropped int64
}

// DefaultTracerLimit bounds a Tracer's resident traces unless WithLimit
// overrides it.
const DefaultTracerLimit = 4096

// NewTracer returns an empty tracer holding at most DefaultTracerLimit
// traces.
func NewTracer() *Tracer { return &Tracer{limit: DefaultTracerLimit} }

// WithLimit sets the resident-trace bound (minimum 1) and returns the
// tracer for chaining.
func (t *Tracer) WithLimit(n int) *Tracer {
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
	return t
}

// Collect stores one completed trace, evicting the oldest past the limit.
// Safe on a nil receiver and for concurrent use.
func (t *Tracer) Collect(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	t.mu.Lock()
	t.traces = append(t.traces, tr)
	if over := len(t.traces) - t.limit; over > 0 {
		t.dropped += int64(over)
		t.traces = append(t.traces[:0], t.traces[over:]...)
	}
	t.mu.Unlock()
}

// Traces returns a copy of the resident traces in collection order. Empty
// on a nil receiver.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Trace(nil), t.traces...)
}

// Len returns the resident trace count (zero on a nil receiver).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// Dropped returns how many traces were evicted past the limit.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSONL streams the resident traces as one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error { return WriteTraceJSONL(w, t.Traces()) }

// WriteChromeTrace writes the resident traces in Chrome trace_event format.
func (t *Tracer) WriteChromeTrace(w io.Writer) error { return WriteChromeTrace(w, t.Traces()) }

// WriteTraceJSONL writes traces as JSON lines — the grep-friendly export.
func WriteTraceJSONL(w io.Writer, traces []*Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, tr := range traces {
		if err := enc.Encode(tr); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one Chrome trace_event entry ("X" complete events only).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the trace_event container Perfetto and chrome://tracing
// both accept.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes traces in the Chrome trace_event JSON format,
// viewable in Perfetto (ui.perfetto.dev) or chrome://tracing. Each network
// maps to a process row (pid), each node-scoped span to a thread row
// (tid = node+1; non-node spans share tid 0), and timestamps are absolute
// microseconds from the trace start times, so traces from one run lay out
// on a common timeline.
func WriteChromeTrace(w io.Writer, traces []*Trace) error {
	out := chromeTraceFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, tr := range traces {
		base := float64(tr.Start.UnixNano()) / 1e3
		tr.Root.Walk(func(s *SpanNode) {
			ev := chromeEvent{
				Name: s.Name,
				Cat:  "exchange",
				Ph:   "X",
				TS:   base + float64(s.StartNS)/1e3,
				Dur:  float64(s.DurNS) / 1e3,
				PID:  tr.Network,
				TID:  s.Node + 1,
			}
			if s == tr.Root || s.Err != "" || len(s.Attrs) > 0 {
				ev.Args = map[string]any{}
				if s == tr.Root {
					ev.Args["exchange_id"] = tr.ID
					ev.Args["seq"] = tr.Seq
				}
				if s.Err != "" {
					ev.Args["err"] = s.Err
				}
				// Attribute keys merge in sorted order for deterministic
				// output (map iteration order would not survive a golden
				// test; json marshals map keys sorted anyway, but merging
				// deterministically keeps the code honest).
				keys := make([]string, 0, len(s.Attrs))
				for k := range s.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					ev.Args[k] = s.Attrs[k]
				}
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		})
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", " ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteTraceFile writes traces to path, choosing the format by extension:
// ".json" selects Chrome trace_event (Perfetto-viewable), anything else
// JSON lines. This is the -trace-out dump format shared by the three
// commands.
func WriteTraceFile(path string, traces []*Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.EqualFold(filepath.Ext(path), ".json") {
		err = WriteChromeTrace(f, traces)
	} else {
		err = WriteTraceJSONL(f, traces)
	}
	if err != nil {
		return err
	}
	return f.Sync()
}
