// Package telemetry is the observability core of the simulator: lock-cheap
// metric primitives (atomic counters, float gauges, ring-buffer histograms
// with windowed quantiles), a per-stage timer API (Span/End), a pluggable
// structured event sink (Recorder), and snapshot/export plumbing (expvar,
// JSON, a debug HTTP server).
//
// Everything is nil-tolerant by design: a nil *Metrics hands out nil
// primitives, and every method on a nil primitive is a no-op. Pipeline code
// can therefore thread one optional *Metrics through unconditionally — when
// telemetry is disabled the hot path pays a nil check and nothing else, and
// no time.Now calls are made.
//
// Determinism contract: metric *counts* (Counter values, Histogram.Count,
// event counts) depend only on the work performed, never on worker-pool
// width or scheduling; timing values (histogram quantiles, span durations)
// and live pool gauges are exempt. Tests pin the counts across worker
// counts.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. Safe on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 level: a value that goes up and down (worker
// occupancy, last detection SNR) rather than accumulating.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by d via a CAS loop. Safe on a nil receiver.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current level (zero on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histWindow is the ring-buffer size of a Histogram: quantiles are computed
// over the most recent histWindow observations, while Count and Sum span the
// histogram's whole life.
const histWindow = 512

// Histogram accumulates float64 observations lock-free: a lifetime count and
// sum plus a ring buffer of the last histWindow samples for quantiles. Under
// heavy concurrency a ring slot may be overwritten by a racing writer more
// than histWindow observations ahead; the window is a statistical sample,
// not an exact tail, which is all quantile reporting needs.
type Histogram struct {
	count   atomic.Int64
	sumBits atomic.Uint64
	ring    [histWindow]atomic.Uint64
}

// Observe records one sample. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := h.count.Add(1) - 1
	h.ring[i%histWindow].Store(math.Float64bits(v))
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			break
		}
	}
}

// Count returns the lifetime observation count (zero on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Span returns a running timer that records its duration into h at End.
// On a nil receiver the span is inert and takes no clock reading.
func (h *Histogram) Span() Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// HistogramStats is a point-in-time summary of a Histogram. Count and Sum
// span the histogram's lifetime; Min/Max and the quantiles describe the
// ring-buffer window (the most recent observations).
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Stats summarizes the histogram. Safe on a nil receiver (zero stats).
func (h *Histogram) Stats() HistogramStats {
	var s HistogramStats
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sumBits.Load())
	if s.Count == 0 {
		return s
	}
	s.Mean = s.Sum / float64(s.Count)
	n := s.Count
	if n > histWindow {
		n = histWindow
	}
	win := make([]float64, n)
	for i := range win {
		win[i] = math.Float64frombits(h.ring[i].Load())
	}
	sort.Float64s(win)
	s.Min, s.Max = win[0], win[len(win)-1]
	s.P50 = Quantile(win, 0.50)
	s.P95 = Quantile(win, 0.95)
	s.P99 = Quantile(win, 0.99)
	return s
}

// Quantile returns the nearest-rank q-quantile (0 < q ≤ 1) of an ascending
// sorted slice: element ⌈q·n⌉ (1-based). Exported so tests can pin the
// histogram's quantile definition against an independent reference.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Span times one stage execution; obtain it from Metrics.Span or
// Histogram.Span and call End exactly once. The zero Span is inert.
type Span struct {
	h     *Histogram
	start time.Time
}

// End records the elapsed seconds into the span's histogram. No-op on an
// inert span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Seconds())
}

// Metrics is a named registry of counters, gauges and histograms. The nil
// *Metrics is the disabled registry: it hands out nil primitives whose
// methods all no-op, so instrumented code needs no conditionals.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New returns an empty metrics registry.
func New() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (the no-op counter) on a nil registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (m *Metrics) Gauge(name string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	g := m.gauges[name]
	m.mu.RUnlock()
	if g != nil {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g = m.gauges[name]; g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.RLock()
	h := m.hists[name]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.hists[name]; h == nil {
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// Span starts a timer recording into the histogram "<stage>.seconds". On a
// nil registry the span is inert and no clock is read.
func (m *Metrics) Span(stage string) Span {
	if m == nil {
		return Span{}
	}
	return m.Histogram(stage + ".seconds").Span()
}

// Snapshot is a point-in-time copy of a registry, safe to marshal, diff and
// hand across API boundaries. Map keys marshal in sorted order, so two
// snapshots with equal values produce identical JSON.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// Snapshot captures every registered metric. Safe on a nil registry (empty
// maps), and safe concurrently with ongoing updates.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramStats{},
	}
	if m == nil {
		return s
	}
	m.mu.RLock()
	counters := make(map[string]*Counter, len(m.counters))
	for k, v := range m.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(m.gauges))
	for k, v := range m.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(m.hists))
	for k, v := range m.hists {
		hists[k] = v
	}
	m.mu.RUnlock()
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, v := range hists {
		s.Histograms[k] = v.Stats()
	}
	return s
}
