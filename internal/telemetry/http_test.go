package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestHandlerServesSnapshot exercises the debug mux end to end with a live
// registry.
func TestHandlerServesSnapshot(t *testing.T) {
	m := New()
	m.Counter("http.test.hits").Add(3)
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("status %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var snap Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["http.test.hits"] != 3 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}

	vars, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer vars.Body.Close()
	if vars.StatusCode != 200 {
		t.Fatalf("/debug/vars status %d", vars.StatusCode)
	}
}

// TestHandlerNilRegistry pins that the debug mux tolerates a nil registry —
// every endpoint must serve an empty snapshot rather than panic, because
// command-line tools wire the handler up before deciding whether telemetry
// is enabled.
func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()

	for _, path := range []string{"/metrics.json", "/debug/vars"} {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if res.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, res.StatusCode)
		}
		res.Body.Close()
	}

	res, err := srv.Client().Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry produced a non-empty snapshot: %+v", snap)
	}
}

// TestPublishExpvarRedirects pins the latest-wins contract: republishing
// points the single expvar variable at the new registry.
func TestPublishExpvarRedirects(t *testing.T) {
	a := New()
	a.Counter("redirect.probe").Add(1)
	PublishExpvar(a)
	b := New()
	b.Counter("redirect.probe").Add(2)
	PublishExpvar(b)

	srv := httptest.NewServer(Handler(b))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(res.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(vars["biscatter"], &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["redirect.probe"] != 2 {
		t.Fatalf("expvar still reads the old registry: %v", snap.Counters)
	}
}
