package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
)

// current is the registry the process-wide expvar export reads. expvar
// variables cannot be unpublished, so the export is published once and
// indirects through this pointer; the latest ServeDebug/PublishExpvar call
// wins.
var (
	current     atomic.Pointer[Metrics]
	publishOnce sync.Once
)

// PublishExpvar exports m's snapshot as the expvar variable "biscatter"
// (visible at /debug/vars wherever expvar is served). Calling it again
// redirects the existing variable to the new registry.
func PublishExpvar(m *Metrics) {
	current.Store(m)
	publishOnce.Do(func() {
		expvar.Publish("biscatter", expvar.Func(func() any {
			return current.Load().Snapshot()
		}))
	})
}

// DebugConfig selects what the debug mux serves: the metrics registry is
// the baseline; a Tracer adds /debug/trace, a FlightRecorder /debug/flight.
// Nil fields serve empty (but valid) responses on their endpoints.
type DebugConfig struct {
	// Metrics backs /metrics.json, /metrics and the expvar export.
	Metrics *Metrics
	// Tracer backs /debug/trace.
	Tracer *Tracer
	// Flight backs /debug/flight.
	Flight *FlightRecorder
}

// Handler returns the live-introspection mux for a registry; equivalent to
// DebugHandler(DebugConfig{Metrics: m}).
func Handler(m *Metrics) http.Handler { return DebugHandler(DebugConfig{Metrics: m}) }

// DebugHandler returns the live-introspection mux:
//
//	/metrics.json  — indented JSON Snapshot of the registry
//	/metrics       — OpenMetrics text exposition (Prometheus-scrapeable)
//	/debug/trace   — collected exchange traces: Chrome trace_event JSON
//	                 (open in Perfetto), or JSONL with ?format=jsonl
//	/debug/flight  — flight-recorder dump (ring metadata + recent traces)
//	/debug/vars    — expvar (includes the "biscatter" snapshot and Go runtime vars)
//	/debug/pprof/* — CPU, heap, goroutine and trace profiles
func DebugHandler(c DebugConfig) http.Handler {
	PublishExpvar(c.Metrics)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(c.Metrics.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		_ = WriteOpenMetrics(w, c.Metrics.Snapshot())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		traces := c.Tracer.Traces()
		if r.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/jsonl")
			_ = WriteTraceJSONL(w, traces)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = WriteChromeTrace(w, traces)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = c.Flight.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr and serves Handler(m) in a background goroutine,
// returning the listener so callers can log the resolved address (use
// ":0" to pick a free port) and close it on shutdown.
func ServeDebug(addr string, m *Metrics) (net.Listener, error) {
	return ServeDebugConfig(addr, DebugConfig{Metrics: m})
}

// ServeDebugConfig is ServeDebug for the full observability surface —
// metrics plus tracer plus flight recorder.
func ServeDebugConfig(addr string, c DebugConfig) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: DebugHandler(c)}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}

// WriteSnapshotFile writes the snapshot as indented JSON to path — the
// -metrics-out dump format, also embedded into BENCH_exchange.json by
// scripts/bench_exchange.sh.
func WriteSnapshotFile(path string, s Snapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
