package telemetry

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
)

// current is the registry the process-wide expvar export reads. expvar
// variables cannot be unpublished, so the export is published once and
// indirects through this pointer; the latest ServeDebug/PublishExpvar call
// wins.
var (
	current     atomic.Pointer[Metrics]
	publishOnce sync.Once
)

// PublishExpvar exports m's snapshot as the expvar variable "biscatter"
// (visible at /debug/vars wherever expvar is served). Calling it again
// redirects the existing variable to the new registry.
func PublishExpvar(m *Metrics) {
	current.Store(m)
	publishOnce.Do(func() {
		expvar.Publish("biscatter", expvar.Func(func() any {
			return current.Load().Snapshot()
		}))
	})
}

// Handler returns the live-introspection mux for a registry:
//
//	/metrics.json  — indented JSON Snapshot of m
//	/debug/vars    — expvar (includes the "biscatter" snapshot and Go runtime vars)
//	/debug/pprof/* — CPU, heap, goroutine and trace profiles
func Handler(m *Metrics) http.Handler {
	PublishExpvar(m)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug binds addr and serves Handler(m) in a background goroutine,
// returning the listener so callers can log the resolved address (use
// ":0" to pick a free port) and close it on shutdown.
func ServeDebug(addr string, m *Metrics) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(m)}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}

// WriteSnapshotFile writes the snapshot as indented JSON to path — the
// -metrics-out dump format, also embedded into BENCH_exchange.json by
// scripts/bench_exchange.sh.
func WriteSnapshotFile(path string, s Snapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
