package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	m := New()
	c := m.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if m.Counter("a.count") != c {
		t.Fatal("registry must return the same counter for the same name")
	}
	g := m.Gauge("a.level")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

// TestHistogramQuantilesAgainstSortedReference pins the histogram's
// quantiles against an independently computed nearest-rank reference over
// the same samples.
func TestHistogramQuantilesAgainstSortedReference(t *testing.T) {
	m := New()
	h := m.Histogram("lat")
	// 500 values fit inside the ring window, so the quantiles are exact.
	vals := make([]float64, 500)
	for i := range vals {
		// A non-monotonic ordering so sortedness comes from Stats, not
		// insertion order.
		v := float64((i*7919)%500) + 1 // permutation of 1..500
		vals[i] = v
		h.Observe(v)
	}
	ref := append([]float64(nil), vals...)
	sort.Float64s(ref)
	refQ := func(q float64) float64 { return ref[int(math.Ceil(q*float64(len(ref))))-1] }

	s := h.Stats()
	if s.Count != 500 {
		t.Fatalf("count = %d, want 500", s.Count)
	}
	if want := 500.0 * 501 / 2; s.Sum != want {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	if s.Min != 1 || s.Max != 500 {
		t.Fatalf("min/max = %v/%v, want 1/500", s.Min, s.Max)
	}
	for _, tc := range []struct {
		q    float64
		got  float64
		name string
	}{{0.50, s.P50, "p50"}, {0.95, s.P95, "p95"}, {0.99, s.P99, "p99"}} {
		if want := refQ(tc.q); tc.got != want {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, want)
		}
	}
}

func TestHistogramWindowOverflow(t *testing.T) {
	h := New().Histogram("h")
	for i := 0; i < 3*histWindow; i++ {
		h.Observe(float64(i))
	}
	s := h.Stats()
	if s.Count != 3*histWindow {
		t.Fatalf("count = %d, want %d", s.Count, 3*histWindow)
	}
	// The window holds the last histWindow observations, so the minimum of
	// the window is the first sample of the final wrap.
	if s.Min != float64(2*histWindow) {
		t.Fatalf("window min = %v, want %v", s.Min, float64(2*histWindow))
	}
	if s.Max != float64(3*histWindow-1) {
		t.Fatalf("window max = %v, want %v", s.Max, float64(3*histWindow-1))
	}
}

// TestNilRegistryIsInert is the disabled-telemetry contract: every method
// chain off a nil *Metrics must be a safe no-op.
func TestNilRegistryIsInert(t *testing.T) {
	var m *Metrics
	m.Counter("x").Inc()
	m.Gauge("x").Set(1)
	m.Gauge("x").Add(1)
	m.Histogram("x").Observe(1)
	sp := m.Span("x")
	sp.End()
	m.Histogram("x").Span().End()
	if v := m.Counter("x").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	s := m.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", s)
	}
}

// TestDisabledSpanIsAllocationFree pins the disabled-telemetry fast path:
// the per-chirp hot loops open a span per unit of work, so with telemetry
// off (nil registry → nil histogram) a Span/End pair must not touch the
// heap — Span is returned by value and End takes no clock reading.
func TestDisabledSpanIsAllocationFree(t *testing.T) {
	var m *Metrics
	h := m.Histogram("x")
	if allocs := testing.AllocsPerRun(100, func() {
		sp := h.Span()
		sp.End()
	}); allocs != 0 {
		t.Fatalf("disabled histogram Span/End allocated %v times per op", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		sp := m.Span("stage")
		sp.End()
	}); allocs != 0 {
		t.Fatalf("disabled metrics Span/End allocated %v times per op", allocs)
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	m := New()
	sp := m.Span("stage.demo")
	time.Sleep(time.Millisecond)
	sp.End()
	s := m.Histogram("stage.demo.seconds").Stats()
	if s.Count != 1 {
		t.Fatalf("span count = %d, want 1", s.Count)
	}
	if s.Sum <= 0 {
		t.Fatalf("span duration = %v, want > 0", s.Sum)
	}
}

// TestConcurrentUpdatesRace hammers one registry from many goroutines —
// counters, gauges, histograms, registration and snapshots all at once —
// and checks the deterministic totals. Run under -race this is the
// lock-correctness proof for the metrics core.
func TestConcurrentUpdatesRace(t *testing.T) {
	m := New()
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.Counter("shared.count").Inc()
				m.Counter(fmt.Sprintf("per.%d.count", id)).Inc()
				m.Gauge("shared.level").Add(1)
				m.Gauge("shared.level").Add(-1)
				m.Histogram("shared.hist").Observe(float64(i))
				if i%64 == 0 {
					_ = m.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := m.Counter("shared.count").Value(); got != goroutines*perG {
		t.Fatalf("shared counter = %d, want %d", got, goroutines*perG)
	}
	if got := m.Histogram("shared.hist").Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := m.Gauge("shared.level").Value(); got != 0 {
		t.Fatalf("gauge after balanced adds = %v, want 0", got)
	}
	snap := m.Snapshot()
	if got := snap.Counters["per.3.count"]; got != perG {
		t.Fatalf("per-goroutine counter = %d, want %d", got, perG)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	build := func() Snapshot {
		m := New()
		m.Counter("b").Add(2)
		m.Counter("a").Add(1)
		m.Gauge("g").Set(3.5)
		m.Histogram("h").Observe(1)
		return m.Snapshot()
	}
	j1, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", j1, j2)
	}
}

func TestRecorders(t *testing.T) {
	var sr SliceRecorder
	var sb strings.Builder
	jr := NewJSONLRecorder(&sb)
	for i := 0; i < 3; i++ {
		e := Event{Name: "node.downlink", Node: i, Fields: map[string]any{"ok": true}}
		sr.Record(e)
		jr.Record(e)
	}
	sr.Record(Event{Name: "exchange.end", Node: -1})
	if got := sr.CountByName()["node.downlink"]; got != 3 {
		t.Fatalf("slice recorder counted %d node.downlink events, want 3", got)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("jsonl recorder wrote %d lines, want 3", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("jsonl line not valid JSON: %v", err)
	}
	if e.Name != "node.downlink" || e.Node != 1 {
		t.Fatalf("round-tripped event = %+v", e)
	}
}

func TestServeDebugEndpoints(t *testing.T) {
	m := New()
	m.Counter("demo.count").Add(7)
	m.Span("demo.stage").End()
	ln, err := ServeDebug("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + ln.Addr().String() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/metrics.json")), &snap); err != nil {
		t.Fatalf("/metrics.json not a snapshot: %v", err)
	}
	if snap.Counters["demo.count"] != 7 {
		t.Fatalf("snapshot over HTTP lost the counter: %+v", snap)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, `"biscatter"`) || !strings.Contains(vars, "demo.count") {
		t.Fatalf("/debug/vars missing published metrics: %.200s", vars)
	}
	if body := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index unexpected: %.120s", body)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	one := []float64{42}
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got := Quantile(one, q); got != 42 {
			t.Fatalf("single-element q%v = %v", q, got)
		}
	}
}
