package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// FlightRecorder keeps the last N exchange traces in a bounded lock-free
// ring — always on, always cheap — so that when something goes wrong the
// recent history is already captured: the "black box" to attach to a bug
// report. It dumps automatically when tripped (the exchange engine trips it
// on exchange errors, the link controller when a circuit breaker opens) and
// on demand via FlightRecorder.WriteJSON / the /debug/flight endpoint.
//
// Add is wait-free: one atomic fetch-add plus one atomic pointer store, so
// recording a completed trace never contends with the pipeline or with a
// concurrent dump. A dump taken while exchanges are landing sees each slot
// as either its old or its new trace — both complete, immutable trees —
// never a torn entry.
//
// A nil *FlightRecorder is the disabled recorder: every method no-ops.
type FlightRecorder struct {
	slots []atomic.Pointer[Trace]
	next  atomic.Uint64
	trips atomic.Int64

	mu         sync.Mutex
	onTrip     func(reason string, traces []*Trace)
	lastReason string
	lastTrip   time.Time
}

// DefaultFlightDepth is the ring depth when NewFlightRecorder is given a
// non-positive size.
const DefaultFlightDepth = 32

// NewFlightRecorder returns a recorder holding the last n traces
// (DefaultFlightDepth when n <= 0).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightDepth
	}
	return &FlightRecorder{slots: make([]atomic.Pointer[Trace], n)}
}

// Depth returns the ring capacity (zero on a nil receiver).
func (f *FlightRecorder) Depth() int {
	if f == nil {
		return 0
	}
	return len(f.slots)
}

// Add records one completed trace, overwriting the oldest entry once the
// ring is full. Safe on a nil receiver and for concurrent use.
func (f *FlightRecorder) Add(tr *Trace) {
	if f == nil || tr == nil {
		return
	}
	i := f.next.Add(1) - 1
	f.slots[i%uint64(len(f.slots))].Store(tr)
}

// Recorded returns the lifetime trace count (zero on a nil receiver).
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	return f.next.Load()
}

// Snapshot returns the resident traces, oldest first. Under concurrent
// writers a slot may resolve to a trace newer than the snapshot's nominal
// window — the ring is a best-effort recent history, not a serialized log.
// Empty on a nil receiver.
func (f *FlightRecorder) Snapshot() []*Trace {
	if f == nil {
		return nil
	}
	total := f.next.Load()
	n := uint64(len(f.slots))
	if total < n {
		n = total
	}
	out := make([]*Trace, 0, n)
	for k := total - n; k < total; k++ {
		if tr := f.slots[k%uint64(len(f.slots))].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	return out
}

// OnTrip installs the auto-dump hook invoked by Trip with the trip reason
// and a snapshot of the ring. Safe on a nil receiver (no-op).
func (f *FlightRecorder) OnTrip(fn func(reason string, traces []*Trace)) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.onTrip = fn
	f.mu.Unlock()
}

// DumpToFileOnTrip installs an OnTrip hook that writes the full JSON dump
// to path on every trip (overwriting — the newest trip wins, and the dump
// contains the recent-history ring anyway). Errors writing the dump are
// dropped: the flight recorder must never fail the pipeline it observes.
func (f *FlightRecorder) DumpToFileOnTrip(path string) {
	f.OnTrip(func(string, []*Trace) {
		if out, err := os.Create(path); err == nil {
			_ = f.WriteJSON(out)
			_ = out.Close()
		}
	})
}

// Trip records an abnormal event — an exchange error, a node quarantine —
// and invokes the OnTrip hook with the current ring snapshot. It returns
// the number of traces in the snapshot. Safe on a nil receiver (returns 0)
// and for concurrent use.
func (f *FlightRecorder) Trip(reason string) int {
	if f == nil {
		return 0
	}
	f.trips.Add(1)
	f.mu.Lock()
	f.lastReason = reason
	f.lastTrip = time.Now()
	fn := f.onTrip
	f.mu.Unlock()
	traces := f.Snapshot()
	if fn != nil {
		fn(reason, traces)
	}
	return len(traces)
}

// Trips returns how many times the recorder has been tripped.
func (f *FlightRecorder) Trips() int64 {
	if f == nil {
		return 0
	}
	return f.trips.Load()
}

// flightDump is the JSON shape of a flight-recorder dump.
type flightDump struct {
	Depth      int       `json:"depth"`
	Recorded   uint64    `json:"recorded"`
	Trips      int64     `json:"trips"`
	LastReason string    `json:"last_reason,omitempty"`
	LastTrip   time.Time `json:"last_trip"`
	Traces     []*Trace  `json:"traces"`
}

// WriteJSON writes the full dump — ring metadata, trip history, and the
// resident traces oldest-first — as indented JSON: the artifact to attach
// to a bug report. Safe on a nil receiver (writes an empty dump).
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	d := flightDump{Traces: []*Trace{}}
	if f != nil {
		f.mu.Lock()
		d.LastReason, d.LastTrip = f.lastReason, f.lastTrip
		f.mu.Unlock()
		d.Depth = len(f.slots)
		d.Recorded = f.next.Load()
		d.Trips = f.trips.Load()
		if snap := f.Snapshot(); snap != nil {
			d.Traces = snap
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return err
	}
	return bw.Flush()
}
