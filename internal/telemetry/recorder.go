package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one structured pipeline occurrence: an exchange starting, a
// node's downlink decode finishing, a detection verdict. Events carry
// small free-form field maps rather than a fixed schema so new stages can
// add context without breaking sinks.
//
// Events emitted from parallel stages arrive in scheduling order; only
// their multiset (names, per-node fields) is deterministic across worker
// counts, not their interleaving.
type Event struct {
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// Name identifies the event kind, dotted lowercase ("exchange.begin",
	// "node.downlink").
	Name string `json:"name"`
	// Node is the network node index the event concerns, or -1 when the
	// event is not node-scoped.
	Node int `json:"node"`
	// Exchange is the deterministic ExchangeID (16 hex digits) of the
	// pipeline round the event belongs to, or "" outside any round. It is
	// what keeps concurrent Fleet exchanges attributable after their events
	// interleave into one stream.
	Exchange string `json:"exchange,omitempty"`
	// Network identifies the emitting network: the Fleet-assigned network
	// id, or 0 for a standalone network.
	Network int `json:"network"`
	// Fields carries event-specific context (durations, outcomes, SNRs).
	Fields map[string]any `json:"fields,omitempty"`
}

// Recorder is the pluggable structured event sink. Implementations must be
// safe for concurrent use: parallel pipeline stages record without
// coordination.
type Recorder interface {
	Record(Event)
}

// NopRecorder discards every event.
type NopRecorder struct{}

// Record implements Recorder.
func (NopRecorder) Record(Event) {}

// SliceRecorder accumulates events in memory under a mutex — the test and
// introspection sink.
type SliceRecorder struct {
	mu     sync.Mutex
	events []Event
}

// Record implements Recorder.
func (r *SliceRecorder) Record(e Event) {
	r.mu.Lock()
	r.events = append(r.events, e)
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in arrival order.
func (r *SliceRecorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// CountByName returns how many recorded events carry each name.
func (r *SliceRecorder) CountByName() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]int{}
	for _, e := range r.events {
		out[e.Name]++
	}
	return out
}

// JSONLRecorder streams events to a writer as JSON lines, serialized by a
// mutex so concurrent records never interleave bytes.
type JSONLRecorder struct {
	mu      sync.Mutex
	enc     *json.Encoder
	dropped atomic.Int64
	dropC   *Counter
}

// NewJSONLRecorder returns a recorder writing one JSON object per line to w.
func NewJSONLRecorder(w io.Writer) *JSONLRecorder {
	return &JSONLRecorder{enc: json.NewEncoder(w)}
}

// Instrument resolves the drop counter "telemetry.recorder.dropped" in m,
// surfacing encode-error drops in the registry's Snapshot, and returns the
// recorder for chaining. A nil registry leaves only the local Dropped tally.
func (r *JSONLRecorder) Instrument(m *Metrics) *JSONLRecorder {
	r.dropC = m.Counter("telemetry.recorder.dropped")
	return r
}

// Record implements Recorder. An event sink must never fail the pipeline,
// so encoding errors drop the event — but audibly: every drop counts into
// Dropped and, when instrumented, into "telemetry.recorder.dropped".
func (r *JSONLRecorder) Record(e Event) {
	r.mu.Lock()
	err := r.enc.Encode(e)
	r.mu.Unlock()
	if err != nil {
		r.dropped.Add(1)
		r.dropC.Inc()
	}
}

// Dropped returns how many events were lost to encode errors.
func (r *JSONLRecorder) Dropped() int64 { return r.dropped.Load() }
