package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestExchangeIDDeterministic(t *testing.T) {
	a := NewExchangeID(42, 3, 17)
	b := NewExchangeID(42, 3, 17)
	if a != b {
		t.Fatalf("same inputs produced different IDs: %v vs %v", a, b)
	}
	if len(a.String()) != 16 {
		t.Fatalf("ID %q is not 16 hex digits", a.String())
	}
	// Distinct coordinates must land on distinct IDs (the whole point of the
	// mixer: nearby sequences far apart in ID space).
	seen := map[ExchangeID]string{}
	for seed := int64(0); seed < 4; seed++ {
		for net := 0; net < 4; net++ {
			for seq := uint64(0); seq < 64; seq++ {
				id := NewExchangeID(seed, net, seq)
				key := fmt.Sprintf("%d/%d/%d", seed, net, seq)
				if prev, dup := seen[id]; dup {
					t.Fatalf("collision: %s and %s both map to %v", prev, key, id)
				}
				seen[id] = key
			}
		}
	}
}

func TestSpanTreeShapeAndWalk(t *testing.T) {
	tr := BeginTrace(NewExchangeID(1, 0, 0), 0, 0, "exchange")
	down := tr.Root.Child("downlink", -1)
	for n := 0; n < 3; n++ {
		c := down.Child("node.downlink", n)
		c.SetAttr("ok", true)
		c.End()
	}
	down.End()
	up := tr.Root.Child("uplink", -1)
	up.Fail(fmt.Errorf("decode failed"))
	up.End()
	tr.Root.End()

	var names []string
	tr.Root.Walk(func(s *SpanNode) { names = append(names, s.Name) })
	want := []string{"exchange", "downlink", "node.downlink", "node.downlink", "node.downlink", "uplink"}
	if len(names) != len(want) {
		t.Fatalf("walk visited %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("walk order %v, want %v", names, want)
		}
	}
	if up.Err != "decode failed" {
		t.Fatalf("Fail did not record error: %q", up.Err)
	}
	if down.Children[1].Node != 1 {
		t.Fatalf("child node index = %d, want 1", down.Children[1].Node)
	}
}

func TestSpanNilSafety(t *testing.T) {
	var s *SpanNode
	if c := s.Child("x", 0); c != nil {
		t.Fatalf("nil span Child returned non-nil")
	}
	s.End()
	s.Fail(fmt.Errorf("ignored"))
	s.SetAttr("k", 1)
	s.Walk(func(*SpanNode) { t.Fatal("walk on nil span visited a node") })

	var tracer *Tracer
	tracer.Collect(&Trace{})
	if tracer.Len() != 0 || tracer.Traces() != nil || tracer.Dropped() != 0 {
		t.Fatal("nil tracer is not inert")
	}
}

func TestSpanContextPropagation(t *testing.T) {
	ctx := context.Background()
	if s := SpanFromContext(ctx); s != nil {
		t.Fatal("unwrapped context carried a span")
	}
	if _, ok := ExchangeIDFromContext(ctx); ok {
		t.Fatal("unwrapped context carried an exchange ID")
	}
	tr := BeginTrace(NewExchangeID(7, 0, 0), 0, 0, "root")
	id := NewExchangeID(7, 0, 0)
	ctx = ContextWithSpan(ContextWithExchangeID(ctx, id), tr.Root)
	if got := SpanFromContext(ctx); got != tr.Root {
		t.Fatal("span did not round-trip through context")
	}
	if got, ok := ExchangeIDFromContext(ctx); !ok || got != id {
		t.Fatal("exchange ID did not round-trip through context")
	}
}

func TestConcurrentChildAppend(t *testing.T) {
	tr := BeginTrace(NewExchangeID(9, 0, 0), 0, 0, "root")
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := tr.Root.Child("unit", w)
				c.End()
			}
		}(w)
	}
	wg.Wait()
	if len(tr.Root.Children) != workers*50 {
		t.Fatalf("lost children: %d, want %d", len(tr.Root.Children), workers*50)
	}
}

func TestTracerLimitEviction(t *testing.T) {
	tr := NewTracer().WithLimit(3)
	for i := 0; i < 5; i++ {
		tr.Collect(BeginTrace(NewExchangeID(0, 0, uint64(i)), 0, uint64(i), "root"))
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	traces := tr.Traces()
	if traces[0].Seq != 2 || traces[2].Seq != 4 {
		t.Fatalf("eviction kept wrong traces: seqs %d..%d", traces[0].Seq, traces[2].Seq)
	}
}

// fixedTrace builds a trace with hand-set timestamps so exports are
// byte-reproducible.
func fixedTrace() *Trace {
	tr := &Trace{
		ID:      NewExchangeID(2024, 1, 5).String(),
		Network: 1,
		Seq:     5,
		Start:   time.Unix(1700000000, 0).UTC(),
	}
	tr.Root = &SpanNode{Name: "exchange", Node: -1, DurNS: 4000, tr: tr}
	down := &SpanNode{Name: "downlink", Node: -1, StartNS: 500, DurNS: 1500, tr: tr}
	n0 := &SpanNode{Name: "node.downlink", Node: 0, StartNS: 600, DurNS: 1000, tr: tr,
		Attrs: map[string]any{"ok": true, "bits": 40}}
	up := &SpanNode{Name: "uplink", Node: -1, StartNS: 2500, DurNS: 1000, Err: "boom", tr: tr}
	down.Children = []*SpanNode{n0}
	tr.Root.Children = []*SpanNode{down, up}
	return tr
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Trace{fixedTrace()}); err != nil {
		t.Fatal(err)
	}
	const want = `{
 "traceEvents": [
  {
   "name": "exchange",
   "cat": "exchange",
   "ph": "X",
   "ts": 1700000000000000,
   "dur": 4,
   "pid": 1,
   "tid": 0,
   "args": {
    "exchange_id": "cf7b22450d8eec26",
    "seq": 5
   }
  },
  {
   "name": "downlink",
   "cat": "exchange",
   "ph": "X",
   "ts": 1700000000000000.5,
   "dur": 1.5,
   "pid": 1,
   "tid": 0
  },
  {
   "name": "node.downlink",
   "cat": "exchange",
   "ph": "X",
   "ts": 1700000000000000.5,
   "dur": 1,
   "pid": 1,
   "tid": 1,
   "args": {
    "bits": 40,
    "ok": true
   }
  },
  {
   "name": "uplink",
   "cat": "exchange",
   "ph": "X",
   "ts": 1700000000000002.5,
   "dur": 1,
   "pid": 1,
   "tid": 0,
   "args": {
    "err": "boom"
   }
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if got := buf.String(); got != want {
		t.Fatalf("chrome trace mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestWriteTraceJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceJSONL(&buf, []*Trace{fixedTrace(), fixedTrace()}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL lines = %d, want 2", len(lines))
	}
	var back Trace
	if err := json.Unmarshal([]byte(lines[0]), &back); err != nil {
		t.Fatalf("JSONL line does not parse: %v", err)
	}
	if back.ID != fixedTrace().ID || back.Root.Children[0].Children[0].Node != 0 {
		t.Fatal("JSONL round trip lost structure")
	}
}

func TestWriteTraceFileFormats(t *testing.T) {
	dir := t.TempDir()
	tr := []*Trace{fixedTrace()}
	jsonPath := dir + "/trace.json"
	jsonlPath := dir + "/trace.jsonl"
	if err := WriteTraceFile(jsonPath, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteTraceFile(jsonlPath, tr); err != nil {
		t.Fatal(err)
	}
	chrome, jsonl := readFile(t, jsonPath), readFile(t, jsonlPath)
	if !strings.Contains(chrome, "traceEvents") {
		t.Fatal(".json file is not Chrome trace_event format")
	}
	if strings.Contains(jsonl, "traceEvents") || !strings.HasPrefix(jsonl, "{\"exchange_id\"") {
		t.Fatal(".jsonl file is not JSON lines format")
	}
}
