// Package fault is the deterministic impairment layer of the BiScatter
// simulation: a set of independently configured, per-seed reproducible
// injectors that compose onto the signal path — and leave it byte-identical
// when disabled. The paper's evaluation lives on behavior under real-world
// impairments (BER vs SNR in Figs. 14/17, multipath-rich offices, moving
// people, multi-tag interference); this package turns those conditions into
// configuration the scenario harness and the robustness conformance suite
// can sweep and pin.
//
// Each impairment models one physical failure mode:
//
//   - Interference: a duty-cycled in-band jammer, gated in slow time. On the
//     tag side it lands as a tone at the envelope detector (scaled by the
//     link's jammer-to-signal ratio); on the radar side as an IF tone with
//     per-chirp random phase that leaks across the Doppler spectrum.
//   - OscillatorDrift: offset + linear drift + per-chirp jitter on the tag's
//     Eq. 9 beat output, modeling a cheap tag reference oscillator.
//   - Dropout: per-chirp TX dropouts — the chirp is missing (or clipped to a
//     leading fraction) for the tag and the radar alike.
//   - Saturation: ADC clipping and quantization at the tag front-end.
//   - Desync: capture-start jitter against T_period — a tag waking late
//     relative to the symbol boundary.
//   - Moving clutter: extra channel.Reflector entries (typically with
//     non-zero Velocity) appended to the radar scene, feeding the Doppler
//     path with time-varying multipath.
//
// All injector randomness comes from a stateless hash RNG keyed by
// (seed, stream, index), so decisions are worker-order independent and the
// pipeline's own noise realizations are never perturbed. Injected faults are
// observable through the fault.injected.* telemetry counters, registered
// per stage only when the corresponding impairment is enabled.
package fault

import (
	"fmt"

	"biscatter/internal/channel"
)

// Interference is a burst in-band jammer gated in slow time: for DutyCycle
// of every PeriodChirps-chirp cycle the jammer is on, and every chirp in the
// on-window is hit on both sides of the link. Raising DutyCycle with a fixed
// seed strictly grows the set of jammed chirps, which is what makes the
// monotone-BER conformance check well-posed.
type Interference struct {
	// TagPowerDBm is the interferer's power at the tag's envelope detector
	// input. Zero disables the tag-side tone (0 dBm is far above any
	// plausible detector input).
	TagPowerDBm float64
	// RadarPowerDBm is the jam tone power at the radar IF input. Zero
	// disables the radar-side tone.
	RadarPowerDBm float64
	// DutyCycle is the jammed fraction of slow time, in [0, 1].
	DutyCycle float64
	// PeriodChirps is the on/off gating cycle length in chirps; default 16.
	PeriodChirps int
	// TagToneFraction places the tag-side jam tone at this fraction of the
	// tag ADC rate; default 0.05 (50 kHz at 1 MHz — mid constellation band).
	TagToneFraction float64
	// RadarToneFraction places the radar-side jam tone at this fraction of
	// the radar IF sample rate; default 0.31.
	RadarToneFraction float64
}

func (i *Interference) withDefaults() Interference {
	c := *i
	if c.PeriodChirps <= 0 {
		c.PeriodChirps = 16
	}
	if c.TagToneFraction == 0 {
		c.TagToneFraction = 0.05
	}
	if c.RadarToneFraction == 0 {
		c.RadarToneFraction = 0.31
	}
	return c
}

func (i *Interference) validate() error {
	if i.DutyCycle < 0 || i.DutyCycle > 1 {
		return fmt.Errorf("fault: interference duty cycle %v must be in [0, 1]", i.DutyCycle)
	}
	if i.PeriodChirps < 0 {
		return fmt.Errorf("fault: interference period %d chirps must be non-negative", i.PeriodChirps)
	}
	c := i.withDefaults()
	if c.TagToneFraction < 0 || c.TagToneFraction >= 0.5 {
		return fmt.Errorf("fault: tag tone fraction %v must be in [0, 0.5)", c.TagToneFraction)
	}
	if c.RadarToneFraction < 0 || c.RadarToneFraction >= 0.5 {
		return fmt.Errorf("fault: radar tone fraction %v must be in [0, 0.5)", c.RadarToneFraction)
	}
	return nil
}

// OscillatorDrift perturbs the tag's measured beat frequency: the Eq. 9
// output Δf = α·ΔT is scaled by (1 + Offset + DriftPerSecond·t + Jitter·N),
// modeling reference-oscillator inaccuracy, warm-up drift and phase noise.
type OscillatorDrift struct {
	// Offset is a constant fractional beat offset (0.01 = 1 % fast).
	Offset float64
	// DriftPerSecond is a linear fractional drift over the frame.
	DriftPerSecond float64
	// Jitter is the per-chirp fractional jitter sigma.
	Jitter float64
}

func (d *OscillatorDrift) validate() error {
	if d.Jitter < 0 {
		return fmt.Errorf("fault: drift jitter %v must be non-negative", d.Jitter)
	}
	return nil
}

// Dropout drops (or clips) individual chirps at the transmitter: a dropped
// chirp reaches neither the tag nor the radar, only receiver noise remains.
type Dropout struct {
	// Rate is the per-chirp drop probability, in [0, 1].
	Rate float64
	// ClipFraction, when non-zero, truncates dropped chirps to this leading
	// fraction instead of removing them entirely.
	ClipFraction float64
}

func (d *Dropout) validate() error {
	if d.Rate < 0 || d.Rate > 1 {
		return fmt.Errorf("fault: dropout rate %v must be in [0, 1]", d.Rate)
	}
	if d.ClipFraction < 0 || d.ClipFraction >= 1 {
		return fmt.Errorf("fault: clip fraction %v must be in [0, 1)", d.ClipFraction)
	}
	return nil
}

// Saturation models the tag ADC front-end limits: samples are clipped at
// ClipLevel times the nominal detector amplitude and quantized to Bits.
type Saturation struct {
	// ClipLevel is the ADC full scale relative to the nominal detector
	// amplitude; zero disables clipping.
	ClipLevel float64
	// Bits is the quantizer resolution; zero disables quantization.
	Bits int
}

func (s *Saturation) validate() error {
	if s.ClipLevel < 0 {
		return fmt.Errorf("fault: clip level %v must be non-negative", s.ClipLevel)
	}
	if s.Bits < 0 || s.Bits > 24 {
		return fmt.Errorf("fault: quantizer bits %d must be in [0, 24]", s.Bits)
	}
	return nil
}

// Desync jitters the tag's capture start against the chirp period: the tag
// wakes up to MaxOffset chirp periods late, so its symbol windows slide
// against the radar's T_period grid.
type Desync struct {
	// MaxOffset is the maximum start offset as a fraction of one chirp
	// period, drawn uniformly per capture.
	MaxOffset float64
}

func (d *Desync) validate() error {
	if d.MaxOffset < 0 {
		return fmt.Errorf("fault: desync max offset %v must be non-negative", d.MaxOffset)
	}
	return nil
}

// TagFaults groups the impairments local to one tag's front-end.
type TagFaults struct {
	// Drift perturbs the beat output; nil disables.
	Drift *OscillatorDrift
	// Saturation clips/quantizes the ADC samples; nil disables.
	Saturation *Saturation
	// Desync jitters the capture start; nil disables.
	Desync *Desync
}

func (t *TagFaults) validate() error {
	if t == nil {
		return nil
	}
	if t.Drift != nil {
		if err := t.Drift.validate(); err != nil {
			return err
		}
	}
	if t.Saturation != nil {
		if err := t.Saturation.validate(); err != nil {
			return err
		}
	}
	if t.Desync != nil {
		if err := t.Desync.validate(); err != nil {
			return err
		}
	}
	return nil
}

// enabled reports whether any tag-side fault is configured.
func (t *TagFaults) enabled() bool {
	return t != nil && (t.Drift != nil || t.Saturation != nil || t.Desync != nil)
}

// Profile is one named fault scenario: the full set of impairments applied
// to a network. The zero value (and nil) is the clean profile — every
// injector is off and the signal path is byte-identical to a network built
// without a profile at all.
type Profile struct {
	// Name labels the profile in scenario tables.
	Name string
	// Seed roots every injector's hash RNG. Zero derives the seed from the
	// network seed, so distinct networks get distinct fault realizations by
	// default while a fixed profile seed replays exactly.
	Seed int64
	// Interference is the shared duty-cycled jammer; nil disables.
	Interference *Interference
	// Dropout drops chirps at the transmitter; nil disables.
	Dropout *Dropout
	// Clutter is appended to the network's static scene — reflectors with
	// non-zero Velocity model moving people/objects feeding the Doppler
	// path.
	Clutter []channel.Reflector
	// Tag applies to every node's front-end; nil disables.
	Tag *TagFaults
	// Nodes overrides Tag per node index (a nil entry disables tag faults
	// for that node).
	Nodes map[int]*TagFaults
}

// Validate checks every configured impairment.
func (p *Profile) Validate() error {
	if p == nil {
		return nil
	}
	if p.Interference != nil {
		if err := p.Interference.validate(); err != nil {
			return err
		}
	}
	if p.Dropout != nil {
		if err := p.Dropout.validate(); err != nil {
			return err
		}
	}
	if err := p.Tag.validate(); err != nil {
		return err
	}
	for i, tf := range p.Nodes {
		if err := tf.validate(); err != nil {
			return fmt.Errorf("fault: node %d: %w", i, err)
		}
	}
	for i, r := range p.Clutter {
		if r.Range <= 0 {
			return fmt.Errorf("fault: clutter reflector %d range %v m must be positive", i, r.Range)
		}
	}
	return nil
}

// TagFor returns the tag faults for node i: the per-node override when one
// exists (even an explicit nil), else the shared Tag set.
func (p *Profile) TagFor(i int) *TagFaults {
	if p == nil {
		return nil
	}
	if tf, ok := p.Nodes[i]; ok {
		return tf
	}
	return p.Tag
}

// SeedFor resolves the profile's injector seed against the network seed.
func (p *Profile) SeedFor(networkSeed int64) int64 {
	if p == nil {
		return networkSeed
	}
	if p.Seed != 0 {
		return p.Seed
	}
	// Decorrelate from the network seed without ever colliding with it: the
	// pipeline's sequential RNGs use networkSeed and small offsets of it.
	return int64(mix(uint64(networkSeed) ^ 0xfa017b15))
}

// Enabled reports whether the profile configures any impairment at all.
func (p *Profile) Enabled() bool {
	return p != nil && (p.Interference != nil || p.Dropout != nil ||
		len(p.Clutter) > 0 || p.Tag.enabled() || anyNodeFaults(p.Nodes))
}

func anyNodeFaults(m map[int]*TagFaults) bool {
	for _, tf := range m {
		if tf.enabled() {
			return true
		}
	}
	return false
}

// gate is the precomputed slow-time on/off pattern of the interference
// injector: chirp i is jammed iff (i + phase) mod period < on.
type gate struct {
	period int
	on     int
	phase  int
}

// newGate builds the gating pattern. The ceil keeps any non-zero duty
// jamming at least one chirp per cycle, and a larger duty always jams a
// superset of a smaller one at the same seed.
func newGate(c Interference, seed int64) gate {
	g := gate{period: c.PeriodChirps}
	on := c.DutyCycle * float64(g.period)
	g.on = int(on)
	if float64(g.on) < on {
		g.on++ // ceil
	}
	if g.on > g.period {
		g.on = g.period
	}
	g.phase = int(hashBits(seed, streamGatePhase, 0) % uint64(g.period))
	return g
}

// jammed reports whether chirp idx falls in the on-window.
func (g gate) jammed(idx int) bool {
	if g.on <= 0 || idx < 0 {
		return false
	}
	return (idx+g.phase)%g.period < g.on
}
