package fault

import "math"

// The fault layer draws all of its randomness from a stateless hash RNG
// keyed by (seed, stream, index) instead of from the pipeline's seeded
// sequential generators. That buys three properties the conformance suite
// pins:
//
//   - order independence: an injection decision for chirp i never depends on
//     how many goroutines processed chirps before it, so results stay
//     byte-identical at any worker count;
//   - stream isolation: the channel/tag/radar noise realizations are
//     untouched whether faults are on or off, so an intensity sweep varies
//     only the impairment, never the underlying noise draw;
//   - per-seed reproducibility: every injector replays exactly from its
//     profile seed.

// Independent draw streams. Each impairment owns one so enabling an
// injector never shifts another's decisions.
const (
	streamGatePhase uint64 = 1 // interference on/off gate alignment
	streamJamPhase  uint64 = 2 // per-chirp jam tone phase
	streamDropout   uint64 = 3 // per-chirp dropout decisions
	streamDrift     uint64 = 4 // per-chirp oscillator jitter
	streamDesync    uint64 = 5 // per-capture start-offset jitter
)

// mix is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashBits returns 64 independent-looking bits for (seed, stream, idx).
func hashBits(seed int64, stream, idx uint64) uint64 {
	h := mix(uint64(seed))
	h = mix(h ^ stream*0xd6e8feb86659fd93)
	return mix(h ^ idx)
}

// uniform returns a deterministic draw in [0, 1).
func uniform(seed int64, stream, idx uint64) float64 {
	return float64(hashBits(seed, stream, idx)>>11) / (1 << 53)
}

// norm returns a deterministic standard normal draw (Box–Muller; each idx
// consumes two hash points so adjacent indices stay independent).
func norm(seed int64, stream, idx uint64) float64 {
	u1 := uniform(seed, stream, 2*idx)
	u2 := uniform(seed, stream, 2*idx+1)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
