package fault

import (
	"math"

	"biscatter/internal/telemetry"
)

// Telemetry counter names for injected faults. Each counter is registered
// only when its impairment is enabled, so a network with an empty profile
// produces a metrics snapshot identical to one with no profile at all.
const (
	CounterTagJammed    = "fault.injected.tag.jammed_chirps"
	CounterTagDropped   = "fault.injected.tag.dropped_chirps"
	CounterTagDrift     = "fault.injected.tag.drift_chirps"
	CounterTagSaturated = "fault.injected.tag.saturated_samples"
	CounterTagDesync    = "fault.injected.tag.desync_frames"
	CounterRadarJammed  = "fault.injected.radar.jammed_chirps"
	CounterRadarDropped = "fault.injected.radar.dropped_chirps"
	CounterRadarClipped = "fault.injected.radar.clipped_chirps"
)

// nodeSeedStride decorrelates per-node injector streams. Shared decisions
// (TX dropout, the interference gate) stay on the profile seed itself so the
// tag and the radar agree on which chirps were lost or jammed.
const nodeSeedStride = 1000003

// TagInjector applies a profile's impairments to one tag's front-end. All
// methods are nil-receiver-safe no-ops, so the front-end threads calls
// unconditionally and pays nothing when faults are off.
type TagInjector struct {
	baseSeed int64 // shared across nodes: dropout decisions, gate alignment
	nodeSeed int64 // per node: jam phase, drift jitter, desync draws

	g       gate
	jamAmp  float64 // jam tone amplitude as a multiple of the nominal detector amplitude
	jamFrac float64 // jam tone frequency as a fraction of the ADC rate

	drop   *Dropout
	drift  *OscillatorDrift
	sat    *Saturation
	desync *Desync

	captures uint64 // desync draw index; each injector belongs to one tag

	cJam, cDrop, cDrift, cSat, cDesync *telemetry.Counter
}

// NewTagInjector builds the injector for node nodeIndex. jsrDB is the
// jammer-to-signal ratio at this tag's detector input (see
// channel.Link.DownlinkJSRdB); it is only consulted when the profile's
// tag-side interference is enabled. Returns nil — the fully inert injector —
// when no impairment applies to this tag, and resolves each telemetry
// counter only for the impairments actually enabled.
func NewTagInjector(p *Profile, nodeIndex int, networkSeed int64, jsrDB float64, m *telemetry.Metrics) *TagInjector {
	if !p.Enabled() {
		return nil
	}
	seed := p.SeedFor(networkSeed)
	inj := &TagInjector{
		baseSeed: seed,
		nodeSeed: seed + int64(nodeIndex+1)*nodeSeedStride,
	}
	any := false
	if c := p.Interference; c != nil && c.TagPowerDBm != 0 && c.DutyCycle > 0 {
		cc := c.withDefaults()
		inj.g = newGate(cc, seed)
		inj.jamAmp = math.Pow(10, jsrDB/20)
		inj.jamFrac = cc.TagToneFraction
		inj.cJam = m.Counter(CounterTagJammed)
		any = true
	}
	if d := p.Dropout; d != nil && d.Rate > 0 {
		inj.drop = d
		inj.cDrop = m.Counter(CounterTagDropped)
		any = true
	}
	if tf := p.TagFor(nodeIndex); tf != nil {
		if d := tf.Drift; d != nil && (d.Offset != 0 || d.DriftPerSecond != 0 || d.Jitter > 0) {
			inj.drift = d
			inj.cDrift = m.Counter(CounterTagDrift)
			any = true
		}
		if s := tf.Saturation; s != nil && (s.ClipLevel > 0 || s.Bits > 0) {
			inj.sat = s
			inj.cSat = m.Counter(CounterTagSaturated)
			any = true
		}
		if d := tf.Desync; d != nil && d.MaxOffset > 0 {
			inj.desync = d
			inj.cDesync = m.Counter(CounterTagDesync)
			any = true
		}
	}
	if !any {
		return nil
	}
	return inj
}

// StartJitter returns the desync offset (seconds) to add to this capture's
// start, drawn per capture as a uniform fraction of the chirp period.
func (t *TagInjector) StartJitter(period float64) float64 {
	if t == nil || t.desync == nil {
		return 0
	}
	idx := t.captures
	t.captures++
	t.cDesync.Add(1)
	return uniform(t.nodeSeed, streamDesync, idx) * t.desync.MaxOffset * period
}

// DropState reports whether chirp idx was dropped at the transmitter and, if
// so, the leading fraction that still made it out (zero = fully missing).
// The decision is keyed on the shared profile seed so the radar sees the
// same chirps vanish.
func (t *TagInjector) DropState(idx int) (dropped bool, clipFraction float64) {
	if t == nil || t.drop == nil {
		return false, 0
	}
	if uniform(t.baseSeed, streamDropout, uint64(idx)) >= t.drop.Rate {
		return false, 0
	}
	t.cDrop.Add(1)
	return true, t.drop.ClipFraction
}

// BeatScale returns the oscillator-drift multiplier for the beat of chirp
// idx starting at tChirp seconds into the capture.
func (t *TagInjector) BeatScale(idx int, tChirp float64) float64 {
	if t == nil || t.drift == nil {
		return 1
	}
	d := t.drift
	s := 1 + d.Offset + d.DriftPerSecond*tChirp
	if d.Jitter > 0 {
		s += d.Jitter * norm(t.nodeSeed, streamDrift, uint64(idx))
	}
	// A beat can drift, not invert: keep the tone physical.
	if s < 0.1 {
		s = 0.1
	}
	t.cDrift.Add(1)
	return s
}

// Jam adds the interference tone over chirp idx's full period window when
// the slow-time gate is on. The jammer is independent of the radar's
// waveform, so the tone spans the whole period (not just the chirp) with a
// fresh phase per chirp. amp is the front-end's nominal detector amplitude.
func (t *TagInjector) Jam(out []float64, idx int, chirpStart, period, fs, amp float64) {
	if t == nil || t.jamAmp == 0 || !t.g.jammed(idx) {
		return
	}
	i0 := int(math.Ceil(math.Max(chirpStart, 0) * fs))
	i1 := int((chirpStart + period) * fs)
	if i1 > len(out) {
		i1 = len(out)
	}
	if i0 >= i1 {
		return
	}
	a := t.jamAmp * amp
	f := t.jamFrac * fs
	ph := 2 * math.Pi * uniform(t.nodeSeed, streamJamPhase, uint64(idx))
	for i := i0; i < i1; i++ {
		ts := float64(i)/fs - chirpStart
		out[i] += a * math.Cos(2*math.Pi*f*ts+ph)
	}
	t.cJam.Add(1)
}

// PostADC applies saturation after noise addition — clipping at the ADC
// full scale and mid-tread quantization — in place. amp is the nominal
// detector amplitude the full scale is referenced to.
func (t *TagInjector) PostADC(out []float64, amp float64) {
	if t == nil || t.sat == nil {
		return
	}
	s := t.sat
	full := 2 * amp // quantize-only default: generous headroom above nominal
	if s.ClipLevel > 0 {
		full = s.ClipLevel * amp
	}
	step := 0.0
	if s.Bits > 0 {
		step = 2 * full / float64(int64(1)<<uint(s.Bits))
	}
	clipped := 0
	for i, v := range out {
		if s.ClipLevel > 0 {
			if v > full {
				v, clipped = full, clipped+1
			} else if v < -full {
				v, clipped = -full, clipped+1
			}
		}
		if step > 0 {
			v = math.Round((v+full)/step)*step - full
		}
		out[i] = v
	}
	if clipped > 0 {
		t.cSat.Add(int64(clipped))
	}
}

// RadarInjector applies a profile's impairments to the radar's IF capture.
// Methods are nil-receiver-safe and may be called concurrently from the
// radar's per-chirp worker fan-out: decisions are pure functions of
// (seed, stream, chirp index) and the counters are atomic.
type RadarInjector struct {
	seed    int64
	g       gate
	jamAmp  float64 // absolute IF tone amplitude (√mW)
	jamFrac float64 // tone frequency as a fraction of the IF sample rate

	drop *Dropout

	cJam, cDrop, cClip *telemetry.Counter
}

// NewRadarInjector builds the radar-side injector for a profile, or nil when
// nothing applies to the radar path.
func NewRadarInjector(p *Profile, networkSeed int64, m *telemetry.Metrics) *RadarInjector {
	if !p.Enabled() {
		return nil
	}
	seed := p.SeedFor(networkSeed)
	inj := &RadarInjector{seed: seed}
	any := false
	if c := p.Interference; c != nil && c.RadarPowerDBm != 0 && c.DutyCycle > 0 {
		cc := c.withDefaults()
		inj.g = newGate(cc, seed)
		inj.jamAmp = math.Pow(10, c.RadarPowerDBm/20)
		inj.jamFrac = cc.RadarToneFraction
		inj.cJam = m.Counter(CounterRadarJammed)
		any = true
	}
	if d := p.Dropout; d != nil && d.Rate > 0 {
		inj.drop = d
		inj.cDrop = m.Counter(CounterRadarDropped)
		if d.ClipFraction > 0 {
			inj.cClip = m.Counter(CounterRadarClipped)
		}
		any = true
	}
	if !any {
		return nil
	}
	return inj
}

// EchoSamples returns how many leading samples of chirp idx carry the
// transmitted echo: n normally, a clipped prefix or zero when the TX dropped
// the chirp. Receiver noise is unaffected — a silent TX still leaves a live
// receiver. The dropout draw matches the tag side's DropState exactly.
func (r *RadarInjector) EchoSamples(idx, n int) int {
	if r == nil || r.drop == nil {
		return n
	}
	if uniform(r.seed, streamDropout, uint64(idx)) >= r.drop.Rate {
		return n
	}
	if r.drop.ClipFraction > 0 {
		r.cClip.Add(1)
		return int(r.drop.ClipFraction * float64(n))
	}
	r.cDrop.Add(1)
	return 0
}

// Jam adds the interference tone to chirp idx's IF buffer when the
// slow-time gate is on: a complex exponential with a fresh per-chirp phase,
// which is what an unsynchronized in-band emitter looks like after
// dechirping — energy that smears across the Doppler spectrum.
func (r *RadarInjector) Jam(buf []complex128, idx int) {
	if r == nil || r.jamAmp == 0 || !r.g.jammed(idx) {
		return
	}
	// The tone sits at jamFrac of the sample rate, so the per-sample phase
	// increment is 2π·jamFrac regardless of the absolute rate.
	dphi := 2 * math.Pi * r.jamFrac
	ph := 2 * math.Pi * uniform(r.seed, streamJamPhase, uint64(idx))
	for k := range buf {
		buf[k] += complex(r.jamAmp*math.Cos(ph), r.jamAmp*math.Sin(ph))
		ph += dphi
	}
	r.cJam.Add(1)
}
