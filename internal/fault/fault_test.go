package fault

import (
	"math"
	"testing"

	"biscatter/internal/channel"
	"biscatter/internal/telemetry"
)

// TestHashRNGDeterminism pins the stateless RNG contract: draws depend only
// on (seed, stream, idx), streams are isolated, and values are valid.
func TestHashRNGDeterminism(t *testing.T) {
	for idx := uint64(0); idx < 1000; idx++ {
		u := uniform(42, streamDropout, idx)
		if u != uniform(42, streamDropout, idx) {
			t.Fatalf("uniform not deterministic at idx %d", idx)
		}
		if u < 0 || u >= 1 {
			t.Fatalf("uniform(%d) = %v outside [0, 1)", idx, u)
		}
		if u == uniform(43, streamDropout, idx) {
			t.Fatalf("seed change did not move draw at idx %d", idx)
		}
		if u == uniform(42, streamDrift, idx) {
			t.Fatalf("stream change did not move draw at idx %d", idx)
		}
		if v := norm(42, streamDrift, idx); math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("norm(%d) = %v not finite", idx, v)
		}
	}
	// Standard-normal draws should have roughly zero mean and unit variance.
	var sum, sumSq float64
	const n = 20000
	for i := uint64(0); i < n; i++ {
		v := norm(7, streamDrift, i)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("norm mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("norm variance %v too far from 1", variance)
	}
}

// TestGateMonotoneSuperset is the property the monotone-BER conformance
// check rests on: at a fixed seed and period, every chirp jammed at duty d1
// is also jammed at any duty d2 > d1.
func TestGateMonotoneSuperset(t *testing.T) {
	duties := []float64{0, 0.1, 0.25, 0.3, 0.5, 0.6, 0.75, 0.9, 1.0}
	for _, seed := range []int64{1, 42, 987654321} {
		for _, period := range []int{1, 7, 16, 33} {
			var prev gate
			for di, duty := range duties {
				g := newGate(Interference{DutyCycle: duty, PeriodChirps: period}, seed)
				if duty > 0 && g.on < 1 {
					t.Fatalf("duty %v period %d: non-zero duty must jam at least one chirp", duty, period)
				}
				if duty == 1 && g.on != period {
					t.Fatalf("duty 1 period %d: on=%d, want full period", period, g.on)
				}
				for idx := 0; idx < 4*period; idx++ {
					if di > 0 && prev.jammed(idx) && !g.jammed(idx) {
						t.Fatalf("seed %d period %d: chirp %d jammed at duty %v but not %v",
							seed, period, idx, duties[di-1], duty)
					}
				}
				prev = g
			}
		}
	}
}

// TestGateDutyFraction checks the on-fraction tracks the requested duty.
func TestGateDutyFraction(t *testing.T) {
	g := newGate(Interference{DutyCycle: 0.5, PeriodChirps: 16}, 3)
	on := 0
	for i := 0; i < 16; i++ {
		if g.jammed(i) {
			on++
		}
	}
	if on != 8 {
		t.Errorf("duty 0.5 over 16 chirps jammed %d, want 8", on)
	}
	if g.jammed(-1) {
		t.Error("negative chirp index must never be jammed")
	}
}

// TestNilInjectorsAreInert pins the zero-cost disabled path: every method on
// a nil injector is a no-op with identity semantics.
func TestNilInjectorsAreInert(t *testing.T) {
	var ti *TagInjector
	if got := ti.StartJitter(120e-6); got != 0 {
		t.Errorf("nil StartJitter = %v, want 0", got)
	}
	if d, c := ti.DropState(5); d || c != 0 {
		t.Errorf("nil DropState = %v, %v", d, c)
	}
	if got := ti.BeatScale(3, 0.001); got != 1 {
		t.Errorf("nil BeatScale = %v, want 1", got)
	}
	samples := []float64{0.5, -1.5, 2.0}
	want := append([]float64(nil), samples...)
	ti.Jam(samples, 0, 0, 120e-6, 1e6, 1)
	ti.PostADC(samples, 1)
	for i := range samples {
		if samples[i] != want[i] {
			t.Fatalf("nil tag injector mutated samples: %v", samples)
		}
	}
	var ri *RadarInjector
	if got := ri.EchoSamples(2, 240); got != 240 {
		t.Errorf("nil EchoSamples = %d, want 240", got)
	}
	buf := []complex128{1 + 2i}
	ri.Jam(buf, 0)
	if buf[0] != 1+2i {
		t.Error("nil radar injector mutated IF buffer")
	}
}

// TestInjectorConstructionGating pins when construction yields nil (inert)
// versus a live injector, and that counters resolve only for enabled
// impairments.
func TestInjectorConstructionGating(t *testing.T) {
	m := telemetry.New()
	cases := []struct {
		name   string
		p      *Profile
		tagNil bool
		rdrNil bool
	}{
		{"nil profile", nil, true, true},
		{"empty profile", &Profile{}, true, true},
		{"zero-intensity dropout", &Profile{Dropout: &Dropout{Rate: 0}}, true, true},
		{"zero-duty interference", &Profile{Interference: &Interference{TagPowerDBm: -40, RadarPowerDBm: -70}}, true, true},
		{"clutter only", &Profile{Clutter: []channel.Reflector{{Range: 2, RCSdBsm: 0}}}, true, true},
		{"dropout", &Profile{Dropout: &Dropout{Rate: 0.2}}, false, false},
		{"tag-side interference only", &Profile{Interference: &Interference{TagPowerDBm: -40, DutyCycle: 0.5}}, false, true},
		{"radar-side interference only", &Profile{Interference: &Interference{RadarPowerDBm: -70, DutyCycle: 0.5}}, true, false},
		{"tag drift", &Profile{Tag: &TagFaults{Drift: &OscillatorDrift{Offset: 0.01}}}, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ti := NewTagInjector(tc.p, 0, 9, 10, m)
			ri := NewRadarInjector(tc.p, 9, m)
			if (ti == nil) != tc.tagNil {
				t.Errorf("tag injector nil=%v, want %v", ti == nil, tc.tagNil)
			}
			if (ri == nil) != tc.rdrNil {
				t.Errorf("radar injector nil=%v, want %v", ri == nil, tc.rdrNil)
			}
		})
	}

	// A nil metrics registry must not break construction or injection.
	p := &Profile{Dropout: &Dropout{Rate: 1}}
	ti := NewTagInjector(p, 0, 9, 0, nil)
	if d, _ := ti.DropState(0); !d {
		t.Error("rate-1 dropout must drop every chirp")
	}
}

// TestPerNodeOverrides pins TagFor semantics: an explicit nil entry disables
// the shared tag faults for that node.
func TestPerNodeOverrides(t *testing.T) {
	shared := &TagFaults{Drift: &OscillatorDrift{Offset: 0.02}}
	override := &TagFaults{Desync: &Desync{MaxOffset: 0.5}}
	p := &Profile{
		Tag:   shared,
		Nodes: map[int]*TagFaults{1: nil, 2: override},
	}
	if got := p.TagFor(0); got != shared {
		t.Errorf("node 0 faults = %v, want shared", got)
	}
	if got := p.TagFor(1); got != nil {
		t.Errorf("node 1 faults = %v, want nil override", got)
	}
	if got := p.TagFor(2); got != override {
		t.Errorf("node 2 faults = %v, want override", got)
	}
	// Node 1's injector carries dropout et al. but no tag faults — with only
	// tag faults in the profile it must be fully inert.
	if inj := NewTagInjector(p, 1, 1, 0, nil); inj != nil {
		t.Error("node with nil override and no shared impairments must get a nil injector")
	}
	if inj := NewTagInjector(p, 0, 1, 0, nil); inj == nil {
		t.Error("node 0 must inherit the shared drift")
	}
}

// TestDropoutSharedBetweenSides pins the TX-dropout contract: the tag and
// the radar draw identical per-chirp decisions from the same profile seed.
func TestDropoutSharedBetweenSides(t *testing.T) {
	p := &Profile{Seed: 77, Dropout: &Dropout{Rate: 0.3}}
	ti := NewTagInjector(p, 0, 5, 0, nil)
	ri := NewRadarInjector(p, 5, nil)
	tiOther := NewTagInjector(p, 3, 5, 0, nil) // different node, same TX
	drops := 0
	for idx := 0; idx < 512; idx++ {
		d, _ := ti.DropState(idx)
		dOther, _ := tiOther.DropState(idx)
		rd := ri.EchoSamples(idx, 100) == 0
		if d != rd || d != dOther {
			t.Fatalf("chirp %d: tag=%v tagOther=%v radar=%v disagree", idx, d, dOther, rd)
		}
		if d {
			drops++
		}
	}
	if drops < 100 || drops > 210 {
		t.Errorf("rate-0.3 dropout dropped %d/512 chirps", drops)
	}
}

// TestDropoutClipFraction pins the clipped-prefix variant on both sides.
func TestDropoutClipFraction(t *testing.T) {
	p := &Profile{Seed: 77, Dropout: &Dropout{Rate: 1, ClipFraction: 0.25}}
	ti := NewTagInjector(p, 0, 5, 0, nil)
	ri := NewRadarInjector(p, 5, nil)
	if d, c := ti.DropState(0); !d || c != 0.25 {
		t.Errorf("DropState = %v, %v, want true, 0.25", d, c)
	}
	if got := ri.EchoSamples(0, 200); got != 50 {
		t.Errorf("EchoSamples = %d, want 50", got)
	}
}

// TestBeatScale pins drift semantics: offset shifts the beat, jitter is
// deterministic per chirp, and the scale never drops below the floor.
func TestBeatScale(t *testing.T) {
	p := &Profile{Seed: 9, Tag: &TagFaults{Drift: &OscillatorDrift{Offset: 0.05, DriftPerSecond: 1}}}
	ti := NewTagInjector(p, 0, 1, 0, nil)
	if got := ti.BeatScale(0, 0); !almost(got, 1.05) {
		t.Errorf("BeatScale(0, 0) = %v, want 1.05", got)
	}
	if got := ti.BeatScale(0, 0.01); !almost(got, 1.06) {
		t.Errorf("BeatScale(0, 0.01) = %v, want 1.06", got)
	}
	pj := &Profile{Seed: 9, Tag: &TagFaults{Drift: &OscillatorDrift{Jitter: 0.02}}}
	tj := NewTagInjector(pj, 0, 1, 0, nil)
	a, b := tj.BeatScale(4, 0), tj.BeatScale(4, 0)
	if a != b {
		t.Errorf("jitter not deterministic per chirp: %v vs %v", a, b)
	}
	floor := &Profile{Seed: 9, Tag: &TagFaults{Drift: &OscillatorDrift{Offset: -5}}}
	tf := NewTagInjector(floor, 0, 1, 0, nil)
	if got := tf.BeatScale(0, 0); got != 0.1 {
		t.Errorf("BeatScale floor = %v, want 0.1", got)
	}
}

// TestPostADC pins saturation: clipping bounds the samples and counts them,
// quantization snaps to the grid.
func TestPostADC(t *testing.T) {
	m := telemetry.New()
	p := &Profile{Seed: 1, Tag: &TagFaults{Saturation: &Saturation{ClipLevel: 1, Bits: 4}}}
	ti := NewTagInjector(p, 0, 1, 0, m)
	samples := []float64{0.3, 1.7, -2.5, 0.0, -0.99}
	ti.PostADC(samples, 1)
	step := 2.0 / 16
	for i, v := range samples {
		if v > 1 || v < -1 {
			t.Errorf("sample %d = %v escaped clip range", i, v)
		}
		q := math.Round((v+1)/step)*step - 1
		if !almost(v, q) {
			t.Errorf("sample %d = %v off the quantizer grid", i, v)
		}
	}
	if got := m.Counter(CounterTagSaturated).Value(); got != 2 {
		t.Errorf("saturated counter = %d, want 2", got)
	}
}

// TestJamTelemetryAndDuty pins the jam hooks: only gated chirps receive the
// tone, and the counters track exactly the jammed set.
func TestJamTelemetryAndDuty(t *testing.T) {
	m := telemetry.New()
	p := &Profile{
		Seed:         11,
		Interference: &Interference{TagPowerDBm: -40, RadarPowerDBm: -70, DutyCycle: 0.25, PeriodChirps: 8},
	}
	ti := NewTagInjector(p, 0, 1, 6, m)
	ri := NewRadarInjector(p, 1, m)
	const chirps = 64
	tagJammed, radarJammed := 0, 0
	for idx := 0; idx < chirps; idx++ {
		out := make([]float64, 120)
		ti.Jam(out, idx, 0, 120e-6, 1e6, 1)
		buf := make([]complex128, 120)
		ri.Jam(buf, idx)
		touched := false
		for _, v := range out {
			if v != 0 {
				touched = true
				break
			}
		}
		touchedIF := buf[0] != 0
		if touched != touchedIF {
			t.Fatalf("chirp %d: tag jammed=%v but radar jammed=%v", idx, touched, touchedIF)
		}
		if touched {
			tagJammed++
		}
		if touchedIF {
			radarJammed++
		}
	}
	if tagJammed != chirps/4 {
		t.Errorf("duty 0.25 jammed %d/%d chirps", tagJammed, chirps)
	}
	if got := m.Counter(CounterTagJammed).Value(); got != int64(tagJammed) {
		t.Errorf("tag jam counter = %d, want %d", got, tagJammed)
	}
	if got := m.Counter(CounterRadarJammed).Value(); got != int64(radarJammed) {
		t.Errorf("radar jam counter = %d, want %d", got, radarJammed)
	}
	// JSR 6 dB → tone amplitude ≈ 2× the nominal detector amplitude.
	out := make([]float64, 120)
	for idx := 0; idx < 8; idx++ {
		probe := make([]float64, 120)
		ti.Jam(probe, idx, 0, 120e-6, 1e6, 1)
		if probe[0] != 0 || probe[60] != 0 {
			copy(out, probe)
			break
		}
	}
	peak := 0.0
	for _, v := range out {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	if peak < 1.8 || peak > 2.1 {
		t.Errorf("jam tone peak %v, want ≈ 2 for 6 dB JSR", peak)
	}
}

// TestProfileValidate pins the validation table.
func TestProfileValidate(t *testing.T) {
	valid := &Profile{
		Interference: &Interference{TagPowerDBm: -40, DutyCycle: 0.5},
		Dropout:      &Dropout{Rate: 0.1, ClipFraction: 0.5},
		Tag: &TagFaults{
			Drift:      &OscillatorDrift{Offset: 0.01, Jitter: 0.001},
			Saturation: &Saturation{ClipLevel: 1.5, Bits: 8},
			Desync:     &Desync{MaxOffset: 0.9},
		},
		Clutter: []channel.Reflector{{Range: 2.5, RCSdBsm: -3, Velocity: 1.2}},
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
	if err := (*Profile)(nil).Validate(); err != nil {
		t.Fatalf("nil profile rejected: %v", err)
	}
	bad := []*Profile{
		{Interference: &Interference{DutyCycle: 1.5}},
		{Interference: &Interference{DutyCycle: -0.1}},
		{Interference: &Interference{DutyCycle: 0.5, TagToneFraction: 0.7}},
		{Dropout: &Dropout{Rate: 2}},
		{Dropout: &Dropout{Rate: 0.5, ClipFraction: 1}},
		{Tag: &TagFaults{Drift: &OscillatorDrift{Jitter: -1}}},
		{Tag: &TagFaults{Saturation: &Saturation{Bits: 99}}},
		{Tag: &TagFaults{Desync: &Desync{MaxOffset: -0.5}}},
		{Nodes: map[int]*TagFaults{0: {Saturation: &Saturation{ClipLevel: -1}}}},
		{Clutter: []channel.Reflector{{Range: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

// TestSeedFor pins seed resolution: explicit profile seeds win, derived
// seeds differ from the network seed and replay deterministically.
func TestSeedFor(t *testing.T) {
	if got := (&Profile{Seed: 123}).SeedFor(9); got != 123 {
		t.Errorf("explicit seed = %d, want 123", got)
	}
	d1 := (&Profile{}).SeedFor(9)
	d2 := (&Profile{}).SeedFor(9)
	if d1 != d2 {
		t.Error("derived seed not deterministic")
	}
	if d1 == 9 {
		t.Error("derived seed must differ from the network seed")
	}
	if (&Profile{}).SeedFor(10) == d1 {
		t.Error("derived seed must track the network seed")
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
