package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 1000
		counts := make([]int32, n)
		New(workers).For(n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForResultsIndependentOfWorkerCount(t *testing.T) {
	const n = 257
	ref := make([]float64, n)
	New(1).For(n, func(i int) { ref[i] = float64(i) * 1.5 })
	got := make([]float64, n)
	New(8).For(n, func(i int) { got[i] = float64(i) * 1.5 })
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("index %d: %v != %v", i, ref[i], got[i])
		}
	}
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want %d", got, want)
	}
	if got := New(3).Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
}

func TestForZeroAndOneIndex(t *testing.T) {
	ran := 0
	New(4).For(0, func(i int) { ran++ })
	if ran != 0 {
		t.Fatalf("fn ran %d times for n=0", ran)
	}
	New(4).For(1, func(i int) { ran++ })
	if ran != 1 {
		t.Fatalf("fn ran %d times for n=1", ran)
	}
}

func TestForContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := New(4).ForContext(ctx, 100, func(i int) error {
		called = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("fn was called under a cancelled context")
	}
}

func TestForContextStopsPromptlyOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := New(2).ForContext(ctx, 1_000_000, func(i int) error {
		if calls.Add(1) == 10 {
			cancel()
		}
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got > 100 {
		t.Fatalf("ran %d indices after cancellation; want prompt stop", got)
	}
}

func TestForContextPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := New(4).ForContext(context.Background(), 10_000, func(i int) error {
		calls.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := calls.Load(); got == 10_000 {
		t.Fatal("error did not short-circuit the loop")
	}
}

func TestForContextSerialPath(t *testing.T) {
	boom := errors.New("boom")
	var order []int
	err := New(1).ForContext(context.Background(), 10, func(i int) error {
		order = append(order, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(order) != 4 {
		t.Fatalf("serial path ran %d indices, want 4 (stop at first error)", len(order))
	}
}
