package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"biscatter/internal/dsp"
	"biscatter/internal/telemetry"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		const n = 1000
		counts := make([]int32, n)
		New(workers).For(n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForResultsIndependentOfWorkerCount(t *testing.T) {
	const n = 257
	ref := make([]float64, n)
	New(1).For(n, func(i int) { ref[i] = float64(i) * 1.5 })
	got := make([]float64, n)
	New(8).For(n, func(i int) { got[i] = float64(i) * 1.5 })
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("index %d: %v != %v", i, ref[i], got[i])
		}
	}
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want %d", got, want)
	}
	if got := New(3).Workers(); got != 3 {
		t.Fatalf("Workers() = %d, want 3", got)
	}
}

func TestForZeroAndOneIndex(t *testing.T) {
	ran := 0
	New(4).For(0, func(i int) { ran++ })
	if ran != 0 {
		t.Fatalf("fn ran %d times for n=0", ran)
	}
	New(4).For(1, func(i int) { ran++ })
	if ran != 1 {
		t.Fatalf("fn ran %d times for n=1", ran)
	}
}

func TestForContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err := New(4).ForContext(ctx, 100, func(i int) error {
		called = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("fn was called under a cancelled context")
	}
}

func TestForContextStopsPromptlyOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	err := New(2).ForContext(ctx, 1_000_000, func(i int) error {
		if calls.Add(1) == 10 {
			cancel()
		}
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got > 100 {
		t.Fatalf("ran %d indices after cancellation; want prompt stop", got)
	}
}

func TestForContextPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	err := New(4).ForContext(context.Background(), 10_000, func(i int) error {
		calls.Add(1)
		if i == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := calls.Load(); got == 10_000 {
		t.Fatal("error did not short-circuit the loop")
	}
}

func TestForContextSerialPath(t *testing.T) {
	boom := errors.New("boom")
	var order []int
	err := New(1).ForContext(context.Background(), 10, func(i int) error {
		order = append(order, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(order) != 4 {
		t.Fatalf("serial path ran %d indices, want 4 (stop at first error)", len(order))
	}
}

// TestInstrumentedPoolCounts pins the pool telemetry's determinism
// contract: queued/completed counts and histogram sample counts depend only
// on the loops run, never on the worker count, and the busy gauge returns
// to zero once every loop has joined.
func TestInstrumentedPoolCounts(t *testing.T) {
	const n = 257
	counts := func(workers int) telemetry.Snapshot {
		m := telemetry.New()
		p := New(workers).Instrument(m)
		p.For(n, func(int) {})
		if err := p.ForContext(context.Background(), n, func(int) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return m.Snapshot()
	}
	for _, workers := range []int{1, 8} {
		s := counts(workers)
		if got := s.Counters["parallel.tasks_queued"]; got != 2*n {
			t.Errorf("workers=%d: tasks_queued = %d, want %d", workers, got, 2*n)
		}
		if got := s.Counters["parallel.tasks_completed"]; got != 2*n {
			t.Errorf("workers=%d: tasks_completed = %d, want %d", workers, got, 2*n)
		}
		if got := s.Histograms["parallel.task.seconds"].Count; got != 2*n {
			t.Errorf("workers=%d: task duration samples = %d, want %d", workers, got, 2*n)
		}
		if got := s.Histograms["parallel.queue_wait.seconds"].Count; got != 2*n {
			t.Errorf("workers=%d: queue wait samples = %d, want %d", workers, got, 2*n)
		}
		if got := s.Gauges["parallel.workers_busy"]; got != 0 {
			t.Errorf("workers=%d: workers_busy after join = %v, want 0", workers, got)
		}
	}
}

func TestInstrumentNilRegistryIsNoop(t *testing.T) {
	p := New(4).Instrument(nil)
	if p.stats != nil {
		t.Fatal("nil registry must leave the pool uninstrumented")
	}
	p.For(10, func(int) {})
}

// TestForArenaWorkerLocalScratch runs an arena loop at several widths under
// -race: every index checks out scratch, fills it, and verifies it was handed
// a zeroed view. Distinct workers never share an arena, so this must be
// race-free, and results written by index must match the serial reference.
func TestForArenaWorkerLocalScratch(t *testing.T) {
	const n = 500
	ref := make([]float64, n)
	for _, workers := range []int{1, 4, 8} {
		out := make([]float64, n)
		New(workers).ForArena(n, func(i int, a *dsp.Arena) {
			size := 16 + i%37
			f := a.Float(size)
			c := a.Complex(size / 2)
			for j := range f {
				if f[j] != 0 {
					t.Errorf("workers=%d index %d: dirty float scratch", workers, i)
					return
				}
				f[j] = float64(i + j)
			}
			for j := range c {
				c[j] = complex(float64(i), float64(j))
			}
			out[i] = f[size-1] + real(c[0])
		})
		if workers == 1 {
			copy(ref, out)
			continue
		}
		for i := range out {
			if out[i] != ref[i] {
				t.Fatalf("workers=%d: index %d = %v, want %v", workers, i, out[i], ref[i])
			}
		}
	}
}

func TestForArenaSteadyStateAllocFree(t *testing.T) {
	p := New(1)
	const n = 64
	// Warm the pool-owned arena buckets.
	for i := 0; i < 3; i++ {
		p.ForArena(n, func(i int, a *dsp.Arena) {
			a.Float(128)[0] = 1
			a.Complex(256)[0] = 1
		})
	}
	allocs := testing.AllocsPerRun(50, func() {
		p.ForArena(n, func(i int, a *dsp.Arena) {
			a.Float(128)[0] = 1
			a.Complex(256)[0] = 1
		})
	})
	// The serial path may still allocate the loop-body closures, but the per-
	// index checkouts must be free: anything beyond a few allocs per loop
	// means the arena path regressed.
	if allocs > 4 {
		t.Fatalf("steady-state ForArena allocated %v times per loop, want <= 4", allocs)
	}
}

func TestForContextArenaPropagatesErrorsAndCancellation(t *testing.T) {
	boom := errors.New("boom")
	err := New(4).ForContextArena(context.Background(), 1000, func(i int, a *dsp.Arena) error {
		if a.Float(8) == nil {
			return errors.New("nil scratch")
		}
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	called := false
	err = New(4).ForContextArena(ctx, 10, func(i int, a *dsp.Arena) error {
		called = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if called {
		t.Fatal("fn was called under a cancelled context")
	}
}

// TestForArenaOverlappingLoops drives two arena loops on the same pool from
// concurrent goroutines under -race: the second loop must fall back to
// borrowed spare arenas rather than sharing the pool-owned set.
func TestForArenaOverlappingLoops(t *testing.T) {
	p := New(2)
	start := make(chan struct{})
	done := make(chan struct{}, 2)
	for g := 0; g < 2; g++ {
		go func() {
			<-start
			for rep := 0; rep < 20; rep++ {
				p.ForArena(100, func(i int, a *dsp.Arena) {
					f := a.Float(64)
					for j := range f {
						f[j] = float64(i + j)
					}
				})
			}
			done <- struct{}{}
		}()
	}
	close(start)
	<-done
	<-done
}

func TestArenaFootprintStabilizes(t *testing.T) {
	p := New(2)
	var after2 int
	for iter := 0; iter < 50; iter++ {
		p.ForArena(256, func(i int, a *dsp.Arena) {
			a.Complex(4096)
			a.Float(512)
		})
		if iter == 1 {
			after2 = p.ArenaFootprintBytes()
		}
	}
	if got := p.ArenaFootprintBytes(); got != after2 {
		t.Fatalf("pool arena footprint grew: %d after 2 loops, %d after 50", after2, got)
	}
	if after2 == 0 {
		t.Fatal("pool arena footprint should be nonzero after arena loops")
	}
}

// TestForArenaNestedFanOutFootprintBounded pins the overlapping-checkout
// contract: an inner ForArena issued from inside an outer ForArena body
// finds the pool's own arenas checked out and must borrow package spares
// instead. The inner loop's (larger) checkouts therefore never inflate
// ArenaFootprintBytes — the pool-owned footprint stays at the outer loop's
// high-water mark no matter how often the nested fan-out runs.
func TestForArenaNestedFanOutFootprintBounded(t *testing.T) {
	// Width 1 makes the pool-owned arena set deterministic (a wider pool
	// warms its arenas in scheduler order, so the footprint baseline races
	// the warm-up); the nested borrow path is identical at any width.
	p := New(1)
	// Reach the outer loop's steady-state high-water mark first.
	for i := 0; i < 2; i++ {
		p.ForArena(8, func(_ int, a *dsp.Arena) { a.Float(256) })
	}
	base := p.ArenaFootprintBytes()
	if base == 0 {
		t.Fatal("pool arena footprint should be nonzero after warm-up")
	}
	for iter := 0; iter < 20; iter++ {
		p.ForArena(8, func(i int, a *dsp.Arena) {
			outer := a.Float(256)
			outer[0] = float64(i)
			// Nested fan-out with checkouts far beyond the outer loop's:
			// these must land in borrowed spares, not the pool's arenas.
			p.ForArena(4, func(j int, inner *dsp.Arena) {
				f := inner.Float(8192)
				f[0] = float64(i + j)
			})
			if outer[0] != float64(i) {
				t.Errorf("outer checkout clobbered by nested loop at i=%d", i)
			}
		})
	}
	if got := p.ArenaFootprintBytes(); got != base {
		t.Fatalf("nested fan-out inflated pool footprint: %d before, %d after", base, got)
	}
}
