// Package parallel is the shared worker-pool layer behind the simulator's
// hot loops: per-chirp dechirp and range-FFT work in the radar, per-node
// downlink decoding and signature scans in the network core, and sweep
// points in the experiment harness.
//
// The pool is deliberately minimal. It holds no goroutines between calls —
// every For spawns its workers, distributes indices through an atomic
// counter, and joins — so a Pool is just a worker-count policy (plus an
// optional telemetry hook, see Instrument) and is safe to share and embed
// freely. Determinism is the caller's contract: fn must
// write results into pre-sized slices by index (never append) and must not
// share mutable state across indices; under that contract the result is
// byte-identical for any worker count, because only the execution order
// varies.
//
// For loops that need per-index scratch memory, ForArena/ForContextArena
// hand each worker its own pool-owned dsp.Arena: checkouts are lock-free on
// the hot path (no worker shares an arena) and every buffer is reclaimed
// after each index, so a steady-state loop touches the heap only on its
// first iterations.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"biscatter/internal/dsp"
	"biscatter/internal/telemetry"
)

// Pool schedules index-parallel loops over a fixed number of workers.
// The zero value is not ready; use New.
type Pool struct {
	workers int
	stats   *poolStats

	// arenas are the pool-owned worker-local scratch arenas handed out by
	// ForArena/ForContextArena; arenas[g] belongs to worker g for the
	// duration of one loop. arenasBusy guards against overlapping arena
	// loops on the same pool (legal but rare — e.g. a caller running two
	// pool loops from different goroutines); the loser of the CAS borrows
	// arenas from the package-level spare pool instead, trading a few
	// allocations for correctness.
	arenas     []*dsp.Arena
	arenasBusy atomic.Bool
}

// spareArenas backs the fallback path when a pool's own arenas are already
// checked out by a concurrently running loop.
var spareArenas = sync.Pool{New: func() any { return dsp.NewArena() }}

// poolStats holds the pool's pre-resolved telemetry handles. All fields are
// nil-tolerant telemetry primitives, but the pool additionally gates on the
// struct pointer so the disabled path takes no clock readings.
type poolStats struct {
	queued    *telemetry.Counter   // tasks handed to For/ForContext
	completed *telemetry.Counter   // tasks whose fn returned
	wait      *telemetry.Histogram // seconds from loop entry to task claim
	duration  *telemetry.Histogram // seconds spent inside fn
	busy      *telemetry.Gauge     // workers currently inside fn
	width     *telemetry.Gauge     // effective width of the last loop
}

// New returns a pool of the given width. Non-positive widths select
// GOMAXPROCS at call time, so a default pool tracks the machine.
func New(workers int) *Pool {
	return &Pool{workers: workers}
}

// Instrument attaches pool telemetry to the registry under the "parallel."
// prefix and returns the pool for chaining: tasks queued/completed counters,
// queue-wait and task-duration histograms, and a workers-busy gauge — the
// data that says whether the pool width matches the workload. A nil registry
// leaves the pool uninstrumented (zero overhead). Pools instrumented with
// the same registry share the same metrics, giving an aggregate view across
// the subsystem pools.
//
// Determinism: the queued/completed counts and histogram sample counts
// depend only on the loops run, not on the worker count; timings and the
// busy/width gauges are live state and exempt.
func (p *Pool) Instrument(m *telemetry.Metrics) *Pool {
	if m == nil {
		return p
	}
	p.stats = &poolStats{
		queued:    m.Counter("parallel.tasks_queued"),
		completed: m.Counter("parallel.tasks_completed"),
		wait:      m.Histogram("parallel.queue_wait.seconds"),
		duration:  m.Histogram("parallel.task.seconds"),
		busy:      m.Gauge("parallel.workers_busy"),
		width:     m.Gauge("parallel.pool_width"),
	}
	return p
}

// Workers returns the effective worker count.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.workers
}

// width clamps the worker count to the job count; a width of 1 selects the
// serial fast path (no goroutines, no atomics).
func (p *Pool) width(n int) int {
	w := p.Workers()
	if w > n {
		w = n
	}
	return w
}

// acquireArenas hands out w worker-local arenas for one loop. The common
// case takes the pool's own arenas (growing the set on first use); if
// another loop on this pool currently holds them, fresh arenas are borrowed
// from the package spare pool. owned reports which case applied.
func (p *Pool) acquireArenas(w int) (arenas []*dsp.Arena, owned bool) {
	if p.arenasBusy.CompareAndSwap(false, true) {
		for len(p.arenas) < w {
			p.arenas = append(p.arenas, dsp.NewArena())
		}
		return p.arenas[:w], true
	}
	arenas = make([]*dsp.Arena, w)
	for i := range arenas {
		arenas[i] = spareArenas.Get().(*dsp.Arena)
	}
	return arenas, false
}

// releaseArenas returns arenas acquired by acquireArenas. Pool-owned arenas
// are kept (their buckets persist across loops — that is the whole point);
// borrowed spares go back to the package pool reset.
func (p *Pool) releaseArenas(arenas []*dsp.Arena, owned bool) {
	if owned {
		p.arenasBusy.Store(false)
		return
	}
	for _, a := range arenas {
		a.Reset()
		spareArenas.Put(a)
	}
}

// ArenaFootprintBytes sums the high-water marks of the pool-owned worker
// arenas — the resident scratch memory the pool has accumulated. It is a
// diagnostic for leak tests and must not race a running arena loop.
func (p *Pool) ArenaFootprintBytes() int {
	total := 0
	for _, a := range p.arenas {
		total += a.HighWaterBytes()
	}
	return total
}

// instrument wraps a worker-indexed fn with per-task telemetry when the
// pool is instrumented: queue wait (loop entry → claim), task duration, busy
// gauge and completion count. Returns fn unchanged on an uninstrumented
// pool.
func (p *Pool) instrument(n, width int, fn func(g, i int)) func(g, i int) {
	st := p.stats
	if st == nil {
		return fn
	}
	st.queued.Add(int64(n))
	st.width.Set(float64(width))
	start := time.Now()
	return func(g, i int) {
		claimed := time.Now()
		st.wait.Observe(claimed.Sub(start).Seconds())
		st.busy.Add(1)
		fn(g, i)
		st.busy.Add(-1)
		st.duration.Observe(time.Since(claimed).Seconds())
		st.completed.Inc()
	}
}

// instrumentErr is instrument for error-returning fns (the ForContext
// variants).
func (p *Pool) instrumentErr(n, width int, fn func(g, i int) error) func(g, i int) error {
	st := p.stats
	if st == nil {
		return fn
	}
	st.queued.Add(int64(n))
	st.width.Set(float64(width))
	start := time.Now()
	return func(g, i int) error {
		claimed := time.Now()
		st.wait.Observe(claimed.Sub(start).Seconds())
		st.busy.Add(1)
		err := fn(g, i)
		st.busy.Add(-1)
		st.duration.Observe(time.Since(claimed).Seconds())
		st.completed.Inc()
		return err
	}
}

// run executes fn(g, i) for every i in [0, n) across w workers; worker g
// claims indices from a shared atomic counter. w <= 1 degenerates to a
// plain loop on worker 0.
func (p *Pool) run(n, w int, fn func(g, i int)) {
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(g, i)
			}
		}(g)
	}
	wg.Wait()
}

// runContext is run with cooperative cancellation and error propagation;
// see ForContext for the contract.
func (p *Pool) runContext(ctx context.Context, n, w int, fn func(g, i int) error) error {
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		stop    atomic.Bool
		mu      sync.Mutex
		callErr error
		wg      sync.WaitGroup
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(g int) {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(g, i); err != nil {
					mu.Lock()
					if callErr == nil {
						callErr = err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if callErr != nil {
		return callErr
	}
	return ctx.Err()
}

// For runs fn(i) for every i in [0, n), spread across the pool's workers,
// and returns when all calls have finished. With one worker (or one index)
// it degenerates to a plain loop.
func (p *Pool) For(n int, fn func(i int)) {
	w := p.width(n)
	body := p.instrument(n, w, func(_, i int) { fn(i) })
	p.run(n, w, body)
}

// ForArena is For with worker-local scratch: fn additionally receives the
// claiming worker's dsp.Arena, from which it may check out slices that are
// valid for that one index — the pool resets the arena after every fn
// return. No locking happens on the checkout path because no two workers
// ever share an arena. The arenas (and their buffers) are pool-owned and
// persist across loops, so steady-state iterations allocate nothing.
func (p *Pool) ForArena(n int, fn func(i int, a *dsp.Arena)) {
	w := p.width(n)
	arenas, owned := p.acquireArenas(w)
	defer p.releaseArenas(arenas, owned)
	body := p.instrument(n, w, func(g, i int) {
		a := arenas[g]
		fn(i, a)
		a.Reset()
	})
	p.run(n, w, body)
}

// ForContext is For with cooperative cancellation and error propagation:
// workers stop claiming new indices as soon as ctx is done or any fn call
// returns an error. In-flight calls run to completion (fn is never
// interrupted mid-index), then ForContext returns the first fn error, or
// ctx.Err() when the context ended the loop early. A context that is
// already done returns immediately without calling fn.
func (p *Pool) ForContext(ctx context.Context, n int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	w := p.width(n)
	sp := telemetry.SpanFromContext(ctx).Child("parallel.for", -1)
	if sp != nil {
		sp.SetAttr("tasks", n)
		sp.SetAttr("width", w)
		defer sp.End()
	}
	body := p.instrumentErr(n, w, func(_, i int) error { return fn(i) })
	return p.runContext(ctx, n, w, body)
}

// ForContextArena is ForContext with the worker-local scratch arenas of
// ForArena: per-index checkouts, reset by the pool after every fn return.
func (p *Pool) ForContextArena(ctx context.Context, n int, fn func(i int, a *dsp.Arena) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	w := p.width(n)
	arenas, owned := p.acquireArenas(w)
	defer p.releaseArenas(arenas, owned)
	body := p.instrumentErr(n, w, func(g, i int) error {
		a := arenas[g]
		err := fn(i, a)
		a.Reset()
		return err
	})
	return p.runContext(ctx, n, w, body)
}
