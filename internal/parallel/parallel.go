// Package parallel is the shared worker-pool layer behind the simulator's
// hot loops: per-chirp dechirp and range-FFT work in the radar, per-node
// downlink decoding and signature scans in the network core, and sweep
// points in the experiment harness.
//
// The pool is deliberately minimal. It holds no goroutines between calls —
// every For spawns its workers, distributes indices through an atomic
// counter, and joins — so a Pool is just a worker-count policy (plus an
// optional telemetry hook, see Instrument) and is safe to share and embed
// freely. Determinism is the caller's contract: fn must
// write results into pre-sized slices by index (never append) and must not
// share mutable state across indices; under that contract the result is
// byte-identical for any worker count, because only the execution order
// varies.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"biscatter/internal/telemetry"
)

// Pool schedules index-parallel loops over a fixed number of workers.
// The zero value is not ready; use New.
type Pool struct {
	workers int
	stats   *poolStats
}

// poolStats holds the pool's pre-resolved telemetry handles. All fields are
// nil-tolerant telemetry primitives, but the pool additionally gates on the
// struct pointer so the disabled path takes no clock readings.
type poolStats struct {
	queued    *telemetry.Counter   // tasks handed to For/ForContext
	completed *telemetry.Counter   // tasks whose fn returned
	wait      *telemetry.Histogram // seconds from loop entry to task claim
	duration  *telemetry.Histogram // seconds spent inside fn
	busy      *telemetry.Gauge     // workers currently inside fn
	width     *telemetry.Gauge     // effective width of the last loop
}

// New returns a pool of the given width. Non-positive widths select
// GOMAXPROCS at call time, so a default pool tracks the machine.
func New(workers int) *Pool {
	return &Pool{workers: workers}
}

// Instrument attaches pool telemetry to the registry under the "parallel."
// prefix and returns the pool for chaining: tasks queued/completed counters,
// queue-wait and task-duration histograms, and a workers-busy gauge — the
// data that says whether the pool width matches the workload. A nil registry
// leaves the pool uninstrumented (zero overhead). Pools instrumented with
// the same registry share the same metrics, giving an aggregate view across
// the subsystem pools.
//
// Determinism: the queued/completed counts and histogram sample counts
// depend only on the loops run, not on the worker count; timings and the
// busy/width gauges are live state and exempt.
func (p *Pool) Instrument(m *telemetry.Metrics) *Pool {
	if m == nil {
		return p
	}
	p.stats = &poolStats{
		queued:    m.Counter("parallel.tasks_queued"),
		completed: m.Counter("parallel.tasks_completed"),
		wait:      m.Histogram("parallel.queue_wait.seconds"),
		duration:  m.Histogram("parallel.task.seconds"),
		busy:      m.Gauge("parallel.workers_busy"),
		width:     m.Gauge("parallel.pool_width"),
	}
	return p
}

// Workers returns the effective worker count.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.workers
}

// width clamps the worker count to the job count; a width of 1 selects the
// serial fast path (no goroutines, no atomics).
func (p *Pool) width(n int) int {
	w := p.Workers()
	if w > n {
		w = n
	}
	return w
}

// instrument wraps fn with per-task telemetry when the pool is
// instrumented: queue wait (loop entry → claim), task duration, busy gauge
// and completion count. Returns fn unchanged on an uninstrumented pool.
func (p *Pool) instrument(n, width int, fn func(i int)) func(i int) {
	st := p.stats
	if st == nil {
		return fn
	}
	st.queued.Add(int64(n))
	st.width.Set(float64(width))
	start := time.Now()
	return func(i int) {
		claimed := time.Now()
		st.wait.Observe(claimed.Sub(start).Seconds())
		st.busy.Add(1)
		fn(i)
		st.busy.Add(-1)
		st.duration.Observe(time.Since(claimed).Seconds())
		st.completed.Inc()
	}
}

// For runs fn(i) for every i in [0, n), spread across the pool's workers,
// and returns when all calls have finished. With one worker (or one index)
// it degenerates to a plain loop.
func (p *Pool) For(n int, fn func(i int)) {
	w := p.width(n)
	fn = p.instrument(n, w, fn)
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForContext is For with cooperative cancellation and error propagation:
// workers stop claiming new indices as soon as ctx is done or any fn call
// returns an error. In-flight calls run to completion (fn is never
// interrupted mid-index), then ForContext returns the first fn error, or
// ctx.Err() when the context ended the loop early. A context that is
// already done returns immediately without calling fn.
func (p *Pool) ForContext(ctx context.Context, n int, fn func(i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	w := p.width(n)
	if st := p.stats; st != nil {
		inner := fn
		st.queued.Add(int64(n))
		st.width.Set(float64(w))
		start := time.Now()
		fn = func(i int) error {
			claimed := time.Now()
			st.wait.Observe(claimed.Sub(start).Seconds())
			st.busy.Add(1)
			err := inner(i)
			st.busy.Add(-1)
			st.duration.Observe(time.Since(claimed).Seconds())
			st.completed.Inc()
			return err
		}
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		stop    atomic.Bool
		mu      sync.Mutex
		callErr error
		wg      sync.WaitGroup
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if callErr == nil {
						callErr = err
					}
					mu.Unlock()
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if callErr != nil {
		return callErr
	}
	return ctx.Err()
}
