package tag

import (
	"fmt"
	"math"

	"biscatter/internal/dsp"
)

// UplinkScheme selects how uplink bits modulate the RF switch.
type UplinkScheme int

// Supported uplink schemes (§3.3: the tag structure is compatible with
// OOK/ASK/FSK on top of the RF switch).
const (
	// SchemeOOK keys the presence of the modulation tone: a 1-bit toggles
	// the switch at the tag's modulation frequency, a 0-bit leaves the tag
	// reflective (static).
	SchemeOOK UplinkScheme = iota
	// SchemeFSK toggles the switch at F0 for 0-bits and F1 for 1-bits.
	SchemeFSK
)

// String implements fmt.Stringer.
func (s UplinkScheme) String() string {
	switch s {
	case SchemeOOK:
		return "ook"
	case SchemeFSK:
		return "fsk"
	default:
		return fmt.Sprintf("UplinkScheme(%d)", int(s))
	}
}

// Modulator drives the RF switch on the Van Atta transmission line. The
// switch state is constant within a chirp and toggles across chirps, so
// modulation frequencies live in the slow-time domain and must stay below
// half the chirp rate.
type Modulator struct {
	// Scheme is the bit-to-waveform mapping.
	Scheme UplinkScheme
	// F0 is the modulation frequency (Hz) for 0-bits (FSK) or the tone
	// frequency (OOK).
	F0 float64
	// F1 is the modulation frequency for 1-bits (FSK only).
	F1 float64
	// ChirpsPerBit is the number of chirp periods each uplink bit spans.
	ChirpsPerBit int
}

// NewModulator builds a modulator and validates frequencies against the
// chirp rate 1/period.
func NewModulator(scheme UplinkScheme, f0, f1, period float64, chirpsPerBit int) (*Modulator, error) {
	chirpRate := 1 / period
	if period <= 0 {
		return nil, fmt.Errorf("tag: chirp period %v s must be positive", period)
	}
	if chirpsPerBit < 2 {
		return nil, fmt.Errorf("tag: chirps per bit %d must be at least 2", chirpsPerBit)
	}
	if f0 <= 0 || f0 >= chirpRate/2 {
		return nil, fmt.Errorf("tag: modulation frequency F0=%v Hz outside (0, chirpRate/2=%v)", f0, chirpRate/2)
	}
	if scheme == SchemeFSK {
		if f1 <= 0 || f1 >= chirpRate/2 {
			return nil, fmt.Errorf("tag: modulation frequency F1=%v Hz outside (0, chirpRate/2=%v)", f1, chirpRate/2)
		}
		if f0 == f1 {
			return nil, fmt.Errorf("tag: FSK needs two distinct frequencies")
		}
		// Each bit window must hold at least one full cycle of either tone
		// for the radar's slow-time Goertzel to separate them.
		window := float64(chirpsPerBit) * period
		if window*math.Min(f0, f1) < 1 {
			return nil, fmt.Errorf("tag: bit window %v s too short for F=%v Hz", window, math.Min(f0, f1))
		}
	}
	return &Modulator{Scheme: scheme, F0: f0, F1: f1, ChirpsPerBit: chirpsPerBit}, nil
}

// States returns the per-chirp switch states (true = reflective) for the
// given uplink bits over n chirps with the given chirp period. Chirps beyond
// the last bit keep modulating at F0, preserving the tag's localization
// signature.
func (m *Modulator) States(bits []bool, period float64, n int) []bool {
	return m.StatesInto(make([]bool, n), bits, period, n)
}

// StatesInto is States writing into dst, which is grown as needed and
// returned; every element is assigned, so dst may hold stale contents.
func (m *Modulator) StatesInto(dst []bool, bits []bool, period float64, n int) []bool {
	out := dsp.Resize(dst, n)
	for k := 0; k < n; k++ {
		t := float64(k) * period
		bitIdx := k / m.ChirpsPerBit
		var freq float64
		switch {
		case m.Scheme == SchemeOOK:
			if bitIdx < len(bits) && !bits[bitIdx] {
				out[k] = true // 0-bit: statically reflective, no tone
				continue
			}
			freq = m.F0
		case bitIdx < len(bits) && bits[bitIdx]:
			freq = m.F1
		default:
			freq = m.F0
		}
		// Square wave at freq: reflective during the positive half cycle.
		out[k] = math.Mod(t*freq, 1) < 0.5
	}
	return out
}

// BitWindows returns how many complete bit windows fit in n chirps.
func (m *Modulator) BitWindows(n int) int {
	return n / m.ChirpsPerBit
}

// UplinkBitRate returns the uplink data rate in bit/s for the given chirp
// period.
func (m *Modulator) UplinkBitRate(period float64) float64 {
	return 1 / (float64(m.ChirpsPerBit) * period)
}
