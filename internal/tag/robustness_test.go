package tag

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeSurvivesRandomWakeOffsetsProperty: the tag may wake anywhere
// within the first third of the preamble and still decode — the margin the
// header field buys (§3.1).
func TestDecodeSurvivesRandomWakeOffsetsProperty(t *testing.T) {
	s := newSetup(t, 5, 60)
	payload := []byte("offset robustness")
	frame := s.frameFor(t, payload)
	f := func(raw uint16) bool {
		offset := float64(raw%300) / 100 * testPeriod // 0 … 3 periods
		x := s.fe.Capture(frame, 40, offset, 0)
		got, _, err := s.dec.DecodePacket(x, s.pkt)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeWithBurstInterference injects a strong interference burst into
// the capture (another radar sweeping past): the CRC must protect against
// wrong deliveries even when decoding fails.
func TestDecodeWithBurstInterference(t *testing.T) {
	s := newSetup(t, 5, 61)
	payload := []byte("burst")
	frame := s.frameFor(t, payload)
	rng := rand.New(rand.NewSource(62))
	wrong := 0
	for trial := 0; trial < 30; trial++ {
		x := s.fe.CaptureFrame(frame, 35)
		// 300 µs of strong wideband interference at a random position.
		burst := 300
		start := rng.Intn(len(x) - burst)
		for i := start; i < start+burst; i++ {
			x[i] += 3 * rng.NormFloat64()
		}
		got, _, err := s.dec.DecodePacket(x, s.pkt)
		if err == nil && !bytes.Equal(got, payload) {
			wrong++
		}
	}
	if wrong > 1 {
		t.Fatalf("%d/30 interfered frames delivered wrong payloads", wrong)
	}
}

// TestDecodeWithTrailingGarbage appends unrelated signal after the packet
// (the next frame's header): the payload must still decode.
func TestDecodeWithTrailingGarbage(t *testing.T) {
	s := newSetup(t, 5, 63)
	payload := []byte("tail")
	frame := s.frameFor(t, payload)
	x := s.fe.Capture(frame, 40, 0, 6*testPeriod) // long noise tail
	got, _, err := s.dec.DecodePacket(x, s.pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q", got)
	}
}

// TestDecoderDeterminism: identical captures decode identically — the
// pipeline holds no hidden state.
func TestDecoderDeterminism(t *testing.T) {
	s := newSetup(t, 5, 64)
	payload := []byte{9, 8, 7}
	frame := s.frameFor(t, payload)
	x := s.fe.CaptureFrame(frame, 18)
	a, diagA, errA := s.dec.DecodeFrame(x)
	b, diagB, errB := s.dec.DecodeFrame(x)
	if (errA == nil) != (errB == nil) || diagA != diagB || len(a) != len(b) {
		t.Fatal("decoder is not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("symbol %d differs between identical decodes", i)
		}
	}
}

// TestSlopeJitterDegradesDecoding: the Fig. 17 clock-quality knob must
// actually hurt.
func TestSlopeJitterDegradesDecoding(t *testing.T) {
	clean := newSetup(t, 6, 65)
	jittery := newSetup(t, 6, 65)
	jittery.fe.SlopeJitter = 0.02 // 2% slope jitter: a bad synthesizer
	payload := []byte("jitter")
	frame := clean.frameFor(t, payload)
	const snr = 14
	cleanErrs, jitterErrs := 0, 0
	for trial := 0; trial < 12; trial++ {
		if got, _, err := clean.dec.DecodePacket(clean.fe.CaptureFrame(frame, snr), clean.pkt); err != nil || !bytes.Equal(got, payload) {
			cleanErrs++
		}
		if got, _, err := jittery.dec.DecodePacket(jittery.fe.CaptureFrame(frame, snr), jittery.pkt); err != nil || !bytes.Equal(got, payload) {
			jitterErrs++
		}
	}
	if jitterErrs <= cleanErrs {
		t.Fatalf("slope jitter should cost packets: clean %d vs jittery %d failures", cleanErrs, jitterErrs)
	}
}
