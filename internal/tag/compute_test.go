package tag

import (
	"testing"
	"testing/quick"
)

func TestDefaultComputeModelValid(t *testing.T) {
	if err := DefaultComputeModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ComputeModel{
		{WindowSamples: 0, Candidates: 1, EnergyPerMACpJ: 1},
		{WindowSamples: 1, Candidates: 0, EnergyPerMACpJ: 1},
		{WindowSamples: 1, Candidates: 1, EnergyPerMACpJ: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestGoertzelMACsLinearInWindow(t *testing.T) {
	a := ComputeModel{WindowSamples: 60, Candidates: 34, EnergyPerMACpJ: 5}
	b := a
	b.WindowSamples = 120
	if b.GoertzelMACs() <= a.GoertzelMACs() {
		t.Fatal("more samples must cost more")
	}
	if got := a.GoertzelMACs(); got != 34*(60+4) {
		t.Fatalf("MACs %d", got)
	}
}

func TestFFTMACsUsesNextPowerOfTwo(t *testing.T) {
	a := ComputeModel{WindowSamples: 60, Candidates: 34, EnergyPerMACpJ: 5}
	// N=64, 6 stages: 4·(32·6) + 2·64 = 896.
	if got := a.FFTMACs(); got != 896 {
		t.Fatalf("FFT MACs %d, want 896", got)
	}
}

func TestEnergyAndPower(t *testing.T) {
	m := DefaultComputeModel()
	e := m.SymbolEnergyJ(1000)
	if e != 1000*5e-12 {
		t.Fatalf("energy %v", e)
	}
	// 1000 MACs at ~8333 symbols/s.
	p := m.DecodePowerW(1000, 8333)
	if p <= 0 || p > 1e-3 {
		t.Fatalf("decode power %v W implausible", p)
	}
}

func TestGoertzelSavingsPositiveProperty(t *testing.T) {
	// §4.1's claim holds whenever the candidate set is small relative to
	// the full spectrum: the bank must not cost more than the FFT until
	// candidates ≈ window size.
	f := func(winRaw, candRaw uint8) bool {
		m := ComputeModel{
			WindowSamples:  20 + int(winRaw)%200,
			Candidates:     2 + int(candRaw)%12,
			EnergyPerMACpJ: 5,
		}
		return m.GoertzelSavings() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultSavingsOrderOfMagnitude(t *testing.T) {
	// With 34 candidates over ~60-sample windows, Goertzel and the FFT are
	// within the same order; the savings grow when only a few candidates
	// are live (e.g. tracking mode after sync locks a known symbol subset).
	tracking := DefaultComputeModel()
	tracking.Candidates = 4
	if s := tracking.GoertzelSavings(); s < 3 {
		t.Fatalf("tracking-mode savings %vx, expected >3x", s)
	}
}
