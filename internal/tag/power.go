package tag

import "fmt"

// PowerModel reproduces the §4.1 tag power budget. All figures in watts.
type PowerModel struct {
	// RFSwitch is the ADRF5144 SPDT switch draw (2.86 µW).
	RFSwitch float64
	// EnvelopeDetector is the ADL6010 draw (8 mW).
	EnvelopeDetector float64
	// MCUActive is the MCU at a 1 MHz clock doing ADC + Goertzel (40 mW).
	MCUActive float64
	// MCUSleep is the MCU ultra-low-power sleep draw.
	MCUSleep float64
	// PWMDriver is the autonomous PWM path that can toggle the switch with
	// the MCU asleep (<3 µW).
	PWMDriver float64
}

// DefaultPowerModel returns the prototype component figures from §4.1.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		RFSwitch:         2.86e-6,
		EnvelopeDetector: 8e-3,
		MCUActive:        40e-3,
		MCUSleep:         2e-6,
		PWMDriver:        3e-6,
	}
}

// Continuous returns the total draw in the continuous communication-and-
// sensing mode: every component active all the time (§4.1 reports ≈48 mW).
func (p PowerModel) Continuous() float64 {
	return p.RFSwitch + p.EnvelopeDetector + p.MCUActive
}

// Sequential returns the average draw when alternating between downlink
// (decode: detector + MCU active) and uplink (modulate: PWM + switch, MCU
// asleep) with the given downlink duty fraction in [0, 1].
func (p PowerModel) Sequential(downlinkFraction float64) (float64, error) {
	if downlinkFraction < 0 || downlinkFraction > 1 {
		return 0, fmt.Errorf("tag: downlink fraction %v must be in [0, 1]", downlinkFraction)
	}
	down := p.RFSwitch + p.EnvelopeDetector + p.MCUActive
	up := p.RFSwitch + p.PWMDriver + p.MCUSleep
	return downlinkFraction*down + (1-downlinkFraction)*up, nil
}

// CustomIC projects the §4.1 custom-IC redesign: MOSFET switch, op-amp
// envelope detector, Walden-FoM ADC and a Goertzel filter instead of a full
// FFT — about 4 mW total.
func (p PowerModel) CustomIC() float64 {
	const (
		mosfetSwitch = 1e-6
		opAmpDet     = 0.8e-3
		lowPowerADC  = 0.2e-6
		goertzelCore = 3.2e-3
	)
	return mosfetSwitch + opAmpDet + lowPowerADC + goertzelCore
}

// Breakdown lists each component's contribution in continuous mode, for the
// power table in the experiment harness.
func (p PowerModel) Breakdown() map[string]float64 {
	return map[string]float64{
		"rf-switch":         p.RFSwitch,
		"envelope-detector": p.EnvelopeDetector,
		"mcu-active":        p.MCUActive,
	}
}
