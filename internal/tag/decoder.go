package tag

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"biscatter/internal/cssk"
	"biscatter/internal/dsp"
	"biscatter/internal/packet"
)

// Method selects the per-chirp spectral estimator.
type Method int

// Decoding methods. Goertzel is the paper's low-power choice — the tag only
// needs power at the constellation beats, not the full spectrum (§3.2.2 and
// §4.1); the FFT path exists for the ablation comparison.
const (
	MethodGoertzel Method = iota
	MethodFFT
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodGoertzel:
		return "goertzel"
	case MethodFFT:
		return "fft"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Errors returned by the decoder.
var (
	// ErrNoPeriod means the chirp period could not be estimated — the tag
	// saw no periodic radar signal.
	ErrNoPeriod = errors.New("tag: chirp period not detected")
	// ErrTooShort means the capture holds fewer than two chirp periods.
	ErrTooShort = errors.New("tag: capture too short")
)

// Decoder implements the tag's decoding algorithm (§3.2.2):
//
//  1. a coarse pass over many header bits estimates the chirp period
//     T_period (the paper's "large FFT window" step, realized here as the
//     equivalent autocorrelation of the power envelope);
//  2. the power envelope folded at the period locates the inter-chirp gap,
//     aligning the per-chirp analysis window (avoiding the Fig. 6 failure
//     modes);
//  3. each chirp slot is classified against the CSSK constellation with a
//     per-candidate matched window: the Goertzel power at the candidate
//     beat over the candidate's own chirp duration.
//
// # Concurrency contract
//
// A Decoder is a single-threaded component: it reuses internal scratch
// buffers across calls, so it is not safe for concurrent use and returned
// slices are valid only until the next call on the same Decoder. Give each
// goroutine its own Decoder; separate Decoders share nothing mutable. This
// is the same contract as core.Network, which owns one Decoder per tag —
// see core.Fleet for serving many networks concurrently.
type Decoder struct {
	// Alphabet is the agreed CSSK constellation.
	Alphabet *cssk.Alphabet
	// SampleRate is the ADC rate (must match the front-end).
	SampleRate float64
	// Method selects Goertzel (default) or full-FFT classification.
	Method Method

	// scr holds capture-shaped scratch reused across decodes so the per-
	// exchange pipeline stays allocation-free after warm-up.
	scr decoderScratch
	// fftAC computes the period-search autocorrelation by real FFT; it owns
	// its transform scratch under the same single-threaded contract.
	fftAC dsp.FFTAutocorr
	// tones caches the matched-filter basis tables of classifySlot, keyed by
	// beat frequency; see toneTable.
	tones map[float64]*dsp.ToneTable
	// tonesReady records that prewarmToneTables has run, so steady-state
	// decoding never builds tables (the allocation pins depend on it).
	tonesReady bool
}

// decoderScratch is the decoder's reusable buffer set: the squared power
// envelope, the two cascaded smoothing stages, the autocorrelation, and the
// fold/sort buffers of the period search.
type decoderScratch struct {
	power  []float64
	sm1    []float64
	sm2    []float64
	acorr  []float64
	folded []float64
	sorted []float64
	counts []int
}

// NewDecoder builds a decoder.
func NewDecoder(alphabet *cssk.Alphabet, sampleRate float64) (*Decoder, error) {
	if alphabet == nil {
		return nil, fmt.Errorf("tag: alphabet is required")
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("tag: sample rate %v Hz must be positive", sampleRate)
	}
	beats := alphabet.Beats()
	if hi := beats[len(beats)-1]; hi >= sampleRate/2 {
		return nil, fmt.Errorf("tag: max beat %v Hz violates Nyquist at fs=%v Hz", hi, sampleRate)
	}
	return &Decoder{Alphabet: alphabet, SampleRate: sampleRate}, nil
}

// Diagnostics reports what the decoding pipeline inferred about the capture.
type Diagnostics struct {
	// PeriodSamples is the estimated chirp period in (fractional) samples.
	PeriodSamples float64
	// ChirpStart is the estimated offset of the first full chirp start.
	ChirpStart int
	// Symbols is the number of chirp slots classified.
	Symbols int
	// FECCodedBits is the number of coded payload bits the FEC layer
	// consumed (zero when FEC is disabled).
	FECCodedBits int
	// FECCorrectedBits is the number of channel bit errors the FEC layer
	// repaired — a direct channel-quality signal for the link controller.
	FECCorrectedBits int
}

// EstimatePeriod estimates the chirp period in samples from the capture's
// power envelope. It returns ErrNoPeriod when no periodic structure is
// present.
func (d *Decoder) EstimatePeriod(x []float64) (float64, error) {
	if len(x) < 256 {
		return 0, ErrTooShort
	}
	// Power envelope. The detector tone rides a 2·Δf ripple on top of the
	// burst envelope; two cascaded moving averages (≈ triangular smoothing)
	// suppress it while keeping the chirp-period fundamental.
	power := dsp.Resize(d.scr.power, len(x))
	for i, v := range x {
		power[i] = v * v
	}
	d.scr.power = power
	smoothWidth := int(25e-6 * d.SampleRate)
	if smoothWidth < 3 {
		smoothWidth = 3
	}
	d.scr.sm1 = dsp.MovingAverageInto(d.scr.sm1, power, smoothWidth)
	env := dsp.MovingAverageInto(d.scr.sm2, d.scr.sm1, smoothWidth)
	d.scr.sm2 = env
	dsp.RemoveDC(env)
	// Chirp periods of interest: 30 µs … 1 ms.
	minLag := int(30e-6 * d.SampleRate)
	if minLag < 4 {
		minLag = 4
	}
	maxLag := int(1e-3 * d.SampleRate)
	if maxLag > len(x)/2 {
		maxLag = len(x) / 2
	}
	if maxLag <= minLag {
		return 0, ErrTooShort
	}
	// Wiener–Khinchin: the O(n log n) transform pair replaces the serial
	// O(n·maxLag) accumulation, the period search's second-largest cost.
	r := d.fftAC.Into(d.scr.acorr, env, maxLag+1)
	d.scr.acorr = r
	// The biased autocorrelation decays with lag, so the global maximum in
	// range lands on the fundamental period rather than one of its
	// multiples.
	bestLag, bestVal := dsp.MaxIndexRange(r, minLag, maxLag+1)
	if bestVal <= 0.2*r[0] {
		return 0, ErrNoPeriod
	}
	delta, _ := dsp.ParabolicPeak(r, bestLag)
	coarse := float64(bestLag) + delta
	// The autocorrelation apex is smeared by the smoothing and by the
	// mixed chirp durations of a CSSK payload, and any fractional-sample
	// bias accumulates across the k·period slot windows. Refine by grid
	// search on fold contrast: the true period folds the inter-chirp gap
	// into the deepest quiet region.
	//
	// The coarse peak can also land on a multiple of the true period, and a
	// multiple folds just as cleanly — so test the sub-multiples and prefer
	// the smallest period whose contrast is close to the best.
	minPeriod := float64(minLag)
	type cand struct{ period, score float64 }
	var cands [8]cand
	nCands := 0
	bestScore := math.Inf(-1)
	for m := 1; m <= len(cands); m++ {
		p0 := coarse / float64(m)
		if p0 < minPeriod {
			break
		}
		p := d.refinePeriod(power, p0)
		s := d.foldContrast(power, p)
		cands[nCands] = cand{p, s}
		nCands++
		if s > bestScore {
			bestScore = s
		}
	}
	for i := nCands - 1; i >= 0; i-- {
		if cands[i].score >= 0.8*bestScore {
			return cands[i].period, nil
		}
	}
	return coarse, nil
}

// refinePeriod sharpens a coarse period estimate by maximizing the contrast
// of the power envelope folded at candidate periods.
func (d *Decoder) refinePeriod(power []float64, p0 float64) float64 {
	best, bestScore := p0, math.Inf(-1)
	span := p0 * 0.02
	step := span / 40
	if step <= 0 {
		return p0
	}
	for p := p0 - span; p <= p0+span; p += step {
		if s := d.foldContrast(power, p); s > bestScore {
			bestScore, best = s, p
		}
	}
	// Second, finer pass around the winner.
	p1 := best
	for p := p1 - step; p <= p1+step; p += step / 10 {
		if s := d.foldContrast(power, p); s > bestScore {
			bestScore, best = s, p
		}
	}
	return best
}

// ceilMulExact returns ⌈k·period⌉ computed on the exact real product, not
// the rounded float64 one. The two-product trick recovers the rounding
// error of the multiply — hi+lo is exactly k·period because FMA rounds
// once — and the ceiling is then corrected when that error crosses an
// integer boundary. This is what lets the fold below walk period
// boundaries with pure integer indices while matching the per-sample
// int(math.Mod(float64(i), period)) bin assignment bit for bit: both are
// the exact remainder ⌊i − k·period⌋ of real arithmetic (math.Mod is
// exact by construction).
func ceilMulExact(k, period float64) int {
	hi := k * period
	lo := math.FMA(k, period, -hi)
	s := math.Ceil(hi)
	// d and d+lo are exact: |hi−s| < 1 and |lo| ≤ ½ulp(hi), so both fit a
	// 53-bit significand for the magnitudes the decoder sees (captures are
	// far below 2^40 samples).
	d := hi - s
	t := d + lo // exact value of k·period − s
	switch {
	case t > 0:
		s++
	case t <= -1:
		s--
	}
	return int(s)
}

// foldPeriodInto folds x (optionally squared first) at the candidate period
// into the folded/counts accumulators. It is the exact-arithmetic
// restructuring of the naive per-sample loop
//
//	b := int(math.Mod(float64(i), period)); folded[b] += v; counts[b]++
//
// the per-sample math.Mod of which dominated the whole exchange CPU profile.
// Samples are processed as contiguous runs, one per chirp period: run k
// covers samples [⌈k·period⌉, ⌈(k+1)·period⌉) and sample i inside it folds
// to bin i − ⌈k·period⌉. Each bin still accumulates its samples in
// ascending-index order, so the sums are bit-identical to the naive loop —
// the golden vectors prove it.
func foldPeriodInto(folded []float64, counts []int, x []float64, period float64, square bool) {
	bins := len(folded)
	n := len(x)
	// counts never feeds the floating-point order, so it is hoisted out of
	// the sample loop entirely: counts[m-1] first accumulates a run-length
	// histogram (runs of in-bin length m), and the suffix sum below turns
	// it into per-bin sample counts — integer-exact, O(bins) instead of
	// O(n). That leaves the inner loop as a branch-free contiguous
	// accumulation the compiler can keep in registers.
	spill := 0
	start := 0
	for k := 1; start < n; k++ {
		next := ceilMulExact(float64(k), period)
		if next > n {
			next = n
		}
		run := x[start:next]
		inb := len(run)
		if inb > bins {
			inb = bins
		}
		if square {
			for b, v := range run[:inb] {
				folded[b] += v * v
			}
		} else {
			for b, v := range run[:inb] {
				folded[b] += v
			}
		}
		// Runs are floor(period) or ceil(period) samples long, so only the
		// final sample of a long run can pass bins-1; it clamps onto the
		// last bin after that bin's regular sample, exactly like the naive
		// loop's b >= bins guard in ascending index order.
		for _, v := range run[inb:] {
			if square {
				v *= v
			}
			folded[bins-1] += v
			spill++
		}
		counts[inb-1]++
		start = next
	}
	for b := bins - 2; b >= 0; b-- {
		counts[b] += counts[b+1]
	}
	counts[bins-1] += spill
}

// foldContrast folds the power envelope at the candidate period and returns
// the contrast between the loudest and quietest deciles of the fold. The
// true period aligns every inter-chirp gap onto the same bins, maximizing
// the contrast. It is the inner statistic of the period grid search, so the
// fold/sort buffers live in the decoder scratch.
func (d *Decoder) foldContrast(power []float64, period float64) float64 {
	bins := int(period)
	if bins < 4 || len(power) < 2*bins {
		return math.Inf(-1)
	}
	folded := dsp.Resize(d.scr.folded, bins)
	clear(folded)
	d.scr.folded = folded
	counts := dsp.Resize(d.scr.counts, bins)
	clear(counts)
	d.scr.counts = counts
	foldPeriodInto(folded, counts, power, period, false)
	for b := range folded {
		if counts[b] > 0 {
			folded[b] /= float64(counts[b])
		}
	}
	sorted := dsp.Resize(d.scr.sorted, bins)
	copy(sorted, folded)
	d.scr.sorted = sorted
	slices.Sort(sorted)
	// The duty-cycle limit guarantees a quiet gap of at least 20% of the
	// period, so compare the quietest fifth of the fold against the loudest.
	dec := bins / 5
	if dec < 1 {
		dec = 1
	}
	var lo, hi float64
	for i := 0; i < dec; i++ {
		lo += sorted[i]
		hi += sorted[bins-1-i]
	}
	if hi <= 0 {
		return math.Inf(-1)
	}
	return hi / (lo + 1e-3*hi)
}

// AlignChirpStart locates the phase (sample offset in [0, period)) at which
// chirps begin. The power envelope folded at the period has its sharpest
// circular rising edge exactly at the chirp start: every chirp is active for
// at least the 20 µs minimum duration right after it, and the ≤80% duty
// cycle guarantees every chirp is silent right before it. Edge detection is
// threshold-free, unlike quiet-run search, and therefore robust to payloads
// whose mixed durations leave intermediate-power fold bins.
func (d *Decoder) AlignChirpStart(x []float64, period float64) int {
	bins := int(period)
	if bins < 8 || len(x) < bins {
		return 0
	}
	folded := dsp.Resize(d.scr.folded, bins)
	clear(folded)
	d.scr.folded = folded
	counts := dsp.Resize(d.scr.counts, bins)
	clear(counts)
	d.scr.counts = counts
	foldPeriodInto(folded, counts, x, period, true)
	for b := range folded {
		if counts[b] > 0 {
			folded[b] /= float64(counts[b])
		}
	}
	g := bins / 8 // comparison window; ≤ the guaranteed active/quiet spans
	if g < 2 {
		g = 2
	}
	bestScore, bestBin := math.Inf(-1), 0
	for b := 0; b < bins; b++ {
		var after, before float64
		for k := 0; k < g; k++ {
			after += folded[(b+k)%bins]
			before += folded[(b-1-k+2*bins)%bins]
		}
		if score := after - before; score > bestScore {
			bestScore, bestBin = score, b
		}
	}
	return bestBin
}

// toneTable returns the decoder's cached matched-filter table for a beat
// frequency, building it on first use. Tables are keyed by the exact
// float64 bits of the frequency; the constellation and each symbol's
// fine-scan grid regenerate identical frequency sequences every slot, so
// steady-state decoding hits the cache and allocates nothing here.
func (d *Decoder) toneTable(freq float64) *dsp.ToneTable {
	if t, ok := d.tones[freq]; ok {
		return t
	}
	if d.tones == nil {
		d.tones = make(map[float64]*dsp.ToneTable, 64)
	}
	t := dsp.NewToneTable(freq, d.SampleRate, 0)
	d.tones[freq] = t
	return t
}

// prewarmToneTables builds every matched-filter table the classify path can
// request — one per constellation symbol plus each symbol's fine-scan grid —
// grown to the symbol's full window, so the per-(frame, slot) hot loop only
// ever hits the cache. It runs once, on the first decode: the alphabet and
// sample rate are fixed at construction, so the working set is closed; a
// mode change builds a new Decoder and with it a fresh cache. The fine-grid
// frequencies are enumerated by the exact accumulation loop classifySlot
// uses, so the cache keys match its queries bit for bit.
func (d *Decoder) prewarmToneTables() {
	if d.tonesReady || d.Method == MethodFFT {
		return
	}
	d.tonesReady = true
	spacing := d.Alphabet.MinSpacing()
	warm := func(s cssk.Symbol, err error) {
		if err != nil {
			return
		}
		n := int(s.Duration * d.SampleRate)
		if n < 0 {
			n = 0
		}
		d.toneTable(s.Beat).Grow(n)
		for f := s.Beat - 1.5*spacing; f <= s.Beat+1.5*spacing; f += spacing / 10 {
			if f <= 0 || f >= d.SampleRate/2 {
				continue
			}
			d.toneTable(f).Grow(n)
		}
	}
	warm(d.Alphabet.Header(), nil)
	warm(d.Alphabet.Sync(), nil)
	for i := 0; i < d.Alphabet.DataSymbolCount(); i++ {
		warm(d.Alphabet.DataSymbol(i))
	}
}

// classifySlot classifies one chirp slot starting at sample w using the
// per-candidate matched window.
func (d *Decoder) classifySlot(x []float64, w int, period float64) (cssk.Symbol, bool) {
	best := math.Inf(-1)
	var bestSym cssk.Symbol
	classify := func(s cssk.Symbol) {
		n := int(s.Duration * d.SampleRate)
		if w+n > len(x) {
			n = len(x) - w
		}
		if n < 4 {
			return
		}
		win := x[w : w+n]
		p := d.toneTable(s.Beat).EnergyAt(win) / float64(n)
		if p > best {
			best = p
			bestSym = s
		}
	}
	if d.Method == MethodFFT {
		// Full-window FFT: take the longest possible chirp window, find the
		// spectral peak, and classify the peak frequency to the nearest
		// constellation beat.
		n := int(0.999 * period)
		if w+n > len(x) {
			n = len(x) - w
		}
		if n < 8 {
			return cssk.Symbol{}, false
		}
		m := dsp.NextPowerOfTwo(n)
		plan, err := dsp.RealPlanFor(m)
		if err != nil {
			return cssk.Symbol{}, false
		}
		win := make([]float64, m)
		copy(win, x[w:w+n])
		dsp.ApplyWindow(win[:n], dsp.Window(dsp.WindowHann, n))
		spec := make([]complex128, plan.SpectrumLen())
		plan.ForwardInto(spec, win)
		mags := make([]float64, len(spec))
		dsp.MagnitudesInto(mags, spec)
		lo := 1
		hi := m / 2
		if hi <= lo {
			return cssk.Symbol{}, false
		}
		idx, _ := dsp.MaxIndexRange(mags, lo, hi)
		delta, _ := dsp.ParabolicPeak(mags, idx)
		freq := (float64(idx) + delta) * d.SampleRate / float64(m)
		return d.Alphabet.ClassifyBeat(freq), true
	}
	classify(d.Alphabet.Header())
	classify(d.Alphabet.Sync())
	for i := 0; i < d.Alphabet.DataSymbolCount(); i++ {
		s, err := d.Alphabet.DataSymbol(i)
		if err != nil {
			continue
		}
		classify(s)
	}
	if math.IsInf(best, -1) {
		return cssk.Symbol{}, false
	}
	// Fine pass: the coarse matched filter resolves to within about one
	// constellation point, but the ML frequency estimate of a tone in noise
	// is far finer than the Fourier resolution of a single chirp. Scan the
	// periodogram around the coarse beat and classify the refined peak.
	n := int(bestSym.Duration * d.SampleRate)
	if w+n > len(x) {
		n = len(x) - w
	}
	if n >= 8 {
		win := x[w : w+n]
		spacing := d.Alphabet.MinSpacing()
		fBest, pBest := bestSym.Beat, -1.0
		for f := bestSym.Beat - 1.5*spacing; f <= bestSym.Beat+1.5*spacing; f += spacing / 10 {
			if f <= 0 || f >= d.SampleRate/2 {
				continue
			}
			if p := d.toneTable(f).EnergyAt(win); p > pBest {
				pBest, fBest = p, f
			}
		}
		return d.Alphabet.ClassifyBeat(fBest), true
	}
	return bestSym, true
}

// DecodeSymbols classifies every complete chirp slot in the capture, given
// the period (samples) and start offset. Each slot is micro-aligned to the
// chirp's rising power edge, which absorbs residual period error over long
// frames.
func (d *Decoder) DecodeSymbols(x []float64, period float64, start int) []cssk.Symbol {
	out := make([]cssk.Symbol, 0, int(float64(len(x))/period)+1)
	for k := 0; ; k++ {
		w := start + int(math.Round(float64(k)*period))
		if w+int(0.5*period) > len(x) {
			break
		}
		w += d.edgeOffset(x, w)
		if w < 0 {
			w = 0
		}
		if s, ok := d.classifySlot(x, w, period); ok {
			out = append(out, s)
		}
	}
	return out
}

// edgeOffset searches a small neighborhood of the nominal slot start for the
// chirp's rising power edge and returns the correction in samples.
func (d *Decoder) edgeOffset(x []float64, w int) int {
	const reach = 6
	const g = 8
	bestScore := math.Inf(-1)
	bestOff := 0
	for off := -reach; off <= reach; off++ {
		p := w + off
		if p-g < 0 || p+g > len(x) {
			continue
		}
		var after, before float64
		for i := p; i < p+g; i++ {
			after += x[i] * x[i]
		}
		for i := p - g; i < p; i++ {
			before += x[i] * x[i]
		}
		if score := after - before; score > bestScore {
			bestScore = score
			bestOff = off
		}
	}
	return bestOff
}

// DecodeFrame runs the full pipeline on a capture: period estimation,
// alignment, per-slot classification.
func (d *Decoder) DecodeFrame(x []float64) ([]cssk.Symbol, Diagnostics, error) {
	d.prewarmToneTables()
	period, err := d.EstimatePeriod(x)
	if err != nil {
		return nil, Diagnostics{}, err
	}
	start := d.AlignChirpStart(x, period)
	syms := d.DecodeSymbols(x, period, start)
	return syms, Diagnostics{PeriodSamples: period, ChirpStart: start, Symbols: len(syms)}, nil
}

// DecodePacket decodes a capture all the way to a downlink payload using the
// shared packet framing.
func (d *Decoder) DecodePacket(x []float64, cfg packet.Config) ([]byte, Diagnostics, error) {
	syms, diag, err := d.DecodeFrame(x)
	if err != nil {
		return nil, diag, err
	}
	payload, st, err := cfg.DecodeStats(syms)
	diag.FECCodedBits = st.CodedBits
	diag.FECCorrectedBits = st.CorrectedBits
	return payload, diag, err
}
