package tag

import (
	"fmt"
	"math"
)

// ComputeModel estimates the tag MCU's arithmetic workload per decoded
// symbol, backing §4.1's argument that "replacing the FFT with the Goertzel
// filter ... can reduce power usage since evaluating the entire FFT
// spectrum is not necessary".
type ComputeModel struct {
	// WindowSamples is the per-chirp analysis window length N.
	WindowSamples int
	// Candidates is the number of constellation beats evaluated (Goertzel
	// runs one filter per candidate; the FFT computes everything).
	Candidates int
	// EnergyPerMACpJ is the energy of one multiply-accumulate in picojoules
	// (≈5 pJ for a low-power Cortex-M class MCU at 1 MHz).
	EnergyPerMACpJ float64
}

// DefaultComputeModel matches the paper's operating point: ~60-sample
// windows at the 1 MHz ADC, 34 candidate beats (32 data + header + sync).
func DefaultComputeModel() ComputeModel {
	return ComputeModel{
		WindowSamples:  60,
		Candidates:     34,
		EnergyPerMACpJ: 5,
	}
}

// Validate checks the model.
func (c ComputeModel) Validate() error {
	if c.WindowSamples < 1 {
		return fmt.Errorf("tag: window samples %d must be positive", c.WindowSamples)
	}
	if c.Candidates < 1 {
		return fmt.Errorf("tag: candidates %d must be positive", c.Candidates)
	}
	if c.EnergyPerMACpJ <= 0 {
		return fmt.Errorf("tag: energy per MAC %v must be positive", c.EnergyPerMACpJ)
	}
	return nil
}

// GoertzelMACs returns the multiply-accumulates per symbol for the Goertzel
// bank: one MAC per sample per candidate (the single-coefficient recurrence)
// plus a constant finalization per candidate.
func (c ComputeModel) GoertzelMACs() int {
	return c.Candidates * (c.WindowSamples + 4)
}

// FFTMACs returns the multiply-accumulates per symbol for a radix-2 FFT
// over the next power-of-two window (N/2·log2 N complex butterflies, 4 MACs
// each) plus the magnitude pass.
func (c ComputeModel) FFTMACs() int {
	n := 1
	for n < c.WindowSamples {
		n <<= 1
	}
	stages := int(math.Round(math.Log2(float64(n))))
	butterflies := n / 2 * stages
	return 4*butterflies + 2*n
}

// SymbolEnergyJ returns the per-symbol decode energy in joules for the
// given MAC count.
func (c ComputeModel) SymbolEnergyJ(macs int) float64 {
	return float64(macs) * c.EnergyPerMACpJ * 1e-12
}

// DecodePowerW returns the average decode compute power in watts at the
// given symbol rate (symbols/s) for the given MAC count per symbol.
func (c ComputeModel) DecodePowerW(macs int, symbolRate float64) float64 {
	return c.SymbolEnergyJ(macs) * symbolRate
}

// GoertzelSavings returns the ratio of FFT to Goertzel MACs — how much
// §4.1's Goertzel substitution saves on the spectral-analysis workload.
func (c ComputeModel) GoertzelSavings() float64 {
	g := c.GoertzelMACs()
	if g == 0 {
		return 0
	}
	return float64(c.FFTMACs()) / float64(g)
}
