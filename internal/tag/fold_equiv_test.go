package tag

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// naiveFold is the per-sample math.Mod fold that foldPeriodInto replaced —
// reproduced verbatim from the original decoder loops so the restructured
// run-based fold can be pinned against it bit for bit.
func naiveFold(folded []float64, counts []int, x []float64, period float64, square bool) {
	bins := len(folded)
	for i, v := range x {
		if square {
			v = v * v
		}
		b := int(math.Mod(float64(i), period))
		if b >= bins {
			b = bins - 1
		}
		folded[b] += v
		counts[b]++
	}
}

// TestFoldPeriodIntoMatchesNaiveMod is the equivalence oracle for the
// run-based fold: across random signals and awkward periods (integer,
// just-below-integer, irrational-ish) the restructured fold must reproduce
// the naive per-sample loop's per-bin sums bit-identically and its counts
// exactly. Bit equality holds because both fold each bin's samples in
// ascending index order; only the bin-index computation changed.
func TestFoldPeriodIntoMatchesNaiveMod(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	periods := []float64{4, 5, 7.3, 16, 29.999999999, 30.000000001, 119.97, 120, 255.5, 1000.0 / 3}
	for trial := 0; trial < 40; trial++ {
		n := 50 + rng.Intn(4000)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		period := periods[trial%len(periods)]
		if 2*int(period) > n {
			continue
		}
		for _, square := range []bool{false, true} {
			bins := int(period)
			gotF := make([]float64, bins)
			gotC := make([]int, bins)
			foldPeriodInto(gotF, gotC, x, period, square)
			wantF := make([]float64, bins)
			wantC := make([]int, bins)
			naiveFold(wantF, wantC, x, period, square)
			for b := 0; b < bins; b++ {
				if math.Float64bits(gotF[b]) != math.Float64bits(wantF[b]) {
					t.Fatalf("trial %d period=%v square=%v bin %d: fold %v, naive %v",
						trial, period, square, b, gotF[b], wantF[b])
				}
				if gotC[b] != wantC[b] {
					t.Fatalf("trial %d period=%v square=%v bin %d: count %d, naive %d",
						trial, period, square, b, gotC[b], wantC[b])
				}
			}
		}
	}
}

// TestCeilMulExact pins the FMA two-product ceiling against exact rational
// arithmetic: for every (k, period) the result must be ⌈k·period⌉ of the
// infinitely precise product, which big.Float evaluates directly.
func TestCeilMulExact(t *testing.T) {
	exact := func(k, period float64) int {
		p := new(big.Float).SetPrec(200).SetFloat64(k)
		p.Mul(p, new(big.Float).SetPrec(200).SetFloat64(period))
		i, acc := p.Int64()
		if acc == big.Exact {
			return int(i) // integer product: ceil is itself
		}
		if p.Sign() > 0 {
			return int(i) + 1 // Int64 truncates toward zero
		}
		return int(i)
	}
	rng := rand.New(rand.NewSource(12))
	// Deterministic edge cases: periods whose rounded products sit right on
	// integer boundaries, plus exact integers.
	cases := [][2]float64{
		{0, 7.5}, {1, 7.5}, {3, 120}, {7, 29.999999999}, {7, 30.000000001},
		{1000, 1000.0 / 3}, {999999, 119.97}, {12345, 0.1},
	}
	for _, c := range cases {
		if got, want := ceilMulExact(c[0], c[1]), exact(c[0], c[1]); got != want {
			t.Errorf("ceilMulExact(%v, %v) = %d, want %d", c[0], c[1], got, want)
		}
	}
	for trial := 0; trial < 5000; trial++ {
		k := float64(rng.Intn(1 << 20))
		period := rng.Float64()*1000 + 0.001
		if got, want := ceilMulExact(k, period), exact(k, period); got != want {
			t.Fatalf("ceilMulExact(%v, %v) = %d, want %d", k, period, got, want)
		}
	}
}
