package tag

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"biscatter/internal/cssk"
	"biscatter/internal/delayline"
	"biscatter/internal/dsp"
	"biscatter/internal/fmcw"
	"biscatter/internal/packet"
)

const (
	testPeriod = 120e-6
	testFs     = 1e6
	testFc     = 9.5e9
)

// testSetup builds a coherent (pair, alphabet, front-end, decoder, frame
// builder) stack around the paper's 9 GHz / 45-inch configuration.
type testSetup struct {
	pair    delayline.Pair
	alpha   *cssk.Alphabet
	fe      *FrontEnd
	dec     *Decoder
	builder *fmcw.FrameBuilder
	pkt     packet.Config
}

func newSetup(t testing.TB, bits int, seed int64) *testSetup {
	t.Helper()
	pair, err := delayline.NewCoaxPair(45*delayline.MetersPerInch, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	cal := delayline.FromPair(pair, testFc)
	alpha, err := cssk.NewAlphabet(cssk.Config{
		Bandwidth:        1e9,
		Period:           testPeriod,
		MinChirpDuration: 20e-6,
		DeltaT:           cal.EffectiveDeltaT,
		MinBeatSpacing:   500,
		SymbolBits:       bits,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFrontEnd(pair, testFs, testFc, seed)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(alpha, testFs)
	if err != nil {
		t.Fatal(err)
	}
	base := fmcw.ChirpParams{StartFrequency: 9e9, Bandwidth: 1e9, Duration: 60e-6, SampleRate: 4e6}
	builder, err := fmcw.NewFrameBuilder(base, testPeriod)
	if err != nil {
		t.Fatal(err)
	}
	return &testSetup{
		pair:    pair,
		alpha:   alpha,
		fe:      fe,
		dec:     dec,
		builder: builder,
		pkt:     packet.Config{Alphabet: alpha, HeaderLen: 8, SyncLen: 2},
	}
}

func (s *testSetup) frameFor(t testing.TB, payload []byte) *fmcw.Frame {
	t.Helper()
	durs, err := s.pkt.Durations(payload)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := s.builder.Build(durs)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestNewFrontEndValidation(t *testing.T) {
	pair, _ := delayline.NewCoaxPair(0.5, 0.7)
	if _, err := NewFrontEnd(delayline.Pair{}, testFs, testFc, 1); err == nil {
		t.Error("invalid pair should fail")
	}
	if _, err := NewFrontEnd(pair, 0, testFc, 1); err == nil {
		t.Error("zero sample rate should fail")
	}
	if _, err := NewFrontEnd(pair, testFs, 0, 1); err == nil {
		t.Error("zero center frequency should fail")
	}
}

func TestNewDecoderValidation(t *testing.T) {
	s := newSetup(t, 5, 1)
	if _, err := NewDecoder(nil, testFs); err == nil {
		t.Error("nil alphabet should fail")
	}
	if _, err := NewDecoder(s.alpha, 0); err == nil {
		t.Error("zero sample rate should fail")
	}
	// An ADC too slow for the constellation's top beat must be rejected.
	if _, err := NewDecoder(s.alpha, 100e3); err == nil {
		t.Error("sub-Nyquist sample rate should fail")
	}
}

func TestCaptureBeatFrequencyMatchesEquation11(t *testing.T) {
	// The front-end's per-chirp tone must sit at α·ΔT.
	s := newSetup(t, 5, 2)
	for _, dur := range []float64{20e-6, 48e-6, 96e-6} {
		frame, err := s.builder.BuildUniform(20, dur)
		if err != nil {
			t.Fatal(err)
		}
		x := s.fe.CaptureFrame(frame, 60)
		want := s.pair.ExpectedBeat(1e9/dur, testFc)
		// Concatenate chirp-active regions and measure dominant frequency.
		p := int(testPeriod * testFs)
		cn := int(dur * testFs)
		var active []float64
		for k := 0; k < 20; k++ {
			start := k * p
			active = append(active, x[start:start+cn]...)
		}
		// Use Goertzel scan around the expected beat.
		bestF, bestP := 0.0, -1.0
		for f := want * 0.5; f <= want*1.5; f += want / 200 {
			if pw := dsp.GoertzelPower(x[:cn], f, testFs); pw > bestP {
				bestP, bestF = pw, f
			}
		}
		_ = active
		if math.Abs(bestF-want)/want > 0.1 {
			t.Fatalf("dur %v: measured beat %v, want %v", dur, bestF, want)
		}
	}
}

func TestCaptureLengthAndGaps(t *testing.T) {
	s := newSetup(t, 5, 3)
	frame, _ := s.builder.BuildUniform(10, 60e-6)
	x := s.fe.CaptureFrame(frame, 100) // essentially noise-free
	wantLen := int(frame.Duration() * testFs)
	if len(x) != wantLen {
		t.Fatalf("capture length %d, want %d", len(x), wantLen)
	}
	// Inter-chirp gaps must be silent.
	p := int(testPeriod * testFs)
	cn := int(60e-6 * testFs)
	for k := 0; k < 10; k++ {
		gap := x[k*p+cn+1 : (k+1)*p]
		if dsp.RMS(gap) > 0.01 {
			t.Fatalf("chirp %d gap not silent: RMS %v", k, dsp.RMS(gap))
		}
	}
}

func TestCaptureOffsetAndTail(t *testing.T) {
	s := newSetup(t, 5, 4)
	frame, _ := s.builder.BuildUniform(10, 60e-6)
	full := s.fe.Capture(frame, 100, 0, 0)
	off := s.fe.Capture(frame, 100, 2.5*testPeriod, 500e-6)
	wantLen := int((frame.Duration() - 2.5*testPeriod + 500e-6) * testFs)
	if len(off) != wantLen {
		t.Fatalf("offset capture length %d, want %d", len(off), wantLen)
	}
	_ = full
	// The tail must be noise-only (silent at high SNR).
	tail := off[len(off)-int(400e-6*testFs):]
	if dsp.RMS(tail) > 0.01 {
		t.Fatalf("tail not silent: %v", dsp.RMS(tail))
	}
}

func TestEstimatePeriodAccuracy(t *testing.T) {
	s := newSetup(t, 5, 5)
	frame, _ := s.builder.BuildUniform(30, 96e-6) // header-like run
	x := s.fe.CaptureFrame(frame, 30)
	period, err := s.dec.EstimatePeriod(x)
	if err != nil {
		t.Fatal(err)
	}
	want := testPeriod * testFs
	if math.Abs(period-want) > 2 {
		t.Fatalf("period %v samples, want %v", period, want)
	}
}

func TestEstimatePeriodErrors(t *testing.T) {
	s := newSetup(t, 5, 6)
	if _, err := s.dec.EstimatePeriod(make([]float64, 10)); !errors.Is(err, ErrTooShort) {
		t.Fatalf("short capture: %v", err)
	}
	// Pure noise has no period.
	noise := make([]float64, 4000)
	rng := rand.New(rand.NewSource(7))
	for i := range noise {
		noise[i] = rng.NormFloat64()
	}
	if _, err := s.dec.EstimatePeriod(noise); err == nil {
		t.Fatal("pure noise should not yield a period")
	}
}

func TestAlignChirpStartFindsGapEnd(t *testing.T) {
	s := newSetup(t, 5, 8)
	frame, _ := s.builder.BuildUniform(20, 80e-6)
	// Offset the capture so chirps start mid-period.
	const offset = 37e-6
	x := s.fe.Capture(frame, 40, offset, 2*testPeriod)
	period := testPeriod * testFs
	start := s.dec.AlignChirpStart(x, period)
	// Chirp k starts at k·P − offset; modulo P that's P − offset ≈ 83 µs.
	want := int((testPeriod - offset) * testFs)
	diff := math.Abs(float64(start - want))
	if diff > float64(period)/2 {
		diff = float64(period) - diff // circular distance
	}
	if diff > 3 {
		t.Fatalf("chirp start %d, want ≈%d", start, want)
	}
}

func TestDecodeSymbolsCleanChannel(t *testing.T) {
	s := newSetup(t, 5, 9)
	payload := []byte("hello tag")
	frame := s.frameFor(t, payload)
	x := s.fe.CaptureFrame(frame, 50)
	syms, diag, err := s.dec.DecodeFrame(x)
	if err != nil {
		t.Fatal(err)
	}
	if diag.Symbols < len(frame.Chirps)-1 {
		t.Fatalf("decoded %d symbols from %d chirps", diag.Symbols, len(frame.Chirps))
	}
	got, err := s.pkt.Decode(syms)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
}

func TestDecodePacketEndToEnd(t *testing.T) {
	s := newSetup(t, 5, 10)
	payload := []byte{0x42, 0x00, 0xFF, 0x17}
	frame := s.frameFor(t, payload)
	x := s.fe.CaptureFrame(frame, 40)
	got, _, err := s.dec.DecodePacket(x, s.pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %v, want %v", got, payload)
	}
}

func TestDecodePacketSurvivesMidPacketWake(t *testing.T) {
	// The tag wakes up after a third of the header has passed.
	s := newSetup(t, 5, 11)
	payload := []byte("wake")
	frame := s.frameFor(t, payload)
	x := s.fe.Capture(frame, 40, 2.4*testPeriod, 0)
	got, _, err := s.dec.DecodePacket(x, s.pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
}

func TestDecodeRoundTripAcrossSymbolSizesProperty(t *testing.T) {
	// Capped at 5 bits/symbol: the paper's own Fig. 12 shows BER above 1e-3
	// beyond that, so occasional adjacent-symbol errors at 6+ bits are
	// physical, not bugs.
	f := func(seed int64, bitsSel, payloadSeed uint8) bool {
		bits := 2 + int(bitsSel)%4 // 2..5 bits per symbol
		s := newSetup(t, bits, seed)
		rng := rand.New(rand.NewSource(int64(payloadSeed)))
		payload := make([]byte, 1+rng.Intn(6))
		rng.Read(payload)
		frame := s.frameFor(t, payload)
		x := s.fe.CaptureFrame(frame, 45)
		got, _, err := s.dec.DecodePacket(x, s.pkt)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTMethodDecodesCleanChannel(t *testing.T) {
	s := newSetup(t, 4, 12)
	s.dec.Method = MethodFFT
	payload := []byte("fft path")
	frame := s.frameFor(t, payload)
	x := s.fe.CaptureFrame(frame, 50)
	got, _, err := s.dec.DecodePacket(x, s.pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q, want %q", got, payload)
	}
}

func TestLowSNRProducesErrors(t *testing.T) {
	// At strongly negative SNR, decoding must fail (preamble lost or CRC).
	s := newSetup(t, 5, 13)
	payload := []byte("noise floor")
	frame := s.frameFor(t, payload)
	x := s.fe.CaptureFrame(frame, -20)
	if got, _, err := s.dec.DecodePacket(x, s.pkt); err == nil && bytes.Equal(got, payload) {
		t.Fatal("decoding at -20 dB SNR should not succeed")
	}
}

func TestMethodString(t *testing.T) {
	if MethodGoertzel.String() != "goertzel" || MethodFFT.String() != "fft" ||
		Method(7).String() != "Method(7)" {
		t.Fatal("unexpected Method strings")
	}
}

func TestModulatorValidation(t *testing.T) {
	if _, err := NewModulator(SchemeOOK, 1e3, 0, 0, 4); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := NewModulator(SchemeOOK, 1e3, 0, testPeriod, 1); err == nil {
		t.Error("1 chirp per bit should fail")
	}
	if _, err := NewModulator(SchemeOOK, 5e3, 0, testPeriod, 8); err == nil {
		t.Error("F0 above chirp Nyquist should fail")
	}
	if _, err := NewModulator(SchemeFSK, 1e3, 1e3, testPeriod, 64); err == nil {
		t.Error("identical FSK tones should fail")
	}
	if _, err := NewModulator(SchemeFSK, 1e3, 2e3, testPeriod, 2); err == nil {
		t.Error("bit window shorter than one tone cycle should fail")
	}
	if _, err := NewModulator(SchemeFSK, 1e3, 2e3, testPeriod, 16); err != nil {
		t.Errorf("valid FSK modulator rejected: %v", err)
	}
}

func TestModulatorOOKStates(t *testing.T) {
	m, err := NewModulator(SchemeOOK, 1e3, 0, testPeriod, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 0-bit: statically reflective.
	states := m.States([]bool{false}, testPeriod, 8)
	for i, st := range states {
		if !st {
			t.Fatalf("0-bit chirp %d should be reflective", i)
		}
	}
	// 1-bit: toggling at F0 = 1 kHz (period 1 ms ≈ 8.3 chirps): both states
	// must appear within a bit of 8 chirps... use a faster tone.
	m2, _ := NewModulator(SchemeOOK, 4e3, 0, testPeriod, 8)
	states = m2.States([]bool{true}, testPeriod, 8)
	var on, off int
	for _, st := range states {
		if st {
			on++
		} else {
			off++
		}
	}
	if on == 0 || off == 0 {
		t.Fatalf("1-bit should toggle: on=%d off=%d", on, off)
	}
}

func TestModulatorFSKStatesFrequency(t *testing.T) {
	m, err := NewModulator(SchemeFSK, 1e3, 2e3, testPeriod, 32)
	if err != nil {
		t.Fatal(err)
	}
	countTransitions := func(states []bool) int {
		n := 0
		for i := 1; i < len(states); i++ {
			if states[i] != states[i-1] {
				n++
			}
		}
		return n
	}
	s0 := m.States([]bool{false}, testPeriod, 32)
	s1 := m.States([]bool{true}, testPeriod, 32)
	if countTransitions(s1) <= countTransitions(s0) {
		t.Fatalf("F1 bit should toggle faster: %d vs %d transitions",
			countTransitions(s1), countTransitions(s0))
	}
}

func TestModulatorRates(t *testing.T) {
	m, _ := NewModulator(SchemeFSK, 1e3, 2e3, testPeriod, 16)
	if got := m.BitWindows(100); got != 6 {
		t.Fatalf("BitWindows(100) = %d, want 6", got)
	}
	want := 1 / (16 * testPeriod)
	if got := m.UplinkBitRate(testPeriod); math.Abs(got-want) > 1e-9 {
		t.Fatalf("bit rate %v, want %v", got, want)
	}
}

func TestUplinkSchemeString(t *testing.T) {
	if SchemeOOK.String() != "ook" || SchemeFSK.String() != "fsk" ||
		UplinkScheme(5).String() != "UplinkScheme(5)" {
		t.Fatal("unexpected scheme strings")
	}
}

func TestPowerModelPaperNumbers(t *testing.T) {
	p := DefaultPowerModel()
	// §4.1: continuous mode ≈48 mW.
	if c := p.Continuous(); math.Abs(c-48e-3) > 1e-3 {
		t.Fatalf("continuous power %v W, want ≈48 mW", c)
	}
	// Custom IC projection ≈4 mW.
	if ic := p.CustomIC(); math.Abs(ic-4e-3) > 0.5e-3 {
		t.Fatalf("custom IC power %v W, want ≈4 mW", ic)
	}
	// Uplink-only mode is µW-scale (switch + PWM + sleeping MCU).
	seq, err := p.Sequential(0)
	if err != nil {
		t.Fatal(err)
	}
	if seq > 10e-6 {
		t.Fatalf("uplink-only power %v W, want < 10 µW", seq)
	}
	// Full-downlink sequential equals continuous.
	seq1, _ := p.Sequential(1)
	if math.Abs(seq1-p.Continuous()) > 1e-9 {
		t.Fatalf("sequential(1) = %v, want continuous %v", seq1, p.Continuous())
	}
	if _, err := p.Sequential(1.5); err == nil {
		t.Fatal("fraction > 1 should fail")
	}
	bd := p.Breakdown()
	var sum float64
	for _, v := range bd {
		sum += v
	}
	if math.Abs(sum-p.Continuous()) > 1e-12 {
		t.Fatal("breakdown should sum to continuous power")
	}
}

func TestSequentialMonotoneInDownlinkFraction(t *testing.T) {
	p := DefaultPowerModel()
	f := func(a, b uint8) bool {
		fa, fb := float64(a)/255, float64(b)/255
		pa, err1 := p.Sequential(fa)
		pb, err2 := p.Sequential(fb)
		if err1 != nil || err2 != nil {
			return false
		}
		if fa < fb {
			return pa <= pb
		}
		return pa >= pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTagAssembly(t *testing.T) {
	s := newSetup(t, 5, 20)
	mod, _ := NewModulator(SchemeOOK, 2e3, 0, testPeriod, 8)
	tg, err := New(Config{
		Pair:            s.pair, // alphabet was calibrated for this pair
		Alphabet:        s.alpha,
		CenterFrequency: testFc,
		Modulator:       mod,
		Seed:            21,
		ID:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tg.FrontEnd.SampleRate != 1e6 {
		t.Fatal("default sample rate should be 1 MHz")
	}
	payload := []byte("assembled")
	frame := s.frameFor(t, payload)
	got, _, err := tg.ReceiveDownlink(frame, 40, s.pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload %q", got)
	}
	states, err := tg.UplinkStates([]bool{true, false}, testPeriod, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 16 {
		t.Fatalf("states length %d", len(states))
	}
}

func TestTagConfigValidation(t *testing.T) {
	if _, err := New(Config{CenterFrequency: testFc}); err == nil {
		t.Error("missing alphabet should fail")
	}
	s := newSetup(t, 5, 22)
	if _, err := New(Config{Alphabet: s.alpha}); err == nil {
		t.Error("missing center frequency should fail")
	}
	tg, err := New(Config{Alphabet: s.alpha, CenterFrequency: testFc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tg.UplinkStates(nil, testPeriod, 4); err == nil {
		t.Error("uplink without modulator should fail")
	}
}
