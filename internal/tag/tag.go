package tag

import (
	"context"
	"fmt"

	"biscatter/internal/cssk"
	"biscatter/internal/delayline"
	"biscatter/internal/fmcw"
	"biscatter/internal/packet"
	"biscatter/internal/telemetry"
)

// Tag assembles the full BiScatter node of Fig. 2: the delay-line decoder
// front-end and decoding algorithm for downlink, the Van Atta RF-switch
// modulator for uplink, and the power model.
type Tag struct {
	// FrontEnd is the analog decoder chain.
	FrontEnd *FrontEnd
	// Decoder is the digital decoding pipeline.
	Decoder *Decoder
	// Modulator drives the uplink RF switch.
	Modulator *Modulator
	// Power is the power model.
	Power PowerModel
	// ID distinguishes tags in multi-tag deployments; it selects the tag's
	// uplink modulation frequency and is matched by downlink addressing.
	ID uint8
}

// Config assembles a Tag.
type Config struct {
	// Pair is the physical delay-line pair; defaults to the PCB meander
	// pair when zero.
	Pair delayline.Pair
	// Alphabet is the agreed CSSK constellation (required).
	Alphabet *cssk.Alphabet
	// SampleRate is the ADC rate; defaults to 1 MHz.
	SampleRate float64
	// CenterFrequency is the chirp center frequency; required.
	CenterFrequency float64
	// Modulator configures the uplink; required for uplink operation.
	Modulator *Modulator
	// Seed seeds the tag's noise processes.
	Seed int64
	// ID is the tag identifier.
	ID uint8
	// Method selects the decoding estimator (Goertzel by default).
	Method Method
}

// New builds a Tag.
func New(cfg Config) (*Tag, error) {
	if cfg.Alphabet == nil {
		return nil, fmt.Errorf("tag: alphabet is required")
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 1e6
	}
	if cfg.Pair == (delayline.Pair{}) {
		cfg.Pair = delayline.NewMeanderPair()
	}
	fe, err := NewFrontEnd(cfg.Pair, cfg.SampleRate, cfg.CenterFrequency, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dec, err := NewDecoder(cfg.Alphabet, cfg.SampleRate)
	if err != nil {
		return nil, err
	}
	dec.Method = cfg.Method
	return &Tag{
		FrontEnd:  fe,
		Decoder:   dec,
		Modulator: cfg.Modulator,
		Power:     DefaultPowerModel(),
		ID:        cfg.ID,
	}, nil
}

// ReceiveDownlink captures a downlink frame at the given SNR and decodes it
// to a payload.
func (t *Tag) ReceiveDownlink(frame *fmcw.Frame, snrDB float64, pktCfg packet.Config) ([]byte, Diagnostics, error) {
	return t.ReceiveDownlinkContext(context.Background(), frame, snrDB, pktCfg)
}

// ReceiveDownlinkContext is ReceiveDownlink with exchange tracing: when ctx
// carries an active trace span, the analog capture and the digital decode
// each record a child span. With tracing disabled (the common case) the
// span lookups are allocation-free no-ops.
func (t *Tag) ReceiveDownlinkContext(ctx context.Context, frame *fmcw.Frame, snrDB float64, pktCfg packet.Config) ([]byte, Diagnostics, error) {
	parent := telemetry.SpanFromContext(ctx)
	csp := parent.Child("tag.capture", -1)
	x := t.FrontEnd.CaptureFrame(frame, snrDB)
	csp.End()
	dsp := parent.Child("tag.decode", -1)
	pl, diag, err := t.Decoder.DecodePacket(x, pktCfg)
	dsp.Fail(err)
	dsp.End()
	return pl, diag, err
}

// UplinkStates returns the per-chirp reflect/absorb switch states carrying
// the given uplink bits across n chirps.
func (t *Tag) UplinkStates(bits []bool, period float64, n int) ([]bool, error) {
	return t.UplinkStatesInto(nil, bits, period, n)
}

// UplinkStatesInto is UplinkStates writing into dst (grown as needed and
// returned), so per-exchange scene building can reuse one state buffer per
// node.
func (t *Tag) UplinkStatesInto(dst []bool, bits []bool, period float64, n int) ([]bool, error) {
	if t.Modulator == nil {
		return nil, fmt.Errorf("tag: no modulator configured")
	}
	return t.Modulator.StatesInto(dst, bits, period, n), nil
}
