// Package tag implements the BiScatter backscatter node (§3.2): the
// differential delay-line decoder front-end that turns received FMCW chirps
// into kHz-rate envelope samples, the low-power decoding algorithm (chirp
// period estimation, window alignment, Goertzel/FFT symbol decisions, sync
// search), the Van Atta uplink modulator, and the tag power model (§4.1).
package tag

import (
	"fmt"
	"math"

	"biscatter/internal/channel"
	"biscatter/internal/delayline"
	"biscatter/internal/dsp"
	"biscatter/internal/fault"
	"biscatter/internal/fmcw"
)

// FrontEnd models the analog chain of Fig. 4: antenna → splitter → two delay
// lines → combiner → envelope detector → kHz ADC. Given a frame of chirps and
// a link SNR it synthesizes the ADC sample stream the MCU would see.
//
// The synthesis uses the closed form of §3.2.1 (Eq. 9): during a chirp of
// slope α the detector output is a tone at Δf = α·ΔT (ΔT evaluated on the
// physical delay-line pair, including dispersion); between chirps the radar
// is silent and only noise remains. This is exact for an ideal square-law
// detector and is validated against full waveform synthesis in the tests.
type FrontEnd struct {
	// Pair is the physical delay-line pair.
	Pair delayline.Pair
	// SampleRate is the ADC rate in Hz. It must exceed twice the largest
	// constellation beat; 1 MHz matches the paper's MCU clock.
	SampleRate float64
	// CenterFrequency is the chirp center frequency at which ΔT is
	// evaluated.
	CenterFrequency float64
	// Amplitude is the detector output amplitude for a unit-SNR reference;
	// the absolute value is arbitrary since decisions are ratio-based.
	Amplitude float64
	// SlopeJitter is the fractional per-chirp beat-frequency jitter from
	// the radar's chirp-generator clock (§5.3 attributes the 24 GHz
	// platform's slight edge to its higher-quality clock). Zero disables.
	SlopeJitter float64
	// Faults injects deterministic impairments (interference, dropouts,
	// oscillator drift, desync, ADC saturation) into the capture; nil — the
	// default — leaves the synthesis byte-identical to a fault-free chain.
	Faults *fault.TagInjector

	noise *channel.Noise
	// buf is the reusable ADC sample buffer; see the ownership note on
	// Capture.
	buf []float64
}

// NewFrontEnd builds a front-end with the given delay-line pair and noise
// seed.
func NewFrontEnd(pair delayline.Pair, sampleRate, centerFrequency float64, seed int64) (*FrontEnd, error) {
	if err := pair.Validate(); err != nil {
		return nil, err
	}
	if sampleRate <= 0 {
		return nil, fmt.Errorf("tag: sample rate %v Hz must be positive", sampleRate)
	}
	if centerFrequency <= 0 {
		return nil, fmt.Errorf("tag: center frequency %v Hz must be positive", centerFrequency)
	}
	return &FrontEnd{
		Pair:            pair,
		SampleRate:      sampleRate,
		CenterFrequency: centerFrequency,
		Amplitude:       1,
		noise:           channel.NewNoise(seed),
	}, nil
}

// Capture synthesizes the ADC stream for a frame received at the given
// downlink SNR (dB). startOffset shifts the capture start into the frame
// (seconds), emulating a tag that wakes mid-packet; extraTail appends that
// many seconds of noise-only samples after the frame.
//
// Ownership: the returned samples live in a front-end-owned buffer that is
// reused by the next Capture call on the same FrontEnd; callers that keep a
// capture across frames must copy it.
func (fe *FrontEnd) Capture(frame *fmcw.Frame, snrDB, startOffset, extraTail float64) []float64 {
	if startOffset < 0 {
		startOffset = 0
	}
	startOffset += fe.Faults.StartJitter(frame.Period)
	total := frame.Duration() - startOffset + extraTail
	if total < 0 {
		total = 0
	}
	n := int(total * fe.SampleRate)
	out := dsp.Resize(fe.buf, n)
	clear(out)
	fe.buf = out
	sigma := channel.SigmaForSNR(fe.Amplitude, snrDB)

	for _, c := range frame.Chirps {
		beat := fe.Pair.ExpectedBeat(c.Params.Slope(), fe.CenterFrequency)
		if fe.SlopeJitter > 0 {
			beat *= 1 + fe.SlopeJitter*fe.noise.Rand().NormFloat64()
		}
		chirpStart := float64(c.Index)*frame.Period - startOffset
		chirpEnd := chirpStart + c.Params.Duration
		if chirpEnd <= 0 {
			continue
		}
		// The phase draw happens before any fault decision so the front-end
		// noise stream stays identical whether impairments fire or not: an
		// intensity sweep varies only the injected fault, never the noise.
		phase := fe.noise.Rand().Float64() * 2 * math.Pi
		i0 := int(math.Ceil(math.Max(chirpStart, 0) * fe.SampleRate))
		i1 := int(chirpEnd * fe.SampleRate)
		if i1 > n {
			i1 = n
		}
		if dropped, clip := fe.Faults.DropState(c.Index); dropped {
			// TX dropout: only a leading fraction (possibly none) of the
			// chirp reaches the tag.
			i1 = i0 + int(clip*float64(i1-i0))
		} else {
			beat *= fe.Faults.BeatScale(c.Index, math.Max(chirpStart, 0))
		}
		for i := i0; i < i1; i++ {
			t := float64(i)/fe.SampleRate - chirpStart
			out[i] = fe.Amplitude * math.Cos(2*math.Pi*beat*t+phase)
		}
		fe.Faults.Jam(out, c.Index, chirpStart, frame.Period, fe.SampleRate, fe.Amplitude)
	}
	fe.noise.AddReal(out, sigma)
	fe.Faults.PostADC(out, fe.Amplitude)
	return out
}

// CaptureFrame is Capture with no offset or tail.
func (fe *FrontEnd) CaptureFrame(frame *fmcw.Frame, snrDB float64) []float64 {
	return fe.Capture(frame, snrDB, 0, 0)
}
