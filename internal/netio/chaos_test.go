package netio_test

// Chaos conformance: the ISSUE's acceptance centerpiece. A loopback
// radar↔N-tag run under seeded drop/duplicate/reorder/corrupt faults must
// produce exchange outcomes byte-identical to the in-process oracle — pinned
// by replaying the captured trace.ExchangeRecord — and a tag killed mid-run
// must be quarantined and evicted while the rest of the fleet completes,
// with the restarted tag resuming at the gateway's current round.

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"biscatter/internal/core"
	"biscatter/internal/netio"
	"biscatter/internal/telemetry"
	"biscatter/internal/trace"
)

// chaosConfig builds an n-node network (n ≤ 4) whose uplink tones all sit
// below the 4-node slow-time band limit, sized for speed (ChirpsPerBit 16,
// one worker — the 1-core CI host runs the whole suite under -race).
func chaosConfig(n int) core.Config {
	tones := [][2]float64{{1000, 1400}, {1800, 2200}, {2600, 3000}, {3400, 3800}}
	ranges := []float64{1.5, 3.0, 4.2, 5.1}
	nodes := make([]core.NodeConfig, n)
	for i := range nodes {
		nodes[i] = core.NodeConfig{
			ID:           uint8(i + 1),
			Range:        ranges[i],
			ModulationF0: tones[i][0],
			ModulationF1: tones[i][1],
		}
	}
	return core.Config{Nodes: nodes, Seed: 424, ChirpsPerBit: 16}
}

// tagBits is the deterministic per-(tag, round) uplink pattern every test
// and the replay both derive from.
func tagBits(tag uint8, round uint64) []bool {
	bits := make([]bool, 4)
	for k := range bits {
		bits[k] = (uint64(tag)*31+round*7+uint64(k)*13)%3 == 0
	}
	return bits
}

// wireOutcome converts a recorded trace.NodeOutcome into its wire digest so
// client-observed outcomes can be compared byte-for-byte with the record.
func wireOutcome(o trace.NodeOutcome) netio.Outcome {
	return netio.Outcome{
		DownlinkPayload: append([]byte(nil), o.DownlinkPayload...),
		DownlinkErr:     o.DownlinkErr,
		DetectionRange:  o.DetectionRange,
		DetectionBin:    int32(o.DetectionBin),
		DetectionSNRdB:  o.DetectionSNRdB,
		DetectionErr:    o.DetectionErr,
		UplinkBits:      append([]bool(nil), o.UplinkBits...),
		UplinkErr:       o.UplinkErr,
	}
}

// chaosProfile is the acceptance fault duty: ≤ 0.1 drop plus reordering,
// duplication and corruption, seeded per endpoint so the run replays.
func chaosProfile(seed int64) *netio.NetFaultProfile {
	return &netio.NetFaultProfile{
		Seed:      seed,
		Drop:      0.10,
		Reorder:   0.05,
		Duplicate: 0.03,
		Corrupt:   0.02,
	}
}

func chaosDial(t *testing.T, m *telemetry.Metrics, gwAddr string, tag uint8, faultSeed int64) (*netio.Client, *netio.Node) {
	t.Helper()
	conn, err := netio.Listen("127.0.0.1:0",
		netio.WithMetrics(m), netio.WithNetFaults(chaosProfile(faultSeed)))
	if err != nil {
		t.Fatal(err)
	}
	c, err := netio.Dial(conn, gwAddr, netio.ClientConfig{
		TagID:          tag,
		Seed:           int64(tag),
		AttemptTimeout: 300 * time.Millisecond,
		MaxAttempts:    30,
		DialAttempts:   30,
		Metrics:        m,
	})
	if err != nil {
		conn.Close()
		t.Fatalf("dial tag %d: %v", tag, err)
	}
	return c, conn
}

// replayBothWays pins the record against the oracle at the recorded worker
// count and again at 4 workers (stats must be worker-invariant), after a
// save/load round trip through the trace file format.
func replayBothWays(t *testing.T, dir string, rec *trace.ExchangeRecord) {
	t.Helper()
	path := filepath.Join(dir, "chaos.bsctrace")
	if err := trace.SaveExchange(path, rec); err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.LoadExchange(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		var opts []core.Option
		if workers > 0 {
			opts = append(opts, core.WithWorkers(workers))
		}
		rep, err := core.ReplayRecord(loaded, opts...)
		if err != nil {
			t.Fatalf("replay (workers=%d): %v", workers, err)
		}
		if !rep.OK() {
			t.Fatalf("replay (workers=%d) diverged: %v", workers, rep.Mismatches)
		}
	}
}

// TestChaosConformance runs a loopback gateway against 4 tags with faults
// injected on every endpoint and requires the distributed run to be
// byte-identical to the in-process oracle.
func TestChaosConformance(t *testing.T) {
	const rounds = 5
	cfg := chaosConfig(4)
	net, err := core.NewNetwork(cfg, core.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.NewExchangeRecorder(net)
	if err != nil {
		t.Fatal(err)
	}
	payload := func(round uint64) []byte { return core.RandomPayload(int64(round)+99, 2) }
	fn, err := core.NewGatewayHandler(rec, payload)
	if err != nil {
		t.Fatal(err)
	}

	m := telemetry.New()
	fl := telemetry.NewFlightRecorder(32)
	gwConn, err := netio.Listen("127.0.0.1:0",
		netio.WithMetrics(m), netio.WithNetFaults(chaosProfile(7)))
	if err != nil {
		t.Fatal(err)
	}
	defer gwConn.Close()

	gw := netio.NewGateway(gwConn, netio.GatewayConfig{
		MinSessions:       4,
		Rounds:            rounds,
		HeartbeatInterval: 100 * time.Millisecond,
		SessionTimeout:    10 * time.Second,
		RoundTimeout:      2 * time.Second,
		Poll:              5 * time.Millisecond,
		Metrics:           m,
		Flight:            fl,
	}, fn)

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	gwDone := make(chan error, 1)
	go func() { gwDone <- gw.Run(ctx) }()

	results := make([][]*netio.RoundResult, 4)
	errs := make([]error, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tag := uint8(i + 1)
			c, conn := chaosDial(t, m, gwConn.Addr().String(), tag, 100+int64(i))
			defer conn.Close()
			defer c.Close()
			for r := uint64(0); r < rounds; r++ {
				res, err := c.SubmitRound(ctx, tagBits(tag, r))
				if err != nil {
					errs[i] = fmt.Errorf("tag %d round %d: %w", tag, r, err)
					return
				}
				results[i] = append(results[i], res)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	select {
	case err := <-gwDone:
		if err != nil {
			t.Fatalf("gateway: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("gateway did not finish after all tags closed")
	}

	record := rec.Record()
	if len(record.Rounds) != rounds {
		t.Fatalf("recorded %d rounds, want %d", len(record.Rounds), rounds)
	}
	// Every client outcome must match the record byte-for-byte: the
	// distributed run and the in-process oracle computed the same physics.
	for i, rs := range results {
		if len(rs) != rounds {
			t.Fatalf("tag %d completed %d rounds, want %d", i+1, len(rs), rounds)
		}
		for _, res := range rs {
			if res.Status != netio.RoundOK {
				t.Fatalf("tag %d round %d status %s, want ok", i+1, res.Round, res.Status)
			}
			rr := record.Rounds[res.Round]
			if rr.Input.Active != nil {
				t.Fatalf("round %d ran with a partial fleet %v", res.Round, rr.Input.Active)
			}
			want := wireOutcome(rr.Outcomes[i])
			if !res.Outcome.Equal(want) {
				t.Fatalf("tag %d round %d outcome diverged from record:\n got %+v\nwant %+v",
					i+1, res.Round, res.Outcome, want)
			}
		}
	}
	replayBothWays(t, t.TempDir(), record)

	if got := m.Counter("netio.rounds").Value(); got != rounds {
		t.Fatalf("netio.rounds = %d, want %d", got, rounds)
	}
	if m.Counter("netio.fault.dropped").Value() == 0 {
		t.Fatal("fault injector dropped nothing — the chaos run was not chaotic")
	}
	if got := m.Counter("netio.sessions.accepted").Value(); got != 4 {
		t.Fatalf("netio.sessions.accepted = %d, want 4", got)
	}
}

// TestChaosKillRestartResume kills one tag mid-run: the gateway must open
// its breaker (the fleet keeps exchanging without it), evict the silent
// session, and hand the restarted tag a session that resumes at the current
// round — with every transition observable in telemetry and the flight
// recorder, and the full record still replaying clean.
func TestChaosKillRestartResume(t *testing.T) {
	const rounds = 5
	cfg := chaosConfig(3)
	net, err := core.NewNetwork(cfg, core.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.NewExchangeRecorder(net)
	if err != nil {
		t.Fatal(err)
	}
	fn, err := core.NewGatewayHandler(rec, func(round uint64) []byte {
		return core.RandomPayload(int64(round)+7, 2)
	})
	if err != nil {
		t.Fatal(err)
	}

	m := telemetry.New()
	fl := telemetry.NewFlightRecorder(32)
	gwConn, err := netio.Listen("127.0.0.1:0", netio.WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	defer gwConn.Close()

	gw := netio.NewGateway(gwConn, netio.GatewayConfig{
		MinSessions:       3,
		Rounds:            rounds,
		HeartbeatInterval: 100 * time.Millisecond,
		SessionTimeout:    1500 * time.Millisecond,
		RoundTimeout:      500 * time.Millisecond,
		BreakerThreshold:  1,
		Poll:              5 * time.Millisecond,
		Linger:            20 * time.Second,
		Metrics:           m,
		Flight:            fl,
	}, fn)

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	gwDone := make(chan error, 1)
	go func() { gwDone <- gw.Run(ctx) }()

	addr := gwConn.Addr().String()
	c1, conn1 := chaosDial(t, m, addr, 1, 201)
	defer conn1.Close()
	c2, conn2 := chaosDial(t, m, addr, 2, 202)
	defer conn2.Close()
	c3, conn3 := chaosDial(t, m, addr, 3, 203)

	// submitAll drives one round concurrently across the live clients — the
	// gateway's barrier needs the submissions in flight together.
	submitAll := func(round uint64, clients map[uint8]*netio.Client) map[uint8]*netio.RoundResult {
		t.Helper()
		var mu sync.Mutex
		out := make(map[uint8]*netio.RoundResult, len(clients))
		var wg sync.WaitGroup
		for tag, c := range clients {
			wg.Add(1)
			go func(tag uint8, c *netio.Client) {
				defer wg.Done()
				res, err := c.SubmitRound(ctx, tagBits(tag, round))
				if err != nil {
					t.Errorf("tag %d round %d: %v", tag, round, err)
					return
				}
				mu.Lock()
				out[tag] = res
				mu.Unlock()
			}(tag, c)
		}
		wg.Wait()
		return out
	}
	requireOK := func(res map[uint8]*netio.RoundResult, round uint64, tags ...uint8) {
		t.Helper()
		for _, tag := range tags {
			r := res[tag]
			if r == nil || r.Status != netio.RoundOK {
				t.Fatalf("tag %d round %d: %+v, want ok", tag, round, r)
			}
		}
	}

	// Round 0: the full fleet.
	requireOK(submitAll(0, map[uint8]*netio.Client{1: c1, 2: c2, 3: c3}), 0, 1, 2, 3)

	// Kill tag 3 without a Goodbye: the socket just goes dark.
	conn3.Close()
	_ = c3

	// Rounds 1-2 run with the survivors. Round 1 waits out the round
	// timeout for tag 3 and strikes it (breaker opens); round 2 must run
	// promptly — the barrier no longer waits for a quarantined session.
	live := map[uint8]*netio.Client{1: c1, 2: c2}
	requireOK(submitAll(1, live), 1, 1, 2)
	requireOK(submitAll(2, live), 2, 1, 2)
	if got := m.Counter("netio.breaker.open").Value(); got != 1 {
		t.Fatalf("netio.breaker.open = %d, want 1", got)
	}

	// Wait for the liveness deadline to evict tag 3's session, keeping the
	// survivors' sessions warm with idle heartbeats meanwhile.
	evictDeadline := time.Now().Add(15 * time.Second)
	for m.Counter("netio.evicted").Value() == 0 {
		if time.Now().After(evictDeadline) {
			t.Fatal("silent session was never evicted")
		}
		for _, c := range []*netio.Client{c1, c2} {
			if err := c.Wait(ctx, 50*time.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
	}
	if fl.Trips() < 2 {
		t.Fatalf("flight recorder saw %d trips, want ≥ 2 (breaker open + eviction)", fl.Trips())
	}

	// Restart tag 3: a fresh socket, the same identity. The handshake must
	// resume at the gateway's current round.
	c3b, conn3b := chaosDial(t, m, addr, 3, 204)
	defer conn3b.Close()
	defer c3b.Close()
	if got := c3b.Round(); got != 3 {
		t.Fatalf("restarted tag resumed at round %d, want 3", got)
	}

	// Rounds 3-4: the full fleet again.
	all := map[uint8]*netio.Client{1: c1, 2: c2, 3: c3b}
	requireOK(submitAll(3, all), 3, 1, 2, 3)
	requireOK(submitAll(4, all), 4, 1, 2, 3)

	c1.Close()
	conn1.Close()
	c2.Close()
	conn2.Close()
	c3b.Close()
	conn3b.Close()

	select {
	case err := <-gwDone:
		if err != nil {
			t.Fatalf("gateway: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("gateway did not finish")
	}

	record := rec.Record()
	if len(record.Rounds) != rounds {
		t.Fatalf("recorded %d rounds, want %d", len(record.Rounds), rounds)
	}
	// Rounds 1-2 must have run as a strict subset (nodes 0 and 1); the
	// bracketing rounds with the full fleet.
	for _, r := range []int{1, 2} {
		active := record.Rounds[r].Input.Active
		if len(active) != 2 || active[0] != 0 || active[1] != 1 {
			t.Fatalf("round %d active set %v, want [0 1]", r, active)
		}
	}
	for _, r := range []int{0, 3, 4} {
		if record.Rounds[r].Input.Active != nil {
			t.Fatalf("round %d active set %v, want full fleet", r, record.Rounds[r].Input.Active)
		}
	}
	replayBothWays(t, t.TempDir(), record)

	if got := m.Counter("netio.evicted").Value(); got != 1 {
		t.Fatalf("netio.evicted = %d, want 1", got)
	}
	if got := m.Counter("netio.sessions.accepted").Value(); got != 4 {
		t.Fatalf("netio.sessions.accepted = %d, want 4 (3 initial + 1 restart)", got)
	}
}
