package netio

import (
	"flag"
	"time"
)

// ServiceFlags are the distributed-mode flags shared verbatim by
// biscatter-radar, biscatter-tag and biscatter-sim. Keeping them in one
// registration helper (instead of per-binary flag.Duration calls) is what
// the flag-parity test pins: every binary must expose the same names with
// the same defaults and usage strings.
type ServiceFlags struct {
	// Listen is the gateway bind address (radar side).
	Listen string
	// Connect is the gateway address to dial (tag side).
	Connect string
	// Heartbeat is the session heartbeat interval.
	Heartbeat time.Duration
	// SessionTimeout is the liveness deadline before eviction.
	SessionTimeout time.Duration
	// Transport selects the session transport: TransportUDP or TransportTCP.
	Transport string
	// Admission names the gateway's session-overflow policy; parse it with
	// ParseAdmissionPolicy.
	Admission string
	// FrameCapacity bounds concurrent tags per TDMA frame group (0 = the
	// deployment's tone-table capacity; mac.ScheduleFor gives the analytic
	// bound when tones are auto-assigned).
	FrameCapacity int
	// FrameTimeout is the per-frame-group round barrier timeout (0 = the
	// gateway's RoundTimeout).
	FrameTimeout time.Duration
}

// RegisterServiceFlags registers the shared distributed-mode flags on fs.
func RegisterServiceFlags(fs *flag.FlagSet) *ServiceFlags {
	sf := &ServiceFlags{}
	fs.StringVar(&sf.Listen, "listen", "", "gateway bind address, e.g. 127.0.0.1:9100 (serve mode)")
	fs.StringVar(&sf.Connect, "connect", "", "gateway address to dial, e.g. 127.0.0.1:9100 (client mode)")
	fs.DurationVar(&sf.Heartbeat, "heartbeat", DefaultHeartbeatInterval, "session heartbeat interval")
	fs.DurationVar(&sf.SessionTimeout, "session-timeout", DefaultSessionTimeout, "evict a session silent for this long")
	fs.StringVar(&sf.Transport, "transport", TransportUDP, "session transport: udp (datagrams) or tcp (length-prefixed stream)")
	fs.StringVar(&sf.Admission, "admission", "reject", "gateway session-overflow policy: reject, queue or spill")
	fs.IntVar(&sf.FrameCapacity, "frame-capacity", 0, "tags per TDMA frame group (0 = tone-table capacity)")
	fs.DurationVar(&sf.FrameTimeout, "frame-timeout", 0, "per-frame-group round barrier timeout (0 = round timeout)")
	return sf
}

// RegisterNetFaultFlags registers the deterministic network-fault-injection
// flags on fs, shared (like ServiceFlags) by every binary that opens a
// netio socket. The returned profile is all-zero by default — passing it to
// WithNetFaults then injects nothing.
func RegisterNetFaultFlags(fs *flag.FlagSet) *NetFaultProfile {
	p := &NetFaultProfile{}
	fs.Int64Var(&p.Seed, "net-seed", 1, "network fault injection seed")
	fs.Float64Var(&p.Drop, "net-drop", 0, "probability a datagram is dropped")
	fs.Float64Var(&p.Duplicate, "net-duplicate", 0, "probability a datagram is duplicated")
	fs.Float64Var(&p.Reorder, "net-reorder", 0, "probability a datagram is reordered past its successor")
	fs.Float64Var(&p.Corrupt, "net-corrupt", 0, "probability one bit of a datagram is flipped")
	fs.Float64Var(&p.Delay, "net-delay", 0, "probability a datagram is delayed")
	fs.DurationVar(&p.MaxDelay, "net-max-delay", 0, "upper bound for injected delay (default 20ms)")
	return p
}
