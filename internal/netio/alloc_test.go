package netio

import (
	"testing"
	"time"
)

// TestRecvSteadyStateAllocs bounds the datagram receive path: one Send plus
// one Recv of a session message must stay within a small constant number of
// allocations (deadline bookkeeping, header decode, the message struct and
// its payload fields). The pin is deliberately generous — it exists to catch
// a per-datagram regression (e.g. an accidental buffer reallocation in the
// hot loop), not to freeze the exact count.
func TestRecvSteadyStateAllocs(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	msg := &Heartbeat{SessionID: 7, Seq: 1}
	send := func() {
		if err := a.Send(b.Addr(), msg); err != nil {
			t.Fatal(err)
		}
		if _, _, err := b.Recv(2 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	send() // warm up both sockets

	allocs := testing.AllocsPerRun(50, send)
	const budget = 32
	if allocs > budget {
		t.Fatalf("send+recv allocates %.1f per datagram, budget %d", allocs, budget)
	}
}
