package netio

import (
	"fmt"
	"net"
	"time"
)

// Node is a UDP endpoint speaking the netio protocol, one datagram per
// message.
type Node struct {
	conn *net.UDPConn
	buf  []byte
}

// Listen opens a UDP endpoint on addr (e.g. "127.0.0.1:0").
func Listen(addr string) (*Node, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("netio: listen %q: %w", addr, err)
	}
	return &Node{conn: conn, buf: make([]byte, 65536)}, nil
}

// Addr returns the node's bound address.
func (n *Node) Addr() *net.UDPAddr {
	return n.conn.LocalAddr().(*net.UDPAddr)
}

// Close releases the socket.
func (n *Node) Close() error { return n.conn.Close() }

// Send marshals and transmits one message to addr.
func (n *Node) Send(addr *net.UDPAddr, m Message) error {
	buf, err := Marshal(m)
	if err != nil {
		return err
	}
	if _, err := n.conn.WriteToUDP(buf, addr); err != nil {
		return fmt.Errorf("netio: send %v: %w", m.Type(), err)
	}
	return nil
}

// Recv blocks for up to timeout (0 = forever) and returns the next valid
// message and its sender. Malformed datagrams are returned as errors, not
// silently dropped, so callers can count them.
func (n *Node) Recv(timeout time.Duration) (Message, *net.UDPAddr, error) {
	if timeout > 0 {
		if err := n.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, nil, err
		}
		defer n.conn.SetReadDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	nr, from, err := n.conn.ReadFromUDP(n.buf)
	if err != nil {
		return nil, nil, err
	}
	m, err := Unmarshal(n.buf[:nr])
	if err != nil {
		return nil, from, err
	}
	return m, from, nil
}
