package netio

import (
	"errors"
	"fmt"
	"net"
	"syscall"
	"time"

	"biscatter/internal/telemetry"
)

// Transport errors. Recv distinguishes deadline expiry from socket closure
// with sentinels so supervision loops can poll with a timeout (ErrTimeout is
// routine) while treating a closed socket (ErrClosed) as shutdown. Both are
// matched with errors.Is.
var (
	// ErrTimeout means Recv's deadline expired before a datagram arrived.
	ErrTimeout = errors.New("netio: receive timeout")
	// ErrClosed means the underlying socket is closed.
	ErrClosed = errors.New("netio: connection closed")
	// ErrAddrInUse means the listen address is already bound by another
	// process. Matched with errors.Is so a server can return a clean
	// "another gateway is running" diagnosis instead of an opaque bind
	// error.
	ErrAddrInUse = errors.New("netio: listen address already in use")
)

// Transport kinds selectable by ListenTransport (and the -transport flag).
const (
	// TransportUDP is one datagram per message (the default).
	TransportUDP = "udp"
	// TransportTCP is length-prefixed frames over TCP streams.
	TransportTCP = "tcp"
)

// Conn is the message-level endpoint the session layer (Gateway, Client)
// runs over: one datagram per framed Message. *Node is the UDP
// implementation; tests may substitute their own.
type Conn interface {
	// Send marshals and transmits one message to addr.
	Send(addr *net.UDPAddr, m Message) error
	// Recv blocks for up to timeout (0 = forever) for the next datagram.
	// Malformed datagrams are returned as errors (with the sender when
	// known), never silently dropped.
	Recv(timeout time.Duration) (Message, *net.UDPAddr, error)
	// Addr returns the endpoint's bound address.
	Addr() *net.UDPAddr
	// Close releases the socket.
	Close() error
}

// Transport is the raw-datagram boundary underneath a Node — exactly the
// surface a deterministic network-fault injector wraps (drop, duplicate,
// reorder, corrupt, delay happen to datagrams, not to parsed messages).
// *net.UDPConn satisfies it via udpTransport.
type Transport interface {
	WriteTo(b []byte, addr *net.UDPAddr) (int, error)
	ReadFrom(b []byte) (int, *net.UDPAddr, error)
	SetReadDeadline(t time.Time) error
	LocalAddr() net.Addr
	Close() error
}

// udpTransport adapts *net.UDPConn to Transport.
type udpTransport struct{ c *net.UDPConn }

func (u udpTransport) WriteTo(b []byte, addr *net.UDPAddr) (int, error) {
	return u.c.WriteToUDP(b, addr)
}
func (u udpTransport) ReadFrom(b []byte) (int, *net.UDPAddr, error) { return u.c.ReadFromUDP(b) }
func (u udpTransport) SetReadDeadline(t time.Time) error            { return u.c.SetReadDeadline(t) }
func (u udpTransport) LocalAddr() net.Addr                          { return u.c.LocalAddr() }
func (u udpTransport) Close() error                                 { return u.c.Close() }

// Node is a UDP endpoint speaking the netio protocol, one datagram per
// message. A Node is single-threaded: Recv reuses one receive buffer, so
// only one goroutine may call Recv at a time (Send is safe concurrently
// with Recv — UDP writes do not touch the receive path).
type Node struct {
	tr        Transport
	buf       []byte
	faults    *NetFaultProfile
	metrics   *telemetry.Metrics
	malformed *telemetry.Counter // netio.recv.malformed
}

// Option customizes a Node at Listen time.
type Option func(*Node)

// WithMetrics attaches a telemetry registry: malformed-datagram rejects
// count into netio.recv.malformed, and the fault injector (when enabled)
// publishes netio.fault.* counters.
func WithMetrics(m *telemetry.Metrics) Option {
	return func(n *Node) { n.metrics = m }
}

// WithNetFaults wraps the node's transport with the deterministic
// network-fault injector (see NetFaultProfile). A nil profile is a no-op.
func WithNetFaults(p *NetFaultProfile) Option {
	return func(n *Node) { n.faults = p }
}

// Listen opens a UDP endpoint on addr (e.g. "127.0.0.1:0").
func Listen(addr string, opts ...Option) (*Node, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, wrapListenErr(addr, err)
	}
	return newNode(udpTransport{conn}, opts...), nil
}

// ListenTransport opens an endpoint of the named transport kind on addr:
// TransportUDP ("" defaults to it) for one datagram per message,
// TransportTCP for length-prefixed frames over streams. Both return the
// same *Node surface, so everything above the Transport seam — fault
// injection, session supervision, the chaos suite — runs unchanged on
// either.
func ListenTransport(kind, addr string, opts ...Option) (*Node, error) {
	switch kind {
	case "", TransportUDP:
		return Listen(addr, opts...)
	case TransportTCP:
		tr, err := listenStream(addr)
		if err != nil {
			return nil, err
		}
		return newNode(tr, opts...), nil
	default:
		return nil, fmt.Errorf("netio: unknown transport %q (want %s or %s)", kind, TransportUDP, TransportTCP)
	}
}

// newNode assembles a Node over a raw transport, applying options and
// wrapping the fault injector innermost of the options.
func newNode(tr Transport, opts ...Option) *Node {
	n := &Node{tr: tr, buf: make([]byte, 65536)}
	for _, opt := range opts {
		opt(n)
	}
	if n.metrics != nil {
		n.malformed = n.metrics.Counter("netio.recv.malformed")
	}
	if n.faults != nil {
		n.tr = newFaultTransport(n.tr, *n.faults, n.metrics)
	}
	return n
}

// wrapListenErr tags an address-in-use bind failure with the ErrAddrInUse
// sentinel while keeping the original error text.
func wrapListenErr(addr string, err error) error {
	if errors.Is(err, syscall.EADDRINUSE) {
		return fmt.Errorf("netio: listen %q: %w: %v", addr, ErrAddrInUse, err)
	}
	return fmt.Errorf("netio: listen %q: %w", addr, err)
}

// Addr returns the node's bound address.
func (n *Node) Addr() *net.UDPAddr {
	return n.tr.LocalAddr().(*net.UDPAddr)
}

// Close releases the socket.
func (n *Node) Close() error { return n.tr.Close() }

// Send marshals and transmits one message to addr.
func (n *Node) Send(addr *net.UDPAddr, m Message) error {
	buf, err := Marshal(m)
	if err != nil {
		return err
	}
	if _, err := n.tr.WriteTo(buf, addr); err != nil {
		return fmt.Errorf("netio: send %v: %w", m.Type(), err)
	}
	return nil
}

// Recv blocks for up to timeout (0 = forever) and returns the next valid
// message and its sender. Deadline expiry surfaces as ErrTimeout and socket
// closure as ErrClosed (both via errors.Is); malformed datagrams are
// returned as errors with the sender attached — and counted into the
// netio.recv.malformed telemetry counter — not silently dropped.
func (n *Node) Recv(timeout time.Duration) (Message, *net.UDPAddr, error) {
	if timeout > 0 {
		if err := n.tr.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, nil, err
		}
		defer n.tr.SetReadDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	nr, from, err := n.tr.ReadFrom(n.buf)
	if err != nil {
		return nil, nil, classifyRecvErr(err)
	}
	m, err := Unmarshal(n.buf[:nr])
	if err != nil {
		n.malformed.Inc()
		return nil, from, err
	}
	return m, from, nil
}

// classifyRecvErr maps a socket read error onto the package sentinels while
// keeping the original text.
func classifyRecvErr(err error) error {
	if errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("%w: %v", ErrClosed, err)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}
