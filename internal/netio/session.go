package netio

import (
	"encoding/binary"
	"fmt"
)

// ProtocolVersion is the session-protocol revision spoken by Gateway and
// Client. A Hello carrying a different version is rejected during the
// handshake — wire-format drift fails loudly at connect time, not as a
// mid-session decode error.
const ProtocolVersion uint16 = 1

// Session-protocol message types (the data plane keeps types 1–4).
const (
	// TypeHello opens (or resumes) a session (tag → gateway).
	TypeHello MsgType = 5
	// TypeHelloAck answers a Hello: accept with session parameters, or
	// reject with a reason (gateway → tag).
	TypeHelloAck MsgType = 6
	// TypeHeartbeat is the liveness ping; the gateway echoes it back so the
	// client can measure RTT (both directions).
	TypeHeartbeat MsgType = 7
	// TypeSubmitRound carries a tag's uplink bits for one exchange round
	// (tag → gateway).
	TypeSubmitRound MsgType = 8
	// TypeRoundResult carries one round's exchange outcome digest for one
	// tag (gateway → tag).
	TypeRoundResult MsgType = 9
	// TypeGoodbye closes a session gracefully (tag → gateway).
	TypeGoodbye MsgType = 10
	// TypeEvict tells a client its session is gone; the client should
	// re-handshake (gateway → tag).
	TypeEvict MsgType = 11
)

// sessionTypeName extends MsgType.String for the session plane.
func sessionTypeName(t MsgType) (string, bool) {
	switch t {
	case TypeHello:
		return "hello", true
	case TypeHelloAck:
		return "hello-ack", true
	case TypeHeartbeat:
		return "heartbeat", true
	case TypeSubmitRound:
		return "submit-round", true
	case TypeRoundResult:
		return "round-result", true
	case TypeGoodbye:
		return "goodbye", true
	case TypeEvict:
		return "evict", true
	}
	return "", false
}

// wireReader is a sequential decoder over one payload. The first short read
// latches ErrTruncated; callers check err once at the end, which keeps the
// per-message decodePayload bodies linear and offset-free.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = ErrTruncated
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *wireReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *wireReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *wireReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *wireReader) f64() float64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return readFloat64(b)
}

// bytes16 reads a uint16-length-prefixed byte string (copied out of the
// wire buffer).
func (r *wireReader) bytes16() []byte {
	n := int(r.u16())
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func (r *wireReader) str() string { return string(r.bytes16()) }

// done reports the final decode status: latched error, or ErrTruncated when
// trailing bytes remain (a message must consume its payload exactly).
func (r *wireReader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return ErrTruncated
	}
	return nil
}

func appendBytes16(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	return appendBytes16(dst, []byte(s))
}

// packBits packs bits MSB-first; unpackBits is its inverse.
func packBits(bits []bool) (count uint16, packed []byte) {
	packed = make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			packed[i/8] |= 1 << uint(7-i%8)
		}
	}
	return uint16(len(bits)), packed
}

func unpackBits(count uint16, packed []byte) []bool {
	out := make([]bool, count)
	for i := range out {
		if i/8 < len(packed) {
			out[i] = packed[i/8]&(1<<uint(7-i%8)) != 0
		}
	}
	return out
}

// checkBitCount validates a packed bit field.
func checkBitCount(count uint16, packed []byte) error {
	if int(count) > 8*len(packed) {
		return fmt.Errorf("netio: bit count %d exceeds %d packed bytes", count, len(packed))
	}
	return nil
}

// Hello opens a session with the gateway (or resumes one after a
// disconnect: a nonzero SessionID asks the gateway to adopt the existing
// session if it still exists).
type Hello struct {
	// Version is the sender's ProtocolVersion; the gateway rejects a
	// mismatch.
	Version uint16
	// TagID identifies the tag; the gateway keys sessions by it.
	TagID uint8
	// SessionID resumes an existing session when nonzero.
	SessionID uint64
	// Seq is the client's per-session message sequence number.
	Seq uint64
}

// Type implements Message.
func (*Hello) Type() MsgType { return TypeHello }

func (h *Hello) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, h.Version)
	dst = append(dst, h.TagID)
	dst = binary.BigEndian.AppendUint64(dst, h.SessionID)
	dst = binary.BigEndian.AppendUint64(dst, h.Seq)
	return dst
}

func (h *Hello) decodePayload(src []byte) error {
	r := wireReader{b: src}
	h.Version = r.u16()
	h.TagID = r.u8()
	h.SessionID = r.u64()
	h.Seq = r.u64()
	return r.done()
}

// HelloCode is the gateway's handshake verdict.
type HelloCode uint8

// Handshake verdicts.
const (
	// HelloAccept: a new session was created.
	HelloAccept HelloCode = 0
	// HelloResume: an existing session was adopted (same tag reconnecting).
	HelloResume HelloCode = 1
	// HelloRejectVersion: protocol-version mismatch; Reason names the
	// gateway's version.
	HelloRejectVersion HelloCode = 2
	// HelloRejectFull: the gateway is at capacity.
	HelloRejectFull HelloCode = 3
	// HelloQueued: the gateway is at capacity but parked the tag in its
	// admission wait queue (AdmitQueue policy); the client should keep
	// retrying the handshake — not a rejection.
	HelloQueued HelloCode = 4
)

// String implements fmt.Stringer.
func (c HelloCode) String() string {
	switch c {
	case HelloAccept:
		return "accept"
	case HelloResume:
		return "resume"
	case HelloRejectVersion:
		return "reject-version"
	case HelloRejectFull:
		return "reject-full"
	case HelloQueued:
		return "queued"
	default:
		return fmt.Sprintf("HelloCode(%d)", uint8(c))
	}
}

// Accepted reports whether the handshake succeeded.
func (c HelloCode) Accepted() bool { return c == HelloAccept || c == HelloResume }

// HelloAck answers a Hello.
type HelloAck struct {
	// Code is the verdict.
	Code HelloCode
	// SessionID is the session identity (zero on reject).
	SessionID uint64
	// NextRound is the next exchange round the gateway will run; a
	// (re)joining client starts submitting at this round, which is what
	// makes a killed-and-restarted tag resume mid-stream.
	NextRound uint64
	// HeartbeatMillis is the heartbeat interval the gateway expects.
	HeartbeatMillis uint32
	// SessionTimeoutMillis is the liveness deadline after which the gateway
	// evicts a silent session.
	SessionTimeoutMillis uint32
	// Reason explains a rejection.
	Reason string
}

// Type implements Message.
func (*HelloAck) Type() MsgType { return TypeHelloAck }

func (h *HelloAck) appendPayload(dst []byte) []byte {
	dst = append(dst, byte(h.Code))
	dst = binary.BigEndian.AppendUint64(dst, h.SessionID)
	dst = binary.BigEndian.AppendUint64(dst, h.NextRound)
	dst = binary.BigEndian.AppendUint32(dst, h.HeartbeatMillis)
	dst = binary.BigEndian.AppendUint32(dst, h.SessionTimeoutMillis)
	dst = appendString(dst, h.Reason)
	return dst
}

func (h *HelloAck) decodePayload(src []byte) error {
	r := wireReader{b: src}
	h.Code = HelloCode(r.u8())
	h.SessionID = r.u64()
	h.NextRound = r.u64()
	h.HeartbeatMillis = r.u32()
	h.SessionTimeoutMillis = r.u32()
	h.Reason = r.str()
	return r.done()
}

// Heartbeat is the session liveness ping. The client sends Echo=false; the
// gateway replies with the same Seq and Echo=true so the client can measure
// round-trip time. RTTNanos carries the client's previous measurement back
// to the gateway, which records it in the netio.heartbeat.rtt_seconds
// histogram — RTT observability without cross-process clock sync.
type Heartbeat struct {
	SessionID uint64
	// Seq pairs a ping with its echo.
	Seq uint64
	// Echo marks a gateway reply.
	Echo bool
	// RTTNanos is the client's last measured heartbeat RTT (0 = unknown).
	RTTNanos uint64
}

// Type implements Message.
func (*Heartbeat) Type() MsgType { return TypeHeartbeat }

func (h *Heartbeat) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, h.SessionID)
	dst = binary.BigEndian.AppendUint64(dst, h.Seq)
	var echo byte
	if h.Echo {
		echo = 1
	}
	dst = append(dst, echo)
	dst = binary.BigEndian.AppendUint64(dst, h.RTTNanos)
	return dst
}

func (h *Heartbeat) decodePayload(src []byte) error {
	r := wireReader{b: src}
	h.SessionID = r.u64()
	h.Seq = r.u64()
	h.Echo = r.u8() != 0
	h.RTTNanos = r.u64()
	return r.done()
}

// SubmitRound carries a tag's uplink bits for one exchange round. The
// gateway runs the round once every live session has submitted it (or the
// round deadline passes) and answers with a RoundResult. Retransmissions
// are idempotent: a duplicate submit for a completed round is answered from
// the gateway's per-session result cache.
type SubmitRound struct {
	SessionID uint64
	// Seq is the client's message sequence number (each retransmission gets
	// a fresh one, so the gateway can count network reordering).
	Seq uint64
	// Round is the exchange round these bits are for.
	Round uint64
	// BitCount is the number of valid bits in Bits.
	BitCount uint16
	// Bits is the uplink message, packed MSB-first.
	Bits []byte
}

// Type implements Message.
func (*SubmitRound) Type() MsgType { return TypeSubmitRound }

func (s *SubmitRound) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, s.SessionID)
	dst = binary.BigEndian.AppendUint64(dst, s.Seq)
	dst = binary.BigEndian.AppendUint64(dst, s.Round)
	dst = binary.BigEndian.AppendUint16(dst, s.BitCount)
	dst = appendBytes16(dst, s.Bits)
	return dst
}

func (s *SubmitRound) decodePayload(src []byte) error {
	r := wireReader{b: src}
	s.SessionID = r.u64()
	s.Seq = r.u64()
	s.Round = r.u64()
	s.BitCount = r.u16()
	s.Bits = r.bytes16()
	if err := r.done(); err != nil {
		return err
	}
	return checkBitCount(s.BitCount, s.Bits)
}

// SetBits packs a bool slice into the submission.
func (s *SubmitRound) SetBits(bits []bool) {
	s.BitCount, s.Bits = packBits(bits)
}

// GetBits unpacks the submission's bits.
func (s *SubmitRound) GetBits() []bool { return unpackBits(s.BitCount, s.Bits) }

// RoundStatus summarizes one tag's round outcome.
type RoundStatus uint8

// Round statuses.
const (
	// RoundOK: the exchange ran; Outcome holds this tag's digest.
	RoundOK RoundStatus = 0
	// RoundError: the exchange failed at round level; Outcome.Err explains.
	RoundError RoundStatus = 1
	// RoundSkipped: the round ran without this tag (it submitted too late,
	// or was quarantined); there is no outcome for it.
	RoundSkipped RoundStatus = 2
)

// String implements fmt.Stringer.
func (s RoundStatus) String() string {
	switch s {
	case RoundOK:
		return "ok"
	case RoundError:
		return "error"
	case RoundSkipped:
		return "skipped"
	default:
		return fmt.Sprintf("RoundStatus(%d)", uint8(s))
	}
}

// Outcome is one tag's exchange digest — the wire mirror of
// trace.NodeOutcome, the same fields the record/replay layer pins
// byte-for-byte. Errors travel as strings (they crossed a process boundary;
// identity is textual, exactly as in replay comparison).
type Outcome struct {
	// Err is a per-tag round-level error ("" = none).
	Err string
	// DownlinkPayload is what the tag's decoder produced.
	DownlinkPayload []byte
	// DownlinkErr is the downlink decode failure, if any.
	DownlinkErr string
	// DetectionRange/Bin/SNRdB are the radar's localization of this tag.
	DetectionRange float64
	DetectionBin   int32
	DetectionSNRdB float64
	// DetectionErr is the localization failure, if any.
	DetectionErr string
	// UplinkBits is what the radar demodulated from this tag's backscatter.
	UplinkBits []bool
	// UplinkErr is the uplink demodulation failure, if any.
	UplinkErr string
}

// Equal reports field-for-field (bit-exact) equality.
func (o Outcome) Equal(b Outcome) bool {
	if o.Err != b.Err || o.DownlinkErr != b.DownlinkErr ||
		o.DetectionErr != b.DetectionErr || o.UplinkErr != b.UplinkErr {
		return false
	}
	if string(o.DownlinkPayload) != string(b.DownlinkPayload) {
		return false
	}
	if o.DetectionRange != b.DetectionRange || o.DetectionBin != b.DetectionBin ||
		o.DetectionSNRdB != b.DetectionSNRdB {
		return false
	}
	if len(o.UplinkBits) != len(b.UplinkBits) {
		return false
	}
	for i := range o.UplinkBits {
		if o.UplinkBits[i] != b.UplinkBits[i] {
			return false
		}
	}
	return true
}

func (o Outcome) appendPayload(dst []byte) []byte {
	dst = appendString(dst, o.Err)
	dst = appendBytes16(dst, o.DownlinkPayload)
	dst = appendString(dst, o.DownlinkErr)
	dst = appendFloat64(dst, o.DetectionRange)
	dst = binary.BigEndian.AppendUint32(dst, uint32(o.DetectionBin))
	dst = appendFloat64(dst, o.DetectionSNRdB)
	dst = appendString(dst, o.DetectionErr)
	count, packed := packBits(o.UplinkBits)
	dst = binary.BigEndian.AppendUint16(dst, count)
	dst = appendBytes16(dst, packed)
	dst = appendString(dst, o.UplinkErr)
	return dst
}

func (o *Outcome) decode(r *wireReader) error {
	o.Err = r.str()
	o.DownlinkPayload = r.bytes16()
	o.DownlinkErr = r.str()
	o.DetectionRange = r.f64()
	o.DetectionBin = int32(r.u32())
	o.DetectionSNRdB = r.f64()
	o.DetectionErr = r.str()
	count := r.u16()
	packed := r.bytes16()
	o.UplinkErr = r.str()
	if r.err != nil {
		return r.err
	}
	if err := checkBitCount(count, packed); err != nil {
		return err
	}
	o.UplinkBits = unpackBits(count, packed)
	if len(o.DownlinkPayload) == 0 {
		o.DownlinkPayload = nil
	}
	if count == 0 {
		o.UplinkBits = nil
	}
	return nil
}

// RoundResult is the gateway's answer to one SubmitRound.
type RoundResult struct {
	SessionID uint64
	// Round echoes the submission's round.
	Round uint64
	// Status says whether Outcome is meaningful.
	Status RoundStatus
	// Outcome is this tag's digest (zero value unless Status == RoundOK,
	// except Outcome.Err which RoundError sets).
	Outcome Outcome
}

// Type implements Message.
func (*RoundResult) Type() MsgType { return TypeRoundResult }

func (rr *RoundResult) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, rr.SessionID)
	dst = binary.BigEndian.AppendUint64(dst, rr.Round)
	dst = append(dst, byte(rr.Status))
	return rr.Outcome.appendPayload(dst)
}

func (rr *RoundResult) decodePayload(src []byte) error {
	r := wireReader{b: src}
	rr.SessionID = r.u64()
	rr.Round = r.u64()
	rr.Status = RoundStatus(r.u8())
	if err := rr.Outcome.decode(&r); err != nil {
		return err
	}
	return r.done()
}

// Goodbye closes a session gracefully.
type Goodbye struct {
	SessionID uint64
	Seq       uint64
}

// Type implements Message.
func (*Goodbye) Type() MsgType { return TypeGoodbye }

func (g *Goodbye) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, g.SessionID)
	dst = binary.BigEndian.AppendUint64(dst, g.Seq)
	return dst
}

func (g *Goodbye) decodePayload(src []byte) error {
	r := wireReader{b: src}
	g.SessionID = r.u64()
	g.Seq = r.u64()
	return r.done()
}

// Evict tells a client its session no longer exists (heartbeat deadline
// passed, the gateway restarted, or it was replaced). The client reacts by
// re-handshaking.
type Evict struct {
	SessionID uint64
	// Reason is human-readable.
	Reason string
}

// Type implements Message.
func (*Evict) Type() MsgType { return TypeEvict }

func (e *Evict) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, e.SessionID)
	dst = appendString(dst, e.Reason)
	return dst
}

func (e *Evict) decodePayload(src []byte) error {
	r := wireReader{b: src}
	e.SessionID = r.u64()
	e.Reason = r.str()
	return r.done()
}
