package netio

import (
	"net"
	"sync"
	"testing"
	"time"

	"biscatter/internal/telemetry"
)

// memTransport is an in-memory Transport capturing everything written.
type memTransport struct {
	mu     sync.Mutex
	sent   [][]byte
	closed bool
}

func (m *memTransport) WriteTo(b []byte, _ *net.UDPAddr) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sent = append(m.sent, append([]byte(nil), b...))
	return len(b), nil
}
func (m *memTransport) ReadFrom(b []byte) (int, *net.UDPAddr, error) { select {} }
func (m *memTransport) SetReadDeadline(time.Time) error              { return nil }
func (m *memTransport) LocalAddr() net.Addr                          { return &net.UDPAddr{} }
func (m *memTransport) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

func (m *memTransport) snapshot() [][]byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([][]byte(nil), m.sent...)
}

func sendN(t *testing.T, tr Transport, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		buf, err := Marshal(&Goodbye{SessionID: uint64(i)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tr.WriteTo(buf, &net.UDPAddr{}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestNetFaultDeterministic pins the injector's replay property: the same
// profile produces the same datagram stream, byte for byte.
func TestNetFaultDeterministic(t *testing.T) {
	profile := NetFaultProfile{Seed: 42, Drop: 0.2, Duplicate: 0.1, Reorder: 0.1, Corrupt: 0.1}
	run := func() [][]byte {
		mem := &memTransport{}
		ft := newFaultTransport(mem, profile, nil)
		sendN(t, ft, 200)
		ft.Close()
		return mem.snapshot()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs diverged: %d vs %d datagrams", len(a), len(b))
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("datagram %d diverged", i)
		}
	}
	if len(a) == 200 {
		t.Fatal("profile injected nothing")
	}
}

// TestNetFaultRatesObserved checks each impairment actually fires at
// roughly its configured probability, and that the telemetry counters see
// every decision.
func TestNetFaultRatesObserved(t *testing.T) {
	m := telemetry.New()
	mem := &memTransport{}
	const n, drop = 2000, 0.10
	ft := newFaultTransport(mem, NetFaultProfile{Seed: 7, Drop: drop, Duplicate: 0.05, Corrupt: 0.05}, m)
	sendN(t, ft, n)
	ft.Close()

	dropped := m.Counter("netio.fault.dropped").Value()
	duplicated := m.Counter("netio.fault.duplicated").Value()
	corrupted := m.Counter("netio.fault.corrupted").Value()
	if dropped < n*drop/2 || dropped > n*drop*2 {
		t.Fatalf("dropped %d of %d, want ≈%v", dropped, n, n*drop)
	}
	if duplicated == 0 || corrupted == 0 {
		t.Fatalf("duplicated=%d corrupted=%d, want both > 0", duplicated, corrupted)
	}
	if got := int64(len(mem.snapshot())); got != n-dropped+duplicated {
		t.Fatalf("transport saw %d datagrams, want %d-%d+%d", got, n, dropped, duplicated)
	}
	// Every corrupted datagram must fail CRC (or magic) on decode. A
	// corrupted datagram that is also duplicated appears (and fails) twice.
	bad := int64(0)
	for _, d := range mem.snapshot() {
		if _, err := Unmarshal(d); err != nil {
			bad++
		}
	}
	if bad < corrupted || bad > corrupted+duplicated {
		t.Fatalf("%d undecodable datagrams, want between %d and %d", bad, corrupted, corrupted+duplicated)
	}
}

// TestNetFaultReorderSwapsAdjacent pins the hold-one reorder semantics: a
// reordered datagram goes out after its successor, and Close flushes a
// datagram held at shutdown.
func TestNetFaultReorderSwapsAdjacent(t *testing.T) {
	mem := &memTransport{}
	ft := newFaultTransport(mem, NetFaultProfile{Seed: 3, Reorder: 0.3}, nil)
	sendN(t, ft, 100)
	ft.Close()
	got := mem.snapshot()
	if len(got) != 100 {
		t.Fatalf("reorder must not lose datagrams: %d of 100", len(got))
	}
	// Decode the session IDs back out and check it is a permutation of
	// 0..99 that is NOT the identity.
	seen := make(map[uint64]bool)
	identity := true
	for i, d := range got {
		m, err := Unmarshal(d)
		if err != nil {
			t.Fatal(err)
		}
		id := m.(*Goodbye).SessionID
		if seen[id] {
			t.Fatalf("datagram %d duplicated", id)
		}
		seen[id] = true
		if id != uint64(i) {
			identity = false
		}
	}
	if identity {
		t.Fatal("profile reordered nothing")
	}
}

// TestNetFaultDisabledPassThrough pins that a zero profile adds no wrapper.
func TestNetFaultDisabledPassThrough(t *testing.T) {
	mem := &memTransport{}
	if tr := newFaultTransport(mem, NetFaultProfile{Seed: 1}, nil); tr != Transport(mem) {
		t.Fatal("zero profile must return the inner transport")
	}
}

// TestNetFaultDelay checks delayed datagrams still arrive.
func TestNetFaultDelay(t *testing.T) {
	mem := &memTransport{}
	ft := newFaultTransport(mem, NetFaultProfile{Seed: 5, Delay: 0.5, MaxDelay: 5 * time.Millisecond}, nil)
	sendN(t, ft, 50)
	deadline := time.Now().Add(2 * time.Second)
	for len(mem.snapshot()) < 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := len(mem.snapshot()); got != 50 {
		t.Fatalf("only %d of 50 datagrams arrived after delay window", got)
	}
	ft.Close()
}
