package netio

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestListenTransportSelects pins the transport registry: "", udp and tcp
// resolve; anything else is an explicit configuration error.
func TestListenTransportSelects(t *testing.T) {
	for _, kind := range []string{"", TransportUDP, TransportTCP} {
		n, err := ListenTransport(kind, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("ListenTransport(%q): %v", kind, err)
		}
		n.Close()
	}
	if _, err := ListenTransport("sctp", "127.0.0.1:0"); err == nil {
		t.Fatal("ListenTransport accepted an unknown transport")
	}
}

// TestStreamRoundTrip exchanges messages both ways over the length-prefixed
// TCP transport, including the auto-dial path (a node that has never
// accepted a connection can still Send first).
func TestStreamRoundTrip(t *testing.T) {
	a, err := ListenTransport(TransportTCP, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTransport(TransportTCP, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	for i := 0; i < 5; i++ {
		if err := a.Send(b.Addr(), &Goodbye{SessionID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		m, from, err := b.Recv(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		gb, ok := m.(*Goodbye)
		if !ok || gb.SessionID != uint64(i) {
			t.Fatalf("round %d: got %#v", i, m)
		}
		// Reply over the same (accepted) connection.
		if err := b.Send(from, &Goodbye{SessionID: uint64(100 + i)}); err != nil {
			t.Fatal(err)
		}
		m, _, err = a.Recv(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if gb, ok := m.(*Goodbye); !ok || gb.SessionID != uint64(100+i) {
			t.Fatalf("round %d reply: got %#v", i, m)
		}
	}
}

// TestStreamSentinels pins that the stream transport maps onto the same
// error vocabulary as UDP: deadline expiry is ErrTimeout, closure is
// ErrClosed, and the two never alias.
func TestStreamSentinels(t *testing.T) {
	n, err := ListenTransport(TransportTCP, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = n.Recv(20 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) || errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, _, err := n.Recv(2 * time.Second)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	n.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) || errors.Is(err, ErrTimeout) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not return after Close")
	}
}

// TestStreamFaultInjection runs the deterministic fault injector above the
// stream framing: datagrams vanish, but framing never desyncs, so the
// survivors still decode.
func TestStreamFaultInjection(t *testing.T) {
	lossy, err := ListenTransport(TransportTCP, "127.0.0.1:0",
		WithNetFaults(&NetFaultProfile{Seed: 11, Drop: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	defer lossy.Close()
	sink, err := ListenTransport(TransportTCP, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	const n = 40
	for i := 0; i < n; i++ {
		if err := lossy.Send(sink.Addr(), &Goodbye{SessionID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for {
		_, _, err := sink.Recv(200 * time.Millisecond)
		if errors.Is(err, ErrTimeout) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got++
	}
	if got == 0 || got >= n {
		t.Fatalf("received %d of %d, want a strict lossy subset", got, n)
	}
}

// TestListenAddrInUse pins the satellite: binding a busy address surfaces
// the ErrAddrInUse sentinel — on both transports — so a serve loop can
// return cleanly instead of crashing on an opaque syscall error.
func TestListenAddrInUse(t *testing.T) {
	for _, kind := range []string{TransportUDP, TransportTCP} {
		t.Run(kind, func(t *testing.T) {
			first, err := ListenTransport(kind, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer first.Close()
			busy := fmt.Sprintf("127.0.0.1:%d", first.Addr().Port)
			_, err = ListenTransport(kind, busy)
			if !errors.Is(err, ErrAddrInUse) {
				t.Fatalf("ListenTransport(%q, %s) = %v, want ErrAddrInUse", kind, busy, err)
			}
		})
	}
}
