package netio

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestGatewayAdmissionReject pins the default overflow policy: with
// MaxSessions 2, the third tag's handshake is answered HelloRejectFull and
// the admission counters split admitted vs rejected.
func TestGatewayAdmissionReject(t *testing.T) {
	node, m, stop := testGateway(t, GatewayConfig{
		MaxSessions:    2,
		SessionTimeout: time.Minute,
	}, echoExchange)
	defer stop()
	defer node.Close()

	_, conn1 := dialTag(t, node.Addr(), 1, ClientConfig{})
	defer conn1.Close()
	_, conn2 := dialTag(t, node.Addr(), 2, ClientConfig{})
	defer conn2.Close()

	conn3, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn3.Close()
	_, err = Dial(conn3, node.Addr().String(), ClientConfig{
		TagID: 3, AttemptTimeout: 300 * time.Millisecond, DialAttempts: 2})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("third dial: want ErrRejected, got %v", err)
	}
	if got := m.Counter("netio.admission.admitted").Value(); got != 2 {
		t.Errorf("netio.admission.admitted = %d, want 2", got)
	}
	if got := m.Counter("netio.admission.rejected").Value(); got == 0 {
		t.Error("netio.admission.rejected not counted")
	}
	// A replaced session (same tag re-dialing) is not an overflow event.
	_, conn1b := dialTag(t, node.Addr(), 1, ClientConfig{})
	defer conn1b.Close()
	if got := m.Counter("netio.sessions.replaced").Value(); got != 1 {
		t.Errorf("netio.sessions.replaced = %d, want 1", got)
	}
}

// TestGatewayAdmissionQueue pins the queue policy: an over-capacity tag is
// parked (HelloQueued keeps its handshake retrying rather than failing),
// and it is admitted as soon as a session departs.
func TestGatewayAdmissionQueue(t *testing.T) {
	node, m, stop := testGateway(t, GatewayConfig{
		MaxSessions:    1,
		Admission:      AdmitQueue,
		SessionTimeout: time.Minute,
	}, echoExchange)
	defer stop()
	defer node.Close()

	c1, conn1 := dialTag(t, node.Addr(), 1, ClientConfig{})
	defer conn1.Close()

	// Tag 2 dials while the gateway is full: its handshake must park in the
	// wait queue instead of erroring out.
	type dialed struct {
		c   *Client
		err error
	}
	res := make(chan dialed, 1)
	conn2, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	go func() {
		c, err := Dial(conn2, node.Addr().String(), ClientConfig{
			TagID: 2, AttemptTimeout: 200 * time.Millisecond, DialAttempts: 40})
		res <- dialed{c, err}
	}()

	waitFor(t, func() bool { return m.Counter("netio.admission.queued").Value() == 1 })
	if got := m.Gauge("netio.admission.waiting").Value(); got != 1 {
		t.Fatalf("netio.admission.waiting = %v, want 1", got)
	}
	select {
	case d := <-res:
		t.Fatalf("queued dial returned early: %v, %v", d.c, d.err)
	default:
	}

	// Free the slot; the queued tag's next handshake retry must be admitted.
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-res:
		if d.err != nil {
			t.Fatalf("queued dial: %v", d.err)
		}
		d.c.Close()
	case <-time.After(30 * time.Second):
		t.Fatal("queued tag never admitted")
	}
	if got := m.Counter("netio.admission.admitted").Value(); got != 2 {
		t.Errorf("netio.admission.admitted = %d, want 2", got)
	}
	if got := m.Gauge("netio.admission.waiting").Value(); got != 0 {
		t.Errorf("netio.admission.waiting = %v, want 0", got)
	}
}

// TestGatewayAdmissionSpill pins the spill policy: over-capacity tags are
// admitted into overflow frame groups past the schedule's planned cycle
// instead of being turned away, and the overflow group still completes
// rounds.
func TestGatewayAdmissionSpill(t *testing.T) {
	node, m, stop := testGateway(t, GatewayConfig{
		MaxSessions:    2,
		Admission:      AdmitSpill,
		MinSessions:    3,
		Rounds:         1,
		RoundTimeout:   2 * time.Second,
		FrameTimeout:   100 * time.Millisecond,
		SessionTimeout: time.Minute,
		GroupOf:        func(tagID uint8) int { return 0 },
	}, echoExchange)
	defer node.Close()

	clients := make([]*Client, 3)
	for i := range clients {
		c, conn := dialTag(t, node.Addr(), uint8(i+1), ClientConfig{})
		defer conn.Close()
		clients[i] = c
	}
	if got := m.Counter("netio.admission.spilled").Value(); got != 1 {
		t.Fatalf("netio.admission.spilled = %d, want 1", got)
	}
	if got := m.Counter("netio.admission.admitted").Value(); got != 3 {
		t.Fatalf("netio.admission.admitted = %d, want 3", got)
	}

	// All three — planned groups and the overflow group — complete a round.
	errs := make(chan error, len(clients))
	for _, c := range clients {
		go func(c *Client) {
			rr, err := c.SubmitRound(context.Background(), []bool{true})
			if err == nil && rr.Status != RoundOK {
				err = errors.New(rr.Status.String())
			}
			errs <- err
		}(c)
	}
	for range clients {
		if err := <-errs; err != nil {
			t.Fatalf("spilled round: %v", err)
		}
	}
	for _, c := range clients {
		c.Close()
	}
	if err := stop(); err != nil {
		t.Fatalf("gateway: %v", err)
	}
}

// TestGatewayEvictReassignResume pins the satellite: a tag evicted between
// attempts whose frame-group assignment changed in the meantime resumes
// with the NEW group while its round cursor survives — the replacement
// session re-derives the assignment and the HelloAck resumes at the
// gateway's current round.
func TestGatewayEvictReassignResume(t *testing.T) {
	var group, lastAssigned atomic.Int64
	node, m, stop := testGateway(t, GatewayConfig{
		MinSessions:    1,
		Rounds:         2,
		RoundTimeout:   100 * time.Millisecond,
		SessionTimeout: time.Minute,
		GroupOf: func(tagID uint8) int {
			g := group.Load()
			lastAssigned.Store(g)
			return int(g)
		},
	}, echoExchange)

	c1, conn1 := dialTag(t, node.Addr(), 9, ClientConfig{})
	if _, err := c1.SubmitRound(context.Background(), []bool{true}); err != nil {
		t.Fatal(err)
	}
	conn1.Close() // tag dies without Goodbye

	// Operator re-plans the schedule while the tag is away.
	group.Store(3)

	c2, conn2 := dialTag(t, node.Addr(), 9, ClientConfig{})
	defer conn2.Close()
	if c2.Round() != 1 {
		t.Fatalf("re-dialed client resumes at round %d, want 1", c2.Round())
	}
	rr, err := c2.SubmitRound(context.Background(), []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Status != RoundOK || rr.Round != 1 {
		t.Fatalf("resumed round: %+v", rr)
	}
	c2.Close()
	if err := stop(); err != nil {
		t.Fatalf("gateway: %v", err)
	}
	if got := m.Counter("netio.sessions.replaced").Value(); got != 1 {
		t.Errorf("netio.sessions.replaced = %d, want 1", got)
	}
	if got := m.Counter("netio.rounds").Value(); got != 2 {
		t.Errorf("netio.rounds = %d, want 2", got)
	}
	// The replacement session re-derived its assignment under the new plan.
	if got := lastAssigned.Load(); got != 3 {
		t.Errorf("last frame-group assignment %d, want 3 (re-derived on resume)", got)
	}
}
