package netio

import (
	"net"
	"sync"
	"time"

	"biscatter/internal/telemetry"
)

// NetFaultProfile configures the deterministic network-fault injector. It
// follows the internal/fault discipline: every decision is a stateless
// splitmix64 draw keyed by (Seed, stream, datagram index), so a given
// profile replays the exact same loss pattern on every run regardless of
// timing — which is what lets the chaos conformance suite pin byte-exact
// outcomes under 10% loss.
//
// Faults apply on the send side of the wrapped transport: each outgoing
// datagram is independently dropped, duplicated, reordered (held back one
// send), corrupted (one deterministic bit flip — the receiver's CRC rejects
// it, exercising the malformed-datagram path) or delayed. Probabilities are
// in [0, 1] and independent; a datagram can be both duplicated and delayed.
type NetFaultProfile struct {
	// Seed keys every draw.
	Seed int64
	// Drop is the probability a datagram is silently discarded.
	Drop float64
	// Duplicate is the probability a datagram is sent twice.
	Duplicate float64
	// Reorder is the probability a datagram is held and transmitted after
	// the next one instead of in order.
	Reorder float64
	// Corrupt is the probability one bit of the datagram is flipped.
	Corrupt float64
	// Delay is the probability a datagram is deferred by a uniform draw in
	// (0, MaxDelay].
	Delay float64
	// MaxDelay bounds the injected delay (default 20ms when Delay > 0).
	MaxDelay time.Duration
}

// enabled reports whether the profile injects anything.
func (p NetFaultProfile) enabled() bool {
	return p.Drop > 0 || p.Duplicate > 0 || p.Reorder > 0 || p.Corrupt > 0 || p.Delay > 0
}

// Draw streams, one per impairment so enabling one never shifts another's
// decisions (the internal/fault stream-isolation property).
const (
	netStreamDrop       uint64 = 1
	netStreamDuplicate  uint64 = 2
	netStreamReorder    uint64 = 3
	netStreamCorrupt    uint64 = 4
	netStreamDelay      uint64 = 5
	netStreamCorruptPos uint64 = 6
	netStreamDelayDur   uint64 = 7
)

// netMix is the splitmix64 finalizer (same constants as internal/fault).
func netMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// netHashBits returns 64 independent-looking bits for (seed, stream, idx).
func netHashBits(seed int64, stream, idx uint64) uint64 {
	h := netMix(uint64(seed))
	h = netMix(h ^ stream*0xd6e8feb86659fd93)
	return netMix(h ^ idx)
}

// netUniform returns a deterministic draw in [0, 1).
func netUniform(seed int64, stream, idx uint64) float64 {
	return float64(netHashBits(seed, stream, idx)>>11) / (1 << 53)
}

// faultTransport wraps a Transport with send-side fault injection. The
// datagram index (and the held reorder slot) are mutex-protected so
// concurrent senders still consume a single deterministic index sequence.
type faultTransport struct {
	inner Transport
	p     NetFaultProfile

	mu   sync.Mutex
	idx  uint64
	held *heldDatagram

	dropped, duplicated, reordered, corrupted, delayed *telemetry.Counter
}

type heldDatagram struct {
	buf  []byte
	addr *net.UDPAddr
}

func newFaultTransport(inner Transport, p NetFaultProfile, m *telemetry.Metrics) Transport {
	if !p.enabled() {
		return inner
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 20 * time.Millisecond
	}
	ft := &faultTransport{inner: inner, p: p}
	if m != nil {
		ft.dropped = m.Counter("netio.fault.dropped")
		ft.duplicated = m.Counter("netio.fault.duplicated")
		ft.reordered = m.Counter("netio.fault.reordered")
		ft.corrupted = m.Counter("netio.fault.corrupted")
		ft.delayed = m.Counter("netio.fault.delayed")
	}
	return ft
}

func (ft *faultTransport) WriteTo(b []byte, addr *net.UDPAddr) (int, error) {
	ft.mu.Lock()
	idx := ft.idx
	ft.idx++
	release := ft.held
	ft.held = nil

	p, seed := ft.p, ft.p.Seed
	n := len(b)

	if p.Drop > 0 && netUniform(seed, netStreamDrop, idx) < p.Drop {
		ft.mu.Unlock()
		ft.dropped.Inc()
		ft.flush(release)
		// The caller sees a successful send: the network ate the datagram.
		return n, nil
	}

	// Work on a copy so corruption/delay never mutate or retain the
	// caller's buffer.
	out := append([]byte(nil), b...)
	if p.Corrupt > 0 && netUniform(seed, netStreamCorrupt, idx) < p.Corrupt {
		pos := netHashBits(seed, netStreamCorruptPos, idx) % uint64(8*len(out))
		out[pos/8] ^= 1 << (pos % 8)
		ft.corrupted.Inc()
	}

	dup := p.Duplicate > 0 && netUniform(seed, netStreamDuplicate, idx) < p.Duplicate
	if p.Reorder > 0 && netUniform(seed, netStreamReorder, idx) < p.Reorder {
		// Hold this datagram; it goes out after the next send.
		ft.held = &heldDatagram{buf: out, addr: addr}
		ft.mu.Unlock()
		ft.reordered.Inc()
		ft.flush(release)
		return n, nil
	}
	ft.mu.Unlock()

	if p.Delay > 0 && netUniform(seed, netStreamDelay, idx) < p.Delay {
		d := time.Duration(netUniform(seed, netStreamDelayDur, idx) * float64(p.MaxDelay))
		ft.delayed.Inc()
		buf := out
		time.AfterFunc(d, func() {
			ft.inner.WriteTo(buf, addr) //nolint:errcheck // post-close errors are expected
		})
		ft.flush(release)
		return n, nil
	}

	_, err := ft.inner.WriteTo(out, addr)
	if dup {
		ft.duplicated.Inc()
		ft.inner.WriteTo(out, addr) //nolint:errcheck // best-effort duplicate
	}
	ft.flush(release)
	if err != nil {
		return 0, err
	}
	return n, nil
}

// flush transmits a previously held (reordered) datagram.
func (ft *faultTransport) flush(h *heldDatagram) {
	if h == nil {
		return
	}
	ft.inner.WriteTo(h.buf, h.addr) //nolint:errcheck // best-effort release
}

func (ft *faultTransport) ReadFrom(b []byte) (int, *net.UDPAddr, error) {
	return ft.inner.ReadFrom(b)
}

func (ft *faultTransport) SetReadDeadline(t time.Time) error {
	return ft.inner.SetReadDeadline(t)
}

func (ft *faultTransport) LocalAddr() net.Addr { return ft.inner.LocalAddr() }

func (ft *faultTransport) Close() error {
	// Release any held datagram so a graceful shutdown doesn't strand the
	// last message.
	ft.mu.Lock()
	h := ft.held
	ft.held = nil
	ft.mu.Unlock()
	ft.flush(h)
	return ft.inner.Close()
}
