package netio

import (
	"hash/crc32"
	"net"
)

// crc32IEEE and netResolve keep the main test file free of extra imports.
func crc32IEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

func netResolve(addr string) (*net.UDPAddr, error) {
	return net.ResolveUDPAddr("udp", addr)
}
