//go:build race

package netio_test

// raceEnabled reports whether this binary was built with -race. The scaled
// chaos run skips under the race detector: its barrier timeouts are
// wall-clock budgets for handshake stragglers, and the detector's slowdown
// turns them into false evictions. The same code paths run race-checked at
// 4 tags in TestChaosConformance.
const raceEnabled = true
