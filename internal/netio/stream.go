package netio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// streamMaxFrame bounds one length-prefixed frame. It matches the Node
// receive buffer: any message that fits a UDP datagram fits a stream frame,
// so the two transports carry the same protocol envelope.
const streamMaxFrame = 1 << 16

// streamDialTimeout bounds the implicit dial a WriteTo to an unknown peer
// performs. On loopback a dead peer fails fast (connection refused); the
// bound keeps a WAN-grade black hole from stalling a sender goroutine.
const streamDialTimeout = time.Second

// streamTimeoutError satisfies net.Error with Timeout() == true so
// classifyRecvErr maps an expired ReadFrom deadline onto ErrTimeout exactly
// as it does for a UDP socket.
type streamTimeoutError struct{}

func (streamTimeoutError) Error() string   { return "netio: stream read deadline exceeded" }
func (streamTimeoutError) Timeout() bool   { return true }
func (streamTimeoutError) Temporary() bool { return true }

// streamFrame is one received message with its sender, as surfaced by
// ReadFrom.
type streamFrame struct {
	payload []byte
	from    *net.UDPAddr
}

// streamConn is one TCP connection with a write lock: session sender
// goroutines and the supervision loop's direct sends may interleave, and a
// frame (length prefix + payload) must hit the stream atomically.
type streamConn struct {
	c  net.Conn
	mu sync.Mutex
}

func (sc *streamConn) writeFrame(buf []byte) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	_, err := sc.c.Write(buf)
	return err
}

// streamTransport is the length-prefixed TCP implementation of Transport:
// the same one-Message-per-frame envelope as UDP, carried over streams. It
// keeps UDP's addressing surface (peers are *net.UDPAddr values) so the
// session layer, the fault injector and the Node above it are transport-
// agnostic: a connection is dialed on first write to an unknown peer,
// accepted connections are keyed by the peer's remote address, and every
// received frame reports that address as its sender. Frames are
// self-contained, so the injector's drop/duplicate/reorder/corrupt/delay
// decisions compose unchanged — corruption hits the marshaled message (the
// CRC rejects it at Recv), never the framing, because faults are injected
// above the framing layer.
type streamTransport struct {
	ln    *net.TCPListener
	local *net.UDPAddr

	frames chan streamFrame
	done   chan struct{}

	mu       sync.Mutex
	conns    map[string]*streamConn
	deadline time.Time
	closed   bool

	wg sync.WaitGroup
}

// listenStream opens the TCP listener side of a stream transport.
func listenStream(addr string) (*streamTransport, error) {
	ta, err := net.ResolveTCPAddr("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve %q: %w", addr, err)
	}
	ln, err := net.ListenTCP("tcp", ta)
	if err != nil {
		return nil, wrapListenErr(addr, err)
	}
	s := &streamTransport{
		ln:     ln,
		local:  udpAddrOf(ln.Addr()),
		frames: make(chan streamFrame, 64),
		done:   make(chan struct{}),
		conns:  make(map[string]*streamConn),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// udpAddrOf projects any IP-endpoint address onto the *net.UDPAddr shape
// the netio session layer addresses peers with.
func udpAddrOf(a net.Addr) *net.UDPAddr {
	switch t := a.(type) {
	case *net.UDPAddr:
		return t
	case *net.TCPAddr:
		return &net.UDPAddr{IP: t.IP, Port: t.Port, Zone: t.Zone}
	default:
		ua, err := net.ResolveUDPAddr("udp", a.String())
		if err != nil {
			return &net.UDPAddr{}
		}
		return ua
	}
}

func (s *streamTransport) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.AcceptTCP()
		if err != nil {
			return // listener closed
		}
		from := udpAddrOf(c.RemoteAddr())
		sc := &streamConn{c: c}
		if !s.addConn(from.String(), sc) {
			c.Close()
			return
		}
		s.wg.Add(1)
		go s.serveConn(from.String(), sc, from)
	}
}

// addConn registers a connection under key, refusing after Close. An
// existing connection under the same key (a peer redialing before its old
// conn's reader noticed the close) is superseded and closed.
func (s *streamTransport) addConn(key string, sc *streamConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if old, ok := s.conns[key]; ok && old != sc {
		old.c.Close()
	}
	s.conns[key] = sc
	return true
}

// removeConn closes and forgets a connection (if still current).
func (s *streamTransport) removeConn(key string, sc *streamConn) {
	s.mu.Lock()
	if cur, ok := s.conns[key]; ok && cur == sc {
		delete(s.conns, key)
	}
	s.mu.Unlock()
	sc.c.Close()
}

// serveConn reads length-prefixed frames off one connection until it breaks.
// A poisoned length prefix (zero or oversized — framing desync from a
// misbehaving peer) drops the connection: the peer redials on its next send
// and the session ARQ covers whatever was in flight.
func (s *streamTransport) serveConn(key string, sc *streamConn, from *net.UDPAddr) {
	defer s.wg.Done()
	defer s.removeConn(key, sc)
	r := bufio.NewReaderSize(sc.c, 4096)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > streamMaxFrame {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return
		}
		select {
		case s.frames <- streamFrame{payload: buf, from: from}:
		case <-s.done:
			return
		}
	}
}

// connFor returns the connection to addr, dialing one if none exists (the
// client side of the transport reaches its gateway this way).
func (s *streamTransport) connFor(key string, addr *net.UDPAddr) (*streamConn, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("netio: stream write: %w", net.ErrClosed)
	}
	if sc, ok := s.conns[key]; ok {
		s.mu.Unlock()
		return sc, nil
	}
	s.mu.Unlock()

	c, err := net.DialTimeout("tcp", addr.String(), streamDialTimeout)
	if err != nil {
		return nil, fmt.Errorf("netio: stream dial %v: %w", addr, err)
	}
	sc := &streamConn{c: c}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("netio: stream write: %w", net.ErrClosed)
	}
	if racer, ok := s.conns[key]; ok {
		// A concurrent dial (or an inbound accept) won: use it.
		s.mu.Unlock()
		c.Close()
		return racer, nil
	}
	s.conns[key] = sc
	s.mu.Unlock()
	// Frames the peer sends back on this connection surface under the
	// dialed address, which is exactly where the session layer expects
	// replies from.
	s.wg.Add(1)
	go s.serveConn(key, sc, addr)
	return sc, nil
}

// WriteTo frames b and sends it to addr over the peer's stream, dialing on
// first contact. Implements Transport.
func (s *streamTransport) WriteTo(b []byte, addr *net.UDPAddr) (int, error) {
	if len(b) > streamMaxFrame {
		return 0, fmt.Errorf("netio: stream frame %d exceeds %d bytes", len(b), streamMaxFrame)
	}
	key := addr.String()
	sc, err := s.connFor(key, addr)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 4+len(b))
	binary.BigEndian.PutUint32(buf, uint32(len(b)))
	copy(buf[4:], b)
	if err := sc.writeFrame(buf); err != nil {
		s.removeConn(key, sc)
		return 0, fmt.Errorf("netio: stream write %v: %w", addr, err)
	}
	return len(b), nil
}

// ReadFrom returns the next received frame and its sender, honoring the
// read deadline. Implements Transport.
func (s *streamTransport) ReadFrom(b []byte) (int, *net.UDPAddr, error) {
	// Drain buffered frames ahead of close/deadline signals.
	select {
	case f := <-s.frames:
		return copy(b, f.payload), f.from, nil
	default:
	}
	s.mu.Lock()
	deadline := s.deadline
	s.mu.Unlock()
	var timeout <-chan time.Time
	if !deadline.IsZero() {
		wait := time.Until(deadline)
		if wait <= 0 {
			return 0, nil, streamTimeoutError{}
		}
		t := time.NewTimer(wait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case f := <-s.frames:
		return copy(b, f.payload), f.from, nil
	case <-s.done:
		return 0, nil, fmt.Errorf("netio: stream read: %w", net.ErrClosed)
	case <-timeout:
		return 0, nil, streamTimeoutError{}
	}
}

// SetReadDeadline implements Transport.
func (s *streamTransport) SetReadDeadline(t time.Time) error {
	s.mu.Lock()
	s.deadline = t
	s.mu.Unlock()
	return nil
}

// LocalAddr reports the listen address in the session layer's UDP-addr
// shape. Implements Transport.
func (s *streamTransport) LocalAddr() net.Addr { return s.local }

// Close shuts the listener and every connection and unblocks readers.
// Implements Transport.
func (s *streamTransport) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*streamConn, 0, len(s.conns))
	for _, sc := range s.conns {
		conns = append(conns, sc)
	}
	s.conns = map[string]*streamConn{}
	s.mu.Unlock()

	err := s.ln.Close()
	for _, sc := range conns {
		sc.c.Close()
	}
	close(s.done)
	s.wg.Wait()
	return err
}
