package netio

import (
	"errors"
	"testing"
	"time"

	"biscatter/internal/telemetry"
)

// TestRecvTimeoutSentinel pins that deadline expiry surfaces as ErrTimeout
// (and not as ErrClosed or a bare net error).
func TestRecvTimeoutSentinel(t *testing.T) {
	n, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	_, _, err = n.Recv(20 * time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Fatal("timeout must not match ErrClosed")
	}
}

// TestRecvClosedSentinel pins that a closed socket surfaces as ErrClosed.
func TestRecvClosedSentinel(t *testing.T) {
	n, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := n.Recv(2 * time.Second)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	n.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("want ErrClosed, got %v", err)
		}
		if errors.Is(err, ErrTimeout) {
			t.Fatal("closure must not match ErrTimeout")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not return after Close")
	}
}

// TestRecvMalformedCounted pins the satellite: malformed datagrams are
// returned as errors AND counted into netio.recv.malformed.
func TestRecvMalformedCounted(t *testing.T) {
	m := telemetry.New()
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0", WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	raw, err := Marshal(&Goodbye{SessionID: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // break the CRC
	if _, err := a.tr.WriteTo(raw, b.Addr()); err != nil {
		t.Fatal(err)
	}
	_, from, err := b.Recv(2 * time.Second)
	if !errors.Is(err, ErrCRC) {
		t.Fatalf("want ErrCRC, got %v", err)
	}
	if from == nil {
		t.Fatal("malformed datagram should still report its sender")
	}
	if got := m.Counter("netio.recv.malformed").Value(); got != 1 {
		t.Fatalf("netio.recv.malformed = %d, want 1", got)
	}
}

// TestListenWithNetFaults wires a lossy profile through Listen and checks
// datagrams actually disappear (deterministically).
func TestListenWithNetFaults(t *testing.T) {
	m := telemetry.New()
	lossy, err := Listen("127.0.0.1:0",
		WithMetrics(m),
		WithNetFaults(&NetFaultProfile{Seed: 11, Drop: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	defer lossy.Close()
	sink, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	const n = 40
	for i := 0; i < n; i++ {
		if err := lossy.Send(sink.Addr(), &Goodbye{SessionID: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for {
		_, _, err := sink.Recv(100 * time.Millisecond)
		if errors.Is(err, ErrTimeout) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got++
	}
	dropped := int(m.Counter("netio.fault.dropped").Value())
	if dropped == 0 || got != n-dropped {
		t.Fatalf("received %d of %d with %d dropped", got, n, dropped)
	}
}
