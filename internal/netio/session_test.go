package netio

import (
	"errors"
	"reflect"
	"testing"
	"testing/quick"
)

// sessionMessages is one populated sample of every session-plane message.
func sessionMessages() []Message {
	return []Message{
		&Hello{Version: ProtocolVersion, TagID: 3, SessionID: 77, Seq: 12},
		&HelloAck{Code: HelloResume, SessionID: 77, NextRound: 5,
			HeartbeatMillis: 200, SessionTimeoutMillis: 2000, Reason: "welcome back"},
		&Heartbeat{SessionID: 77, Seq: 9, Echo: true, RTTNanos: 1234567},
		&SubmitRound{SessionID: 77, Seq: 13, Round: 5, BitCount: 5, Bits: []byte{0b10110000}},
		&RoundResult{SessionID: 77, Round: 5, Status: RoundOK, Outcome: Outcome{
			DownlinkPayload: []byte{0xAA, 0x55},
			DetectionRange:  4.972, DetectionBin: 12, DetectionSNRdB: 33.1,
			UplinkBits: []bool{true, false, true, true},
			UplinkErr:  "radar: weak tone",
		}},
		&Goodbye{SessionID: 77, Seq: 14},
		&Evict{SessionID: 77, Reason: "heartbeat deadline passed"},
	}
}

func TestSessionMessagesRoundTrip(t *testing.T) {
	for _, m := range sessionMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%v round trip:\nsent %+v\ngot  %+v", m.Type(), m, got)
		}
	}
}

// TestSessionMessagesTruncation chops every prefix off every session
// message: the decoder must reject each one (the CRC check catches most;
// the length checks catch the rest) and never panic.
func TestSessionMessagesTruncation(t *testing.T) {
	for _, m := range sessionMessages() {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(buf); n++ {
			if _, err := Unmarshal(buf[:n]); err == nil {
				t.Fatalf("%v truncated to %d/%d bytes still parsed", m.Type(), n, len(buf))
			}
		}
	}
}

// TestSessionMessagesCorruption flips single bits across every session
// message: every flip must be rejected (CRC over everything past the
// magic; magic flips fail the magic check).
func TestSessionMessagesCorruption(t *testing.T) {
	for _, m := range sessionMessages() {
		good, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		f := func(pos uint16, bit uint8) bool {
			buf := append([]byte(nil), good...)
			buf[int(pos)%len(buf)] ^= 1 << (bit % 8)
			_, err := Unmarshal(buf)
			return err != nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
	}
}

// TestSessionPayloadTrailingBytesRejected pins the exact-consumption rule:
// a session payload with extra bytes after its fields is truncated-class
// garbage, not silently accepted.
func TestSessionPayloadTrailingBytesRejected(t *testing.T) {
	g := &Goodbye{SessionID: 1, Seq: 2}
	if err := g.decodePayload(append(g.appendPayload(nil), 0xFF)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("trailing bytes: %v", err)
	}
	if err := g.decodePayload(g.appendPayload(nil)[:7]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short payload: %v", err)
	}
}

func TestSubmitRoundBitsRoundTrip(t *testing.T) {
	bits := []bool{true, false, false, true, true, false, true, false, true}
	s := &SubmitRound{SessionID: 1, Round: 3}
	s.SetBits(bits)
	buf, err := Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.(*SubmitRound).GetBits(), bits) {
		t.Fatalf("bits round trip: %v", got.(*SubmitRound).GetBits())
	}
	// An inconsistent bit count must be rejected.
	s.BitCount = 100
	buf, err = Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("bit count exceeding packed bytes should fail")
	}
}

func TestOutcomeEqual(t *testing.T) {
	a := Outcome{DownlinkPayload: []byte{1}, DetectionRange: 2.5, UplinkBits: []bool{true}}
	if !a.Equal(a) {
		t.Fatal("identical outcomes must be equal")
	}
	cases := []Outcome{
		{DownlinkPayload: []byte{2}, DetectionRange: 2.5, UplinkBits: []bool{true}},
		{DownlinkPayload: []byte{1}, DetectionRange: 2.6, UplinkBits: []bool{true}},
		{DownlinkPayload: []byte{1}, DetectionRange: 2.5, UplinkBits: []bool{false}},
		{DownlinkPayload: []byte{1}, DetectionRange: 2.5, UplinkBits: []bool{true, true}},
		{DownlinkPayload: []byte{1}, DetectionRange: 2.5, UplinkBits: []bool{true}, UplinkErr: "x"},
		{DownlinkPayload: []byte{1}, DetectionRange: 2.5, UplinkBits: []bool{true}, Err: "x"},
	}
	for i, b := range cases {
		if a.Equal(b) {
			t.Fatalf("case %d: outcomes must differ", i)
		}
	}
}

func TestSessionTypeStrings(t *testing.T) {
	want := map[MsgType]string{
		TypeHello: "hello", TypeHelloAck: "hello-ack", TypeHeartbeat: "heartbeat",
		TypeSubmitRound: "submit-round", TypeRoundResult: "round-result",
		TypeGoodbye: "goodbye", TypeEvict: "evict",
	}
	for typ, name := range want {
		if typ.String() != name {
			t.Fatalf("%d: got %q want %q", typ, typ.String(), name)
		}
	}
	if HelloAccept.String() != "accept" || HelloCode(9).String() != "HelloCode(9)" {
		t.Fatal("HelloCode strings")
	}
	if RoundOK.String() != "ok" || RoundStatus(9).String() != "RoundStatus(9)" {
		t.Fatal("RoundStatus strings")
	}
	if !HelloResume.Accepted() || HelloRejectVersion.Accepted() {
		t.Fatal("HelloCode.Accepted")
	}
}
