package netio

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func sampleDescriptor() *FrameDescriptor {
	return &FrameDescriptor{
		Sequence:       7,
		StartFrequency: 9e9,
		Bandwidth:      1e9,
		SampleRate:     4e6,
		Period:         120e-6,
		DownlinkSNRdB:  18.5,
		Durations:      []float64{20e-6, 96e-6, 33.3e-6},
	}
}

func TestMarshalUnmarshalAllTypes(t *testing.T) {
	msgs := []Message{
		sampleDescriptor(),
		&TagReport{Sequence: 9, TagID: 3, Status: StatusBadCRC, PeriodSamples: 119.97, Payload: []byte("hi")},
		&ModulationPlan{Sequence: 2, TagID: 1, F0: 2167, F1: 2333, ChirpsPerBit: 32, BitCount: 3, Bits: []byte{0b10100000}},
		&Command{TagID: 5, Op: OpSetModulation, Arg0: 2500, Arg1: 2667},
	}
	for _, m := range msgs {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
		got, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("%v: %v", m.Type(), err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%v round trip:\nsent %+v\ngot  %+v", m.Type(), m, got)
		}
	}
}

func TestUnmarshalRejectsBadInput(t *testing.T) {
	good, _ := Marshal(sampleDescriptor())

	if _, err := Unmarshal(good[:5]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short buffer: %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = 'X'
	if _, err := Unmarshal(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xFF // corrupt CRC
	if _, err := Unmarshal(bad); !errors.Is(err, ErrCRC) {
		t.Errorf("bad CRC: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[4] = 200 // unknown type; CRC must be fixed up to reach the type check
	fixCRC(bad)
	if _, err := Unmarshal(bad); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type: %v", err)
	}
	// Truncated payload with consistent header length field.
	bad = append([]byte(nil), good...)
	bad = bad[:len(bad)-8]
	if _, err := Unmarshal(bad); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated body: %v", err)
	}
}

// fixCRC recomputes the trailer after test mutations.
func fixCRC(buf []byte) {
	body := buf[4 : len(buf)-4]
	crc := crc32ChecksumIEEE(body)
	buf[len(buf)-4] = byte(crc >> 24)
	buf[len(buf)-3] = byte(crc >> 16)
	buf[len(buf)-2] = byte(crc >> 8)
	buf[len(buf)-1] = byte(crc)
}

func crc32ChecksumIEEE(b []byte) uint32 {
	// Thin indirection so the test does not import hash/crc32 with a
	// different table by accident.
	return crc32IEEE(b)
}

func TestCorruptionDetectedProperty(t *testing.T) {
	good, _ := Marshal(sampleDescriptor())
	f := func(pos uint16, bit uint8) bool {
		buf := append([]byte(nil), good...)
		p := int(pos) % len(buf)
		buf[p] ^= 1 << (bit % 8)
		m, err := Unmarshal(buf)
		if err != nil {
			return true // corruption detected
		}
		// A flip that still unmarshals must decode to a different message
		// only if it hit... actually CRC covers everything after magic, so
		// surviving flips can only hit the magic (making ErrBadMagic) —
		// reaching here with no error means the flip produced an identical
		// buffer, which a XOR cannot. Fail.
		_ = m
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalOversized(t *testing.T) {
	r := &TagReport{Payload: make([]byte, MaxPayload+1)}
	if _, err := Marshal(r); !errors.Is(err, ErrOversized) {
		t.Fatalf("expected ErrOversized, got %v", err)
	}
}

func TestFrameDescriptorEmptyDurations(t *testing.T) {
	fd := &FrameDescriptor{Sequence: 1}
	buf, err := Marshal(fd)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.(*FrameDescriptor).Durations) != 0 {
		t.Fatal("expected no durations")
	}
}

func TestModulationPlanBitsRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := make([]bool, int(n)%64)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		p := &ModulationPlan{TagID: 1, F0: 1e3, F1: 2e3, ChirpsPerBit: 16}
		p.SetBits(bits)
		buf, err := Marshal(p)
		if err != nil {
			return false
		}
		got, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		back := got.(*ModulationPlan).GetBits()
		if len(back) != len(bits) {
			return false
		}
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestModulationPlanBitCountValidation(t *testing.T) {
	p := &ModulationPlan{BitCount: 100, Bits: []byte{0}}
	buf, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(buf); err == nil {
		t.Fatal("bit count exceeding packed bytes should fail")
	}
}

func TestCommandCompactEncoding(t *testing.T) {
	c := Command{TagID: 3, Op: OpSetSymbolBits, Arg0: 6}
	body := c.Encode()
	got, err := DecodeCommand(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.TagID != 3 || got.Op != OpSetSymbolBits || got.Arg0 != 6 {
		t.Fatalf("round trip %+v", got)
	}
	if _, err := DecodeCommand([]byte{1}); !errors.Is(err, ErrTruncated) {
		t.Fatal("short command should fail")
	}
}

func TestMsgTypeAndStatusStrings(t *testing.T) {
	if TypeFrameDescriptor.String() != "frame-descriptor" || MsgType(99).String() != "MsgType(99)" {
		t.Fatal("MsgType strings")
	}
	if StatusOK.String() != "ok" || ReportStatus(9).String() != "ReportStatus(9)" {
		t.Fatal("ReportStatus strings")
	}
}

func TestUDPTransportRoundTrip(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	want := sampleDescriptor()
	if err := a.Send(b.Addr(), want); err != nil {
		t.Fatal(err)
	}
	got, from, err := b.Recv(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if from.Port != a.Addr().Port {
		t.Fatalf("sender port %d, want %d", from.Port, a.Addr().Port)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestUDPRecvTimeout(t *testing.T) {
	a, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	start := time.Now()
	_, _, err = a.Recv(50 * time.Millisecond)
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestUDPMalformedDatagramSurfacesError(t *testing.T) {
	a, _ := Listen("127.0.0.1:0")
	defer a.Close()
	b, _ := Listen("127.0.0.1:0")
	defer b.Close()
	// Raw garbage datagram.
	raw, err := Marshal(sampleDescriptor())
	if err != nil {
		t.Fatal(err)
	}
	raw[0] = 'Z'
	conn := a
	if _, err := rawSend(conn, b.Addr().String(), raw); err != nil {
		t.Fatal(err)
	}
	_, _, err = b.Recv(2 * time.Second)
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("expected ErrBadMagic, got %v", err)
	}
}

// rawSend pushes unvalidated bytes through the node's transport.
func rawSend(n *Node, addr string, buf []byte) (int, error) {
	ua, err := netResolve(addr)
	if err != nil {
		return 0, err
	}
	return n.tr.WriteTo(buf, ua)
}

func TestPayloadBytesAreCopied(t *testing.T) {
	buf, _ := Marshal(&TagReport{Payload: []byte{1, 2, 3}})
	m, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	r := m.(*TagReport)
	buf[HeaderSize+16] = 0xEE // mutate the wire buffer
	if !bytes.Equal(r.Payload, []byte{1, 2, 3}) {
		t.Fatal("decoded payload must not alias the wire buffer")
	}
}
