package netio

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"biscatter/internal/telemetry"
)

// Client defaults.
const (
	DefaultDialAttempts   = 10
	DefaultAttemptTimeout = 250 * time.Millisecond
	DefaultMaxAttempts    = 10
	DefaultBackoffFactor  = 1.5
	DefaultJitterFraction = 0.25
)

// ClientConfig parameterizes a tag-side session client.
type ClientConfig struct {
	// TagID identifies this tag to the gateway.
	TagID uint8
	// Version is the protocol version to speak (default ProtocolVersion).
	Version uint16
	// Seed keys the deterministic backoff jitter (the ARQ discipline:
	// splitmix64 over (seed, tag, attempt), so retry schedules replay
	// exactly per seed).
	Seed int64
	// DialAttempts bounds handshake retries.
	DialAttempts int
	// AttemptTimeout bounds one send-and-wait attempt before backing off
	// and retransmitting.
	AttemptTimeout time.Duration
	// MaxAttempts bounds retransmissions per submitted round.
	MaxAttempts int
	// BackoffFactor grows the inter-attempt backoff geometrically.
	BackoffFactor float64
	// JitterFraction spreads each backoff over [1-j, 1+j) deterministically.
	JitterFraction float64
	// HeartbeatInterval overrides the gateway-advertised interval when > 0.
	HeartbeatInterval time.Duration
	// Metrics receives netio.client.* counters (nil = disabled).
	Metrics *telemetry.Metrics
	// Logf, when set, receives session-event logs.
	Logf func(format string, args ...any)
}

func (c *ClientConfig) applyDefaults() {
	if c.Version == 0 {
		c.Version = ProtocolVersion
	}
	if c.DialAttempts <= 0 {
		c.DialAttempts = DefaultDialAttempts
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = DefaultAttemptTimeout
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = DefaultMaxAttempts
	}
	if c.BackoffFactor <= 1 {
		c.BackoffFactor = DefaultBackoffFactor
	}
	if c.JitterFraction < 0 {
		c.JitterFraction = DefaultJitterFraction
	}
}

// ErrRejected means the gateway refused the handshake (e.g. protocol
// version mismatch); retrying will not help.
var ErrRejected = errors.New("netio: handshake rejected")

// Client is the tag side of a gateway session: it dials with retry, submits
// uplink bits round by round with the ARQ retransmission discipline
// (geometric backoff under deterministic splitmix64 jitter, context
// deadline propagation), heartbeats inside its receive waits, and — when
// the gateway evicts it — re-handshakes and resumes at the gateway's next
// round instead of crashing the tag. Single-threaded: one goroutine owns
// the Client and its Conn.
type Client struct {
	conn Conn
	cfg  ClientConfig
	gw   *net.UDPAddr

	sid     uint64
	seq     uint64
	round   uint64
	hb      time.Duration
	hbSeq   uint64
	lastHB  time.Time
	pingAt  map[uint64]time.Time
	lastRTT time.Duration

	cRetries, cReconnects, cEvicted *telemetry.Counter
	hRTT                            *telemetry.Histogram
}

// Dial opens a session with the gateway at addr over conn (which the
// caller owns and keeps). It retries the handshake DialAttempts times with
// jittered backoff before giving up.
func Dial(conn Conn, addr string, cfg ClientConfig) (*Client, error) {
	cfg.applyDefaults()
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("netio: resolve gateway %q: %w", addr, err)
	}
	c := &Client{conn: conn, cfg: cfg, gw: ua, pingAt: make(map[uint64]time.Time)}
	if m := cfg.Metrics; m != nil {
		c.cRetries = m.Counter("netio.client.retries")
		c.cReconnects = m.Counter("netio.client.reconnects")
		c.cEvicted = m.Counter("netio.client.evicted")
		c.hRTT = m.Histogram("netio.client.heartbeat.rtt_seconds")
	}
	if err := c.handshake(context.Background()); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// SessionID returns the current session identity.
func (c *Client) SessionID() uint64 { return c.sid }

// Round returns the next round the client will submit.
func (c *Client) Round() uint64 { return c.round }

// handshake performs the hello exchange, adopting the gateway's session
// parameters on success. A nonzero c.sid asks the gateway to resume.
func (c *Client) handshake(ctx context.Context) error {
	for attempt := 0; attempt < c.cfg.DialAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.seq++
		hello := &Hello{Version: c.cfg.Version, TagID: c.cfg.TagID, SessionID: c.sid, Seq: c.seq}
		if err := c.conn.Send(c.gw, hello); err != nil {
			return err
		}
		deadline := time.Now().Add(c.cfg.AttemptTimeout)
		for {
			wait := time.Until(deadline)
			if wait <= 0 {
				break
			}
			m, _, err := c.conn.Recv(wait)
			if err != nil {
				if errors.Is(err, ErrTimeout) {
					break
				}
				if errors.Is(err, ErrClosed) {
					return err
				}
				continue // malformed datagram: keep waiting
			}
			ack, ok := m.(*HelloAck)
			if !ok {
				continue // stale traffic from a previous session
			}
			if ack.Code == HelloQueued {
				// Parked in the gateway's admission queue: back off and
				// retry the handshake; DialAttempts bounds the total wait.
				c.logf("client %d: queued for admission (%s)", c.cfg.TagID, ack.Reason)
				break
			}
			if !ack.Code.Accepted() {
				return fmt.Errorf("%w: %v (%s)", ErrRejected, ack.Code, ack.Reason)
			}
			c.sid = ack.SessionID
			if ack.NextRound > c.round {
				c.round = ack.NextRound
			}
			c.hb = c.cfg.HeartbeatInterval
			if c.hb <= 0 {
				c.hb = time.Duration(ack.HeartbeatMillis) * time.Millisecond
			}
			if c.hb <= 0 {
				c.hb = DefaultHeartbeatInterval
			}
			c.lastHB = time.Now()
			c.logf("client %d: session %d %v (next round %d)", c.cfg.TagID, c.sid, ack.Code, c.round)
			return nil
		}
		c.sleep(ctx, c.backoff(attempt))
	}
	return fmt.Errorf("netio: gateway %v unreachable after %d attempts", c.gw, c.cfg.DialAttempts)
}

// backoff computes the ARQ-style jittered geometric backoff for attempt,
// capped at 4× the attempt timeout. The cap is what keeps a large fleet
// stable: uncapped geometric growth puts a tag to sleep for minutes after a
// dozen lossy attempts — long past the gateway's liveness deadline (no
// heartbeats are sent mid-backoff), so the session gets evicted and the
// whole round barrier stalls behind the re-handshake.
func (c *Client) backoff(attempt int) time.Duration {
	nominal := float64(c.cfg.AttemptTimeout) / 4
	cap := float64(c.cfg.AttemptTimeout) * 4
	for i := 0; i < attempt && nominal < cap; i++ {
		nominal *= c.cfg.BackoffFactor
	}
	if nominal > cap {
		nominal = cap
	}
	j := c.cfg.JitterFraction
	if j == 0 {
		return time.Duration(nominal)
	}
	h := netHashBits(c.cfg.Seed, uint64(c.cfg.TagID)<<10, uint64(attempt))
	frac := float64(h>>11) / (1 << 53)
	return time.Duration(nominal * (1 - j + 2*j*frac))
}

func (c *Client) sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// maybeHeartbeat sends a liveness ping when the interval has elapsed,
// piggybacking the last measured RTT for the gateway's histogram.
func (c *Client) maybeHeartbeat(now time.Time) {
	if now.Sub(c.lastHB) < c.hb {
		return
	}
	c.lastHB = now
	c.hbSeq++
	c.pingAt[c.hbSeq] = now
	// Bound the in-flight ping table: drop ancient unanswered pings.
	for seq := range c.pingAt {
		if seq+16 < c.hbSeq {
			delete(c.pingAt, seq)
		}
	}
	hb := &Heartbeat{SessionID: c.sid, Seq: c.hbSeq, RTTNanos: uint64(c.lastRTT)}
	if err := c.conn.Send(c.gw, hb); err != nil {
		c.logf("client %d: heartbeat send: %v", c.cfg.TagID, err)
	}
}

// SubmitRound submits this tag's uplink bits for the client's current
// round and waits for the gateway's result, retransmitting with jittered
// geometric backoff and heartbeating while it waits. ctx bounds the whole
// call. An eviction triggers a transparent re-handshake; if the fleet moved
// on past this round while the client was gone, SubmitRound returns a
// RoundSkipped result instead of an error so callers can advance.
func (c *Client) SubmitRound(ctx context.Context, bits []bool) (*RoundResult, error) {
	round := c.round
	sub := &SubmitRound{}
	sub.SetBits(bits)
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 {
			c.cRetries.Inc()
		}
		if round < c.round {
			// A reconnect during a previous attempt moved the session past
			// this round: the fleet exchanged without us.
			return &RoundResult{SessionID: c.sid, Round: round, Status: RoundSkipped}, nil
		}
		c.seq++
		sub.SessionID, sub.Seq, sub.Round = c.sid, c.seq, round
		if err := c.conn.Send(c.gw, sub); err != nil {
			return nil, err
		}
		rr, err := c.await(ctx, round)
		if err != nil {
			return nil, err
		}
		if rr != nil {
			c.round = round + 1
			return rr, nil
		}
		c.sleep(ctx, c.backoff(attempt))
	}
	return nil, fmt.Errorf("netio: round %d unanswered after %d attempts", round, c.cfg.MaxAttempts)
}

// await waits one AttemptTimeout for the result of round, servicing
// heartbeats, echoes and evictions meanwhile. A nil, nil return means the
// attempt timed out and the caller should retransmit.
func (c *Client) await(ctx context.Context, round uint64) (*RoundResult, error) {
	deadline := time.Now().Add(c.cfg.AttemptTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		now := time.Now()
		c.maybeHeartbeat(now)
		wait := time.Until(deadline)
		if wait <= 0 {
			return nil, nil
		}
		if hbDue := c.hb - now.Sub(c.lastHB); hbDue > 0 && hbDue < wait {
			wait = hbDue
		}
		m, _, err := c.conn.Recv(wait)
		if err != nil {
			if errors.Is(err, ErrTimeout) {
				continue
			}
			if errors.Is(err, ErrClosed) {
				return nil, err
			}
			continue // malformed datagram (e.g. fault-corrupted): retransmission covers it
		}
		switch msg := m.(type) {
		case *RoundResult:
			if msg.SessionID == c.sid && msg.Round == round {
				return msg, nil
			}
			// A stale round's (duplicated) result: ignore.
		case *Heartbeat:
			c.handleEcho(now, msg)
		case *Evict:
			if msg.SessionID != c.sid {
				continue
			}
			c.cEvicted.Inc()
			c.logf("client %d: evicted (%s), re-handshaking", c.cfg.TagID, msg.Reason)
			if err := c.reconnect(ctx); err != nil {
				return nil, err
			}
			// Resend promptly under the new session; the round-skew check
			// at the top of the attempt loop handles a moved-on fleet.
			return nil, nil
		case *HelloAck:
			// Duplicate of the handshake ack: ignore.
		default:
			c.logf("client %d: unexpected %v", c.cfg.TagID, m.Type())
		}
	}
}

// handleEcho closes the RTT loop for a heartbeat echo.
func (c *Client) handleEcho(now time.Time, msg *Heartbeat) {
	if !msg.Echo || msg.SessionID != c.sid {
		return
	}
	if at, ok := c.pingAt[msg.Seq]; ok {
		c.lastRTT = now.Sub(at)
		c.hRTT.Observe(c.lastRTT.Seconds())
		delete(c.pingAt, msg.Seq)
	}
}

// Wait keeps the session alive while the tag has nothing to submit: it
// heartbeats at the session interval until d elapses (or ctx is done),
// servicing echoes and evictions meanwhile. A tag process idling between
// rounds calls this instead of sleeping so the gateway's liveness deadline
// never passes.
func (c *Client) Wait(ctx context.Context, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		now := time.Now()
		if !now.Before(deadline) {
			return nil
		}
		c.maybeHeartbeat(now)
		wait := time.Until(deadline)
		if hbDue := c.hb - now.Sub(c.lastHB); hbDue > 0 && hbDue < wait {
			wait = hbDue
		}
		m, _, err := c.conn.Recv(wait)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return err
			}
			continue
		}
		switch msg := m.(type) {
		case *Heartbeat:
			c.handleEcho(now, msg)
		case *Evict:
			if msg.SessionID != c.sid {
				continue
			}
			c.cEvicted.Inc()
			c.logf("client %d: evicted while idle (%s), re-handshaking", c.cfg.TagID, msg.Reason)
			if err := c.reconnect(ctx); err != nil {
				return err
			}
		}
	}
}

// reconnect re-handshakes after an eviction, resuming at the gateway's
// current round.
func (c *Client) reconnect(ctx context.Context) error {
	c.cReconnects.Inc()
	c.sid = 0 // the old session is gone; ask for a fresh one
	return c.handshake(ctx)
}

// Close says Goodbye. The caller still owns (and closes) the Conn.
func (c *Client) Close() error {
	c.seq++
	return c.conn.Send(c.gw, &Goodbye{SessionID: c.sid, Seq: c.seq})
}
