package netio

import (
	"testing"
)

// FuzzUnmarshal throws arbitrary bytes at the wire decoder: it must never
// panic, and anything it accepts must re-marshal losslessly.
func FuzzUnmarshal(f *testing.F) {
	// Seed corpus: every valid message type plus truncations.
	seeds := []Message{
		&FrameDescriptor{Sequence: 1, StartFrequency: 9e9, Bandwidth: 1e9,
			SampleRate: 4e6, Period: 120e-6, DownlinkSNRdB: 20,
			Durations: []float64{20e-6, 96e-6}},
		&TagReport{Sequence: 2, TagID: 1, Status: StatusOK, Payload: []byte{1, 2, 3}},
		&ModulationPlan{Sequence: 3, TagID: 2, F0: 1250, F1: 1770,
			ChirpsPerBit: 32, BitCount: 5, Bits: []byte{0b10110000}},
		&Command{TagID: 1, Op: OpSetModulation, Arg0: 2500, Arg1: 3020},
		// Session plane.
		&Hello{Version: ProtocolVersion, TagID: 4, SessionID: 9, Seq: 2},
		&HelloAck{Code: HelloAccept, SessionID: 9, NextRound: 1,
			HeartbeatMillis: 200, SessionTimeoutMillis: 2000, Reason: "r"},
		&Heartbeat{SessionID: 9, Seq: 3, Echo: true, RTTNanos: 99},
		&SubmitRound{SessionID: 9, Seq: 4, Round: 1, BitCount: 3, Bits: []byte{0b10100000}},
		&RoundResult{SessionID: 9, Round: 1, Status: RoundOK, Outcome: Outcome{
			DownlinkPayload: []byte{7}, DetectionRange: 4.9, DetectionBin: 3,
			DetectionSNRdB: 31, UplinkBits: []bool{true, false}, UplinkErr: "e"}},
		&Goodbye{SessionID: 9, Seq: 5},
		&Evict{SessionID: 9, Reason: "gone"},
	}
	for _, m := range seeds {
		buf, err := Marshal(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		f.Add(buf[:len(buf)/2])
	}
	f.Add([]byte{})
	f.Add([]byte("BSC1"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted input must survive a marshal/unmarshal round trip.
		out, err := Marshal(m)
		if err != nil {
			t.Fatalf("accepted message failed to re-marshal: %v", err)
		}
		if _, err := Unmarshal(out); err != nil {
			t.Fatalf("re-marshaled message failed to parse: %v", err)
		}
	})
}
