package netio

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"biscatter/internal/telemetry"
)

// echoExchange is a fake ExchangeFunc: each tag's outcome echoes its
// submitted bits and stamps the round into the detection bin.
func echoExchange(round uint64, bits map[uint8][]bool) (map[uint8]Outcome, error) {
	out := make(map[uint8]Outcome, len(bits))
	for tagID, b := range bits {
		out[tagID] = Outcome{
			DownlinkPayload: []byte{byte(round), tagID},
			DetectionBin:    int32(round),
			UplinkBits:      append([]bool(nil), b...),
		}
	}
	return out, nil
}

// testGateway boots a loopback gateway and returns its node, metrics and a
// cancel+wait function.
func testGateway(t *testing.T, cfg GatewayConfig, fn ExchangeFunc) (*Node, *telemetry.Metrics, func() error) {
	t.Helper()
	m := telemetry.New()
	node, err := Listen("127.0.0.1:0", WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Metrics = m
	cfg.Poll = 5 * time.Millisecond
	gw := NewGateway(node, cfg, fn)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	errc := make(chan error, 1)
	go func() { errc <- gw.Run(ctx) }()
	stop := func() error {
		defer node.Close()
		defer cancel()
		select {
		case err := <-errc:
			return err
		case <-time.After(30 * time.Second):
			cancel()
			return errors.New("gateway did not exit")
		}
	}
	return node, m, stop
}

func dialTag(t *testing.T, gw *net.UDPAddr, tagID uint8, cfg ClientConfig) (*Client, *Node) {
	t.Helper()
	conn, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.TagID = tagID
	if cfg.AttemptTimeout == 0 {
		cfg.AttemptTimeout = 500 * time.Millisecond
	}
	c, err := Dial(conn, gw.String(), cfg)
	if err != nil {
		conn.Close()
		t.Fatal(err)
	}
	return c, conn
}

// TestGatewayServesRounds drives two clients through three rounds and pins
// outcomes, round completion and the session lifecycle counters.
func TestGatewayServesRounds(t *testing.T) {
	node, m, stop := testGateway(t, GatewayConfig{
		MinSessions: 2, Rounds: 3,
		RoundTimeout: 2 * time.Second, SessionTimeout: 10 * time.Second,
	}, echoExchange)

	var wg sync.WaitGroup
	tagErr := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tagID := uint8(i + 1)
			c, conn := dialTag(t, node.Addr(), tagID, ClientConfig{Seed: int64(i)})
			defer conn.Close()
			for round := uint64(0); round < 3; round++ {
				bits := []bool{round%2 == 0, i == 0, true}
				rr, err := c.SubmitRound(context.Background(), bits)
				if err != nil {
					tagErr[i] = err
					return
				}
				if rr.Status != RoundOK {
					tagErr[i] = fmt.Errorf("round %d: status %v", round, rr.Status)
					return
				}
				want := Outcome{DownlinkPayload: []byte{byte(round), tagID},
					DetectionBin: int32(round), UplinkBits: bits}
				if !rr.Outcome.Equal(want) {
					tagErr[i] = fmt.Errorf("round %d outcome %+v, want %+v", round, rr.Outcome, want)
					return
				}
			}
			tagErr[i] = c.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range tagErr {
		if err != nil {
			t.Fatalf("tag %d: %v", i+1, err)
		}
	}
	if err := stop(); err != nil {
		t.Fatalf("gateway: %v", err)
	}
	if got := m.Counter("netio.rounds").Value(); got != 3 {
		t.Errorf("netio.rounds = %d, want 3", got)
	}
	if got := m.Counter("netio.sessions.accepted").Value(); got != 2 {
		t.Errorf("netio.sessions.accepted = %d, want 2", got)
	}
	if got := m.Counter("netio.goodbye").Value(); got != 2 {
		t.Errorf("netio.goodbye = %d, want 2", got)
	}
	if got := m.Gauge("netio.sessions").Value(); got != 0 {
		t.Errorf("netio.sessions gauge = %v, want 0", got)
	}
}

// TestGatewayVersionReject pins the handshake protocol-version check.
func TestGatewayVersionReject(t *testing.T) {
	node, m, stop := testGateway(t, GatewayConfig{}, echoExchange)
	conn, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = Dial(conn, node.Addr().String(), ClientConfig{
		TagID: 1, Version: 99, AttemptTimeout: 500 * time.Millisecond})
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("want ErrRejected, got %v", err)
	}
	node.Close()
	if err := stop(); !errors.Is(err, ErrClosed) {
		t.Fatalf("gateway exit: %v", err)
	}
	if got := m.Counter("netio.sessions.rejected").Value(); got == 0 {
		t.Error("netio.sessions.rejected not counted")
	}
}

// TestGatewayHeartbeatKeepsSessionAlive pins liveness: a client that only
// heartbeats (never submits) survives past SessionTimeout, and its reported
// RTT lands in the gateway histogram.
func TestGatewayHeartbeatKeepsSessionAlive(t *testing.T) {
	node, m, stop := testGateway(t, GatewayConfig{
		SessionTimeout:    400 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
	}, echoExchange)
	defer stop()
	defer node.Close()

	c, conn := dialTag(t, node.Addr(), 1, ClientConfig{})
	defer conn.Close()
	// Idle for 2× the session timeout, heartbeating the whole way (await
	// with no submission in flight: drive heartbeats manually).
	deadline := time.Now().Add(800 * time.Millisecond)
	for time.Now().Before(deadline) {
		c.maybeHeartbeat(time.Now())
		m2, _, err := conn.Recv(25 * time.Millisecond)
		if err != nil {
			continue
		}
		if hb, ok := m2.(*Heartbeat); ok && hb.Echo {
			if at, ok := c.pingAt[hb.Seq]; ok {
				c.lastRTT = time.Since(at)
				delete(c.pingAt, hb.Seq)
			}
		}
	}
	if got := m.Counter("netio.evicted").Value(); got != 0 {
		t.Fatalf("heartbeating session evicted (%d)", got)
	}
	if m.Histogram("netio.heartbeat.rtt_seconds").Count() == 0 {
		t.Fatal("no heartbeat RTTs observed")
	}
	if got := m.Gauge("netio.sessions").Value(); got != 1 {
		t.Fatalf("netio.sessions gauge = %v, want 1", got)
	}
}

// TestGatewayEvictsSilentSession pins deadline-based eviction and its
// observability (counter + flight recorder).
func TestGatewayEvictsSilentSession(t *testing.T) {
	flight := telemetry.NewFlightRecorder(8)
	node, m, stop := testGateway(t, GatewayConfig{
		SessionTimeout: 200 * time.Millisecond,
		Flight:         flight,
	}, echoExchange)
	defer stop()
	defer node.Close()

	_, conn := dialTag(t, node.Addr(), 1, ClientConfig{})
	defer conn.Close()
	// Go silent; the gateway must evict.
	deadline := time.Now().Add(5 * time.Second)
	for m.Counter("netio.evicted").Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := m.Counter("netio.evicted").Value(); got != 1 {
		t.Fatalf("netio.evicted = %d, want 1", got)
	}
	if flight.Trips() == 0 {
		t.Fatal("eviction did not trip the flight recorder")
	}
	if got := m.Gauge("netio.sessions").Value(); got != 0 {
		t.Fatalf("netio.sessions gauge = %v, want 0", got)
	}
	// The evicted client's next submission is told to re-handshake.
	m2, _, err := conn.Recv(time.Second)
	for err == nil {
		if _, ok := m2.(*Evict); ok {
			break
		}
		m2, _, err = conn.Recv(time.Second)
	}
	if err != nil {
		t.Fatalf("no Evict notification: %v", err)
	}
}

// TestGatewayBreakerQuarantine pins the per-session circuit breaker: a tag
// that stops submitting is struck out of the barrier so the rest of the
// fleet keeps exchanging, and its comeback submission is the half-open
// probe that closes the breaker.
func TestGatewayBreakerQuarantine(t *testing.T) {
	flight := telemetry.NewFlightRecorder(8)
	node, m, stop := testGateway(t, GatewayConfig{
		MinSessions: 2, Rounds: 4,
		RoundTimeout:     150 * time.Millisecond,
		BreakerThreshold: 1,
		SessionTimeout:   time.Minute, // eviction out of the picture
		Flight:           flight,
	}, echoExchange)

	slow, slowConn := dialTag(t, node.Addr(), 1, ClientConfig{})
	defer slowConn.Close()
	fast, fastConn := dialTag(t, node.Addr(), 2, ClientConfig{})
	defer fastConn.Close()

	ctx := context.Background()
	// Round 0: both submit.
	if _, err := submitBoth(ctx, slow, fast); err != nil {
		t.Fatal(err)
	}
	// Rounds 1–2: only the fast tag submits; each runs after RoundTimeout.
	// The first miss opens the slow tag's breaker (threshold 1); round 2
	// must then run immediately off the fast tag's submission alone.
	r1start := time.Now()
	for round := 2; round <= 3; round++ {
		rr, err := fast.SubmitRound(ctx, []bool{true})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if rr.Status != RoundOK {
			t.Fatalf("round %d: status %v", round, rr.Status)
		}
	}
	quarantined := time.Since(r1start)
	if m.Counter("netio.breaker.open").Value() != 1 {
		t.Fatalf("netio.breaker.open = %d, want 1", m.Counter("netio.breaker.open").Value())
	}
	if flight.Trips() == 0 {
		t.Fatal("breaker opening did not trip the flight recorder")
	}
	// Round 3: the slow tag comes back — its stale rounds answer from
	// cache/skip markers until it reaches the current round, where its
	// submission is the half-open probe.
	for slow.Round() < 3 {
		rr, err := slow.SubmitRound(ctx, []bool{false})
		if err != nil {
			t.Fatal(err)
		}
		if rr.Status != RoundSkipped {
			t.Fatalf("stale round %d: status %v, want skipped", rr.Round, rr.Status)
		}
	}
	if _, err := submitBoth(ctx, slow, fast); err != nil {
		t.Fatal(err)
	}
	if m.Counter("netio.breaker.close").Value() != 1 {
		t.Fatalf("netio.breaker.close = %d, want 1", m.Counter("netio.breaker.close").Value())
	}
	slow.Close()
	fast.Close()
	if err := stop(); err != nil {
		t.Fatalf("gateway: %v", err)
	}
	// The quarantined rounds must not each have waited the full barrier
	// timeout twice over (the breaker removed the slow tag from the
	// barrier). Generous bound: 2 rounds under 4 timeouts.
	if quarantined > 600*time.Millisecond {
		t.Errorf("quarantined rounds took %v — breaker did not shorten the barrier", quarantined)
	}
}

// submitBoth submits one round from both clients, a first (a quarantined
// tag's probe must land before the barrier stops waiting for it; the
// barrier then holds the round for b, which is a Closed-breaker session).
func submitBoth(ctx context.Context, a, b *Client) ([2]*RoundResult, error) {
	var out [2]*RoundResult
	var errA error
	done := make(chan struct{})
	go func() {
		defer close(done)
		out[0], errA = a.SubmitRound(ctx, []bool{true})
	}()
	time.Sleep(50 * time.Millisecond)
	rr, err := b.SubmitRound(ctx, []bool{false})
	<-done
	if errA != nil {
		return out, errA
	}
	if err != nil {
		return out, err
	}
	out[1] = rr
	if out[0].Status != RoundOK || out[1].Status != RoundOK {
		return out, fmt.Errorf("statuses %v/%v, want ok/ok", out[0].Status, out[1].Status)
	}
	return out, nil
}

// TestGatewaySessionResume pins resumable session state: a client killed
// without Goodbye re-dials with the same tag ID and picks up at the
// gateway's current round.
func TestGatewaySessionResume(t *testing.T) {
	node, m, stop := testGateway(t, GatewayConfig{
		MinSessions: 1, Rounds: 2,
		RoundTimeout:   100 * time.Millisecond,
		SessionTimeout: time.Minute,
	}, echoExchange)

	c1, conn1 := dialTag(t, node.Addr(), 7, ClientConfig{})
	if _, err := c1.SubmitRound(context.Background(), []bool{true}); err != nil {
		t.Fatal(err)
	}
	conn1.Close() // kill the tag process: no Goodbye

	c2, conn2 := dialTag(t, node.Addr(), 7, ClientConfig{})
	defer conn2.Close()
	if c2.Round() != 1 {
		t.Fatalf("resumed client starts at round %d, want 1", c2.Round())
	}
	rr, err := c2.SubmitRound(context.Background(), []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Status != RoundOK || rr.Round != 1 {
		t.Fatalf("resumed round: %+v", rr)
	}
	c2.Close()
	if err := stop(); err != nil {
		t.Fatalf("gateway: %v", err)
	}
	if got := m.Counter("netio.sessions.replaced").Value(); got != 1 {
		t.Errorf("netio.sessions.replaced = %d, want 1", got)
	}
}

// TestGatewayBackpressure pins the reject-or-wait send queue discipline
// without a network: a blocked sender fills the bounded queue and further
// enqueues reject (and count).
func TestGatewayBackpressure(t *testing.T) {
	m := telemetry.New()
	block := make(chan struct{})
	conn := &blockingConn{block: block}
	g := NewGateway(conn, GatewayConfig{QueueDepth: 2, Metrics: m}, echoExchange)
	s := g.newSession(1, &net.UDPAddr{})

	// First message is picked up by the sender and blocks in Send; the
	// next two fill the queue; the fourth must reject.
	ok := 0
	for i := 0; i < 4; i++ {
		if g.enqueue(s, &Heartbeat{Seq: uint64(i)}) {
			ok++
		}
		if i == 0 {
			waitFor(t, func() bool { return conn.sending.Load() })
		}
	}
	if ok != 3 {
		t.Fatalf("%d enqueues accepted, want 3 (1 in-flight + 2 queued)", ok)
	}
	if got := m.Counter("netio.send.rejected").Value(); got != 1 {
		t.Fatalf("netio.send.rejected = %d, want 1", got)
	}
	close(block)
	g.dropSession(s)
}

// blockingConn stalls every Send until its gate opens.
type blockingConn struct {
	block   chan struct{}
	sending atomic.Bool
}

func (b *blockingConn) Send(*net.UDPAddr, Message) error {
	b.sending.Store(true)
	<-b.block
	return nil
}
func (b *blockingConn) Recv(time.Duration) (Message, *net.UDPAddr, error) {
	return nil, nil, ErrTimeout
}
func (b *blockingConn) Addr() *net.UDPAddr { return &net.UDPAddr{} }
func (b *blockingConn) Close() error       { return nil }

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
