package netio

import (
	"flag"
	"testing"
)

// TestServiceFlagParity pins that both binaries' FlagSets (each built
// through RegisterServiceFlags, as biscatter-radar and biscatter-tag do)
// expose identical shared flags: same names, defaults and usage.
func TestServiceFlagParity(t *testing.T) {
	radar := flag.NewFlagSet("biscatter-radar", flag.ContinueOnError)
	tag := flag.NewFlagSet("biscatter-tag", flag.ContinueOnError)
	RegisterServiceFlags(radar)
	RegisterServiceFlags(tag)
	RegisterNetFaultFlags(radar)
	RegisterNetFaultFlags(tag)

	for _, name := range []string{
		"listen", "connect", "heartbeat", "session-timeout",
		"net-seed", "net-drop", "net-duplicate", "net-reorder",
		"net-corrupt", "net-delay", "net-max-delay",
	} {
		rf, tf := radar.Lookup(name), tag.Lookup(name)
		if rf == nil || tf == nil {
			t.Fatalf("flag -%s missing (radar=%v tag=%v)", name, rf != nil, tf != nil)
		}
		if rf.DefValue != tf.DefValue {
			t.Errorf("-%s default differs: radar %q, tag %q", name, rf.DefValue, tf.DefValue)
		}
		if rf.Usage != tf.Usage {
			t.Errorf("-%s usage differs: radar %q, tag %q", name, rf.Usage, tf.Usage)
		}
	}
}

// TestServiceFlagParsing checks values land in the struct.
func TestServiceFlagParsing(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	sf := RegisterServiceFlags(fs)
	if err := fs.Parse([]string{"-listen", "127.0.0.1:9100", "-heartbeat", "150ms", "-session-timeout", "3s"}); err != nil {
		t.Fatal(err)
	}
	if sf.Listen != "127.0.0.1:9100" || sf.Heartbeat.String() != "150ms" || sf.SessionTimeout.String() != "3s" {
		t.Fatalf("parsed %+v", sf)
	}
	if sf.Connect != "" {
		t.Fatalf("connect default should be empty, got %q", sf.Connect)
	}
}
