package netio

import (
	"flag"
	"testing"
)

// TestServiceFlagParity pins that all three binaries' FlagSets (each built
// through RegisterServiceFlags, as biscatter-radar, biscatter-tag and
// biscatter-sim do) expose identical shared flags: same names, defaults
// and usage — including the transport, admission and frame-scheduling
// flags the scaled gateway added.
func TestServiceFlagParity(t *testing.T) {
	sets := map[string]*flag.FlagSet{
		"biscatter-radar": flag.NewFlagSet("biscatter-radar", flag.ContinueOnError),
		"biscatter-tag":   flag.NewFlagSet("biscatter-tag", flag.ContinueOnError),
		"biscatter-sim":   flag.NewFlagSet("biscatter-sim", flag.ContinueOnError),
	}
	for _, fs := range sets {
		RegisterServiceFlags(fs)
		RegisterNetFaultFlags(fs)
	}
	ref := sets["biscatter-radar"]

	for _, name := range []string{
		"listen", "connect", "heartbeat", "session-timeout",
		"transport", "admission", "frame-capacity", "frame-timeout",
		"net-seed", "net-drop", "net-duplicate", "net-reorder",
		"net-corrupt", "net-delay", "net-max-delay",
	} {
		rf := ref.Lookup(name)
		if rf == nil {
			t.Fatalf("flag -%s missing from reference set", name)
		}
		for bin, fs := range sets {
			f := fs.Lookup(name)
			if f == nil {
				t.Fatalf("flag -%s missing from %s", name, bin)
			}
			if f.DefValue != rf.DefValue {
				t.Errorf("-%s default differs: %s %q, reference %q", name, bin, f.DefValue, rf.DefValue)
			}
			if f.Usage != rf.Usage {
				t.Errorf("-%s usage differs: %s %q, reference %q", name, bin, f.Usage, rf.Usage)
			}
		}
	}
}

// TestServiceFlagParsing checks values land in the struct.
func TestServiceFlagParsing(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	sf := RegisterServiceFlags(fs)
	if err := fs.Parse([]string{
		"-listen", "127.0.0.1:9100", "-heartbeat", "150ms", "-session-timeout", "3s",
		"-transport", "tcp", "-admission", "spill", "-frame-capacity", "4", "-frame-timeout", "500ms",
	}); err != nil {
		t.Fatal(err)
	}
	if sf.Listen != "127.0.0.1:9100" || sf.Heartbeat.String() != "150ms" || sf.SessionTimeout.String() != "3s" {
		t.Fatalf("parsed %+v", sf)
	}
	if sf.Transport != TransportTCP || sf.Admission != "spill" || sf.FrameCapacity != 4 || sf.FrameTimeout.String() != "500ms" {
		t.Fatalf("parsed %+v", sf)
	}
	if sf.Connect != "" {
		t.Fatalf("connect default should be empty, got %q", sf.Connect)
	}
	if p, err := ParseAdmissionPolicy(sf.Admission); err != nil || p != AdmitSpill {
		t.Fatalf("ParseAdmissionPolicy(%q) = %v, %v", sf.Admission, p, err)
	}
}

// TestServiceFlagDefaults pins that a default parse yields the UDP
// transport and the reject admission policy — the pre-scaling behavior.
func TestServiceFlagDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	sf := RegisterServiceFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if sf.Transport != TransportUDP {
		t.Fatalf("default transport %q, want %q", sf.Transport, TransportUDP)
	}
	p, err := ParseAdmissionPolicy(sf.Admission)
	if err != nil || p != AdmitReject {
		t.Fatalf("default admission %q → %v, %v", sf.Admission, p, err)
	}
	if sf.FrameCapacity != 0 || sf.FrameTimeout != 0 {
		t.Fatalf("frame defaults %+v", sf)
	}
	if _, err := ParseAdmissionPolicy("bogus"); err == nil {
		t.Fatal("ParseAdmissionPolicy accepted bogus policy")
	}
}
