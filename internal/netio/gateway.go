package netio

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"biscatter/internal/mac"
	"biscatter/internal/telemetry"
)

// ExchangeFunc runs one exchange round for the submitted tags and returns a
// per-tag outcome digest. The gateway owns round sequencing and session
// supervision; the function owns the physics (in production it drives
// core.Network.Exchange through an ExchangeRecorder — see
// core.NewGatewayHandler). Called from the gateway's single supervision
// goroutine, never concurrently.
type ExchangeFunc func(round uint64, uplinkBits map[uint8][]bool) (map[uint8]Outcome, error)

// Gateway defaults.
const (
	DefaultHeartbeatInterval = 200 * time.Millisecond
	DefaultSessionTimeout    = 2 * time.Second
	DefaultRoundTimeout      = time.Second
	DefaultQueueDepth        = 16
	DefaultBreakerThreshold  = 2
	DefaultResultCache       = 8
	DefaultPoll              = 20 * time.Millisecond
)

// AdmissionPolicy decides what happens to a new tag's Hello when the
// gateway is at session capacity.
type AdmissionPolicy uint8

// Admission policies.
const (
	// AdmitReject answers HelloRejectFull: the tag is turned away.
	AdmitReject AdmissionPolicy = iota
	// AdmitQueue answers HelloQueued and parks the tag in a FIFO wait
	// queue; its Hello retries re-test admission as sessions depart.
	AdmitQueue
	// AdmitSpill admits the tag anyway, assigning it to an overflow TDMA
	// frame group past the schedule's planned groups — capacity grows by
	// another frame per spill-group's worth of tags at the cost of cycle
	// latency.
	AdmitSpill
)

// String implements fmt.Stringer.
func (p AdmissionPolicy) String() string {
	switch p {
	case AdmitReject:
		return "reject"
	case AdmitQueue:
		return "queue"
	case AdmitSpill:
		return "spill"
	default:
		return fmt.Sprintf("AdmissionPolicy(%d)", uint8(p))
	}
}

// ParseAdmissionPolicy parses an -admission flag value.
func ParseAdmissionPolicy(s string) (AdmissionPolicy, error) {
	switch strings.ToLower(s) {
	case "", "reject":
		return AdmitReject, nil
	case "queue":
		return AdmitQueue, nil
	case "spill":
		return AdmitSpill, nil
	default:
		return 0, fmt.Errorf("netio: unknown admission policy %q (want reject, queue or spill)", s)
	}
}

// GatewayConfig parameterizes a Gateway. The zero value is usable: every
// field has a default.
type GatewayConfig struct {
	// Version is the protocol version to require (default ProtocolVersion).
	Version uint16
	// MinSessions gates round 0: the first round does not run until this
	// many tags hold sessions, so a fleet can assemble before the exchange
	// starts. Later rounds run with whoever is live.
	MinSessions int
	// Rounds bounds the run (0 = unbounded): after serving Rounds rounds
	// the gateway lingers until every session says Goodbye (or Linger
	// expires) and Run returns nil.
	Rounds uint64
	// HeartbeatInterval is advertised to clients in the HelloAck.
	HeartbeatInterval time.Duration
	// SessionTimeout evicts a session with no traffic for this long.
	SessionTimeout time.Duration
	// RoundTimeout runs a partially-submitted round this long after its
	// first submission instead of waiting for stragglers forever.
	RoundTimeout time.Duration
	// Schedule, when set, makes the gateway schedule-aware: sessions are
	// admitted into the schedule's TDMA frame groups (tag ID 1+i maps to
	// the schedule's tag index i unless GroupOf overrides it), the round
	// barrier is evaluated per frame group, and — with a matching
	// core.Config.Schedule on the handler side — each round runs as an
	// ExchangeScheduled cycle with tone-pair reuse across groups. Build one
	// with mac.NewFrameSchedule or derive capacity from the slow-time tone
	// budget with mac.ScheduleFor.
	Schedule *mac.FrameSchedule
	// GroupOf overrides the tag → frame-group mapping (e.g. a multi-network
	// GatewayMux numbers groups across networks). Unknown tags return -1
	// and land in group 0. Called only from the supervision goroutine.
	GroupOf func(tagID uint8) int
	// MaxSessions caps concurrent sessions; at capacity a new tag's Hello
	// goes through the Admission policy. 0 means Schedule.NTags() when a
	// Schedule is set, otherwise unlimited.
	MaxSessions int
	// Admission is the session-overflow policy (default AdmitReject).
	Admission AdmissionPolicy
	// FrameTimeout is the per-frame-group barrier timeout: a group whose
	// first submission is this old stops waiting for its stragglers even
	// though RoundTimeout has not passed globally (default RoundTimeout,
	// which degenerates to the unscheduled all-active barrier).
	FrameTimeout time.Duration
	// QueueDepth bounds each session's send queue.
	QueueDepth int
	// SendTimeout is the reject-or-wait backpressure knob (mirroring
	// core.Fleet): 0 rejects immediately when a session's queue is full;
	// > 0 waits up to the timeout before rejecting.
	SendTimeout time.Duration
	// BreakerThreshold opens a session's circuit breaker after this many
	// consecutive missed rounds (default 2). An open session is quarantined:
	// the round barrier stops waiting for it, and its next submission is the
	// half-open probe that closes the breaker again.
	BreakerThreshold int
	// ResultCache bounds the per-session cache of recent round results used
	// to answer retransmitted submissions idempotently.
	ResultCache int
	// Poll is the receive-poll granularity of the supervision loop.
	Poll time.Duration
	// Linger bounds the post-Rounds wait for Goodbyes (default
	// SessionTimeout).
	Linger time.Duration
	// Metrics receives netio.* counters/gauges/histograms (nil = disabled).
	Metrics *telemetry.Metrics
	// Flight receives a Trip on session eviction, breaker opening and
	// exchange errors (nil = disabled).
	Flight *telemetry.FlightRecorder
	// Logf, when set, receives supervision-event logs.
	Logf func(format string, args ...any)
}

func (c *GatewayConfig) applyDefaults() {
	if c.Version == 0 {
		c.Version = ProtocolVersion
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = DefaultSessionTimeout
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = DefaultRoundTimeout
	}
	if c.FrameTimeout <= 0 {
		c.FrameTimeout = c.RoundTimeout
	}
	if c.MaxSessions <= 0 && c.Schedule != nil {
		c.MaxSessions = c.Schedule.NTags()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.ResultCache <= 0 {
		c.ResultCache = DefaultResultCache
	}
	if c.Poll <= 0 {
		c.Poll = DefaultPoll
	}
	if c.Linger <= 0 {
		c.Linger = c.SessionTimeout
	}
}

// breakerState mirrors the LinkController circuit-breaker idiom at session
// granularity.
type breakerState uint8

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breakerState(%d)", uint8(s))
	}
}

// session is one tag's supervised connection. All fields except addr and
// the send queue are owned by the supervision goroutine.
type session struct {
	id    uint64
	tagID uint8
	addr  atomic.Pointer[net.UDPAddr]

	// out is the bounded send queue drained by this session's sender
	// goroutine; closed (only) by the supervision loop to stop it.
	out  chan Message
	wg   sync.WaitGroup
	seen time.Time

	lastSeq uint64

	// group is the session's TDMA frame group, assigned at admission (and
	// re-derived on replace, so a tag whose assignment changed between
	// attempts lands in its new group while keeping the round cursor).
	group int

	breaker breakerState
	misses  int

	// pending round submission.
	hasPending  bool
	pendingBits []bool

	// results caches recent round results (keyed by round) so
	// retransmitted submissions are answered idempotently; order tracks
	// insertion for bounded eviction.
	results map[uint64]*RoundResult
	order   []uint64
}

// Gateway supervises many tag sessions over one Conn and drives the
// exchange round loop: handshake with protocol-version check, per-session
// sequence tracking, heartbeat liveness with deadline-based eviction,
// bounded send queues with reject-or-wait backpressure, and per-session
// circuit breakers that quarantine unresponsive tags while the rest of the
// fleet keeps exchanging.
type Gateway struct {
	conn Conn
	cfg  GatewayConfig
	fn   ExchangeFunc

	sessions map[uint8]*session // by tag ID
	nextSID  uint64
	round    uint64

	firstSubmit time.Time // zero when no pending submission
	roundsDone  time.Time // zero until cfg.Rounds rounds served

	// groupFirst tracks, per frame group, when the current round's first
	// submission from that group arrived — the per-group barrier clock.
	groupFirst map[int]time.Time

	// waiters is the AdmitQueue FIFO: tags parked at capacity, in arrival
	// order, each stamped with its last Hello so dead waiters expire.
	waiters []admWaiter

	// telemetry
	gSessions                           *telemetry.Gauge
	cAccepted, cResumed, cReplaced      *telemetry.Counter
	cRejected, cEvicted, cGoodbye       *telemetry.Counter
	cRounds, cRetries, cOutOfOrder      *telemetry.Counter
	cBreakerOpen, cBreakerClose         *telemetry.Counter
	cSendRejected, cExchangeErr, cHello *telemetry.Counter
	cAdmAdmitted, cAdmRejected          *telemetry.Counter
	cAdmQueued, cAdmSpilled             *telemetry.Counter
	gAdmWaiting                         *telemetry.Gauge
	hRTT                                *telemetry.Histogram
}

// admWaiter is one queued tag awaiting admission.
type admWaiter struct {
	tagID uint8
	seen  time.Time
}

// NewGateway builds a Gateway serving fn over conn. Run starts it.
func NewGateway(conn Conn, cfg GatewayConfig, fn ExchangeFunc) *Gateway {
	cfg.applyDefaults()
	g := &Gateway{
		conn: conn, cfg: cfg, fn: fn,
		sessions:   make(map[uint8]*session),
		groupFirst: make(map[int]time.Time),
	}
	if m := cfg.Metrics; m != nil {
		g.gSessions = m.Gauge("netio.sessions")
		g.cHello = m.Counter("netio.hello")
		g.cAccepted = m.Counter("netio.sessions.accepted")
		g.cResumed = m.Counter("netio.sessions.resumed")
		g.cReplaced = m.Counter("netio.sessions.replaced")
		g.cRejected = m.Counter("netio.sessions.rejected")
		g.cEvicted = m.Counter("netio.evicted")
		g.cGoodbye = m.Counter("netio.goodbye")
		g.cRounds = m.Counter("netio.rounds")
		g.cRetries = m.Counter("netio.retries")
		g.cOutOfOrder = m.Counter("netio.out_of_order")
		g.cBreakerOpen = m.Counter("netio.breaker.open")
		g.cBreakerClose = m.Counter("netio.breaker.close")
		g.cSendRejected = m.Counter("netio.send.rejected")
		g.cExchangeErr = m.Counter("netio.exchange.errors")
		g.cAdmAdmitted = m.Counter("netio.admission.admitted")
		g.cAdmRejected = m.Counter("netio.admission.rejected")
		g.cAdmQueued = m.Counter("netio.admission.queued")
		g.cAdmSpilled = m.Counter("netio.admission.spilled")
		g.gAdmWaiting = m.Gauge("netio.admission.waiting")
		g.hRTT = m.Histogram("netio.heartbeat.rtt_seconds")
	}
	return g
}

// Round returns the next round the gateway will run (rounds completed so
// far). Safe only after Run returns or before it starts.
func (g *Gateway) Round() uint64 { return g.round }

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}

// Run drives the supervision loop until ctx is cancelled, the socket
// closes, or (when cfg.Rounds > 0) every round has been served and every
// session has departed (or Linger expired). Single-goroutine by design:
// session and round state need no locks; only the per-session sender
// goroutines run alongside it.
func (g *Gateway) Run(ctx context.Context) error {
	defer func() {
		for _, s := range g.sessions {
			g.dropSession(s)
		}
	}()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		default:
		}
		now := time.Now()
		g.evictExpired(now)
		g.maybeRunRound(now)
		if done, err := g.finished(now); done {
			return err
		}
		m, from, err := g.conn.Recv(g.cfg.Poll)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				return err
			}
			// ErrTimeout is the idle tick; malformed datagrams were already
			// counted by the Conn.
			continue
		}
		g.dispatch(time.Now(), m, from)
	}
}

// finished reports whether a bounded run is complete.
func (g *Gateway) finished(now time.Time) (bool, error) {
	if g.cfg.Rounds == 0 || g.round < g.cfg.Rounds {
		return false, nil
	}
	if g.roundsDone.IsZero() {
		g.roundsDone = now
	}
	if len(g.sessions) == 0 {
		return true, nil
	}
	if now.Sub(g.roundsDone) > g.cfg.Linger {
		g.logf("gateway: linger expired with %d sessions still open", len(g.sessions))
		return true, nil
	}
	return false, nil
}

func (g *Gateway) dispatch(now time.Time, m Message, from *net.UDPAddr) {
	switch msg := m.(type) {
	case *Hello:
		g.onHello(now, msg, from)
	case *Heartbeat:
		g.onHeartbeat(now, msg, from)
	case *SubmitRound:
		g.onSubmit(now, msg, from)
	case *Goodbye:
		g.onGoodbye(msg)
	default:
		g.logf("gateway: unexpected %v from %v", m.Type(), from)
	}
}

func (g *Gateway) onHello(now time.Time, h *Hello, from *net.UDPAddr) {
	g.cHello.Inc()
	if h.Version != g.cfg.Version {
		g.cRejected.Inc()
		g.sendDirect(from, &HelloAck{
			Code:   HelloRejectVersion,
			Reason: fmt.Sprintf("gateway speaks protocol %d, client sent %d", g.cfg.Version, h.Version),
		})
		return
	}
	code := HelloAccept
	s, ok := g.sessions[h.TagID]
	switch {
	case ok && h.SessionID == s.id:
		// The tag found its way back (new source address after a restart
		// of its socket): adopt in place.
		code = HelloResume
		s.addr.Store(from)
		g.cResumed.Inc()
	case ok:
		// Same tag, unknown/zero session: replace the stale session. The
		// frame group is re-derived, so an assignment that changed while
		// the tag was away takes effect here — while the round cursor in
		// the ack below still resumes the tag at the gateway's next round.
		code = HelloResume
		g.dropSession(s)
		s = g.newSession(h.TagID, from)
		s.group = g.groupOf(h.TagID)
		g.cReplaced.Inc()
	default:
		ns, admitted := g.admit(now, h.TagID, from)
		if !admitted {
			return
		}
		s = ns
		g.cAccepted.Inc()
	}
	s.seen = now
	s.lastSeq = h.Seq
	g.gSessions.Set(float64(len(g.sessions)))
	g.logf("gateway: hello tag %d → %v session %d (next round %d)", h.TagID, code, s.id, g.round)
	g.enqueue(s, &HelloAck{
		Code:                 code,
		SessionID:            s.id,
		NextRound:            g.round,
		HeartbeatMillis:      uint32(g.cfg.HeartbeatInterval / time.Millisecond),
		SessionTimeoutMillis: uint32(g.cfg.SessionTimeout / time.Millisecond),
	})
}

// admit applies session capacity and the admission policy to a new tag's
// Hello. It returns the created session, or (nil, false) when the tag was
// rejected or queued (both already answered).
func (g *Gateway) admit(now time.Time, tagID uint8, from *net.UDPAddr) (*session, bool) {
	limit := g.cfg.MaxSessions
	if limit <= 0 || len(g.sessions)+g.queueAhead(tagID) < limit {
		// Room for this tag and for everyone queued ahead of it (FIFO
		// fairness: a latecomer never jumps the wait queue).
		g.unqueue(tagID)
		s := g.newSession(tagID, from)
		s.group = g.groupOf(tagID)
		g.cAdmAdmitted.Inc()
		return s, true
	}
	switch g.cfg.Admission {
	case AdmitQueue:
		g.enqueueWaiter(now, tagID, from)
		return nil, false
	case AdmitSpill:
		s := g.newSession(tagID, from)
		s.group = g.spillGroup()
		g.cAdmAdmitted.Inc()
		g.cAdmSpilled.Inc()
		g.logf("gateway: tag %d spilled to overflow frame group %d", tagID, s.group)
		return s, true
	default: // AdmitReject
		g.cAdmRejected.Inc()
		g.cRejected.Inc()
		g.logf("gateway: tag %d rejected at capacity (%d sessions)", tagID, limit)
		g.sendDirect(from, &HelloAck{
			Code:   HelloRejectFull,
			Reason: fmt.Sprintf("the gateway is at capacity (%d sessions)", limit),
		})
		return nil, false
	}
}

// queueAhead counts admission waiters ahead of tagID (all of them when the
// tag is not queued yet).
func (g *Gateway) queueAhead(tagID uint8) int {
	for i, w := range g.waiters {
		if w.tagID == tagID {
			return i
		}
	}
	return len(g.waiters)
}

// enqueueWaiter parks (or refreshes) a tag in the admission wait queue and
// answers HelloQueued — not a rejection: the client's handshake retries
// re-test admission as sessions depart, draining the queue in FIFO order.
func (g *Gateway) enqueueWaiter(now time.Time, tagID uint8, from *net.UDPAddr) {
	pos := -1
	for i := range g.waiters {
		if g.waiters[i].tagID == tagID {
			g.waiters[i].seen = now
			pos = i
			break
		}
	}
	if pos < 0 {
		g.waiters = append(g.waiters, admWaiter{tagID: tagID, seen: now})
		pos = len(g.waiters) - 1
		g.cAdmQueued.Inc()
		g.gAdmWaiting.Set(float64(len(g.waiters)))
		g.logf("gateway: tag %d queued for admission at position %d", tagID, pos)
	}
	g.sendDirect(from, &HelloAck{
		Code:   HelloQueued,
		Reason: fmt.Sprintf("the gateway is at capacity; queued at position %d", pos),
	})
}

// unqueue removes a tag from the admission wait queue, if present.
func (g *Gateway) unqueue(tagID uint8) {
	for i, w := range g.waiters {
		if w.tagID == tagID {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			g.gAdmWaiting.Set(float64(len(g.waiters)))
			return
		}
	}
}

// groupOf derives a tag's frame group from the configured mapping (GroupOf
// override first, then the schedule's tag-index convention). Unknown tags
// fall into group 0 — their submissions still barrier somewhere, and the
// handler answers them with an unknown-tag outcome.
func (g *Gateway) groupOf(tagID uint8) int {
	gid := 0
	switch {
	case g.cfg.GroupOf != nil:
		gid = g.cfg.GroupOf(tagID)
	case g.cfg.Schedule != nil:
		gid = g.cfg.Schedule.GroupOf(int(tagID) - 1)
	}
	if gid < 0 {
		gid = 0
	}
	return gid
}

// spillGroup picks the overflow frame group for a spilled session: the
// first group at or past the schedule's planned cycle with a free tone
// slot, so spilled tags pack into as few extra frames as possible.
func (g *Gateway) spillGroup() int {
	base, width := 1, len(g.sessions)+1
	if s := g.cfg.Schedule; s != nil {
		base, width = s.Frames(), s.Capacity()
	}
	counts := make(map[int]int)
	for _, s := range g.sessions {
		if s.group >= base {
			counts[s.group]++
		}
	}
	for gid := base; ; gid++ {
		if counts[gid] < width {
			return gid
		}
	}
}

func (g *Gateway) newSession(tagID uint8, from *net.UDPAddr) *session {
	g.nextSID++
	s := &session{
		id:      g.nextSID,
		tagID:   tagID,
		out:     make(chan Message, g.cfg.QueueDepth),
		results: make(map[uint64]*RoundResult),
	}
	s.addr.Store(from)
	g.sessions[tagID] = s
	s.wg.Add(1)
	go g.sender(s)
	return s
}

// sender drains one session's bounded queue. Sessions keep their own sender
// so one slow/unreachable tag cannot stall another's traffic.
func (g *Gateway) sender(s *session) {
	defer s.wg.Done()
	for m := range s.out {
		addr := s.addr.Load()
		if addr == nil {
			continue
		}
		if err := g.conn.Send(addr, m); err != nil {
			g.logf("gateway: send %v to tag %d: %v", m.Type(), s.tagID, err)
		}
	}
}

// enqueue applies the Fleet-style reject-or-wait backpressure to a
// session's bounded send queue.
func (g *Gateway) enqueue(s *session, m Message) bool {
	if g.cfg.SendTimeout <= 0 {
		select {
		case s.out <- m:
			return true
		default:
			g.cSendRejected.Inc()
			g.logf("gateway: send queue full, rejecting %v for tag %d", m.Type(), s.tagID)
			return false
		}
	}
	t := time.NewTimer(g.cfg.SendTimeout)
	defer t.Stop()
	select {
	case s.out <- m:
		return true
	case <-t.C:
		g.cSendRejected.Inc()
		g.logf("gateway: send queue full after %v, rejecting %v for tag %d",
			g.cfg.SendTimeout, m.Type(), s.tagID)
		return false
	}
}

// sendDirect bypasses session queues for messages addressed to endpoints
// without a session (handshake rejects, evictions).
func (g *Gateway) sendDirect(addr *net.UDPAddr, m Message) {
	if err := g.conn.Send(addr, m); err != nil {
		g.logf("gateway: direct send %v: %v", m.Type(), err)
	}
}

// dropSession removes a session and stops its sender.
func (g *Gateway) dropSession(s *session) {
	delete(g.sessions, s.tagID)
	close(s.out)
	s.wg.Wait()
	g.gSessions.Set(float64(len(g.sessions)))
}

// track updates liveness and sequence bookkeeping for an in-session
// message.
func (g *Gateway) track(now time.Time, s *session, seq uint64, from *net.UDPAddr) {
	s.seen = now
	s.addr.Store(from)
	if seq <= s.lastSeq {
		g.cOutOfOrder.Inc()
		return
	}
	s.lastSeq = seq
}

func (g *Gateway) sessionByID(id uint64) *session {
	for _, s := range g.sessions {
		if s.id == id {
			return s
		}
	}
	return nil
}

func (g *Gateway) onHeartbeat(now time.Time, hb *Heartbeat, from *net.UDPAddr) {
	s := g.sessionByID(hb.SessionID)
	if s == nil || hb.Echo {
		return
	}
	g.track(now, s, hb.Seq, from)
	if hb.RTTNanos > 0 {
		g.hRTT.Observe(time.Duration(hb.RTTNanos).Seconds())
	}
	g.enqueue(s, &Heartbeat{SessionID: s.id, Seq: hb.Seq, Echo: true})
}

func (g *Gateway) onGoodbye(gb *Goodbye) {
	s := g.sessionByID(gb.SessionID)
	if s == nil {
		return
	}
	g.cGoodbye.Inc()
	g.logf("gateway: goodbye tag %d (session %d)", s.tagID, s.id)
	g.dropSession(s)
}

func (g *Gateway) onSubmit(now time.Time, sub *SubmitRound, from *net.UDPAddr) {
	s := g.sessionByID(sub.SessionID)
	if s == nil {
		// Unknown session (evicted, or the gateway restarted): tell the
		// client to re-handshake.
		g.sendDirect(from, &Evict{SessionID: sub.SessionID, Reason: "unknown session"})
		return
	}
	g.track(now, s, sub.Seq, from)

	switch {
	case sub.Round < g.round:
		// A retransmission of an already-served round: answer from the
		// result cache, idempotently.
		g.cRetries.Inc()
		if rr, ok := s.results[sub.Round]; ok {
			g.enqueue(s, rr)
		} else {
			g.enqueue(s, &RoundResult{SessionID: s.id, Round: sub.Round, Status: RoundSkipped})
		}
	case sub.Round > g.round:
		g.logf("gateway: tag %d submitted future round %d (current %d)", s.tagID, sub.Round, g.round)
	case s.hasPending:
		// Duplicate submission for the pending round (client retry racing
		// the barrier): first write wins, the response is on its way.
		g.cRetries.Inc()
	default:
		s.hasPending = true
		s.pendingBits = sub.GetBits()
		if g.firstSubmit.IsZero() {
			g.firstSubmit = now
		}
		if _, ok := g.groupFirst[s.group]; !ok {
			g.groupFirst[s.group] = now
		}
		if s.breaker == breakerOpen {
			// The quarantined tag is answering again: this submission is
			// the half-open probe.
			s.breaker = breakerHalfOpen
			g.logf("gateway: breaker half-open for tag %d (probe round %d)", s.tagID, g.round)
		}
	}
}

// maybeRunRound runs the current round when the barrier is met: at least
// one submission, and either every frame group's barrier is satisfied or
// RoundTimeout has passed since the round's first submission (the global
// backstop). On an unscheduled gateway every session is in group 0 and
// FrameTimeout defaults to RoundTimeout, so this degenerates to the
// original all-active barrier.
func (g *Gateway) maybeRunRound(now time.Time) {
	if g.cfg.Rounds > 0 && g.round >= g.cfg.Rounds {
		return
	}
	if g.firstSubmit.IsZero() {
		return
	}
	if g.round == 0 && len(g.sessions) < g.cfg.MinSessions {
		return
	}
	if now.Sub(g.firstSubmit) < g.cfg.RoundTimeout && !g.groupsReady(now) {
		return
	}
	g.runRound()
}

// groupsReady evaluates the round barrier per frame group: a waiting
// (non-quarantined, not-yet-submitted) session blocks the round only until
// its group's FrameTimeout elapses, measured from that group's own first
// submission. A group whose members are all silent never starts its clock;
// the global RoundTimeout in maybeRunRound covers it.
func (g *Gateway) groupsReady(now time.Time) bool {
	for _, s := range g.sessions {
		if s.breaker == breakerOpen || s.hasPending {
			continue
		}
		first, ok := g.groupFirst[s.group]
		if !ok || now.Sub(first) < g.cfg.FrameTimeout {
			return false
		}
	}
	return true
}

func (g *Gateway) runRound() {
	round := g.round
	bits := make(map[uint8][]bool)
	for _, s := range g.sessions {
		if s.hasPending {
			bits[s.tagID] = s.pendingBits
		}
	}
	if len(bits) == 0 {
		// Every submitter was evicted before the barrier fired; there is
		// no round to run.
		g.firstSubmit = time.Time{}
		clear(g.groupFirst)
		return
	}
	outcomes, err := g.fn(round, bits)
	g.cRounds.Inc()
	if err != nil {
		g.cExchangeErr.Inc()
		g.trip(fmt.Sprintf("netio: exchange error round %d: %v", round, err))
		g.logf("gateway: round %d exchange error: %v", round, err)
	}

	for _, s := range g.sessions {
		var rr *RoundResult
		switch {
		case !s.hasPending:
			// Missed the barrier: a strike toward quarantine. The skipped
			// result is cached so the straggler's eventual submission gets
			// a truthful answer.
			rr = &RoundResult{SessionID: s.id, Round: round, Status: RoundSkipped}
			g.strike(s)
		case err != nil:
			rr = &RoundResult{SessionID: s.id, Round: round, Status: RoundError,
				Outcome: Outcome{Err: err.Error()}}
		default:
			out, ok := outcomes[s.tagID]
			if !ok {
				out = Outcome{Err: fmt.Sprintf("no outcome for tag %d", s.tagID)}
			}
			rr = &RoundResult{SessionID: s.id, Round: round, Status: RoundOK, Outcome: out}
		}
		g.cacheResult(s, rr)
		if s.hasPending {
			if s.breaker == breakerHalfOpen {
				// Probe succeeded end to end: close the breaker.
				s.breaker = breakerClosed
				s.misses = 0
				g.cBreakerClose.Inc()
				g.logf("gateway: breaker closed for tag %d", s.tagID)
			}
			g.enqueue(s, rr)
		}
		s.hasPending = false
		s.pendingBits = nil
	}
	g.round++
	g.firstSubmit = time.Time{}
	clear(g.groupFirst)
	g.logf("gateway: round %d served (%d tags)", round, len(bits))
}

// strike records a missed round; enough consecutive strikes open the
// session's breaker and quarantine the tag.
func (g *Gateway) strike(s *session) {
	if s.breaker == breakerOpen {
		return
	}
	if s.breaker == breakerHalfOpen {
		// The probe round itself cannot miss (half-open is entered by
		// submitting), but a later miss sends it back to open.
		s.breaker = breakerOpen
		return
	}
	s.misses++
	if s.misses >= g.cfg.BreakerThreshold {
		s.breaker = breakerOpen
		g.cBreakerOpen.Inc()
		g.trip(fmt.Sprintf("netio: breaker open: tag %d missed %d rounds", s.tagID, s.misses))
		g.logf("gateway: breaker open for tag %d after %d misses", s.tagID, s.misses)
	}
}

func (g *Gateway) cacheResult(s *session, rr *RoundResult) {
	if _, ok := s.results[rr.Round]; !ok {
		s.order = append(s.order, rr.Round)
		for len(s.order) > g.cfg.ResultCache {
			delete(s.results, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.results[rr.Round] = rr
}

// evictExpired removes sessions whose liveness deadline passed, notifying
// the client so it can re-handshake, and expires admission waiters that
// stopped retrying (a dead waiter must not block the FIFO queue).
func (g *Gateway) evictExpired(now time.Time) {
	for i := 0; i < len(g.waiters); {
		if now.Sub(g.waiters[i].seen) > g.cfg.SessionTimeout {
			g.logf("gateway: dropping stale admission waiter tag %d", g.waiters[i].tagID)
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			g.gAdmWaiting.Set(float64(len(g.waiters)))
			continue
		}
		i++
	}
	for _, s := range g.sessions {
		if now.Sub(s.seen) <= g.cfg.SessionTimeout {
			continue
		}
		g.cEvicted.Inc()
		g.trip(fmt.Sprintf("netio: session evicted: tag %d silent for %v", s.tagID, now.Sub(s.seen).Round(time.Millisecond)))
		g.logf("gateway: evicting tag %d (session %d): silent past %v", s.tagID, s.id, g.cfg.SessionTimeout)
		if addr := s.addr.Load(); addr != nil {
			g.sendDirect(addr, &Evict{SessionID: s.id, Reason: "heartbeat deadline passed"})
		}
		g.dropSession(s)
	}
}

func (g *Gateway) trip(reason string) {
	if g.cfg.Flight != nil {
		g.cfg.Flight.Trip(reason)
	}
}
