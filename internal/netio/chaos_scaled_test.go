package netio_test

// Scaled chaos conformance: 16 tag processes over 4 TDMA frame groups, on
// both the UDP and the length-prefixed TCP transport, under the acceptance
// fault profile. Every cycle runs as one recorded ExchangeScheduled round,
// and the captured record must replay byte-identically against the
// in-process oracle — the schedule-aware gateway computes exactly the
// physics the oracle does, regardless of transport.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"biscatter/internal/core"
	"biscatter/internal/mac"
	"biscatter/internal/netio"
	"biscatter/internal/telemetry"
)

// scaledConfig builds a 16-node network TDM'd into 4-tag frame groups.
// Slots within a group reuse the validated 4-pair tone table (tags in
// different frames never modulate together, so the deployment exceeds the
// single-frame band limit by design).
func scaledConfig(t *testing.T, nTags, capacity int) core.Config {
	t.Helper()
	sched, err := mac.NewFrameSchedule(nTags, capacity)
	if err != nil {
		t.Fatal(err)
	}
	tones := [][2]float64{{1000, 1400}, {1800, 2200}, {2600, 3000}, {3400, 3800}}
	nodes := make([]core.NodeConfig, nTags)
	for i := range nodes {
		group, slot := sched.Assignment(i)
		nodes[i] = core.NodeConfig{
			ID:           uint8(i + 1),
			Range:        1.5 + 1.2*float64(slot) + 0.3*float64(group),
			ModulationF0: tones[slot][0],
			ModulationF1: tones[slot][1],
		}
	}
	return core.Config{Nodes: nodes, Seed: 424, ChirpsPerBit: 16, Schedule: sched}
}

// TestChaosScheduledScaled is the scaled acceptance run: 16 tags over 4
// frame groups complete a multi-round schedule-aware run under the chaos
// fault profile, with byte-identical replay — once per transport.
func TestChaosScheduledScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled chaos run is not -short")
	}
	if raceEnabled {
		t.Skip("barrier timeouts are wall-clock straggler budgets; the race detector's slowdown turns them into false evictions (race coverage lives in TestChaosConformance)")
	}
	for _, transport := range []string{netio.TransportUDP, netio.TransportTCP} {
		t.Run(transport, func(t *testing.T) {
			runScaledChaos(t, transport)
		})
	}
}

func runScaledChaos(t *testing.T, transport string) {
	const (
		nTags    = 16
		capacity = 4
		rounds   = 2
	)
	cfg := scaledConfig(t, nTags, capacity)
	net, err := core.NewNetwork(cfg, core.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := core.NewExchangeRecorder(net)
	if err != nil {
		t.Fatal(err)
	}
	payload := func(round uint64) []byte { return core.RandomPayload(int64(round)+99, 2) }
	fn, err := core.NewGatewayHandler(rec, payload)
	if err != nil {
		t.Fatal(err)
	}

	m := telemetry.New()
	gwConn, err := netio.ListenTransport(transport, "127.0.0.1:0",
		netio.WithMetrics(m), netio.WithNetFaults(chaosProfile(7)))
	if err != nil {
		t.Fatal(err)
	}
	defer gwConn.Close()

	gw := netio.NewGateway(gwConn, netio.GatewayConfig{
		Schedule:          cfg.Schedule,
		MinSessions:       nTags,
		Rounds:            rounds,
		HeartbeatInterval: 200 * time.Millisecond,
		SessionTimeout:    60 * time.Second,
		// The barrier must outwait a straggler's handshake retries (its
		// session exists from the first lossy Hello, so MinSessions alone
		// does not hold the round): a partial round here would break the
		// full-fleet conformance this test pins. When all 16 tags submit,
		// the barrier closes immediately — these are straggler budgets, not
		// steady-state latency.
		RoundTimeout: 30 * time.Second,
		FrameTimeout: 10 * time.Second,
		// With 16 lossy endpoints some Goodbye almost always drops; don't
		// wait out SessionTimeout for the eviction before exiting.
		Linger: 5 * time.Second,
		Poll:              5 * time.Millisecond,
		Metrics:           m,
	}, fn)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	gwDone := make(chan error, 1)
	go func() { gwDone <- gw.Run(ctx) }()

	errs := make([]error, nTags)
	var wg sync.WaitGroup
	for i := 0; i < nTags; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tag := uint8(i + 1)
			conn, err := netio.ListenTransport(transport, "127.0.0.1:0",
				netio.WithMetrics(m), netio.WithNetFaults(chaosProfile(100+int64(i))))
			if err != nil {
				errs[i] = err
				return
			}
			defer conn.Close()
			c, err := netio.Dial(conn, gwConn.Addr().String(), netio.ClientConfig{
				TagID:          tag,
				Seed:           int64(tag),
				AttemptTimeout: 500 * time.Millisecond,
				MaxAttempts:    40,
				DialAttempts:   40,
				Metrics:        m,
			})
			if err != nil {
				errs[i] = fmt.Errorf("dial tag %d: %w", tag, err)
				return
			}
			defer c.Close()
			for r := uint64(0); r < rounds; r++ {
				res, err := c.SubmitRound(ctx, tagBits(tag, r))
				if err != nil {
					errs[i] = fmt.Errorf("tag %d round %d: %w", tag, r, err)
					return
				}
				if res.Status != netio.RoundOK {
					errs[i] = fmt.Errorf("tag %d round %d: status %s", tag, r, res.Status)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	select {
	case err := <-gwDone:
		if err != nil {
			t.Fatalf("gateway: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("gateway did not finish after all tags closed")
	}

	record := rec.Record()
	if len(record.Rounds) != rounds {
		t.Fatalf("recorded %d rounds, want %d", len(record.Rounds), rounds)
	}
	for r, round := range record.Rounds {
		if !round.Input.Scheduled {
			t.Fatalf("round %d was not recorded as a scheduled cycle", r)
		}
		if round.Input.Active != nil {
			t.Fatalf("round %d ran with a partial fleet %v", r, round.Input.Active)
		}
		if len(round.Input.UplinkBits) != nTags {
			t.Fatalf("round %d served %d tags, want %d", r, len(round.Input.UplinkBits), nTags)
		}
	}
	replayBothWays(t, t.TempDir(), record)

	if got := m.Counter("netio.rounds").Value(); got != rounds {
		t.Fatalf("netio.rounds = %d, want %d", got, rounds)
	}
	if got := m.Counter("netio.sessions.accepted").Value(); got != nTags {
		t.Fatalf("netio.sessions.accepted = %d, want %d", got, nTags)
	}
	if got := m.Counter("netio.admission.admitted").Value(); got != nTags {
		t.Fatalf("netio.admission.admitted = %d, want %d", got, nTags)
	}
	if m.Counter("netio.fault.dropped").Value() == 0 {
		t.Fatal("fault injector dropped nothing — the chaos run was not chaotic")
	}
}
