//go:build !race

package netio_test

// raceEnabled reports whether this binary was built with -race; see
// race_on_test.go for why the scaled chaos run needs to know.
const raceEnabled = false
