// Package netio defines the wire protocol that lets the radar access point
// and BiScatter tags run as separate processes: length-delimited binary
// messages with a magic/version header and a CRC-32 trailer, plus a small
// UDP transport. The "air interface" of the distributed simulation is the
// FrameDescriptor/ModulationPlan exchange: the radar announces the chirp
// schedule it is about to transmit, each tag derives its envelope-detector
// observation locally, and reports its modulation plan so the radar can
// synthesize the backscatter it would observe.
package netio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Protocol constants.
const (
	// Magic starts every message.
	Magic = "BSC1"
	// HeaderSize is magic + type + flags + length.
	HeaderSize = 4 + 1 + 1 + 2
	// TrailerSize is the CRC-32.
	TrailerSize = 4
	// MaxPayload bounds the message payload so a single message fits
	// comfortably in a UDP datagram.
	MaxPayload = 60000
)

// MsgType identifies a message.
type MsgType uint8

// Message types.
const (
	// TypeFrameDescriptor announces a CSSK frame: waveform parameters and
	// the per-chirp durations (radar → tag).
	TypeFrameDescriptor MsgType = 1
	// TypeTagReport carries a tag's downlink decode outcome (tag → radar).
	TypeTagReport MsgType = 2
	// TypeModulationPlan carries a tag's uplink switching plan
	// (tag → radar).
	TypeModulationPlan MsgType = 3
	// TypeCommand carries a radar command to a tag, e.g. changing its
	// modulation frequency — the write access downlink enables.
	TypeCommand MsgType = 4
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	switch t {
	case TypeFrameDescriptor:
		return "frame-descriptor"
	case TypeTagReport:
		return "tag-report"
	case TypeModulationPlan:
		return "modulation-plan"
	case TypeCommand:
		return "command"
	default:
		if name, ok := sessionTypeName(t); ok {
			return name
		}
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// Errors returned by the codec.
var (
	// ErrTruncated means the buffer is shorter than the framing requires.
	ErrTruncated = errors.New("netio: truncated message")
	// ErrBadMagic means the buffer does not start with the protocol magic.
	ErrBadMagic = errors.New("netio: bad magic")
	// ErrCRC means the checksum failed.
	ErrCRC = errors.New("netio: CRC mismatch")
	// ErrUnknownType means the message type is not recognized.
	ErrUnknownType = errors.New("netio: unknown message type")
	// ErrOversized means the payload exceeds MaxPayload.
	ErrOversized = errors.New("netio: oversized payload")
)

// Message is anything that can ride the wire.
type Message interface {
	// Type returns the message's wire type.
	Type() MsgType
	// appendPayload serializes the body onto dst.
	appendPayload(dst []byte) []byte
	// decodePayload parses the body.
	decodePayload(src []byte) error
}

// Marshal frames a message: header, payload, CRC-32 (IEEE) over type, flags,
// length and payload.
func Marshal(m Message) ([]byte, error) {
	payload := m.appendPayload(nil)
	if len(payload) > MaxPayload {
		return nil, ErrOversized
	}
	buf := make([]byte, 0, HeaderSize+len(payload)+TrailerSize)
	buf = append(buf, Magic...)
	buf = append(buf, byte(m.Type()), 0)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(payload)))
	buf = append(buf, payload...)
	crc := crc32.ChecksumIEEE(buf[4:])
	buf = binary.BigEndian.AppendUint32(buf, crc)
	return buf, nil
}

// Unmarshal parses one framed message from buf.
func Unmarshal(buf []byte) (Message, error) {
	if len(buf) < HeaderSize+TrailerSize {
		return nil, ErrTruncated
	}
	if string(buf[:4]) != Magic {
		return nil, ErrBadMagic
	}
	typ := MsgType(buf[4])
	n := int(binary.BigEndian.Uint16(buf[6:8]))
	if len(buf) < HeaderSize+n+TrailerSize {
		return nil, ErrTruncated
	}
	body := buf[HeaderSize : HeaderSize+n]
	wantCRC := binary.BigEndian.Uint32(buf[HeaderSize+n : HeaderSize+n+TrailerSize])
	if crc32.ChecksumIEEE(buf[4:HeaderSize+n]) != wantCRC {
		return nil, ErrCRC
	}
	var m Message
	switch typ {
	case TypeFrameDescriptor:
		m = &FrameDescriptor{}
	case TypeTagReport:
		m = &TagReport{}
	case TypeModulationPlan:
		m = &ModulationPlan{}
	case TypeCommand:
		m = &Command{}
	case TypeHello:
		m = &Hello{}
	case TypeHelloAck:
		m = &HelloAck{}
	case TypeHeartbeat:
		m = &Heartbeat{}
	case TypeSubmitRound:
		m = &SubmitRound{}
	case TypeRoundResult:
		m = &RoundResult{}
	case TypeGoodbye:
		m = &Goodbye{}
	case TypeEvict:
		m = &Evict{}
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, typ)
	}
	if err := m.decodePayload(body); err != nil {
		return nil, err
	}
	return m, nil
}

// appendFloat64 / readFloat64 serialize IEEE-754 big-endian doubles.
func appendFloat64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

func readFloat64(src []byte) float64 {
	return math.Float64frombits(binary.BigEndian.Uint64(src))
}

// FrameDescriptor announces an upcoming CSSK frame.
type FrameDescriptor struct {
	// Sequence numbers frames so tags can detect loss.
	Sequence uint32
	// StartFrequency, Bandwidth, SampleRate and Period describe the
	// waveform (Hz, Hz, Hz, s).
	StartFrequency float64
	Bandwidth      float64
	SampleRate     float64
	Period         float64
	// DownlinkSNRdB is the per-tag link SNR the air simulation applies.
	DownlinkSNRdB float64
	// Durations are the per-chirp durations in seconds.
	Durations []float64
}

// Type implements Message.
func (*FrameDescriptor) Type() MsgType { return TypeFrameDescriptor }

func (f *FrameDescriptor) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, f.Sequence)
	dst = appendFloat64(dst, f.StartFrequency)
	dst = appendFloat64(dst, f.Bandwidth)
	dst = appendFloat64(dst, f.SampleRate)
	dst = appendFloat64(dst, f.Period)
	dst = appendFloat64(dst, f.DownlinkSNRdB)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Durations)))
	for _, d := range f.Durations {
		dst = appendFloat64(dst, d)
	}
	return dst
}

func (f *FrameDescriptor) decodePayload(src []byte) error {
	const fixed = 4 + 5*8 + 4
	if len(src) < fixed {
		return ErrTruncated
	}
	f.Sequence = binary.BigEndian.Uint32(src)
	f.StartFrequency = readFloat64(src[4:])
	f.Bandwidth = readFloat64(src[12:])
	f.SampleRate = readFloat64(src[20:])
	f.Period = readFloat64(src[28:])
	f.DownlinkSNRdB = readFloat64(src[36:])
	n := int(binary.BigEndian.Uint32(src[44:]))
	if n < 0 || len(src) != fixed+8*n {
		return ErrTruncated
	}
	f.Durations = make([]float64, n)
	for i := range f.Durations {
		f.Durations[i] = readFloat64(src[fixed+8*i:])
	}
	return nil
}

// ReportStatus encodes a tag's downlink outcome.
type ReportStatus uint8

// Report statuses.
const (
	// StatusOK means the payload decoded and passed its CRC.
	StatusOK ReportStatus = 0
	// StatusNoPreamble means the preamble was not found.
	StatusNoPreamble ReportStatus = 1
	// StatusBadCRC means the payload failed its CRC.
	StatusBadCRC ReportStatus = 2
	// StatusNoSignal means no chirp period was detected.
	StatusNoSignal ReportStatus = 3
)

// String implements fmt.Stringer.
func (s ReportStatus) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNoPreamble:
		return "no-preamble"
	case StatusBadCRC:
		return "bad-crc"
	case StatusNoSignal:
		return "no-signal"
	default:
		return fmt.Sprintf("ReportStatus(%d)", uint8(s))
	}
}

// TagReport is the tag's downlink decode outcome for one frame.
type TagReport struct {
	// Sequence echoes the FrameDescriptor sequence.
	Sequence uint32
	// TagID identifies the tag.
	TagID uint8
	// Status summarizes the decode.
	Status ReportStatus
	// PeriodSamples is the tag's estimated chirp period (diagnostics).
	PeriodSamples float64
	// Payload is the decoded downlink payload (Status == StatusOK).
	Payload []byte
}

// Type implements Message.
func (*TagReport) Type() MsgType { return TypeTagReport }

func (r *TagReport) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, r.Sequence)
	dst = append(dst, r.TagID, byte(r.Status))
	dst = appendFloat64(dst, r.PeriodSamples)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(r.Payload)))
	dst = append(dst, r.Payload...)
	return dst
}

func (r *TagReport) decodePayload(src []byte) error {
	const fixed = 4 + 2 + 8 + 2
	if len(src) < fixed {
		return ErrTruncated
	}
	r.Sequence = binary.BigEndian.Uint32(src)
	r.TagID = src[4]
	r.Status = ReportStatus(src[5])
	r.PeriodSamples = readFloat64(src[6:])
	n := int(binary.BigEndian.Uint16(src[14:]))
	if len(src) != fixed+n {
		return ErrTruncated
	}
	r.Payload = append([]byte(nil), src[fixed:fixed+n]...)
	return nil
}

// ModulationPlan is a tag's uplink switching plan for one frame.
type ModulationPlan struct {
	// Sequence echoes the FrameDescriptor sequence.
	Sequence uint32
	// TagID identifies the tag.
	TagID uint8
	// F0 and F1 are the FSK tones in Hz.
	F0, F1 float64
	// ChirpsPerBit is the bit window length.
	ChirpsPerBit uint16
	// BitCount is the number of valid bits in Bits.
	BitCount uint16
	// Bits is the uplink message, packed MSB-first.
	Bits []byte
}

// Type implements Message.
func (*ModulationPlan) Type() MsgType { return TypeModulationPlan }

func (p *ModulationPlan) appendPayload(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, p.Sequence)
	dst = append(dst, p.TagID)
	dst = appendFloat64(dst, p.F0)
	dst = appendFloat64(dst, p.F1)
	dst = binary.BigEndian.AppendUint16(dst, p.ChirpsPerBit)
	dst = binary.BigEndian.AppendUint16(dst, p.BitCount)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(p.Bits)))
	dst = append(dst, p.Bits...)
	return dst
}

func (p *ModulationPlan) decodePayload(src []byte) error {
	const fixed = 4 + 1 + 16 + 6
	if len(src) < fixed {
		return ErrTruncated
	}
	p.Sequence = binary.BigEndian.Uint32(src)
	p.TagID = src[4]
	p.F0 = readFloat64(src[5:])
	p.F1 = readFloat64(src[13:])
	p.ChirpsPerBit = binary.BigEndian.Uint16(src[21:])
	p.BitCount = binary.BigEndian.Uint16(src[23:])
	n := int(binary.BigEndian.Uint16(src[25:]))
	if len(src) != fixed+n {
		return ErrTruncated
	}
	if int(p.BitCount) > 8*n {
		return fmt.Errorf("netio: bit count %d exceeds %d packed bytes", p.BitCount, n)
	}
	p.Bits = append([]byte(nil), src[fixed:fixed+n]...)
	return nil
}

// SetBits packs a bool slice into the plan.
func (p *ModulationPlan) SetBits(bits []bool) {
	p.BitCount = uint16(len(bits))
	p.Bits = make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			p.Bits[i/8] |= 1 << uint(7-i%8)
		}
	}
}

// GetBits unpacks the plan's bits.
func (p *ModulationPlan) GetBits() []bool {
	out := make([]bool, p.BitCount)
	for i := range out {
		if i/8 < len(p.Bits) {
			out[i] = p.Bits[i/8]&(1<<uint(7-i%8)) != 0
		}
	}
	return out
}

// CommandOp identifies a tag command.
type CommandOp uint8

// Command opcodes — the configuration writes §1 motivates (retransmissions,
// modulation reassignment, rate adaptation).
const (
	// OpSetModulation reassigns the tag's uplink tones (Arg0 = F0,
	// Arg1 = F1).
	OpSetModulation CommandOp = 1
	// OpSetSymbolBits asks the tag to expect a different CSSK symbol size
	// (Arg0 = bits).
	OpSetSymbolBits CommandOp = 2
	// OpRetransmit asks the tag to retransmit its last uplink message.
	OpRetransmit CommandOp = 3
	// OpSleep puts the tag in its low-power sequential mode for Arg0
	// seconds.
	OpSleep CommandOp = 4
)

// Command is a radar-issued tag command.
type Command struct {
	// TagID addresses a tag; 0xFF broadcasts.
	TagID uint8
	// Op is the operation.
	Op CommandOp
	// Arg0 and Arg1 are operation-specific arguments.
	Arg0, Arg1 float64
}

// BroadcastID addresses every tag.
const BroadcastID = 0xFF

// Type implements Message.
func (*Command) Type() MsgType { return TypeCommand }

func (c *Command) appendPayload(dst []byte) []byte {
	dst = append(dst, c.TagID, byte(c.Op))
	dst = appendFloat64(dst, c.Arg0)
	dst = appendFloat64(dst, c.Arg1)
	return dst
}

func (c *Command) decodePayload(src []byte) error {
	if len(src) != 2+16 {
		return ErrTruncated
	}
	c.TagID = src[0]
	c.Op = CommandOp(src[1])
	c.Arg0 = readFloat64(src[2:])
	c.Arg1 = readFloat64(src[10:])
	return nil
}

// Encode is a convenience for Command payload serialization in downlink
// packets: tag ID, opcode and Arg0 as a compact 10-byte message body.
func (c *Command) Encode() []byte {
	out := make([]byte, 0, 10)
	out = append(out, c.TagID, byte(c.Op))
	out = appendFloat64(out, c.Arg0)
	return out
}

// DecodeCommand parses the compact downlink form produced by Encode.
func DecodeCommand(body []byte) (Command, error) {
	if len(body) < 10 {
		return Command{}, ErrTruncated
	}
	return Command{
		TagID: body[0],
		Op:    CommandOp(body[1]),
		Arg0:  readFloat64(body[2:]),
	}, nil
}
