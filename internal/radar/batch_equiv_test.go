package radar

import (
	"math"
	"math/rand"
	"testing"

	"biscatter/internal/channel"
	"biscatter/internal/fmcw"
)

// TestSignatureProfilesIntoMatchesSingle pins the batched multi-tone
// signature scan against one SignatureProfileInto call per tone, bit for
// bit, and requires the result to be byte-identical at 1, 4, and 8 workers
// — the worker-invariance contract extended to the batched fast path.
func TestSignatureProfilesIntoMatchesSingle(t *testing.T) {
	chirp := fmcw.ChirpParams{StartFrequency: 9e9, Bandwidth: 1e9, Duration: 60e-6, SampleRate: 2e6}
	builder, err := fmcw.NewFrameBuilder(chirp, 120e-6)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := builder.BuildUniform(32, 60e-6)
	if err != nil {
		t.Fatal(err)
	}
	const period = 120e-6
	freqs := []float64{833, 1250, 1770, 2100}

	var reference [][]float64
	for _, workers := range []int{1, 4, 8} {
		rd, err := New(Config{Chirp: chirp, Link: channel.DefaultLink(), NFFT: 256, RangeBins: 64, Workers: workers, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		states := make([]bool, 32)
		for i := range states {
			states[i] = i%4 < 2 // a slow-time square wave the signature scan can find
		}
		cap := rd.Observe(frame, Scene{
			Clutter: []channel.Reflector{{Range: 3, RCSdBsm: 5}},
			Tags:    []TagEcho{{Range: 1.8, States: states, PowerDBm: -60}},
		})
		cm, _ := rd.CorrectedMatrix(cap)
		matrix := SubtractBackgroundMag(MagnitudeMatrix(cm))

		batch := rd.SignatureProfilesInto(nil, matrix, freqs, period)
		if len(batch) != len(freqs) {
			t.Fatalf("workers=%d: %d rows, want %d", workers, len(batch), len(freqs))
		}
		for i, f := range freqs {
			single := rd.SignatureProfileInto(nil, matrix, f, period)
			if len(batch[i]) != len(single) {
				t.Fatalf("workers=%d f=%v: batch row %d bins, single %d", workers, f, len(batch[i]), len(single))
			}
			for b := range single {
				if math.Float64bits(batch[i][b]) != math.Float64bits(single[b]) {
					t.Fatalf("workers=%d f=%v bin %d: batch %v, single %v", workers, f, b, batch[i][b], single[b])
				}
			}
		}
		if reference == nil {
			reference = batch
			continue
		}
		for i := range reference {
			for b := range reference[i] {
				if math.Float64bits(batch[i][b]) != math.Float64bits(reference[i][b]) {
					t.Fatalf("workers=%d f=%v bin %d: %v differs from workers=1 %v",
						workers, freqs[i], b, batch[i][b], reference[i][b])
				}
			}
		}
	}
}

// TestSignatureProfilesIntoEdgeCases covers the degenerate shapes the batch
// scan must tolerate: no tones, no chirps, and row reuse across calls.
func TestSignatureProfilesIntoEdgeCases(t *testing.T) {
	chirp := fmcw.ChirpParams{StartFrequency: 9e9, Bandwidth: 1e9, Duration: 60e-6, SampleRate: 2e6}
	rd, err := New(Config{Chirp: chirp, Link: channel.DefaultLink(), NFFT: 128, RangeBins: 32, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	matrix := [][]float64{{1, 2, 3}, {4, 5, 6}}
	if rows := rd.SignatureProfilesInto(nil, matrix, nil, 120e-6); len(rows) != 0 {
		t.Fatalf("no tones: got %d rows", len(rows))
	}
	if rows := rd.SignatureProfilesInto(nil, nil, []float64{1250}, 120e-6); len(rows) != 1 {
		t.Fatalf("empty matrix: got %d rows, want 1 (untouched)", len(rows))
	}
	first := rd.SignatureProfilesInto(nil, matrix, []float64{1250, 1770}, 120e-6)
	second := rd.SignatureProfilesInto(first, matrix, []float64{1250}, 120e-6)
	if &second[0][0] != &first[0][0] {
		t.Error("row storage not reused across calls")
	}
}

// TestHannTableMatchesDirectWindow pins the cached range-FFT window against
// the formula rangeSpectrumInto previously evaluated inline per chirp:
// w[k] = 0.5·(1 − cos(2πk/span)), with cum[n] the running coherent sum.
func TestHannTableMatchesDirectWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		span := 40 + rng.Float64()*400
		n := 1 + rng.Intn(256)
		var tab hannTable
		// Grow in two steps to prove history independence as well.
		tab.grow(span, n/2)
		tab.grow(span, n)
		var sum float64
		for k := 0; k < n; k++ {
			w := 0.5 * (1 - math.Cos(2*math.Pi*float64(k)/span))
			if math.Float64bits(tab.w[k]) != math.Float64bits(w) {
				t.Fatalf("span=%v n=%d k=%d: cached %v, direct %v", span, n, k, tab.w[k], w)
			}
			sum += w
			if math.Float64bits(tab.cum[k+1]) != math.Float64bits(sum) {
				t.Fatalf("span=%v n=%d k=%d: cum %v, direct %v", span, n, k, tab.cum[k+1], sum)
			}
		}
	}
}
