package radar

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"biscatter/internal/channel"
	"biscatter/internal/dsp"
	"biscatter/internal/fmcw"
	"biscatter/internal/tag"
)

const (
	tPeriod = 120e-6
)

func testRadar(t testing.TB, seed int64) *Radar {
	t.Helper()
	r, err := New(Config{
		Chirp: fmcw.ChirpParams{StartFrequency: 9e9, Bandwidth: 1e9, Duration: 60e-6, SampleRate: 4e6},
		Link:  channel.DefaultLink(),
		Seed:  seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func testBuilder(t testing.TB) *fmcw.FrameBuilder {
	t.Helper()
	b, err := fmcw.NewFrameBuilder(
		fmcw.ChirpParams{StartFrequency: 9e9, Bandwidth: 1e9, Duration: 60e-6, SampleRate: 4e6},
		tPeriod)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// toneStates returns n per-chirp states toggling at fMod.
func toneStates(fMod float64, n int) []bool {
	out := make([]bool, n)
	for k := range out {
		out[k] = math.Mod(float64(k)*tPeriod*fMod, 1) < 0.5
	}
	return out
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero config should fail")
	}
	good := Config{
		Chirp: fmcw.ChirpParams{StartFrequency: 9e9, Bandwidth: 1e9, Duration: 60e-6, SampleRate: 4e6},
		Link:  channel.DefaultLink(),
	}
	bad := good
	bad.NFFT = 1000
	if _, err := New(bad); err == nil {
		t.Error("non-power-of-two NFFT should fail")
	}
	bad = good
	bad.RangeBins = 2
	if _, err := New(bad); err == nil {
		t.Error("tiny RangeBins should fail")
	}
	r, err := New(good)
	if err != nil {
		t.Fatal(err)
	}
	if r.Config().NFFT != 4096 || r.Config().RangeBins != 512 {
		t.Fatalf("defaults not applied: %+v", r.Config())
	}
}

func TestObserveDimensionsAndDeterminism(t *testing.T) {
	b := testBuilder(t)
	frame, _ := b.BuildUniform(8, 60e-6)
	scene := Scene{Clutter: channel.OfficeClutter()}
	c1 := testRadar(t, 5).Observe(frame, scene)
	c2 := testRadar(t, 5).Observe(frame, scene)
	if len(c1.IF) != 8 {
		t.Fatalf("chirp count %d", len(c1.IF))
	}
	for i := range c1.IF {
		if len(c1.IF[i]) != 240 {
			t.Fatalf("chirp %d has %d samples, want 240", i, len(c1.IF[i]))
		}
		for k := range c1.IF[i] {
			if c1.IF[i][k] != c2.IF[i][k] {
				t.Fatal("same seed must reproduce the capture")
			}
		}
	}
}

func TestRawRangeProfilePeakAtReflector(t *testing.T) {
	r := testRadar(t, 6)
	b := testBuilder(t)
	frame, _ := b.BuildUniform(4, 60e-6)
	const dist = 4.0
	scene := Scene{Clutter: []channel.Reflector{{Range: dist, RCSdBsm: 10}}}
	cap := r.Observe(frame, scene)
	mags, ranges := r.RawRangeProfile(cap, 0)
	idx, _ := dsp.MaxIndex(mags[1:]) // skip DC
	got := ranges[idx+1]
	if math.Abs(got-dist) > 0.2 {
		t.Fatalf("reflector at %v m detected at %v m", dist, got)
	}
}

func TestRawProfilesDisagreeAcrossSlopesFig7a(t *testing.T) {
	// The Fig. 7(a) ambiguity: the same reflector lands on different FFT
	// bins for different chirp slopes.
	r := testRadar(t, 7)
	b := testBuilder(t)
	frame, err := b.Build([]float64{40e-6, 80e-6})
	if err != nil {
		t.Fatal(err)
	}
	scene := Scene{Clutter: []channel.Reflector{{Range: 5, RCSdBsm: 10}}}
	cap := r.Observe(frame, scene)
	m0, _ := r.RawRangeProfile(cap, 0)
	m1, _ := r.RawRangeProfile(cap, 1)
	i0, _ := dsp.MaxIndex(m0[1:])
	i1, _ := dsp.MaxIndex(m1[1:])
	if i0 == i1 {
		t.Fatalf("different slopes should put the peak in different bins, both at %d", i0)
	}
	// But the per-chirp range conversion (Eq. 15) must agree.
	_, r0 := r.RawRangeProfile(cap, 0)
	_, r1 := r.RawRangeProfile(cap, 1)
	if math.Abs(r0[i0+1]-r1[i1+1]) > 0.3 {
		t.Fatalf("per-slope ranges disagree: %v vs %v", r0[i0+1], r1[i1+1])
	}
}

func TestCorrectedMatrixAlignsSlopesFig7b(t *testing.T) {
	// After IF correction, every chirp's profile peaks on the same common
	// grid bin regardless of slope.
	r := testRadar(t, 8)
	b := testBuilder(t)
	frame, err := b.Build([]float64{30e-6, 50e-6, 70e-6, 96e-6})
	if err != nil {
		t.Fatal(err)
	}
	scene := Scene{Clutter: []channel.Reflector{{Range: 3.5, RCSdBsm: 10}}}
	cap := r.Observe(frame, scene)
	matrix, grid := r.CorrectedMatrix(cap)
	var peaks []int
	for i := range matrix {
		mags := make([]float64, len(matrix[i]))
		for j, v := range matrix[i] {
			mags[j] = math.Hypot(real(v), imag(v))
		}
		idx, _ := dsp.MaxIndexRange(mags, 2, len(mags))
		peaks = append(peaks, idx)
	}
	for _, p := range peaks[1:] {
		if absInt(p-peaks[0]) > 1 {
			t.Fatalf("corrected peaks not aligned: %v", peaks)
		}
	}
	if math.Abs(grid[peaks[0]]-3.5) > 0.1 {
		t.Fatalf("corrected peak at %v m, want 3.5", grid[peaks[0]])
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestRangeGridBounds(t *testing.T) {
	r := testRadar(t, 9)
	b := testBuilder(t)
	frame, _ := b.Build([]float64{20e-6, 96e-6})
	grid := r.RangeGrid(frame)
	if len(grid) != 512 {
		t.Fatalf("grid size %d", len(grid))
	}
	// Common grid must not exceed the steepest chirp's unambiguous range
	// (12 m for 20 µs at 4 MHz / 1 GHz).
	if grid[len(grid)-1] >= 12.0 {
		t.Fatalf("grid extends to %v m, beyond the steepest chirp's Rmax", grid[len(grid)-1])
	}
	if grid[0] != 0 {
		t.Fatal("grid must start at zero")
	}
}

func TestSubtractBackgroundRemovesStaticClutter(t *testing.T) {
	r := testRadar(t, 10)
	b := testBuilder(t)
	frame, _ := b.BuildUniform(16, 60e-6)
	scene := Scene{Clutter: []channel.Reflector{{Range: 3.2, RCSdBsm: 10}}}
	cap := r.Observe(frame, scene)
	matrix, grid := r.CorrectedMatrix(cap)
	// Locate the clutter bin before subtraction.
	bin := 0
	for grid[bin] < 3.2 {
		bin++
	}
	before := math.Hypot(real(matrix[3][bin]), imag(matrix[3][bin]))
	SubtractBackground(matrix)
	after := math.Hypot(real(matrix[3][bin]), imag(matrix[3][bin]))
	if after > before/10 {
		t.Fatalf("clutter only dropped from %v to %v", before, after)
	}
}

func TestRangeDopplerShape(t *testing.T) {
	r := testRadar(t, 11)
	b := testBuilder(t)
	frame, _ := b.BuildUniform(20, 60e-6)
	cap := r.Observe(frame, Scene{})
	matrix, _ := r.CorrectedMatrix(cap)
	rd := r.RangeDoppler(matrix)
	if len(rd) != 32 { // next pow2 of 20
		t.Fatalf("doppler bins %d, want 32", len(rd))
	}
	if len(rd[0]) != 512 {
		t.Fatalf("range bins %d, want 512", len(rd[0]))
	}
}

func TestRangeDopplerShowsModulationTone(t *testing.T) {
	r := testRadar(t, 12)
	b := testBuilder(t)
	const nChirps = 64
	const fMod = 2e3
	frame, _ := b.BuildUniform(nChirps, 60e-6)
	scene := Scene{Tags: []TagEcho{{
		Range:    3.0,
		States:   toneStates(fMod, nChirps),
		PowerDBm: -100,
	}}}
	cap := r.Observe(frame, scene)
	matrix, grid := r.CorrectedMatrix(cap)
	rd := r.RangeDoppler(matrix)
	// Find the tag's range bin.
	bin := 0
	for grid[bin] < 3.0 {
		bin++
	}
	// The slow-time spectrum at that bin must peak at ±fMod (bin index
	// fMod/chirpRate·nfft), not at DC-adjacent bins.
	nfft := len(rd)
	chirpRate := 1 / tPeriod
	modBin := int(math.Round(fMod / chirpRate * float64(nfft)))
	peakVal := rd[modBin][bin]
	offVal := rd[modBin/2][bin]
	if peakVal < 3*offVal {
		t.Fatalf("modulation tone not visible: peak %v vs off-tone %v", peakVal, offVal)
	}
}

func TestDetectTagLocalizationAccuracy(t *testing.T) {
	// Centimeter-level accuracy at a strong echo, the Fig. 16 claim.
	r := testRadar(t, 13)
	b := testBuilder(t)
	const nChirps = 64
	const fMod = 2e3
	for _, dist := range []float64{1.0, 2.5, 4.0, 6.5} {
		frame, _ := b.BuildUniform(nChirps, 60e-6)
		scene := Scene{
			Clutter: channel.OfficeClutter(),
			Tags: []TagEcho{{
				Range:    dist,
				States:   toneStates(fMod, nChirps),
				PowerDBm: -95,
			}},
		}
		cap := r.Observe(frame, scene)
		cm, grid := r.CorrectedMatrix(cap)
		matrix := SubtractBackgroundMag(MagnitudeMatrix(cm))
		det, err := r.DetectTag(matrix, grid, fMod, tPeriod)
		if err != nil {
			t.Fatalf("dist %v: %v", dist, err)
		}
		if math.Abs(det.Range-dist) > 0.05 {
			t.Fatalf("dist %v: estimated %v m (error %.1f cm)", dist, det.Range, math.Abs(det.Range-dist)*100)
		}
	}
}

func TestDetectTagWithCSSKFrames(t *testing.T) {
	// Localization must survive varying chirp slopes (the integrated mode),
	// thanks to IF correction.
	r := testRadar(t, 14)
	b := testBuilder(t)
	const nChirps = 64
	const fMod = 2e3
	rng := rand.New(rand.NewSource(15))
	durs := make([]float64, nChirps)
	for i := range durs {
		durs[i] = 20e-6 + rng.Float64()*76e-6
	}
	frame, err := b.Build(durs)
	if err != nil {
		t.Fatal(err)
	}
	const dist = 3.7
	scene := Scene{
		Clutter: channel.OfficeClutter(),
		Tags:    []TagEcho{{Range: dist, States: toneStates(fMod, nChirps), PowerDBm: -95}},
	}
	cap := r.Observe(frame, scene)
	cm, grid := r.CorrectedMatrix(cap)
	matrix := SubtractBackgroundMag(MagnitudeMatrix(cm))
	det, err := r.DetectTag(matrix, grid, fMod, tPeriod)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(det.Range-dist) > 0.06 {
		t.Fatalf("CSSK-mode localization error %.1f cm", math.Abs(det.Range-dist)*100)
	}
}

func TestDetectTagNotFound(t *testing.T) {
	r := testRadar(t, 16)
	b := testBuilder(t)
	frame, _ := b.BuildUniform(32, 60e-6)
	cap := r.Observe(frame, Scene{Clutter: channel.OfficeClutter()})
	cm, grid := r.CorrectedMatrix(cap)
	matrix := SubtractBackgroundMag(MagnitudeMatrix(cm))
	if _, err := r.DetectTag(matrix, grid, 2e3, tPeriod); !errors.Is(err, ErrTagNotFound) {
		t.Fatalf("expected ErrTagNotFound, got %v", err)
	}
}

func TestDecodeUplinkFSKRoundTrip(t *testing.T) {
	r := testRadar(t, 17)
	b := testBuilder(t)
	mod, err := tag.NewModulator(tag.SchemeFSK, 1e3, 2.5e3, tPeriod, 32)
	if err != nil {
		t.Fatal(err)
	}
	bits := []bool{true, false, true, true, false, false, true, false}
	nChirps := len(bits) * mod.ChirpsPerBit
	states := mod.States(bits, tPeriod, nChirps)
	frame, _ := b.BuildUniform(nChirps, 60e-6)
	const dist = 2.8
	scene := Scene{Tags: []TagEcho{{Range: dist, States: states, PowerDBm: -100}}}
	cap := r.Observe(frame, scene)
	cm, grid := r.CorrectedMatrix(cap)
	matrix := MagnitudeMatrix(cm)
	det, err := r.DetectTag(matrix, grid, 1e3, tPeriod)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.DecodeUplinkFSK(matrix, det.Bin, UplinkFSKConfig{
		F0: 1e3, F1: 2.5e3, ChirpsPerBit: mod.ChirpsPerBit, Period: tPeriod,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(bits) {
		t.Fatalf("decoded %d bits, want %d", len(got), len(bits))
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d: got %v want %v (%v)", i, got[i], bits[i], got)
		}
	}
}

func TestDecodeUplinkFSKPropertyAcrossPayloads(t *testing.T) {
	r := testRadar(t, 18)
	b := testBuilder(t)
	mod, _ := tag.NewModulator(tag.SchemeFSK, 1e3, 2.5e3, tPeriod, 32)
	f := func(raw uint8) bool {
		bits := make([]bool, 6)
		for i := range bits {
			bits[i] = raw&(1<<uint(i)) != 0
		}
		nChirps := len(bits) * mod.ChirpsPerBit
		states := mod.States(bits, tPeriod, nChirps)
		frame, err := b.BuildUniform(nChirps, 60e-6)
		if err != nil {
			return false
		}
		scene := Scene{Tags: []TagEcho{{Range: 2.0, States: states, PowerDBm: -98}}}
		cap := r.Observe(frame, scene)
		cm, grid := r.CorrectedMatrix(cap)
		matrix := MagnitudeMatrix(cm)
		det, err := r.DetectTag(matrix, grid, 1e3, tPeriod)
		if err != nil {
			// All-ones payloads have no F0 energy; fall back to F1 search.
			det, err = r.DetectTag(matrix, grid, 2.5e3, tPeriod)
			if err != nil {
				return false
			}
		}
		got, err := r.DecodeUplinkFSK(matrix, det.Bin, UplinkFSKConfig{
			F0: 1e3, F1: 2.5e3, ChirpsPerBit: mod.ChirpsPerBit, Period: tPeriod,
		})
		if err != nil || len(got) != len(bits) {
			return false
		}
		for i := range bits {
			if got[i] != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeUplinkOOKRoundTrip(t *testing.T) {
	r := testRadar(t, 19)
	b := testBuilder(t)
	mod, err := tag.NewModulator(tag.SchemeOOK, 2e3, 0, tPeriod, 32)
	if err != nil {
		t.Fatal(err)
	}
	bits := []bool{true, false, true, false, false, true}
	nChirps := len(bits) * mod.ChirpsPerBit
	states := mod.States(bits, tPeriod, nChirps)
	frame, _ := b.BuildUniform(nChirps, 60e-6)
	scene := Scene{Tags: []TagEcho{{Range: 3.1, States: states, PowerDBm: -100}}}
	cap := r.Observe(frame, scene)
	cm, grid := r.CorrectedMatrix(cap)
	matrix := MagnitudeMatrix(cm)
	det, err := r.DetectTag(matrix, grid, 2e3, tPeriod)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.DecodeUplinkOOK(matrix, det.Bin, 2e3, mod.ChirpsPerBit, tPeriod)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if got[i] != bits[i] {
			t.Fatalf("bit %d: got %v want %v", i, got[i], bits[i])
		}
	}
}

func TestDecodeUplinkValidation(t *testing.T) {
	r := testRadar(t, 20)
	matrix := [][]float64{{1, 2}, {3, 4}}
	if _, err := r.DecodeUplinkFSK(matrix, 0, UplinkFSKConfig{F0: 1e3, F1: 2e3, ChirpsPerBit: 1, Period: tPeriod}); err == nil {
		t.Error("chirpsPerBit=1 should fail")
	}
	if _, err := r.DecodeUplinkFSK(matrix, 5, UplinkFSKConfig{F0: 1e3, F1: 2e3, ChirpsPerBit: 2, Period: tPeriod}); err == nil {
		t.Error("out-of-range bin should fail")
	}
	if _, err := r.DecodeUplinkOOK(matrix, 0, 1e3, 1, tPeriod); err == nil {
		t.Error("OOK chirpsPerBit=1 should fail")
	}
	if _, err := r.DecodeUplinkOOK(matrix, 9, 1e3, 2, tPeriod); err == nil {
		t.Error("OOK out-of-range bin should fail")
	}
}

func TestMultiTagSeparationByModulationFrequency(t *testing.T) {
	// Two tags at different ranges with unique modulation frequencies must
	// be individually localizable (§6 multi-tag extension).
	r := testRadar(t, 21)
	b := testBuilder(t)
	const nChirps = 128
	frame, _ := b.BuildUniform(nChirps, 60e-6)
	scene := Scene{Tags: []TagEcho{
		{Range: 2.0, States: toneStates(1.5e3, nChirps), PowerDBm: -98},
		{Range: 5.0, States: toneStates(3e3, nChirps), PowerDBm: -102},
	}}
	cap := r.Observe(frame, scene)
	cm, grid := r.CorrectedMatrix(cap)
	matrix := SubtractBackgroundMag(MagnitudeMatrix(cm))
	d1, err := r.DetectTag(matrix, grid, 1.5e3, tPeriod)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r.DetectTag(matrix, grid, 3e3, tPeriod)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d1.Range-2.0) > 0.06 || math.Abs(d2.Range-5.0) > 0.06 {
		t.Fatalf("multi-tag localization: %v m and %v m", d1.Range, d2.Range)
	}
}

// The shared median helper lives in dsp (dsp.Median) and is tested there.
