package radar

import (
	"math"
	"testing"
	"testing/quick"

	"biscatter/internal/channel"
)

func TestEstimateVelocityStaticTarget(t *testing.T) {
	r := testRadar(t, 70)
	b := testBuilder(t)
	frame, _ := b.BuildUniform(128, 60e-6)
	cap := r.Observe(frame, Scene{Clutter: []channel.Reflector{{Range: 3, RCSdBsm: 5}}})
	matrix, _ := r.CorrectedMatrix(cap)
	bin := StrongestBin(matrix)
	v, err := r.EstimateVelocity(matrix, bin, tPeriod)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v) > 0.1 {
		t.Fatalf("static target measured at %v m/s", v)
	}
}

func TestEstimateVelocityMovingTargetProperty(t *testing.T) {
	r := testRadar(t, 71)
	b := testBuilder(t)
	vmax := r.MaxUnambiguousVelocity(tPeriod)
	f := func(raw int16) bool {
		want := float64(raw) / math.MaxInt16 * 0.8 * vmax // within ±80% of span
		frame, err := b.BuildUniform(128, 60e-6)
		if err != nil {
			return false
		}
		scene := Scene{Clutter: []channel.Reflector{{Range: 3.5, RCSdBsm: 5, Velocity: want}}}
		cap := r.Observe(frame, scene)
		matrix, _ := r.CorrectedMatrix(cap)
		bin := StrongestBin(matrix)
		got, err := r.EstimateVelocity(matrix, bin, tPeriod)
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 0.15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateVelocityValidation(t *testing.T) {
	r := testRadar(t, 72)
	matrix := [][]complex128{{1, 2}, {3, 4}}
	if _, err := r.EstimateVelocity(matrix, 0, tPeriod); err == nil {
		t.Error("too few chirps should fail")
	}
	long := make([][]complex128, 16)
	for i := range long {
		long[i] = []complex128{1}
	}
	if _, err := r.EstimateVelocity(long, 5, tPeriod); err == nil {
		t.Error("out-of-range bin should fail")
	}
}

func TestMaxUnambiguousVelocityScale(t *testing.T) {
	r := testRadar(t, 73)
	// λ ≈ 31.6 mm at 9.5 GHz, T = 120 µs → ±65.7 m/s... with the 120 µs
	// period: λ/(4T) = 0.0316/(4·1.2e-4) ≈ 65.7 m/s.
	v := r.MaxUnambiguousVelocity(tPeriod)
	if v < 60 || v > 70 {
		t.Fatalf("unambiguous velocity %v m/s, want ≈66", v)
	}
}

func TestStrongestBinEdge(t *testing.T) {
	if StrongestBin(nil) != -1 {
		t.Fatal("empty matrix should return -1")
	}
}

func TestTagDetectionSurvivesSlowTagMotion(t *testing.T) {
	// A tag drifting at walking-ish speed moves ~1 cm over a 64-chirp
	// frame; detection and localization must hold.
	r := testRadar(t, 74)
	b := testBuilder(t)
	const nChirps = 64
	const fMod = 2e3
	frame, _ := b.BuildUniform(nChirps, 60e-6)
	scene := Scene{Tags: []TagEcho{{
		Range:    3.0,
		Velocity: 1.2, // m/s
		States:   toneStates(fMod, nChirps),
		PowerDBm: -95,
	}}}
	cap := r.Observe(frame, scene)
	cm, grid := r.CorrectedMatrix(cap)
	matrix := SubtractBackgroundMag(MagnitudeMatrix(cm))
	det, err := r.DetectTag(matrix, grid, fMod, tPeriod)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(det.Range-3.0) > 0.08 {
		t.Fatalf("moving-tag localization error %.1f cm", math.Abs(det.Range-3.0)*100)
	}
}
