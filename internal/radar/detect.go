package radar

import (
	"errors"
	"fmt"
	"math"

	"biscatter/internal/dsp"
)

// ErrTagNotFound means no range bin carried the expected modulation
// signature above the detection threshold.
var ErrTagNotFound = errors.New("radar: tag signature not found")

// DetectionThreshold is the required ratio between the signature peak and
// the median signature power across range bins. The extreme-value statistics
// of a few hundred noise bins reach ≈10× the median, so the threshold sits
// above that.
const DetectionThreshold = 20.0

// Detection is the result of the matched-filter tag search.
type Detection struct {
	// Range is the refined tag range estimate in meters.
	Range float64
	// Bin is the range bin of the peak.
	Bin int
	// SNRdB is the signature power at the peak over the median signature
	// power across bins — the detection confidence.
	SNRdB float64
}

// SidelobeGuard is the half-width in range bins around a signature peak
// excluded when measuring the peak-to-sidelobe ratio; it covers the
// mainlobe spread of the windowed, resampled range response.
const SidelobeGuard = 3

// DetectionDiag reports the radar-side quality of one matched-filter tag
// search — the uplink mirror of the tag decoder's Diagnostics. It says why
// a detection (and hence an uplink decode) succeeded or failed: how strong
// the signature peak was against the noise floor the threshold is applied
// to, and how cleanly it stood above the next-best range bin.
type DetectionDiag struct {
	// PeakBin is the range bin the diagnostics describe — the winning bin,
	// or the best candidate when detection failed.
	PeakBin int
	// PeakPower is the signature power at PeakBin.
	PeakPower float64
	// MedianPower is the median signature power across range bins, the
	// noise estimate DetectionThreshold is applied against.
	MedianPower float64
	// PeakToSidelobeDB is PeakPower over the strongest signature outside
	// ±SidelobeGuard bins of the peak, in dB. Higher means a cleaner, less
	// ambiguous fix; values near zero flag near-far ambiguity with another
	// scatterer or node.
	PeakToSidelobeDB float64
}

// SignatureDiag computes detection-quality diagnostics for a signature
// profile and a candidate peak bin. A bin outside the profile yields the
// zero diagnostics.
func SignatureDiag(prof []float64, bin int) DetectionDiag {
	if bin < 0 || bin >= len(prof) {
		return DetectionDiag{PeakBin: bin}
	}
	return SignatureDiagWithMedian(prof, bin, dsp.Median(prof))
}

// SignatureDiagWithMedian is SignatureDiag for callers that already hold the
// profile's median power (the detection loops compute it for thresholding
// anyway), skipping the sort-copy a second median would cost.
func SignatureDiagWithMedian(prof []float64, bin int, median float64) DetectionDiag {
	d := DetectionDiag{PeakBin: bin}
	if bin < 0 || bin >= len(prof) {
		return d
	}
	d.PeakPower = prof[bin]
	d.MedianPower = median
	side := 0.0
	for b, v := range prof {
		if (b < bin-SidelobeGuard || b > bin+SidelobeGuard) && v > side {
			side = v
		}
	}
	if side > 0 && d.PeakPower > 0 {
		d.PeakToSidelobeDB = 10 * math.Log10(d.PeakPower/side)
	}
	return d
}

// MagnitudeMatrix converts a corrected complex matrix into per-chirp
// magnitude range profiles. Slow-time (across-chirp) processing runs on
// magnitudes: with CSSK the per-chirp window length enters the spectral
// phase, so complex profiles of different slopes decohere, while magnitudes
// stay aligned after IF correction — static clutter contributes only DC and
// the tag's switching contributes the modulation tone.
func MagnitudeMatrix(matrix [][]complex128) [][]float64 {
	return MagnitudeMatrixInto(nil, matrix)
}

// MagnitudeMatrixInto is MagnitudeMatrix writing into dst, growing it as
// needed; pass the returned matrix back in to reuse its rows across frames.
func MagnitudeMatrixInto(dst [][]float64, matrix [][]complex128) [][]float64 {
	dst = ensureRows(dst, len(matrix))
	out := dst[:len(matrix)]
	for i, row := range matrix {
		m := dsp.Resize(out[i], len(row))
		for j, v := range row {
			m[j] = math.Hypot(real(v), imag(v))
		}
		out[i] = m
	}
	return out
}

// SubtractBackgroundMag subtracts the first chirp's magnitude profile from
// every row in place and returns the matrix — the paper's first-chirp
// background subtraction (§3.3) in the magnitude domain.
func SubtractBackgroundMag(matrix [][]float64) [][]float64 {
	m, _ := SubtractBackgroundMagInto(matrix, nil)
	return m
}

// SubtractBackgroundMagInto is SubtractBackgroundMag with caller-provided
// scratch for the background row snapshot; it returns the matrix and the
// (possibly grown) scratch for reuse.
func SubtractBackgroundMagInto(matrix [][]float64, bg []float64) ([][]float64, []float64) {
	if len(matrix) == 0 {
		return matrix, bg
	}
	bg = dsp.Resize(bg, len(matrix[0]))
	copy(bg, matrix[0])
	for i := range matrix {
		for j := range matrix[i] {
			matrix[i][j] -= bg[j]
		}
	}
	return matrix, bg
}

// slowTimeTonePower returns the power of the slow-time tone at the given
// modulation frequency for one range bin of the magnitude matrix. col is
// caller scratch with capacity for one slow-time column (len(matrix)).
func slowTimeTonePower(col []float64, matrix [][]float64, bin int, fMod, chirpRate float64) float64 {
	col = col[:len(matrix)]
	for i := range col {
		col[i] = matrix[i][bin]
	}
	return dsp.GoertzelPower(col, fMod, chirpRate)
}

// SignatureProfile computes, for every range bin, the power of the
// modulation tone at fMod across slow time. The tag's square-wave switching
// concentrates power at its modulation frequency (the sinc signature of
// §3.3), so this is the matched-filter statistic. The per-bin Goertzel
// scans are independent and fan out across the radar's worker pool; each
// bin is written by index, so the profile is identical for any worker
// count.
func (r *Radar) SignatureProfile(matrix [][]float64, fMod, period float64) []float64 {
	return r.SignatureProfileInto(nil, matrix, fMod, period)
}

// SignatureProfileInto is SignatureProfile writing into dst (grown as
// needed; pass the returned profile back in to reuse it). Per-bin slow-time
// columns come from the claiming worker's arena.
func (r *Radar) SignatureProfileInto(dst []float64, matrix [][]float64, fMod, period float64) []float64 {
	sp := r.tel.matched.Span()
	defer sp.End()
	if len(matrix) == 0 {
		return nil
	}
	chirpRate := 1 / period
	nBins := len(matrix[0])
	out := dsp.Resize(dst, nBins)
	r.pool.ForArena(nBins, func(b int, a *dsp.Arena) {
		out[b] = slowTimeTonePower(a.Float(len(matrix)), matrix, b, fMod, chirpRate)
	})
	return out
}

// SignatureProfilesInto computes SignatureProfile for many modulation
// frequencies in one traversal of the magnitude matrix: each range bin's
// slow-time column is gathered once and every tone's Goertzel recurrence
// runs over that same column, with the per-tone trig constants hoisted out
// of the bin loop. Per (tone, bin) the arithmetic is identical to
// SignatureProfileInto — same column values, same recurrence — so the
// profiles are bit-identical for any worker count; only the memory traffic
// changes. The joint multi-node detection scan previously re-traversed the
// whole matrix once per tone (2 tones per node), which made it the second-
// largest stage of the exchange after tag decoding.
//
// dst is grown to one row per frequency (rows reused across calls) and
// returned; rows follow the usual radar-owned-scratch ownership rules.
func (r *Radar) SignatureProfilesInto(dst [][]float64, matrix [][]float64, freqs []float64, period float64) [][]float64 {
	sp := r.tel.matched.Span()
	defer sp.End()
	dst = ensureRows(dst, len(freqs))
	if len(matrix) == 0 || len(freqs) == 0 {
		return dst
	}
	chirpRate := 1 / period
	coeffs := dsp.Resize(r.scr.coeffs, len(freqs))
	r.scr.coeffs = coeffs
	for i, f := range freqs {
		coeffs[i] = dsp.NewGoertzelCoeff(f, chirpRate)
	}
	nBins := len(matrix[0])
	out := dst[:len(freqs)]
	for i := range out {
		out[i] = dsp.Resize(out[i], nBins)
	}
	r.pool.ForArena(nBins, func(b int, a *dsp.Arena) {
		col := a.Float(len(matrix))
		for i := range col {
			col[i] = matrix[i][b]
		}
		for t := range coeffs {
			out[t][b] = dsp.GoertzelPowerWith(col, coeffs[t])
		}
	})
	return dst
}

// DetectTag locates the backscatter tag that modulates at fMod by finding
// the range bin with the strongest signature and refining the peak with
// parabolic interpolation — the step that turns bin-width resolution into
// centimeter-level localization.
func (r *Radar) DetectTag(matrix [][]float64, grid []float64, fMod, period float64) (Detection, error) {
	return r.DetectTagExcluding(matrix, grid, fMod, period, nil, 0)
}

// DetectTagExcluding is DetectTag with an exclusion mask: bins within
// maskWidth of any excluded bin are skipped. Multi-tag deployments detect
// nodes in order of decreasing signature strength and mask the claimed bins,
// because a strong nearby tag's modulation harmonics and bit-pattern
// sidebands can out-power a weak distant tag's fundamental at the strong
// tag's own range bin (the backscatter near-far problem, §6).
func (r *Radar) DetectTagExcluding(matrix [][]float64, grid []float64, fMod, period float64, exclude []int, maskWidth int) (Detection, error) {
	prof := r.SignatureProfile(matrix, fMod, period)
	if len(prof) < 3 {
		return Detection{}, fmt.Errorf("radar: signature profile too short (%d bins)", len(prof))
	}
	med := dsp.Median(prof) // from the unmasked profile: a stable noise estimate
	for _, e := range exclude {
		lo, hi := e-maskWidth, e+maskWidth
		if lo < 0 {
			lo = 0
		}
		if hi >= len(prof) {
			hi = len(prof) - 1
		}
		for b := lo; b <= hi; b++ {
			prof[b] = 0
		}
	}
	bin, peak := dsp.MaxIndex(prof)
	if med <= 0 || peak < DetectionThreshold*med {
		return Detection{}, ErrTagNotFound
	}
	delta := 0.0
	if bin > 0 && bin < len(prof)-1 {
		// Interpolate on amplitude (√power) for a less biased vertex.
		amps := []float64{math.Sqrt(prof[bin-1]), math.Sqrt(prof[bin]), math.Sqrt(prof[bin+1])}
		d, _ := dsp.ParabolicPeak(amps, 1)
		delta = d
	}
	binWidth := grid[1] - grid[0]
	det := Detection{
		Range: grid[bin] + delta*binWidth,
		Bin:   bin,
		SNRdB: 10 * math.Log10(peak/med),
	}
	if r.tel.detSNR != nil {
		r.tel.detSNR.Set(det.SNRdB)
		// med is the same noise estimate the threshold above used; reusing
		// it skips the sort a fresh SignatureDiag median would cost.
		r.tel.detPSL.Set(SignatureDiagWithMedian(prof, bin, med).PeakToSidelobeDB)
	}
	return det, nil
}

// UplinkFSKConfig describes the tag's slow-time FSK parameters as known to
// the radar.
type UplinkFSKConfig struct {
	// F0 and F1 are the modulation frequencies for 0- and 1-bits.
	F0, F1 float64
	// ChirpsPerBit is the bit window length in chirps.
	ChirpsPerBit int
	// Period is the chirp period in seconds.
	Period float64
}

// DecodeUplinkFSK demodulates the tag's uplink bits from the magnitude
// matrix at the detected range bin: for each bit window, compare slow-time
// tone power at F1 vs F0.
func (r *Radar) DecodeUplinkFSK(matrix [][]float64, bin int, cfg UplinkFSKConfig) ([]bool, error) {
	if cfg.ChirpsPerBit < 2 {
		return nil, fmt.Errorf("radar: chirps per bit %d must be at least 2", cfg.ChirpsPerBit)
	}
	if bin < 0 || len(matrix) == 0 || bin >= len(matrix[0]) {
		return nil, fmt.Errorf("radar: range bin %d out of bounds", bin)
	}
	chirpRate := 1 / cfg.Period
	nBits := len(matrix) / cfg.ChirpsPerBit
	bits := make([]bool, 0, nBits)
	// Gather each bit window's slow-time column once and evaluate both tones
	// over it with hoisted Goertzel constants — bit-identical to two
	// slowTimeTonePower calls, at half the gathers and none of the trig.
	c0 := dsp.NewGoertzelCoeff(cfg.F0, chirpRate)
	c1 := dsp.NewGoertzelCoeff(cfg.F1, chirpRate)
	col := make([]float64, cfg.ChirpsPerBit) // one column buffer for all windows
	for w := 0; w < nBits; w++ {
		sub := matrix[w*cfg.ChirpsPerBit : (w+1)*cfg.ChirpsPerBit]
		for i := range col {
			col[i] = sub[i][bin]
		}
		p0 := dsp.GoertzelPowerWith(col, c0)
		p1 := dsp.GoertzelPowerWith(col, c1)
		bits = append(bits, p1 > p0)
	}
	return bits, nil
}

// DecodeUplinkOOK demodulates on-off keyed uplink bits: tone presence at
// fMod within a bit window is a 1. The threshold adapts to the packet by
// splitting the observed window powers at the midpoint between the strongest
// and weakest windows.
func (r *Radar) DecodeUplinkOOK(matrix [][]float64, bin int, fMod float64, chirpsPerBit int, period float64) ([]bool, error) {
	if chirpsPerBit < 2 {
		return nil, fmt.Errorf("radar: chirps per bit %d must be at least 2", chirpsPerBit)
	}
	if bin < 0 || len(matrix) == 0 || bin >= len(matrix[0]) {
		return nil, fmt.Errorf("radar: range bin %d out of bounds", bin)
	}
	chirpRate := 1 / period
	nBits := len(matrix) / chirpsPerBit
	powers := make([]float64, nBits)
	col := make([]float64, chirpsPerBit)
	lo, hi := math.Inf(1), math.Inf(-1)
	for w := 0; w < nBits; w++ {
		sub := matrix[w*chirpsPerBit : (w+1)*chirpsPerBit]
		p := slowTimeTonePower(col, sub, bin, fMod, chirpRate)
		powers[w] = p
		lo = math.Min(lo, p)
		hi = math.Max(hi, p)
	}
	thr := (lo + hi) / 2
	bits := make([]bool, nBits)
	for w, p := range powers {
		bits[w] = p > thr
	}
	return bits, nil
}
