package radar

import (
	"encoding/binary"
	"math"
	"testing"

	"biscatter/internal/channel"
	"biscatter/internal/fmcw"
)

// FuzzIFCorrection feeds arbitrary IF captures — wrong row lengths, empty
// rows, NaN and infinite samples, any mix of chirp slopes — through the IF
// correction and the slow-time processing that consumes it. None of it may
// panic: a capture is radio input, and corrupt radio input must degrade into
// errors or garbage bins, never a crash.
func FuzzIFCorrection(f *testing.F) {
	chirp := fmcw.ChirpParams{StartFrequency: 9e9, Bandwidth: 1e9, Duration: 60e-6, SampleRate: 2e6}
	rd, err := New(Config{Chirp: chirp, Link: channel.DefaultLink(), NFFT: 256, RangeBins: 64, Workers: 1})
	if err != nil {
		f.Fatal(err)
	}
	builder, err := fmcw.NewFrameBuilder(chirp, 120e-6)
	if err != nil {
		f.Fatal(err)
	}

	// Seeds: a clean capture, a truncated one, and special float values.
	clean := func() []byte {
		frame, err := builder.BuildUniform(4, 60e-6)
		if err != nil {
			f.Fatal(err)
		}
		cap := rd.Observe(frame, Scene{Clutter: []channel.Reflector{{Range: 3, RCSdBsm: 5}}})
		var out []byte
		out = append(out, 4)
		for _, row := range cap.IF {
			for _, v := range row[:8] {
				var b [16]byte
				binary.LittleEndian.PutUint64(b[:8], math.Float64bits(real(v)))
				binary.LittleEndian.PutUint64(b[8:], math.Float64bits(imag(v)))
				out = append(out, b[:]...)
			}
		}
		return out
	}()
	f.Add(clean)
	f.Add(clean[:len(clean)/3])
	f.Add([]byte{1})
	f.Add([]byte{8, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xF0, 0x7F}) // +Inf real part
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		nChirps := 1
		if len(data) > 0 {
			nChirps = int(data[0]%8) + 1
			data = data[1:]
		}
		// Chirp durations cycle through the CSSK band [20 µs, 96 µs] so the
		// correction has genuinely different slopes to reconcile.
		durs := make([]float64, nChirps)
		for i := range durs {
			sel := byte(i)
			if i < len(data) {
				sel = data[i]
			}
			durs[i] = 20e-6 + float64(sel%8)*10.857e-6
		}
		frame, err := builder.Build(durs)
		if err != nil {
			t.Fatalf("builder rejected in-band durations: %v", err)
		}
		// Deal the remaining bytes out as complex IF samples, 16 bytes each,
		// round-robin across chirps: row lengths end up arbitrary (often zero,
		// sometimes longer than SamplesPerChirp) and values include NaN/Inf.
		rows := make([][]complex128, nChirps)
		for i := 0; i+16 <= len(data); i += 16 {
			re := math.Float64frombits(binary.LittleEndian.Uint64(data[i:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(data[i+8:]))
			r := (i / 16) % nChirps
			rows[r] = append(rows[r], complex(re, im))
		}
		cap := &Capture{Frame: frame, IF: rows}

		cm, grid, err := rd.CorrectedMatrixContext(t.Context(), cap)
		if err != nil {
			return
		}
		if len(cm) != nChirps || len(grid) != 64 {
			t.Fatalf("corrected matrix %dx%d, want %dx64", len(cm), len(grid), nChirps)
		}
		matrix := SubtractBackgroundMag(MagnitudeMatrix(cm))
		prof := rd.SignatureProfile(matrix, 1250, 120e-6)
		if len(prof) != len(grid) {
			t.Fatalf("signature profile %d bins, want %d", len(prof), len(grid))
		}
		cfg := UplinkFSKConfig{F0: 1250, F1: 1770, ChirpsPerBit: 2, Period: 120e-6}
		if _, err := rd.DecodeUplinkFSK(matrix, 0, cfg); err != nil {
			return // short captures legitimately fail to demodulate
		}
		rd.RangeDoppler(SubtractBackground(cm))
	})
}
