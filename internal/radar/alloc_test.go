package radar

import (
	"testing"

	"biscatter/internal/channel"
)

// TestRadarArenaFootprintStabilizes drives the full receive pipeline
// repeatedly and checks the pool's worker-arena footprint: it must reach
// its high-water mark within the first frames and stay flat — growth after
// warm-up means some per-chirp or per-bin checkout escapes its reset.
func TestRadarArenaFootprintStabilizes(t *testing.T) {
	r := testRadar(t, 90)
	b := testBuilder(t)
	const nChirps = 64
	const fMod = 2e3
	scene := Scene{
		Clutter: channel.OfficeClutter(),
		Tags:    []TagEcho{{Range: 3.0, States: toneStates(fMod, nChirps), PowerDBm: -95}},
	}
	var after2 int
	for iter := 0; iter < 20; iter++ {
		frame, err := b.BuildUniform(nChirps, 60e-6)
		if err != nil {
			t.Fatal(err)
		}
		cap := r.Observe(frame, scene)
		cm, grid := r.CorrectedMatrix(cap)
		matrix := SubtractBackgroundMag(MagnitudeMatrix(cm))
		if _, err := r.DetectTag(matrix, grid, fMod, tPeriod); err != nil {
			t.Fatal(err)
		}
		if iter == 1 {
			after2 = r.pool.ArenaFootprintBytes()
		}
	}
	got := r.pool.ArenaFootprintBytes()
	if got != after2 {
		t.Fatalf("radar arena footprint grew after warm-up: %d B after 2 frames, %d B after 20", after2, got)
	}
	if after2 == 0 {
		t.Fatal("radar arena footprint is zero; the pipeline is not using the pool arenas")
	}
}
