package radar

import (
	"math"
	"testing"

	"biscatter/internal/channel"
)

func TestEnvironmentMapFindsClutter(t *testing.T) {
	r := testRadar(t, 30)
	b := testBuilder(t)
	frame, _ := b.BuildUniform(32, 60e-6)
	clutter := []channel.Reflector{
		{Range: 1.8, RCSdBsm: -5},
		{Range: 4.5, RCSdBsm: 0},
		{Range: 7.3, RCSdBsm: 3},
	}
	cap := r.Observe(frame, Scene{Clutter: clutter})
	cm, grid := r.CorrectedMatrix(cap)
	targets, err := r.EnvironmentMap(MagnitudeMatrix(cm), grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) < len(clutter) {
		t.Fatalf("found %d targets, want at least %d: %+v", len(targets), len(clutter), targets)
	}
	for _, c := range clutter {
		best := math.Inf(1)
		for _, tgt := range targets {
			if d := math.Abs(tgt.Range - c.Range); d < best {
				best = d
			}
		}
		if best > 0.1 {
			t.Fatalf("reflector at %.1f m not mapped (closest %.2f m off): %+v", c.Range, best, targets)
		}
	}
}

func TestEnvironmentMapSurvivesCSSK(t *testing.T) {
	// The sensing map must hold during communication frames, thanks to the
	// IF correction.
	r := testRadar(t, 31)
	b := testBuilder(t)
	frame, err := b.Build([]float64{24e-6, 96e-6, 48e-6, 72e-6, 32e-6, 88e-6, 40e-6, 60e-6})
	if err != nil {
		t.Fatal(err)
	}
	cap := r.Observe(frame, Scene{Clutter: []channel.Reflector{{Range: 3.9, RCSdBsm: 2}}})
	cm, grid := r.CorrectedMatrix(cap)
	targets, err := r.EnvironmentMap(MagnitudeMatrix(cm), grid)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tgt := range targets {
		if math.Abs(tgt.Range-3.9) < 0.1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("reflector not mapped under CSSK: %+v", targets)
	}
}

func TestEnvironmentMapSortedAndValidated(t *testing.T) {
	r := testRadar(t, 32)
	if _, err := r.EnvironmentMap(nil, nil); err == nil {
		t.Fatal("empty capture should fail")
	}
	b := testBuilder(t)
	frame, _ := b.BuildUniform(16, 60e-6)
	cap := r.Observe(frame, Scene{Clutter: channel.OfficeClutter()})
	cm, grid := r.CorrectedMatrix(cap)
	targets, err := r.EnvironmentMap(MagnitudeMatrix(cm), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(targets); i++ {
		if targets[i].Range < targets[i-1].Range {
			t.Fatal("targets not sorted by range")
		}
	}
}
