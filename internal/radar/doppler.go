package radar

import (
	"fmt"

	"biscatter/internal/dsp"
	"biscatter/internal/fmcw"
)

// EstimateVelocity measures the radial velocity of the scatterer in the
// given range bin by locating the slow-time Doppler peak of the complex
// corrected matrix: Doppler frequency f_d = 2v/λ, sampled at the chirp
// rate. It requires a fixed-slope (sensing-mode) frame — under CSSK the
// per-chirp window length decoheres the slow-time phase (see
// MagnitudeMatrix) and Doppler must come from a dedicated sensing frame.
//
// The unambiguous velocity span is ±λ/(4·T_period); ±4 m/s at 9.5 GHz with
// the 120 µs period, plenty for indoor robots.
func (r *Radar) EstimateVelocity(matrix [][]complex128, bin int, period float64) (float64, error) {
	n := len(matrix)
	if n < 8 {
		return 0, fmt.Errorf("radar: need at least 8 chirps for Doppler, got %d", n)
	}
	if bin < 0 || bin >= len(matrix[0]) {
		return 0, fmt.Errorf("radar: range bin %d out of bounds", bin)
	}
	nfft := dsp.NextPowerOfTwo(4 * n) // zero-pad for a finer peak
	plan, err := dsp.PlanFor(nfft)
	if err != nil {
		return 0, err
	}
	defer r.arena.Reset()
	col := r.arena.Complex(nfft)
	w := dsp.WindowInto(r.arena.Float(n), dsp.WindowHann)
	for i := 0; i < n; i++ {
		col[i] = matrix[i][bin] * complex(w[i], 0)
	}
	plan.ForwardInto(col, col)
	mags := r.arena.Float(nfft)
	dsp.MagnitudesInto(mags, col)
	idx, _ := dsp.MaxIndex(mags)
	delta, _ := dsp.ParabolicPeak(mags, idx)
	chirpRate := 1 / period
	fd := dsp.BinFrequency(idx, nfft, chirpRate) + delta*chirpRate/float64(nfft)
	lambda := fmcw.SpeedOfLight / r.cfg.Chirp.CenterFrequency()
	return fd * lambda / 2, nil
}

// MaxUnambiguousVelocity returns ±λ/(4·T_period), the Doppler aliasing
// bound for the given chirp period.
func (r *Radar) MaxUnambiguousVelocity(period float64) float64 {
	lambda := fmcw.SpeedOfLight / r.cfg.Chirp.CenterFrequency()
	return lambda / (4 * period)
}

// StrongestBin returns the range bin with the largest mean power across the
// frame, a convenience for single-target Doppler tests and demos.
func StrongestBin(matrix [][]complex128) int {
	if len(matrix) == 0 {
		return -1
	}
	nBins := len(matrix[0])
	best, bestP := 0, -1.0
	for b := 0; b < nBins; b++ {
		var p float64
		for i := range matrix {
			v := matrix[i][b]
			p += real(v)*real(v) + imag(v)*imag(v)
		}
		if p > bestP {
			bestP, best = p, b
		}
	}
	return best
}
