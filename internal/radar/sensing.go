package radar

import (
	"fmt"
	"math"
	"sort"

	"biscatter/internal/dsp"
)

// MapTarget is one static object detected by the radar's primary sensing
// function.
type MapTarget struct {
	// Range is the refined target range in meters.
	Range float64
	// PowerDBm is the estimated echo power.
	PowerDBm float64
	// Bin is the range bin of the peak.
	Bin int
}

// EnvironmentMap runs the radar's primary sensing function on a corrected
// capture: it averages the per-chirp magnitude profiles (coherent across the
// frame thanks to the IF correction, even under CSSK) and extracts static
// targets with a CA-CFAR detector. This is the "radar keeps doing its job
// during communication" half of the ISAC story — the drone's obstacle map
// in the paper's warehouse scenario.
func (r *Radar) EnvironmentMap(matrix [][]float64, grid []float64) ([]MapTarget, error) {
	if len(matrix) == 0 || len(grid) < 8 {
		return nil, fmt.Errorf("radar: empty capture")
	}
	nBins := len(matrix[0])
	avg := make([]float64, nBins)
	for _, row := range matrix {
		for j, v := range row {
			avg[j] += v * v
		}
	}
	for j := range avg {
		avg[j] /= float64(len(matrix))
	}
	cfar, err := dsp.NewCFAR(12, 4, 12)
	if err != nil {
		return nil, err
	}
	binWidth := grid[1] - grid[0]
	var out []MapTarget
	for _, bin := range cfar.Detect(avg) {
		if bin < 2 { // skip the DC/leakage region
			continue
		}
		mags := []float64{math.Sqrt(avg[maxInt(bin-1, 0)]), math.Sqrt(avg[bin]), math.Sqrt(avg[minInt(bin+1, nBins-1)])}
		delta := 0.0
		if bin > 0 && bin < nBins-1 {
			d, _ := dsp.ParabolicPeak(mags, 1)
			delta = d
		}
		out = append(out, MapTarget{
			Range:    grid[bin] + delta*binWidth,
			PowerDBm: 10 * math.Log10(avg[bin]),
			Bin:      bin,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Range < out[j].Range })
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
