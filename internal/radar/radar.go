// Package radar implements the BiScatter radar-side receive pipeline (§3.3):
// dechirped IF synthesis for a scene of clutter and modulating tags, range
// FFTs, the IF-correction algorithm that aligns range profiles across
// varying CSSK chirp slopes (Fig. 7), background subtraction, range-Doppler
// processing, matched-filter tag detection with centimeter-level range
// refinement, and slow-time uplink demodulation.
package radar

import (
	"context"
	"fmt"
	"math"

	"biscatter/internal/channel"
	"biscatter/internal/dsp"
	"biscatter/internal/fault"
	"biscatter/internal/fmcw"
	"biscatter/internal/parallel"
	"biscatter/internal/telemetry"
)

// Telemetry stage names for the radar pipeline. Each stage records its
// per-unit durations into the histogram named "<stage>.seconds" (per chirp
// for synthesis / range FFT / IF correction, per call for the Doppler FFT
// and the per-tone matched-filter scan). See DESIGN.md "Telemetry".
const (
	StageSynthesis     = "radar.synthesis"
	StageRangeFFT      = "radar.range_fft"
	StageIFCorrection  = "radar.if_correction"
	StageDopplerFFT    = "radar.doppler_fft"
	StageMatchedFilter = "radar.matched_filter"
)

// Telemetry gauge names shared by the radar detection paths (the core
// exchange engine writes the same gauges for its joint multi-node search).
const (
	GaugeDetectionSNR = "radar.detection.snr_db"
	GaugeDetectionPSL = "radar.detection.psl_db"
)

// AbsorptiveResidualDB is the residual reflection of the tag in absorptive
// mode relative to reflective mode. The non-reflective switch terminates the
// second antenna into 50 Ω, but a small structural reflection remains.
const AbsorptiveResidualDB = -20.0

// Config parameterizes the radar receiver.
type Config struct {
	// Chirp carries the base waveform parameters (f0, B, fs); per-chirp
	// durations come from the frame.
	Chirp fmcw.ChirpParams
	// Link is the budget used to scale echo and noise powers.
	Link channel.Link
	// NFFT is the range FFT size (zero-padded); default 4096. Generous
	// zero-padding matters beyond resolution: the IF correction resamples
	// each slope's spectrum onto the common range grid, and the residual
	// interpolation error on strong clutter must stay far below the tag
	// echo (tags sit ~50 dB below walls).
	NFFT int
	// RangeBins is the size of the common range grid after IF correction;
	// default 512.
	RangeBins int
	// MaxRange is the extent of the common range grid in meters. It must
	// not exceed the unambiguous range of the steepest chirp; default is
	// that bound.
	MaxRange float64
	// Seed seeds the receiver noise.
	Seed int64
	// Workers sizes the worker pool for per-chirp and per-bin processing;
	// non-positive selects GOMAXPROCS. Results are byte-identical for any
	// worker count.
	Workers int
	// Metrics receives per-stage pipeline telemetry (spans, detection
	// gauges, pool counters); nil disables collection at near-zero cost.
	// Telemetry never influences processing results.
	Metrics *telemetry.Metrics
}

// Radar is the receive-side processor.
//
// A Radar owns per-frame scratch buffers that are reused across calls (see
// the ownership notes on ObserveContext and CorrectedMatrixContext), so a
// single Radar must not process two frames concurrently — which was already
// the contract, since the receiver noise comes from one seeded stream.
type Radar struct {
	cfg   Config
	noise *channel.Noise
	plan  *dsp.FFTPlan
	pool  *parallel.Pool
	tel   radarTel

	// scr holds the frame-shaped buffers the hot pipeline reuses: scene
	// scatterers, pre-drawn noise rows, the capture's IF rows and the
	// corrected matrix rows. Rows grow to the largest frame seen and are
	// never shrunk, so steady-state frames allocate nothing.
	scr radarScratch
	// arena backs the serial single-call scratch (Doppler estimation).
	arena *dsp.Arena
}

// scatterer is one point reflector in the synthesized scene: static clutter
// or a (modulating) tag echo.
type scatterer struct {
	rng float64
	vel float64
	amp float64
	tag int // -1 for clutter, else index into scene.Tags
}

// radarScratch is the Radar's reusable per-frame buffer set.
type radarScratch struct {
	scats  []scatterer
	noise  [][]complex128
	ifRows [][]complex128
	cmRows [][]complex128
	// coeffs holds the per-tone Goertzel constants of the batched signature
	// scan (SignatureProfilesInto).
	coeffs []dsp.GoertzelCoeff
	// wins caches the per-duration Hann windows of rangeSpectrumInto. A
	// CSSK frame reuses a few dozen distinct chirp durations (one per
	// constellation point), so the window samples and their running sum are
	// computed once per duration instead of once per chirp.
	wins map[float64]*hannTable
}

// hannTable is one cached range-FFT window: the sample values and their
// prefix sums, both produced by exactly the loop rangeSpectrumInto used to
// run per chirp — same formula, same accumulation order — so windowing and
// normalization stay bit-identical to the uncached path.
type hannTable struct {
	w   []float64
	cum []float64 // cum[k] = Σ_{i<k} w[i]
}

// grow extends the table to n samples of the window spanning span samples.
// Recomputation restarts from zero, so the values are independent of the
// growth history.
func (t *hannTable) grow(span float64, n int) {
	if n <= len(t.w) {
		return
	}
	t.w = dsp.Resize(t.w, n)
	t.cum = dsp.Resize(t.cum, n+1)
	var sum float64
	t.cum[0] = 0
	for k := 0; k < n; k++ {
		w := 0.5 * (1 - math.Cos(2*math.Pi*float64(k)/span))
		t.w[k] = w
		sum += w
		t.cum[k+1] = sum
	}
}

// hannFor returns the cached window for a chirp duration, grown to cover n
// samples. Building mutates the window map, so only serial code may call it
// — the parallel IF-correction fan-out pre-warms every duration in its
// frame first and then reads the map without writes.
func (r *Radar) hannFor(duration float64, n int) *hannTable {
	t := r.scr.wins[duration]
	if t == nil {
		if r.scr.wins == nil {
			r.scr.wins = make(map[float64]*hannTable, 8)
		}
		t = &hannTable{}
		r.scr.wins[duration] = t
	}
	t.grow(duration*r.cfg.Chirp.SampleRate, n)
	return t
}

// ensureRows grows rows to at least n entries (appending nil rows) without
// ever shrinking, so row backing buffers persist across frames.
func ensureRows[T any](rows [][]T, n int) [][]T {
	for len(rows) < n {
		rows = append(rows, nil)
	}
	return rows
}

// radarTel holds the radar's pre-resolved telemetry handles so the hot
// per-chirp loops skip registry lookups. The zero value (all nil) is the
// disabled state: nil histograms hand out inert spans that take no clock
// readings.
type radarTel struct {
	synthesis *telemetry.Histogram
	rangeFFT  *telemetry.Histogram
	ifCorr    *telemetry.Histogram
	doppler   *telemetry.Histogram
	matched   *telemetry.Histogram
	detSNR    *telemetry.Gauge
	detPSL    *telemetry.Gauge
}

// newRadarTel resolves the radar's metric handles; a nil registry yields
// the inert zero value.
func newRadarTel(m *telemetry.Metrics) radarTel {
	if m == nil {
		return radarTel{}
	}
	return radarTel{
		synthesis: m.Histogram(StageSynthesis + ".seconds"),
		rangeFFT:  m.Histogram(StageRangeFFT + ".seconds"),
		ifCorr:    m.Histogram(StageIFCorrection + ".seconds"),
		doppler:   m.Histogram(StageDopplerFFT + ".seconds"),
		matched:   m.Histogram(StageMatchedFilter + ".seconds"),
		detSNR:    m.Gauge(GaugeDetectionSNR),
		detPSL:    m.Gauge(GaugeDetectionPSL),
	}
}

// New builds a Radar, applying defaults.
func New(cfg Config) (*Radar, error) {
	if err := cfg.Chirp.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Link.Validate(); err != nil {
		return nil, err
	}
	if cfg.NFFT == 0 {
		cfg.NFFT = 4096
	}
	if !dsp.IsPowerOfTwo(cfg.NFFT) {
		return nil, fmt.Errorf("radar: NFFT %d must be a power of two", cfg.NFFT)
	}
	if cfg.RangeBins == 0 {
		cfg.RangeBins = 512
	}
	if cfg.RangeBins < 8 {
		return nil, fmt.Errorf("radar: RangeBins %d too small", cfg.RangeBins)
	}
	plan, err := dsp.PlanFor(cfg.NFFT)
	if err != nil {
		return nil, err
	}
	return &Radar{
		cfg:   cfg,
		noise: channel.NewNoise(cfg.Seed),
		plan:  plan,
		pool:  parallel.New(cfg.Workers).Instrument(cfg.Metrics),
		tel:   newRadarTel(cfg.Metrics),
		arena: dsp.NewArena(),
	}, nil
}

// Config returns the radar's configuration with defaults applied.
func (r *Radar) Config() Config { return r.cfg }

// maxRangeFor returns the unambiguous range of a chirp of the given
// duration.
func (r *Radar) maxRangeFor(duration float64) float64 {
	p := r.cfg.Chirp
	p.Duration = duration
	return p.MaxRange()
}

// commonMaxRange returns the extent of the common range grid for a frame:
// the configured MaxRange, or the unambiguous range of the steepest chirp in
// the frame (interpolating beyond it would extrapolate).
func (r *Radar) commonMaxRange(frame *fmcw.Frame) float64 {
	if r.cfg.MaxRange > 0 {
		return r.cfg.MaxRange
	}
	minDur := math.Inf(1)
	for _, c := range frame.Chirps {
		if c.Params.Duration < minDur {
			minDur = c.Params.Duration
		}
	}
	return r.maxRangeFor(minDur)
}

// TagEcho is a modulating backscatter tag in the radar scene.
type TagEcho struct {
	// Range is the tag distance in meters (at the frame start).
	Range float64
	// Velocity is the tag's radial velocity in m/s (positive = receding).
	Velocity float64
	// States holds the per-chirp switch state (true = reflective); its
	// length must cover the frame.
	States []bool
	// PowerDBm is the echo power in reflective mode at the radar input.
	PowerDBm float64
}

// Scene is everything the radar illuminates during a frame.
type Scene struct {
	// Clutter is the static multipath environment.
	Clutter []channel.Reflector
	// Tags are the modulating backscatter nodes.
	Tags []TagEcho
	// Faults injects deterministic impairments (chirp dropouts, in-band
	// interference) into the IF capture; nil — the default — leaves the
	// synthesis byte-identical to a fault-free observation.
	Faults *fault.RadarInjector
}

// Capture is the raw dechirped IF data for one frame: one complex sample
// vector per chirp (lengths vary with chirp duration).
type Capture struct {
	Frame *fmcw.Frame
	IF    [][]complex128
}

// Observe synthesizes the dechirped IF capture for a frame illuminating the
// scene. Echo amplitudes are absolute (√mW units) and receiver thermal noise
// is added at the link's noise floor over the IF bandwidth.
func (r *Radar) Observe(frame *fmcw.Frame, scene Scene) *Capture {
	cap, _ := r.ObserveContext(context.Background(), frame, scene)
	return cap
}

// ObserveContext is Observe with cooperative cancellation: per-chirp
// synthesis fans out across the radar's worker pool and stops early when
// ctx is done, returning ctx.Err(). The receiver noise is drawn serially
// from the radar's single seeded source in chirp order before the fan-out,
// so the capture is bit-identical for any worker count — and to the former
// fully-serial implementation.
//
// Ownership: the capture's IF rows are radar-owned scratch, valid until the
// next Observe/ObserveContext call on the same Radar. Callers that keep a
// capture across frames must copy the rows.
func (r *Radar) ObserveContext(ctx context.Context, frame *fmcw.Frame, scene Scene) (*Capture, error) {
	osp := telemetry.SpanFromContext(ctx).Child("radar.observe", -1)
	osp.SetAttr("chirps", len(frame.Chirps))
	defer osp.End()
	nChirps := len(frame.Chirps)
	r.scr.ifRows = ensureRows(r.scr.ifRows, nChirps)
	cap := &Capture{Frame: frame, IF: r.scr.ifRows[:nChirps]}
	noiseSigma := math.Pow(10, channel.ThermalNoiseDBm(r.cfg.Chirp.SampleRate, r.cfg.Link.RadarNoiseFigureDB)/20)

	scats := r.scr.scats[:0]
	for _, c := range scene.Clutter {
		scats = append(scats, scatterer{
			rng: c.Range,
			vel: c.Velocity,
			amp: math.Pow(10, r.cfg.Link.EchoPowerDBm(c)/20),
			tag: -1,
		})
	}
	for ti, tg := range scene.Tags {
		scats = append(scats, scatterer{
			rng: tg.Range,
			vel: tg.Velocity,
			amp: math.Pow(10, tg.PowerDBm/20),
			tag: ti,
		})
	}
	r.scr.scats = scats

	// Pre-draw each chirp's noise sequentially: the RNG stream is consumed
	// in exactly the order the serial loop consumed it, and the draws are
	// added onto the synthesized echoes afterwards in the same order as
	// before (echo sum first, noise last), keeping the capture bit-exact.
	// The noise rows persist across frames; AddComplex accumulates onto its
	// argument, so each row is cleared before the fresh draw.
	haveNoise := noiseSigma > 0
	if haveNoise {
		r.scr.noise = ensureRows(r.scr.noise, nChirps)
		for i, c := range frame.Chirps {
			nb := dsp.Resize(r.scr.noise[i], c.Params.SamplesPerChirp())
			clear(nb)
			r.noise.AddComplex(nb, noiseSigma)
			r.scr.noise[i] = nb
		}
	}

	residual := math.Pow(10, AbsorptiveResidualDB/20)
	fs := r.cfg.Chirp.SampleRate
	err := r.pool.ForContext(ctx, nChirps, func(i int) error {
		sp := r.tel.synthesis.Span()
		defer sp.End()
		c := frame.Chirps[i]
		n := c.Params.SamplesPerChirp()
		buf := dsp.Resize(cap.IF[i], n)
		clear(buf)
		cap.IF[i] = buf
		chirpStart := float64(i) * frame.Period
		// A TX dropout silences the echo (entirely, or beyond a clipped
		// prefix) while the receiver noise below stays untouched.
		keep := scene.Faults.EchoSamples(i, n)
		for _, sc := range scats {
			amp := sc.amp
			if sc.tag >= 0 {
				st := scene.Tags[sc.tag].States
				if i < len(st) && !st[i] {
					amp *= residual
				}
			}
			// Range at this chirp's start: moving scatterers migrate across
			// the frame and accrue the Doppler phase progression.
			rng := sc.rng + sc.vel*chirpStart
			fIF := c.Params.IFFrequency(rng)
			dphi := 2 * math.Pi * fIF / fs
			ph := geomPhase(rng, r.cfg.Chirp.StartFrequency)
			for k := 0; k < keep; k++ {
				buf[k] += complex(amp*math.Cos(ph), amp*math.Sin(ph))
				ph += dphi
			}
		}
		if haveNoise {
			nb := r.scr.noise[i]
			for k := range buf {
				buf[k] += nb[k]
			}
		}
		scene.Faults.Jam(buf, i)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cap, nil
}

// geomPhase is the round-trip carrier phase of a scatterer at range rng.
func geomPhase(rng, f0 float64) float64 {
	return math.Mod(4*math.Pi*f0*rng/fmcw.SpeedOfLight, 2*math.Pi)
}

// rangeSpectrum computes the windowed zero-padded range FFT of one chirp's
// IF samples. The Hann window is evaluated over the chirp's nominal duration
// rather than its integer sample count: the sample count quantizes the
// window length by up to half a sample, which would wobble the window's
// range-domain width differently per CSSK slope and leak strong clutter
// through background subtraction.
func (r *Radar) rangeSpectrum(ifSamples []complex128, duration float64) []complex128 {
	return r.rangeSpectrumInto(make([]complex128, r.cfg.NFFT), ifSamples, duration)
}

// rangeSpectrumInto is rangeSpectrum writing into dst, which must have
// length NFFT and be zeroed beyond len(ifSamples) — arena checkouts and
// freshly made buffers both satisfy that.
func (r *Radar) rangeSpectrumInto(dst, ifSamples []complex128, duration float64) []complex128 {
	buf := dst
	n := len(ifSamples)
	if n > r.cfg.NFFT {
		n = r.cfg.NFFT
	}
	var sumW float64
	if n > 0 {
		t := r.hannFor(duration, n)
		w := t.w[:n]
		for k := 0; k < n; k++ {
			buf[k] = ifSamples[k] * complex(w[k], 0)
		}
		sumW = t.cum[n]
	}
	r.plan.ForwardInto(buf, buf)
	if sumW > 0 {
		// Normalize by the window's coherent sum so a unit-amplitude
		// scatterer produces the same peak height regardless of the chirp
		// duration — without this, CSSK's varying chirp lengths amplitude-
		// modulate every range bin and corrupt slow-time processing.
		s := complex(1/sumW, 0)
		for k := range buf {
			buf[k] *= s
		}
	}
	return buf
}

// RawRangeProfile returns the uncorrected magnitude range profile of chirp i
// together with the per-bin ranges implied by that chirp's own slope
// (Eq. 15). Profiles of different-slope chirps are mutually inconsistent —
// the Fig. 7(a) ambiguity.
func (r *Radar) RawRangeProfile(cap *Capture, i int) (mags, ranges []float64) {
	c := cap.Frame.Chirps[i]
	spec := r.rangeSpectrum(cap.IF[i], c.Params.Duration)
	// The IF is complex (IQ receiver), so all NFFT bins are usable and bin
	// NFFT-1 approaches the full unambiguous range rmax.
	full := r.cfg.NFFT
	mags = make([]float64, full)
	ranges = make([]float64, full)
	rmax := r.maxRangeFor(c.Params.Duration)
	for n := 0; n < full; n++ {
		v := spec[n]
		mags[n] = math.Hypot(real(v), imag(v))
		// The FFT spans fs across NFFT bins, and an IF of fs corresponds
		// to rmax at this chirp's slope (Eq. 4), so bin n maps to
		// n/NFFT·rmax (Eq. 15).
		ranges[n] = float64(n) / float64(r.cfg.NFFT) * rmax
	}
	return mags, ranges
}

// CorrectedMatrix applies BiScatter's IF correction: every chirp's complex
// range profile is converted from FFT bins to meters using its own slope and
// resampled onto the frame's common range grid, so slow-time processing sees
// aligned profiles despite the varying CSSK slopes.
func (r *Radar) CorrectedMatrix(cap *Capture) ([][]complex128, []float64) {
	out, grid, _ := r.CorrectedMatrixContext(context.Background(), cap)
	return out, grid
}

// CorrectedMatrixContext is CorrectedMatrix with cooperative cancellation.
// Each chirp's range FFT and grid resampling is independent, so the rows
// fan out across the worker pool and are written by index; the matrix is
// byte-identical for any worker count. Per-chirp intermediates (the NFFT
// spectrum and its split real/imag views) come from the claiming worker's
// arena, so steady-state frames allocate nothing here.
//
// Ownership: the returned rows are radar-owned scratch, valid until the next
// CorrectedMatrix/CorrectedMatrixContext call on the same Radar; callers
// that keep a matrix across frames must copy it.
func (r *Radar) CorrectedMatrixContext(ctx context.Context, cap *Capture) ([][]complex128, []float64, error) {
	csp := telemetry.SpanFromContext(ctx).Child("radar.if_correction", -1)
	defer csp.End()
	grid := r.RangeGrid(cap.Frame)
	// Pre-warm the window cache serially for every duration in the frame:
	// the workers below may then look windows up concurrently without any
	// map writes (see hannFor).
	for i, c := range cap.Frame.Chirps {
		n := len(cap.IF[i])
		if n > r.cfg.NFFT {
			n = r.cfg.NFFT
		}
		r.hannFor(c.Params.Duration, n)
	}
	r.scr.cmRows = ensureRows(r.scr.cmRows, len(cap.IF))
	out := r.scr.cmRows[:len(cap.IF)]
	err := r.pool.ForContextArena(ctx, len(cap.IF), func(i int, a *dsp.Arena) error {
		c := cap.Frame.Chirps[i]
		sp := r.tel.rangeFFT.Span()
		spec := r.rangeSpectrumInto(a.Complex(r.cfg.NFFT), cap.IF[i], c.Params.Duration)
		sp.End()
		sp = r.tel.ifCorr.Span()
		defer sp.End()
		full := r.cfg.NFFT
		re := a.Float(full)
		im := a.Float(full)
		for n := 0; n < full; n++ {
			re[n] = real(spec[n])
			im[n] = imag(spec[n])
		}
		rmax := r.maxRangeFor(c.Params.Duration)
		step := rmax / float64(r.cfg.NFFT)
		reG := dsp.ResampleCubicInto(a.Float(len(grid)), re, 0, step, grid)
		imG := dsp.ResampleCubicInto(a.Float(len(grid)), im, 0, step, grid)
		row := dsp.Resize(out[i], len(grid))
		for n := range grid {
			row[n] = complex(reG[n], imG[n])
		}
		out[i] = row
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, grid, nil
}

// RangeGrid returns the common range grid for a frame.
func (r *Radar) RangeGrid(frame *fmcw.Frame) []float64 {
	maxR := r.commonMaxRange(frame)
	grid := make([]float64, r.cfg.RangeBins)
	for i := range grid {
		grid[i] = float64(i) / float64(r.cfg.RangeBins) * maxR
	}
	return grid
}

// SubtractBackground subtracts the first chirp's corrected profile from
// every row in place and returns the matrix. BiScatter uses the first chirp
// of each frame for background subtraction to remove static multipath
// (§3.3); the modulating tag survives because its amplitude toggles.
func SubtractBackground(matrix [][]complex128) [][]complex128 {
	if len(matrix) == 0 {
		return matrix
	}
	bg := append([]complex128(nil), matrix[0]...)
	for i := range matrix {
		for j := range matrix[i] {
			matrix[i][j] -= bg[j]
		}
	}
	return matrix
}

// RangeDoppler computes the slow-time FFT across chirps for every range bin
// of a corrected matrix, returning magnitudes indexed [doppler][range].
func (r *Radar) RangeDoppler(matrix [][]complex128) [][]float64 {
	sp := r.tel.doppler.Span()
	defer sp.End()
	nChirps := len(matrix)
	if nChirps == 0 {
		return nil
	}
	nBins := len(matrix[0])
	nfft := dsp.NextPowerOfTwo(nChirps)
	plan, err := dsp.PlanFor(nfft)
	if err != nil {
		panic(err) // unreachable: nfft is a power of two
	}
	out := make([][]float64, nfft)
	for d := range out {
		out[d] = make([]float64, nBins)
	}
	r.pool.ForArena(nBins, func(b int, a *dsp.Arena) {
		col := a.Complex(nfft)
		for i := 0; i < nChirps; i++ {
			col[i] = matrix[i][b]
		}
		plan.ForwardInto(col, col)
		for d := 0; d < nfft; d++ {
			out[d][b] = math.Hypot(real(col[d]), imag(col[d]))
		}
	})
	return out
}
