package radar

import (
	"math"
	"testing"
	"testing/quick"
)

// TestLocalizationAccuracyProperty sweeps random tag ranges: at a strong
// echo the refined estimate must stay within 3 cm (about one eighth of the
// 15 cm range-resolution cell), which is the mechanism behind the paper's
// centimeter-level claim.
func TestLocalizationAccuracyProperty(t *testing.T) {
	r := testRadar(t, 40)
	b := testBuilder(t)
	const nChirps = 64
	const fMod = 2e3
	f := func(raw uint16) bool {
		dist := 1.0 + float64(raw%90)/10 // 1.0 … 9.9 m
		frame, err := b.BuildUniform(nChirps, 60e-6)
		if err != nil {
			return false
		}
		scene := Scene{Tags: []TagEcho{{
			Range:    dist,
			States:   toneStates(fMod, nChirps),
			PowerDBm: -95,
		}}}
		cap := r.Observe(frame, scene)
		cm, grid := r.CorrectedMatrix(cap)
		matrix := SubtractBackgroundMag(MagnitudeMatrix(cm))
		det, err := r.DetectTag(matrix, grid, fMod, tPeriod)
		if err != nil {
			return false
		}
		return math.Abs(det.Range-dist) < 0.03
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestUplinkRobustToMissingTrailingChirps truncates the capture (the radar
// stopped early): decoding must degrade gracefully, returning fewer bits
// rather than wrong ones.
func TestUplinkRobustToMissingTrailingChirps(t *testing.T) {
	r := testRadar(t, 41)
	b := testBuilder(t)
	const cpb = 32
	bits := []bool{true, false, true, true}
	nChirps := len(bits) * cpb
	mod := UplinkFSKConfig{F0: 1250, F1: 1770, ChirpsPerBit: cpb, Period: tPeriod}
	mkStates := func(n int) []bool {
		out := make([]bool, n)
		for k := 0; k < n; k++ {
			freq := mod.F0
			if bi := k / cpb; bi < len(bits) && bits[bi] {
				freq = mod.F1
			}
			out[k] = math.Mod(float64(k)*tPeriod*freq, 1) < 0.5
		}
		return out
	}
	// Full frame decodes all bits; a frame cut to 2.5 bit windows decodes 2.
	for _, chirps := range []int{nChirps, nChirps/2 + cpb/2} {
		frame, err := b.BuildUniform(chirps, 60e-6)
		if err != nil {
			t.Fatal(err)
		}
		scene := Scene{Tags: []TagEcho{{Range: 2.0, States: mkStates(chirps), PowerDBm: -95}}}
		cap := r.Observe(frame, scene)
		cm, grid := r.CorrectedMatrix(cap)
		matrix := MagnitudeMatrix(cm)
		det, err := r.DetectTag(matrix, grid, mod.F0, tPeriod)
		if err != nil {
			det, err = r.DetectTag(matrix, grid, mod.F1, tPeriod)
			if err != nil {
				t.Fatalf("chirps=%d: %v", chirps, err)
			}
		}
		got, err := r.DecodeUplinkFSK(matrix, det.Bin, mod)
		if err != nil {
			t.Fatal(err)
		}
		want := chirps / cpb
		if len(got) != want {
			t.Fatalf("chirps=%d: decoded %d bits, want %d", chirps, len(got), want)
		}
		for i := range got {
			if got[i] != bits[i] {
				t.Fatalf("chirps=%d: bit %d wrong", chirps, i)
			}
		}
	}
}

// TestDetectTagExcludingMasksBins verifies the exclusion mask used by the
// multi-tag successive detection.
func TestDetectTagExcludingMasksBins(t *testing.T) {
	r := testRadar(t, 42)
	b := testBuilder(t)
	const nChirps = 64
	const fMod = 2e3
	frame, _ := b.BuildUniform(nChirps, 60e-6)
	scene := Scene{Tags: []TagEcho{{Range: 3.0, States: toneStates(fMod, nChirps), PowerDBm: -95}}}
	cap := r.Observe(frame, scene)
	cm, grid := r.CorrectedMatrix(cap)
	matrix := SubtractBackgroundMag(MagnitudeMatrix(cm))
	det, err := r.DetectTag(matrix, grid, fMod, tPeriod)
	if err != nil {
		t.Fatal(err)
	}
	// Masking the detected bin must move or kill the detection.
	det2, err := r.DetectTagExcluding(matrix, grid, fMod, tPeriod, []int{det.Bin}, 8)
	if err == nil && det2.Bin == det.Bin {
		t.Fatal("excluded bin was detected again")
	}
}
