package cssk

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzCSSKDemod drives the demodulation decision layer with arbitrary
// inputs: ClassifyBeat must map every float64 (including NaN and the
// infinities) onto a constellation member without panicking, and the
// bit-packing layer must round-trip arbitrary bit strings at every symbol
// size.
func FuzzCSSKDemod(f *testing.F) {
	a, err := NewAlphabet(Config{
		Bandwidth:        1e9,
		Period:           120e-6,
		MinChirpDuration: 20e-6,
		DeltaT:           1.9e-9,
		MinBeatSpacing:   500,
		SymbolBits:       5,
	})
	if err != nil {
		f.Fatal(err)
	}
	beats := a.Beats()
	member := make(map[float64]bool, len(beats))
	for _, b := range beats {
		member[b] = true
	}

	seed := func(beat float64, sb byte, bits []byte) []byte {
		out := make([]byte, 9, 9+len(bits))
		binary.LittleEndian.PutUint64(out, math.Float64bits(beat))
		out[8] = sb
		return append(out, bits...)
	}
	f.Add(seed(beats[0], 5, []byte("hello")))
	f.Add(seed(beats[len(beats)-1]+1e6, 1, nil))
	f.Add(seed(math.NaN(), 16, []byte{0xFF, 0x00}))
	f.Add(seed(math.Inf(1), 7, []byte{1, 2, 3}))
	f.Add(seed(-12345.6, 3, []byte{0xAA}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var beat float64
		symbolBits := 5
		var raw []byte
		if len(data) >= 9 {
			beat = math.Float64frombits(binary.LittleEndian.Uint64(data))
			symbolBits = int(data[8]%16) + 1
			raw = data[9:]
		}

		s := a.ClassifyBeat(beat)
		if !member[s.Beat] {
			t.Fatalf("ClassifyBeat(%v) returned a beat outside the constellation: %v", beat, s.Beat)
		}
		switch s.Kind {
		case KindData:
			v, err := a.ValueForSymbol(s)
			if err != nil {
				t.Fatalf("classified data symbol does not map to a value: %v", err)
			}
			rt, err := a.SymbolForValue(v)
			if err != nil || rt.Index != s.Index {
				t.Fatalf("SymbolForValue(ValueForSymbol) mismatch: %v %v", rt, err)
			}
		case KindHeader, KindSync:
			// Control symbols carry no data; nothing further to check.
		default:
			t.Fatalf("ClassifyBeat returned invalid kind %v", s.Kind)
		}

		// The bit-packing layer must round-trip at any symbol size.
		bits := BytesToBits(raw)
		values := PackBits(bits, symbolBits)
		back := UnpackBits(values, symbolBits, len(bits))
		if len(back) != len(bits) {
			t.Fatalf("unpack length %d != %d", len(back), len(bits))
		}
		for i := range bits {
			if back[i] != bits[i] {
				t.Fatalf("bit %d flipped through pack/unpack at %d bits/symbol", i, symbolBits)
			}
		}
		round := BitsToBytes(back)
		for i := range raw {
			if round[i] != raw[i] {
				t.Fatalf("byte %d corrupted through bits round trip", i)
			}
		}

		// Gray coding must be a bijection on the value domain.
		if len(raw) >= 4 {
			v := binary.LittleEndian.Uint32(raw)
			if GrayDecode(GrayEncode(v)) != v {
				t.Fatalf("gray round trip failed for %d", v)
			}
		}
	})
}
