// Package cssk implements Chirp-Slope-Shift Keying, BiScatter's downlink
// modulation (§3.1): multi-bit symbols are encoded by varying the FMCW chirp
// duration (and therefore slope) while keeping bandwidth — and hence radar
// range resolution — fixed. Each symbol corresponds to a distinct beat
// frequency at the tag's delay-line decoder (Eq. 11), so the alphabet is
// constructed in beat-frequency space and mapped back to chirp durations.
package cssk

import (
	"fmt"
	"math"
	"sort"
)

// SymbolKind distinguishes the reserved preamble slopes from data slopes.
type SymbolKind int

// Symbol kinds. The paper allocates two unique chirp slopes for the header
// and sync fields of the preamble (Fig. 3).
const (
	KindData SymbolKind = iota
	KindHeader
	KindSync
)

// String implements fmt.Stringer.
func (k SymbolKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindHeader:
		return "header"
	case KindSync:
		return "sync"
	default:
		return fmt.Sprintf("SymbolKind(%d)", int(k))
	}
}

// Symbol is one CSSK constellation point.
type Symbol struct {
	// Kind says whether this is a data, header or sync slope.
	Kind SymbolKind
	// Index is the data symbol index in [0, 2^bits) for data symbols and -1
	// for header/sync.
	Index int
	// Duration is the chirp duration T_chirp in seconds.
	Duration float64
	// Beat is the expected decoder beat frequency Δf in Hz.
	Beat float64
}

// Config parameterizes an alphabet.
type Config struct {
	// Bandwidth is the fixed chirp bandwidth B (Hz).
	Bandwidth float64
	// Period is the chirp period T_period (s); it bounds the maximum chirp
	// duration and sets the symbol time (Eq. 14).
	Period float64
	// MinChirpDuration is the shortest chirp the radar can emit (s).
	// Commercial FMCW radars bottom out at 10–20 µs (§6).
	MinChirpDuration float64
	// MaxChirpDuration is the longest chirp; zero means 0.8·Period, the
	// commercial-radar duty-cycle limit (§3.1).
	MaxChirpDuration float64
	// DeltaT is the tag's calibrated delay-line difference ΔT (s).
	DeltaT float64
	// MinBeatSpacing is Δf_int (Hz): the smallest spacing between adjacent
	// symbol beats the tag can resolve above its noise floor (Eq. 13).
	MinBeatSpacing float64
	// SymbolBits is the number of bits per data symbol (Eq. 12).
	SymbolBits int
}

// maxDutyCycle mirrors fmcw.MaxDutyCycle without importing it (keeps the
// modulation layer free of the waveform layer).
const maxDutyCycle = 0.8

// withDefaults fills derived defaults.
func (c Config) withDefaults() Config {
	if c.MaxChirpDuration == 0 {
		c.MaxChirpDuration = maxDutyCycle * c.Period
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	switch {
	case c.Bandwidth <= 0:
		return fmt.Errorf("cssk: bandwidth %v Hz must be positive", c.Bandwidth)
	case c.Period <= 0:
		return fmt.Errorf("cssk: period %v s must be positive", c.Period)
	case c.MinChirpDuration <= 0:
		return fmt.Errorf("cssk: min chirp duration %v s must be positive", c.MinChirpDuration)
	case c.MaxChirpDuration > maxDutyCycle*c.Period+1e-15:
		return fmt.Errorf("cssk: max chirp duration %v s exceeds %.0f%% of period %v s",
			c.MaxChirpDuration, maxDutyCycle*100, c.Period)
	case c.MinChirpDuration >= c.MaxChirpDuration:
		return fmt.Errorf("cssk: min chirp duration %v s must be below max %v s",
			c.MinChirpDuration, c.MaxChirpDuration)
	case c.DeltaT <= 0:
		return fmt.Errorf("cssk: delay-line ΔT %v s must be positive", c.DeltaT)
	case c.MinBeatSpacing <= 0:
		return fmt.Errorf("cssk: minimum beat spacing %v Hz must be positive", c.MinBeatSpacing)
	case c.SymbolBits < 1 || c.SymbolBits > 16:
		return fmt.Errorf("cssk: symbol bits %d must be in [1, 16]", c.SymbolBits)
	}
	return nil
}

// BeatRange returns (Δf_min, Δf_max): the decoder beat frequencies for the
// longest and shortest chirps (Eq. 11 with T = max and min duration).
func (c Config) BeatRange() (lo, hi float64) {
	c = c.withDefaults()
	lo = c.Bandwidth * c.DeltaT / c.MaxChirpDuration
	hi = c.Bandwidth * c.DeltaT / c.MinChirpDuration
	return lo, hi
}

// MaxSlopes returns N_slope (Eq. 13): how many distinguishable slopes the
// beat range admits at the configured spacing.
func (c Config) MaxSlopes() int {
	lo, hi := c.BeatRange()
	if hi <= lo {
		return 0
	}
	return int((hi-lo)/c.MinBeatSpacing) + 1
}

// MaxSymbolBits returns the largest usable symbol size (Eq. 12), reserving
// the two preamble slopes.
func (c Config) MaxSymbolBits() int {
	n := c.MaxSlopes() - 2
	if n < 2 {
		return 0
	}
	return int(math.Floor(math.Log2(float64(n))))
}

// DataRate returns the downlink data rate in bit/s (Eq. 14):
// N_symbol / T_period.
func (c Config) DataRate() float64 {
	return float64(c.SymbolBits) / c.Period
}

// WithSymbolBits returns a copy of the configuration at a different symbol
// width, every physical parameter unchanged — the one-field rewrite the
// link controller's degradation ladder performs when it trades bits for
// slope spacing.
func (c Config) WithSymbolBits(bits int) Config {
	c.SymbolBits = bits
	return c
}

// SpacingForBits returns the beat spacing (Hz) an alphabet at the given
// symbol width would place between adjacent constellation points — the
// robustness margin a degradation step buys. Fewer bits spread the same
// beat range over fewer slopes, widening the spacing. Returns 0 when the
// width doesn't fit the configuration.
func (c Config) SpacingForBits(bits int) float64 {
	if bits < 1 || bits > 16 {
		return 0
	}
	m := (1 << bits) + 2 // data symbols plus the header and sync slopes
	lo, hi := c.BeatRange()
	if hi <= lo {
		return 0
	}
	return (hi - lo) / float64(m-1)
}

// Alphabet is a constructed CSSK constellation: 2^SymbolBits data symbols
// plus the header and sync symbols, all at distinct beat frequencies.
type Alphabet struct {
	cfg    Config
	header Symbol
	sync   Symbol
	data   []Symbol  // indexed by data symbol index
	beats  []float64 // all beats ascending, for classification
	byBeat []Symbol  // symbols in the same order as beats
}

// NewAlphabet constructs the constellation. Beats are placed uniformly
// between Δf_min and Δf_max; the lowest beat (longest, flattest chirp) is the
// header, the highest is the sync, and the 2^bits interior points carry data.
// Construction fails if the resulting spacing would fall below
// MinBeatSpacing — the Eq. 13 capacity limit.
func NewAlphabet(cfg Config) (*Alphabet, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := (1 << cfg.SymbolBits) + 2
	lo, hi := cfg.BeatRange()
	spacing := (hi - lo) / float64(m-1)
	if spacing < cfg.MinBeatSpacing {
		return nil, fmt.Errorf(
			"cssk: %d bits/symbol needs %d slopes but spacing %.1f Hz < Δf_int %.1f Hz (max %d bits)",
			cfg.SymbolBits, m, spacing, cfg.MinBeatSpacing, cfg.MaxSymbolBits())
	}
	a := &Alphabet{cfg: cfg}
	mkSymbol := func(beat float64, kind SymbolKind, idx int) Symbol {
		return Symbol{
			Kind:     kind,
			Index:    idx,
			Duration: cfg.Bandwidth * cfg.DeltaT / beat,
			Beat:     beat,
		}
	}
	for i := 0; i < m; i++ {
		beat := lo + float64(i)*spacing
		var s Symbol
		switch i {
		case 0:
			s = mkSymbol(beat, KindHeader, -1)
			a.header = s
		case m - 1:
			s = mkSymbol(beat, KindSync, -1)
			a.sync = s
		default:
			s = mkSymbol(beat, KindData, i-1)
			a.data = append(a.data, s)
		}
		a.beats = append(a.beats, beat)
		a.byBeat = append(a.byBeat, s)
	}
	return a, nil
}

// Config returns the alphabet's configuration (with defaults applied).
func (a *Alphabet) Config() Config { return a.cfg }

// SymbolBits returns the bits per data symbol.
func (a *Alphabet) SymbolBits() int { return a.cfg.SymbolBits }

// DataSymbolCount returns 2^SymbolBits.
func (a *Alphabet) DataSymbolCount() int { return len(a.data) }

// Header returns the header-field symbol.
func (a *Alphabet) Header() Symbol { return a.header }

// Sync returns the sync-field symbol.
func (a *Alphabet) Sync() Symbol { return a.sync }

// DataSymbol returns the data symbol with the given index.
func (a *Alphabet) DataSymbol(idx int) (Symbol, error) {
	if idx < 0 || idx >= len(a.data) {
		return Symbol{}, fmt.Errorf("cssk: data symbol index %d out of range [0, %d)", idx, len(a.data))
	}
	return a.data[idx], nil
}

// Beats returns every constellation beat frequency in ascending order
// (header, data..., sync). The tag decoder uses these as its Goertzel bank.
func (a *Alphabet) Beats() []float64 {
	return append([]float64(nil), a.beats...)
}

// MinSpacing returns the spacing between adjacent beats.
func (a *Alphabet) MinSpacing() float64 {
	if len(a.beats) < 2 {
		return 0
	}
	return a.beats[1] - a.beats[0]
}

// SymbolForValue maps a SymbolBits-wide value to its data symbol using Gray
// coding: constellation position i carries value GrayEncode(i), so adjacent
// beats carry values differing in exactly one bit and a decision error to a
// neighboring beat corrupts only one bit.
func (a *Alphabet) SymbolForValue(v uint32) (Symbol, error) {
	if int(v) >= len(a.data) {
		return Symbol{}, fmt.Errorf("cssk: value %d does not fit in %d bits", v, a.cfg.SymbolBits)
	}
	return a.data[GrayDecode(v)], nil
}

// ValueForSymbol inverts SymbolForValue for a data symbol.
func (a *Alphabet) ValueForSymbol(s Symbol) (uint32, error) {
	if s.Kind != KindData {
		return 0, fmt.Errorf("cssk: %v symbol carries no data", s.Kind)
	}
	if s.Index < 0 || s.Index >= len(a.data) {
		return 0, fmt.Errorf("cssk: data symbol index %d out of range", s.Index)
	}
	return GrayEncode(uint32(s.Index)), nil
}

// ClassifyBeat returns the constellation symbol nearest to a measured beat
// frequency — the tag's per-chirp decision rule.
func (a *Alphabet) ClassifyBeat(beat float64) Symbol {
	i := sort.SearchFloat64s(a.beats, beat)
	switch {
	case i == 0:
		return a.byBeat[0]
	case i == len(a.beats):
		return a.byBeat[len(a.byBeat)-1]
	default:
		if beat-a.beats[i-1] <= a.beats[i]-beat {
			return a.byBeat[i-1]
		}
		return a.byBeat[i]
	}
}

// Durations returns the chirp durations for a sequence of data symbol
// values, for handing to the frame builder.
func (a *Alphabet) Durations(values []uint32) ([]float64, error) {
	out := make([]float64, len(values))
	for i, v := range values {
		s, err := a.SymbolForValue(v)
		if err != nil {
			return nil, fmt.Errorf("cssk: value %d: %w", i, err)
		}
		out[i] = s.Duration
	}
	return out, nil
}

// GrayEncode converts a binary value to its Gray code.
func GrayEncode(v uint32) uint32 { return v ^ (v >> 1) }

// GrayDecode converts a Gray code back to binary.
func GrayDecode(g uint32) uint32 {
	v := g
	for shift := uint(1); shift < 32; shift <<= 1 {
		v ^= v >> shift
	}
	return v
}

// PackBits packs a bit slice (MSB first within each symbol) into
// SymbolBits-wide values, zero-padding the tail.
func PackBits(bits []bool, symbolBits int) []uint32 {
	if symbolBits <= 0 {
		panic("cssk: PackBits requires symbolBits > 0")
	}
	n := (len(bits) + symbolBits - 1) / symbolBits
	out := make([]uint32, n)
	for i, b := range bits {
		if b {
			sym := i / symbolBits
			pos := symbolBits - 1 - i%symbolBits
			out[sym] |= 1 << pos
		}
	}
	return out
}

// UnpackBits expands SymbolBits-wide values back into a bit slice of length
// n (it truncates the zero padding added by PackBits).
func UnpackBits(values []uint32, symbolBits, n int) []bool {
	if symbolBits <= 0 {
		panic("cssk: UnpackBits requires symbolBits > 0")
	}
	out := make([]bool, 0, n)
	for _, v := range values {
		for pos := symbolBits - 1; pos >= 0 && len(out) < n; pos-- {
			out = append(out, v&(1<<pos) != 0)
		}
	}
	for len(out) < n {
		out = append(out, false)
	}
	return out
}

// BytesToBits converts bytes to bits, MSB first.
func BytesToBits(data []byte) []bool {
	out := make([]bool, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			out = append(out, b&(1<<uint(i)) != 0)
		}
	}
	return out
}

// BitsToBytes converts bits (MSB first) back to bytes, zero-padding the last
// byte.
func BitsToBytes(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << uint(7-i%8)
		}
	}
	return out
}
