package cssk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// testConfig mirrors the paper's 9 GHz setup: 1 GHz bandwidth, 120 µs chirp
// period, 20 µs minimum chirp, 45-inch coax ΔL at k = 0.7.
func testConfig(bits int) Config {
	const deltaL = 45 * 0.0254
	const k = 0.7
	return Config{
		Bandwidth:        1e9,
		Period:           120e-6,
		MinChirpDuration: 20e-6,
		DeltaT:           deltaL / (k * 299792458.0),
		MinBeatSpacing:   500,
		SymbolBits:       bits,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(5).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mod := func(f func(*Config)) Config {
		c := testConfig(5)
		f(&c)
		return c
	}
	bad := []Config{
		mod(func(c *Config) { c.Bandwidth = 0 }),
		mod(func(c *Config) { c.Period = 0 }),
		mod(func(c *Config) { c.MinChirpDuration = 0 }),
		mod(func(c *Config) { c.MinChirpDuration = 100e-6 }), // above max (96 µs)
		mod(func(c *Config) { c.MaxChirpDuration = 110e-6 }), // above duty cycle
		mod(func(c *Config) { c.DeltaT = 0 }),
		mod(func(c *Config) { c.MinBeatSpacing = 0 }),
		mod(func(c *Config) { c.SymbolBits = 0 }),
		mod(func(c *Config) { c.SymbolBits = 17 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBeatRangeMatchesEquation11(t *testing.T) {
	c := testConfig(5)
	lo, hi := c.BeatRange()
	wantLo := c.Bandwidth * c.DeltaT / (0.8 * c.Period)
	wantHi := c.Bandwidth * c.DeltaT / c.MinChirpDuration
	if !approxEq(lo, wantLo, 1e-6) || !approxEq(hi, wantHi, 1e-6) {
		t.Fatalf("beat range (%v, %v), want (%v, %v)", lo, hi, wantLo, wantHi)
	}
	if hi <= lo {
		t.Fatal("beat range must be non-empty")
	}
}

func TestMaxSlopesAndBitsEquations12And13(t *testing.T) {
	c := testConfig(5)
	lo, hi := c.BeatRange()
	wantSlopes := int((hi-lo)/c.MinBeatSpacing) + 1
	if got := c.MaxSlopes(); got != wantSlopes {
		t.Fatalf("MaxSlopes %d, want %d", got, wantSlopes)
	}
	wantBits := int(math.Floor(math.Log2(float64(wantSlopes - 2))))
	if got := c.MaxSymbolBits(); got != wantBits {
		t.Fatalf("MaxSymbolBits %d, want %d", got, wantBits)
	}
}

func TestDataRateEquation14(t *testing.T) {
	// §3.2.2's example: 10-bit symbols at 100 µs period give 0.1 Mbps.
	c := Config{SymbolBits: 10, Period: 100e-6}
	if got := c.DataRate(); !approxEq(got, 1e5, 1e-6) {
		t.Fatalf("data rate %v, want 1e5 bit/s", got)
	}
}

func TestNewAlphabetStructure(t *testing.T) {
	a, err := NewAlphabet(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.DataSymbolCount() != 32 {
		t.Fatalf("data symbols %d, want 32", a.DataSymbolCount())
	}
	if a.Header().Kind != KindHeader || a.Sync().Kind != KindSync {
		t.Fatal("wrong preamble symbol kinds")
	}
	beats := a.Beats()
	if len(beats) != 34 {
		t.Fatalf("total beats %d, want 34", len(beats))
	}
	// Ascending and evenly spaced.
	spacing := beats[1] - beats[0]
	for i := 1; i < len(beats); i++ {
		if beats[i] <= beats[i-1] {
			t.Fatal("beats not ascending")
		}
		if !approxEq(beats[i]-beats[i-1], spacing, 1e-6) {
			t.Fatal("beats not evenly spaced")
		}
	}
	if spacing < testConfig(5).MinBeatSpacing {
		t.Fatalf("spacing %v below Δf_int", spacing)
	}
	if !approxEq(a.MinSpacing(), spacing, 1e-9) {
		t.Fatal("MinSpacing mismatch")
	}
}

func TestNewAlphabetHeaderIsLongestChirp(t *testing.T) {
	a, err := NewAlphabet(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// The header has the lowest beat → the longest chirp duration.
	if a.Header().Duration <= a.Sync().Duration {
		t.Fatal("header chirp should be longer than sync chirp")
	}
	maxDur := 0.8 * 120e-6
	if a.Header().Duration > maxDur+1e-12 {
		t.Fatalf("header duration %v exceeds duty-cycle limit %v", a.Header().Duration, maxDur)
	}
	if !approxEq(a.Sync().Duration, 20e-6, 1e-9) {
		t.Fatalf("sync duration %v, want the 20 µs minimum", a.Sync().Duration)
	}
}

func TestNewAlphabetCapacityLimit(t *testing.T) {
	c := testConfig(5)
	c.MinBeatSpacing = 50e3 // absurdly wide spacing: 5 bits cannot fit
	if _, err := NewAlphabet(c); err == nil {
		t.Fatal("expected capacity error")
	}
	if _, err := NewAlphabet(Config{}); err == nil {
		t.Fatal("zero config should fail")
	}
}

func TestDurationsWithinRadarLimits(t *testing.T) {
	a, err := NewAlphabet(testConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	cfg := a.Config()
	check := func(s Symbol) {
		if s.Duration < cfg.MinChirpDuration-1e-12 || s.Duration > cfg.MaxChirpDuration+1e-12 {
			t.Fatalf("%v symbol duration %v outside [%v, %v]",
				s.Kind, s.Duration, cfg.MinChirpDuration, cfg.MaxChirpDuration)
		}
	}
	check(a.Header())
	check(a.Sync())
	for i := 0; i < a.DataSymbolCount(); i++ {
		s, err := a.DataSymbol(i)
		if err != nil {
			t.Fatal(err)
		}
		check(s)
	}
}

func TestDataSymbolOutOfRange(t *testing.T) {
	a, _ := NewAlphabet(testConfig(3))
	if _, err := a.DataSymbol(-1); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := a.DataSymbol(8); err == nil {
		t.Error("index past 2^bits should fail")
	}
}

func TestSymbolValueRoundTripProperty(t *testing.T) {
	a, err := NewAlphabet(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint32) bool {
		v := raw % 32
		s, err := a.SymbolForValue(v)
		if err != nil {
			return false
		}
		back, err := a.ValueForSymbol(s)
		return err == nil && back == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolForValueRejectsOverflow(t *testing.T) {
	a, _ := NewAlphabet(testConfig(3))
	if _, err := a.SymbolForValue(8); err == nil {
		t.Fatal("value 8 does not fit in 3 bits")
	}
}

func TestValueForSymbolRejectsControl(t *testing.T) {
	a, _ := NewAlphabet(testConfig(3))
	if _, err := a.ValueForSymbol(a.Header()); err == nil {
		t.Fatal("header symbol should not decode to data")
	}
}

func TestGrayAdjacencyLimitsBitErrors(t *testing.T) {
	// Adjacent beats differ by exactly one bit after Gray decoding — the
	// reason a near-miss symbol decision costs 1 bit, not up to SymbolBits.
	a, err := NewAlphabet(testConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < a.DataSymbolCount(); i++ {
		s1, _ := a.DataSymbol(i)
		s2, _ := a.DataSymbol(i + 1)
		v1, err1 := a.ValueForSymbol(s1)
		v2, err2 := a.ValueForSymbol(s2)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		diff := v1 ^ v2
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("adjacent symbols %d,%d differ in %b (not exactly one bit)", i, i+1, diff)
		}
	}
}

func TestGrayRoundTripProperty(t *testing.T) {
	f := func(v uint32) bool { return GrayDecode(GrayEncode(v)) == v }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyBeatExact(t *testing.T) {
	a, _ := NewAlphabet(testConfig(4))
	for _, s := range []Symbol{a.Header(), a.Sync()} {
		got := a.ClassifyBeat(s.Beat)
		if got.Kind != s.Kind {
			t.Fatalf("beat %v classified as %v, want %v", s.Beat, got.Kind, s.Kind)
		}
	}
	for i := 0; i < a.DataSymbolCount(); i++ {
		s, _ := a.DataSymbol(i)
		got := a.ClassifyBeat(s.Beat)
		if got.Kind != KindData || got.Index != i {
			t.Fatalf("beat %v classified as %v/%d, want data/%d", s.Beat, got.Kind, got.Index, i)
		}
	}
}

func TestClassifyBeatNearestProperty(t *testing.T) {
	a, _ := NewAlphabet(testConfig(5))
	spacing := a.MinSpacing()
	f := func(raw uint32, jitterRaw int16) bool {
		v := raw % 32
		s, _ := a.SymbolForValue(v)
		jitter := float64(jitterRaw) / math.MaxInt16 * 0.45 * spacing
		got := a.ClassifyBeat(s.Beat + jitter)
		return got.Kind == KindData && got.Index == s.Index
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClassifyBeatExtremes(t *testing.T) {
	a, _ := NewAlphabet(testConfig(3))
	if got := a.ClassifyBeat(0); got.Kind != KindHeader {
		t.Fatal("far-below beat should classify as header (lowest)")
	}
	if got := a.ClassifyBeat(1e9); got.Kind != KindSync {
		t.Fatal("far-above beat should classify as sync (highest)")
	}
}

func TestDurations(t *testing.T) {
	a, _ := NewAlphabet(testConfig(3))
	durs, err := a.Durations([]uint32{0, 1, 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(durs) != 3 {
		t.Fatalf("got %d durations", len(durs))
	}
	if _, err := a.Durations([]uint32{8}); err == nil {
		t.Fatal("overflow value should fail")
	}
}

func TestPackUnpackBitsRoundTripProperty(t *testing.T) {
	f := func(seed int64, bitsSel uint8, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		symbolBits := 1 + int(bitsSel)%10
		bits := make([]bool, int(n))
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		packed := PackBits(bits, symbolBits)
		back := UnpackBits(packed, symbolBits, len(bits))
		if len(back) != len(bits) {
			return false
		}
		for i := range bits {
			if bits[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPackBitsPanicsOnBadSymbolBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PackBits([]bool{true}, 0)
}

func TestBytesBitsRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		back := BitsToBytes(BytesToBits(data))
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if data[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBytesToBitsMSBFirst(t *testing.T) {
	bits := BytesToBits([]byte{0x80})
	if !bits[0] {
		t.Fatal("MSB should come first")
	}
	for _, b := range bits[1:] {
		if b {
			t.Fatal("only MSB should be set")
		}
	}
}

func TestSymbolKindString(t *testing.T) {
	if KindData.String() != "data" || KindHeader.String() != "header" ||
		KindSync.String() != "sync" || SymbolKind(9).String() != "SymbolKind(9)" {
		t.Fatal("unexpected SymbolKind strings")
	}
}

func TestUnpackBitsPadsShortInput(t *testing.T) {
	out := UnpackBits([]uint32{0b101}, 3, 5)
	want := []bool{true, false, true, false, false}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("bit %d: got %v want %v", i, out[i], want[i])
		}
	}
}
