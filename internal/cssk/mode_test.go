package cssk

import "testing"

func TestWithSymbolBitsRewritesOnlyWidth(t *testing.T) {
	base := testConfig(5)
	got := base.WithSymbolBits(3)
	if got.SymbolBits != 3 {
		t.Fatalf("SymbolBits = %d, want 3", got.SymbolBits)
	}
	if base.SymbolBits != 5 {
		t.Fatalf("receiver mutated: SymbolBits = %d, want 5", base.SymbolBits)
	}
	// Every physical parameter must carry over unchanged.
	want := testConfig(3)
	if got != want {
		t.Fatalf("copy diverged beyond SymbolBits:\ngot  %+v\nwant %+v", got, want)
	}
	if _, err := NewAlphabet(got); err != nil {
		t.Fatalf("narrowed config no longer builds an alphabet: %v", err)
	}
}

func TestSpacingForBitsMatchesAlphabetGeometry(t *testing.T) {
	c := testConfig(5)
	lo, hi := c.BeatRange()
	for bits := 1; bits <= c.MaxSymbolBits(); bits++ {
		m := (1 << bits) + 2
		want := (hi - lo) / float64(m-1)
		if got := c.SpacingForBits(bits); !approxEq(got, want, 1e-9) {
			t.Errorf("bits %d: spacing %v, want %v", bits, got, want)
		}
	}
}

func TestSpacingForBitsWidensAsBitsDrop(t *testing.T) {
	c := testConfig(5)
	prev := 0.0
	// Walking the ladder down from 5 bits, each step must strictly widen
	// the spacing — the robustness margin each degradation rung buys.
	for _, bits := range []int{5, 4, 3, 2, 1} {
		s := c.SpacingForBits(bits)
		if s <= prev {
			t.Fatalf("bits %d: spacing %v did not widen beyond %v", bits, s, prev)
		}
		prev = s
	}
}

func TestSpacingForBitsRejectsUnusableWidths(t *testing.T) {
	c := testConfig(5)
	for _, bits := range []int{0, -1, 17} {
		if s := c.SpacingForBits(bits); s != 0 {
			t.Errorf("bits %d: spacing %v, want 0", bits, s)
		}
	}
	degenerate := c
	degenerate.DeltaT = 0 // collapses the beat range
	if s := degenerate.SpacingForBits(5); s != 0 {
		t.Errorf("degenerate beat range: spacing %v, want 0", s)
	}
}
