package msck

import (
	"math/rand"
	"testing"
	"testing/quick"

	"biscatter/internal/channel"
	"biscatter/internal/delayline"
)

func testConfig(t testing.TB, segments, slopes int) Config {
	t.Helper()
	pair, err := delayline.NewCoaxPair(45*delayline.MetersPerInch, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Bandwidth:        1e9,
		ChirpDuration:    96e-6,
		Period:           120e-6,
		Segments:         segments,
		SlopesPerSegment: slopes,
		Pair:             pair,
		CenterFrequency:  9.5e9,
		SampleRate:       1e6,
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(t, 4, 8)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mod := func(f func(*Config)) Config {
		c := testConfig(t, 4, 8)
		f(&c)
		return c
	}
	bad := []Config{
		mod(func(c *Config) { c.Bandwidth = 0 }),
		mod(func(c *Config) { c.ChirpDuration = 0 }),
		mod(func(c *Config) { c.ChirpDuration = 110e-6 }), // duty cycle
		mod(func(c *Config) { c.Segments = 0 }),
		mod(func(c *Config) { c.Segments = 20 }),
		mod(func(c *Config) { c.SlopesPerSegment = 3 }), // not a power of two
		mod(func(c *Config) { c.SlopesPerSegment = 1 }),
		mod(func(c *Config) { c.SampleRate = 0 }),
		mod(func(c *Config) { c.CenterFrequency = 0 }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestBitsAndRate(t *testing.T) {
	s, err := New(testConfig(t, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if s.BitsPerChirp() != 12 {
		t.Fatalf("4 segments × log2(8) = 12 bits, got %d", s.BitsPerChirp())
	}
	if got := s.DataRate(); got != 12/120e-6 {
		t.Fatalf("data rate %v", got)
	}
	// The headline of the extension: more bits per chirp than 5-bit CSSK.
	if s.DataRate() <= 5/120e-6 {
		t.Fatal("MSCK should beat CSSK's 5 bits per chirp")
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	s, err := New(testConfig(t, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := make([]bool, s.BitsPerChirp())
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		segs, err := s.EncodeChirp(bits)
		if err != nil {
			return false
		}
		back, err := s.DecodeChirp(segs)
		if err != nil || len(back) != len(bits) {
			return false
		}
		for i := range bits {
			if bits[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeValidation(t *testing.T) {
	s, _ := New(testConfig(t, 2, 4))
	if _, err := s.EncodeChirp(make([]bool, 3)); err == nil {
		t.Error("wrong bit count should fail")
	}
	if _, err := s.DecodeChirp([]int{0}); err == nil {
		t.Error("wrong segment count should fail")
	}
	if _, err := s.DecodeChirp([]int{0, 9}); err == nil {
		t.Error("out-of-range index should fail")
	}
	if _, err := s.SynthesizeChirp([]int{0}, 30, channel.NewNoise(1)); err == nil {
		t.Error("wrong segment count should fail")
	}
	if _, err := s.SynthesizeChirp([]int{0, 9}, 30, channel.NewNoise(1)); err == nil {
		t.Error("out-of-range index should fail")
	}
}

func TestCleanChannelRoundTrip(t *testing.T) {
	s, err := New(testConfig(t, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	errs, total, err := s.MeasureBER(40, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if errs != 0 {
		t.Fatalf("clean channel should be error free: %d/%d", errs, total)
	}
	if total != 20*12 {
		t.Fatalf("total bits %d", total)
	}
}

func TestBERDegradesWithNoise(t *testing.T) {
	s, err := New(testConfig(t, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	eHigh, tHigh, err := s.MeasureBER(30, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	eLow, tLow, err := s.MeasureBER(-5, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	if float64(eLow)/float64(tLow) <= float64(eHigh)/float64(tHigh) {
		t.Fatalf("BER should rise at low SNR: %d/%d vs %d/%d", eLow, tLow, eHigh, tHigh)
	}
}

func TestMoreSegmentsTradeRateForRobustness(t *testing.T) {
	// At equal SNR, more segments (shorter windows) must not be easier.
	few, err := New(testConfig(t, 2, 8))
	if err != nil {
		t.Fatal(err)
	}
	many, err := New(testConfig(t, 8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if many.DataRate() <= few.DataRate() {
		t.Fatal("more segments must carry more bits")
	}
	const snr = 8
	eF, tF, err := few.MeasureBER(snr, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	eM, tM, err := many.MeasureBER(snr, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	if float64(eM)/float64(tM) < float64(eF)/float64(tF) {
		t.Fatalf("8 segments (%d/%d) should not beat 2 segments (%d/%d) at %v dB",
			eM, tM, eF, tF, snr)
	}
}

func TestNyquistGuard(t *testing.T) {
	c := testConfig(t, 4, 8)
	c.SampleRate = 100e3 // top beat ≈ 79 kHz > 50 kHz Nyquist
	if _, err := New(c); err == nil {
		t.Fatal("Nyquist violation should fail")
	}
}
