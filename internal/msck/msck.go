// Package msck implements Multi-Segment Chirp Keying, a quantified take on
// the paper's future-work direction (§6: "more complex downlink modulations
// based on chirp-spread-spectrum (CSS) can be used to improve the data
// rate"). Instead of one slope per chirp (CSSK), each chirp is split into S
// equal-duration segments and every segment's slope is keyed independently,
// carrying S·log2(M) bits per chirp instead of log2(M).
//
// The trade-offs mirror CSS systems: the per-segment observation window
// shrinks by S, so symbol discrimination needs either more SNR or wider
// beat spacing, and the piecewise-linear sweep needs a more agile chirp
// generator than the commodity radars plain CSSK runs on — which is exactly
// why the paper leaves it as future work. The msck experiment quantifies
// the rate-vs-BER frontier of both schemes on the same tag hardware model.
package msck

import (
	"fmt"
	"math"

	"biscatter/internal/channel"
	"biscatter/internal/delayline"
	"biscatter/internal/dsp"
)

// Config parameterizes a multi-segment keying scheme.
type Config struct {
	// Bandwidth is the per-chirp mean swept bandwidth B (Hz); individual
	// symbols sweep within ±SlopeSpread of the mean segment slope.
	Bandwidth float64
	// ChirpDuration is the fixed chirp duration (s). Fixing it (unlike
	// CSSK) keeps the radar's unambiguous range constant.
	ChirpDuration float64
	// Period is the chirp period (s).
	Period float64
	// Segments is S, the number of keyed segments per chirp.
	Segments int
	// SlopesPerSegment is M, the per-segment slope alphabet size (a power
	// of two).
	SlopesPerSegment int
	// Pair is the tag's delay-line pair.
	Pair delayline.Pair
	// CenterFrequency evaluates ΔT.
	CenterFrequency float64
	// SampleRate is the tag ADC rate.
	SampleRate float64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Bandwidth <= 0:
		return fmt.Errorf("msck: bandwidth %v must be positive", c.Bandwidth)
	case c.ChirpDuration <= 0 || c.ChirpDuration > 0.8*c.Period:
		return fmt.Errorf("msck: chirp duration %v outside (0, 0.8·period]", c.ChirpDuration)
	case c.Segments < 1 || c.Segments > 16:
		return fmt.Errorf("msck: segments %d must be in [1, 16]", c.Segments)
	case c.SlopesPerSegment < 2 || c.SlopesPerSegment&(c.SlopesPerSegment-1) != 0:
		return fmt.Errorf("msck: slopes per segment %d must be a power of two ≥ 2", c.SlopesPerSegment)
	case c.SampleRate <= 0:
		return fmt.Errorf("msck: sample rate %v must be positive", c.SampleRate)
	case c.CenterFrequency <= 0:
		return fmt.Errorf("msck: center frequency %v must be positive", c.CenterFrequency)
	}
	return nil
}

// Scheme is an instantiated multi-segment keying modem.
type Scheme struct {
	cfg Config
	// beats[j] is the decoder beat frequency of slope index j.
	beats []float64
	// segDur is the segment duration in seconds.
	segDur float64
}

// New builds a Scheme. The M per-segment slopes are spread ±40% around the
// mean segment slope B/T, giving beats centered on the CSSK mid-range.
func New(cfg Config) (*Scheme, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Scheme{cfg: cfg, segDur: cfg.ChirpDuration / float64(cfg.Segments)}
	meanSlope := cfg.Bandwidth / cfg.ChirpDuration
	dt := cfg.Pair.DeltaT(cfg.CenterFrequency)
	m := cfg.SlopesPerSegment
	for j := 0; j < m; j++ {
		frac := -0.4 + 0.8*float64(j)/float64(m-1)
		slope := meanSlope * (1 + frac)
		s.beats = append(s.beats, slope*dt)
	}
	if hi := s.beats[m-1]; hi >= cfg.SampleRate/2 {
		return nil, fmt.Errorf("msck: top beat %v Hz violates Nyquist at fs=%v", hi, cfg.SampleRate)
	}
	return s, nil
}

// BitsPerChirp returns S·log2(M).
func (s *Scheme) BitsPerChirp() int {
	return s.cfg.Segments * bitsOf(s.cfg.SlopesPerSegment)
}

func bitsOf(m int) int {
	b := 0
	for m > 1 {
		m >>= 1
		b++
	}
	return b
}

// DataRate returns the downlink rate in bit/s.
func (s *Scheme) DataRate() float64 {
	return float64(s.BitsPerChirp()) / s.cfg.Period
}

// Beats returns the per-segment beat alphabet.
func (s *Scheme) Beats() []float64 {
	return append([]float64(nil), s.beats...)
}

// EncodeChirp maps bits (len == BitsPerChirp) to per-segment slope indices,
// Gray-coded within each segment.
func (s *Scheme) EncodeChirp(bits []bool) ([]int, error) {
	if len(bits) != s.BitsPerChirp() {
		return nil, fmt.Errorf("msck: need %d bits per chirp, got %d", s.BitsPerChirp(), len(bits))
	}
	per := bitsOf(s.cfg.SlopesPerSegment)
	out := make([]int, s.cfg.Segments)
	for seg := 0; seg < s.cfg.Segments; seg++ {
		v := uint32(0)
		for b := 0; b < per; b++ {
			v <<= 1
			if bits[seg*per+b] {
				v |= 1
			}
		}
		out[seg] = int(grayDecode(v))
	}
	return out, nil
}

// DecodeChirp inverts EncodeChirp.
func (s *Scheme) DecodeChirp(segments []int) ([]bool, error) {
	if len(segments) != s.cfg.Segments {
		return nil, fmt.Errorf("msck: need %d segments, got %d", s.cfg.Segments, len(segments))
	}
	per := bitsOf(s.cfg.SlopesPerSegment)
	out := make([]bool, 0, s.BitsPerChirp())
	for _, idx := range segments {
		if idx < 0 || idx >= s.cfg.SlopesPerSegment {
			return nil, fmt.Errorf("msck: segment index %d out of range", idx)
		}
		v := grayEncode(uint32(idx))
		for b := per - 1; b >= 0; b-- {
			out = append(out, v&(1<<uint(b)) != 0)
		}
	}
	return out, nil
}

func grayEncode(v uint32) uint32 { return v ^ (v >> 1) }

func grayDecode(g uint32) uint32 {
	v := g
	for shift := uint(1); shift < 32; shift <<= 1 {
		v ^= v >> shift
	}
	return v
}

// SynthesizeChirp produces the tag's envelope-detector samples for one chirp
// carrying the given per-segment slope indices, at the given SNR.
func (s *Scheme) SynthesizeChirp(segments []int, snrDB float64, noise *channel.Noise) ([]float64, error) {
	if len(segments) != s.cfg.Segments {
		return nil, fmt.Errorf("msck: need %d segments, got %d", s.cfg.Segments, len(segments))
	}
	nSeg := int(s.segDur * s.cfg.SampleRate)
	if nSeg < 4 {
		return nil, fmt.Errorf("msck: segment too short (%d samples)", nSeg)
	}
	total := int(s.cfg.Period * s.cfg.SampleRate)
	out := make([]float64, total)
	for seg, idx := range segments {
		if idx < 0 || idx >= len(s.beats) {
			return nil, fmt.Errorf("msck: segment index %d out of range", idx)
		}
		beat := s.beats[idx]
		phase := noise.Rand().Float64() * 2 * math.Pi
		for k := 0; k < nSeg; k++ {
			i := seg*nSeg + k
			if i >= total {
				break
			}
			out[i] = math.Cos(2*math.Pi*beat*float64(k)/s.cfg.SampleRate + phase)
		}
	}
	noise.AddReal(out, channel.SigmaForSNR(1, snrDB))
	return out, nil
}

// DemodulateChirp recovers per-segment slope indices from an envelope
// capture (genie-aligned to the chirp start, as in a steady-state link).
func (s *Scheme) DemodulateChirp(x []float64) []int {
	nSeg := int(s.segDur * s.cfg.SampleRate)
	out := make([]int, s.cfg.Segments)
	for seg := 0; seg < s.cfg.Segments; seg++ {
		lo := seg * nSeg
		hi := lo + nSeg
		if hi > len(x) {
			hi = len(x)
		}
		if hi-lo < 4 {
			out[seg] = 0
			continue
		}
		win := x[lo:hi]
		best, bestP := 0, math.Inf(-1)
		for j, beat := range s.beats {
			if p := dsp.RealToneEnergy(win, beat, s.cfg.SampleRate); p > bestP {
				bestP, best = p, j
			}
		}
		out[seg] = best
	}
	return out
}

// MeasureBER runs chirps random chirps through the scheme at the given SNR
// and returns the bit error counts.
func (s *Scheme) MeasureBER(snrDB float64, chirps int, seed int64) (errs, total int, err error) {
	noise := channel.NewNoise(seed)
	rng := noise.Rand()
	nb := s.BitsPerChirp()
	for c := 0; c < chirps; c++ {
		bits := make([]bool, nb)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		segs, err := s.EncodeChirp(bits)
		if err != nil {
			return 0, 0, err
		}
		x, err := s.SynthesizeChirp(segs, snrDB, noise)
		if err != nil {
			return 0, 0, err
		}
		got := s.DemodulateChirp(x)
		back, err := s.DecodeChirp(got)
		if err != nil {
			return 0, 0, err
		}
		for i := range bits {
			if bits[i] != back[i] {
				errs++
			}
		}
		total += nb
	}
	return errs, total, nil
}
