package packet

import (
	"bytes"
	"reflect"
	"testing"

	"biscatter/internal/fec"
)

func fecConfigs() map[string]fec.Config {
	return map[string]fec.Config{
		"hamming":     {Scheme: fec.SchemeHamming74, InterleaveDepth: 8},
		"repetition3": {Scheme: fec.SchemeRepetition, InterleaveDepth: 16},
	}
}

func TestFECRoundTrip(t *testing.T) {
	for name, fc := range fecConfigs() {
		t.Run(name, func(t *testing.T) {
			c := testConfig(t, 5)
			c.FEC = fc
			for _, payload := range [][]byte{nil, {0x42}, []byte("the quick brown fox"), bytes.Repeat([]byte{0xA5}, 64)} {
				syms, err := c.Encode(payload)
				if err != nil {
					t.Fatal(err)
				}
				if len(syms) != c.PacketChirps(len(payload)) {
					t.Fatalf("packet length %d, want %d", len(syms), c.PacketChirps(len(payload)))
				}
				got, st, err := c.DecodeStats(syms)
				if err != nil {
					t.Fatalf("payload %d bytes: %v", len(payload), err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatalf("payload %d bytes corrupted in round trip", len(payload))
				}
				if st.CodedBits == 0 || st.CorrectedBits != 0 {
					t.Fatalf("clean channel stats %+v", st)
				}
			}
		})
	}
}

func TestFECCorrectsSymbolErrors(t *testing.T) {
	c := testConfig(t, 5)
	c.FEC = fec.Config{Scheme: fec.SchemeHamming74, InterleaveDepth: 14}
	payload := []byte("resilient downlink payload")
	syms, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	// Swap one data symbol for its Gray-coded neighbor: a single bit error
	// in the unpacked stream, which the interleaved Hamming code absorbs.
	dataStart := c.HeaderLen + c.SyncLen
	v, err := c.Alphabet.ValueForSymbol(syms[dataStart+3])
	if err != nil {
		t.Fatal(err)
	}
	swapped, err := c.Alphabet.SymbolForValue(v ^ 1)
	if err != nil {
		t.Fatal(err)
	}
	syms[dataStart+3] = swapped
	got, st, err := c.DecodeStats(syms)
	if err != nil {
		t.Fatalf("decode after single symbol error: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted despite FEC")
	}
	if st.CorrectedBits == 0 {
		t.Fatal("decoder did not report the repaired bit")
	}

	// The same corruption without FEC must fail the CRC.
	plain := testConfig(t, 5)
	syms2, err := plain.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := plain.Alphabet.ValueForSymbol(syms2[dataStart+3])
	if err != nil {
		t.Fatal(err)
	}
	swapped2, err := plain.Alphabet.SymbolForValue(v2 ^ 1)
	if err != nil {
		t.Fatal(err)
	}
	syms2[dataStart+3] = swapped2
	if _, err := plain.Decode(syms2); err == nil {
		t.Fatal("uncoded packet should have failed CRC (test premise broken)")
	}
}

func TestFECNoneMatchesLegacyEncoding(t *testing.T) {
	// The zero-value FEC config must leave the on-air symbol schedule
	// byte-identical to the pre-FEC framing.
	c := testConfig(t, 5)
	withKnob := c
	withKnob.FEC = fec.Config{Scheme: fec.SchemeNone}
	payload := []byte("identity")
	a, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	b, err := withKnob.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SchemeNone changed the symbol schedule")
	}
	got, st, err := withKnob.DecodeStats(a)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("SchemeNone decode: %v", err)
	}
	if st != (fec.Stats{}) {
		t.Fatalf("SchemeNone must report zero stats, got %+v", st)
	}
}

func TestFECValidatePropagates(t *testing.T) {
	c := testConfig(t, 5)
	c.FEC = fec.Config{Scheme: fec.SchemeRepetition, Repeat: 4}
	if err := c.Validate(); err == nil {
		t.Fatal("even repetition factor must be rejected at the packet layer")
	}
	if _, err := c.Encode([]byte{1}); err == nil {
		t.Fatal("Encode must reject an invalid FEC config")
	}
}

func TestFECAllSymbolWidths(t *testing.T) {
	// Length recovery must hold for every legal symbol width: the pad
	// quantum exceeds the largest symbol, so the padded length is always
	// the unique multiple within one symbol of the received bit count.
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	for bits := 1; bits <= 6; bits++ {
		c := Config{Alphabet: testAlphabet(t, bits), HeaderLen: 8, SyncLen: 2,
			FEC: fec.Config{Scheme: fec.SchemeHamming74, InterleaveDepth: 8}}
		syms, err := c.Encode(payload)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		got, err := c.Decode(syms)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("bits=%d: round trip failed: %v", bits, err)
		}
	}
}
