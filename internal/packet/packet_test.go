package packet

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"biscatter/internal/cssk"
)

func testAlphabet(t testing.TB, bits int) *cssk.Alphabet {
	t.Helper()
	const deltaL = 45 * 0.0254
	const k = 0.7
	a, err := cssk.NewAlphabet(cssk.Config{
		Bandwidth:        1e9,
		Period:           120e-6,
		MinChirpDuration: 20e-6,
		DeltaT:           deltaL / (k * 299792458.0),
		MinBeatSpacing:   500,
		SymbolBits:       bits,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testConfig(t testing.TB, bits int) Config {
	return Config{Alphabet: testAlphabet(t, bits), HeaderLen: 8, SyncLen: 2}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(t, 5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{HeaderLen: 8, SyncLen: 2}).Validate(); err == nil {
		t.Error("nil alphabet should fail")
	}
	if err := (Config{Alphabet: good.Alphabet, HeaderLen: 2, SyncLen: 2}).Validate(); err == nil {
		t.Error("short header should fail")
	}
	if err := (Config{Alphabet: good.Alphabet, HeaderLen: 8, SyncLen: 0}).Validate(); err == nil {
		t.Error("zero sync should fail")
	}
}

func TestEncodeStructure(t *testing.T) {
	c := testConfig(t, 5)
	payload := []byte("hi")
	syms, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(syms) != c.PacketChirps(len(payload)) {
		t.Fatalf("packet length %d, want %d", len(syms), c.PacketChirps(len(payload)))
	}
	for i := 0; i < c.HeaderLen; i++ {
		if syms[i].Kind != cssk.KindHeader {
			t.Fatalf("chirp %d should be header, got %v", i, syms[i].Kind)
		}
	}
	for i := c.HeaderLen; i < c.HeaderLen+c.SyncLen; i++ {
		if syms[i].Kind != cssk.KindSync {
			t.Fatalf("chirp %d should be sync, got %v", i, syms[i].Kind)
		}
	}
	for i := c.HeaderLen + c.SyncLen; i < len(syms); i++ {
		if syms[i].Kind != cssk.KindData {
			t.Fatalf("chirp %d should be data, got %v", i, syms[i].Kind)
		}
	}
}

func TestEncodeRejectsOversizedPayload(t *testing.T) {
	c := testConfig(t, 5)
	if _, err := c.Encode(make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized payload should fail")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, bits := range []int{1, 3, 5, 8} {
		c := testConfig(t, bits)
		payload := []byte("BiScatter downlink message")
		syms, err := c.Encode(payload)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		got, err := c.Decode(syms)
		if err != nil {
			t.Fatalf("bits=%d: %v", bits, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("bits=%d: got %q want %q", bits, got, payload)
		}
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	c := testConfig(t, 5)
	f := func(payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		syms, err := c.Encode(payload)
		if err != nil {
			return false
		}
		got, err := c.Decode(syms)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeWithLeadingGarbage(t *testing.T) {
	c := testConfig(t, 5)
	payload := []byte{0xDE, 0xAD}
	syms, _ := c.Encode(payload)
	rng := rand.New(rand.NewSource(42))
	var garbage []cssk.Symbol
	for i := 0; i < 7; i++ {
		s, err := c.Alphabet.DataSymbol(rng.Intn(c.Alphabet.DataSymbolCount()))
		if err != nil {
			t.Fatal(err)
		}
		garbage = append(garbage, s)
	}
	got, err := c.Decode(append(garbage, syms...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %v want %v", got, payload)
	}
}

func TestDecodeToleratesPartialHeader(t *testing.T) {
	// Tag woke up mid-header: half the header chirps are missing.
	c := testConfig(t, 5)
	payload := []byte{1, 2, 3}
	syms, _ := c.Encode(payload)
	got, err := c.Decode(syms[c.HeaderLen/2:])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %v want %v", got, payload)
	}
}

func TestDecodeMissingPreamble(t *testing.T) {
	c := testConfig(t, 5)
	s, _ := c.Alphabet.DataSymbol(0)
	stream := []cssk.Symbol{s, s, s, s}
	if _, err := c.Decode(stream); !errors.Is(err, ErrNoPreamble) {
		t.Fatalf("expected ErrNoPreamble, got %v", err)
	}
	if _, err := c.Decode(nil); !errors.Is(err, ErrNoPreamble) {
		t.Fatalf("expected ErrNoPreamble on empty stream, got %v", err)
	}
}

func TestDecodeSyncWithoutHeaderRejected(t *testing.T) {
	c := testConfig(t, 5)
	payload := []byte{9}
	syms, _ := c.Encode(payload)
	// Strip the entire header: a bare sync must not be accepted, because a
	// random data symbol near the sync beat would otherwise cause framing
	// errors.
	if _, err := c.Decode(syms[c.HeaderLen:]); !errors.Is(err, ErrNoPreamble) {
		t.Fatalf("expected ErrNoPreamble, got %v", err)
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	c := testConfig(t, 5)
	syms, _ := c.Encode([]byte("hello world"))
	cut := syms[:len(syms)-5]
	if _, err := c.Decode(cut); !errors.Is(err, ErrTruncated) {
		t.Fatalf("expected ErrTruncated, got %v", err)
	}
}

func TestDecodeCorruptedPayloadFailsCRC(t *testing.T) {
	c := testConfig(t, 5)
	payload := []byte("integrity")
	syms, _ := c.Encode(payload)
	// Flip one data symbol to a different value.
	di := c.HeaderLen + c.SyncLen + 3
	orig := syms[di]
	v, _ := c.Alphabet.ValueForSymbol(orig)
	alt, err := c.Alphabet.SymbolForValue((v + 1) % uint32(c.Alphabet.DataSymbolCount()))
	if err != nil {
		t.Fatal(err)
	}
	syms[di] = alt
	if _, err := c.Decode(syms); !errors.Is(err, ErrCRC) {
		t.Fatalf("expected ErrCRC, got %v", err)
	}
}

func TestDecodeEmptyPayload(t *testing.T) {
	c := testConfig(t, 5)
	syms, err := c.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(syms)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty payload, got %v", got)
	}
}

func TestPayloadSymbolsAccounting(t *testing.T) {
	c := testConfig(t, 5)
	// 1 length + 4 payload + 1 CRC = 6 bytes = 48 bits → ceil(48/5) = 10.
	if got := c.PayloadSymbols(4); got != 10 {
		t.Fatalf("PayloadSymbols(4) = %d, want 10", got)
	}
	if got := c.PacketChirps(4); got != 8+2+10 {
		t.Fatalf("PacketChirps(4) = %d, want 20", got)
	}
}

func TestCRC8KnownValues(t *testing.T) {
	// CRC-8/ATM check value: CRC8("123456789") = 0xF4.
	if got := CRC8([]byte("123456789")); got != 0xF4 {
		t.Fatalf("CRC8 check value %#x, want 0xF4", got)
	}
	if got := CRC8(nil); got != 0 {
		t.Fatalf("CRC8(nil) = %#x, want 0", got)
	}
}

func TestCRC8DetectsSingleBitErrorsProperty(t *testing.T) {
	f := func(data []byte, byteSel, bitSel uint8) bool {
		if len(data) == 0 {
			return true
		}
		orig := CRC8(data)
		mod := append([]byte(nil), data...)
		mod[int(byteSel)%len(mod)] ^= 1 << (bitSel % 8)
		return CRC8(mod) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBackToBackPackets(t *testing.T) {
	// Two packets in one stream: decoding the tail after the first packet
	// should yield the second payload.
	c := testConfig(t, 5)
	p1, p2 := []byte("first"), []byte("second")
	s1, _ := c.Encode(p1)
	s2, _ := c.Encode(p2)
	stream := append(append([]cssk.Symbol{}, s1...), s2...)
	got1, err := c.Decode(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got1, p1) {
		t.Fatalf("first packet: got %q", got1)
	}
	got2, err := c.Decode(stream[len(s1):])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, p2) {
		t.Fatalf("second packet: got %q", got2)
	}
}

func TestDurationsMatchSymbolDurations(t *testing.T) {
	c := testConfig(t, 5)
	payload := []byte{7, 8}
	syms, _ := c.Encode(payload)
	durs, err := c.Durations(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(durs) != len(syms) {
		t.Fatalf("lengths differ: %d vs %d", len(durs), len(syms))
	}
	for i := range durs {
		if durs[i] != syms[i].Duration {
			t.Fatalf("duration %d mismatch", i)
		}
	}
}
