// Package packet implements BiScatter's downlink packet structure (Fig. 3):
// a preamble made of a header field (a run of one reserved chirp slope, used
// by the tag to estimate the chirp period) and a sync field (a second
// reserved slope marking the start of data), followed by a payload of CSSK
// data symbols. The payload carries a length prefix and a CRC-8 so the tag
// can verify downlink messages and request retransmissions — the capability
// two-way communication unlocks.
package packet

import (
	"errors"
	"fmt"

	"biscatter/internal/cssk"
	"biscatter/internal/fec"
)

// Limits for the on-air payload.
const (
	// MaxPayload is the largest payload in bytes (length prefix is one byte).
	MaxPayload = 255
)

// Errors returned by the decoder.
var (
	// ErrNoPreamble means no header+sync pattern was found in the stream.
	ErrNoPreamble = errors.New("packet: preamble not found")
	// ErrTruncated means the stream ended before the full payload.
	ErrTruncated = errors.New("packet: truncated payload")
	// ErrCRC means the payload checksum failed.
	ErrCRC = errors.New("packet: CRC mismatch")
)

// Config describes the framing parameters shared by radar and tag.
type Config struct {
	// Alphabet is the CSSK constellation in use.
	Alphabet *cssk.Alphabet
	// HeaderLen is the number of header-symbol chirps. The tag needs several
	// periods of the same slope to estimate T_period (§3.2.2), so values
	// below 4 are rejected.
	HeaderLen int
	// SyncLen is the number of sync-symbol chirps marking the payload start.
	SyncLen int
	// FEC selects the forward-error-correction layer applied to the framed
	// payload bits (length ‖ data ‖ CRC-8) before symbol packing. The zero
	// value (fec.SchemeNone) is the exact identity: the on-air symbol stream
	// is byte-identical to a build that never heard of FEC.
	FEC fec.Config
}

// Validate checks the framing configuration.
func (c Config) Validate() error {
	switch {
	case c.Alphabet == nil:
		return fmt.Errorf("packet: alphabet is required")
	case c.HeaderLen < 4:
		return fmt.Errorf("packet: header length %d must be at least 4 chirps", c.HeaderLen)
	case c.SyncLen < 1:
		return fmt.Errorf("packet: sync length %d must be at least 1 chirp", c.SyncLen)
	}
	return c.FEC.Validate()
}

// PayloadSymbols returns how many data symbols an n-byte payload occupies
// (length prefix + payload + CRC-8, after FEC expansion).
func (c Config) PayloadSymbols(n int) int {
	bits := c.FEC.CodedBits(1 + n + 1)
	return (bits + c.Alphabet.SymbolBits() - 1) / c.Alphabet.SymbolBits()
}

// PacketChirps returns the total number of chirps for an n-byte payload.
func (c Config) PacketChirps(n int) int {
	return c.HeaderLen + c.SyncLen + c.PayloadSymbols(n)
}

// Encode builds the full chirp schedule for one downlink packet: header
// symbols, sync symbols, then the payload (length ‖ data ‖ CRC-8) packed
// into Gray-coded data symbols.
func (c Config) Encode(payload []byte) ([]cssk.Symbol, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(payload) > MaxPayload {
		return nil, fmt.Errorf("packet: payload %d bytes exceeds %d", len(payload), MaxPayload)
	}
	buf := make([]byte, 0, len(payload)+2)
	buf = append(buf, byte(len(payload)))
	buf = append(buf, payload...)
	buf = append(buf, CRC8(buf))

	bits := c.FEC.EncodeBits(cssk.BytesToBits(buf))
	values := cssk.PackBits(bits, c.Alphabet.SymbolBits())

	out := make([]cssk.Symbol, 0, c.HeaderLen+c.SyncLen+len(values))
	for i := 0; i < c.HeaderLen; i++ {
		out = append(out, c.Alphabet.Header())
	}
	for i := 0; i < c.SyncLen; i++ {
		out = append(out, c.Alphabet.Sync())
	}
	for i, v := range values {
		s, err := c.Alphabet.SymbolForValue(v)
		if err != nil {
			return nil, fmt.Errorf("packet: symbol %d: %w", i, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// Durations returns the per-chirp durations of an encoded packet, ready for
// the frame builder.
func (c Config) Durations(payload []byte) ([]float64, error) {
	syms, err := c.Encode(payload)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(syms))
	for i, s := range syms {
		out[i] = s.Duration
	}
	return out, nil
}

// Decode parses a received symbol stream (as classified by the tag decoder)
// back into the payload. The stream may contain leading garbage before the
// preamble; Decode searches for a run of at least HeaderLen/2 header symbols
// followed by at least one sync symbol — tolerating a partially missed
// header, which happens when the tag wakes mid-packet.
func (c Config) Decode(stream []cssk.Symbol) ([]byte, error) {
	payload, _, err := c.DecodeStats(stream)
	return payload, err
}

// DecodeStats is Decode plus the FEC layer's diagnostics: how many coded
// bits were consumed and how many channel errors the code repaired. The
// stats are meaningful even when decoding ultimately fails (e.g. the CRC
// still mismatches after correction) — the link controller uses them as a
// channel-quality signal.
func (c Config) DecodeStats(stream []cssk.Symbol) ([]byte, fec.Stats, error) {
	var st fec.Stats
	if err := c.Validate(); err != nil {
		return nil, st, err
	}
	start, ok := c.findPayloadStart(stream)
	if !ok {
		return nil, st, ErrNoPreamble
	}
	values := make([]uint32, 0, len(stream)-start)
	for _, s := range stream[start:] {
		if s.Kind != cssk.KindData {
			break // trailing control symbols end the payload region
		}
		v, err := c.Alphabet.ValueForSymbol(s)
		if err != nil {
			return nil, st, err
		}
		values = append(values, v)
	}
	symbolBits := c.Alphabet.SymbolBits()
	totalBits := len(values) * symbolBits
	recv := cssk.UnpackBits(values, symbolBits, totalBits)
	// Symbol packing adds < symbolBits trailing pad bits, and a noisy tail
	// may misclassify a few more chirps as data; anything short of the FEC
	// pad quantum is provably not payload, so let the FEC layer drop it and
	// leave the CRC as the final arbiter.
	bits, st, err := c.FEC.DecodeBits(recv, fec.PadQuantum-1)
	if err != nil {
		return nil, st, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if len(bits) < 16 { // need at least length + CRC bytes
		return nil, st, ErrTruncated
	}
	raw := cssk.BitsToBytes(bits)
	n := int(raw[0])
	if len(raw) < 1+n+1 {
		return nil, st, ErrTruncated
	}
	body := raw[:1+n]
	if CRC8(body) != raw[1+n] {
		return nil, st, ErrCRC
	}
	return append([]byte(nil), body[1:]...), st, nil
}

// FindPayloadStart locates the index of the first data symbol after the
// preamble, tolerating a partially missed header. It is the sync-search
// primitive Decode uses, exported for consumers that need symbol-level
// alignment (e.g. BER counting against a known transmitted stream).
func (c Config) FindPayloadStart(stream []cssk.Symbol) (int, bool) {
	return c.findPayloadStart(stream)
}

// findPayloadStart locates the first data symbol after the preamble.
func (c Config) findPayloadStart(stream []cssk.Symbol) (int, bool) {
	minHeader := c.HeaderLen / 2
	if minHeader < 2 {
		minHeader = 2
	}
	headerRun := 0
	syncSeen := false
	for i, s := range stream {
		switch s.Kind {
		case cssk.KindHeader:
			if syncSeen {
				// A header after sync restarts the search (new packet).
				syncSeen = false
				headerRun = 1
				continue
			}
			headerRun++
		case cssk.KindSync:
			if headerRun >= minHeader {
				syncSeen = true
			} else {
				headerRun = 0
			}
		case cssk.KindData:
			if syncSeen {
				return i, true
			}
			headerRun = 0
		default:
			headerRun = 0
			syncSeen = false
		}
		_ = i
	}
	return 0, false
}

// CRC8 computes the CRC-8/ATM checksum (polynomial x⁸+x²+x+1, 0x07) over
// data.
func CRC8(data []byte) byte {
	var crc byte
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
