package packet

import (
	"bytes"
	"testing"

	"biscatter/internal/cssk"
)

// fuzzAlphabet is the paper's headline 5-bit constellation, shared by every
// fuzz iteration (the alphabet is immutable).
func fuzzAlphabet(tb testing.TB) *cssk.Alphabet {
	tb.Helper()
	a, err := cssk.NewAlphabet(cssk.Config{
		Bandwidth:        1e9,
		Period:           120e-6,
		MinChirpDuration: 20e-6,
		DeltaT:           1.9e-9,
		MinBeatSpacing:   500,
		SymbolBits:       5,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

// symbolsFromBytes maps fuzz bytes onto a symbol stream, two bytes per
// symbol: the first selects the kind (including out-of-range kinds a buggy
// classifier could never emit), the second a signed index that may fall
// outside the constellation. Valid data indices borrow the real symbol so
// streams that happen to frame correctly exercise the full decode path.
func symbolsFromBytes(a *cssk.Alphabet, data []byte) []cssk.Symbol {
	stream := make([]cssk.Symbol, 0, len(data)/2)
	for i := 0; i+1 < len(data); i += 2 {
		kind := cssk.SymbolKind(data[i] % 5)
		idx := int(int8(data[i+1]))
		var s cssk.Symbol
		switch kind {
		case cssk.KindHeader:
			s = a.Header()
		case cssk.KindSync:
			s = a.Sync()
		case cssk.KindData:
			if ds, err := a.DataSymbol(idx); err == nil {
				s = ds
			} else {
				s = cssk.Symbol{Kind: cssk.KindData, Index: idx}
			}
		default:
			s = cssk.Symbol{Kind: kind, Index: idx}
		}
		stream = append(stream, s)
	}
	return stream
}

// symbolsToBytes inverts symbolsFromBytes for seeding the corpus with
// well-formed packets.
func symbolsToBytes(syms []cssk.Symbol) []byte {
	out := make([]byte, 0, 2*len(syms))
	for _, s := range syms {
		out = append(out, byte(s.Kind), byte(int8(s.Index)))
	}
	return out
}

// FuzzPacketDecode throws arbitrary symbol streams at the downlink packet
// decoder: it must never panic, and any payload it accepts must re-encode
// and decode back to itself (the CRC-verified round trip).
func FuzzPacketDecode(f *testing.F) {
	a := fuzzAlphabet(f)
	cfg := Config{Alphabet: a, HeaderLen: 8, SyncLen: 2}

	for _, payload := range [][]byte{nil, {0x42}, []byte("biscatter"), bytes.Repeat([]byte{0xA5}, 32)} {
		syms, err := cfg.Encode(payload)
		if err != nil {
			f.Fatal(err)
		}
		raw := symbolsToBytes(syms)
		f.Add(raw)
		f.Add(raw[:len(raw)/2])    // truncated packet
		f.Add(raw[cfg.HeaderLen:]) // partially missed header
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 0xFF, 2, 0xFF, 3, 7, 4, 200})

	f.Fuzz(func(t *testing.T, data []byte) {
		stream := symbolsFromBytes(a, data)
		payload, err := cfg.Decode(stream)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if len(payload) > MaxPayload {
			t.Fatalf("accepted payload of %d bytes exceeds MaxPayload", len(payload))
		}
		syms, err := cfg.Encode(payload)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		back, err := cfg.Decode(syms)
		if err != nil {
			t.Fatalf("re-encoded packet failed to decode: %v", err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatalf("round trip mismatch: %x != %x", back, payload)
		}
	})
}
