package packet

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"biscatter/internal/cssk"
)

// TestDecodeNeverPanicsOnRandomStreams is the packet layer's fuzz surface:
// arbitrary symbol streams (what a tag decoder emits under heavy noise) must
// either decode to some payload or fail with a protocol error — never panic
// and never return a payload that fails its own CRC.
func TestDecodeNeverPanicsOnRandomStreams(t *testing.T) {
	c := testConfig(t, 5)
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		stream := make([]cssk.Symbol, int(n))
		for i := range stream {
			switch rng.Intn(4) {
			case 0:
				stream[i] = c.Alphabet.Header()
			case 1:
				stream[i] = c.Alphabet.Sync()
			default:
				s, err := c.Alphabet.DataSymbol(rng.Intn(c.Alphabet.DataSymbolCount()))
				if err != nil {
					return false
				}
				stream[i] = s
			}
		}
		payload, err := c.Decode(stream)
		if err != nil {
			return true
		}
		// A successful decode means the CRC matched; re-encoding the payload
		// must produce a packet that decodes back to the same bytes.
		re, err := c.Encode(payload)
		if err != nil {
			return false
		}
		back, err := c.Decode(re)
		return err == nil && bytes.Equal(back, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeWithSymbolErasures injects per-symbol erasures (slots replaced
// by a random wrong symbol, as happens when a chirp is hit by interference):
// the decoder must flag the corruption via the CRC rather than deliver a
// wrong payload.
func TestDecodeWithSymbolErasures(t *testing.T) {
	c := testConfig(t, 5)
	payload := []byte("erasure test payload")
	clean, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	wrongDeliveries := 0
	for trial := 0; trial < 200; trial++ {
		stream := append([]cssk.Symbol(nil), clean...)
		// Corrupt 1–3 random data slots.
		nErr := 1 + rng.Intn(3)
		for e := 0; e < nErr; e++ {
			i := c.HeaderLen + c.SyncLen + rng.Intn(len(stream)-c.HeaderLen-c.SyncLen)
			s, err := c.Alphabet.DataSymbol(rng.Intn(c.Alphabet.DataSymbolCount()))
			if err != nil {
				t.Fatal(err)
			}
			stream[i] = s
		}
		got, err := c.Decode(stream)
		if err == nil && !bytes.Equal(got, payload) {
			wrongDeliveries++
		}
	}
	// CRC-8 misses ~1/256 of random corruptions; allow a small residue but
	// catch gross failures of the check.
	if wrongDeliveries > 5 {
		t.Fatalf("%d/200 corrupted packets delivered wrong payloads", wrongDeliveries)
	}
}

// TestDecodeWithLostChirps drops random chirps from the stream (deep fades):
// framing must not deliver a wrong payload.
func TestDecodeWithLostChirps(t *testing.T) {
	c := testConfig(t, 5)
	payload := []byte{0x11, 0x22, 0x33}
	clean, _ := c.Encode(payload)
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 100; trial++ {
		stream := append([]cssk.Symbol(nil), clean...)
		drop := rng.Intn(len(stream))
		stream = append(stream[:drop], stream[drop+1:]...)
		got, err := c.Decode(stream)
		if err == nil && !bytes.Equal(got, payload) {
			// Dropping a preamble symbol is harmless; dropping a data
			// symbol shifts the payload and must be caught by the CRC.
			t.Fatalf("trial %d: dropped chirp %d delivered wrong payload %x", trial, drop, got)
		}
	}
}
