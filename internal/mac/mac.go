// Package mac models the medium-access extensions sketched in §6: sharing
// one tag population among multiple radars with TDMA or slotted ALOHA, and
// the per-node-rate versus network-throughput trade-off when many tags
// share the slow-time modulation band.
package mac

import (
	"fmt"
	"math/rand"
)

// MaxConcurrentTags returns how many tags can modulate simultaneously given
// the slow-time tone grid used by the core network: FSK pairs on a grid of
// step max(2·bitRate, 0.02·chirpRate) packed into [0.15, 0.5)·chirpRate.
func MaxConcurrentTags(period float64, chirpsPerBit int) int {
	if period <= 0 || chirpsPerBit < 2 {
		return 0
	}
	chirpRate := 1 / period
	bitRate := chirpRate / float64(chirpsPerBit)
	step := 2 * bitRate
	if min := 0.02 * chirpRate; step < min {
		step = min
	}
	base := 0.15 * chirpRate
	n := 0
	for {
		f1 := base + float64(2*n)*step + step
		if f1 >= chirpRate/2 {
			return n
		}
		n++
	}
}

// Throughput quantifies the §6 trade-off for a deployment of nTags: tags
// beyond the concurrent capacity are time-division multiplexed across
// frames, cutting the per-node rate while the aggregate saturates at the
// band capacity.
type Throughput struct {
	// Concurrent is the number of tags that fit the tone grid at once.
	Concurrent int
	// PerNodeBitRate is each tag's average uplink rate (bit/s).
	PerNodeBitRate float64
	// AggregateBitRate is the network total (bit/s).
	AggregateBitRate float64
}

// NetworkThroughput computes the trade-off for nTags tags.
func NetworkThroughput(nTags, chirpsPerBit int, period float64) (Throughput, error) {
	if nTags < 1 {
		return Throughput{}, fmt.Errorf("mac: need at least one tag, got %d", nTags)
	}
	cap := MaxConcurrentTags(period, chirpsPerBit)
	if cap == 0 {
		return Throughput{}, fmt.Errorf("mac: no tone capacity at period %v, chirpsPerBit %d", period, chirpsPerBit)
	}
	raw := 1 / (float64(chirpsPerBit) * period)
	active := nTags
	if active > cap {
		active = cap
	}
	share := 1.0
	if nTags > cap {
		share = float64(cap) / float64(nTags)
	}
	return Throughput{
		Concurrent:       cap,
		PerNodeBitRate:   raw * share,
		AggregateBitRate: raw * float64(active),
	}, nil
}

// Scheduler decides, per radar per slot, whether that radar transmits.
type Scheduler interface {
	// Name identifies the policy.
	Name() string
	// Transmit reports whether radar id transmits in the given slot.
	Transmit(radarID, slot int, rng *rand.Rand) bool
}

// TDMA is round-robin slot ownership — the deterministic multi-radar
// policy §6 suggests.
type TDMA struct {
	// Radars is the number of radars sharing the schedule.
	Radars int
}

// Name implements Scheduler.
func (TDMA) Name() string { return "tdma" }

// Transmit implements Scheduler.
func (t TDMA) Transmit(radarID, slot int, _ *rand.Rand) bool {
	if t.Radars < 1 {
		return false
	}
	return slot%t.Radars == radarID
}

// SlottedAloha transmits in each slot independently with probability P —
// the uncoordinated policy §6 mentions.
type SlottedAloha struct {
	// P is the per-slot transmission probability.
	P float64
}

// Name implements Scheduler.
func (SlottedAloha) Name() string { return "slotted-aloha" }

// Transmit implements Scheduler.
func (s SlottedAloha) Transmit(_, _ int, rng *rand.Rand) bool {
	return rng.Float64() < s.P
}

// SimResult summarizes a medium-sharing simulation.
type SimResult struct {
	// Slots is the number of simulated frame slots.
	Slots int
	// Attempts counts radar transmissions.
	Attempts int
	// Successes counts slots in which exactly one radar transmitted (two
	// simultaneous FMCW frames at the tag collide: the envelope holds two
	// interleaved chirp trains and the period estimate fails).
	Successes int
	// Collisions counts slots with two or more transmitters.
	Collisions int
	// PerRadar is each radar's successful-frame count.
	PerRadar []int
}

// Utilization is the fraction of slots carrying exactly one frame.
func (r SimResult) Utilization() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.Successes) / float64(r.Slots)
}

// Simulate runs the scheduler over the given number of slots and radars.
func Simulate(s Scheduler, radars, slots int, seed int64) (SimResult, error) {
	if radars < 1 {
		return SimResult{}, fmt.Errorf("mac: need at least one radar, got %d", radars)
	}
	if slots < 1 {
		return SimResult{}, fmt.Errorf("mac: need at least one slot, got %d", slots)
	}
	rng := rand.New(rand.NewSource(seed))
	res := SimResult{Slots: slots, PerRadar: make([]int, radars)}
	for slot := 0; slot < slots; slot++ {
		var who []int
		for id := 0; id < radars; id++ {
			if s.Transmit(id, slot, rng) {
				who = append(who, id)
			}
		}
		res.Attempts += len(who)
		switch {
		case len(who) == 1:
			res.Successes++
			res.PerRadar[who[0]]++
		case len(who) > 1:
			res.Collisions++
		}
	}
	return res, nil
}

// OptimalAlohaP returns the utilization-maximizing transmission probability
// for n radars (the classic 1/n).
func OptimalAlohaP(n int) float64 {
	if n < 1 {
		return 0
	}
	return 1 / float64(n)
}
