package mac

import "testing"

func TestNewFrameScheduleValidation(t *testing.T) {
	if _, err := NewFrameSchedule(0, 4); err == nil {
		t.Fatal("expected error for zero tags")
	}
	if _, err := NewFrameSchedule(4, 0); err == nil {
		t.Fatal("expected error for zero capacity")
	}
}

func TestFrameSchedulePartition(t *testing.T) {
	// Every tag must appear exactly once per cycle, in exactly one group,
	// and no group may exceed the capacity.
	for _, tc := range []struct{ nTags, cap, frames int }{
		{1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {9, 4, 3}, {24, 7, 4},
	} {
		s, err := NewFrameSchedule(tc.nTags, tc.cap)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.Frames(); got != tc.frames {
			t.Errorf("nTags=%d cap=%d: frames %d, want %d", tc.nTags, tc.cap, got, tc.frames)
		}
		seen := make([]int, tc.nTags)
		for g := 0; g < s.Frames(); g++ {
			grp := s.Group(g)
			if len(grp) > tc.cap {
				t.Errorf("group %d size %d exceeds capacity %d", g, len(grp), tc.cap)
			}
			if len(grp) != s.GroupSize(g) {
				t.Errorf("group %d: GroupSize %d != len(Group) %d", g, s.GroupSize(g), len(grp))
			}
			for slot, tag := range grp {
				seen[tag]++
				if s.GroupOf(tag) != g {
					t.Errorf("tag %d: GroupOf %d, want %d", tag, s.GroupOf(tag), g)
				}
				if s.SlotOf(tag) != slot {
					t.Errorf("tag %d: SlotOf %d, want %d", tag, s.SlotOf(tag), slot)
				}
			}
		}
		for tag, c := range seen {
			if c != 1 {
				t.Errorf("tag %d scheduled %d times per cycle", tag, c)
			}
		}
	}
}

func TestFrameScheduleSlotReuseAcrossGroups(t *testing.T) {
	s, err := NewFrameSchedule(12, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Slots repeat across groups but never within one.
	for g := 0; g < s.Frames(); g++ {
		slots := map[int]bool{}
		for _, tag := range s.Group(g) {
			sl := s.SlotOf(tag)
			if sl < 0 || sl >= s.Capacity() {
				t.Fatalf("tag %d slot %d out of [0,%d)", tag, sl, s.Capacity())
			}
			if slots[sl] {
				t.Fatalf("group %d reuses slot %d", g, sl)
			}
			slots[sl] = true
		}
	}
	if s.SlotOf(0) != s.SlotOf(4) || s.SlotOf(4) != s.SlotOf(8) {
		t.Fatal("tags 0,4,8 should share slot 0 across groups")
	}
}

func TestFrameScheduleGroupWraps(t *testing.T) {
	s, err := NewFrameSchedule(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	g0, g2 := s.Group(0), s.Group(2)
	if len(g0) != len(g2) {
		t.Fatalf("Group(2) should wrap to Group(0): %v vs %v", g2, g0)
	}
	for i := range g0 {
		if g0[i] != g2[i] {
			t.Fatalf("Group(2) should wrap to Group(0): %v vs %v", g2, g0)
		}
	}
}

func TestFrameScheduleOutOfRange(t *testing.T) {
	s, err := NewFrameSchedule(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.GroupOf(-1) != -1 || s.GroupOf(3) != -1 {
		t.Fatal("out-of-range GroupOf should return -1")
	}
	if s.SlotOf(-1) != -1 || s.SlotOf(3) != -1 {
		t.Fatal("out-of-range SlotOf should return -1")
	}
	if s.GroupSize(-1) != 0 || s.GroupSize(2) != 0 {
		t.Fatal("out-of-range GroupSize should return 0")
	}
}

func TestScheduleForMatchesCapacity(t *testing.T) {
	period, cpb := 100e-6, 32
	cap := MaxConcurrentTags(period, cpb)
	if cap < 1 {
		t.Fatalf("expected positive capacity, got %d", cap)
	}
	s, err := ScheduleFor(3*cap+1, period, cpb)
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != cap {
		t.Fatalf("capacity %d, want %d", s.Capacity(), cap)
	}
	if s.Frames() != 4 {
		t.Fatalf("frames %d, want 4", s.Frames())
	}
	if _, err := ScheduleFor(4, -1, 32); err == nil {
		t.Fatal("expected error for invalid period")
	}
}

func TestScheduleThroughputMatchesAnalyticModel(t *testing.T) {
	// When nTags divides evenly into groups the frame-quantized schedule
	// must agree with the fluid NetworkThroughput model.
	period, cpb := 100e-6, 32
	cap := MaxConcurrentTags(period, cpb)
	nTags := 2 * cap
	s, err := NewFrameSchedule(nTags, cap)
	if err != nil {
		t.Fatal(err)
	}
	got := s.Throughput(cpb, period)
	want, err := NetworkThroughput(nTags, cpb, period)
	if err != nil {
		t.Fatal(err)
	}
	if got.Concurrent != want.Concurrent {
		t.Errorf("concurrent %d, want %d", got.Concurrent, want.Concurrent)
	}
	if diff := got.PerNodeBitRate - want.PerNodeBitRate; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("per-node rate %v, want %v", got.PerNodeBitRate, want.PerNodeBitRate)
	}
	if diff := got.AggregateBitRate - want.AggregateBitRate; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("aggregate rate %v, want %v", got.AggregateBitRate, want.AggregateBitRate)
	}
}
