package mac

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxConcurrentTagsMatchesCoreGrid(t *testing.T) {
	// At the default 120 µs period and 32 chirps/bit, the tone grid packs
	// a handful of FSK pairs below the slow-time Nyquist.
	n := MaxConcurrentTags(120e-6, 32)
	if n < 2 || n > 6 {
		t.Fatalf("capacity %d implausible for the default grid", n)
	}
	// Faster bits need wider tones → fewer concurrent tags.
	fast := MaxConcurrentTags(120e-6, 8)
	if fast >= n {
		t.Fatalf("faster bits should cut capacity: %d vs %d", fast, n)
	}
	if MaxConcurrentTags(0, 32) != 0 || MaxConcurrentTags(120e-6, 1) != 0 {
		t.Fatal("degenerate inputs should report zero capacity")
	}
}

func TestNetworkThroughputTradeOff(t *testing.T) {
	const period = 120e-6
	const cpb = 32
	cap := MaxConcurrentTags(period, cpb)
	raw := 1 / (float64(cpb) * period)

	// Below capacity: every node gets the full rate.
	small, err := NetworkThroughput(1, cpb, period)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(small.PerNodeBitRate-raw) > 1e-9 {
		t.Fatalf("single node rate %v, want %v", small.PerNodeBitRate, raw)
	}
	// Above capacity: per-node rate drops, aggregate saturates.
	big, err := NetworkThroughput(4*cap, cpb, period)
	if err != nil {
		t.Fatal(err)
	}
	if big.PerNodeBitRate >= small.PerNodeBitRate {
		t.Fatal("oversubscribed per-node rate should drop")
	}
	if math.Abs(big.AggregateBitRate-raw*float64(cap)) > 1e-9 {
		t.Fatalf("aggregate should saturate at capacity: %v", big.AggregateBitRate)
	}
	if _, err := NetworkThroughput(0, cpb, period); err == nil {
		t.Fatal("zero tags should fail")
	}
}

func TestNetworkThroughputMonotoneProperty(t *testing.T) {
	f := func(raw uint8) bool {
		n := 1 + int(raw)%20
		a, err1 := NetworkThroughput(n, 32, 120e-6)
		b, err2 := NetworkThroughput(n+1, 32, 120e-6)
		if err1 != nil || err2 != nil {
			return false
		}
		// Per-node rate never increases with more tags; aggregate never
		// decreases.
		return b.PerNodeBitRate <= a.PerNodeBitRate+1e-12 &&
			b.AggregateBitRate >= a.AggregateBitRate-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTDMANoCollisionsFullUtilization(t *testing.T) {
	res, err := Simulate(TDMA{Radars: 4}, 4, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions != 0 {
		t.Fatalf("TDMA must not collide, got %d", res.Collisions)
	}
	if res.Utilization() != 1.0 {
		t.Fatalf("TDMA utilization %v, want 1", res.Utilization())
	}
	// Fair share.
	for id, n := range res.PerRadar {
		if n != 250 {
			t.Fatalf("radar %d got %d slots, want 250", id, n)
		}
	}
}

func TestSlottedAlohaUtilizationNearTheoretical(t *testing.T) {
	// n radars at p = 1/n: success probability n·p·(1-p)^(n-1) → 1/e.
	const n = 8
	res, err := Simulate(SlottedAloha{P: OptimalAlohaP(n)}, n, 20000, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) * (1.0 / n) * math.Pow(1-1.0/n, n-1)
	if math.Abs(res.Utilization()-want) > 0.03 {
		t.Fatalf("utilization %v, theory %v", res.Utilization(), want)
	}
	if res.Collisions == 0 {
		t.Fatal("ALOHA should collide sometimes")
	}
}

func TestAlohaWorseThanTDMA(t *testing.T) {
	tdma, _ := Simulate(TDMA{Radars: 5}, 5, 5000, 3)
	aloha, _ := Simulate(SlottedAloha{P: OptimalAlohaP(5)}, 5, 5000, 3)
	if aloha.Utilization() >= tdma.Utilization() {
		t.Fatalf("uncoordinated ALOHA (%v) should not beat TDMA (%v)",
			aloha.Utilization(), tdma.Utilization())
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(TDMA{Radars: 1}, 0, 10, 1); err == nil {
		t.Error("zero radars should fail")
	}
	if _, err := Simulate(TDMA{Radars: 1}, 1, 0, 1); err == nil {
		t.Error("zero slots should fail")
	}
}

func TestSchedulerNamesAndEdges(t *testing.T) {
	if (TDMA{}).Name() != "tdma" || (SlottedAloha{}).Name() != "slotted-aloha" {
		t.Fatal("scheduler names")
	}
	if (TDMA{Radars: 0}).Transmit(0, 0, nil) {
		t.Fatal("degenerate TDMA should not transmit")
	}
	if OptimalAlohaP(0) != 0 || OptimalAlohaP(4) != 0.25 {
		t.Fatal("OptimalAlohaP")
	}
	var r SimResult
	if r.Utilization() != 0 {
		t.Fatal("empty result utilization")
	}
}
