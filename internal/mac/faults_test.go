package mac_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"biscatter/internal/channel"
	"biscatter/internal/core"
	"biscatter/internal/fault"
	"biscatter/internal/mac"
)

// macFaultProfiles are the §6 medium-access stress conditions: a half-duty
// in-band jammer and moving people crossing the scene.
func macFaultProfiles() map[string]*fault.Profile {
	return map[string]*fault.Profile{
		"jammed": {
			Name:         "jammed",
			Seed:         301,
			Interference: &fault.Interference{TagPowerDBm: -50, RadarPowerDBm: -74, DutyCycle: 0.5},
		},
		"mobile": {
			Name: "mobile",
			Seed: 302,
			Clutter: []channel.Reflector{
				{Range: 2.2, RCSdBsm: -3, Velocity: 1.3},
				{Range: 4.6, RCSdBsm: 0, Velocity: -0.9},
			},
		},
	}
}

// slotTrace is the per-slot outcome of one scheduled medium-access run:
// whether our radar owned the slot, and what each node decoded and
// reported when it did.
type slotTrace struct {
	Transmitted bool
	Downlink    []string // per node: decoded payload hex or error text
	Detected    []bool
	Uplink      [][]bool
}

// runScheduledExchanges drives a two-node network through a multi-radar
// slot schedule under a fault profile: our radar (ID 0 of two sharing the
// band) transmits only in the slots the scheduler grants it, exactly the
// §6 sharing model layered over the full exchange pipeline.
func runScheduledExchanges(t *testing.T, s mac.Scheduler, p *fault.Profile, workers, slots int) []slotTrace {
	t.Helper()
	net, err := core.NewNetwork(core.Config{
		Nodes: []core.NodeConfig{
			{ID: 1, Range: 1.8},
			{ID: 2, Range: 3.1},
		},
		ChirpsPerBit: 32,
		Seed:         33,
		Workers:      workers,
		Faults:       p,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The scheduler's randomness (slotted ALOHA) must be its own seeded
	// stream, independent of the network's worker count.
	rng := rand.New(rand.NewSource(77))
	traces := make([]slotTrace, 0, slots)
	for slot := 0; slot < slots; slot++ {
		tr := slotTrace{Transmitted: s.Transmit(0, slot, rng)}
		// Advance the shared RNG for the other radar's decision so the
		// stream matches a two-radar deployment.
		s.Transmit(1, slot, rng)
		if tr.Transmitted {
			payload := core.RandomPayload(int64(slot)+5, 6)
			uplink := map[int][]bool{0: {true, false, true}, 1: {false, true, false}}
			res, err := net.Exchange(payload, uplink)
			if err != nil {
				t.Fatalf("slot %d: %v", slot, err)
			}
			for _, nr := range res.Nodes {
				if nr.DownlinkErr != nil {
					tr.Downlink = append(tr.Downlink, nr.DownlinkErr.Error())
				} else {
					tr.Downlink = append(tr.Downlink, fmt.Sprintf("%x ok=%v", nr.DownlinkPayload, bytes.Equal(nr.DownlinkPayload, payload)))
				}
				tr.Detected = append(tr.Detected, nr.DetectionErr == nil)
				tr.Uplink = append(tr.Uplink, append([]bool(nil), nr.UplinkBits...))
			}
		}
		traces = append(traces, tr)
	}
	return traces
}

// TestMACFaultWorkerInvariance mirrors core's TestFaultWorkerInvariance for
// the medium-access layer: a TDMA and a slotted-ALOHA schedule driving full
// exchanges under the jammed and mobile profiles must produce byte-identical
// traces at one and four workers.
func TestMACFaultWorkerInvariance(t *testing.T) {
	schedulers := []mac.Scheduler{
		mac.TDMA{Radars: 2},
		mac.SlottedAloha{P: 0.6},
	}
	const slots = 4
	for name, p := range macFaultProfiles() {
		for _, s := range schedulers {
			t.Run(name+"/"+s.Name(), func(t *testing.T) {
				one := runScheduledExchanges(t, s, p, 1, slots)
				four := runScheduledExchanges(t, s, p, 4, slots)
				if !reflect.DeepEqual(one, four) {
					t.Fatalf("%s/%s traces diverged between 1 and 4 workers:\n%+v\n%+v",
						name, s.Name(), one, four)
				}
				granted := 0
				for _, tr := range one {
					if tr.Transmitted {
						granted++
					}
				}
				if granted == 0 {
					t.Fatalf("%s/%s: schedule granted no slots — the run exercised nothing", name, s.Name())
				}
			})
		}
	}
}
