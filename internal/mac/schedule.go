package mac

import "fmt"

// FrameSchedule is a deterministic multi-tag frame schedule: a round-robin
// time-division of nTags tags into frame groups of at most capacity tags
// each. It is the "real" scheduler grown out of the analytic TDMA model —
// where NetworkThroughput only predicts the per-node/aggregate rate
// trade-off, a FrameSchedule says exactly which tags modulate in which
// frame and which slow-time tone slot each occupies, so the exchange engine
// can serve a deployment larger than the tone grid by cycling groups across
// frames (the B-ISAC massive-tag picture).
//
// Tags are assigned in index order to contiguous groups: group g holds tags
// [g·capacity, min((g+1)·capacity, nTags)). Within its group a tag occupies
// tone slot tag−g·capacity, so tags in different groups reuse the same tone
// pair — legal because they never modulate in the same frame. The schedule
// is pure data (no RNG, no clock) and safe for concurrent readers.
type FrameSchedule struct {
	nTags    int
	capacity int
	frames   int
}

// NewFrameSchedule builds a schedule for nTags tags under a per-frame
// concurrency capacity (typically MaxConcurrentTags for the deployment's
// period and chirps-per-bit).
func NewFrameSchedule(nTags, capacity int) (*FrameSchedule, error) {
	if nTags < 1 {
		return nil, fmt.Errorf("mac: schedule needs at least one tag, got %d", nTags)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("mac: schedule needs positive capacity, got %d", capacity)
	}
	return &FrameSchedule{
		nTags:    nTags,
		capacity: capacity,
		frames:   (nTags + capacity - 1) / capacity,
	}, nil
}

// ScheduleFor builds the schedule for a deployment directly from its
// slow-time parameters: capacity comes from MaxConcurrentTags(period,
// chirpsPerBit).
func ScheduleFor(nTags int, period float64, chirpsPerBit int) (*FrameSchedule, error) {
	cap := MaxConcurrentTags(period, chirpsPerBit)
	if cap == 0 {
		return nil, fmt.Errorf("mac: no tone capacity at period %v, chirpsPerBit %d", period, chirpsPerBit)
	}
	return NewFrameSchedule(nTags, cap)
}

// NTags returns the number of scheduled tags.
func (s *FrameSchedule) NTags() int { return s.nTags }

// Capacity returns the per-frame tag capacity.
func (s *FrameSchedule) Capacity() int { return s.capacity }

// Frames returns the cycle length: how many frames serve every tag once.
func (s *FrameSchedule) Frames() int { return s.frames }

// GroupOf returns the frame group (0-based, within the cycle) in which tag
// modulates. Out-of-range tags return -1.
func (s *FrameSchedule) GroupOf(tag int) int {
	if tag < 0 || tag >= s.nTags {
		return -1
	}
	return tag / s.capacity
}

// SlotOf returns tag's tone slot within its group — the index the exchange
// engine uses to auto-assign the tag's FSK pair. Tags in different groups
// share slots (and therefore tones); tags in the same group never do.
// Out-of-range tags return -1.
func (s *FrameSchedule) SlotOf(tag int) int {
	if tag < 0 || tag >= s.nTags {
		return -1
	}
	return tag % s.capacity
}

// Assignment returns tag's (frame group, tone slot) pair in one call — what
// a schedule-aware gateway stores per session at admission time.
// Out-of-range tags return (-1, -1).
func (s *FrameSchedule) Assignment(tag int) (group, slot int) {
	if tag < 0 || tag >= s.nTags {
		return -1, -1
	}
	return tag / s.capacity, tag % s.capacity
}

// GroupSize returns the number of tags in frame group g (the last group of
// a cycle may be short). Out-of-range groups return 0.
func (s *FrameSchedule) GroupSize(g int) int {
	if g < 0 || g >= s.frames {
		return 0
	}
	lo := g * s.capacity
	hi := lo + s.capacity
	if hi > s.nTags {
		hi = s.nTags
	}
	return hi - lo
}

// AppendGroup appends the tag indices active in frame group g (g taken
// modulo the cycle length) to dst and returns the extended slice, so a
// steady-state caller reuses one backing buffer across frames.
func (s *FrameSchedule) AppendGroup(dst []int, g int) []int {
	g = ((g % s.frames) + s.frames) % s.frames
	lo := g * s.capacity
	hi := lo + s.capacity
	if hi > s.nTags {
		hi = s.nTags
	}
	for t := lo; t < hi; t++ {
		dst = append(dst, t)
	}
	return dst
}

// Group returns the tag indices active in frame group g as a fresh slice.
func (s *FrameSchedule) Group(g int) []int {
	return s.AppendGroup(nil, g)
}

// Throughput evaluates the schedule against the deployment's slow-time
// parameters: every tag gets exactly one frame per cycle, so the per-node
// rate is the raw bit rate divided by the cycle length, and the aggregate
// is bounded by the mean group size. It is the frame-quantized counterpart
// of the fluid NetworkThroughput model — the two agree when nTags divides
// evenly into groups, and the schedule is slightly conservative otherwise
// (a short last group still costs a whole frame).
func (s *FrameSchedule) Throughput(chirpsPerBit int, period float64) Throughput {
	raw := 1 / (float64(chirpsPerBit) * period)
	return Throughput{
		Concurrent:       s.capacity,
		PerNodeBitRate:   raw / float64(s.frames),
		AggregateBitRate: raw * float64(s.nTags) / float64(s.frames),
	}
}
