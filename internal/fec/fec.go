// Package fec implements the downlink forward-error-correction layer the
// link-recovery subsystem degrades into when retransmission alone cannot
// close the link. Two codes cover the impairment spectrum the fault layer
// injects:
//
//   - Hamming(7,4): corrects one flipped bit per 7-bit codeword. Cheap (75%
//     overhead) and effective against the scattered symbol errors a marginal
//     SNR produces.
//   - Repetition-N (majority vote): corrects up to ⌊N/2⌋ of the N copies of
//     every bit. Expensive (N−1 copies of overhead) but, combined with the
//     interleaver, survives the long jamming bursts a duty-cycled gate
//     produces — the copies of one bit land whole columns apart, so a burst
//     shorter than the column stride hits at most one copy.
//
// Both codes run under a depth-d block interleaver: the coded bit stream is
// written row-major into d rows and transmitted column-major, so b
// consecutive corrupted channel bits land in b different rows — codeword
// neighborhoods far apart in the coded stream.
//
// The layer is bit-exact reversible and self-delimiting against the CSSK
// symbol padding: Encode pads the coded stream with zeros to a multiple of
// PadQuantum bits, and Decode recovers the exact padded length as the
// unique multiple of PadQuantum within one symbol of the received bit
// count. SchemeNone is the identity — a packet configured without FEC is
// byte-identical to one that never imported this package.
package fec

import (
	"errors"
	"fmt"
)

// Scheme selects the code.
type Scheme int

// Schemes, ordered by increasing redundancy. The link controller's
// degradation ladder walks this order.
const (
	// SchemeNone is the identity: no coding, no interleaving, no padding.
	SchemeNone Scheme = iota
	// SchemeHamming74 is the Hamming(7,4) single-error-correcting code.
	SchemeHamming74
	// SchemeRepetition repeats every bit Config.Repeat times (default 3)
	// and decodes by majority vote.
	SchemeRepetition
)

// ParseConfig maps a command-line scheme name to a calibrated Config, so
// the radar and tag binaries agree on the coded framing from the same flag
// value. The interleave depths match the default mode ladder's coded and
// survival rungs.
func ParseConfig(name string) (Config, error) {
	switch name {
	case "", "none":
		return Config{}, nil
	case "hamming":
		return Config{Scheme: SchemeHamming74, InterleaveDepth: 14}, nil
	case "repetition":
		return Config{Scheme: SchemeRepetition, Repeat: 3, InterleaveDepth: 56}, nil
	}
	return Config{}, fmt.Errorf("fec: unknown scheme %q (want none, hamming or repetition)", name)
}

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeHamming74:
		return "hamming74"
	case SchemeRepetition:
		return "repetition"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// PadQuantum is the padding granularity of the coded stream in bits. Encode
// zero-pads the coded stream to a multiple of it; Decode recovers the exact
// padded length as the only multiple of PadQuantum within maxSlack bits of
// the received stream length. 28 is a common multiple of the Hamming
// codeword (7) and the repetition unit for any Repeat dividing 28's
// factors; more importantly it exceeds the largest CSSK symbol (16 bits),
// which is what makes the length recovery unambiguous.
const PadQuantum = 28

// ErrTooShort means the received stream is too short to hold even the
// padding quantum.
var ErrTooShort = errors.New("fec: coded stream too short")

// Config parameterizes the layer. The zero value is SchemeNone — the exact
// identity transform.
type Config struct {
	// Scheme selects the code.
	Scheme Scheme
	// InterleaveDepth is the number of interleaver rows; values below 2
	// (including zero) disable interleaving. Deeper interleaving spreads
	// longer channel bursts at no rate cost.
	InterleaveDepth int
	// Repeat is the repetition factor for SchemeRepetition; zero selects 3.
	// Must be odd so the majority vote has no ties.
	Repeat int
}

// withDefaults fills derived defaults.
func (c Config) withDefaults() Config {
	if c.Scheme == SchemeRepetition && c.Repeat == 0 {
		c.Repeat = 3
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	cc := c.withDefaults()
	switch cc.Scheme {
	case SchemeNone, SchemeHamming74:
	case SchemeRepetition:
		if cc.Repeat < 3 || cc.Repeat%2 == 0 {
			return fmt.Errorf("fec: repetition factor %d must be an odd number ≥ 3", cc.Repeat)
		}
	default:
		return fmt.Errorf("fec: unknown scheme %d", int(cc.Scheme))
	}
	if cc.InterleaveDepth < 0 || cc.InterleaveDepth > 256 {
		return fmt.Errorf("fec: interleave depth %d must be in [0, 256]", cc.InterleaveDepth)
	}
	return nil
}

// Enabled reports whether the configuration applies any transform at all.
func (c Config) Enabled() bool { return c.Scheme != SchemeNone }

// Rate returns the code rate (data bits per coded bit), ignoring the
// bounded padding. 1 for SchemeNone.
func (c Config) Rate() float64 {
	cc := c.withDefaults()
	switch cc.Scheme {
	case SchemeHamming74:
		return 4.0 / 7.0
	case SchemeRepetition:
		return 1.0 / float64(cc.Repeat)
	default:
		return 1
	}
}

// CodedBits returns the on-air bit count for n data bytes, padding
// included. For SchemeNone it is exactly 8n.
func (c Config) CodedBits(n int) int {
	cc := c.withDefaults()
	var raw int
	switch cc.Scheme {
	case SchemeHamming74:
		raw = 14 * n // 2 codewords per byte
	case SchemeRepetition:
		raw = 8 * n * cc.Repeat
	default:
		return 8 * n
	}
	return (raw + PadQuantum - 1) / PadQuantum * PadQuantum
}

// Stats reports what the decoder observed and repaired.
type Stats struct {
	// CodedBits is the number of coded bits consumed.
	CodedBits int
	// CorrectedBits counts channel bits the code repaired: flipped bits
	// inside correctable Hamming codewords, and minority votes under
	// repetition. Zero on a clean stream — and always zero for SchemeNone,
	// which cannot see errors.
	CorrectedBits int
}

// EncodeBits codes a data bit stream for transmission: code, pad to the
// quantum, interleave. SchemeNone returns the input unchanged (no copy).
func (c Config) EncodeBits(data []bool) []bool {
	cc := c.withDefaults()
	if cc.Scheme == SchemeNone {
		return data
	}
	var coded []bool
	switch cc.Scheme {
	case SchemeHamming74:
		coded = hammingEncode(data)
	case SchemeRepetition:
		coded = make([]bool, 0, len(data)*cc.Repeat)
		for _, b := range data {
			for r := 0; r < cc.Repeat; r++ {
				coded = append(coded, b)
			}
		}
	}
	for len(coded)%PadQuantum != 0 {
		coded = append(coded, false)
	}
	return interleave(coded, cc.InterleaveDepth)
}

// DecodeBits inverts EncodeBits on a received stream that may carry up to
// maxSlack trailing garbage bits (the CSSK symbol padding the framing layer
// cannot strip). maxSlack must be smaller than PadQuantum for the padded
// length to be unambiguous; the packet layer guarantees this by
// construction (symbol sizes are capped at 16 bits). The returned data may
// include up to one byte-group of zero padding bits beyond the original
// data; framing layers delimit real content themselves (length prefixes).
func (c Config) DecodeBits(recv []bool, maxSlack int) ([]bool, Stats, error) {
	cc := c.withDefaults()
	if cc.Scheme == SchemeNone {
		// The identity scheme reports zero stats: it consumes no coded bits
		// and cannot see errors, and downstream diagnostics must stay
		// byte-identical to a build without FEC.
		return recv, Stats{}, nil
	}
	if maxSlack >= PadQuantum {
		return nil, Stats{}, fmt.Errorf("fec: slack %d bits must be below the %d-bit pad quantum", maxSlack, PadQuantum)
	}
	length := len(recv) / PadQuantum * PadQuantum
	if length == 0 {
		return nil, Stats{}, ErrTooShort
	}
	if len(recv)-length > maxSlack {
		return nil, Stats{}, fmt.Errorf("fec: %d trailing bits exceed the declared %d-bit slack", len(recv)-length, maxSlack)
	}
	coded := deinterleave(recv[:length], cc.InterleaveDepth)
	st := Stats{CodedBits: length}
	var data []bool
	switch cc.Scheme {
	case SchemeHamming74:
		data = hammingDecode(coded, &st)
	case SchemeRepetition:
		data = make([]bool, 0, length/cc.Repeat)
		for i := 0; i+cc.Repeat <= len(coded); i += cc.Repeat {
			ones := 0
			for r := 0; r < cc.Repeat; r++ {
				if coded[i+r] {
					ones++
				}
			}
			bit := ones > cc.Repeat/2
			if minority := min(ones, cc.Repeat-ones); minority > 0 {
				st.CorrectedBits += minority
			}
			data = append(data, bit)
		}
	}
	return data, st, nil
}

// hammingEncode codes data 4 bits at a time into 7-bit codewords, zero-
// padding the final nibble. Layout per codeword: p1 p2 d1 p3 d2 d3 d4
// (parity bits at positions 1, 2 and 4 — the classic arrangement whose
// syndrome reads out the error position directly).
func hammingEncode(data []bool) []bool {
	out := make([]bool, 0, (len(data)+3)/4*7)
	for i := 0; i < len(data); i += 4 {
		var d [4]bool
		for k := 0; k < 4 && i+k < len(data); k++ {
			d[k] = data[i+k]
		}
		p1 := d[0] != d[1] != d[3]
		p2 := d[0] != d[2] != d[3]
		p3 := d[1] != d[2] != d[3]
		out = append(out, p1, p2, d[0], p3, d[1], d[2], d[3])
	}
	return out
}

// hammingDecode inverts hammingEncode, correcting one flipped bit per
// codeword and tallying corrections into st. Trailing bits short of a full
// codeword (only possible on corrupt geometry) are dropped.
func hammingDecode(coded []bool, st *Stats) []bool {
	out := make([]bool, 0, len(coded)/7*4)
	for i := 0; i+7 <= len(coded); i += 7 {
		var w [7]bool
		copy(w[:], coded[i:i+7])
		s1 := w[0] != w[2] != w[4] != w[6]
		s2 := w[1] != w[2] != w[5] != w[6]
		s3 := w[3] != w[4] != w[5] != w[6]
		syndrome := 0
		if s1 {
			syndrome |= 1
		}
		if s2 {
			syndrome |= 2
		}
		if s3 {
			syndrome |= 4
		}
		if syndrome != 0 {
			w[syndrome-1] = !w[syndrome-1]
			st.CorrectedBits++
		}
		out = append(out, w[2], w[4], w[5], w[6])
	}
	return out
}

// interleave permutes the coded stream for transmission: the stream is
// written row-major into depth rows of ⌈n/depth⌉ columns (the last row may
// be ragged) and read out column-major. Consecutive transmitted bits are
// one full row apart in the coded stream, so a burst of b ≤ depth channel
// bits corrupts at most one bit per row. Depth < 2 is the identity.
func interleave(bits []bool, depth int) []bool {
	if depth < 2 || len(bits) <= depth {
		return bits
	}
	n := len(bits)
	cols := (n + depth - 1) / depth
	out := make([]bool, 0, n)
	for c := 0; c < cols; c++ {
		for r := 0; r < depth; r++ {
			if idx := r*cols + c; idx < n {
				out = append(out, bits[idx])
			}
		}
	}
	return out
}

// deinterleave inverts interleave for a stream of the same length.
func deinterleave(bits []bool, depth int) []bool {
	if depth < 2 || len(bits) <= depth {
		return bits
	}
	n := len(bits)
	cols := (n + depth - 1) / depth
	out := make([]bool, n)
	k := 0
	for c := 0; c < cols; c++ {
		for r := 0; r < depth; r++ {
			if idx := r*cols + c; idx < n {
				out[idx] = bits[k]
				k++
			}
		}
	}
	return out
}
