package fec

import (
	"reflect"
	"testing"
)

// testBits builds a deterministic pseudo-random bit pattern.
func testBits(seed uint64, n int) []bool {
	out := make([]bool, n)
	s := seed*2654435761 + 1
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = s&1 == 1
	}
	return out
}

func configs() map[string]Config {
	return map[string]Config{
		"hamming":             {Scheme: SchemeHamming74},
		"hamming-interleaved": {Scheme: SchemeHamming74, InterleaveDepth: 8},
		"repetition3":         {Scheme: SchemeRepetition},
		"repetition5-deep":    {Scheme: SchemeRepetition, Repeat: 5, InterleaveDepth: 16},
	}
}

func TestSchemeNoneIsIdentity(t *testing.T) {
	var c Config
	data := testBits(1, 83)
	coded := c.EncodeBits(data)
	if !reflect.DeepEqual(coded, data) {
		t.Fatal("SchemeNone must not transform the stream")
	}
	got, st, err := c.DecodeBits(coded, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, data) || st.CorrectedBits != 0 {
		t.Fatal("SchemeNone decode must be the identity with zero corrections")
	}
	if c.Enabled() {
		t.Fatal("zero config must report disabled")
	}
	if c.Rate() != 1 || c.CodedBits(5) != 40 {
		t.Fatal("SchemeNone rate/length must be trivial")
	}
}

func TestRoundTripCleanChannel(t *testing.T) {
	for name, c := range configs() {
		t.Run(name, func(t *testing.T) {
			if err := c.Validate(); err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{8, 16, 80, 328} { // whole bytes of data bits
				data := testBits(uint64(n), n)
				coded := c.EncodeBits(data)
				if len(coded)%PadQuantum != 0 {
					t.Fatalf("coded length %d not a multiple of the pad quantum", len(coded))
				}
				if want := c.CodedBits(n / 8); len(coded) != want {
					t.Fatalf("coded length %d, CodedBits says %d", len(coded), want)
				}
				got, st, err := c.DecodeBits(coded, 4)
				if err != nil {
					t.Fatal(err)
				}
				if st.CorrectedBits != 0 {
					t.Fatalf("clean channel produced %d corrections", st.CorrectedBits)
				}
				if len(got) < len(data) || !reflect.DeepEqual(got[:len(data)], data) {
					t.Fatalf("n=%d: round trip corrupted the data", n)
				}
				// Decode padding must be zero bits.
				for _, b := range got[len(data):] {
					if b {
						t.Fatal("padding decoded to non-zero bits")
					}
				}
			}
		})
	}
}

func TestRoundTripWithSymbolSlack(t *testing.T) {
	// The framing layer hands the decoder up to symbolBits-1 trailing
	// garbage bits; the length recovery must shrug them off.
	for name, c := range configs() {
		t.Run(name, func(t *testing.T) {
			data := testBits(9, 96)
			coded := c.EncodeBits(data)
			for slack := 0; slack < 16; slack++ {
				recv := append(append([]bool(nil), coded...), testBits(uint64(slack), slack)...)
				got, _, err := c.DecodeBits(recv, 16)
				if err != nil {
					t.Fatalf("slack %d: %v", slack, err)
				}
				if !reflect.DeepEqual(got[:len(data)], data) {
					t.Fatalf("slack %d corrupted the data", slack)
				}
			}
		})
	}
}

func TestHammingCorrectsSingleErrors(t *testing.T) {
	c := Config{Scheme: SchemeHamming74}
	data := testBits(3, 64)
	coded := c.EncodeBits(data)
	// Flip exactly one bit in every codeword.
	for i := 0; i < len(coded); i += 7 {
		coded[i+int(uint(i/7)%7)] = !coded[i+int(uint(i/7)%7)]
	}
	got, st, err := c.DecodeBits(coded, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[:len(data)], data) {
		t.Fatal("single errors per codeword must decode cleanly")
	}
	if want := len(coded) / 7; st.CorrectedBits != want {
		t.Fatalf("corrected %d bits, want %d", st.CorrectedBits, want)
	}
}

func TestRepetitionOutvotesMinority(t *testing.T) {
	c := Config{Scheme: SchemeRepetition, Repeat: 5}
	data := testBits(4, 40)
	coded := c.EncodeBits(data)
	// Corrupt two of every five copies (below the majority).
	for i := 0; i+5 <= len(coded); i += 5 {
		coded[i] = !coded[i]
		coded[i+2] = !coded[i+2]
	}
	got, st, err := c.DecodeBits(coded, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[:len(data)], data) {
		t.Fatal("minority corruption must be outvoted")
	}
	if st.CorrectedBits < len(data)*2 {
		t.Fatalf("corrected %d, want at least %d", st.CorrectedBits, len(data)*2)
	}
}

func TestInterleavingSpreadsBursts(t *testing.T) {
	// A contiguous channel burst as long as the interleave depth must not
	// defeat Hamming(7,4): deinterleaving leaves at most one corrupted bit
	// per codeword neighborhood.
	c := Config{Scheme: SchemeHamming74, InterleaveDepth: 24}
	data := testBits(5, 256)
	coded := c.EncodeBits(data)
	burstStart := len(coded) / 3
	for i := burstStart; i < burstStart+24 && i < len(coded); i++ {
		coded[i] = !coded[i]
	}
	got, _, err := c.DecodeBits(coded, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got[:len(data)], data) {
		t.Fatal("depth-24 interleaving must absorb a 24-bit burst")
	}
	// The same burst without interleaving wipes out three consecutive
	// codewords beyond repair.
	plain := Config{Scheme: SchemeHamming74}
	coded2 := plain.EncodeBits(data)
	for i := burstStart; i < burstStart+24 && i < len(coded2); i++ {
		coded2[i] = !coded2[i]
	}
	got2, _, err := plain.DecodeBits(coded2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(got2[:len(data)], data) {
		t.Fatal("un-interleaved burst should have been uncorrectable (test premise broken)")
	}
}

func TestInterleaveInverts(t *testing.T) {
	for _, depth := range []int{2, 3, 7, 13, 28} {
		for _, n := range []int{1, 2, 27, 28, 29, 84, 200} {
			bits := testBits(uint64(depth*1000+n), n)
			got := deinterleave(interleave(append([]bool(nil), bits...), depth), depth)
			if !reflect.DeepEqual(got, bits) {
				t.Fatalf("depth %d, n %d: deinterleave(interleave) != id", depth, n)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	c := Config{Scheme: SchemeHamming74}
	if _, _, err := c.DecodeBits(testBits(1, 12), 4); err == nil {
		t.Error("sub-quantum stream must fail")
	}
	if _, _, err := c.DecodeBits(testBits(1, 56), PadQuantum); err == nil {
		t.Error("slack at or above the pad quantum must be rejected")
	}
	if _, _, err := c.DecodeBits(testBits(1, 56+10), 4); err == nil {
		t.Error("trailing bits beyond the declared slack must be rejected")
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Scheme: SchemeRepetition, Repeat: 2},
		{Scheme: SchemeRepetition, Repeat: 1},
		{Scheme: Scheme(42)},
		{Scheme: SchemeHamming74, InterleaveDepth: -1},
		{Scheme: SchemeHamming74, InterleaveDepth: 1000},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, c)
		}
	}
	good := Config{Scheme: SchemeRepetition} // Repeat defaults to 3
	if err := good.Validate(); err != nil {
		t.Errorf("default repetition config invalid: %v", err)
	}
	if got := good.Rate(); got != 1.0/3.0 {
		t.Errorf("default repetition rate %v", got)
	}
}

func TestParseConfig(t *testing.T) {
	cases := map[string]Config{
		"":           {},
		"none":       {},
		"hamming":    {Scheme: SchemeHamming74, InterleaveDepth: 14},
		"repetition": {Scheme: SchemeRepetition, Repeat: 3, InterleaveDepth: 56},
	}
	for name, want := range cases {
		got, err := ParseConfig(name)
		if err != nil {
			t.Errorf("ParseConfig(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("ParseConfig(%q) = %+v, want %+v", name, got, want)
		}
		if err := got.Validate(); err != nil {
			t.Errorf("ParseConfig(%q) returned invalid config: %v", name, err)
		}
	}
	if _, err := ParseConfig("turbo"); err == nil {
		t.Error("unknown scheme name must be rejected")
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeNone:       "none",
		SchemeHamming74:  "hamming74",
		SchemeRepetition: "repetition",
		Scheme(9):        "Scheme(9)",
	} {
		if s.String() != want {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
