package fec

import (
	"bytes"
	"testing"
)

// bitsFromBytes expands a byte stream into bits, LSB first, truncated to n.
func bitsFromBytes(raw []byte, n int) []bool {
	if n > len(raw)*8 {
		n = len(raw) * 8
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = raw[i/8]>>(i%8)&1 == 1
	}
	return out
}

func bytesFromBits(bits []bool) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			out[i/8] |= 1 << (i % 8)
		}
	}
	return out
}

// FuzzFECDecode feeds arbitrary received streams through every scheme. The
// decoder must never panic, and whenever a stream round-trips from a clean
// encode it must decode back to the original data.
func FuzzFECDecode(f *testing.F) {
	// Valid codewords: clean encodes of short payloads under each scheme.
	for _, scheme := range []byte{0, 1, 2} {
		cfg := Config{Scheme: Scheme(scheme), InterleaveDepth: 8}
		data := testBits(uint64(scheme)+11, 32)
		coded := cfg.EncodeBits(data)
		f.Add(scheme, byte(8), byte(3), bytesFromBits(coded), len(coded))
	}
	// Burst-corrupted: a depth-long run of flipped bits mid-stream.
	{
		cfg := Config{Scheme: SchemeHamming74, InterleaveDepth: 16}
		coded := cfg.EncodeBits(testBits(99, 64))
		for i := 20; i < 36 && i < len(coded); i++ {
			coded[i] = !coded[i]
		}
		f.Add(byte(1), byte(16), byte(3), bytesFromBits(coded), len(coded))
	}
	// Truncated: fewer bits than one pad quantum.
	f.Add(byte(1), byte(0), byte(3), []byte{0xA5, 0x5A}, 13)
	f.Add(byte(2), byte(4), byte(5), []byte{0xFF}, 3)

	f.Fuzz(func(t *testing.T, scheme, depth, repeat byte, raw []byte, nbits int) {
		if nbits < 0 || nbits > len(raw)*8 || len(raw) > 1<<12 {
			t.Skip()
		}
		cfg := Config{
			Scheme:          Scheme(scheme % 3),
			InterleaveDepth: int(depth),
			Repeat:          int(repeat) | 1, // keep it odd
		}
		if cfg.Repeat < 3 {
			cfg.Repeat = 3
		}
		if err := cfg.Validate(); err != nil {
			t.Skip()
		}
		recv := bitsFromBytes(raw, nbits)

		// Arbitrary garbage must never panic; errors are fine.
		if _, _, err := cfg.DecodeBits(recv, 15); err != nil &&
			cfg.Scheme != SchemeNone && len(recv) >= PadQuantum && len(recv)%PadQuantum <= 15 {
			t.Fatalf("well-formed length %d rejected: %v", len(recv), err)
		}

		// Clean round trip must be lossless for whole-byte payloads.
		data := recv
		if n := len(data) / 8 * 8; n != len(data) {
			data = data[:n]
		}
		coded := cfg.EncodeBits(append([]bool(nil), data...))
		got, st, err := cfg.DecodeBits(coded, 15)
		if cfg.Scheme == SchemeNone {
			if err != nil || !bytes.Equal(bytesFromBits(got), bytesFromBits(data)) {
				t.Fatalf("SchemeNone round trip failed: %v", err)
			}
			return
		}
		if len(data) == 0 {
			return // empty encode yields an empty (too-short) stream
		}
		if err != nil {
			t.Fatalf("clean round trip errored: %v", err)
		}
		if st.CorrectedBits != 0 {
			t.Fatalf("clean round trip claimed %d corrections", st.CorrectedBits)
		}
		if len(got) < len(data) {
			t.Fatalf("decoded %d bits, fewer than the %d encoded", len(got), len(data))
		}
		for i, b := range data {
			if got[i] != b {
				t.Fatalf("bit %d corrupted on a clean channel", i)
			}
		}
	})
}
