package trace_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"biscatter/internal/core"
	"biscatter/internal/trace"
)

func sampleEnvelope() *trace.EnvelopeCapture {
	return &trace.EnvelopeCapture{
		SampleRate:      1e6,
		CenterFrequency: 9.5e9,
		Period:          120e-6,
		SNRdB:           22,
		Samples:         []float64{0.1, -0.2, 0.3},
		Meta:            map[string]string{"tag": "1", "site": "lab"},
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := sampleEnvelope()
	if err := trace.WriteEnvelope(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadEnvelope(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n%+v\n%+v", got, want)
	}
}

func TestIFRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := &trace.IFCapture{
		SampleRate: 4e6,
		Bandwidth:  1e9,
		Period:     120e-6,
		Durations:  []float64{20e-6, 96e-6},
		IF:         [][]complex128{{1 + 2i, 3}, {4i}},
		Meta:       map[string]string{"frame": "7"},
	}
	if err := trace.WriteIF(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadIF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n%+v\n%+v", got, want)
	}
}

func TestKindMismatchRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := trace.WriteEnvelope(&buf, sampleEnvelope()); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ReadIF(&buf); !errors.Is(err, trace.ErrBadHeader) {
		t.Fatalf("expected trace.ErrBadHeader, got %v", err)
	}
}

func TestGarbageRejected(t *testing.T) {
	if _, err := trace.ReadEnvelope(bytes.NewReader([]byte("not a trace"))); !errors.Is(err, trace.ErrBadHeader) {
		t.Fatalf("expected trace.ErrBadHeader, got %v", err)
	}
	if _, err := trace.ReadEnvelope(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cap.bsct")
	if err := trace.SaveEnvelope(path, sampleEnvelope()); err != nil {
		t.Fatal(err)
	}
	got, err := trace.LoadEnvelope(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SNRdB != 22 || len(got.Samples) != 3 {
		t.Fatalf("loaded %+v", got)
	}
	if _, err := trace.LoadEnvelope(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file should fail")
	}
	ifPath := filepath.Join(dir, "if.bsct")
	if err := trace.SaveIF(ifPath, &trace.IFCapture{SampleRate: 4e6, IF: [][]complex128{{1}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.LoadIF(ifPath); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.LoadIF(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing IF file should fail")
	}
}

// TestRecordedCaptureDecodesOffline is the point of the package: a capture
// recorded from a live link decodes identically after a disk round trip.
func TestRecordedCaptureDecodesOffline(t *testing.T) {
	n, err := core.NewNetwork(core.Config{
		Nodes: []core.NodeConfig{{ID: 1, Range: 2.6}},
		Seed:  70,
	})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("offline decode")
	frame, err := n.BuildDownlinkFrame(payload, 0)
	if err != nil {
		t.Fatal(err)
	}
	node := n.Nodes()[0]
	snr := n.Link().DownlinkSNRdB(2.6)
	x := node.Tag.FrontEnd.CaptureFrame(frame, snr)

	path := filepath.Join(t.TempDir(), "live.bsct")
	err = trace.SaveEnvelope(path, &trace.EnvelopeCapture{
		SampleRate:      node.Tag.FrontEnd.SampleRate,
		CenterFrequency: node.Tag.FrontEnd.CenterFrequency,
		Period:          n.Config().Period,
		SNRdB:           snr,
		Samples:         x,
	})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := trace.LoadEnvelope(path)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := node.Tag.Decoder.DecodePacket(loaded.Samples, n.Packet())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("offline decode %q, want %q", got, payload)
	}
}
