package trace

import (
	"io"
	"os"

	"biscatter/internal/channel"
	"biscatter/internal/fault"
	"biscatter/internal/fec"
	"biscatter/internal/fmcw"
)

// ExchangeRecord captures everything needed to re-run a sequence of
// exchanges byte-identically offline: the full network specification
// (including seeds and the fault profile — the pipeline is deterministic
// given these), every round's inputs, and the outcomes the live run
// produced so replay can verify itself against the original. It is the
// exchange-level sibling of EnvelopeCapture/IFCapture: where those freeze
// one signal, this freezes one conversation.
//
// The file reuses the BSCTRACE magic/version framing with kind "exchange",
// so format drift fails loudly. Bumping the trace version invalidates old
// records by design — a record that decodes must replay.
type ExchangeRecord struct {
	// Spec reconstructs the network.
	Spec ExchangeSpec
	// Rounds holds the recorded exchanges in execution order.
	Rounds []RoundRecord
	// Meta carries free-form annotations (scenario name, host, notes).
	Meta map[string]string
}

// ExchangeSpec is the flattened core.Config — every field that influences
// exchange results, and nothing that doesn't (no telemetry sinks, no worker
// count: results are byte-identical at any worker count, so replay may pick
// its own). The radar preset is embedded in full rather than referenced by
// name, so a record survives preset drift in the codebase.
type ExchangeSpec struct {
	Preset           fmcw.Preset
	Period           float64
	SymbolBits       int
	HeaderChirps     int
	SyncChirps       int
	FEC              fec.Config
	MinChirpDuration float64
	DeltaL           float64
	MinBeatSpacing   float64
	ChirpsPerBit     int
	Nodes            []NodeSpec
	// ScheduleCapacity reconstructs the TDMA frame schedule
	// (mac.NewFrameSchedule(len(Nodes), ScheduleCapacity)); zero means no
	// schedule — every node concurrent in every frame.
	ScheduleCapacity int
	Clutter          []channel.Reflector
	Faults           *fault.Profile
	Seed             int64
	TagSampleRate    float64
	// DecoderMethod is the tag.Method ordinal.
	DecoderMethod int
	// NetworkID is the recorded network's identity (a fleet-assigned id or
	// 0); exchange IDs derive from it, so replay must reuse it.
	NetworkID int
}

// NodeSpec mirrors core.NodeConfig.
type NodeSpec struct {
	ID           uint8
	Range        float64
	ModulationF0 float64
	ModulationF1 float64
}

// RoundInput is one exchange's inputs.
type RoundInput struct {
	// Payload is the downlink packet payload.
	Payload []byte
	// UplinkBits maps node index to that node's uplink bits.
	UplinkBits map[int][]bool
	// MinChirps is the WithMinChirps floor (zero = none).
	MinChirps int
	// Active lists the WithActiveNodes indices (nil = all nodes).
	Active []int
	// Scheduled marks a round run through ExchangeScheduled — one full
	// TDMA schedule cycle rather than a single frame.
	Scheduled bool
}

// NodeOutcome is the replay-comparable digest of one core.NodeResult:
// decoded bytes and bits verbatim, detection coordinates bit-exact, errors
// by message. Diagnostics are deliberately excluded — they are descriptive,
// not part of the determinism contract.
type NodeOutcome struct {
	DownlinkPayload []byte
	DownlinkErr     string
	DetectionRange  float64
	DetectionBin    int
	DetectionSNRdB  float64
	DetectionErr    string
	UplinkBits      []bool
	UplinkErr       string
}

// RoundRecord is one recorded exchange: identity, inputs, and what the live
// run observed.
type RoundRecord struct {
	// Seq is the network's exchange sequence number for this round.
	Seq uint64
	// ExchangeID is the deterministic exchange identity (16 hex digits);
	// replay must reproduce it exactly.
	ExchangeID string
	// Input is what was fed in.
	Input RoundInput
	// Err is the exchange-level error message ("" on success).
	Err string
	// Outcomes holds one entry per network node, in network order. Nil when
	// the exchange failed before producing results.
	Outcomes []NodeOutcome
}

// WriteExchange writes an exchange record to w.
func WriteExchange(w io.Writer, r *ExchangeRecord) error {
	return write(w, "exchange", r)
}

// ReadExchange reads an exchange record from r.
func ReadExchange(r io.Reader) (*ExchangeRecord, error) {
	var rec ExchangeRecord
	if err := read(r, "exchange", &rec); err != nil {
		return nil, err
	}
	return &rec, nil
}

// SaveExchange writes an exchange record to a file.
func SaveExchange(path string, r *ExchangeRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteExchange(f, r); err != nil {
		return err
	}
	return f.Sync()
}

// LoadExchange reads an exchange record from a file.
func LoadExchange(path string) (*ExchangeRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadExchange(f)
}
