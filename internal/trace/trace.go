// Package trace records and replays captures — the tag's envelope-detector
// ADC streams and the radar's dechirped IF frames — so field captures (or
// expensive simulations) can be decoded offline, regression-tested, and
// attached to bug reports. Files are gob-encoded with a magic/version
// prefix so format drift fails loudly instead of decoding garbage.
package trace

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
)

// magic and version prefix every trace file.
const (
	magic   = "BSCTRACE"
	version = 1
)

// ErrBadHeader means the file is not a trace file or has an incompatible
// version.
var ErrBadHeader = errors.New("trace: bad header")

// EnvelopeCapture is one tag-side ADC capture with the context needed to
// decode it later.
type EnvelopeCapture struct {
	// SampleRate is the ADC rate in Hz.
	SampleRate float64
	// CenterFrequency is the chirp center frequency in Hz.
	CenterFrequency float64
	// Period is the chirp period in seconds.
	Period float64
	// SNRdB is the link SNR the capture was taken at (simulation metadata).
	SNRdB float64
	// Samples is the envelope-detector stream.
	Samples []float64
	// Meta carries free-form annotations (tag ID, location, notes).
	Meta map[string]string
}

// IFCapture is one radar-side dechirped frame.
type IFCapture struct {
	// SampleRate is the radar IF rate in Hz.
	SampleRate float64
	// Bandwidth is the chirp bandwidth in Hz.
	Bandwidth float64
	// Period is the chirp period in seconds.
	Period float64
	// Durations are the per-chirp durations in seconds.
	Durations []float64
	// IF holds one complex sample vector per chirp.
	IF [][]complex128
	// Meta carries free-form annotations.
	Meta map[string]string
}

type header struct {
	Magic   string
	Version int
	Kind    string
}

// write serializes any payload with the header.
func write(w io.Writer, kind string, payload any) error {
	bw := bufio.NewWriter(w)
	enc := gob.NewEncoder(bw)
	if err := enc.Encode(header{Magic: magic, Version: version, Kind: kind}); err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	if err := enc.Encode(payload); err != nil {
		return fmt.Errorf("trace: encode payload: %w", err)
	}
	return bw.Flush()
}

// read checks the header and decodes the payload.
func read(r io.Reader, kind string, payload any) error {
	dec := gob.NewDecoder(bufio.NewReader(r))
	var h header
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("%w: %v", ErrBadHeader, err)
	}
	if h.Magic != magic || h.Version != version || h.Kind != kind {
		return fmt.Errorf("%w: magic=%q version=%d kind=%q (want %q/%d/%q)",
			ErrBadHeader, h.Magic, h.Version, h.Kind, magic, version, kind)
	}
	if err := dec.Decode(payload); err != nil {
		return fmt.Errorf("trace: decode payload: %w", err)
	}
	return nil
}

// WriteEnvelope writes an envelope capture to w.
func WriteEnvelope(w io.Writer, c *EnvelopeCapture) error {
	return write(w, "envelope", c)
}

// ReadEnvelope reads an envelope capture from r.
func ReadEnvelope(r io.Reader) (*EnvelopeCapture, error) {
	var c EnvelopeCapture
	if err := read(r, "envelope", &c); err != nil {
		return nil, err
	}
	return &c, nil
}

// WriteIF writes an IF capture to w.
func WriteIF(w io.Writer, c *IFCapture) error {
	return write(w, "if", c)
}

// ReadIF reads an IF capture from r.
func ReadIF(r io.Reader) (*IFCapture, error) {
	var c IFCapture
	if err := read(r, "if", &c); err != nil {
		return nil, err
	}
	return &c, nil
}

// SaveEnvelope writes an envelope capture to a file.
func SaveEnvelope(path string, c *EnvelopeCapture) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteEnvelope(f, c); err != nil {
		return err
	}
	return f.Sync()
}

// LoadEnvelope reads an envelope capture from a file.
func LoadEnvelope(path string) (*EnvelopeCapture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEnvelope(f)
}

// SaveIF writes an IF capture to a file.
func SaveIF(path string, c *IFCapture) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteIF(f, c); err != nil {
		return err
	}
	return f.Sync()
}

// LoadIF reads an IF capture from a file.
func LoadIF(path string) (*IFCapture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIF(f)
}
