package trace

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"biscatter/internal/channel"
	"biscatter/internal/fault"
	"biscatter/internal/fec"
	"biscatter/internal/fmcw"
)

func sampleRecord() *ExchangeRecord {
	return &ExchangeRecord{
		Spec: ExchangeSpec{
			Preset:           fmcw.Radar9GHz(),
			Period:           120e-6,
			SymbolBits:       5,
			HeaderChirps:     8,
			SyncChirps:       2,
			FEC:              fec.Config{Scheme: fec.SchemeHamming74, InterleaveDepth: 4},
			MinChirpDuration: 20e-6,
			DeltaL:           1.143,
			MinBeatSpacing:   500,
			ChirpsPerBit:     32,
			Nodes: []NodeSpec{
				{ID: 1, Range: 3, ModulationF0: 1000, ModulationF1: 1500},
				{ID: 2, Range: 5, ModulationF0: 2000, ModulationF1: 2500},
			},
			ScheduleCapacity: 0,
			Clutter:          channel.OfficeClutter(),
			Faults: &fault.Profile{
				Name:         "test",
				Seed:         7,
				Interference: &fault.Interference{DutyCycle: 0.2, RadarPowerDBm: -30},
			},
			Seed:          2024,
			TagSampleRate: 1e6,
			DecoderMethod: 1,
		},
		Rounds: []RoundRecord{
			{
				Seq:        0,
				ExchangeID: "cf7b22450d8eec26",
				Input: RoundInput{
					Payload:    []byte{0xA5, 0x42},
					UplinkBits: map[int][]bool{0: {true, false, true}, 1: {false}},
					MinChirps:  96,
				},
				Outcomes: []NodeOutcome{
					{
						DownlinkPayload: []byte{0xA5, 0x42},
						DetectionRange:  3.01,
						DetectionBin:    12,
						DetectionSNRdB:  18.5,
						UplinkBits:      []bool{true, false, true},
					},
					{
						DownlinkErr:  "sync not found",
						DetectionErr: "no peak",
						UplinkErr:    "below threshold",
					},
				},
			},
			{
				Seq:        1,
				ExchangeID: "0000000000000001",
				Input:      RoundInput{Payload: []byte{0x01}, Scheduled: true, Active: []int{0}},
				Err:        "link open",
			},
		},
		Meta: map[string]string{"scenario": "office"},
	}
}

func TestExchangeRecordRoundTrip(t *testing.T) {
	rec := sampleRecord()
	var buf bytes.Buffer
	if err := WriteExchange(&buf, rec); err != nil {
		t.Fatal(err)
	}
	back, err := ReadExchange(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Fatalf("round trip mutated record:\nwrote %+v\nread  %+v", rec, back)
	}
}

func TestExchangeRecordFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/exchange.bsctrace"
	rec := sampleRecord()
	if err := SaveExchange(path, rec); err != nil {
		t.Fatal(err)
	}
	back, err := LoadExchange(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec, back) {
		t.Fatal("file round trip mutated record")
	}
}

func TestExchangeRecordRejectsWrongKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, &EnvelopeCapture{SampleRate: 1e6}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadExchange(&buf); !errors.Is(err, ErrBadHeader) {
		t.Fatalf("wrong-kind read error = %v, want ErrBadHeader", err)
	}
}
