// Package channel models the RF link between radar and tag: free-space path
// loss, the one-way downlink budget (radar → tag decoder), the two-way
// backscatter budget (radar → tag → radar, with the Van Atta retro-reflection
// gain), thermal noise, and seeded AWGN generators for both the tag's
// envelope-detector samples and the radar's IF samples.
//
// All budget constants are calibrated so the simulated SNR-vs-distance
// mapping matches the paper's reported operating points: ≈16 dB equivalent
// downlink SNR at 7 m (Fig. 13), and an uplink that keeps the tag detectable
// out to and slightly beyond the 7 m system range (Figs. 15–16), with the
// end-to-end limit set by the downlink as in the paper (§6).
package channel

import (
	"fmt"
	"math"
)

const speedOfLight = 299792458.0

// BoltzmannNoiseDBmPerHz is the thermal noise density at 290 K in dBm/Hz.
const BoltzmannNoiseDBmPerHz = -174.0

// FSPL returns the one-way free-space path loss in dB at distance d meters
// and frequency f Hz.
func FSPL(d, f float64) float64 {
	if d <= 0 || f <= 0 {
		return 0
	}
	lambda := speedOfLight / f
	return 20 * math.Log10(4*math.Pi*d/lambda)
}

// ThermalNoiseDBm returns the thermal noise floor in dBm for a receiver of
// the given noise bandwidth (Hz) and noise figure (dB).
func ThermalNoiseDBm(bandwidth, noiseFigureDB float64) float64 {
	return BoltzmannNoiseDBmPerHz + 10*math.Log10(bandwidth) + noiseFigureDB
}

// Link bundles the budget parameters of one radar–tag pair.
type Link struct {
	// TxPowerDBm is the radar transmit power.
	TxPowerDBm float64
	// RadarGainDBi is the radar antenna gain.
	RadarGainDBi float64
	// Frequency is the carrier (chirp center) frequency in Hz.
	Frequency float64
	// TagAntennaGainDBi is the gain of one tag antenna element.
	TagAntennaGainDBi float64
	// TagRetroGainDBi is the effective gain of the Van Atta array in
	// reflective mode; retro-reflectivity is what keeps the two-way link
	// alive at range (§3.2.3).
	TagRetroGainDBi float64
	// TagInsertionLossDB is the decoder-path loss: splitters, delay lines
	// and connectors (§6 lists these as the range-limiting factors).
	TagInsertionLossDB float64
	// DetectorNoiseFloorDBm is the envelope detector + kHz ADC noise floor
	// referenced to the detector input.
	DetectorNoiseFloorDBm float64
	// RadarNoiseFigureDB is the radar receiver noise figure.
	RadarNoiseFigureDB float64
	// IFBandwidth is the radar IF noise bandwidth in Hz.
	IFBandwidth float64
	// ModulationLossDB accounts for the tag spending only part of each
	// period reflecting (50% OOK duty cycle ≈ 3 dB) plus switch loss.
	ModulationLossDB float64
	// ImplementationLossDB lumps the losses the idealized radar equation
	// misses — pointing and polarization mismatch, the small aperture of a
	// 2-element Van Atta, cabling — calibrated so the simulated detection
	// chain, like the paper's prototype, operates out to ≈7 m and fails
	// beyond (Figs. 15–16).
	ImplementationLossDB float64
}

// DefaultLink returns a link calibrated to the paper's 9 GHz prototype.
func DefaultLink() Link {
	return Link{
		TxPowerDBm:            7,
		RadarGainDBi:          12,
		Frequency:             9.5e9,
		TagAntennaGainDBi:     2,
		TagRetroGainDBi:       10,
		TagInsertionLossDB:    12,
		DetectorNoiseFloorDBm: -76,
		RadarNoiseFigureDB:    10,
		IFBandwidth:           4e6,
		ModulationLossDB:      4,
		ImplementationLossDB:  6,
	}
}

// Validate checks the physically required fields.
func (l Link) Validate() error {
	if l.Frequency <= 0 {
		return fmt.Errorf("channel: frequency %v Hz must be positive", l.Frequency)
	}
	if l.IFBandwidth <= 0 {
		return fmt.Errorf("channel: IF bandwidth %v Hz must be positive", l.IFBandwidth)
	}
	return nil
}

// DownlinkRxPowerDBm returns the signal power arriving at the tag's envelope
// detector for a tag at distance d meters.
func (l Link) DownlinkRxPowerDBm(d float64) float64 {
	return l.TxPowerDBm + l.RadarGainDBi + l.TagAntennaGainDBi -
		FSPL(d, l.Frequency) - l.TagInsertionLossDB
}

// DownlinkSNRdB returns the tag-side SNR: detector input power over the
// detector noise floor. This is the "equivalent SNR" the paper quotes for
// downlink experiments.
func (l Link) DownlinkSNRdB(d float64) float64 {
	return l.DownlinkRxPowerDBm(d) - l.DetectorNoiseFloorDBm
}

// DistanceForDownlinkSNR inverts DownlinkSNRdB: the distance at which the
// downlink SNR equals the given value. Used by sweeps that are parameterized
// by SNR (Figs. 14, 17).
func (l Link) DistanceForDownlinkSNR(snrDB float64) float64 {
	// SNR = P0 - 20log10(d) with P0 the budget at 1 m.
	p0 := l.DownlinkSNRdB(1)
	return math.Pow(10, (p0-snrDB)/20)
}

// PowerSumDBm combines two powers expressed in dBm: uncorrelated signals
// (noise floors, interferers) add in the linear power domain. -Inf inputs
// act as the identity element, so "no interferer" composes cleanly.
func PowerSumDBm(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	return 10 * math.Log10(math.Pow(10, a/10)+math.Pow(10, b/10))
}

// DownlinkJSRdB returns the jammer-to-signal power ratio in dB at the tag's
// envelope detector for a tag at distance d, given an in-band interferer
// delivering jammerDBm at the detector input. This is the impairment hook
// the fault-injection layer uses to scale an injected jam tone against the
// legitimate downlink signal.
func (l Link) DownlinkJSRdB(d, jammerDBm float64) float64 {
	return jammerDBm - l.DownlinkRxPowerDBm(d)
}

// DownlinkSINRdB returns the downlink SNR degraded by an in-band interferer
// of the given power at the detector input: signal over the power sum of the
// detector noise floor and the interference. With jammerDBm = -Inf it
// reduces exactly to DownlinkSNRdB.
func (l Link) DownlinkSINRdB(d, jammerDBm float64) float64 {
	return l.DownlinkRxPowerDBm(d) - PowerSumDBm(l.DetectorNoiseFloorDBm, jammerDBm)
}

// UplinkRxPowerDBm returns the modulated backscatter power arriving back at
// the radar receiver from a tag at distance d. The signal traverses the path
// twice; the Van Atta gain applies at the tag re-radiation.
func (l Link) UplinkRxPowerDBm(d float64) float64 {
	return l.TxPowerDBm + 2*l.RadarGainDBi + l.TagAntennaGainDBi + l.TagRetroGainDBi -
		2*FSPL(d, l.Frequency) - l.ModulationLossDB - l.ImplementationLossDB
}

// UplinkSNRdB returns the radar-side SNR of the tag echo after range-Doppler
// processing with the given coherent processing gain (dB). The paper's
// Fig. 15 values are post-processing SNRs, which is why a tag is visible at
// all above the raw thermal floor.
func (l Link) UplinkSNRdB(d, processingGainDB float64) float64 {
	noise := ThermalNoiseDBm(l.IFBandwidth, l.RadarNoiseFigureDB)
	return l.UplinkRxPowerDBm(d) - noise + processingGainDB
}

// ProcessingGainDB returns the coherent gain of range+Doppler integration
// over samplesPerChirp fast-time samples and chirps slow-time chirps.
func ProcessingGainDB(samplesPerChirp, chirps int) float64 {
	if samplesPerChirp < 1 {
		samplesPerChirp = 1
	}
	if chirps < 1 {
		chirps = 1
	}
	return 10 * math.Log10(float64(samplesPerChirp)*float64(chirps))
}

// Reflector is a static environmental scatterer contributing multipath
// clutter to the radar scene.
type Reflector struct {
	// Range is the distance from the radar in meters.
	Range float64
	// RCSdBsm is the radar cross-section in dB relative to 1 m².
	RCSdBsm float64
	// Velocity is the radial velocity in m/s (positive = receding). Static
	// scenes leave it zero; the drone scenario has ego-motion.
	Velocity float64
}

// EchoPowerDBm returns the clutter echo power at the radar from this
// reflector under the link's budget (standard radar equation).
func (l Link) EchoPowerDBm(r Reflector) float64 {
	lambda := speedOfLight / l.Frequency
	if r.Range <= 0 {
		return math.Inf(-1)
	}
	// Pr = Pt·G²·λ²·σ / ((4π)³·d⁴)
	pt := l.TxPowerDBm
	g := 2 * l.RadarGainDBi
	sigma := r.RCSdBsm
	geom := 10 * math.Log10(lambda*lambda/(math.Pow(4*math.Pi, 3)*math.Pow(r.Range, 4)))
	return pt + g + sigma + geom
}

// OfficeClutter returns a representative indoor multipath environment: a
// handful of strong static reflectors (walls, furniture, metal cabinets) as
// seen in the paper's office deployment.
func OfficeClutter() []Reflector {
	return []Reflector{
		{Range: 1.8, RCSdBsm: -5},
		{Range: 3.2, RCSdBsm: 0},
		{Range: 4.5, RCSdBsm: -8},
		{Range: 6.1, RCSdBsm: 2},
		{Range: 8.4, RCSdBsm: -3},
	}
}
