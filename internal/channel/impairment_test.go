package channel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// TestLinkValidateTable pins every Validate error case and the fields each
// message names, so the error contract stays stable for callers that surface
// configuration mistakes.
func TestLinkValidateTable(t *testing.T) {
	mod := func(f func(*Link)) Link {
		l := DefaultLink()
		f(&l)
		return l
	}
	cases := []struct {
		name    string
		link    Link
		wantErr string // substring; empty means valid
	}{
		{"default is valid", DefaultLink(), ""},
		{"zero frequency", mod(func(l *Link) { l.Frequency = 0 }), "frequency"},
		{"negative frequency", mod(func(l *Link) { l.Frequency = -9.5e9 }), "frequency"},
		{"zero IF bandwidth", mod(func(l *Link) { l.IFBandwidth = 0 }), "IF bandwidth"},
		{"negative IF bandwidth", mod(func(l *Link) { l.IFBandwidth = -4e6 }), "IF bandwidth"},
		{"frequency checked before bandwidth", mod(func(l *Link) { l.Frequency = 0; l.IFBandwidth = 0 }), "frequency"},
		{"zero value link", Link{}, "frequency"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.link.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %q, want mention of %q", err, tc.wantErr)
			}
		})
	}
}

// TestOfficeClutterInvariants pins the properties the pipeline relies on:
// the office scene is static, sorted by range, within the radar's operating
// extent, and every reflector produces a finite echo under the default
// budget.
func TestOfficeClutterInvariants(t *testing.T) {
	clutter := OfficeClutter()
	if len(clutter) == 0 {
		t.Fatal("office clutter is empty")
	}
	link := DefaultLink()
	for i, r := range clutter {
		if r.Range <= 0 {
			t.Errorf("reflector %d: range %v must be positive", i, r.Range)
		}
		if r.Range > 10 {
			t.Errorf("reflector %d: range %v m outside a plausible office", i, r.Range)
		}
		if r.Velocity != 0 {
			t.Errorf("reflector %d: static office scene must have zero velocity, got %v", i, r.Velocity)
		}
		if i > 0 && clutter[i-1].Range >= r.Range {
			t.Errorf("reflector %d: ranges must be strictly increasing (%v then %v)",
				i, clutter[i-1].Range, r.Range)
		}
		p := link.EchoPowerDBm(r)
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Errorf("reflector %d: echo power %v not finite", i, p)
		}
	}
	// Each call returns a fresh slice: mutating one scene must not leak into
	// the next network's default clutter.
	clutter[0].Range = 99
	if OfficeClutter()[0].Range == 99 {
		t.Error("OfficeClutter returns shared state")
	}
}

// TestDistanceForDownlinkSNRQuickProperty drives the SNR↔distance inversion
// with testing/quick across the valid domain in both directions.
func TestDistanceForDownlinkSNRQuickProperty(t *testing.T) {
	link := DefaultLink()
	fromSNR := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		// Fold the arbitrary float into the physically meaningful SNR band.
		snr := math.Mod(math.Abs(raw), 120) - 40 // [-40, 80) dB
		d := link.DistanceForDownlinkSNR(snr)
		if d <= 0 || math.IsNaN(d) {
			return false
		}
		return math.Abs(link.DownlinkSNRdB(d)-snr) < 1e-9
	}
	fromDistance := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		d := 0.01 + math.Mod(math.Abs(raw), 100) // (0, 100) m
		back := link.DistanceForDownlinkSNR(link.DownlinkSNRdB(d))
		return math.Abs(back-d) < 1e-9*d
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(fromSNR, cfg); err != nil {
		t.Errorf("SNR→distance→SNR: %v", err)
	}
	if err := quick.Check(fromDistance, cfg); err != nil {
		t.Errorf("distance→SNR→distance: %v", err)
	}
}

func TestPowerSumDBm(t *testing.T) {
	negInf := math.Inf(-1)
	if got := PowerSumDBm(negInf, -76); got != -76 {
		t.Errorf("PowerSumDBm(-Inf, -76) = %v, want -76", got)
	}
	if got := PowerSumDBm(-76, negInf); got != -76 {
		t.Errorf("PowerSumDBm(-76, -Inf) = %v, want -76", got)
	}
	// Two equal powers combine to +3.01 dB.
	if got := PowerSumDBm(-70, -70); !approxEq(got, -70+10*math.Log10(2), 1e-12) {
		t.Errorf("equal-power sum = %v", got)
	}
	// The sum dominates over the larger term and is monotone in each input.
	if got := PowerSumDBm(-60, -90); got < -60 || got > -59.9 {
		t.Errorf("dominant-term sum = %v", got)
	}
	if PowerSumDBm(-60, -80) <= PowerSumDBm(-60, -90) {
		t.Error("PowerSumDBm not monotone in second argument")
	}
}

// TestDownlinkSINR pins the interference hook: no jammer reduces to the
// plain SNR, and a jammer far above the noise floor turns the SINR into the
// negative jammer-to-signal ratio.
func TestDownlinkSINR(t *testing.T) {
	link := DefaultLink()
	const d = 3.0
	if got, want := link.DownlinkSINRdB(d, math.Inf(-1)), link.DownlinkSNRdB(d); got != want {
		t.Errorf("SINR without jammer = %v, want SNR %v", got, want)
	}
	// Jammer 30 dB above the detector noise floor: noise is negligible and
	// SINR ≈ -JSR.
	jam := link.DetectorNoiseFloorDBm + 30
	sinr := link.DownlinkSINRdB(d, jam)
	jsr := link.DownlinkJSRdB(d, jam)
	if !approxEq(sinr, -jsr, 0.01) {
		t.Errorf("strong-jammer SINR %v !≈ -JSR %v", sinr, -jsr)
	}
	if link.DownlinkSINRdB(d, jam) >= link.DownlinkSINRdB(d, jam-10) {
		t.Error("SINR not monotone in jammer power")
	}
	// JSR grows with distance: the signal weakens, the jammer does not.
	if link.DownlinkJSRdB(5, jam) <= link.DownlinkJSRdB(1, jam) {
		t.Error("JSR must grow with distance")
	}
}
