package channel

import (
	"math"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFSPLKnownValue(t *testing.T) {
	// 2.4 GHz at 100 m is the textbook ≈80 dB.
	if got := FSPL(100, 2.4e9); math.Abs(got-80.05) > 0.1 {
		t.Fatalf("FSPL(100m, 2.4GHz) = %v dB, want ≈80", got)
	}
	if FSPL(0, 1e9) != 0 || FSPL(1, 0) != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
}

func TestFSPLMonotonicityProperty(t *testing.T) {
	f := func(dRaw, fRaw uint16) bool {
		d := 0.5 + float64(dRaw%100)
		freq := 1e9 + float64(fRaw%24)*1e9
		return FSPL(d+1, freq) > FSPL(d, freq) && FSPL(d, freq+1e9) > FSPL(d, freq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFSPLInverseSquareSlope(t *testing.T) {
	// Doubling distance adds 6.02 dB.
	d1 := FSPL(2, 9.5e9) - FSPL(1, 9.5e9)
	if !approxEq(d1, 6.0206, 1e-3) {
		t.Fatalf("doubling distance added %v dB, want ≈6.02", d1)
	}
}

func TestThermalNoise(t *testing.T) {
	// 1 Hz, 0 dB NF → −174 dBm.
	if got := ThermalNoiseDBm(1, 0); !approxEq(got, -174, 1e-9) {
		t.Fatalf("thermal noise %v", got)
	}
	// 1 MHz, 10 dB NF → −104 dBm.
	if got := ThermalNoiseDBm(1e6, 10); !approxEq(got, -104, 1e-9) {
		t.Fatalf("thermal noise %v", got)
	}
}

func TestDefaultLinkValidates(t *testing.T) {
	if err := DefaultLink().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultLink()
	bad.Frequency = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero frequency should fail")
	}
	bad = DefaultLink()
	bad.IFBandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero IF bandwidth should fail")
	}
}

func TestDownlinkSNRCalibratedToPaper(t *testing.T) {
	// Fig. 13: at 7 m the downlink operates at the equivalent of ≈16 dB SNR.
	l := DefaultLink()
	snr := l.DownlinkSNRdB(7)
	if snr < 12 || snr > 20 {
		t.Fatalf("downlink SNR at 7 m = %v dB, want ≈16 dB", snr)
	}
}

func TestDownlinkSNRDecreasesWithDistance(t *testing.T) {
	l := DefaultLink()
	prev := math.Inf(1)
	for d := 0.5; d <= 10; d += 0.5 {
		snr := l.DownlinkSNRdB(d)
		if snr >= prev {
			t.Fatalf("SNR not strictly decreasing at %v m", d)
		}
		prev = snr
	}
}

func TestDistanceForDownlinkSNRInverts(t *testing.T) {
	l := DefaultLink()
	f := func(raw uint8) bool {
		d := 0.5 + float64(raw%80)/10 // 0.5..8.4 m
		snr := l.DownlinkSNRdB(d)
		back := l.DistanceForDownlinkSNR(snr)
		return approxEq(back, d, 1e-6*d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUplinkSNRNeedsProcessingGain(t *testing.T) {
	// The raw tag echo at 7 m sits below the thermal floor; only the
	// range/Doppler processing gain lifts it above — the reason backscatter
	// radar links work at all (Fig. 15's post-processing SNRs).
	l := DefaultLink()
	raw := l.UplinkSNRdB(7, 0)
	if raw > 0 {
		t.Fatalf("raw uplink SNR at 7 m = %v dB; expected below the noise floor", raw)
	}
	withPG := l.UplinkSNRdB(7, ProcessingGainDB(256, 64))
	if withPG < 10 {
		t.Fatalf("post-processing uplink SNR at 7 m = %v dB; should be workable", withPG)
	}
	if l.UplinkSNRdB(0.5, ProcessingGainDB(256, 64)) < 40 {
		t.Fatal("uplink SNR at 0.5 m should be very strong")
	}
}

func TestUplinkSlopeIsFortyDBPerDecade(t *testing.T) {
	l := DefaultLink()
	drop := l.UplinkSNRdB(1, 0) - l.UplinkSNRdB(10, 0)
	if !approxEq(drop, 40, 1e-6) {
		t.Fatalf("uplink drop per decade = %v dB, want 40", drop)
	}
}

func TestRetroReflectorGainMatters(t *testing.T) {
	// Ablation: removing the Van Atta gain must cost exactly that many dB.
	l := DefaultLink()
	flat := l
	flat.TagRetroGainDBi = 0
	diff := l.UplinkSNRdB(5, 0) - flat.UplinkSNRdB(5, 0)
	if !approxEq(diff, l.TagRetroGainDBi, 1e-9) {
		t.Fatalf("retro gain contributes %v dB, want %v", diff, l.TagRetroGainDBi)
	}
}

func TestProcessingGain(t *testing.T) {
	if got := ProcessingGainDB(1024, 1); !approxEq(got, 30.1, 0.05) {
		t.Fatalf("1024-point gain %v dB", got)
	}
	if got := ProcessingGainDB(0, 0); got != 0 {
		t.Fatalf("degenerate gain %v", got)
	}
}

func TestEchoPowerDecaysWithRangeFourth(t *testing.T) {
	l := DefaultLink()
	p1 := l.EchoPowerDBm(Reflector{Range: 2, RCSdBsm: 0})
	p2 := l.EchoPowerDBm(Reflector{Range: 4, RCSdBsm: 0})
	if !approxEq(p1-p2, 12.04, 0.05) {
		t.Fatalf("doubling range changed echo by %v dB, want ≈12", p1-p2)
	}
	if !math.IsInf(l.EchoPowerDBm(Reflector{Range: 0}), -1) {
		t.Fatal("zero-range reflector should be -Inf")
	}
}

func TestOfficeClutterShape(t *testing.T) {
	refl := OfficeClutter()
	if len(refl) < 3 {
		t.Fatal("office clutter should be multipath-rich")
	}
	for _, r := range refl {
		if r.Range <= 0 {
			t.Fatalf("invalid reflector %+v", r)
		}
	}
}

func TestNoiseDeterminism(t *testing.T) {
	a := NewNoise(99).AddReal(make([]float64, 16), 1)
	b := NewNoise(99).AddReal(make([]float64, 16), 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give identical noise")
		}
	}
	c := NewNoise(100).AddReal(make([]float64, 16), 1)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestNoiseStatistics(t *testing.T) {
	n := NewNoise(7)
	const sigma = 2.5
	x := n.AddReal(make([]float64, 200000), sigma)
	var mean, varAcc float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	for _, v := range x {
		varAcc += (v - mean) * (v - mean)
	}
	varAcc /= float64(len(x))
	if math.Abs(mean) > 0.05 {
		t.Fatalf("noise mean %v, want ≈0", mean)
	}
	if math.Abs(varAcc-sigma*sigma) > 0.1*sigma*sigma {
		t.Fatalf("noise variance %v, want ≈%v", varAcc, sigma*sigma)
	}
}

func TestComplexNoiseTotalVariance(t *testing.T) {
	n := NewNoise(8)
	const sigma = 1.5
	x := n.AddComplex(make([]complex128, 100000), sigma)
	var p float64
	for _, v := range x {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= float64(len(x))
	if math.Abs(p-sigma*sigma) > 0.1*sigma*sigma {
		t.Fatalf("complex noise power %v, want %v", p, sigma*sigma)
	}
}

func TestNoiseZeroSigmaIsNoOp(t *testing.T) {
	n := NewNoise(1)
	x := []float64{1, 2}
	n.AddReal(x, 0)
	if x[0] != 1 || x[1] != 2 {
		t.Fatal("zero sigma should not modify signal")
	}
	c := []complex128{1i}
	n.AddComplex(c, 0)
	if c[0] != 1i {
		t.Fatal("zero sigma should not modify complex signal")
	}
}

func TestSigmaSNRRoundTrip(t *testing.T) {
	f := func(raw int8) bool {
		snr := float64(raw%40) + 5
		sigma := SigmaForSNR(1, snr)
		return approxEq(SNRFromSigma(1, sigma), snr, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(SNRFromSigma(1, 0), 1) {
		t.Fatal("zero sigma is infinite SNR")
	}
}
