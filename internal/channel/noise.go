package channel

import (
	"math"
	"math/rand"
)

// Noise is a seeded additive white Gaussian noise source. Every stochastic
// element of the simulator draws from an explicitly seeded Noise so that
// experiments are reproducible bit-for-bit.
type Noise struct {
	rng *rand.Rand
}

// NewNoise creates a noise source with the given seed.
func NewNoise(seed int64) *Noise {
	return &Noise{rng: rand.New(rand.NewSource(seed))}
}

// Rand exposes the underlying generator for non-Gaussian randomness (e.g.
// payload generation) that should share the experiment seed.
func (n *Noise) Rand() *rand.Rand { return n.rng }

// AddReal adds N(0, sigma²) noise to x in place and returns x.
func (n *Noise) AddReal(x []float64, sigma float64) []float64 {
	if sigma <= 0 {
		return x
	}
	for i := range x {
		x[i] += sigma * n.rng.NormFloat64()
	}
	return x
}

// AddComplex adds circularly symmetric complex Gaussian noise with total
// variance sigma² (sigma/√2 per quadrature) to x in place and returns x.
func (n *Noise) AddComplex(x []complex128, sigma float64) []complex128 {
	if sigma <= 0 {
		return x
	}
	s := sigma / math.Sqrt2
	for i := range x {
		x[i] += complex(s*n.rng.NormFloat64(), s*n.rng.NormFloat64())
	}
	return x
}

// SigmaForSNR returns the noise standard deviation that gives the requested
// SNR (dB) against a sinusoid of the given amplitude: signal power A²/2.
func SigmaForSNR(amplitude, snrDB float64) float64 {
	signalPower := amplitude * amplitude / 2
	noisePower := signalPower / math.Pow(10, snrDB/10)
	return math.Sqrt(noisePower)
}

// SNRFromSigma inverts SigmaForSNR.
func SNRFromSigma(amplitude, sigma float64) float64 {
	if sigma <= 0 {
		return math.Inf(1)
	}
	signalPower := amplitude * amplitude / 2
	return 10 * math.Log10(signalPower/(sigma*sigma))
}
